(* mkos: command-line driver for the simulated multikernel.

   Subcommands:
     platforms                    list the simulated machines
     topo -p <plat>               show the interconnect topology
     boot -p <plat> [-v]          boot and report SKB contents
     ping -p <plat> -s A -d B     monitor-to-monitor latency
     shootdown -p <plat> -n N     compare the four protocols at N cores
     unmap -p <plat> -n N         end-to-end unmap, multikernel vs IPI *)

open Cmdliner
open Mk_sim
open Mk_hw
open Mk

let platform_names =
  [ ("intel2x4", Platform.intel_2x4);
    ("amd2x2", Platform.amd_2x2);
    ("amd4x4", Platform.amd_4x4);
    ("amd8x4", Platform.amd_8x4);
    ("mesh64", Platform.synthetic_mesh ~packages:16 ~cores_per_package:4) ]

let plat_conv =
  let parse s =
    match List.assoc_opt s platform_names with
    | Some p -> Ok p
    | None ->
      Error (`Msg (Printf.sprintf "unknown platform %S (try: %s)" s
                     (String.concat ", " (List.map fst platform_names))))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt p.Platform.name)

let plat_arg =
  Arg.(value & opt plat_conv Platform.amd_4x4 & info [ "p"; "platform" ] ~doc:"Platform.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable tracing.")

let cores_arg =
  Arg.(value & opt int 8 & info [ "n"; "cores" ] ~doc:"Number of cores to involve.")

let setup_verbose v = if v then Trace.enable ()

let platforms_cmd =
  let run () =
    List.iter
      (fun (name, p) -> Printf.printf "%-10s %s\n" name (Platform.describe p))
      platform_names
  in
  Cmd.v (Cmd.info "platforms" ~doc:"List the simulated machines") Term.(const run $ const ())

let topo_cmd =
  let run plat =
    Printf.printf "%s\n\nlinks:\n" (Platform.describe plat);
    Array.iter (fun (a, b) -> Printf.printf "  %d <-> %d\n" a b)
      (Topology.links plat.Platform.topo);
    Printf.printf "\nhop matrix:\n    ";
    let n = plat.Platform.n_packages in
    for d = 0 to n - 1 do Printf.printf "%3d" d done;
    print_newline ();
    for s = 0 to n - 1 do
      Printf.printf "%3d " s;
      for d = 0 to n - 1 do
        Printf.printf "%3d" (Topology.hops plat.Platform.topo s d)
      done;
      print_newline ()
    done
  in
  Cmd.v (Cmd.info "topo" ~doc:"Show a platform's interconnect") Term.(const run $ plat_arg)

let boot_cmd =
  let run plat verbose =
    setup_verbose verbose;
    let os = Os.boot plat in
    Printf.printf "booted %s\n" (Platform.describe plat);
    Printf.printf "SKB holds %d facts; sample latencies (cycles, one-way):\n"
      (Skb.size (Os.skb os));
    let n = min 8 (Os.n_cores os) in
    for dst = 1 to n - 1 do
      Printf.printf "  0 -> %d: %d\n" dst (Os.latency os ~src:0 ~dst)
    done
  in
  Cmd.v (Cmd.info "boot" ~doc:"Boot the OS and report the SKB")
    Term.(const run $ plat_arg $ verbose_arg)

let ping_cmd =
  let src_arg = Arg.(value & opt int 0 & info [ "s"; "src" ] ~doc:"Source core.") in
  let dst_arg = Arg.(value & opt int 1 & info [ "d"; "dst" ] ~doc:"Destination core.") in
  let run plat src dst =
    let os = Os.boot ~measure_latencies:Os.No_measure plat in
    let rtt =
      Os.run os (fun () ->
          let mon = Os.monitor os ~core:src in
          ignore (Monitor.ping mon dst : int);
          Monitor.ping mon dst)
    in
    Printf.printf "monitor %d <-> %d round trip: %d cycles (%.0f ns)\n" src dst rtt
      (Platform.cycles_to_ns plat (float_of_int rtt))
  in
  Cmd.v (Cmd.info "ping" ~doc:"Monitor-to-monitor round trip")
    Term.(const run $ plat_arg $ src_arg $ dst_arg)

let shootdown_cmd =
  let run plat n =
    let n = min n (Platform.n_cores plat) in
    Printf.printf "raw shootdown round, %d cores on %s:\n" n plat.Platform.name;
    List.iter
      (fun proto ->
        let m = Machine.create plat in
        let h = Shootdown.setup m ~proto ~root:0 ~cores:(List.init n Fun.id) () in
        let cost = ref 0 in
        Engine.spawn m.Machine.eng (fun () ->
            ignore (Shootdown.round h : int);
            cost := Shootdown.round h);
        Machine.run m;
        Printf.printf "  %-22s %7d cycles\n" (Routing.proto_to_string proto) !cost)
      Routing.all_protos
  in
  Cmd.v (Cmd.info "shootdown" ~doc:"Compare the four shootdown protocols")
    Term.(const run $ plat_arg $ cores_arg)

let unmap_cmd =
  let run plat n =
    let n = min n (Platform.n_cores plat) in
    let cores = List.init n Fun.id in
    let os = Os.boot plat in
    let mk =
      Os.run os (fun () ->
          let dom = Os.spawn_domain os ~name:"cli" ~cores in
          (match Os.alloc_map_frame os dom ~core:0 ~vaddr:0x100000 ~bytes:4096 with
           | Ok _ -> ()
           | Error e -> Types.fail e);
          List.iter
            (fun c -> ignore (Vspace.touch (Dom.vspace dom) ~core:c ~vaddr:0x100000))
            cores;
          let t0 = Engine.now_ () in
          (match Os.unmap os dom ~core:0 ~vaddr:0x100000 ~bytes:4096 with
           | Ok () -> ()
           | Error e -> Types.fail e);
          Engine.now_ () - t0)
    in
    let ipi style =
      let m = Machine.create plat in
      let ctx = Mk_baseline.Ipi_shootdown.setup m style ~cores in
      let r = ref 0 in
      Engine.spawn m.Machine.eng (fun () ->
          List.iter (fun c -> Tlb.fill m.Machine.tlbs.(c) ~vpage:1) cores;
          r := Mk_baseline.Ipi_shootdown.unmap ctx ~initiator:0 ~vpages:[ 1 ]);
      Machine.run m;
      !r
    in
    Printf.printf "unmap across %d cores on %s:\n" n plat.Platform.name;
    Printf.printf "  %-22s %7d cycles\n" "multikernel (messages)" mk;
    Printf.printf "  %-22s %7d cycles\n" "Linux (serial IPIs)"
      (ipi Mk_baseline.Ipi_shootdown.Linux);
    Printf.printf "  %-22s %7d cycles\n" "Windows (serial IPIs)"
      (ipi Mk_baseline.Ipi_shootdown.Windows)
  in
  Cmd.v (Cmd.info "unmap" ~doc:"End-to-end unmap: messages vs IPIs")
    Term.(const run $ plat_arg $ cores_arg)

let () =
  let doc = "drive the simulated multikernel operating system" in
  let info = Cmd.info "mkos" ~version:"0.1" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ platforms_cmd; topo_cmd; boot_cmd; ping_cmd; shootdown_cmd; unmap_cmd ]))
