open Mk_sim
open Test_util

let test_determinism () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Prng.int64 a = Prng.int64 b)
  done

let test_seeds_differ () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.int64 a = Prng.int64 b then incr same
  done;
  check_int "streams disagree" 0 !same

let test_split_independent () =
  let a = Prng.create ~seed:3 in
  let b = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.int64 a = Prng.int64 b then incr same
  done;
  check_int "independent" 0 !same

let test_int_bounds () =
  let r = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let v = Prng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  check_bool "bad bound" true
    (match Prng.int r 0 with _ -> false | exception Invalid_argument _ -> true)

let test_float_bounds () =
  let r = Prng.create ~seed:13 in
  for _ = 1 to 1000 do
    let v = Prng.float r 2.5 in
    check_bool "in range" true (v >= 0.0 && v < 2.5)
  done

let test_exponential_positive () =
  let r = Prng.create ~seed:17 in
  let sum = ref 0.0 in
  for _ = 1 to 1000 do
    let v = Prng.exponential r ~mean:100.0 in
    check_bool "positive" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. 1000.0 in
  check_bool "mean near 100" true (mean > 80.0 && mean < 120.0)

let qcheck_shuffle_permutes =
  qtest "shuffle is a permutation" QCheck2.Gen.(pair int (list small_int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Prng.shuffle (Prng.create ~seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let suite =
  ( "prng",
    [
      tc "determinism" test_determinism;
      tc "seeds differ" test_seeds_differ;
      tc "split independent" test_split_independent;
      tc "int bounds" test_int_bounds;
      tc "float bounds" test_float_bounds;
      tc "exponential" test_exponential_positive;
      qcheck_shuffle_permutes;
    ] )
