open Mk_sim
open Mk_hw
open Test_util

(* Cores 0,1 share a package on the 2x2 AMD; core 2 is on the other one. *)

let test_cold_then_hot () =
  run_machine (fun m ->
      let a = Machine.alloc_lines m 1 in
      let t0 = Engine.now_ () in
      Coherence.load m.Machine.coh ~core:0 a;
      let cold = Engine.now_ () - t0 in
      let t1 = Engine.now_ () in
      Coherence.load m.Machine.coh ~core:0 a;
      let hot = Engine.now_ () - t1 in
      check_bool "cold miss much slower" true (cold > 10 * hot);
      check_int "hot = l1" m.Machine.plat.Platform.l1_hit hot)

let test_states () =
  run_machine (fun m ->
      let coh = m.Machine.coh in
      let a = Machine.alloc_lines m 1 in
      let line = Coherence.line_of_addr coh a in
      check_bool "untouched invalid" true (Coherence.line_state coh ~line = Coherence.Invalid);
      Coherence.load coh ~core:0 a;
      (match Coherence.line_state coh ~line with
       | Coherence.Shared [ 0 ] -> ()
       | _ -> Alcotest.fail "expected Shared [0]");
      Coherence.store coh ~core:0 a;
      check_bool "modified after store" true
        (Coherence.line_state coh ~line = Coherence.Modified 0);
      Coherence.load coh ~core:2 a;
      (match Coherence.line_state coh ~line with
       | Coherence.Shared cs ->
         check_bool "both share" true (List.mem 0 cs && List.mem 2 cs)
       | _ -> Alcotest.fail "expected Shared");
      Coherence.store coh ~core:2 a;
      check_bool "ownership moved" true
        (Coherence.line_state coh ~line = Coherence.Modified 2))

let test_invariant_single_owner () =
  (* Random op sequences never leave two Modified owners. *)
  run_machine (fun m ->
      let coh = m.Machine.coh in
      let lines = Array.init 4 (fun _ -> Machine.alloc_lines m 1) in
      let rng = Prng.create ~seed:99 in
      for _ = 1 to 500 do
        let core = Prng.int rng 4 in
        let a = lines.(Prng.int rng 4) in
        if Prng.bool rng then Coherence.store coh ~core a
        else Coherence.load coh ~core a;
        Array.iter
          (fun addr ->
            match Coherence.line_state coh ~line:(Coherence.line_of_addr coh addr) with
            | Coherence.Modified _ | Coherence.Invalid -> ()
            | Coherence.Shared cs ->
              check_bool "no dup sharers" true
                (List.length (List.sort_uniq compare cs) = List.length cs))
          lines
      done)

let test_latency_ordering () =
  (* local hit < shared-cache fetch < cross-package fetch. *)
  run_machine (fun m ->
      let coh = m.Machine.coh in
      let time f = let t0 = Engine.now_ () in f (); Engine.now_ () - t0 in
      let mk_dirty core = let a = Machine.alloc_lines m 1 in Coherence.store coh ~core a; a in
      let a1 = mk_dirty 1 in
      let local = time (fun () -> Coherence.load coh ~core:0 a1) in
      let a2 = mk_dirty 2 in
      let remote = time (fun () -> Coherence.load coh ~core:0 a2) in
      let a0 = mk_dirty 0 in
      let hit = time (fun () -> Coherence.load coh ~core:0 a0) in
      check_bool "hit < local" true (hit < local);
      check_bool "local < remote" true (local < remote))

let test_store_invalidates_everywhere () =
  run_machine (fun m ->
      let coh = m.Machine.coh in
      let a = Machine.alloc_lines m 1 in
      List.iter (fun c -> Coherence.load coh ~core:c a) [ 0; 1; 2; 3 ];
      Coherence.store coh ~core:3 a;
      check_bool "only writer caches it" true
        (Coherence.line_state coh ~line:(Coherence.line_of_addr coh a)
        = Coherence.Modified 3))

let test_posted_store_delay () =
  run_machine (fun m ->
      let coh = m.Machine.coh in
      let a = Machine.alloc_lines m 1 in
      Coherence.load coh ~core:2 a;
      let t0 = Engine.now_ () in
      let delay = Coherence.store_posted coh ~core:0 a in
      let posted_cost = Engine.now_ () - t0 in
      check_int "post cost" Coherence.store_post_cost posted_cost;
      check_bool "invalidation still in flight" true (delay > 0))

let test_home_pinning () =
  run_machine (fun m ->
      let coh = m.Machine.coh in
      let a = Machine.alloc_lines m ~node:1 1 in
      let line = Coherence.line_of_addr coh a in
      check_bool "home pinned before touch" true (Coherence.home_of coh ~line = Some 1);
      Coherence.load coh ~core:0 a;
      check_bool "home survives touch" true (Coherence.home_of coh ~line = Some 1))

let test_home_defaults_to_first_toucher () =
  run_machine (fun m ->
      let coh = m.Machine.coh in
      let a = Machine.alloc_lines m 1 in
      Coherence.load coh ~core:2 a;
      let line = Coherence.line_of_addr coh a in
      check_bool "home = package of first toucher" true
        (Coherence.home_of coh ~line = Some 1))

let test_traffic_counted () =
  run_machine (fun m ->
      let coh = m.Machine.coh in
      let a = Machine.alloc_lines m ~node:0 1 in
      Coherence.store coh ~core:0 a;
      let before = Perfcounter.snapshot m.Machine.counters in
      Coherence.load coh ~core:2 a;
      let d = Perfcounter.diff (Perfcounter.snapshot m.Machine.counters) before in
      check_bool "cross-package fetch moved dwords" true (Perfcounter.total_dwords d > 0);
      check_int "one miss" 1 d.Perfcounter.dcache_miss.(2);
      check_int "one c2c" 1 d.Perfcounter.c2c_fetch.(2))

let test_local_traffic_free () =
  run_machine (fun m ->
      let coh = m.Machine.coh in
      let a = Machine.alloc_lines m ~node:0 1 in
      Coherence.store coh ~core:0 a;
      let before = Perfcounter.snapshot m.Machine.counters in
      Coherence.load coh ~core:1 a (* same package *);
      let d = Perfcounter.diff (Perfcounter.snapshot m.Machine.counters) before in
      check_int "no interconnect dwords" 0 (Perfcounter.total_dwords d))

let test_read_storm_serializes () =
  (* N readers of one dirty line take ~N * slot; readers of distinct dirty
     lines overlap. This is the Figure 6 Broadcast-vs-Unicast mechanism. *)
  let storm =
    run_machine ~plat:Platform.amd_8x4 (fun m ->
        let coh = m.Machine.coh in
        let a = Machine.alloc_lines m ~node:0 1 in
        Coherence.store coh ~core:0 a;
        let done_ = Sync.Semaphore.create 0 in
        let t0 = Engine.now_ () in
        List.iter
          (fun c ->
            Engine.spawn_ (fun () ->
                Coherence.load coh ~core:c a;
                Sync.Semaphore.release done_))
          [ 4; 8; 12; 16; 20; 24 ];
        for _ = 1 to 6 do Sync.Semaphore.acquire done_ done;
        Engine.now_ () - t0)
  in
  let spread =
    run_machine ~plat:Platform.amd_8x4 (fun m ->
        let coh = m.Machine.coh in
        let lines = List.init 6 (fun _ -> Machine.alloc_lines m ~node:0 1) in
        List.iter (fun a -> Coherence.store coh ~core:0 a) lines;
        let done_ = Sync.Semaphore.create 0 in
        let t0 = Engine.now_ () in
        List.iteri
          (fun i a ->
            Engine.spawn_ (fun () ->
                Coherence.load coh ~core:(4 * (i + 1)) a;
                Sync.Semaphore.release done_))
          lines;
        for _ = 1 to 6 do Sync.Semaphore.acquire done_ done;
        Engine.now_ () - t0)
  in
  check_bool "same-line storm at least 2x slower" true (storm > 2 * spread)

let test_touch_range () =
  run_machine (fun m ->
      let coh = m.Machine.coh in
      let bytes = 1000 in
      let a = Machine.alloc_bytes m bytes in
      let before = Perfcounter.snapshot m.Machine.counters in
      Coherence.touch_range coh ~core:0 ~addr:a ~bytes ~write:true;
      let d = Perfcounter.diff (Perfcounter.snapshot m.Machine.counters) before in
      check_int "16 lines written" 16 d.Perfcounter.stores.(0))

let suite =
  ( "coherence",
    [
      tc "cold then hot" test_cold_then_hot;
      tc "MESI states" test_states;
      tc "single-owner invariant" test_invariant_single_owner;
      tc "latency ordering" test_latency_ordering;
      tc "store invalidates" test_store_invalidates_everywhere;
      tc "posted store" test_posted_store_delay;
      tc "home pinning" test_home_pinning;
      tc "home default" test_home_defaults_to_first_toucher;
      tc "traffic counted" test_traffic_counted;
      tc "local traffic free" test_local_traffic_free;
      tc "read storm serializes" test_read_storm_serializes;
      tc "touch range" test_touch_range;
    ] )
