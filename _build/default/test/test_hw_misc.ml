(* TLB, IPI, Machine and Perfcounter tests. *)

open Mk_sim
open Mk_hw
open Test_util

(* ---- TLB ---- *)

let test_tlb_fill_invalidate () =
  let t = Tlb.create ~core:3 in
  check_int "core" 3 (Tlb.core t);
  check_bool "empty" false (Tlb.mem t ~vpage:5);
  Tlb.fill t ~vpage:5;
  check_bool "present" true (Tlb.mem t ~vpage:5);
  check_bool "hit on invalidate" true (Tlb.invalidate t ~vpage:5);
  check_bool "gone" false (Tlb.mem t ~vpage:5);
  check_bool "miss on invalidate" false (Tlb.invalidate t ~vpage:5);
  check_int "one drop counted" 1 (Tlb.invalidations t)

let test_tlb_flush () =
  let t = Tlb.create ~core:0 in
  for i = 1 to 10 do
    Tlb.fill t ~vpage:i
  done;
  check_int "entries" 10 (Tlb.entry_count t);
  check_int "flush count" 10 (Tlb.flush t);
  check_int "empty" 0 (Tlb.entry_count t)

let test_tlb_refill_idempotent () =
  let t = Tlb.create ~core:0 in
  Tlb.fill t ~vpage:1;
  Tlb.fill t ~vpage:1;
  check_int "one entry" 1 (Tlb.entry_count t)

(* ---- IPI ---- *)

let test_ipi_delivery () =
  run_machine (fun m ->
      let got = ref None in
      Ipi.register m.Machine.ipi ~core:2 ~vector:0x30 (fun ~src -> got := Some src);
      let t0 = Engine.now_ () in
      Ipi.send m.Machine.ipi ~src:0 ~dst:2 ~vector:0x30;
      let sender_cost = Engine.now_ () - t0 in
      check_int "sender pays only the APIC write" Ipi.apic_write_cost sender_cost;
      check_bool "not yet delivered" true (!got = None);
      Engine.wait 10_000;
      check_bool "delivered with source" true (!got = Some 0);
      check_int "counted" 1 (Ipi.sent m.Machine.ipi))

let test_ipi_trap_occupies_core () =
  run_machine (fun m ->
      (* The target core is busy; the trap queues behind that work. *)
      let fired_at = ref 0 in
      Ipi.register m.Machine.ipi ~core:1 ~vector:0x31 (fun ~src:_ ->
          fired_at := Engine.now_ ());
      Engine.spawn_ (fun () -> Machine.compute m ~core:1 50_000);
      Engine.wait 1;
      Ipi.send m.Machine.ipi ~src:0 ~dst:1 ~vector:0x31;
      Engine.wait 100_000;
      check_bool "handler waited for the busy core" true (!fired_at >= 50_000))

let test_ipi_unknown_vector () =
  run_machine (fun m ->
      check_bool "raises" true
        (match Ipi.send m.Machine.ipi ~src:0 ~dst:1 ~vector:0x99 with
         | () -> false
         | exception Invalid_argument _ -> true))

(* ---- Machine ---- *)

let test_alloc_alignment () =
  run_machine (fun m ->
      let a = Machine.alloc_bytes m 10 in
      let b = Machine.alloc_bytes m 10 in
      check_bool "line aligned" true (a mod 64 = 0 && b mod 64 = 0);
      check_bool "disjoint lines" true (b - a >= 64))

let test_compute_serializes () =
  run_machine (fun m ->
      let finish = Array.make 2 0 in
      let done_ = Sync.Semaphore.create 0 in
      for i = 0 to 1 do
        Engine.spawn_ (fun () ->
            Machine.compute m ~core:0 100;
            finish.(i) <- Engine.now_ ();
            Sync.Semaphore.release done_)
      done;
      Sync.Semaphore.acquire done_;
      Sync.Semaphore.acquire done_;
      check_int "first" 100 finish.(0);
      check_int "second queued" 200 finish.(1))

let test_compute_different_cores_parallel () =
  run_machine (fun m ->
      let done_ = Sync.Semaphore.create 0 in
      for i = 0 to 1 do
        Engine.spawn_ (fun () ->
            Machine.compute m ~core:i 100;
            Sync.Semaphore.release done_)
      done;
      Sync.Semaphore.acquire done_;
      Sync.Semaphore.acquire done_;
      check_int "overlapped" 100 (Engine.now_ ()))

(* ---- Perfcounter ---- *)

let test_snapshot_diff () =
  let plat = Platform.amd_2x2 in
  let pc = Perfcounter.create plat in
  Perfcounter.count_load pc ~core:0;
  let s1 = Perfcounter.snapshot pc in
  Perfcounter.count_load pc ~core:0;
  Perfcounter.count_miss pc ~core:1;
  Perfcounter.add_link_dwords pc (0, 1) 18;
  let d = Perfcounter.diff (Perfcounter.snapshot pc) s1 in
  check_int "loads delta" 1 d.Perfcounter.loads.(0);
  check_int "miss delta" 1 d.Perfcounter.dcache_miss.(1);
  check_int "dwords" 18 (Perfcounter.dwords_on d (0, 1));
  check_int "missing link" 0 (Perfcounter.dwords_on d (1, 0))

let test_footprint () =
  let pc = Perfcounter.create Platform.amd_2x2 in
  Perfcounter.touch_line pc ~core:0 ~line:1;
  check_int "disabled: not tracked" 0 (Perfcounter.footprint_lines pc ~core:0);
  Perfcounter.set_footprint_tracking pc true;
  Perfcounter.touch_line pc ~core:0 ~line:1;
  Perfcounter.touch_line pc ~core:0 ~line:1;
  Perfcounter.touch_line pc ~core:0 ~line:2;
  check_int "distinct lines" 2 (Perfcounter.footprint_lines pc ~core:0);
  Perfcounter.reset_footprint pc;
  check_int "reset" 0 (Perfcounter.footprint_lines pc ~core:0)

let suite =
  ( "hw-misc",
    [
      tc "tlb fill/invalidate" test_tlb_fill_invalidate;
      tc "tlb flush" test_tlb_flush;
      tc "tlb refill idempotent" test_tlb_refill_idempotent;
      tc "ipi delivery" test_ipi_delivery;
      tc "ipi trap occupies core" test_ipi_trap_occupies_core;
      tc "ipi unknown vector" test_ipi_unknown_vector;
      tc "alloc alignment" test_alloc_alignment;
      tc "compute serializes" test_compute_serializes;
      tc "compute parallel across cores" test_compute_different_cores_parallel;
      tc "perfcounter snapshot/diff" test_snapshot_diff;
      tc "perfcounter footprint" test_footprint;
    ] )
