open Mk
open Test_util

let fresh () = Cap.Db.create ~core:0
let meg = 1 lsl 20

let test_mint () =
  let db = fresh () in
  let ram = Cap.Db.mint_ram db ~base:0 ~bytes:meg in
  check_bool "type" true (ram.Cap.otype = Cap.RAM);
  check_int "bytes" meg ram.Cap.bytes;
  check_bool "present" true (Cap.Db.mem db ram);
  check_int "db size" 1 (Cap.Db.size db)

let test_retype_carves_sequentially () =
  let db = fresh () in
  let ram = Cap.Db.mint_ram db ~base:0 ~bytes:meg in
  let frames =
    match Cap.Db.retype db ram ~to_:Cap.Frame ~count:3 ~bytes_each:4096 with
    | Ok l -> l
    | Error e -> Alcotest.fail (Types.error_to_string e)
  in
  check_int "three children" 3 (List.length frames);
  List.iteri
    (fun i f ->
      check_int "base" (i * 4096) f.Cap.base;
      check_bool "type" true (f.Cap.otype = Cap.Frame))
    frames;
  (* Next carve continues after the first. *)
  (match Cap.Db.retype db ram ~to_:(Cap.Page_table 4) ~count:1 ~bytes_each:4096 with
   | Ok [ pt ] -> check_int "continues at frontier" (3 * 4096) pt.Cap.base
   | Ok _ | Error _ -> Alcotest.fail "second retype failed");
  check_bool "has descendants" true (Cap.Db.has_descendants db ram)

let test_retype_rules () =
  let db = fresh () in
  let ram = Cap.Db.mint_ram db ~base:0 ~bytes:meg in
  let frame =
    match Cap.Db.retype db ram ~to_:Cap.Frame ~count:1 ~bytes_each:4096 with
    | Ok [ f ] -> f
    | _ -> Alcotest.fail "setup"
  in
  (* Frames are not retypeable. *)
  (match Cap.Db.retype db frame ~to_:Cap.Frame ~count:1 ~bytes_each:64 with
   | Error (Types.Err_cap_type _) -> ()
   | _ -> Alcotest.fail "frame retype should be refused");
  (* RAM -> RAM is allowed (memory-server splitting). *)
  (match Cap.Db.retype db ram ~to_:Cap.RAM ~count:1 ~bytes_each:4096 with
   | Ok [ _ ] -> ()
   | _ -> Alcotest.fail "RAM->RAM should work");
  (* Space exhaustion. *)
  (match Cap.Db.retype db ram ~to_:Cap.Frame ~count:1 ~bytes_each:(2 * meg) with
   | Error Types.Err_retype_conflict -> ()
   | _ -> Alcotest.fail "oversized retype should fail");
  (* Bad arguments. *)
  match Cap.Db.retype db ram ~to_:Cap.Frame ~count:0 ~bytes_each:64 with
  | Error (Types.Err_invalid_args _) -> ()
  | _ -> Alcotest.fail "zero count should fail"

let test_copy_delete () =
  let db = fresh () in
  let ram = Cap.Db.mint_ram db ~base:0 ~bytes:meg in
  let copy = match Cap.Db.copy db ram with Ok c -> c | Error _ -> Alcotest.fail "copy" in
  check_bool "distinct capids" true (copy.Cap.capid <> ram.Cap.capid);
  check_bool "same extent" true (copy.Cap.base = ram.Cap.base && copy.Cap.bytes = ram.Cap.bytes);
  (match Cap.Db.delete db copy with Ok () -> () | Error _ -> Alcotest.fail "delete");
  check_bool "copy gone" false (Cap.Db.mem db copy);
  check_bool "original lives" true (Cap.Db.mem db ram);
  match Cap.Db.delete db copy with
  | Error Types.Err_cap_not_found -> ()
  | _ -> Alcotest.fail "double delete should fail"

let test_revoke () =
  let db = fresh () in
  let ram = Cap.Db.mint_ram db ~base:0 ~bytes:meg in
  let copy = Result.get_ok (Cap.Db.copy db ram) in
  let frames =
    Result.get_ok (Cap.Db.retype db ram ~to_:Cap.Frame ~count:2 ~bytes_each:4096)
  in
  let grandkid =
    Result.get_ok (Cap.Db.retype db ram ~to_:Cap.RAM ~count:1 ~bytes_each:4096)
    |> List.hd
  in
  let leaf =
    Result.get_ok (Cap.Db.retype db grandkid ~to_:Cap.Frame ~count:1 ~bytes_each:64)
    |> List.hd
  in
  let killed = Result.get_ok (Cap.Db.revoke db ram) in
  (* 2 frames + RAM child + its leaf + the copy. *)
  check_int "kill count" 5 killed;
  check_bool "invoked cap survives" true (Cap.Db.mem db ram);
  List.iter (fun f -> check_bool "frame dead" false (Cap.Db.mem db f)) frames;
  check_bool "grandkid dead" false (Cap.Db.mem db grandkid);
  check_bool "leaf dead" false (Cap.Db.mem db leaf);
  check_bool "copy dead" false (Cap.Db.mem db copy);
  (* Region is virgin: a full-size retype now succeeds. *)
  match Cap.Db.retype db ram ~to_:Cap.Frame ~count:1 ~bytes_each:meg with
  | Ok [ _ ] -> ()
  | _ -> Alcotest.fail "revoked region should be reusable"

let test_frontier_protocol () =
  let db0 = fresh () in
  let db1 = Cap.Db.create ~core:1 in
  let ram = Cap.Db.mint_ram db0 ~base:0 ~bytes:meg in
  check_bool "unknown replica votes yes" true (Cap.Db.vote_retype db1 ram ~expected_frontier:0);
  (match Cap.Db.insert_remote db1 ram with Ok () -> () | Error _ -> Alcotest.fail "insert");
  check_bool "fresh replica votes yes" true (Cap.Db.vote_retype db1 ram ~expected_frontier:0);
  (* Remote advances; now a vote expecting 0 fails. *)
  (match Cap.Db.advance_frontier db1 ram ~bytes:4096 with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "advance");
  check_bool "stale vote refused" false (Cap.Db.vote_retype db1 ram ~expected_frontier:0);
  check_bool "current vote ok" true (Cap.Db.vote_retype db1 ram ~expected_frontier:4096);
  check_bool "frontier readable" true (Cap.Db.frontier db1 ram = Ok 4096)

let test_insert_remote_dedup () =
  let db1 = Cap.Db.create ~core:1 in
  let db0 = fresh () in
  let ram = Cap.Db.mint_ram db0 ~base:0 ~bytes:meg in
  (match Cap.Db.insert_remote db1 ram with Ok () -> () | Error _ -> Alcotest.fail "first");
  match Cap.Db.insert_remote db1 ram with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate insert should fail"

let test_revoke_replica () =
  let db0 = fresh () in
  let db1 = Cap.Db.create ~core:1 in
  let ram = Cap.Db.mint_ram db0 ~base:0 ~bytes:meg in
  ignore (Cap.Db.insert_remote db1 ram : (unit, Types.error) result);
  let killed = Cap.Db.revoke_replica db1 ram in
  check_int "replica killed" 1 killed;
  check_bool "gone" false (Cap.Db.mem db1 ram);
  check_int "unknown object kills none" 0 (Cap.Db.revoke_replica db1 ram)

let test_space () =
  let sp = Cap.Space.create () in
  let db = fresh () in
  let ram = Cap.Db.mint_ram db ~base:0 ~bytes:4096 in
  let slot = Cap.Space.put sp ram in
  check_bool "get" true (Cap.Space.get sp slot = Ok ram);
  check_int "count" 1 (Cap.Space.count sp);
  Cap.Space.remove sp slot;
  check_bool "empty slot" true (Cap.Space.get sp slot = Error Types.Err_cap_not_found)

let qcheck_revoke_kills_all_descendants =
  qtest "revoke destroys every descendant" ~count:50
    QCheck2.Gen.(list_size (int_range 1 12) (int_range 1 3))
    (fun plan ->
      let db = fresh () in
      let ram = Cap.Db.mint_ram db ~base:0 ~bytes:(16 * meg) in
      (* Build a random derivation forest under [ram]. *)
      let minted = ref [] in
      let parents = ref [ ram ] in
      List.iter
        (fun k ->
          let parent = List.nth !parents (k mod List.length !parents) in
          if parent.Cap.otype = Cap.RAM then
            match Cap.Db.retype db parent ~to_:Cap.RAM ~count:1 ~bytes_each:4096 with
            | Ok [ c ] ->
              minted := c :: !minted;
              parents := c :: !parents
            | _ -> ())
        plan;
      ignore (Cap.Db.revoke db ram : (int, Types.error) result);
      List.for_all (fun c -> not (Cap.Db.mem db c)) !minted && Cap.Db.mem db ram)

let suite =
  ( "cap",
    [
      tc "mint" test_mint;
      tc "retype carves" test_retype_carves_sequentially;
      tc "retype rules" test_retype_rules;
      tc "copy/delete" test_copy_delete;
      tc "revoke" test_revoke;
      tc "frontier protocol" test_frontier_protocol;
      tc "insert remote dedup" test_insert_remote_dedup;
      tc "revoke replica" test_revoke_replica;
      tc "cap space" test_space;
      qcheck_revoke_kills_all_descendants;
    ] )
