(* Timer device + TCP retransmission under injected packet loss. *)

open Mk_sim
open Mk_hw
open Mk_net
open Test_util

let test_timer_oneshot () =
  run_machine (fun m ->
      let tm = Timer.create m ~core:0 in
      let fired_at = ref (-1) in
      let h = Timer.arm tm ~delay:500 (fun () -> fired_at := Engine.now_ ()) in
      check_bool "armed" true (Timer.is_armed h);
      Engine.wait 1000;
      check_bool "fired around 500" true (!fired_at >= 500 && !fired_at < 1000);
      check_int "count" 1 (Timer.fired tm))

let test_timer_cancel () =
  run_machine (fun m ->
      let tm = Timer.create m ~core:0 in
      let fired = ref false in
      let h = Timer.arm tm ~delay:500 (fun () -> fired := true) in
      Engine.wait 100;
      Timer.cancel h;
      Engine.wait 1000;
      check_bool "never fired" false !fired;
      check_int "count" 0 (Timer.fired tm))

let test_timer_periodic () =
  run_machine (fun m ->
      let tm = Timer.create m ~core:1 in
      let ticks = ref 0 in
      let h = Timer.arm_periodic tm ~interval:1000 (fun () -> incr ticks) in
      Engine.wait 4500;
      Timer.cancel h;
      let at_cancel = !ticks in
      Engine.wait 5000;
      check_bool "ticked a few times" true (at_cancel >= 3 && at_cancel <= 5);
      check_int "stopped" at_cancel !ticks)

(* Two stacks over a lossy URPC link; the client side has a timer, so its
   segments are retransmitted until acknowledged. *)
let with_lossy_stacks ~rate f =
  run_machine (fun m ->
      let nif_a, nif_b = Stack.connect_urpc m ~core_a:0 ~core_b:2 () in
      (* Drop frames arriving at B (client->server direction). *)
      Netif.set_loss nif_b ~seed:7 rate;
      let tm_a = Timer.create m ~core:0 in
      let tm_b = Timer.create m ~core:2 in
      let sa = Stack.create m ~core:0 ~timer:tm_a nif_a in
      let sb = Stack.create m ~core:2 ~timer:tm_b nif_b in
      f m sa sb)

let test_tcp_survives_loss () =
  with_lossy_stacks ~rate:0.35 (fun _m sa sb ->
      let listener = Stack.tcp_listen sb ~port:80 in
      let got = Buffer.create 256 in
      Engine.spawn_ (fun () ->
          let conn = Tcp_lite.accept listener in
          let rec drain () =
            match Tcp_lite.recv conn with
            | "" -> ()
            | chunk ->
              Buffer.add_string got chunk;
              drain ()
          in
          drain ());
      let conn = Stack.tcp_connect sa ~dst_ip:(Stack.ip sb) ~dst_port:80 in
      let payload = String.init 20_000 (fun i -> Char.chr (65 + (i mod 26))) in
      Tcp_lite.send conn payload;
      Tcp_lite.close conn;
      (* Give the retransmission machinery room to converge. *)
      Engine.wait 300_000_000;
      check_string "payload intact despite 35% loss" payload (Buffer.contents got);
      check_bool "really retransmitted" true
        (Tcp_lite.retransmissions (Stack.tcp sa) > 0))

let test_tcp_gives_up_on_dead_peer () =
  run_machine (fun m ->
      (* A netif whose frames vanish entirely. *)
      let nif = Netif.create ~name:"blackhole" ~mac:1 ~send:(fun _ -> ()) in
      let tm = Timer.create m ~core:0 in
      let stack = Stack.create m ~core:0 ~timer:tm nif in
      let gave_up = ref false in
      Engine.spawn_ (fun () ->
          (* connect blocks forever (SYN never answered); observe from the
             outside that retransmission stopped after max_retries. *)
          ignore (Stack.tcp_connect stack ~dst_ip:99 ~dst_port:1 : Tcp_lite.conn);
          gave_up := true);
      Engine.wait 400_000_000;
      let sent, _ = Tcp_lite.stats (Stack.tcp stack) in
      check_bool "bounded retries" true (sent <= 10);
      check_bool "connect still blocked (no fake success)" false !gave_up)

let test_loss_guard () =
  run_machine (fun _m ->
      let nif = Netif.create ~name:"x" ~mac:1 ~send:(fun _ -> ()) in
      check_bool "rate 1 rejected" true
        (match Netif.set_loss nif 1.0 with
         | () -> false
         | exception Invalid_argument _ -> true))

let suite =
  ( "net-loss",
    [
      tc "timer oneshot" test_timer_oneshot;
      tc "timer cancel" test_timer_cancel;
      tc "timer periodic" test_timer_periodic;
      tc "tcp survives loss" test_tcp_survives_loss;
      tc "tcp gives up" test_tcp_gives_up_on_dead_peer;
      tc "loss guard" test_loss_guard;
    ] )
