open Mk
open Test_util

let setup os =
  let mon = Os.monitor os ~core:0 in
  let db0 = Cpu_driver.capdb (Monitor.driver mon) in
  let ram = Cap.Db.mint_ram db0 ~base:0x10000000 ~bytes:(1 lsl 20) in
  let plan = Os.default_plan os ~root:0 ~members:[ 0; 1; 2; 3 ] in
  (mon, db0, ram, plan)

let test_distributed_retype () =
  run_os (fun os ->
      let mon, db0, ram, plan = setup os in
      match Capops.retype mon ~plan ram ~to_:Cap.Frame ~count:4 ~bytes_each:4096 with
      | Ok caps ->
        check_int "children" 4 (List.length caps);
        check_bool "present locally" true (List.for_all (Cap.Db.mem db0) caps)
      | Error e -> Alcotest.fail (Types.error_to_string e))

let test_replicas_advance_consistently () =
  run_os (fun os ->
      let mon, _db0, ram, plan = setup os in
      (* Replicate the cap to core 2 first. *)
      (match Monitor.send_cap mon ~dst:2 ram with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Types.error_to_string e));
      (match Capops.retype mon ~plan ram ~to_:Cap.Frame ~count:1 ~bytes_each:4096 with
       | Ok _ -> ()
       | Error e -> Alcotest.fail (Types.error_to_string e));
      let db2 = Cpu_driver.capdb (Os.driver os ~core:2) in
      check_bool "replica frontier advanced" true (Cap.Db.frontier db2 ram = Ok 4096);
      (* Core 2 can now retype the NEXT extent through its own monitor. *)
      let mon2 = Os.monitor os ~core:2 in
      let plan2 = Os.default_plan os ~root:2 ~members:[ 0; 1; 2; 3 ] in
      match Capops.retype mon2 ~plan:plan2 ram ~to_:Cap.Frame ~count:1 ~bytes_each:4096 with
      | Ok [ f ] -> check_int "continues at 4096" (ram.Cap.base + 4096) f.Cap.base
      | Ok _ -> Alcotest.fail "unexpected result shape"
      | Error e -> Alcotest.fail (Types.error_to_string e))

let test_concurrent_retypes_conflict () =
  run_os (fun os ->
      let mon0, _db0, ram, plan = setup os in
      (match Monitor.send_cap mon0 ~dst:2 ram with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Types.error_to_string e));
      let mon2 = Os.monitor os ~core:2 in
      let plan2 = Os.default_plan os ~root:2 ~members:[ 0; 1; 2; 3 ] in
      (* Launch both split-phase retypes before either completes: they race
         for the same extent; exactly one must win. *)
      let k0 = Capops.retype_async mon0 ~plan ram ~to_:Cap.Frame ~count:1 ~bytes_each:4096 in
      let k2 =
        Capops.retype_async mon2 ~plan:plan2 ram ~to_:(Cap.Page_table 1) ~count:1
          ~bytes_each:4096
      in
      let r0 = k0 () and r2 = k2 () in
      let ok r = match r with Ok _ -> 1 | Error _ -> 0 in
      (* Safety: never two winners (mutual abort is allowed, as in any 2PC
         without priorities — the initiators then retry). *)
      check_bool "at most one winner" true (ok r0 + ok r2 <= 1);
      if ok r0 + ok r2 = 0 then begin
        (* Liveness: with the race gone, a retry commits. *)
        match Capops.retype mon0 ~plan ram ~to_:Cap.Frame ~count:1 ~bytes_each:4096 with
        | Ok _ -> ()
        | Error e -> Alcotest.fail ("retry failed: " ^ Types.error_to_string e)
      end)

let test_distributed_revoke () =
  run_os (fun os ->
      let mon, db0, ram, plan = setup os in
      let frame =
        match Capops.retype mon ~plan ram ~to_:Cap.Frame ~count:1 ~bytes_each:4096 with
        | Ok [ f ] -> f
        | _ -> Alcotest.fail "setup retype"
      in
      (* Spread the frame to other cores. *)
      (match Monitor.send_cap mon ~dst:1 frame with Ok () -> () | Error _ -> Alcotest.fail "xfer");
      (match Monitor.send_cap mon ~dst:3 frame with Ok () -> () | Error _ -> Alcotest.fail "xfer");
      (match Capops.revoke mon ~plan ram with
       | Ok _ -> ()
       | Error e -> Alcotest.fail (Types.error_to_string e));
      check_bool "local child dead" false (Cap.Db.mem db0 frame);
      check_bool "remote copy dead (core1)" false
        (Cap.Db.mem (Cpu_driver.capdb (Os.driver os ~core:1)) frame);
      check_bool "remote copy dead (core3)" false
        (Cap.Db.mem (Cpu_driver.capdb (Os.driver os ~core:3)) frame);
      check_bool "revoked cap survives" true (Cap.Db.mem db0 ram);
      (* The safety property the 2PC protects (§4.7): after revoke, no core
         holds a mapping-capable cap over the region. *)
      match Capops.retype mon ~plan ram ~to_:(Cap.Page_table 1) ~count:1 ~bytes_each:4096 with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("retype after revoke: " ^ Types.error_to_string e))

let suite =
  ( "capops",
    [
      tc "distributed retype" test_distributed_retype;
      tc "replicas advance" test_replicas_advance_consistently;
      tc "concurrent retypes conflict" test_concurrent_retypes_conflict;
      tc "distributed revoke" test_distributed_revoke;
    ] )
