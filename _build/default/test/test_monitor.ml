open Mk_sim
open Mk_hw
open Mk
open Test_util

let test_ping () =
  run_os (fun os ->
      let mon = Os.monitor os ~core:0 in
      let rtt = Monitor.ping mon 3 in
      check_bool "positive round trip" true (rtt > 0);
      (* Two pings cost about the same (deterministic steady state). *)
      let rtt2 = Monitor.ping mon 3 in
      check_bool "steady" true (abs (rtt - rtt2) < rtt))

let test_fan_noop_all_ack () =
  run_os (fun os ->
      let mon = Os.monitor os ~core:0 in
      let plan = Os.default_plan os ~root:0 ~members:[ 0; 1; 2; 3 ] in
      let t0 = Engine.now_ () in
      Monitor.run_fan mon ~plan ~op:Monitor.Op_noop;
      check_bool "took time" true (Engine.now_ () - t0 > 0))

let test_fan_tlb_invalidate () =
  run_os (fun os ->
      let m = Os.machine os in
      let vpage = 77 in
      Array.iter (fun tlb -> Tlb.fill tlb ~vpage) m.Machine.tlbs;
      let mon = Os.monitor os ~core:0 in
      let plan = Os.default_plan os ~root:0 ~members:[ 0; 1; 2; 3 ] in
      Monitor.run_fan mon ~plan ~op:(Monitor.Op_tlb_invalidate { vpages = [ vpage ] });
      Array.iter
        (fun tlb ->
          check_bool
            (Printf.sprintf "core %d clean" (Tlb.core tlb))
            false (Tlb.mem tlb ~vpage))
        m.Machine.tlbs)

let test_fan_replica_update () =
  run_os (fun os ->
      let mon = Os.monitor os ~core:0 in
      let plan = Os.default_plan os ~root:0 ~members:[ 0; 1; 2; 3 ] in
      Monitor.run_fan mon ~plan ~op:(Monitor.Op_set_replica { key = "quantum"; value = 42 });
      for c = 0 to 3 do
        check_bool
          (Printf.sprintf "replica on %d" c)
          true
          (Monitor.get_replica (Os.monitor os ~core:c) "quantum" = Some 42)
      done)

let test_agree_commit () =
  run_os (fun os ->
      let mon = Os.monitor os ~core:0 in
      let plan = Os.default_plan os ~root:0 ~members:[ 0; 1; 2; 3 ] in
      check_bool "noop commits" true (Monitor.agree mon ~plan ~op:Monitor.Ag_noop))

let test_agree_abort_on_stale_vote () =
  run_os (fun os ->
      let mon0 = Os.monitor os ~core:0 in
      let db0 = Cpu_driver.capdb (Monitor.driver mon0) in
      let ram = Cap.Db.mint_ram db0 ~base:0x9000000 ~bytes:65536 in
      (* Replicate to core 2, then advance the replica out from under an
         agreement that expects frontier 0. *)
      (match Monitor.send_cap mon0 ~dst:2 ram with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Types.error_to_string e));
      let db2 = Cpu_driver.capdb (Os.driver os ~core:2) in
      (match Cap.Db.advance_frontier db2 ram ~bytes:4096 with
       | Ok () -> ()
       | Error _ -> Alcotest.fail "advance");
      let plan = Os.default_plan os ~root:0 ~members:[ 0; 1; 2; 3 ] in
      let committed =
        Monitor.agree mon0 ~plan
          ~op:(Monitor.Ag_retype { cap = ram; expected_frontier = 0; bytes = 4096 })
      in
      check_bool "stale view aborts" false committed)

let test_pipelined_agrees () =
  run_os (fun os ->
      let mon = Os.monitor os ~core:0 in
      let plan = Os.default_plan os ~root:0 ~members:[ 0; 1; 2; 3 ] in
      let ivs = List.init 8 (fun _ -> Monitor.agree_async mon ~plan ~op:Monitor.Ag_noop) in
      List.iter (fun iv -> check_bool "all commit" true (Sync.Ivar.read iv)) ivs)

let test_cap_transfer () =
  run_os (fun os ->
      let mon = Os.monitor os ~core:0 in
      let db0 = Cpu_driver.capdb (Monitor.driver mon) in
      let ram = Cap.Db.mint_ram db0 ~base:0xa000000 ~bytes:4096 in
      (match Monitor.send_cap mon ~dst:1 ram with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Types.error_to_string e));
      check_bool "present remotely" true (Cap.Db.mem (Cpu_driver.capdb (Os.driver os ~core:1)) ram);
      (* Page tables must not cross cores. *)
      let pt =
        Result.get_ok (Cap.Db.retype db0 ram ~to_:(Cap.Page_table 1) ~count:1 ~bytes_each:4096)
        |> List.hd
      in
      match Monitor.send_cap mon ~dst:1 pt with
      | Error (Types.Err_cap_type _) -> ()
      | _ -> Alcotest.fail "page table transfer should be refused")

let test_wake () =
  run_os (fun os ->
      let mon0 = Os.monitor os ~core:0 in
      let mon3 = Os.monitor os ~core:3 in
      let woken = ref false in
      Monitor.register_wake mon3 7 (fun () -> woken := true);
      Monitor.wake_remote mon0 ~core:3 7;
      Engine.wait 100_000;
      check_bool "wake delivered" true !woken)

let test_messages_handled_counted () =
  run_os (fun os ->
      let mon = Os.monitor os ~core:0 in
      let before = Monitor.messages_handled (Os.monitor os ~core:2) in
      ignore (Monitor.ping mon 2 : int);
      check_bool "peer handled our ping" true
        (Monitor.messages_handled (Os.monitor os ~core:2) > before))

let suite =
  ( "monitor",
    [
      tc "ping" test_ping;
      tc "fan noop" test_fan_noop_all_ack;
      tc "fan tlb invalidate" test_fan_tlb_invalidate;
      tc "fan replica update" test_fan_replica_update;
      tc "agree commit" test_agree_commit;
      tc "agree abort on stale vote" test_agree_abort_on_stale_vote;
      tc "pipelined agrees" test_pipelined_agrees;
      tc "cap transfer" test_cap_transfer;
      tc "wake" test_wake;
      tc "messages handled" test_messages_handled_counted;
    ] )
