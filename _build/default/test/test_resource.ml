open Mk_sim
open Test_util

let test_uncontended () =
  run_sim (fun () ->
      let r = Resource.create () in
      let start = Resource.acquire r 100 in
      check_int "starts immediately" 0 start;
      check_int "now" 100 (Engine.now_ ()))

let test_fifo_queueing () =
  let finishes =
    run_sim (fun () ->
        let r = Resource.create () in
        let log = ref [] in
        let done_ = Sync.Semaphore.create 0 in
        for i = 0 to 2 do
          Engine.spawn_ (fun () ->
              let (_ : int) = Resource.acquire r 50 in
              log := (i, Engine.now_ ()) :: !log;
              Sync.Semaphore.release done_)
        done;
        for _ = 1 to 3 do
          Sync.Semaphore.acquire done_
        done;
        List.rev !log)
  in
  check_bool "serialized in order" true (finishes = [ (0, 50); (1, 100); (2, 150) ])

let test_reserve_nonblocking () =
  run_sim (fun () ->
      let r = Resource.create () in
      let d1 = Resource.reserve r 30 in
      let d2 = Resource.reserve r 30 in
      check_int "first" 30 d1;
      check_int "queued" 60 d2;
      check_int "no time passed" 0 (Engine.now_ ()))

let test_accounting () =
  run_sim (fun () ->
      let r = Resource.create () in
      ignore (Resource.acquire r 40 : int);
      Engine.wait 60;
      check_int "busy cycles" 40 (Resource.busy_cycles r);
      let u = Resource.utilization r ~since:0 ~now:(Engine.now_ ()) in
      check_bool "utilization 0.4" true (abs_float (u -. 0.4) < 1e-9);
      Resource.reset_accounting r;
      check_int "reset" 0 (Resource.busy_cycles r))

let test_idle_gap () =
  run_sim (fun () ->
      let r = Resource.create () in
      ignore (Resource.acquire r 10 : int);
      Engine.wait 100;
      (* Idle resource restarts at now, not at its old frontier. *)
      let start = Resource.acquire r 10 in
      check_int "starts now" 110 start)

let suite =
  ( "resource",
    [
      tc "uncontended" test_uncontended;
      tc "fifo queueing" test_fifo_queueing;
      tc "reserve nonblocking" test_reserve_nonblocking;
      tc "accounting" test_accounting;
      tc "idle gap" test_idle_gap;
    ] )
