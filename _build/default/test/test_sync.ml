open Mk_sim
open Test_util

let test_ivar_basic () =
  run_sim (fun () ->
      let iv = Sync.Ivar.create () in
      check_bool "not filled" false (Sync.Ivar.is_filled iv);
      check_bool "peek none" true (Sync.Ivar.peek iv = None);
      Sync.Ivar.fill iv 42;
      check_bool "filled" true (Sync.Ivar.is_filled iv);
      check_int "read" 42 (Sync.Ivar.read iv);
      check_bool "double fill rejected" true
        (match Sync.Ivar.fill iv 1 with
         | () -> false
         | exception Invalid_argument _ -> true))

let test_ivar_blocks_readers () =
  let order =
    run_sim (fun () ->
        let iv = Sync.Ivar.create () in
        let log = ref [] in
        Engine.spawn_ (fun () ->
            let v = Sync.Ivar.read iv in
            log := ("r1", v) :: !log);
        Engine.spawn_ (fun () ->
            let v = Sync.Ivar.read iv in
            log := ("r2", v) :: !log);
        Engine.wait 100;
        Sync.Ivar.fill iv 7;
        Engine.wait 1;
        List.rev !log)
  in
  check_bool "both woke with value" true (order = [ ("r1", 7); ("r2", 7) ])

let test_mailbox_fifo () =
  run_sim (fun () ->
      let mb = Sync.Mailbox.create () in
      List.iter (Sync.Mailbox.send mb) [ 1; 2; 3 ];
      check_int "len" 3 (Sync.Mailbox.length mb);
      check_int "1" 1 (Sync.Mailbox.recv mb);
      check_int "2" 2 (Sync.Mailbox.recv mb);
      check_bool "try" true (Sync.Mailbox.try_recv mb = Some 3);
      check_bool "empty" true (Sync.Mailbox.try_recv mb = None))

let test_mailbox_blocking () =
  let v =
    run_sim (fun () ->
        let mb = Sync.Mailbox.create () in
        Engine.spawn_ (fun () ->
            Engine.wait 30;
            Sync.Mailbox.send mb 99);
        let v = Sync.Mailbox.recv mb in
        check_int "woke at send time" 30 (Engine.now_ ());
        v)
  in
  check_int "value" 99 v

let test_semaphore () =
  run_sim (fun () ->
      let sem = Sync.Semaphore.create 2 in
      Sync.Semaphore.acquire sem;
      Sync.Semaphore.acquire sem;
      check_int "drained" 0 (Sync.Semaphore.available sem);
      let got_third = ref false in
      Engine.spawn_ (fun () ->
          Sync.Semaphore.acquire sem;
          got_third := true);
      Engine.wait 10;
      check_bool "blocked" false !got_third;
      Sync.Semaphore.release sem;
      Engine.wait 1;
      check_bool "released" true !got_third)

let test_mutex_exclusion () =
  run_sim (fun () ->
      let mu = Sync.Mutex.create () in
      let inside = ref 0 and max_inside = ref 0 in
      let done_ = Sync.Semaphore.create 0 in
      for _ = 1 to 5 do
        Engine.spawn_ (fun () ->
            Sync.Mutex.with_lock mu (fun () ->
                incr inside;
                if !inside > !max_inside then max_inside := !inside;
                Engine.wait 10;
                decr inside);
            Sync.Semaphore.release done_)
      done;
      for _ = 1 to 5 do
        Sync.Semaphore.acquire done_
      done;
      check_int "never two inside" 1 !max_inside;
      check_bool "unlock when free fails" true
        (match Sync.Mutex.unlock mu with
         | () -> false
         | exception Invalid_argument _ -> true))

let test_condition () =
  run_sim (fun () ->
      let mu = Sync.Mutex.create () in
      let cond = Sync.Condition.create () in
      let ready = ref false in
      let observed = ref false in
      Engine.spawn_ (fun () ->
          Sync.Mutex.lock mu;
          while not !ready do
            Sync.Condition.wait cond mu
          done;
          observed := true;
          Sync.Mutex.unlock mu);
      Engine.wait 20;
      Sync.Mutex.lock mu;
      ready := true;
      Sync.Condition.signal cond;
      Sync.Mutex.unlock mu;
      Engine.wait 1;
      check_bool "consumer saw flag" true !observed)

let test_condition_broadcast () =
  run_sim (fun () ->
      let mu = Sync.Mutex.create () in
      let cond = Sync.Condition.create () in
      let woke = ref 0 in
      for _ = 1 to 3 do
        Engine.spawn_ (fun () ->
            Sync.Mutex.lock mu;
            Sync.Condition.wait cond mu;
            incr woke;
            Sync.Mutex.unlock mu)
      done;
      Engine.wait 10;
      Sync.Condition.broadcast cond;
      Engine.wait 1;
      check_int "all three woke" 3 !woke)

let test_barrier_rounds () =
  run_sim (fun () ->
      let bar = Sync.Barrier.create 3 in
      let rounds = Array.make 3 0 in
      let finished = Sync.Semaphore.create 0 in
      for i = 0 to 2 do
        Engine.spawn_ (fun () ->
            for _ = 1 to 4 do
              Engine.wait (i * 5);
              Sync.Barrier.await bar;
              rounds.(i) <- rounds.(i) + 1
            done;
            Sync.Semaphore.release finished)
      done;
      for _ = 1 to 3 do
        Sync.Semaphore.acquire finished
      done;
      Array.iteri (fun i r -> check_int (Printf.sprintf "party %d" i) 4 r) rounds)

let qcheck_mailbox_order =
  qtest "mailbox preserves order" QCheck2.Gen.(list small_int) (fun xs ->
      run_sim (fun () ->
          let mb = Sync.Mailbox.create () in
          List.iter (Sync.Mailbox.send mb) xs;
          let rec drain acc =
            match Sync.Mailbox.try_recv mb with
            | Some v -> drain (v :: acc)
            | None -> List.rev acc
          in
          drain [] = xs))

let suite =
  ( "sync",
    [
      tc "ivar basic" test_ivar_basic;
      tc "ivar blocks readers" test_ivar_blocks_readers;
      tc "mailbox fifo" test_mailbox_fifo;
      tc "mailbox blocking" test_mailbox_blocking;
      tc "semaphore" test_semaphore;
      tc "mutex exclusion" test_mutex_exclusion;
      tc "condition" test_condition;
      tc "condition broadcast" test_condition_broadcast;
      tc "barrier rounds" test_barrier_rounds;
      qcheck_mailbox_order;
    ] )
