open Mk_sim
open Mk_hw
open Mk_baseline
open Test_util

let test_tas_exclusion () =
  run_machine (fun m ->
      let l = Spinlock.Tas.create m in
      let inside = ref 0 and bad = ref 0 in
      let done_ = Sync.Semaphore.create 0 in
      List.iter
        (fun core ->
          Engine.spawn_ (fun () ->
              Spinlock.Tas.with_lock l ~core (fun () ->
                  incr inside;
                  if !inside > 1 then incr bad;
                  Engine.wait 20;
                  decr inside);
              Sync.Semaphore.release done_))
        [ 0; 1; 2; 3 ];
      for _ = 1 to 4 do
        Sync.Semaphore.acquire done_
      done;
      check_int "exclusive" 0 !bad;
      check_int "acquisitions" 4 (Spinlock.Tas.acquisitions l))

let test_locks_generate_coherence_traffic () =
  run_machine (fun m ->
      let l = Spinlock.Tas.create m in
      let before = Perfcounter.snapshot m.Machine.counters in
      (* Alternate the lock across packages: the line must bounce. *)
      Spinlock.Tas.with_lock l ~core:0 (fun () -> ());
      Spinlock.Tas.with_lock l ~core:2 (fun () -> ());
      Spinlock.Tas.with_lock l ~core:0 (fun () -> ());
      let d = Perfcounter.diff (Perfcounter.snapshot m.Machine.counters) before in
      check_bool "misses" true (d.Perfcounter.dcache_miss.(0) + d.Perfcounter.dcache_miss.(2) > 2))

let test_ticket_and_mcs () =
  run_machine (fun m ->
      let t = Spinlock.Ticket.create m in
      Spinlock.Ticket.with_lock t ~core:0 (fun () -> ());
      let q = Spinlock.Mcs.create m in
      Spinlock.Mcs.with_lock q ~core:1 (fun () -> ());
      (* MCS handoff touches only per-core lines: cheaper under contention
         than the ticket lock's broadcast. *)
      let time_lock lock unlock =
        let t0 = Engine.now_ () in
        let done_ = Sync.Semaphore.create 0 in
        List.iter
          (fun core ->
            Engine.spawn_ (fun () ->
                lock ~core;
                Engine.wait 5;
                unlock ~core;
                Sync.Semaphore.release done_))
          [ 0; 1; 2; 3 ];
        for _ = 1 to 4 do
          Sync.Semaphore.acquire done_
        done;
        Engine.now_ () - t0
      in
      let mcs_time = time_lock (Spinlock.Mcs.lock q) (Spinlock.Mcs.unlock q) in
      check_bool "contended handoff completes" true (mcs_time > 0))

let test_l4_model () =
  run_machine (fun m ->
      check_int "latency on 2x2" 424 (L4_ipc.latency m.Machine.plat);
      check_int "icache" 25 L4_ipc.icache_lines;
      check_int "dcache" 13 L4_ipc.dcache_lines;
      check_bool "flushes tlb" true L4_ipc.flushes_tlb;
      Tlb.fill m.Machine.tlbs.(0) ~vpage:9;
      L4_ipc.ipc m ~core:0;
      check_bool "tlb flushed by space switch" false (Tlb.mem m.Machine.tlbs.(0) ~vpage:9))

let test_kthreads () =
  run_machine (fun m ->
      let mono = Monolithic.create m in
      let v = ref 0 in
      let kt = Monolithic.spawn mono ~core:1 (fun () -> v := 41) in
      Monolithic.join mono kt;
      check_int "ran" 41 !v;
      check_bool "clone charged" true (Engine.now_ () > Monolithic.clone_cost))

let test_futex_barrier () =
  run_machine (fun m ->
      let mono = Monolithic.create m in
      let bar = Monolithic.Futex_barrier.create mono ~parties:3 in
      let through = ref 0 in
      let kts =
        List.map
          (fun core ->
            Monolithic.spawn mono ~core (fun () ->
                Engine.wait (core * 500);
                Monolithic.Futex_barrier.await bar ~core;
                incr through))
          [ 0; 1; 2 ]
      in
      List.iter (Monolithic.join mono) kts;
      check_int "all through" 3 !through)

let test_ipi_shootdown_correctness () =
  run_machine ~plat:Platform.amd_8x4 (fun m ->
      let cores = List.init 8 Fun.id in
      let ctx = Ipi_shootdown.setup m Ipi_shootdown.Linux ~cores in
      let vpage = 5 in
      List.iter (fun c -> Tlb.fill m.Machine.tlbs.(c) ~vpage) cores;
      let lat = Ipi_shootdown.unmap ctx ~initiator:0 ~vpages:[ vpage ] in
      check_bool "took time" true (lat > 0);
      List.iter
        (fun c -> check_bool "entry gone" false (Tlb.mem m.Machine.tlbs.(c) ~vpage))
        cores)

let test_ipi_shootdown_scales_linearly () =
  let lat n =
    run_machine ~plat:Platform.amd_8x4 (fun m ->
        let cores = List.init n Fun.id in
        let ctx = Ipi_shootdown.setup m Ipi_shootdown.Windows ~cores in
        let vpage = 1 in
        List.iter (fun c -> Tlb.fill m.Machine.tlbs.(c) ~vpage) cores;
        Ipi_shootdown.unmap ctx ~initiator:0 ~vpages:[ vpage ])
  in
  let l8 = lat 8 and l32 = lat 32 in
  check_bool "more cores cost more" true (l32 > 3 * l8)

let test_single_core_unmap_is_local () =
  run_machine (fun m ->
      let ctx = Ipi_shootdown.setup m Ipi_shootdown.Linux ~cores:[ 0 ] in
      Tlb.fill m.Machine.tlbs.(0) ~vpage:2;
      let lat = Ipi_shootdown.unmap ctx ~initiator:0 ~vpages:[ 2 ] in
      check_bool "no IPIs sent" true (Ipi.sent m.Machine.ipi = 0);
      check_bool "cheap" true (lat < 5000))

let suite =
  ( "baseline",
    [
      tc "tas exclusion" test_tas_exclusion;
      tc "lock coherence traffic" test_locks_generate_coherence_traffic;
      tc "ticket and mcs" test_ticket_and_mcs;
      tc "l4 model" test_l4_model;
      tc "kthreads" test_kthreads;
      tc "futex barrier" test_futex_barrier;
      tc "ipi shootdown correctness" test_ipi_shootdown_correctness;
      tc "ipi shootdown scales" test_ipi_shootdown_scales_linearly;
      tc "single-core unmap local" test_single_core_unmap_is_local;
    ] )
