open Mk_hw
open Test_util

let test_core_counts () =
  check_int "intel" 8 (Platform.n_cores Platform.intel_2x4);
  check_int "2x2" 4 (Platform.n_cores Platform.amd_2x2);
  check_int "4x4" 16 (Platform.n_cores Platform.amd_4x4);
  check_int "8x4" 32 (Platform.n_cores Platform.amd_8x4)

let test_package_map () =
  let p = Platform.amd_4x4 in
  check_int "core 0" 0 (Platform.package_of p 0);
  check_int "core 3" 0 (Platform.package_of p 3);
  check_int "core 4" 1 (Platform.package_of p 4);
  check_int "core 15" 3 (Platform.package_of p 15)

let test_share_groups () =
  (* Intel: 2-core dies share an L2; AMD 4x4: whole package shares L3. *)
  let i = Platform.intel_2x4 in
  check_bool "intel 0-1 share" true (Platform.shares_cache i 0 1);
  check_bool "intel 1-2 don't" false (Platform.shares_cache i 1 2);
  let a = Platform.amd_4x4 in
  check_bool "amd 0-3 share" true (Platform.shares_cache a 0 3);
  check_bool "amd 3-4 don't" false (Platform.shares_cache a 3 4)

let test_hops () =
  let p = Platform.amd_8x4 in
  check_int "same package" 0 (Platform.hops_between p 0 3);
  check_int "adjacent" 1 (Platform.hops_between p 0 4 (* pkg 0 -> pkg 1 *));
  check_bool "diameter 3" true (Topology.diameter p.Platform.topo = 3)

let test_cycles_to_ns () =
  let p = Platform.amd_8x4 (* 2 GHz *) in
  check_bool "2 cycles = 1 ns" true
    (abs_float (Platform.cycles_to_ns p 2.0 -. 1.0) < 1e-9)

let test_synthetic_mesh () =
  let p = Platform.synthetic_mesh ~packages:16 ~cores_per_package:4 in
  check_int "cores" 64 (Platform.n_cores p);
  (* 4x4 mesh: opposite corners are 6 hops apart. *)
  check_int "mesh diameter" 6 (Topology.diameter p.Platform.topo)

let test_all_platforms_valid () =
  List.iter
    (fun p ->
      check_bool "positive cores" true (Platform.n_cores p > 0);
      check_bool "core ids" true (List.length (Platform.core_ids p) = Platform.n_cores p);
      check_bool "describe" true (String.length (Platform.describe p) > 0);
      (* Every core maps to a valid package. *)
      List.iter
        (fun c ->
          let pkg = Platform.package_of p c in
          check_bool "package in range" true (pkg >= 0 && pkg < p.Platform.n_packages))
        (Platform.core_ids p))
    Platform.all

let suite =
  ( "platform",
    [
      tc "core counts" test_core_counts;
      tc "package map" test_package_map;
      tc "share groups" test_share_groups;
      tc "hops" test_hops;
      tc "cycles to ns" test_cycles_to_ns;
      tc "synthetic mesh" test_synthetic_mesh;
      tc "all platforms valid" test_all_platforms_valid;
    ] )
