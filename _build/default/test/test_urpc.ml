open Mk_sim
open Mk_hw
open Mk
open Test_util

let test_send_recv () =
  run_machine (fun m ->
      let ch = Urpc.create m ~sender:0 ~receiver:2 () in
      Urpc.send ch "hello";
      let v = Urpc.recv ch in
      check_string "payload" "hello" v;
      check_int "sent" 1 (Urpc.stats_sent ch);
      check_int "received" 1 (Urpc.stats_received ch))

let test_in_order () =
  run_machine (fun m ->
      let ch = Urpc.create m ~sender:0 ~receiver:2 () in
      let got = ref [] in
      Engine.spawn_ (fun () ->
          for _ = 1 to 20 do
            got := Urpc.recv ch :: !got
          done);
      for i = 1 to 20 do
        Urpc.send ch i
      done;
      Engine.wait 100_000;
      check_bool "fifo" true (List.rev !got = List.init 20 (fun i -> i + 1)))

let test_flow_control () =
  run_machine (fun m ->
      let ch = Urpc.create m ~sender:0 ~receiver:2 ~slots:4 () in
      let sent = ref 0 in
      Engine.spawn_ (fun () ->
          for i = 1 to 8 do
            Urpc.send ch i;
            sent := i
          done);
      Engine.wait 100_000;
      (* Only the ring capacity can be in flight before anyone receives. *)
      check_int "sender blocked at ring size" 4 !sent;
      Engine.spawn_ (fun () ->
          for _ = 1 to 8 do
            ignore (Urpc.recv ch : int)
          done);
      Engine.wait 100_000;
      check_int "drained" 8 !sent)

let test_latency_nonzero_and_classed () =
  (* Same-package transfer is faster than cross-package. *)
  let time_pair (src, dst) =
    run_machine ~plat:Platform.amd_4x4 (fun m ->
        let ch = Urpc.create m ~sender:src ~receiver:dst () in
        (* Warm the channel bookkeeping. *)
        Urpc.send ch 0;
        ignore (Urpc.recv ch : int);
        let t0 = Engine.now_ () in
        Urpc.send ch 1;
        ignore (Urpc.recv ch : int);
        Engine.now_ () - t0)
  in
  let local = time_pair (0, 1) in
  let remote = time_pair (0, 4) in
  check_bool "positive" true (local > 0);
  check_bool "local < remote" true (local < remote)

let test_try_recv () =
  run_machine (fun m ->
      let ch = Urpc.create m ~sender:0 ~receiver:2 () in
      check_bool "empty" true (Urpc.try_recv ch = None);
      Urpc.send ch 5;
      Engine.wait 10_000;
      check_int "pending" 1 (Urpc.pending ch);
      check_bool "now present" true (Urpc.try_recv ch = Some 5))

let test_notify () =
  run_machine (fun m ->
      let ch = Urpc.create m ~sender:0 ~receiver:2 () in
      let pings = ref 0 in
      Urpc.set_notify ch (fun () -> incr pings);
      Urpc.send ch ();
      Urpc.send ch ();
      Engine.wait 10_000;
      check_int "notified per message" 2 !pings)

let test_multiline_message_costs_more () =
  run_machine (fun m ->
      let ch = Urpc.create m ~sender:0 ~receiver:2 () in
      let round lines =
        Urpc.send ch ~lines 0;
        let t0 = Engine.now_ () in
        ignore (Urpc.recv ch : int);
        Engine.now_ () - t0
      in
      let small = round 1 in
      let big = round 8 in
      check_bool "8 lines cost more to receive" true (big > small))

let test_recv_blocking_wakeup_charge () =
  run_machine (fun m ->
      let ch = Urpc.create m ~sender:0 ~receiver:2 () in
      Engine.spawn_ (fun () ->
          Engine.wait 50_000;
          Urpc.send ch ());
      let t0 = Engine.now_ () in
      Urpc.recv_blocking ch ~poll_cycles:1000 ~wakeup_cost:6000;
      (* Arrival long after the poll window: the 6000-cycle wakeup applies. *)
      check_bool "wakeup charged" true (Engine.now_ () - t0 > 50_000 + 6000))

let test_broadcast () =
  run_machine (fun m ->
      let bc = Urpc.Broadcast.create m ~sender:0 ~receivers:[ 1; 2; 3 ] () in
      let got = ref [] in
      let done_ = Sync.Semaphore.create 0 in
      List.iter
        (fun c ->
          Engine.spawn_ (fun () ->
              let v = Urpc.Broadcast.recv bc ~core:c in
              got := (c, v) :: !got;
              Sync.Semaphore.release done_))
        [ 1; 2; 3 ];
      Urpc.Broadcast.send bc 9;
      for _ = 1 to 3 do
        Sync.Semaphore.acquire done_
      done;
      check_int "all received" 3 (List.length !got);
      check_bool "same value" true (List.for_all (fun (_, v) -> v = 9) !got);
      check_bool "non-member rejected" true
        (match Urpc.Broadcast.recv bc ~core:0 with
         | _ -> false
         | exception Invalid_argument _ -> true))

let suite =
  ( "urpc",
    [
      tc "send/recv" test_send_recv;
      tc "in order" test_in_order;
      tc "flow control" test_flow_control;
      tc "latency classes" test_latency_nonzero_and_classed;
      tc "try_recv" test_try_recv;
      tc "notify" test_notify;
      tc "multiline cost" test_multiline_message_costs_more;
      tc "recv_blocking wakeup" test_recv_blocking_wakeup_charge;
      tc "broadcast" test_broadcast;
    ] )
