test/test_capops.ml: Alcotest Cap Capops Cpu_driver List Mk Monitor Os Test_util Types
