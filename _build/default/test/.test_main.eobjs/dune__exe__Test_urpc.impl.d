test/test_urpc.ml: Engine List Mk Mk_hw Mk_sim Platform Sync Test_util Urpc
