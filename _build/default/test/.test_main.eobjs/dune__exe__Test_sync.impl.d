test/test_sync.ml: Array Engine List Mk_sim Printf QCheck2 Sync Test_util
