test/test_net_arp.ml: Alcotest Arp Array Engine Icmp List Machine Mk Mk_hw Mk_net Mk_sim Netif Pbuf Perfcounter Stack Test_util
