test/test_properties.ml: Array Coherence Engine Fun List Machine Mk Mk_apps Mk_hw Mk_net Mk_sim Platform Printf QCheck2 Resource Sync Test_util
