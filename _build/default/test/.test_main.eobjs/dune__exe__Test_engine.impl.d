test/test_engine.ml: Alcotest Engine List Mk_sim Test_util
