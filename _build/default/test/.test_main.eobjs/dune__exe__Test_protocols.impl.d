test/test_protocols.ml: Array Dom Engine Fun List Machine Mk Mk_baseline Mk_hw Mk_sim Monitor Os Platform Routing Shootdown Stats Sync Test_util Tlb Types Urpc Vspace
