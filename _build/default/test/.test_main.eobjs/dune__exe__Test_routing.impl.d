test/test_routing.ml: Fun List Mk Mk_hw Platform QCheck2 Routing Test_util
