test/test_kernel.ml: Alcotest Cap Cpu_driver Dispatcher List Lrpc Machine Mk Mk_hw Mk_sim Platform Test_util Types
