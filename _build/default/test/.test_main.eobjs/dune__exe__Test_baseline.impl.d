test/test_baseline.ml: Array Engine Fun Ipi Ipi_shootdown L4_ipc List Machine Mk_baseline Mk_hw Mk_sim Monolithic Perfcounter Platform Spinlock Sync Test_util Tlb
