test/test_net.ml: Alcotest Checksum Engine Ethernet Ipv4 Kernel_loopback Mk_hw Mk_net Mk_sim Netif Nic Pbuf Platform QCheck2 Stack String Tcp_lite Test_util Udp
