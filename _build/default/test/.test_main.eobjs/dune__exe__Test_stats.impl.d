test/test_stats.ml: List Mk_sim QCheck2 Stats Test_util
