test/test_net_loss.ml: Buffer Char Engine Mk_hw Mk_net Mk_sim Netif Stack String Tcp_lite Test_util Timer
