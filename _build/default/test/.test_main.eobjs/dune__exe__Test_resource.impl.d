test/test_resource.ml: Engine List Mk_sim Resource Sync Test_util
