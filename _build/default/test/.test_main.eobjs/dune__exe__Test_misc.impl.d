test/test_misc.ml: Alcotest Engine Format List Mk Mk_apps Mk_hw Mk_net Mk_sim Platform Printexc Stats String Sync Test_util Trace
