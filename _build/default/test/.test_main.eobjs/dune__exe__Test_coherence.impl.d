test/test_coherence.ml: Alcotest Array Coherence Engine List Machine Mk_hw Mk_sim Perfcounter Platform Prng Sync Test_util
