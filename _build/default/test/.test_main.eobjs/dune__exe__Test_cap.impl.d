test/test_cap.ml: Alcotest Cap List Mk QCheck2 Result Test_util Types
