test/test_monitor.ml: Alcotest Array Cap Cpu_driver Engine List Machine Mk Mk_hw Mk_sim Monitor Os Printf Result Sync Test_util Tlb Types
