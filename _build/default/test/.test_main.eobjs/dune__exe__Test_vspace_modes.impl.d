test/test_vspace_modes.ml: Array Dom Engine Fun List Machine Mk Mk_hw Mk_sim Os Platform Printf Test_util Tlb Types Vspace
