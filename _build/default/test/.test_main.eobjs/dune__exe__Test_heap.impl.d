test/test_heap.ml: Heap List Mk_sim Option Printf QCheck2 Test_util
