test/test_apps.ml: Alcotest Engine Fun Http List Machine Mk Mk_apps Mk_baseline Mk_hw Mk_net Mk_sim Nas Platform Printf Prng Runtime Splash Sqldb Stack String Test_util
