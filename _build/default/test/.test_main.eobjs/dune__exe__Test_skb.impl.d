test/test_skb.ml: Alcotest List Mk Mk_hw Platform Skb Test_util
