test/test_capacity.ml: Array Coherence Engine List Lru Machine Mk_hw Mk_sim Perfcounter Platform Prng QCheck2 Test_util
