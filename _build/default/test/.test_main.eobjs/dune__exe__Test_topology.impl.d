test/test_topology.ml: Array List Mk_hw Platform QCheck2 Test_util Topology
