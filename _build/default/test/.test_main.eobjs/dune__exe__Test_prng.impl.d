test/test_prng.ml: Array List Mk_sim Prng QCheck2 Test_util
