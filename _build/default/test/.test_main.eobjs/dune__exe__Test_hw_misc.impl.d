test/test_hw_misc.ml: Array Engine Ipi Machine Mk_hw Mk_sim Perfcounter Platform Sync Test_util Tlb
