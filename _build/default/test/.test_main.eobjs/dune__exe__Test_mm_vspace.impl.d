test/test_mm_vspace.ml: Alcotest Array Cap Cpu_driver Dom List Machine Mk Mk_hw Mm Os Platform Result Test_util Tlb Types Vspace
