test/test_platform.ml: List Mk_hw Platform String Test_util Topology
