test/test_util.ml: Alcotest Engine Machine Mk Mk_hw Mk_sim Platform QCheck2 QCheck_alcotest
