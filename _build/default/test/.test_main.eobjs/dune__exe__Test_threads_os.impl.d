test/test_threads_os.ml: Alcotest Cpu_driver Dom Engine Flounder List Mk Mk_sim Monitor Name_service Os Printf Skb Sync Test_util Threads
