open Mk_sim
open Mk_hw
open Mk_net
open Test_util

(* ---- Pbuf ---- *)

let test_pbuf_basics () =
  run_machine (fun m ->
      let p = Pbuf.alloc m ~size:100 () in
      check_int "len" 100 (Pbuf.len p);
      Pbuf.set_u8 p 0 0xab;
      check_int "u8" 0xab (Pbuf.get_u8 p 0);
      Pbuf.set_u16 p 2 0xbeef;
      check_int "u16 big-endian" 0xbe (Pbuf.get_u8 p 2);
      check_int "u16" 0xbeef (Pbuf.get_u16 p 2);
      Pbuf.set_u32 p 4 0x01020304;
      check_int "u32" 0x01020304 (Pbuf.get_u32 p 4);
      Pbuf.push_header p 8;
      check_int "header grew" 108 (Pbuf.len p);
      Pbuf.pull p 8;
      check_int "pulled" 100 (Pbuf.len p);
      check_bool "oob" true
        (match Pbuf.get_u8 p 100 with _ -> false | exception Invalid_argument _ -> true))

let test_pbuf_strings () =
  run_machine (fun m ->
      let p = Pbuf.of_string m "hello world" in
      check_string "contents" "hello world" (Pbuf.contents p);
      check_string "sub" "world" (Pbuf.sub_string p 6 5);
      Pbuf.blit_string "HELLO" p 0;
      check_string "blit" "HELLO world" (Pbuf.contents p))

let test_pbuf_headroom_guard () =
  run_machine (fun m ->
      let p = Pbuf.alloc m ~headroom:4 ~size:10 () in
      check_bool "headroom limit" true
        (match Pbuf.push_header p 8 with
         | () -> false
         | exception Invalid_argument _ -> true))

(* ---- Checksum ---- *)

let test_checksum_verifies () =
  run_machine (fun m ->
      let p = Pbuf.of_string m "The quick brown fox jumps!!" in
      Pbuf.push_header p 2;
      Pbuf.set_u16 p 0 0;
      let c = Checksum.of_pbuf p in
      Pbuf.set_u16 p 0 c;
      check_bool "validates" true (Checksum.valid p);
      Pbuf.set_u8 p 5 (Pbuf.get_u8 p 5 lxor 0xff);
      check_bool "detects corruption" false (Checksum.valid p))

(* ---- Header codecs ---- *)

let test_ethernet_roundtrip () =
  run_machine (fun m ->
      let p = Pbuf.of_string m "payload" in
      Ethernet.encode p ~dst:0x0200000000aa ~src:0x0200000000bb
        ~ethertype:Ethernet.ethertype_ipv4;
      check_int "framed size" (7 + Ethernet.header_bytes) (Pbuf.len p);
      match Ethernet.decode p with
      | Some h ->
        check_bool "dst" true (h.Ethernet.dst = 0x0200000000aa);
        check_bool "src" true (h.Ethernet.src = 0x0200000000bb);
        check_int "type" Ethernet.ethertype_ipv4 h.Ethernet.ethertype;
        check_string "payload intact" "payload" (Pbuf.contents p)
      | None -> Alcotest.fail "decode failed")

let test_ipv4_roundtrip () =
  run_machine (fun m ->
      let p = Pbuf.of_string m "data" in
      Ipv4.encode p ~src:0x0a000001 ~dst:0x0a000002 ~proto:Ipv4.proto_udp;
      match Ipv4.decode p with
      | Some h ->
        check_int "src" 0x0a000001 h.Ipv4.src;
        check_int "dst" 0x0a000002 h.Ipv4.dst;
        check_int "proto" Ipv4.proto_udp h.Ipv4.proto;
        check_int "payload len" 4 h.Ipv4.payload_len
      | None -> Alcotest.fail "decode failed")

let test_ipv4_checksum_guard () =
  run_machine (fun m ->
      let p = Pbuf.of_string m "data" in
      Ipv4.encode p ~src:1 ~dst:2 ~proto:17;
      Pbuf.set_u8 p 8 7 (* corrupt the TTL *);
      check_bool "bad header rejected" true (Ipv4.decode p = None))

let test_udp_roundtrip () =
  run_machine (fun m ->
      let p = Pbuf.of_string m "dgram" in
      Udp.encode p ~src_port:1234 ~dst_port:80;
      match Udp.decode p with
      | Some h ->
        check_int "sport" 1234 h.Udp.src_port;
        check_int "dport" 80 h.Udp.dst_port;
        check_int "length" (8 + 5) h.Udp.length
      | None -> Alcotest.fail "decode failed")

let qcheck_tcp_header_roundtrip =
  qtest "TCP header encode/decode roundtrip" ~count:50
    QCheck2.Gen.(tup4 (int_bound 65535) (int_bound 65535) (int_bound 0xffffff) (int_bound 0xffffff))
    (fun (sp, dp, seq, ack) ->
      run_machine (fun m ->
          let p = Pbuf.alloc m ~size:0 () in
          Tcp_lite.encode p
            ~h:{ Tcp_lite.src_port = sp; dst_port = dp; seq; ack;
                 flags = Tcp_lite.flag_ack; wnd = 4096 };
          match Tcp_lite.decode p with
          | Some h ->
            h.Tcp_lite.src_port = sp && h.Tcp_lite.dst_port = dp
            && h.Tcp_lite.seq = seq && h.Tcp_lite.ack = ack
          | None -> false))

(* ---- Stacks over a URPC link ---- *)

let with_stacks f =
  run_machine (fun m ->
      let nif_a, nif_b = Stack.connect_urpc m ~core_a:0 ~core_b:2 () in
      let sa = Stack.create m ~core:0 nif_a in
      let sb = Stack.create m ~core:2 nif_b in
      f m sa sb)

let test_udp_over_link () =
  with_stacks (fun m sa sb ->
      let sock_a = Stack.udp_bind sa ~port:5000 in
      let sock_b = Stack.udp_bind sb ~port:6000 in
      Stack.udp_sendto sock_a ~dst_ip:(Stack.ip sb) ~dst_port:6000 (Pbuf.of_string m "ping");
      let p, (from_ip, from_port) = Stack.udp_recvfrom sock_b in
      check_string "payload" "ping" (Pbuf.contents p);
      check_int "source ip" (Stack.ip sa) from_ip;
      check_int "source port" 5000 from_port;
      (* And back. *)
      Stack.udp_sendto sock_b ~dst_ip:from_ip ~dst_port:from_port (Pbuf.of_string m "pong");
      let p2, _ = Stack.udp_recvfrom sock_a in
      check_string "reply" "pong" (Pbuf.contents p2))

let test_udp_unbound_port_dropped () =
  with_stacks (fun m sa sb ->
      let sock_a = Stack.udp_bind sa ~port:5000 in
      ignore sock_a;
      Stack.udp_sendto sock_a ~dst_ip:(Stack.ip sb) ~dst_port:7777 (Pbuf.of_string m "x");
      Engine.wait 1_000_000;
      (* Nothing listens on 7777: silently dropped, no crash. *)
      check_bool "no listener" true (Stack.udp_pending sock_a = 0))

let test_tcp_connect_send_close () =
  with_stacks (fun _m sa sb ->
      let listener = Stack.tcp_listen sb ~port:80 in
      let server_got = ref "" in
      Engine.spawn_ (fun () ->
          let conn = Tcp_lite.accept listener in
          let rec drain () =
            match Tcp_lite.recv conn with
            | "" -> ()
            | chunk ->
              server_got := !server_got ^ chunk;
              drain ()
          in
          drain ();
          Tcp_lite.close conn);
      let conn = Stack.tcp_connect sa ~dst_ip:(Stack.ip sb) ~dst_port:80 in
      check_bool "established" true (Tcp_lite.state conn = Tcp_lite.Established);
      Tcp_lite.send conn "hello ";
      Tcp_lite.send conn "tcp";
      Tcp_lite.close conn;
      Engine.wait 3_000_000;
      check_string "server saw it all in order" "hello tcp" !server_got)

let test_tcp_segmentation () =
  with_stacks (fun _m sa sb ->
      let listener = Stack.tcp_listen sb ~port:81 in
      let total = ref 0 in
      let big = String.make 5000 'z' in
      Engine.spawn_ (fun () ->
          let conn = Tcp_lite.accept listener in
          let rec drain () =
            match Tcp_lite.recv conn with
            | "" -> ()
            | chunk ->
              (* Each chunk fits in one MSS segment. *)
              check_bool "segment sized" true (String.length chunk <= Tcp_lite.mss);
              total := !total + String.length chunk;
              drain ()
          in
          drain ());
      let conn = Stack.tcp_connect sa ~dst_ip:(Stack.ip sb) ~dst_port:81 in
      Tcp_lite.send conn big;
      Tcp_lite.close conn;
      Engine.wait 5_000_000;
      check_int "all bytes arrived" 5000 !total)

(* ---- Kernel loopback ---- *)

let test_kernel_loopback () =
  run_machine (fun m ->
      let lo = Kernel_loopback.create m in
      Engine.spawn_ (fun () ->
          Kernel_loopback.sendto lo ~core:0 (Pbuf.of_string m "via the kernel"));
      let p = Kernel_loopback.recvfrom lo ~core:2 in
      check_string "payload" "via the kernel" (Pbuf.contents p);
      check_int "counted" 1 (Kernel_loopback.packets lo))

(* ---- NIC ---- *)

let test_nic_echo_path () =
  run_machine ~plat:Platform.intel_2x4 (fun m ->
      let nic = Nic.create m ~driver_core:2 () in
      let stack = Stack.create m ~core:2 ~checksum_offload:true (Nic.netif nic) in
      let sock = Stack.udp_bind stack ~port:7 in
      let echoed = ref None in
      Nic.attach_wire nic (fun p -> echoed := Some (Pbuf.contents p));
      Engine.spawn_ (fun () ->
          let p, (ip, port) = Stack.udp_recvfrom sock in
          Stack.udp_sendto sock ~dst_ip:ip ~dst_port:port p);
      (* Inject a frame from the wire. *)
      let p = Pbuf.of_string m "echo me" in
      Udp.encode p ~src_port:9999 ~dst_port:7;
      Ipv4.encode p ~src:0x0a0000fe ~dst:(Stack.ip stack) ~proto:Ipv4.proto_udp;
      Ethernet.encode p ~dst:(Netif.mac (Nic.netif nic)) ~src:0x02feedbeef00
        ~ethertype:Ethernet.ethertype_ipv4;
      Nic.inject nic p;
      Engine.wait 10_000_000;
      check_int "rx" 1 (Nic.rx_count nic);
      check_int "tx" 1 (Nic.tx_count nic);
      check_bool "echo seen on the wire" true (!echoed <> None))

let test_nic_wire_rate () =
  run_machine ~plat:Platform.intel_2x4 (fun m ->
      let nic = Nic.create m ~driver_core:0 ~gbps:1.0 () in
      (* 1000 bytes at 1 Gb/s on a 2.66 GHz machine is ~21280 cycles. *)
      let c = Nic.wire_cycles nic ~bytes:1000 in
      check_bool "wire time plausible" true (c > 20_000 && c < 23_000))

let suite =
  ( "net",
    [
      tc "pbuf basics" test_pbuf_basics;
      tc "pbuf strings" test_pbuf_strings;
      tc "pbuf headroom guard" test_pbuf_headroom_guard;
      tc "checksum" test_checksum_verifies;
      tc "ethernet roundtrip" test_ethernet_roundtrip;
      tc "ipv4 roundtrip" test_ipv4_roundtrip;
      tc "ipv4 checksum guard" test_ipv4_checksum_guard;
      tc "udp roundtrip" test_udp_roundtrip;
      qcheck_tcp_header_roundtrip;
      tc "udp over link" test_udp_over_link;
      tc "udp unbound port" test_udp_unbound_port_dropped;
      tc "tcp connect/send/close" test_tcp_connect_send_close;
      tc "tcp segmentation" test_tcp_segmentation;
      tc "kernel loopback" test_kernel_loopback;
      tc "nic echo path" test_nic_echo_path;
      tc "nic wire rate" test_nic_wire_rate;
    ] )
