(* ARP resolution, ICMP echo, thread migration and monitor core-sleep. *)

open Mk_sim
open Mk_hw
open Mk_net
open Test_util

let with_arp_stacks f =
  run_machine (fun m ->
      let nif_a, nif_b = Stack.connect_urpc m ~core_a:0 ~core_b:2 () in
      let sa = Stack.create m ~core:0 ~arp:true nif_a in
      let sb = Stack.create m ~core:2 ~arp:true nif_b in
      f m sa sb)

let test_arp_resolves_and_delivers () =
  with_arp_stacks (fun m sa sb ->
      let sock_a = Stack.udp_bind sa ~port:1000 in
      let sock_b = Stack.udp_bind sb ~port:2000 in
      check_bool "table empty" true (Stack.arp_lookup sa ~ip:(Stack.ip sb) = None);
      (* First datagram triggers resolution; it must still arrive. *)
      Stack.udp_sendto sock_a ~dst_ip:(Stack.ip sb) ~dst_port:2000
        (Pbuf.of_string m "first");
      let p, _ = Stack.udp_recvfrom sock_b in
      check_string "queued behind ARP, then delivered" "first" (Pbuf.contents p);
      check_bool "resolved" true (Stack.arp_lookup sa ~ip:(Stack.ip sb) <> None);
      (* Peer learned us from the request. *)
      check_bool "gratuitous learning" true (Stack.arp_lookup sb ~ip:(Stack.ip sa) <> None);
      (* Reply path now uses the cache directly. *)
      Stack.udp_sendto sock_b ~dst_ip:(Stack.ip sa) ~dst_port:1000
        (Pbuf.of_string m "second");
      let p2, _ = Stack.udp_recvfrom sock_a in
      check_string "cached path" "second" (Pbuf.contents p2))

let test_arp_codec_roundtrip () =
  run_machine (fun m ->
      let p = Pbuf.alloc m ~size:0 () in
      Arp.encode p
        ~a:{ Arp.op = Arp.op_request; sender_mac = 0xaabbccddeeff; sender_ip = 0x0a000001;
             target_mac = 0; target_ip = 0x0a000002 };
      match Arp.decode p with
      | Some a ->
        check_int "op" Arp.op_request a.Arp.op;
        check_bool "mac" true (a.Arp.sender_mac = 0xaabbccddeeff);
        check_int "ip" 0x0a000001 a.Arp.sender_ip
      | None -> Alcotest.fail "decode failed")

let test_icmp_ping () =
  with_arp_stacks (fun _m sa sb ->
      match Stack.ping sa ~dst_ip:(Stack.ip sb) ~timeout:10_000_000 with
      | Some rtt -> check_bool "positive rtt" true (rtt > 0)
      | None -> Alcotest.fail "ping timed out")

let test_icmp_ping_timeout () =
  run_machine (fun m ->
      let nif = Netif.create ~name:"void" ~mac:2 ~send:(fun _ -> ()) in
      let s = Stack.create m ~core:0 nif in
      check_bool "no reply -> None" true
        (Stack.ping s ~dst_ip:0x0a0000ee ~timeout:1_000_000 = None))

let test_icmp_checksum_guard () =
  run_machine (fun m ->
      let p = Pbuf.of_string m "payload" in
      Icmp.encode p ~icmp_type:Icmp.type_echo_request ~ident:3 ~seq:9;
      (match Icmp.decode (Pbuf.of_string m (Pbuf.contents p)) with
       | Some msg ->
         check_int "ident" 3 msg.Icmp.ident;
         check_int "seq" 9 msg.Icmp.seq
       | None -> Alcotest.fail "valid packet rejected");
      Pbuf.set_u8 p 4 0xff;
      check_bool "corruption rejected" true (Icmp.decode p = None))

(* ---- thread migration ---- *)

let test_thread_migration () =
  run_os (fun os ->
      let m = Mk.Os.machine os in
      let dom = Mk.Os.spawn_domain os ~name:"mig" ~cores:[ 0; 3 ] in
      let cores_seen = ref [] in
      let th =
        Mk.Threads.spawn_ctx m ~disp:(Mk.Dom.dispatcher_on dom 0) (fun ctx ->
            cores_seen := Mk.Threads.current_core ctx :: !cores_seen;
            Machine.compute m ~core:(Mk.Threads.current_core ctx) 1000;
            Mk.Threads.migrate ctx ~to_disp:(Mk.Dom.dispatcher_on dom 3);
            cores_seen := Mk.Threads.current_core ctx :: !cores_seen;
            Machine.compute m ~core:(Mk.Threads.current_core ctx) 1000;
            (* Migrating to where we already are is a no-op. *)
            Mk.Threads.migrate ctx ~to_disp:(Mk.Dom.dispatcher_on dom 3);
            cores_seen := Mk.Threads.current_core ctx :: !cores_seen)
      in
      Mk.Threads.join th;
      check_bool "placement history" true (List.rev !cores_seen = [ 0; 3; 3 ]))

let test_migration_moves_tcb_lines () =
  run_os (fun os ->
      let m = Mk.Os.machine os in
      let dom = Mk.Os.spawn_domain os ~name:"mig2" ~cores:[ 0; 2 ] in
      let before = Perfcounter.snapshot m.Machine.counters in
      let th =
        Mk.Threads.spawn_ctx m ~disp:(Mk.Dom.dispatcher_on dom 0) (fun ctx ->
            Mk.Threads.migrate ctx ~to_disp:(Mk.Dom.dispatcher_on dom 2))
      in
      Mk.Threads.join th;
      let d = Perfcounter.diff (Perfcounter.snapshot m.Machine.counters) before in
      (* The destination pulled the TCB across packages. *)
      check_bool "tcb fetched" true (d.Perfcounter.c2c_fetch.(2) >= 2))

(* ---- monitor core sleep ---- *)

let test_monitor_sleeps_when_idle () =
  run_os (fun os ->
      let mon3 = Mk.Os.monitor os ~core:3 in
      let s0, _ = Mk.Monitor.sleep_stats mon3 in
      (* A long quiet period, then one message: the monitor must have gone
         to sleep and paid the wake-up. *)
      Engine.wait 1_000_000;
      ignore (Mk.Monitor.ping (Mk.Os.monitor os ~core:0) 3 : int);
      let s1, slept = Mk.Monitor.sleep_stats mon3 in
      check_bool "slept at least once" true (s1 > s0);
      check_bool "accounted idle cycles" true (slept > 0))

let test_busy_monitor_does_not_sleep () =
  run_os (fun os ->
      let mon0 = Mk.Os.monitor os ~core:0 in
      let mon1 = Mk.Os.monitor os ~core:1 in
      (* Stream of back-to-back pings: no gap exceeds the poll window. *)
      let before, _ = Mk.Monitor.sleep_stats mon1 in
      for _ = 1 to 20 do
        ignore (Mk.Monitor.ping mon0 1 : int)
      done;
      let after, _ = Mk.Monitor.sleep_stats mon1 in
      check_int "no sleeps under load" before after)

let suite =
  ( "arp-icmp-misc",
    [
      tc "arp resolves" test_arp_resolves_and_delivers;
      tc "arp codec" test_arp_codec_roundtrip;
      tc "icmp ping" test_icmp_ping;
      tc "icmp ping timeout" test_icmp_ping_timeout;
      tc "icmp checksum" test_icmp_checksum_guard;
      tc "thread migration" test_thread_migration;
      tc "migration moves tcb" test_migration_moves_tcb_lines;
      tc "monitor sleeps" test_monitor_sleeps_when_idle;
      tc "busy monitor awake" test_busy_monitor_does_not_sleep;
    ] )
