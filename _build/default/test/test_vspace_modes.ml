(* The two page-table organizations of §4.8: shared table vs replicated
   tables with TLB-fill tracking. *)

open Mk_sim
open Mk_hw
open Mk
open Test_util

let setup os ~pt_mode ~cores =
  let dom = Os.spawn_domain ~pt_mode os ~name:"modes" ~cores in
  let vaddr = 0x300000 in
  (match Os.alloc_map_frame os dom ~core:(List.hd cores) ~vaddr ~bytes:Types.page_size with
   | Ok _ -> ()
   | Error e -> Types.fail e);
  (dom, vaddr)

let test_tracked_members () =
  run_os ~plat:Platform.amd_8x4 (fun os ->
      let cores = List.init 16 Fun.id in
      let dom, vaddr =
        setup os ~pt_mode:(Vspace.Replicated { track_tlb_fills = true }) ~cores
      in
      let vs = Dom.vspace dom in
      let vpages = [ Types.vpage_of_vaddr vaddr ] in
      check_bool "nobody filled yet" true (Vspace.shoot_members vs ~vpages = []);
      List.iter (fun c -> ignore (Vspace.touch vs ~core:c ~vaddr)) [ 3; 7; 11 ];
      check_bool "only the touchers" true
        (Vspace.shoot_members vs ~vpages = [ 3; 7; 11 ]);
      (* Repeat touches don't duplicate. *)
      ignore (Vspace.touch vs ~core:7 ~vaddr);
      check_bool "deduped" true (Vspace.shoot_members vs ~vpages = [ 3; 7; 11 ]))

let test_shared_members_are_all () =
  run_os ~plat:Platform.amd_8x4 (fun os ->
      let cores = List.init 16 Fun.id in
      let dom, vaddr = setup os ~pt_mode:Vspace.Shared_table ~cores in
      let vs = Dom.vspace dom in
      ignore (Vspace.touch vs ~core:3 ~vaddr);
      check_bool "everyone must be shot" true
        (Vspace.shoot_members vs ~vpages:[ Types.vpage_of_vaddr vaddr ] = cores))

let test_tracked_unmap_still_correct () =
  run_os ~plat:Platform.amd_8x4 (fun os ->
      let cores = List.init 16 Fun.id in
      let dom, vaddr =
        setup os ~pt_mode:(Vspace.Replicated { track_tlb_fills = true }) ~cores
      in
      let vs = Dom.vspace dom in
      List.iter (fun c -> ignore (Vspace.touch vs ~core:c ~vaddr)) [ 2; 9; 14 ];
      (match Os.unmap os dom ~core:0 ~vaddr ~bytes:Types.page_size with
       | Ok () -> ()
       | Error e -> Types.fail e);
      (* Correctness invariant holds regardless of mode. *)
      Array.iter
        (fun tlb ->
          check_bool "no stale entry anywhere" false
            (Tlb.mem tlb ~vpage:(Types.vpage_of_vaddr vaddr)))
        (Os.machine os).Machine.tlbs;
      (* Tracking reset after the shootdown. *)
      check_bool "tracking cleared" true
        (Vspace.shoot_members vs ~vpages:[ Types.vpage_of_vaddr vaddr ] = []))

let unmap_cycles os dom ~vaddr ~touchers =
  let vs = Dom.vspace dom in
  List.iter (fun c -> ignore (Vspace.touch vs ~core:c ~vaddr)) touchers;
  let t0 = Engine.now_ () in
  (match Os.protect os dom ~core:0 ~vaddr ~bytes:Types.page_size ~writable:false with
   | Ok () -> ()
   | Error e -> Types.fail e);
  (match Os.protect os dom ~core:0 ~vaddr ~bytes:Types.page_size ~writable:true with
   | Ok () -> ()
   | Error e -> Types.fail e);
  Engine.now_ () - t0

let test_tracking_cheaper_for_narrow_sharing () =
  (* A 32-core domain where only 2 cores touched the page: tracked
     shootdown must beat the shoot-everyone shared-table path. *)
  let cores = List.init 32 Fun.id in
  let shared =
    run_os ~plat:Platform.amd_8x4 (fun os ->
        let dom, vaddr = setup os ~pt_mode:Vspace.Shared_table ~cores in
        unmap_cycles os dom ~vaddr ~touchers:[ 0; 1 ])
  in
  let tracked =
    run_os ~plat:Platform.amd_8x4 (fun os ->
        let dom, vaddr =
          setup os ~pt_mode:(Vspace.Replicated { track_tlb_fills = true }) ~cores
        in
        unmap_cycles os dom ~vaddr ~touchers:[ 0; 1 ])
  in
  check_bool
    (Printf.sprintf "tracked (%d) < shared (%d)" tracked shared)
    true (tracked < shared)

let test_replicated_single_round_costlier_when_wide () =
  (* The other side of the tradeoff: when every core's replica holds the
     entry, one shootdown round must edit every replica as well as its TLB,
     so it costs at least as much as the shared-table round. *)
  let cores = List.init 32 Fun.id in
  let one_round pt_mode =
    run_os ~plat:Platform.amd_8x4 (fun os ->
        let dom, vaddr = setup os ~pt_mode ~cores in
        let vs = Dom.vspace dom in
        List.iter (fun c -> ignore (Vspace.touch vs ~core:c ~vaddr)) cores;
        let t0 = Engine.now_ () in
        (match Os.protect os dom ~core:0 ~vaddr ~bytes:Types.page_size ~writable:false with
         | Ok () -> ()
         | Error e -> Types.fail e);
        Engine.now_ () - t0)
  in
  let shared = one_round Vspace.Shared_table in
  let replicated = one_round (Vspace.Replicated { track_tlb_fills = true }) in
  check_bool
    (Printf.sprintf "replicated (%d) >= shared (%d) when everyone holds it" replicated shared)
    true (replicated >= shared)

let suite =
  ( "vspace-modes",
    [
      tc "tracked members" test_tracked_members;
      tc "shared members" test_shared_members_are_all;
      tc "tracked unmap correct" test_tracked_unmap_still_correct;
      tc "tracking cheaper (narrow)" test_tracking_cheaper_for_narrow_sharing;
      tc "replication costlier (wide)" test_replicated_single_round_costlier_when_wide;
    ] )
