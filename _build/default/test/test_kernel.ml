(* CPU driver + LRPC + dispatcher tests. *)

open Mk_hw
open Mk
open Test_util

let test_boot_and_caps () =
  run_machine (fun m ->
      let d = Cpu_driver.boot m ~core:1 in
      check_int "core" 1 (Cpu_driver.core d);
      let db = Cpu_driver.capdb d in
      let ram = Cap.Db.mint_ram db ~base:0 ~bytes:65536 in
      match Cpu_driver.cap_retype d ram ~to_:Cap.Frame ~count:2 ~bytes_each:4096 with
      | Ok caps -> check_int "two frames" 2 (List.length caps)
      | Error e -> Alcotest.fail (Types.error_to_string e))

let test_syscall_charges () =
  run_machine (fun m ->
      let d = Cpu_driver.boot m ~core:0 in
      let t0 = Mk_sim.Engine.now_ () in
      Cpu_driver.syscall d (fun () -> ());
      check_int "syscall cost" m.Machine.plat.Platform.syscall
        (Mk_sim.Engine.now_ () - t0))

let test_bad_core_rejected () =
  let m = Machine.create Platform.amd_2x2 in
  check_bool "rejects" true
    (match Cpu_driver.boot m ~core:99 with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_dispatchers () =
  run_machine (fun m ->
      let d = Cpu_driver.boot m ~core:0 in
      let disp = Dispatcher.create ~domid:1 ~core:0 ~name:"app/0" in
      Cpu_driver.add_dispatcher d disp;
      check_int "registered" 1 (List.length (Cpu_driver.dispatchers d));
      check_bool "runnable" true (Dispatcher.is_runnable disp);
      Dispatcher.block disp;
      check_bool "blocked" false (Dispatcher.is_runnable disp);
      Dispatcher.unblock disp;
      Cpu_driver.remove_dispatcher d disp;
      check_int "removed" 0 (List.length (Cpu_driver.dispatchers d)))

let test_lrpc_call () =
  run_machine (fun m ->
      let d = Cpu_driver.boot m ~core:0 in
      let ep = Lrpc.export d ~name:"adder" (fun (a, b) -> a + b) in
      let t0 = Mk_sim.Engine.now_ () in
      let r = Lrpc.call ep (2, 3) in
      let elapsed = Mk_sim.Engine.now_ () - t0 in
      check_int "result" 5 r;
      check_int "served" 1 (Lrpc.calls_served ep);
      check_int "two one-way crossings" (2 * Lrpc.one_way_cost m.Machine.plat) elapsed)

let test_lrpc_cost_varies_by_platform () =
  let costs = List.map Lrpc.one_way_cost Platform.all in
  check_bool "all positive" true (List.for_all (fun c -> c > 0) costs);
  check_bool "platforms differ" true
    (List.length (List.sort_uniq compare costs) > 1)

let suite =
  ( "kernel",
    [
      tc "boot and caps" test_boot_and_caps;
      tc "syscall charges" test_syscall_charges;
      tc "bad core rejected" test_bad_core_rejected;
      tc "dispatchers" test_dispatchers;
      tc "lrpc call" test_lrpc_call;
      tc "lrpc platform costs" test_lrpc_cost_varies_by_platform;
    ] )
