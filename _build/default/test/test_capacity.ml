(* Finite-capacity caches: LRU structure and capacity-miss behaviour. *)

open Mk_sim
open Mk_hw
open Test_util

(* -- the LRU itself -- *)

let test_lru_basics () =
  let l = Lru.create ~capacity:2 in
  check_bool "no eviction" true (Lru.touch l 1 = None);
  check_bool "no eviction" true (Lru.touch l 2 = None);
  check_bool "evicts lru" true (Lru.touch l 3 = Some 1);
  check_bool "2 still in" true (Lru.mem l 2);
  (* Touching 2 makes 3 the victim next. *)
  check_bool "refresh" true (Lru.touch l 2 = None);
  check_bool "evicts 3" true (Lru.touch l 4 = Some 3);
  check_int "size" 2 (Lru.size l);
  Lru.remove l 2;
  check_int "removed" 1 (Lru.size l);
  Lru.remove l 99 (* absent: no-op *)

let qcheck_lru_never_exceeds_capacity =
  qtest "LRU size never exceeds capacity" ~count:60
    QCheck2.Gen.(pair (int_range 1 8) (list_size (int_range 1 100) (int_bound 20)))
    (fun (cap, keys) ->
      let l = Lru.create ~capacity:cap in
      List.for_all
        (fun k ->
          ignore (Lru.touch l k : int option);
          Lru.size l <= cap)
        keys)

let qcheck_lru_victim_is_least_recent =
  qtest "evicted key is the least recently touched" ~count:60
    QCheck2.Gen.(list_size (int_range 3 60) (int_bound 10))
    (fun keys ->
      let cap = 3 in
      let l = Lru.create ~capacity:cap in
      let recency = ref [] in  (* most recent first, distinct *)
      List.for_all
        (fun k ->
          let expected_victim =
            if List.mem k !recency || List.length !recency < cap then None
            else List.nth_opt !recency (cap - 1)
          in
          let victim = Lru.touch l k in
          recency := k :: List.filter (fun x -> x <> k) !recency;
          (match victim with
           | Some v -> recency := List.filter (fun x -> x <> v) !recency
           | None -> ());
          victim = expected_victim)
        keys)

(* -- capacity misses in the coherence model -- *)

let test_capacity_misses () =
  let m = Machine.create ~cache_lines_per_core:4 Platform.amd_2x2 in
  let r = ref 0 in
  Engine.spawn m.Machine.eng (fun () ->
      let coh = m.Machine.coh in
      let lines = Array.init 8 (fun _ -> Machine.alloc_lines m 1) in
      (* Fill far past capacity... *)
      Array.iter (fun a -> Coherence.load coh ~core:0 a) lines;
      (* ...then re-read the first line: it was evicted, so this is a miss
         again (unlike the infinite-cache model). *)
      let before = Perfcounter.snapshot m.Machine.counters in
      Coherence.load coh ~core:0 lines.(0);
      let d = Perfcounter.diff (Perfcounter.snapshot m.Machine.counters) before in
      r := d.Perfcounter.dcache_miss.(0));
  Machine.run m;
  check_int "capacity miss" 1 !r

let test_infinite_default_never_capacity_misses () =
  run_machine (fun m ->
      let coh = m.Machine.coh in
      let lines = Array.init 64 (fun _ -> Machine.alloc_lines m 1) in
      Array.iter (fun a -> Coherence.load coh ~core:0 a) lines;
      let before = Perfcounter.snapshot m.Machine.counters in
      Array.iter (fun a -> Coherence.load coh ~core:0 a) lines;
      let d = Perfcounter.diff (Perfcounter.snapshot m.Machine.counters) before in
      check_int "all hits" 0 d.Perfcounter.dcache_miss.(0))

let test_dirty_eviction_writes_back () =
  let m = Machine.create ~cache_lines_per_core:2 Platform.amd_2x2 in
  Engine.spawn m.Machine.eng (fun () ->
      let coh = m.Machine.coh in
      (* Dirty a line homed on the other package, then flood the cache. *)
      let victim = Machine.alloc_lines m ~node:1 1 in
      Coherence.store coh ~core:0 victim;
      let before = Perfcounter.snapshot m.Machine.counters in
      let a = Machine.alloc_lines m ~node:0 1 and b = Machine.alloc_lines m ~node:0 1 in
      Coherence.load coh ~core:0 a;
      Coherence.load coh ~core:0 b;
      (* The dirty victim crossed the link back to its home. *)
      let d = Perfcounter.diff (Perfcounter.snapshot m.Machine.counters) before in
      check_bool "writeback traffic" true (Perfcounter.dwords_on d (0, 1) >= 18);
      (* Directory no longer believes core 0 holds it. *)
      check_bool "directory clean" true
        (Coherence.line_state coh ~line:(Coherence.line_of_addr coh victim)
        = Coherence.Invalid));
  Machine.run m

let test_directory_consistent_under_capacity () =
  (* Random traffic with tiny caches: the single-owner invariant and
     state/LRU agreement must survive evictions. *)
  let m = Machine.create ~cache_lines_per_core:3 Platform.amd_2x2 in
  Engine.spawn m.Machine.eng (fun () ->
      let coh = m.Machine.coh in
      let lines = Array.init 10 (fun _ -> Machine.alloc_lines m 1) in
      let rng = Prng.create ~seed:2024 in
      for _ = 1 to 600 do
        let core = Prng.int rng 4 in
        let a = lines.(Prng.int rng 10) in
        if Prng.bool rng then Coherence.store coh ~core a
        else Coherence.load coh ~core a;
        Array.iter
          (fun addr ->
            match Coherence.line_state coh ~line:(Coherence.line_of_addr coh addr) with
            | Coherence.Shared cs ->
              check_bool "no dup sharers" true
                (List.length (List.sort_uniq compare cs) = List.length cs)
            | Coherence.Modified _ | Coherence.Invalid -> ())
          lines
      done);
  Machine.run m

let suite =
  ( "capacity",
    [
      tc "lru basics" test_lru_basics;
      qcheck_lru_never_exceeds_capacity;
      qcheck_lru_victim_is_least_recent;
      tc "capacity misses" test_capacity_misses;
      tc "infinite default" test_infinite_default_never_capacity_misses;
      tc "dirty eviction writes back" test_dirty_eviction_writes_back;
      tc "directory consistent" test_directory_consistent_under_capacity;
    ] )
