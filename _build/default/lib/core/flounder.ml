open Mk_sim
open Mk_hw

type ('req, 'resp) binding = {
  m : Machine.t;
  req_chan : ('req * bool) Urpc.t;  (* bool: expects a response *)
  resp_chan : 'resp Urpc.t;
  req_lines : int;
  resp_lines : int;
  lock : Sync.Mutex.t;  (* one outstanding RPC per binding *)
}

let connect m ~name ~client ~server ?(req_lines = 1) ?(resp_lines = 1) () =
  {
    m;
    req_chan = Urpc.create m ~sender:client ~receiver:server ~name:(name ^ ".req") ();
    resp_chan = Urpc.create m ~sender:server ~receiver:client ~name:(name ^ ".resp") ();
    req_lines;
    resp_lines;
    lock = Sync.Mutex.create ();
  }

let export b handler =
  let rec loop () =
    let req, wants_resp = Urpc.recv b.req_chan in
    let resp = handler req in
    if wants_resp then Urpc.send b.resp_chan ~lines:b.resp_lines resp;
    loop ()
  in
  Engine.spawn b.m.Machine.eng ~name:(Urpc.name b.req_chan ^ ".server") loop

let rpc b req =
  Sync.Mutex.with_lock b.lock (fun () ->
      Urpc.send b.req_chan ~lines:b.req_lines (req, true);
      Urpc.recv b.resp_chan)

let rpc_async b req =
  Sync.Mutex.lock b.lock;
  Urpc.send b.req_chan ~lines:b.req_lines (req, true);
  fun () ->
    let resp = Urpc.recv b.resp_chan in
    Sync.Mutex.unlock b.lock;
    resp

let oneway b req = Urpc.send b.req_chan ~lines:b.req_lines (req, false)

let client_core b = Urpc.sender b.req_chan
let server_core b = Urpc.receiver b.req_chan
