(** Domains — the multikernel's processes (§4.5, §4.8).

    A domain is a collection of dispatchers (one per core it spans), a
    virtual address space shared across them, and a capability space.
    Create them with {!Os.spawn_domain}, which also announces the domain to
    every spanned OS node through the monitors. *)

type t

val create :
  domid:Types.domid ->
  name:string ->
  cores:int list ->
  vspace:Vspace.t ->
  disps:(int * Dispatcher.t) list ->
  t

val domid : t -> Types.domid
val name : t -> string
val cores : t -> int list
val vspace : t -> Vspace.t

val dispatcher_on : t -> int -> Dispatcher.t
(** The domain's dispatcher on a given core; raises [Invalid_argument] if
    the domain does not span it. *)

val dispatchers : t -> Dispatcher.t list
val cap_space : t -> Cap.Space.space
val spans : t -> int -> bool
