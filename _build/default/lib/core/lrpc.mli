(** Synchronous same-core IPC (§4.3, Table 1).

    The latency-sensitive alternative to the asynchronous split-phase
    facility, akin to LRPC [Bershad 90] or L4 IPC: a user program calls a
    service on the same core through the CPU driver, which switches
    directly to the server dispatcher. The Barrelfish figures in Table 1
    include a scheduler activation, user-level message dispatch, and a pass
    through the thread scheduler — all represented in {!one_way_cost}. *)

type ('a, 'b) endpoint

val export : Cpu_driver.t -> name:string -> ('a -> 'b) -> ('a, 'b) endpoint
(** Register a same-core service; the handler runs in the server
    dispatcher's context when called. *)

val call : ('a, 'b) endpoint -> 'a -> 'b
(** Synchronous call: one-way into the server, run the handler, one-way
    back. Must be made from a task logically on the endpoint's core. *)

val one_way_cost : Mk_hw.Platform.t -> int
(** User-program-to-user-program one-way latency (what Table 1 reports):
    syscall entry + context switch + scheduler activation upcall + thread
    scheduler pass + message dispatch. *)

val core : (_, _) endpoint -> int
val calls_served : (_, _) endpoint -> int
