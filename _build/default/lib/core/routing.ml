open Mk_hw

type proto = Broadcast | Unicast | Multicast | Numa_multicast

let proto_to_string = function
  | Broadcast -> "Broadcast"
  | Unicast -> "Unicast"
  | Multicast -> "Multicast"
  | Numa_multicast -> "NUMA-Aware Multicast"

let all_protos = [ Broadcast; Unicast; Multicast; Numa_multicast ]

type branch = { aggregator : int; leaves : int list }

type plan = { root : int; branches : branch list; numa_aware : bool }

let others ~root ~members =
  List.sort_uniq compare (List.filter (fun c -> c <> root) members)

let unicast ~root ~members =
  {
    root;
    branches = List.map (fun c -> { aggregator = c; leaves = [] }) (others ~root ~members);
    numa_aware = false;
  }

(* Group the non-root members by package; the root's own package members
   become direct children of the root (a branch whose aggregator is the
   root handles no forwarding - the root just sends to each leaf). *)
let group_by_package plat ~root ~members =
  let rest = others ~root ~members in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let p = Platform.package_of plat c in
      let cur = Option.value (Hashtbl.find_opt tbl p) ~default:[] in
      Hashtbl.replace tbl p (c :: cur))
    rest;
  let root_pkg = Platform.package_of plat root in
  let local = Option.value (Hashtbl.find_opt tbl root_pkg) ~default:[] in
  Hashtbl.remove tbl root_pkg;
  let remote =
    Hashtbl.fold (fun _ cores acc -> List.sort compare cores :: acc) tbl []
    |> List.sort compare
  in
  (List.sort compare local, remote)

let multicast_branches plat ~root ~members =
  let local, remote = group_by_package plat ~root ~members in
  let local_branches = List.map (fun c -> { aggregator = c; leaves = [] }) local in
  let remote_branches =
    List.map
      (fun cores ->
        match cores with
        | agg :: leaves -> { aggregator = agg; leaves }
        | [] -> assert false)
      remote
  in
  (local_branches, remote_branches)

let multicast plat ~root ~members =
  let local, remote = multicast_branches plat ~root ~members in
  { root; branches = remote @ local; numa_aware = false }

let numa_multicast plat ~latency ~root ~members =
  let local, remote = multicast_branches plat ~root ~members in
  (* Farthest aggregation node first: its message is in flight while the
     root keeps sending. Descending latency; ties broken by core id for
     determinism. *)
  let dist b = latency ~src:root ~dst:b.aggregator in
  let remote =
    List.stable_sort (fun a b -> compare (dist b, a.aggregator) (dist a, b.aggregator)) remote
  in
  { root; branches = remote @ local; numa_aware = true }

let plan_cores plan =
  List.concat_map (fun b -> b.aggregator :: b.leaves) plan.branches

let branch_count plan = List.length plan.branches
