(* Dispatcher objects (§4.5): a domain's per-core execution context.

   A process in the multikernel is a collection of dispatchers, one per
   core it might run on; communication happens between dispatchers, not
   processes. The CPU driver schedules dispatchers via an upcall interface
   (scheduler activations); above it each dispatcher runs a user-level
   thread scheduler (Threads module).

   In the simulation a dispatcher is bookkeeping plus the cost constants of
   the upcall path; actual execution interleaving is handled by the event
   engine. *)

type t = {
  domid : Types.domid;
  core : Types.coreid;
  name : string;
  mutable runnable : bool;
  mutable upcalls : int;  (* number of scheduler activations delivered *)
  mutable threads_spawned : int;
}

let create ~domid ~core ~name = {
  domid;
  core;
  name;
  runnable = true;
  upcalls = 0;
  threads_spawned = 0;
}

let domid t = t.domid
let core t = t.core
let name t = t.name

(* Deliver a scheduler activation: the CPU driver upcalls the dispatcher
   rather than resuming it transparently (contrast with Unix). The cost is
   the platform's dispatch constant, charged by the caller. *)
let upcall t = t.upcalls <- t.upcalls + 1

let block t = t.runnable <- false
let unblock t = t.runnable <- true
let is_runnable t = t.runnable
