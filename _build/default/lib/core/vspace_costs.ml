(* Page-table manipulation costs, shared by Vspace and the monitors'
   replicated-table update path (kept separate to avoid a module cycle). *)

let pt_update_cost = 120
let tlb_walk_cost = 180
