(* Shared identifiers and error type for the multikernel OS. *)

type coreid = int
(** A core id doubles as the id of the OS node (CPU driver + monitor)
    running on it. *)

type domid = int
(** A domain (process) identifier: one dispatcher per core it spans. *)

type vaddr = int
type paddr = int

let page_bits = 12
let page_size = 1 lsl page_bits
let vpage_of_vaddr va = va lsr page_bits

type error =
  | Err_no_memory
  | Err_cap_not_found
  | Err_cap_type of string
  | Err_cap_rights
  | Err_retype_conflict
  | Err_revoke_in_progress
  | Err_already_mapped
  | Err_not_mapped
  | Err_channel_full
  | Err_not_registered
  | Err_invalid_args of string

exception Mk_error of error

let error_to_string = function
  | Err_no_memory -> "out of memory"
  | Err_cap_not_found -> "capability not found"
  | Err_cap_type s -> "wrong capability type: " ^ s
  | Err_cap_rights -> "insufficient capability rights"
  | Err_retype_conflict -> "retype conflicts with existing descendants"
  | Err_revoke_in_progress -> "revoke in progress"
  | Err_already_mapped -> "address already mapped"
  | Err_not_mapped -> "address not mapped"
  | Err_channel_full -> "message channel full"
  | Err_not_registered -> "name not registered"
  | Err_invalid_args s -> "invalid arguments: " ^ s

let fail e = raise (Mk_error e)

let () =
  Printexc.register_printer (function
    | Mk_error e -> Some ("Mk_error: " ^ error_to_string e)
    | _ -> None)
