open Mk_hw

(* Scheduler-activation upcall + user-level message dispatch + thread
   scheduler pass: the parts of Table 1's latency that are not the raw
   kernel crossing. *)
let activation_extra = 160

type ('a, 'b) endpoint = {
  driver : Cpu_driver.t;
  ep_name : string;
  handler : 'a -> 'b;
  mutable served : int;
}

let export driver ~name handler = { driver; ep_name = name; handler; served = 0 }

let one_way_cost (p : Platform.t) =
  p.Platform.syscall + p.Platform.context_switch + p.Platform.dispatch + activation_extra

let call ep arg =
  let m = Cpu_driver.machine ep.driver in
  let core = Cpu_driver.core ep.driver in
  let cost = one_way_cost m.Machine.plat in
  Machine.compute m ~core cost;
  let reply = ep.handler arg in
  ep.served <- ep.served + 1;
  Machine.compute m ~core cost;
  reply

let core ep = Cpu_driver.core ep.driver
let calls_served ep = ep.served
