(* Domains (processes): a collection of dispatchers, one per core the
   domain spans (§4.5), a shared virtual address space coordinated across
   them (§4.8), and a capability space. *)

type t = {
  domid : Types.domid;
  dname : string;
  dcores : int list;
  vspace : Vspace.t;
  disps : (int * Dispatcher.t) list;  (* core -> dispatcher *)
  cap_space : Cap.Space.space;
}

let create ~domid ~name ~cores ~vspace ~disps =
  { domid; dname = name; dcores = cores; vspace; disps; cap_space = Cap.Space.create () }

let domid t = t.domid
let name t = t.dname
let cores t = t.dcores
let vspace t = t.vspace

let dispatcher_on t core =
  match List.assoc_opt core t.disps with
  | Some d -> d
  | None ->
    invalid_arg
      (Printf.sprintf "domain %s has no dispatcher on core %d" t.dname core)

let dispatchers t = List.map snd t.disps
let cap_space t = t.cap_space

let spans t core = List.mem core t.dcores
