(* Distributed retype/revoke: a two-phase commit among the monitors
   ensures all cores agree on a single ordering of changes to memory
   usage (§4.7). *)

let retype_async mon ~plan ?rights cap ~to_ ~count ~bytes_each =
  let db = Cpu_driver.capdb (Monitor.driver mon) in
  match Cap.Db.frontier db cap with
  | Error e -> fun () -> Error e
  | Ok expected_frontier ->
    let bytes = count * bytes_each in
    let iv =
      Monitor.agree_async mon ~plan
        ~op:(Monitor.Ag_retype { cap; expected_frontier; bytes })
    in
    fun () ->
      if Mk_sim.Sync.Ivar.read iv then
        (* Committed everywhere: perform the real local retype, which
           advances this replica's frontier and mints the children. *)
        Cpu_driver.cap_retype (Monitor.driver mon) ?rights cap ~to_ ~count ~bytes_each
      else Error Types.Err_retype_conflict

let retype mon ~plan ?rights cap ~to_ ~count ~bytes_each =
  (retype_async mon ~plan ?rights cap ~to_ ~count ~bytes_each) ()

let revoke mon ~plan cap =
  let committed = Monitor.agree mon ~plan ~op:(Monitor.Ag_revoke { cap }) in
  if not committed then Error Types.Err_revoke_in_progress
  else Cpu_driver.cap_revoke_local (Monitor.driver mon) cap
