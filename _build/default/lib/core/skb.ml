open Mk_hw

type term =
  | Int of int
  | Atom of string
  | Var of string
  | Compound of string * term list

type subst = (string * term) list

type t = {
  (* Facts indexed by functor name and arity for quick retrieval;
     insertion order preserved per bucket. *)
  facts : (string * int, term list ref) Hashtbl.t;
  mutable count : int;
}

let create () = { facts = Hashtbl.create 64; count = 0 }

let rec is_ground = function
  | Int _ | Atom _ -> true
  | Var _ -> false
  | Compound (_, args) -> List.for_all is_ground args

let key_of = function
  | Compound (f, args) -> (f, List.length args)
  | Atom a -> (a, 0)
  | Int _ | Var _ -> invalid_arg "Skb: facts must be atoms or compounds"

let assert_fact t f =
  if not (is_ground f) then invalid_arg "Skb.assert_fact: fact contains variables";
  let key = key_of f in
  (match Hashtbl.find_opt t.facts key with
   | Some bucket -> bucket := f :: !bucket
   | None -> Hashtbl.replace t.facts key (ref [ f ]));
  t.count <- t.count + 1

(* Unification of a pattern (may contain vars) against a ground fact. *)
let rec unify pattern fact_ (s : subst) : subst option =
  match (pattern, fact_) with
  | Int a, Int b -> if a = b then Some s else None
  | Atom a, Atom b -> if String.equal a b then Some s else None
  | Var v, g ->
    (match List.assoc_opt v s with
     | Some bound -> if bound = g then Some s else None
     | None -> Some ((v, g) :: s))
  | Compound (f, args), Compound (g, brgs) ->
    if String.equal f g && List.length args = List.length brgs then
      List.fold_left2
        (fun acc a b -> match acc with None -> None | Some s -> unify a b s)
        (Some s) args brgs
    else None
  | _, _ -> None

let bucket_for t pattern =
  match pattern with
  | Compound (f, args) ->
    (match Hashtbl.find_opt t.facts (f, List.length args) with
     | Some b -> List.rev !b
     | None -> [])
  | Atom a ->
    (match Hashtbl.find_opt t.facts (a, 0) with Some b -> List.rev !b | None -> [])
  | Int _ | Var _ -> invalid_arg "Skb.query: pattern must be an atom or compound"

let query t pattern =
  List.filter_map (fun f -> unify pattern f []) (bucket_for t pattern)

let query_one t pattern =
  let rec first = function
    | [] -> None
    | f :: rest ->
      (match unify pattern f [] with Some s -> Some s | None -> first rest)
  in
  first (bucket_for t pattern)

let holds t pattern = query_one t pattern <> None

let retract t pattern =
  match pattern with
  | Compound (f, args) ->
    (match Hashtbl.find_opt t.facts (f, List.length args) with
     | None -> ()
     | Some b ->
       let keep, drop = List.partition (fun fct -> unify pattern fct [] = None) !b in
       b := keep;
       t.count <- t.count - List.length drop)
  | _ -> invalid_arg "Skb.retract: pattern must be a compound"

let lookup_int s v =
  match List.assoc_opt v s with
  | Some (Int i) -> i
  | Some _ -> invalid_arg ("Skb.lookup_int: variable " ^ v ^ " not bound to an int")
  | None -> raise Not_found

let fact f args = Compound (f, args)

let size t = t.count

let populate_platform t plat =
  let n = Platform.n_cores plat in
  assert_fact t (fact "num_cores" [ Int n ]);
  assert_fact t (fact "num_packages" [ Int plat.Platform.n_packages ]);
  for c = 0 to n - 1 do
    assert_fact t (fact "core_package" [ Int c; Int (Platform.package_of plat c) ]);
    assert_fact t (fact "share_group" [ Int c; Int (Platform.share_group_of plat c) ])
  done;
  for p = 0 to plat.Platform.n_packages - 1 do
    assert_fact t (fact "package_first_core" [ Int p; Int (p * plat.Platform.cores_per_package) ])
  done;
  Array.iter
    (fun (a, b) -> assert_fact t (fact "ht_link" [ Int a; Int b ]))
    (Topology.links plat.Platform.topo)

let assert_urpc_latency t ~src ~dst ~cycles =
  retract t (fact "urpc_latency" [ Int src; Int dst; Var "_" ]);
  assert_fact t (fact "urpc_latency" [ Int src; Int dst; Int cycles ])

let urpc_latency t ~src ~dst =
  match query_one t (fact "urpc_latency" [ Int src; Int dst; Var "L" ]) with
  | Some s -> (try Some (lookup_int s "L") with Not_found -> None)
  | None -> None
