(** The privileged-mode CPU driver (§4.3).

    Purely local to its core: enforces protection, checks capability
    operations, performs dispatch and fast local messaging, and delivers
    hardware interrupts to user-space drivers as messages. It shares no
    state with other cores, is event-driven and serially processes traps
    and interrupts — which is why it needs no locks.

    Capability invocations are system calls: each charges the platform's
    syscall cost before the (checked) operation runs. The CPU driver never
    allocates memory; it only validates retype/revoke requests against its
    local capability database. *)

type t

val boot : Mk_hw.Machine.t -> core:int -> t
(** Bring up the driver on a core with an empty capability database. *)

val core : t -> int
val machine : t -> Mk_hw.Machine.t
val capdb : t -> Cap.Db.db

val add_dispatcher : t -> Dispatcher.t -> unit
val remove_dispatcher : t -> Dispatcher.t -> unit
val dispatchers : t -> Dispatcher.t list

val syscall : t -> (unit -> 'a) -> 'a
(** Enter the kernel: charge the syscall cost on this core, run the checked
    operation serially, return to user. *)

val cap_retype :
  t -> ?rights:Cap.rights -> Cap.t -> to_:Cap.objtype -> count:int -> bytes_each:int ->
  (Cap.t list, Types.error) result
(** Local retype syscall: the driver checks correctness and derives the
    children. Cross-core agreement is the monitor's job ({!Capops}); this
    entry point is what the monitor invokes once agreement is reached, and
    what single-core programs use directly. *)

val cap_copy : t -> Cap.t -> (Cap.t, Types.error) result
val cap_delete : t -> Cap.t -> (unit, Types.error) result
val cap_revoke_local : t -> Cap.t -> (int, Types.error) result

val interrupt : t -> vector:int -> (src:int -> unit) -> unit
(** Route a hardware interrupt vector to a user-space handler: the driver
    demultiplexes it and delivers it as a message ({!Mk_hw.Ipi}). *)

val cap_op_cost : int
(** Cycles of in-kernel checking per capability invocation. *)
