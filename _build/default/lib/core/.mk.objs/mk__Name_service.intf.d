lib/core/name_service.mli: Mk_hw
