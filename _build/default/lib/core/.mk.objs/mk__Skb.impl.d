lib/core/skb.ml: Array Hashtbl List Mk_hw Platform String Topology
