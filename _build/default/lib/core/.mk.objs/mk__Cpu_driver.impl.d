lib/core/cpu_driver.ml: Cap Dispatcher Ipi List Machine Mk_hw Platform
