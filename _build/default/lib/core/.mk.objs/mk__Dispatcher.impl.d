lib/core/dispatcher.ml: Types
