lib/core/routing.mli: Mk_hw
