lib/core/threads.ml: Coherence Dispatcher Engine List Machine Mk_hw Mk_sim Option Platform Printf Sync Urpc
