lib/core/os.ml: Array Cap Cpu_driver Dispatcher Dom Engine Hashtbl List Lrpc Machine Mk_hw Mk_sim Mm Monitor Name_service Platform Printf Routing Skb Types Vspace
