lib/core/cap.ml: Format Hashtbl List Option Printf Types
