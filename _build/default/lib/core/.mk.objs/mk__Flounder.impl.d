lib/core/flounder.ml: Engine Machine Mk_hw Mk_sim Sync Urpc
