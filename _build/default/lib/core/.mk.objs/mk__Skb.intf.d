lib/core/skb.mli: Mk_hw
