lib/core/threads.mli: Dispatcher Mk_hw
