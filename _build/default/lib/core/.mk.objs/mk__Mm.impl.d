lib/core/mm.ml: Array Cap Cpu_driver Machine Mk_hw Monitor Platform Types
