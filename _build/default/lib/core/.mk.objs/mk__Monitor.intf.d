lib/core/monitor.mli: Cap Cpu_driver Mk_hw Mk_sim Routing Types Urpc
