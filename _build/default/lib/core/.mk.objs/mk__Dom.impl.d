lib/core/dom.ml: Cap Dispatcher List Printf Types Vspace
