lib/core/lrpc.ml: Cpu_driver Machine Mk_hw Platform
