lib/core/cpu_driver.mli: Cap Dispatcher Mk_hw Types
