lib/core/flounder.mli: Mk_hw
