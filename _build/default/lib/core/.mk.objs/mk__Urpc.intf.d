lib/core/urpc.mli: Mk_hw
