lib/core/shootdown.ml: Engine List Machine Mk_hw Mk_sim Platform Printf Routing Urpc
