lib/core/types.ml: Printexc
