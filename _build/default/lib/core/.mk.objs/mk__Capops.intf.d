lib/core/capops.mli: Cap Monitor Routing Types
