lib/core/vspace.ml: Array Cap Cpu_driver Engine Hashtbl List Machine Mk_hw Mk_sim Monitor Tlb Types Vspace_costs
