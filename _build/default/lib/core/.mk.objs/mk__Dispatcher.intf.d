lib/core/dispatcher.mli: Types
