lib/core/lrpc.mli: Cpu_driver Mk_hw
