lib/core/vspace_costs.ml:
