lib/core/cap.mli: Format Types
