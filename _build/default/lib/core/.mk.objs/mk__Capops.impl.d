lib/core/capops.ml: Cap Cpu_driver Mk_sim Monitor Types
