lib/core/dom.mli: Cap Dispatcher Types Vspace
