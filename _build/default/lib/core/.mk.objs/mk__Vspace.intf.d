lib/core/vspace.mli: Cap Cpu_driver Mk_hw Monitor Routing Types
