lib/core/routing.ml: Hashtbl List Mk_hw Option Platform
