lib/core/urpc.ml: Array Coherence Engine List Machine Mk_hw Mk_sim Platform Sync
