lib/core/monitor.ml: Array Cap Cpu_driver Engine Hashtbl List Machine Mk_hw Mk_sim Option Platform Printf Routing Sync Tlb Types Urpc Vspace_costs
