lib/core/mm.mli: Cap Cpu_driver Mk_hw Monitor Types
