lib/core/shootdown.mli: Mk_hw Routing
