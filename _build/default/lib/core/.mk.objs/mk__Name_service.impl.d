lib/core/name_service.ml: Array Flounder Hashtbl Machine Mk_hw Printf
