lib/core/os.mli: Cap Cpu_driver Dom Mk_hw Mk_sim Mm Monitor Name_service Routing Skb Types Vspace
