type objtype =
  | RAM
  | Frame
  | Dev_frame
  | Page_table of int
  | CNode
  | Dispatcher
  | Endpoint

type rights = { read : bool; write : bool; execute : bool; grant : bool }

let rights_all = { read = true; write = true; execute = true; grant = true }
let rights_ro = { read = true; write = false; execute = false; grant = false }

type t = {
  capid : int;
  otype : objtype;
  base : Types.paddr;
  bytes : int;
  rights : rights;
  origin_core : Types.coreid;
}

let objtype_to_string = function
  | RAM -> "RAM"
  | Frame -> "Frame"
  | Dev_frame -> "DevFrame"
  | Page_table l -> Printf.sprintf "PT%d" l
  | CNode -> "CNode"
  | Dispatcher -> "Dispatcher"
  | Endpoint -> "Endpoint"

let pp fmt c =
  Format.fprintf fmt "@[<h>cap#%d %s [%#x..%#x)@]" c.capid (objtype_to_string c.otype)
    c.base (c.base + c.bytes)

module Db = struct
  type cap = t

  type obj = {
    oid : int;
    o_type : objtype;
    o_base : int;
    o_bytes : int;
    mutable frontier : int;  (* bytes retyped away (RAM objects only) *)
    o_parent : int option;
    mutable children : int list;
    mutable live_caps : int list;  (* capids referencing this object here *)
  }

  type db = {
    core_id : int;
    mutable next_capid : int;
    mutable next_oid : int;
    caps : (int, cap * int) Hashtbl.t;  (* capid -> (cap, oid) *)
    objs : (int, obj) Hashtbl.t;
    by_extent : (objtype * int * int, int) Hashtbl.t;  (* -> oid *)
  }

  let create ~core =
    {
      core_id = core;
      next_capid = 0;
      next_oid = 0;
      caps = Hashtbl.create 64;
      objs = Hashtbl.create 64;
      by_extent = Hashtbl.create 64;
    }

  let core db = db.core_id

  let fresh_capid db =
    let id = (db.core_id * 1_000_000) + db.next_capid in
    db.next_capid <- db.next_capid + 1;
    id

  let new_obj db ~otype ~base ~bytes ~parent =
    let oid = db.next_oid in
    db.next_oid <- db.next_oid + 1;
    let o =
      { oid; o_type = otype; o_base = base; o_bytes = bytes; frontier = 0;
        o_parent = parent; children = []; live_caps = [] }
    in
    Hashtbl.replace db.objs oid o;
    Hashtbl.replace db.by_extent (otype, base, bytes) oid;
    (match parent with
     | None -> ()
     | Some p ->
       let po = Hashtbl.find db.objs p in
       po.children <- oid :: po.children);
    o

  let attach_cap db o ~otype ~base ~bytes ~rights =
    let c = { capid = fresh_capid db; otype; base; bytes; rights; origin_core = db.core_id } in
    o.live_caps <- c.capid :: o.live_caps;
    Hashtbl.replace db.caps c.capid (c, o.oid);
    c

  let mint_ram db ~base ~bytes =
    let o = new_obj db ~otype:RAM ~base ~bytes ~parent:None in
    attach_cap db o ~otype:RAM ~base ~bytes ~rights:rights_all

  let mint_dev db ~base ~bytes =
    let o = new_obj db ~otype:Dev_frame ~base ~bytes ~parent:None in
    attach_cap db o ~otype:Dev_frame ~base ~bytes ~rights:rights_all

  let lookup db c = Hashtbl.find_opt db.caps c.capid

  let mem db c = Hashtbl.mem db.caps c.capid

  (* The object a capability refers to, by extent, even if this particular
     cap instance is foreign (replica lookup). *)
  let obj_of_extent db (c : cap) =
    match Hashtbl.find_opt db.by_extent (c.otype, c.base, c.bytes) with
    | Some oid -> Hashtbl.find_opt db.objs oid
    | None -> None

  let valid_retype ~from ~to_ =
    match (from, to_) with
    | RAM, (RAM | Frame | Page_table _ | CNode | Dispatcher | Endpoint) -> true
    | _, _ -> false

  let retype db ?(rights = rights_all) c ~to_ ~count ~bytes_each =
    match lookup db c with
    | None -> Error Types.Err_cap_not_found
    | Some (_, oid) ->
      let o = Hashtbl.find db.objs oid in
      if not (valid_retype ~from:o.o_type ~to_) then
        Error (Types.Err_cap_type (objtype_to_string o.o_type ^ " -> " ^ objtype_to_string to_))
      else if count <= 0 || bytes_each <= 0 then
        Error (Types.Err_invalid_args "retype: count and bytes_each must be positive")
      else if o.frontier + (count * bytes_each) > o.o_bytes then Error Types.Err_retype_conflict
      else begin
        let children =
          List.init count (fun i ->
              let base = o.o_base + o.frontier + (i * bytes_each) in
              let child = new_obj db ~otype:to_ ~base ~bytes:bytes_each ~parent:(Some oid) in
              attach_cap db child ~otype:to_ ~base ~bytes:bytes_each ~rights)
        in
        o.frontier <- o.frontier + (count * bytes_each);
        Ok children
      end

  let copy db c =
    match lookup db c with
    | None -> Error Types.Err_cap_not_found
    | Some (orig, oid) ->
      let o = Hashtbl.find db.objs oid in
      Ok (attach_cap db o ~otype:orig.otype ~base:orig.base ~bytes:orig.bytes ~rights:orig.rights)

  let delete db c =
    match lookup db c with
    | None -> Error Types.Err_cap_not_found
    | Some (_, oid) ->
      Hashtbl.remove db.caps c.capid;
      (match Hashtbl.find_opt db.objs oid with
       | None -> ()
       | Some o -> o.live_caps <- List.filter (fun id -> id <> c.capid) o.live_caps);
      Ok ()

  (* Kill an object: drop all its caps, recurse into children, unregister.
     Returns how many capabilities died. *)
  let rec destroy_obj db o =
    let from_children =
      List.fold_left
        (fun acc oid ->
          match Hashtbl.find_opt db.objs oid with
          | Some child -> acc + destroy_obj db child
          | None -> acc)
        0 o.children
    in
    o.children <- [];
    let killed = List.length o.live_caps in
    List.iter (fun capid -> Hashtbl.remove db.caps capid) o.live_caps;
    o.live_caps <- [];
    Hashtbl.remove db.objs o.oid;
    Hashtbl.remove db.by_extent (o.o_type, o.o_base, o.o_bytes);
    from_children + killed

  let revoke db c =
    match lookup db c with
    | None -> Error Types.Err_cap_not_found
    | Some (_, oid) ->
      let o = Hashtbl.find db.objs oid in
      let killed = ref 0 in
      (* Descendants die entirely. *)
      List.iter
        (fun coid ->
          match Hashtbl.find_opt db.objs coid with
          | Some child -> killed := !killed + destroy_obj db child
          | None -> ())
        o.children;
      o.children <- [];
      (* Copies die; the invoked capability survives. *)
      let copies = List.filter (fun id -> id <> c.capid) o.live_caps in
      List.iter (fun id -> Hashtbl.remove db.caps id) copies;
      killed := !killed + List.length copies;
      o.live_caps <- [ c.capid ];
      (* Region is virgin again. *)
      o.frontier <- 0;
      Ok !killed

  let revoke_replica db c =
    (* A replica database may hold transferred descendants without their
       parent object, so the derivation tree is not enough: sweep every
       object whose extent lies inside the revoked capability's extent. *)
    let lo = c.base and hi = c.base + c.bytes in
    let victims =
      Hashtbl.fold
        (fun _ o acc ->
          if o.o_base >= lo && o.o_base + o.o_bytes <= hi then o :: acc else acc)
        db.objs []
    in
    List.fold_left
      (fun acc o ->
        if Hashtbl.mem db.objs o.oid then
          if o.o_type = c.otype && o.o_base = c.base && o.o_bytes = c.bytes then begin
            (* The revoked object itself: clear caps and reset, keep record. *)
            let local = List.length o.live_caps in
            List.iter (fun id -> Hashtbl.remove db.caps id) o.live_caps;
            o.live_caps <- [];
            o.children <- [];
            o.frontier <- 0;
            acc + local
          end
          else acc + destroy_obj db o
        else acc)
      0 victims

  let has_descendants db c =
    match lookup db c with
    | None -> false
    | Some (_, oid) ->
      (match Hashtbl.find_opt db.objs oid with
       | None -> false
       | Some o -> o.children <> [])

  let frontier db c =
    match obj_of_extent db c with
    | None -> Error Types.Err_cap_not_found
    | Some o -> Ok o.frontier

  let vote_retype db c ~expected_frontier =
    match obj_of_extent db c with
    | None -> true (* no replica, nothing to conflict with *)
    | Some o -> o.frontier = expected_frontier

  let find_parent_ram db ~base ~bytes =
    (* Linear scan: object counts are small; fine for a kernel data path we
       charge cycles for separately. *)
    Hashtbl.fold
      (fun _ o acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if o.o_type = RAM && o.o_base <= base && base + bytes <= o.o_base + o.o_bytes
          then Some o
          else None)
      db.objs None

  let advance_frontier db c ~bytes =
    match obj_of_extent db c with
    | Some o ->
      if o.frontier + bytes > o.o_bytes then Error Types.Err_retype_conflict
      else begin
        o.frontier <- o.frontier + bytes;
        Ok ()
      end
    | None ->
      (* Unknown object: create a replica record (no local caps). *)
      let o = new_obj db ~otype:c.otype ~base:c.base ~bytes:c.bytes ~parent:None in
      if bytes > o.o_bytes then Error Types.Err_retype_conflict
      else begin
        o.frontier <- bytes;
        Ok ()
      end

  let insert_remote db c =
    if Hashtbl.mem db.caps c.capid then Error (Types.Err_invalid_args "cap already present")
    else begin
      let o =
        match obj_of_extent db c with
        | Some o -> o
        | None ->
          let parent = find_parent_ram db ~base:c.base ~bytes:c.bytes in
          new_obj db ~otype:c.otype ~base:c.base ~bytes:c.bytes
            ~parent:(Option.map (fun o -> o.oid) parent)
      in
      o.live_caps <- c.capid :: o.live_caps;
      Hashtbl.replace db.caps c.capid (c, o.oid);
      Ok ()
    end

  let size db = Hashtbl.length db.caps
end

module Space = struct
  type cap = t
  type slot = int

  type space = { mutable next : int; slots : (int, cap) Hashtbl.t }

  let create () = { next = 1; slots = Hashtbl.create 16 }

  let put s c =
    let slot = s.next in
    s.next <- s.next + 1;
    Hashtbl.replace s.slots slot c;
    slot

  let get s slot =
    match Hashtbl.find_opt s.slots slot with
    | Some c -> Ok c
    | None -> Error Types.Err_cap_not_found

  let remove s slot = Hashtbl.remove s.slots slot
  let count s = Hashtbl.length s.slots
end
