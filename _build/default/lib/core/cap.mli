(** seL4-style capability system (§4.7).

    All memory management happens by invoking capabilities: user code holds
    typed references to regions of physical memory or kernel objects, and
    the only mutating operations are [copy], [retype], [delete] and
    [revoke]. The CPU driver checks correctness; it never allocates.

    Each core keeps its own capability database; keeping those replicas
    consistent across cores is the monitors' job ({!Capops}, two-phase
    commit). This module is the single-core model plus the local predicates
    the distributed protocol needs ([has_descendants], [would_conflict]). *)

type objtype =
  | RAM  (** untyped memory, the root of all derivation *)
  | Frame  (** mappable memory *)
  | Dev_frame  (** mappable device registers, not zeroed, not retypeable *)
  | Page_table of int  (** hardware page table of the given level, 1..4 *)
  | CNode  (** capability storage *)
  | Dispatcher  (** a domain's per-core execution context *)
  | Endpoint  (** LRPC endpoint *)

type rights = { read : bool; write : bool; execute : bool; grant : bool }

val rights_all : rights
val rights_ro : rights

type t = private {
  capid : int;  (** unique id of this capability instance *)
  otype : objtype;
  base : Types.paddr;
  bytes : int;
  rights : rights;
  origin_core : Types.coreid;  (** core whose database minted it *)
}

val pp : Format.formatter -> t -> unit

(** Per-core capability database: derivation tree + copy tracking. *)
module Db : sig
  type cap = t
  type db

  val create : core:Types.coreid -> db
  val core : db -> Types.coreid

  val mint_ram : db -> base:Types.paddr -> bytes:int -> cap
  (** Introduce fresh untyped memory (boot / memory-server only). *)

  val mint_dev : db -> base:Types.paddr -> bytes:int -> cap
  (** Device frame for memory-mapped IO. *)

  val retype :
    db -> ?rights:rights -> cap -> to_:objtype -> count:int -> bytes_each:int ->
    (cap list, Types.error) result
  (** Derive [count] children of [bytes_each] from the front of the unused
      part of a RAM capability. Fails if the source is not RAM, if space is
      exhausted, or if it conflicts with existing descendants covering the
      same extent ([Err_retype_conflict]). *)

  val copy : db -> cap -> (cap, Types.error) result
  (** New capability to the same object (same extent & type). *)

  val delete : db -> cap -> (unit, Types.error) result
  (** Remove one capability. Deleting a parent does not delete descendants
      (that is [revoke]). *)

  val revoke : db -> cap -> (int, Types.error) result
  (** Delete all descendants and all copies (but not the cap itself);
      returns how many capabilities died. Frees the retyped extents so the
      region can be retyped again. *)

  val mem : db -> cap -> bool
  (** Is this capability (still) present in the database? *)

  val has_descendants : db -> cap -> bool

  val frontier : db -> cap -> (int, Types.error) result
  (** How many bytes of a RAM capability's extent this replica believes have
      been retyped away. The distributed retype protocol agrees on this. *)

  val vote_retype : db -> cap -> expected_frontier:int -> bool
  (** Local vote for the two-phase retype: yes iff this database either has
      no replica of the object or its frontier matches the initiator's view
      (no concurrent conflicting retype). *)

  val advance_frontier : db -> cap -> bytes:int -> (unit, Types.error) result
  (** Apply a remotely committed retype to the local replica. Creates the
      replica if the object was unknown here. *)

  val revoke_replica : db -> cap -> int
  (** Apply a remotely initiated revoke: destroy all local descendants and
      every local capability to the object (the invoker's own instance
      lives on another core). Returns the number of capabilities killed;
      0 if the object is unknown here. *)

  val insert_remote : db -> cap -> (unit, Types.error) result
  (** Install a capability received from another core (monitor cap
      transfer). Keeps cross-core copy accounting. *)

  val size : db -> int
  (** Number of live capabilities. *)
end

(** A domain's capability space: slot-addressed storage for its caps. *)
module Space : sig
  type cap = t
  type space
  type slot = int

  val create : unit -> space
  val put : space -> cap -> slot
  val get : space -> slot -> (cap, Types.error) result
  val remove : space -> slot -> unit
  val count : space -> int
end
