(** Dispatcher objects (§4.5).

    A process (domain) in the multikernel is a collection of dispatchers,
    one per core it might execute on; communication happens between
    dispatchers, not processes. The CPU driver schedules dispatchers via an
    upcall interface (scheduler activations, as in Psyche), and each
    dispatcher runs a user-level thread scheduler above it.

    The record is transparent: the thread package and CPU driver maintain
    its mutable bookkeeping directly, as the per-core structures they
    are. *)

type t = {
  domid : Types.domid;
  core : Types.coreid;
  name : string;
  mutable runnable : bool;
  mutable upcalls : int;  (** scheduler activations delivered *)
  mutable threads_spawned : int;
}

val create : domid:Types.domid -> core:Types.coreid -> name:string -> t
val domid : t -> Types.domid
val core : t -> Types.coreid
val name : t -> string

val upcall : t -> unit
(** Record a scheduler activation delivered to this dispatcher (the cost
    is the platform's dispatch constant, charged by the caller). *)

val block : t -> unit
val unblock : t -> unit
val is_runnable : t -> bool
