open Mk_hw

let cap_op_cost = 180

type t = {
  m : Machine.t;
  core_id : int;
  db : Cap.Db.db;
  mutable disps : Dispatcher.t list;
}

let boot m ~core =
  if core < 0 || core >= Machine.n_cores m then invalid_arg "Cpu_driver.boot: bad core";
  { m; core_id = core; db = Cap.Db.create ~core; disps = [] }

let core t = t.core_id
let machine t = t.m
let capdb t = t.db

let add_dispatcher t d = t.disps <- d :: t.disps

let remove_dispatcher t d =
  t.disps <- List.filter (fun d' -> not (d' == d)) t.disps

let dispatchers t = t.disps

let syscall t f =
  Machine.compute t.m ~core:t.core_id t.m.Machine.plat.Platform.syscall;
  f ()

let cap_retype t ?rights cap ~to_ ~count ~bytes_each =
  syscall t (fun () ->
      Machine.compute t.m ~core:t.core_id cap_op_cost;
      Cap.Db.retype t.db ?rights cap ~to_ ~count ~bytes_each)

let cap_copy t cap =
  syscall t (fun () ->
      Machine.compute t.m ~core:t.core_id cap_op_cost;
      Cap.Db.copy t.db cap)

let cap_delete t cap =
  syscall t (fun () ->
      Machine.compute t.m ~core:t.core_id cap_op_cost;
      Cap.Db.delete t.db cap)

let cap_revoke_local t cap =
  syscall t (fun () ->
      Machine.compute t.m ~core:t.core_id cap_op_cost;
      Cap.Db.revoke t.db cap)

let interrupt t ~vector handler =
  Ipi.register t.m.Machine.ipi ~core:t.core_id ~vector handler
