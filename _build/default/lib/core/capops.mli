(** Distributed capability operations (§4.7, Figure 8).

    Retyping (and its special case, revocation) changes the usage of a
    region of memory, so all cores must agree on a single ordering: two
    cores concurrently retyping the same region different ways (say, a
    mappable frame and a page table) would be unsafe. The monitors run a
    two-phase commit: every replica votes on whether its view of the
    region's derivation state matches the initiator's; only if all agree
    does the retype happen, and every replica advances identically. *)

val retype :
  Monitor.t ->
  plan:Routing.plan ->
  ?rights:Cap.rights ->
  Cap.t ->
  to_:Cap.objtype ->
  count:int ->
  bytes_each:int ->
  (Cap.t list, Types.error) result
(** Globally coordinated retype initiated at the monitor's core. On commit
    the children exist in the initiator's database and every other core
    has advanced its replica; on conflict, [Err_retype_conflict]. *)

val retype_async :
  Monitor.t ->
  plan:Routing.plan ->
  ?rights:Cap.rights ->
  Cap.t ->
  to_:Cap.objtype ->
  count:int ->
  bytes_each:int ->
  (unit -> (Cap.t list, Types.error) result)
(** Split-phase variant for pipelining (Figure 8): returns a completion
    function that blocks until the 2PC finishes. *)

val revoke :
  Monitor.t -> plan:Routing.plan -> Cap.t -> (int, Types.error) result
(** Globally revoke: destroy all descendants and copies on every core;
    returns the local kill count. Concurrent revokes of the same object
    conflict ([Err_revoke_in_progress]). *)
