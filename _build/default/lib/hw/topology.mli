(** Interconnect topology at the package (HyperTransport node) level.

    An undirected graph of packages; routing is shortest-path with
    deterministic tie-breaking (lowest next-hop id), mirroring the static
    routing tables of HT systems. Used both for latency (hop counts) and
    for per-link traffic accounting (Table 4). *)

type t

type link = int * int
(** Normalized: [(a, b)] with [a < b]. *)

val create : n:int -> links:link list -> t
(** [n] packages, connected by [links]. Raises [Invalid_argument] on
    out-of-range endpoints, self-loops, or a disconnected graph. *)

val fully_connected : n:int -> t
(** Convenience: every pair directly linked (small SMPs / single bus). *)

val n_nodes : t -> int
val links : t -> link array
val hops : t -> int -> int -> int
(** Shortest-path distance in links; 0 for [src = dst]. *)

val diameter : t -> int

val path : t -> int -> int -> link list
(** The links traversed from [src] to [dst], in normalized form (for
    traffic accounting; empty when [src = dst]). *)

val path_directed : t -> int -> int -> (int * int) list
(** Same, but each hop keeps its direction of travel. *)

val neighbors : t -> int -> int list
