type t = {
  core_id : int;
  entries : (int, unit) Hashtbl.t;
  mutable dropped : int;
}

let create ~core = { core_id = core; entries = Hashtbl.create 64; dropped = 0 }

let core t = t.core_id
let fill t ~vpage = Hashtbl.replace t.entries vpage ()
let mem t ~vpage = Hashtbl.mem t.entries vpage

let invalidate t ~vpage =
  let present = Hashtbl.mem t.entries vpage in
  if present then begin
    Hashtbl.remove t.entries vpage;
    t.dropped <- t.dropped + 1
  end;
  present

let flush t =
  let n = Hashtbl.length t.entries in
  Hashtbl.reset t.entries;
  t.dropped <- t.dropped + n;
  n

let entry_count t = Hashtbl.length t.entries
let invalidations t = t.dropped
