open Mk_sim

type t = {
  plat : Platform.t;
  cores : Resource.t array;
  handlers : (int * int, src:int -> unit) Hashtbl.t;  (* (core, vector) *)
  mutable sent : int;
}

let apic_write_cost = 100

let create plat ~core_resources =
  if Array.length core_resources <> Platform.n_cores plat then
    invalid_arg "Ipi.create: resource array size mismatch";
  { plat; cores = core_resources; handlers = Hashtbl.create 16; sent = 0 }

let register t ~core ~vector f = Hashtbl.replace t.handlers (core, vector) f

let send t ~src ~dst ~vector =
  let handler =
    match Hashtbl.find_opt t.handlers (dst, vector) with
    | Some f -> f
    | None ->
      invalid_arg (Printf.sprintf "Ipi.send: no handler for vector %d on core %d" vector dst)
  in
  t.sent <- t.sent + 1;
  Engine.wait apic_write_cost;
  let wire =
    t.plat.Platform.ipi_wire
    + (t.plat.Platform.hop_one_way * Platform.hops_between t.plat src dst)
  in
  Engine.spawn_ ~name:(Printf.sprintf "ipi%d->%d" src dst) (fun () ->
      Engine.wait wire;
      (* The target stops what it is doing for trap entry + handler. *)
      let (_ : int) = Resource.acquire t.cores.(dst) t.plat.Platform.trap in
      handler ~src)

let sent t = t.sent
