(** Per-core timer device (APIC timer model).

    Drives anything that needs timeouts — TCP retransmission, scheduling
    quanta, polling fallbacks. One-shot and periodic arms; each firing
    charges the interrupt-delivery cost on its core. Cancellation is safe
    at any point (a cancelled timer never fires). *)

type t

val create : Machine.t -> core:int -> t
val core : t -> int

type handle

val arm : t -> delay:int -> (unit -> unit) -> handle
(** One-shot: run the callback on this core after [delay] cycles. *)

val arm_periodic : t -> interval:int -> (unit -> unit) -> handle
(** Fire every [interval] cycles until cancelled. *)

val cancel : handle -> unit
val is_armed : handle -> bool

val fired : t -> int
(** Number of expirations delivered (statistics). *)

val interrupt_cost : int
(** Cycles charged on the core per expiry (timer interrupt + dispatch). *)
