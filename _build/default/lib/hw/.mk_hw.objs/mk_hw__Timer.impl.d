lib/hw/timer.ml: Engine Machine Mk_sim Printf
