lib/hw/tlb.ml: Hashtbl
