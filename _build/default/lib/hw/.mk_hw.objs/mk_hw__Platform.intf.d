lib/hw/platform.mli: Topology
