lib/hw/machine.ml: Array Coherence Engine Ipi Mk_sim Option Perfcounter Platform Printf Resource Tlb
