lib/hw/platform.ml: Fun List Printf Topology
