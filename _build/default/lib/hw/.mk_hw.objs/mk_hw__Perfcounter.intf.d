lib/hw/perfcounter.mli: Platform Topology
