lib/hw/topology.ml: Array Hashtbl List Queue
