lib/hw/perfcounter.ml: Array Hashtbl List Option Platform Topology
