lib/hw/coherence.ml: Array Engine Hashtbl List Lru Mk_sim Perfcounter Platform Printf Resource Topology
