lib/hw/ipi.mli: Mk_sim Platform
