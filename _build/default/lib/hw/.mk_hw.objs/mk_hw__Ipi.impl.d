lib/hw/ipi.ml: Array Engine Hashtbl Mk_sim Platform Printf Resource
