lib/hw/tlb.mli:
