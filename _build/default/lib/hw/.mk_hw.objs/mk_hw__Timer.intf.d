lib/hw/timer.mli: Machine
