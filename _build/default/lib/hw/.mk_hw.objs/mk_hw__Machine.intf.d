lib/hw/machine.mli: Coherence Ipi Mk_sim Perfcounter Platform Tlb
