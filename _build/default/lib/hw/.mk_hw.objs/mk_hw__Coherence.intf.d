lib/hw/coherence.mli: Perfcounter Platform
