lib/hw/topology.mli:
