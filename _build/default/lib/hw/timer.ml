open Mk_sim

let interrupt_cost = 350

type t = { m : Machine.t; core_id : int; mutable fired : int }

type handle = { mutable armed : bool }

let create m ~core = { m; core_id = core; fired = 0 }

let core t = t.core_id

let fire t h callback =
  if h.armed then begin
    t.fired <- t.fired + 1;
    (* The expiry interrupts whatever the core is doing. *)
    Machine.compute t.m ~core:t.core_id interrupt_cost;
    callback ()
  end

let arm t ~delay callback =
  let h = { armed = true } in
  Engine.spawn t.m.Machine.eng ~name:(Printf.sprintf "timer%d" t.core_id) (fun () ->
      Engine.wait delay;
      fire t h callback;
      h.armed <- false);
  h

let arm_periodic t ~interval callback =
  if interval <= 0 then invalid_arg "Timer.arm_periodic: interval must be positive";
  let h = { armed = true } in
  Engine.spawn t.m.Machine.eng ~name:(Printf.sprintf "ptimer%d" t.core_id) (fun () ->
      (* Fixed cadence: expiries land on the wall schedule even when the
         handler (or a busy core) delays an individual delivery. *)
      let rec loop next_at =
        Engine.wait_until next_at;
        if h.armed then begin
          fire t h callback;
          loop (next_at + interval)
        end
      in
      loop (Engine.now_ () + interval));
  h

let cancel h = h.armed <- false
let is_armed h = h.armed
let fired t = t.fired
