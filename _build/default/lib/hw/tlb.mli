(** Per-core TLB bookkeeping.

    Tracks which virtual pages a core has cached translations for, so the
    OS layers can assert shootdown correctness ("no stale entry survives an
    unmap") and charge the invalidation costs of §5.1. Pure bookkeeping:
    cycle costs are charged by the caller from [Platform] parameters. *)

type t

val create : core:int -> t
val core : t -> int

val fill : t -> vpage:int -> unit
(** Record a translation (on first touch of a mapped page). *)

val mem : t -> vpage:int -> bool

val invalidate : t -> vpage:int -> bool
(** Drop one entry; returns whether it was present ([invlpg]). *)

val flush : t -> int
(** Drop everything (CR3 reload); returns the number of entries dropped. *)

val entry_count : t -> int
val invalidations : t -> int
(** Cumulative count of invalidate/flush-dropped entries (statistics). *)
