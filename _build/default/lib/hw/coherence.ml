open Mk_sim

type line_state = Invalid | Shared of int list | Modified of int

type line = {
  mutable st : line_state;
  mutable home : int;
  (* MOESI owner: the last writer keeps sourcing data to readers until the
     line is written again. *)
  mutable owner : int option;
  (* End of the last owner-sourced transfer of this line: successive reads
     of one dirty line are serviced one at a time (a single line has a
     single set of MSHR/response buffers at its owner), which is Figure 6's
     Broadcast storm. Distinct lines pipeline. *)
  mutable line_busy_until : int;
}

type t = {
  plat : Platform.t;
  counters : Perfcounter.t;
  lines : (int, line) Hashtbl.t;
  (* Optional finite capacity per core (in lines): evictions write dirty
     victims back to their home and drop clean ones. None = infinite. *)
  lrus : Lru.t option array;
  (* Home-node pinning as sorted, non-overlapping (first, last, node)
     ranges: the bump allocator pins whole regions, so per-line entries
     would be wastefully huge. *)
  mutable home_ranges : (int * int * int) array;
  mutable n_ranges : int;
  dirs : Resource.t array;  (* one directory/home-node resource per package *)
  ports : Resource.t array;  (* per-core cache port: serializes c2c sourcing *)
}

(* Dword accounting per the HT convention the paper uses for Table 4:
   command/probe packets are 2 dwords, a cache line of data is 16 dwords
   plus a 2-dword header. *)
let cmd_dwords = 2
let data_dwords = 18
let store_post_cost = 60
let port_occupancy = 70

let create ?cache_lines_per_core plat counters =
  let n = Platform.n_cores plat in
  {
    plat;
    counters;
    lines = Hashtbl.create 4096;
    lrus =
      (match cache_lines_per_core with
       | None -> Array.make n None
       | Some cap -> Array.init n (fun _ -> Some (Lru.create ~capacity:cap)));
    home_ranges = Array.make 64 (0, 0, 0);
    n_ranges = 0;
    dirs =
      Array.init plat.Platform.n_packages (fun i ->
          Resource.create ~name:(Printf.sprintf "dir%d" i) ());
    ports =
      Array.init (Platform.n_cores plat) (fun i ->
          Resource.create ~name:(Printf.sprintf "cacheport%d" i) ());
  }

let platform t = t.plat
let line_of_addr t addr = addr / t.plat.Platform.cacheline

let set_home_range t ~first_line ~last_line ~node =
  if t.n_ranges = Array.length t.home_ranges then begin
    let bigger = Array.make (t.n_ranges * 2) (0, 0, 0) in
    Array.blit t.home_ranges 0 bigger 0 t.n_ranges;
    t.home_ranges <- bigger
  end;
  (* The allocator hands out monotonically increasing addresses, so ranges
     arrive sorted; enforce it to keep the binary search valid. *)
  (if t.n_ranges > 0 then
     let _, prev_last, _ = t.home_ranges.(t.n_ranges - 1) in
     if first_line <= prev_last then
       invalid_arg "Coherence.set_home_range: ranges must be increasing");
  t.home_ranges.(t.n_ranges) <- (first_line, last_line, node);
  t.n_ranges <- t.n_ranges + 1

let set_home t ~line ~node = set_home_range t ~first_line:line ~last_line:line ~node

let pinned_home_of t line =
  let rec search lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let first, last, node = t.home_ranges.(mid) in
      if line < first then search lo (mid - 1)
      else if line > last then search (mid + 1) hi
      else Some node
    end
  in
  search 0 (t.n_ranges - 1)

let home_of t ~line =
  match Hashtbl.find_opt t.lines line with
  | Some l -> Some l.home
  | None -> pinned_home_of t line

let get_line t ~core line =
  match Hashtbl.find_opt t.lines line with
  | Some l -> l
  | None ->
    let home =
      match pinned_home_of t line with
      | Some n -> n
      | None -> Platform.package_of t.plat core
    in
    let l = { st = Invalid; home; owner = None; line_busy_until = 0 } in
    Hashtbl.replace t.lines line l;
    l

(* Charge dword traffic along the route between two packages, keeping the
   direction of travel (Table 4 reports per-direction link utilization). *)
let charge_path t src_pkg dst_pkg dwords =
  if src_pkg <> dst_pkg then
    List.iter
      (fun (u, v) -> Perfcounter.add_link_dwords t.counters (u, v) dwords)
      (Topology.path_directed t.plat.Platform.topo src_pkg dst_pkg)

(* Broadcast probe traffic: HT probes fan out on every link, both ways. *)
let charge_probe_broadcast t =
  Array.iter
    (fun (a, b) ->
      Perfcounter.add_link_dwords t.counters (a, b) cmd_dwords;
      Perfcounter.add_link_dwords t.counters (b, a) cmd_dwords)
    (Topology.links t.plat.Platform.topo)

(* Latency of moving a line from core [src]'s cache to core [dst]'s. *)
let transfer_latency t ~src ~dst =
  let p = t.plat in
  if Platform.shares_cache p src dst then p.Platform.shared_cache_fetch
  else
    p.Platform.cc_base + (2 * p.Platform.hop_one_way * Platform.hops_between p src dst)

let is_local_group t a b = Platform.shares_cache t.plat a b

(* Capacity: a core dropping a line (eviction or remote invalidation). *)
let forget t ~core lid =
  match t.lrus.(core) with Some lru -> Lru.remove lru lid | None -> ()

let evict t ~core victim_lid =
  match Hashtbl.find_opt t.lines victim_lid with
  | None -> ()
  | Some v ->
    (match v.st with
     | Modified o when o = core ->
       (* Dirty eviction: write the line back to its home. *)
       charge_path t (Platform.package_of t.plat core) v.home data_dwords;
       v.st <- Invalid;
       v.owner <- None
     | Shared cs ->
       let rest = List.filter (fun c -> c <> core) cs in
       v.st <- (if rest = [] then Invalid else Shared rest);
       if v.owner = Some core then v.owner <- None
     | Modified _ | Invalid -> ())

(* Record that [core] now caches [lid]; handle any capacity eviction. *)
let note_presence t ~core lid =
  match t.lrus.(core) with
  | None -> ()
  | Some lru ->
    (match Lru.touch lru lid with
     | Some victim when victim <> lid -> evict t ~core victim
     | Some _ | None -> ())

(* What a memory access must do, decided from the line state. State
   transitions, counters and traffic happen here; how the latency is
   realized (blocking wait vs posted/async delay) is up to the caller. *)
type outcome =
  | Hit
  | Local of int  (* within a share group: no fabric involvement *)
  | Txn of { home : int; lat : int; source_port : int option; ln : line option }
      (* [ln]: serialize this transaction per line (owner-sourced data) *)

let in_sharers core = List.exists (fun c -> c = core)

let prepare_load t ~core addr =
  let p = t.plat in
  let lid = line_of_addr t addr in
  let l = get_line t ~core lid in
  Perfcounter.count_load t.counters ~core;
  Perfcounter.touch_line t.counters ~core ~line:lid;
  note_presence t ~core lid;
  match l.st with
  | Modified o when o = core -> Hit
  | Shared cs when in_sharers core cs -> Hit
  | Modified o ->
    Perfcounter.count_miss t.counters ~core;
    Perfcounter.count_c2c t.counters ~core;
    l.st <- Shared [ core; o ];
    if is_local_group t core o then Local p.Platform.shared_cache_fetch
    else begin
      let lat = transfer_latency t ~src:o ~dst:core in
      charge_path t (Platform.package_of p core) l.home cmd_dwords;
      charge_path t (Platform.package_of p o) (Platform.package_of p core) data_dwords;
      Txn { home = l.home; lat; source_port = Some o; ln = Some l }
    end
  | Shared cs ->
    Perfcounter.count_miss t.counters ~core;
    l.st <- Shared (core :: cs);
    (match l.owner with
     | Some o when o <> core && not (is_local_group t core o) ->
       (* Owned line: the last writer's cache sources the data. *)
       Perfcounter.count_c2c t.counters ~core;
       let lat = transfer_latency t ~src:o ~dst:core in
       charge_path t (Platform.package_of p core) l.home cmd_dwords;
       charge_path t (Platform.package_of p o) (Platform.package_of p core) data_dwords;
       Txn { home = l.home; lat; source_port = Some o; ln = Some l }
     | Some o when o <> core ->
       Perfcounter.count_c2c t.counters ~core;
       Local p.Platform.shared_cache_fetch
     | _ ->
       Perfcounter.count_dram t.counters ~core;
       let home_dist =
         Topology.hops p.Platform.topo (Platform.package_of p core) l.home
       in
       let lat = p.Platform.dram + (2 * p.Platform.hop_one_way * home_dist) in
       charge_path t (Platform.package_of p core) l.home (cmd_dwords + data_dwords);
       Txn { home = l.home; lat; source_port = None; ln = None })
  | Invalid ->
    Perfcounter.count_miss t.counters ~core;
    Perfcounter.count_dram t.counters ~core;
    l.st <- Shared [ core ];
    let home_dist = Topology.hops p.Platform.topo (Platform.package_of p core) l.home in
    let lat = p.Platform.dram + (2 * p.Platform.hop_one_way * home_dist) in
    charge_path t (Platform.package_of p core) l.home (cmd_dwords + data_dwords);
    Txn { home = l.home; lat; source_port = None; ln = None }

let prepare_store t ~core addr =
  let p = t.plat in
  let lid = line_of_addr t addr in
  let l = get_line t ~core lid in
  Perfcounter.count_store t.counters ~core;
  Perfcounter.touch_line t.counters ~core ~line:lid;
  note_presence t ~core lid;
  l.owner <- Some core;
  match l.st with
  | Modified o when o = core -> Hit
  | Shared [ c ] when c = core ->
    (* Silent E->M upgrade. *)
    l.st <- Modified core;
    Hit
  | Shared cs ->
    Perfcounter.count_miss t.counters ~core;
    Perfcounter.count_inval t.counters ~core;
    List.iter (fun c -> if c <> core then forget t ~core:c lid) cs;
    let remote = List.filter (fun c -> c <> core && not (is_local_group t core c)) cs in
    l.st <- Modified core;
    if remote = [] then Local p.Platform.shared_cache_fetch
    else begin
      (* Invalidation probes broadcast across the fabric; latency bounded by
         the farthest sharer. *)
      charge_probe_broadcast t;
      let far =
        List.fold_left (fun acc c -> max acc (transfer_latency t ~src:c ~dst:core)) 0 remote
      in
      Txn { home = l.home; lat = far; source_port = None; ln = None }
    end
  | Modified o ->
    Perfcounter.count_miss t.counters ~core;
    Perfcounter.count_c2c t.counters ~core;
    forget t ~core:o lid;
    l.st <- Modified core;
    if is_local_group t core o then Local p.Platform.shared_cache_fetch
    else begin
      let lat = transfer_latency t ~src:o ~dst:core in
      charge_path t (Platform.package_of p core) l.home cmd_dwords;
      charge_path t (Platform.package_of p o) (Platform.package_of p core) data_dwords;
      (* Migratory write: ownership moves between different cores, so
         successive transfers pipeline (no per-line storm slot). *)
      Txn { home = l.home; lat; source_port = Some o; ln = None }
    end
  | Invalid ->
    Perfcounter.count_miss t.counters ~core;
    Perfcounter.count_dram t.counters ~core;
    l.st <- Modified core;
    let home_dist = Topology.hops p.Platform.topo (Platform.package_of p core) l.home in
    let lat = p.Platform.dram + (2 * p.Platform.hop_one_way * home_dist) in
    charge_path t (Platform.package_of p core) l.home (cmd_dwords + data_dwords);
    Txn { home = l.home; lat; source_port = None; ln = None }

(* Realize an outcome without blocking: reserve the serialized resources
   and return the delay (relative to now) until the access completes.
   The home directory is occupied for its fixed service time; the sourcing
   cache's port is occupied for the whole transfer (a second fetch from the
   same cache cannot start until the first response has left), which is
   what serializes reader storms on one line. Both overlap the transfer
   latency itself. *)
let realize_posted t outcome =
  let p = t.plat in
  let now = Engine.now_ () in
  match outcome with
  | Hit -> p.Platform.l1_hit
  | Local lat -> lat
  | Txn { home; lat; source_port; ln } ->
    let occ = p.Platform.dir_occupancy in
    let dir_done = Resource.reserve t.dirs.(home) occ in
    let port_done =
      match source_port with
      | Some src -> Resource.reserve t.ports.(src) port_occupancy
      | None -> dir_done
    in
    (match ln with
     | Some l ->
       (* Owner-sourced transfer: readers of one dirty line are serviced
          one at a time; each service slot spans directory lookup, port
          turnaround and the transfer itself. An uncontended access still
          completes in [lat]. *)
       let slot_start = max now l.line_busy_until in
       l.line_busy_until <- slot_start + occ + port_occupancy + lat;
       let data_at = slot_start + lat in
       max (max lat (max dir_done port_done - now)) (data_at - now)
     | None -> max lat (max dir_done port_done - now))

let realize_blocking t outcome =
  let delay = realize_posted t outcome in
  Engine.wait delay

let load t ~core addr = realize_blocking t (prepare_load t ~core addr)

let load_async t ~core addr = realize_posted t (prepare_load t ~core addr)

let store t ~core addr = realize_blocking t (prepare_store t ~core addr)

let store_posted t ~core addr =
  let outcome = prepare_store t ~core addr in
  let delay = realize_posted t outcome in
  Engine.wait store_post_cost;
  max 0 (delay - store_post_cost)

let touch_range t ~core ~addr ~bytes ~write =
  if bytes > 0 then begin
    let first = line_of_addr t addr in
    let last = line_of_addr t (addr + bytes - 1) in
    for l = first to last do
      let a = l * t.plat.Platform.cacheline in
      if write then store t ~core a else load t ~core a
    done
  end

let line_state t ~line =
  match Hashtbl.find_opt t.lines line with Some l -> l.st | None -> Invalid
