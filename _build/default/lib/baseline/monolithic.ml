open Mk_sim
open Mk_hw

let clone_cost = 2600
let join_syscall_extra = 250

type t = {
  m : Machine.t;
  rq_lock : Spinlock.Tas.t;
  rq_line : int;  (* the shared scheduler-queue cache line *)
}

type kthread = { k_core : int; k_done : unit Sync.Ivar.t }

let create m = { m; rq_lock = Spinlock.Tas.create m; rq_line = Machine.alloc_lines m 1 }

let machine t = t.m

let spawn t ~core ?name body =
  let p = t.m.Machine.plat in
  (* clone(2): kernel setup plus a run-queue insertion under the global
     lock — the shared data structure every spawn contends on. *)
  Machine.compute t.m ~core p.Platform.syscall;
  Machine.compute t.m ~core clone_cost;
  Spinlock.Tas.with_lock t.rq_lock ~core (fun () ->
      Coherence.store t.m.Machine.coh ~core t.rq_line);
  let k_done = Sync.Ivar.create () in
  let name = Option.value name ~default:(Printf.sprintf "kthread%d" core) in
  Engine.spawn t.m.Machine.eng ~name (fun () ->
      body ();
      Sync.Ivar.fill k_done ());
  { k_core = core; k_done }

let join t kt =
  let p = t.m.Machine.plat in
  Machine.compute t.m ~core:kt.k_core (p.Platform.syscall + join_syscall_extra);
  Sync.Ivar.read kt.k_done

module Futex_barrier = struct
  (* Waking a sleeper reschedules it: futex-bucket work plus the resched
     IPI the destination core takes. *)
  let wake_cost_per_waiter = 280
  let resched_ipi = 550

  type b = {
    os : t;
    counter_line : int;
    parties : int;
    mutable arrived : int;
    mutable sleepers : (int * Engine.waker) list;  (* core, waker *)
  }

  let create os ~parties =
    if parties <= 0 then invalid_arg "Futex_barrier.create";
    {
      os;
      counter_line = Machine.alloc_lines os.m 1;
      parties;
      arrived = 0;
      sleepers = [];
    }

  let await b ~core =
    let m = b.os.m in
    let p = m.Machine.plat in
    (* User-space atomic on the barrier word (contended line). *)
    Coherence.store m.Machine.coh ~core b.counter_line;
    b.arrived <- b.arrived + 1;
    if b.arrived = b.parties then begin
      b.arrived <- 0;
      (* futex(WAKE): enter the kernel and wake each sleeper serially under
         the futex-bucket lock; each wake reschedules the sleeper. *)
      Machine.compute m ~core p.Platform.syscall;
      Spinlock.Tas.with_lock b.os.rq_lock ~core (fun () ->
          let sleepers = List.rev b.sleepers in
          b.sleepers <- [];
          List.iter
            (fun ((_score : int), (w : Engine.waker)) ->
              Machine.compute m ~core wake_cost_per_waiter;
              (* The sleeper resumes only after its resched IPI + trap. *)
              w ~delay:(resched_ipi + p.Platform.trap) ())
            sleepers)
    end
    else begin
      (* futex(WAIT): syscall in, sleep, context switch back in on wake. *)
      Machine.compute m ~core p.Platform.syscall;
      Engine.suspend (fun w -> b.sleepers <- (core, w) :: b.sleepers);
      Machine.compute m ~core p.Platform.context_switch
    end
end
