(** IPI-based TLB shootdown — how Linux and Windows maintain TLB
    consistency (§5.1, Figure 7's baselines).

    The initiating core writes the operation to a well-known shared
    location and sends an inter-processor interrupt to every core that
    might cache the mapping, {e serially}. Each target takes the trap
    (≈800 cycles), invalidates its TLB entry, and acknowledges by storing
    to a shared variable the initiator polls. Low latency at small core
    counts; linear and disruptive as they grow — each IPI yanks its target
    out of whatever it was doing. *)

type style = Linux | Windows

val style_to_string : style -> string

type t

val setup : Mk_hw.Machine.t -> style -> cores:int list -> t
(** Install the flush handler on every participating core. *)

val unmap : t -> initiator:int -> vpages:int list -> int
(** Run one unmap/mprotect: page-table update under the address-space
    lock, serial IPIs, wait for all acknowledgements. Returns the latency
    in cycles observed by the initiator. Task context required. *)

val per_ipi_send_cost : style -> int
(** Initiator-side cycles per IPI sent: APIC programming plus the kernel's
    bookkeeping (cpumask walk for Linux; dispatcher-database work for
    Windows — the code the "heroic" Windows7 effort of §2.1 reworked). *)
