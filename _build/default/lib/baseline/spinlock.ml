open Mk_sim
open Mk_hw

(* All three locks use a simulation-level mutex for the actual mutual
   exclusion and charge the hardware costs of their respective coherence
   footprints explicitly. *)

module Tas = struct
  type t = {
    m : Machine.t;
    line : int;
    inner : Sync.Mutex.t;
    mutable acqs : int;
  }

  let create m =
    { m; line = Machine.alloc_lines m 1; inner = Sync.Mutex.create (); acqs = 0 }

  let lock t ~core =
    (* One failed test-and-set per queued waiter ahead of us would be the
       honest model; we charge the attempt that wins plus one probe read,
       because the simulation mutex already serializes the waiters. *)
    Coherence.load t.m.Machine.coh ~core t.line;
    Sync.Mutex.lock t.inner;
    Coherence.store t.m.Machine.coh ~core t.line;
    t.acqs <- t.acqs + 1

  let unlock t ~core =
    Coherence.store t.m.Machine.coh ~core t.line;
    Sync.Mutex.unlock t.inner

  let with_lock t ~core f =
    lock t ~core;
    match f () with
    | v ->
      unlock t ~core;
      v
    | exception e ->
      unlock t ~core;
      raise e

  let acquisitions t = t.acqs
end

module Ticket = struct
  type t = {
    m : Machine.t;
    next_line : int;
    serving_line : int;
    inner : Sync.Mutex.t;
    mutable waiters : int;
  }

  let create m =
    {
      m;
      next_line = Machine.alloc_lines m 1;
      serving_line = Machine.alloc_lines m 1;
      inner = Sync.Mutex.create ();
      waiters = 0;
    }

  let lock t ~core =
    (* Take a ticket (RMW on the ticket line)... *)
    Coherence.store t.m.Machine.coh ~core t.next_line;
    t.waiters <- t.waiters + 1;
    Sync.Mutex.lock t.inner;
    t.waiters <- t.waiters - 1;
    (* ...and the read of now-serving that observed our turn. *)
    Coherence.load t.m.Machine.coh ~core t.serving_line

  let unlock t ~core =
    (* Bumping now-serving invalidates every waiter's cached copy; they all
       refetch. We charge the release store; waiters' refetches happen in
       their own lock paths. *)
    Coherence.store t.m.Machine.coh ~core t.serving_line;
    Sync.Mutex.unlock t.inner

  let with_lock t ~core f =
    lock t ~core;
    match f () with
    | v ->
      unlock t ~core;
      v
    | exception e ->
      unlock t ~core;
      raise e
end

module Mcs = struct
  type t = {
    m : Machine.t;
    tail_line : int;
    node_lines : int array;  (* one per core: private spin target *)
    inner : Sync.Mutex.t;
  }

  let create m =
    {
      m;
      tail_line = Machine.alloc_lines m 1;
      node_lines = Array.init (Machine.n_cores m) (fun _ -> Machine.alloc_lines m 1);
      inner = Sync.Mutex.create ();
    }

  let lock t ~core =
    (* Swap ourselves onto the tail, then spin on our own line. *)
    Coherence.store t.m.Machine.coh ~core t.tail_line;
    Sync.Mutex.lock t.inner;
    Coherence.load t.m.Machine.coh ~core t.node_lines.(core)

  let unlock t ~core =
    (* Hand off by writing the successor's node line (two-party traffic). *)
    Coherence.store t.m.Machine.coh ~core t.node_lines.(core);
    Sync.Mutex.unlock t.inner

  let with_lock t ~core f =
    lock t ~core;
    match f () with
    | v ->
      unlock t ~core;
      v
    | exception e ->
      unlock t ~core;
      raise e
end
