(** The shared-memory monolithic OS model (the Linux of Figures 7 and 9 and
    Table 4).

    One kernel image across all cores: a global run queue protected by a
    spinlock, in-kernel threads created and synchronized by system calls,
    and kernel objects living in shared memory. This is the left-hand
    design of Figure 4's spectrum, implemented over the same simulated
    hardware as the multikernel so the comparison isolates OS structure. *)

type t

val create : Mk_hw.Machine.t -> t
val machine : t -> Mk_hw.Machine.t

(** Kernel threads: created by a clone-style syscall that manipulates the
    shared run queue under its lock. *)

type kthread

val spawn : t -> core:int -> ?name:string -> (unit -> unit) -> kthread
val join : t -> kthread -> unit
(** Join is a futex-style syscall wait. *)

val clone_cost : int

(** NPTL-style barrier: user-space atomic on the barrier word, then a futex
    syscall to sleep; the last arriver syscalls futex-wake and the kernel
    walks the wait queue under a lock, waking each sleeper serially. *)
module Futex_barrier : sig
  type b

  val create : t -> parties:int -> b
  val await : b -> core:int -> unit
  val wake_cost_per_waiter : int
end
