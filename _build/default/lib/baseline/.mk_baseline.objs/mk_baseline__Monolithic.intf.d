lib/baseline/monolithic.mli: Mk_hw
