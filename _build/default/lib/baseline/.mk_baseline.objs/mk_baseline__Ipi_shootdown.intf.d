lib/baseline/ipi_shootdown.mli: Mk_hw
