lib/baseline/spinlock.mli: Mk_hw
