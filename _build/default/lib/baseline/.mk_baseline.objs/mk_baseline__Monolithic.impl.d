lib/baseline/monolithic.ml: Coherence Engine List Machine Mk_hw Mk_sim Option Platform Printf Spinlock Sync
