lib/baseline/ipi_shootdown.ml: Array Coherence Engine Ipi List Machine Mk_hw Mk_sim Platform Spinlock Sync Tlb
