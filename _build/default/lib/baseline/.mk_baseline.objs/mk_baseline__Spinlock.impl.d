lib/baseline/spinlock.ml: Array Coherence Machine Mk_hw Mk_sim Sync
