lib/baseline/l4_ipc.mli: Mk_hw
