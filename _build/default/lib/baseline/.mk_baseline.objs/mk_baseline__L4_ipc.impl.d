lib/baseline/l4_ipc.ml: Array Coherence Hashtbl Machine Mk_hw Platform Tlb
