open Mk_hw

let icache_lines = 25
let dcache_lines = 13
let flushes_tlb = true

(* Raw kernel IPC: syscall entry/exit plus a direct space switch, without
   Barrelfish's activation and user-level dispatch. The 314-cycle switch
   constant calibrates the 2x2 AMD figure to L4's published 424 cycles. *)
let space_switch = 314

let latency (p : Platform.t) = p.Platform.syscall + space_switch

(* One lazily allocated per-core region standing for TCBs + message regs. *)
let l4_lines =
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 8 in
  fun m core ->
    match Hashtbl.find_opt tbl core with
    | Some b -> b
    | None ->
      let b = Machine.alloc_lines m dcache_lines in
      Hashtbl.replace tbl core b;
      b

let ipc m ~core =
  let p = m.Machine.plat in
  Machine.compute m ~core (latency p);
  (* The path's data footprint: touch the modelled TCB/message lines so
     footprint tracking (Table 3) observes them. *)
  let base = l4_lines m core in
  for i = 0 to dcache_lines - 1 do
    Coherence.load m.Machine.coh ~core (base + (i * p.Platform.cacheline))
  done;
  ignore (Tlb.flush m.Machine.tlbs.(core) : int)
