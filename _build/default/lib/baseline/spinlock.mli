(** Shared-memory kernel locks — the synchronization discipline of the
    monolithic baseline (left end of Figure 4's spectrum).

    Both locks really bounce a simulated cache line between cores, so lock
    contention shows up as coherence traffic and home-node queueing, just
    as in the measurements the paper contrasts messages against. *)

(** Test-and-set spinlock. Every acquisition attempt is a coherent
    read-modify-write of the lock line. *)
module Tas : sig
  type t

  val create : Mk_hw.Machine.t -> t
  val lock : t -> core:int -> unit
  val unlock : t -> core:int -> unit
  val with_lock : t -> core:int -> (unit -> 'a) -> 'a
  val acquisitions : t -> int
end

(** Ticket lock: FIFO handoff; waiters poll the now-serving word, so a
    release invalidates every waiter's cached copy (the classic O(N)
    handoff cost this design is known for). *)
module Ticket : sig
  type t

  val create : Mk_hw.Machine.t -> t
  val lock : t -> core:int -> unit
  val unlock : t -> core:int -> unit
  val with_lock : t -> core:int -> (unit -> 'a) -> 'a
end

(** MCS queue lock: each waiter spins on its own line, so handoff touches
    only two cores — the scalable point-solution the paper mentions expert
    developers reach for. *)
module Mcs : sig
  type t

  val create : Mk_hw.Machine.t -> t
  val lock : t -> core:int -> unit
  val unlock : t -> core:int -> unit
  val with_lock : t -> core:int -> (unit -> 'a) -> 'a
end
