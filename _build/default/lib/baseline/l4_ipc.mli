(** Cost model of L4 (L4Ka::Pistachio) synchronous same-core IPC, the
    comparison point of Table 3.

    L4's fast path is a raw kernel IPC: no scheduler activation and no
    user-level dispatch, so it is faster than Barrelfish LRPC in direct
    cost — but it switches address spaces, flushing the TLB and touching
    substantially more instruction- and data-cache lines, which is the
    tradeoff Table 3 quantifies. *)

val ipc : Mk_hw.Machine.t -> core:int -> unit
(** Perform one one-way IPC on [core], charging the latency and touching
    the modelled cache footprint (so footprint counters see it). *)

val latency : Mk_hw.Platform.t -> int
(** One-way IPC latency in cycles (≈424 on the paper's 2×2 AMD). *)

val icache_lines : int
(** 25 on the paper's measurement — the L4 IPC path's code footprint. *)

val dcache_lines : int
(** 13 — TCBs, message registers, space structures. *)

val flushes_tlb : bool
