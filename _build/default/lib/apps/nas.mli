(** NAS-parallel-benchmark skeletons (§5.3, Figures 9a-9c).

    Compute/communication skeletons of the three OpenMP kernels the paper
    runs: identical arithmetic work on every OS (charged as compute cycles
    on the worker cores), with the real synchronization and sharing
    structure — reductions, barriers, all-to-all transposes, contended
    bucket updates — executed through the runtime under test. Work volumes
    are calibrated to the paper's cycle axes (×10^8 cycles on the 4×4 AMD).

    Each function returns total elapsed simulated cycles. Task context
    required. *)

val cg : Runtime.t -> cores:int list -> int
(** Conjugate gradient: 15 iterations, each a sparse matrix-vector product
    plus five dot-product reductions (barrier + contended reduction line). *)

val ft : Runtime.t -> cores:int list -> int
(** 3D FFT: 6 iterations of compute + all-to-all transpose (every worker
    pulls blocks written by every other worker) + barrier. *)

val is_sort : Runtime.t -> cores:int list -> int
(** Integer sort: 10 rank iterations of local counting plus updates to a
    shared bucket array (heavily contended lines) and two barriers. *)
