(** A small relational database engine — the SQLite stand-in of §5.4.

    Real tables, rows, hash indexes and a real (small) SQL front end:
    [CREATE TABLE], [INSERT INTO .. VALUES], and [SELECT cols FROM t
    [WHERE col = lit [AND ...]] [LIMIT n]]. Query execution charges
    per-row-examined compute on the database core, so an indexed point
    SELECT is cheap and a scan is not — enough to reproduce the
    database-core bottleneck of the paper's web+DB experiment. *)

type value = Int of int | Text of string

val value_to_string : value -> string

type db

val create : Mk_hw.Machine.t -> core:int -> db
val core : db -> int

type result = { columns : string list; rows : value list list }

val exec : db -> string -> (result, string) Stdlib.result
(** Run one SQL statement; [Error] carries a parse/semantic message.
    Charges parse + execution costs on the database core. *)

val create_index : db -> table:string -> column:string -> (unit, string) Stdlib.result
(** Hash index for equality WHERE clauses. *)

val table_rows : db -> string -> int option

(** Remote access: the query protocol served over URPC. *)

type query = string
type reply = (result, string) Stdlib.result

val serve : db -> (query, reply) Mk.Flounder.binding -> unit
(** Export the engine on a binding (one per client). *)

(** Deterministic TPC-W-flavoured content for the benchmark. *)
module Tpcw : sig
  val populate : db -> items:int -> unit
  (** ITEM(id, title, stock, price_cents) with an index on id. *)

  val point_query : Mk_sim.Prng.t -> items:int -> string
  (** A SELECT by primary key, as issued by the web frontend. *)
end
