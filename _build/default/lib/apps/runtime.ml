open Mk_hw

type worker_ctx = { rank : int; wcore : int; barrier : unit -> unit }

type t = {
  rt_name : string;
  rt_machine : Machine.t;
  run_team : cores:int list -> (worker_ctx -> unit) -> unit;
}

let name t = t.rt_name

let barrelfish os =
  let m = Mk.Os.machine os in
  {
    rt_name = "Barrelfish";
    rt_machine = m;
    run_team =
      (fun ~cores body ->
        let dom =
          Mk.Os.spawn_domain os ~name:"omp" ~cores
        in
        let bar = Mk.Threads.Barrier.create m ~parties:(List.length cores) in
        let threads =
          List.mapi
            (fun rank core ->
              let disp = Mk.Dom.dispatcher_on dom core in
              Mk.Threads.spawn m ~disp (fun () ->
                  body
                    { rank; wcore = core;
                      barrier = (fun () -> Mk.Threads.Barrier.await bar ~core) }))
            cores
        in
        List.iter Mk.Threads.join threads);
  }

let barrelfish_msg os =
  let m = Mk.Os.machine os in
  {
    rt_name = "Barrelfish (msg barrier)";
    rt_machine = m;
    run_team =
      (fun ~cores body ->
        let dom = Mk.Os.spawn_domain os ~name:"omp-msg" ~cores in
        let coordinator = List.hd cores in
        let parties = List.mapi (fun i c -> (i, c)) cores in
        let bar = Mk.Threads.Msg_barrier.create m ~coordinator ~parties in
        let threads =
          List.mapi
            (fun rank core ->
              let disp = Mk.Dom.dispatcher_on dom core in
              Mk.Threads.spawn m ~disp (fun () ->
                  body
                    { rank; wcore = core;
                      barrier = (fun () -> Mk.Threads.Msg_barrier.await bar ~party:rank) }))
            cores
        in
        List.iter Mk.Threads.join threads);
  }

let linux mono =
  let m = Mk_baseline.Monolithic.machine mono in
  {
    rt_name = "Linux";
    rt_machine = m;
    run_team =
      (fun ~cores body ->
        let bar =
          Mk_baseline.Monolithic.Futex_barrier.create mono ~parties:(List.length cores)
        in
        let kts =
          List.mapi
            (fun rank core ->
              Mk_baseline.Monolithic.spawn mono ~core (fun () ->
                  body
                    { rank; wcore = core;
                      barrier =
                        (fun () ->
                          Mk_baseline.Monolithic.Futex_barrier.await bar ~core) }))
            cores
        in
        List.iter (Mk_baseline.Monolithic.join mono) kts);
  }
