(** SPLASH-2 application skeletons (§5.3, Figures 9d-9e).

    Same methodology as {!Nas}: the sharing and synchronization structure
    of the two applications the paper measures, with arithmetic charged as
    compute cycles, run against either OS runtime. Returns elapsed
    simulated cycles; task context required. *)

val barnes_hut : Runtime.t -> cores:int list -> int
(** N-body: per step, a mostly serial tree build, a parallel force phase
    reading the shared tree, and barriers between phases. *)

val radiosity : Runtime.t -> cores:int list -> int
(** Task-queue parallel light transport: workers repeatedly dequeue from a
    shared lock-protected work queue until it drains. *)
