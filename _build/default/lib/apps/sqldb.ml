open Mk_hw

type value = Int of int | Text of string

let value_to_string = function Int i -> string_of_int i | Text s -> s

(* ------------------------------------------------------------------ *)
(* Storage                                                             *)

type table = {
  tname : string;
  columns : string array;
  mutable rows : value array array;  (* grows by doubling *)
  mutable nrows : int;
  indexes : (string, (value, int list ref) Hashtbl.t) Hashtbl.t;
}

type db = {
  m : Machine.t;
  db_core : int;
  tables : (string, table) Hashtbl.t;
}

let create m ~core = { m; db_core = core; tables = Hashtbl.create 8 }
let core db = db.db_core

(* Execution cost model, charged on the database core. *)
let parse_cost_per_char = 25  (* SQL lexing/parsing, SQLite-class *)
let row_scan_cost = 45
let index_probe_cost = 2_200  (* B-tree descent *)
let row_materialize_cost = 600
let insert_cost = 3_500
(* Standing in for SQLite's interpreted VDBE execution: statement
   compilation, snapshot setup, opcode dispatch. This is what makes the
   paper's web+DB configuration bottleneck on the database core. *)
let vdbe_overhead = 550_000

type result = { columns : string list; rows : value list list }

(* ------------------------------------------------------------------ *)
(* SQL tokenizer                                                       *)

type token =
  | Ident of string
  | IntLit of int
  | StrLit of string
  | Sym of char
  | Star

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let err = ref None in
  while !i < n && !err = None do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '*' then begin
      toks := Star :: !toks;
      incr i
    end
    else if c = ',' || c = '(' || c = ')' || c = '=' || c = ';' then begin
      toks := Sym c :: !toks;
      incr i
    end
    else if c = '\'' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '\'' do incr j done;
      if !j >= n then err := Some "unterminated string literal"
      else begin
        toks := StrLit (String.sub s (!i + 1) (!j - !i - 1)) :: !toks;
        i := !j + 1
      end
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9')
    then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      toks := IntLit (int_of_string (String.sub s !i (!j - !i))) :: !toks;
      i := !j
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let j = ref (!i + 1) in
      let is_ident_char c =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
      in
      while !j < n && is_ident_char s.[!j] do incr j done;
      toks := Ident (String.lowercase_ascii (String.sub s !i (!j - !i))) :: !toks;
      i := !j
    end
    else err := Some (Printf.sprintf "unexpected character %C" c)
  done;
  match !err with Some e -> Error e | None -> Ok (List.rev !toks)

(* ------------------------------------------------------------------ *)
(* Parser: a tiny recursive-descent grammar                            *)

type stmt =
  | Select of { cols : string list option (* None = * *); from : string;
                where : (string * value) list; limit : int option }
  | Insert of { into : string; values : value list }
  | Create of { tbl : string; cols : string list }

let parse toks =
  let ( let* ) = Result.bind in
  let expect_ident kw rest =
    match rest with
    | Ident id :: tl when id = kw -> Ok tl
    | _ -> Error (Printf.sprintf "expected %S" kw)
  in
  let parse_value = function
    | IntLit i :: tl -> Ok (Int i, tl)
    | StrLit s :: tl -> Ok (Text s, tl)
    | _ -> Error "expected a literal value"
  in
  let rec parse_where acc rest =
    match rest with
    | Ident col :: Sym '=' :: tl ->
      let* v, tl = parse_value tl in
      (match tl with
       | Ident "and" :: tl -> parse_where ((col, v) :: acc) tl
       | _ -> Ok (List.rev ((col, v) :: acc), tl))
    | _ -> Error "expected column = value"
  in
  let parse_tail ~cols ~from rest =
    let* where, rest =
      match rest with
      | Ident "where" :: tl -> parse_where [] tl
      | _ -> Ok ([], rest)
    in
    let* limit, rest =
      match rest with
      | Ident "limit" :: IntLit n :: tl -> Ok (Some n, tl)
      | Ident "limit" :: _ -> Error "expected integer after LIMIT"
      | _ -> Ok (None, rest)
    in
    match rest with
    | [] | [ Sym ';' ] -> Ok (Select { cols; from; where; limit })
    | _ -> Error "trailing tokens after statement"
  in
  match toks with
  | Ident "select" :: rest ->
    (match rest with
     | Star :: rest ->
       let* rest = expect_ident "from" rest in
       (match rest with
        | Ident from :: rest -> parse_tail ~cols:None ~from rest
        | _ -> Error "expected table name")
     | _ ->
       let rec cols acc = function
         | Ident c :: Sym ',' :: tl -> cols (c :: acc) tl
         | Ident c :: tl -> Ok (List.rev (c :: acc), tl)
         | _ -> Error "expected column list"
       in
       let* cs, rest = cols [] rest in
       let* rest = expect_ident "from" rest in
       (match rest with
        | Ident from :: rest -> parse_tail ~cols:(Some cs) ~from rest
        | _ -> Error "expected table name"))
  | Ident "insert" :: rest ->
    let* rest = expect_ident "into" rest in
    (match rest with
     | Ident into :: Ident "values" :: Sym '(' :: tl ->
       let rec vals acc = function
         | Sym ')' :: tl -> Ok (List.rev acc, tl)
         | Sym ',' :: tl -> vals acc tl
         | toks ->
           let* v, tl = parse_value toks in
           vals (v :: acc) tl
       in
       let* values, rest = vals [] tl in
       (match rest with
        | [] | [ Sym ';' ] -> Ok (Insert { into; values })
        | _ -> Error "trailing tokens after statement")
     | _ -> Error "expected INSERT INTO t VALUES (...)")
  | Ident "create" :: rest ->
    let* rest = expect_ident "table" rest in
    (match rest with
     | Ident tbl :: Sym '(' :: tl ->
       let rec cols acc = function
         | Ident c :: Sym ',' :: tl -> cols (c :: acc) tl
         | Ident c :: Sym ')' :: tl -> Ok (List.rev (c :: acc), tl)
         | _ -> Error "expected column list"
       in
       let* cols_, rest = cols [] tl in
       (match rest with
        | [] | [ Sym ';' ] -> Ok (Create { tbl; cols = cols_ })
        | _ -> Error "trailing tokens after statement")
     | _ -> Error "expected CREATE TABLE t (cols)")
  | _ -> Error "expected SELECT, INSERT or CREATE"

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

let col_index (tbl : table) col =
  let rec go i =
    if i >= Array.length tbl.columns then None
    else if tbl.columns.(i) = col then Some i
    else go (i + 1)
  in
  go 0

let add_row (tbl : table) row =
  if tbl.nrows = Array.length tbl.rows then begin
    let cap = max 64 (tbl.nrows * 2) in
    let next = Array.make cap [||] in
    Array.blit tbl.rows 0 next 0 tbl.nrows;
    tbl.rows <- next
  end;
  tbl.rows.(tbl.nrows) <- row;
  (* Maintain indexes. *)
  Hashtbl.iter
    (fun col idx ->
      match col_index tbl col with
      | None -> ()
      | Some ci ->
        let key = row.(ci) in
        (match Hashtbl.find_opt idx key with
         | Some l -> l := tbl.nrows :: !l
         | None -> Hashtbl.replace idx key (ref [ tbl.nrows ])))
    tbl.indexes;
  tbl.nrows <- tbl.nrows + 1

let create_index db ~table ~column =
  match Hashtbl.find_opt db.tables table with
  | None -> Error (Printf.sprintf "no such table: %s" table)
  | Some tbl ->
    (match col_index tbl column with
     | None -> Error (Printf.sprintf "no such column: %s" column)
     | Some ci ->
       let idx = Hashtbl.create (max 64 tbl.nrows) in
       for r = 0 to tbl.nrows - 1 do
         let key = tbl.rows.(r).(ci) in
         match Hashtbl.find_opt idx key with
         | Some l -> l := r :: !l
         | None -> Hashtbl.replace idx key (ref [ r ])
       done;
       Hashtbl.replace tbl.indexes column idx;
       Ok ())

let exec db sql =
  Machine.compute db.m ~core:db.db_core (String.length sql * parse_cost_per_char);
  match tokenize sql with
  | Error e -> Error e
  | Ok toks ->
    (match parse toks with
     | Error e -> Error e
     | Ok (Create { tbl; cols }) ->
       if Hashtbl.mem db.tables tbl then Error (Printf.sprintf "table exists: %s" tbl)
       else begin
         Hashtbl.replace db.tables tbl
           { tname = tbl; columns = Array.of_list cols; rows = [||]; nrows = 0;
             indexes = Hashtbl.create 4 };
         Ok { columns = []; rows = [] }
       end
     | Ok (Insert { into; values }) ->
       (match Hashtbl.find_opt db.tables into with
        | None -> Error (Printf.sprintf "no such table: %s" into)
        | Some tbl ->
          if List.length values <> Array.length tbl.columns then
            Error "wrong number of values"
          else begin
            Machine.compute db.m ~core:db.db_core insert_cost;
            add_row tbl (Array.of_list values);
            Ok { columns = []; rows = [] }
          end)
     | Ok (Select { cols; from; where; limit }) ->
       Machine.compute db.m ~core:db.db_core vdbe_overhead;
       (match Hashtbl.find_opt db.tables from with
        | None -> Error (Printf.sprintf "no such table: %s" from)
        | Some tbl ->
          (* Resolve projection. *)
          let proj =
            match cols with
            | None -> Ok (Array.to_list (Array.mapi (fun i c -> (c, i)) tbl.columns))
            | Some cs ->
              let rec resolve acc = function
                | [] -> Ok (List.rev acc)
                | c :: tl ->
                  (match col_index tbl c with
                   | Some i -> resolve ((c, i) :: acc) tl
                   | None -> Error (Printf.sprintf "no such column: %s" c))
              in
              resolve [] cs
          in
          (match proj with
           | Error e -> Error e
           | Ok proj ->
             (* Resolve predicates; try an index for the first one. *)
             let rec resolve_preds acc = function
               | [] -> Ok (List.rev acc)
               | (c, v) :: tl ->
                 (match col_index tbl c with
                  | Some i -> resolve_preds ((c, i, v) :: acc) tl
                  | None -> Error (Printf.sprintf "no such column: %s" c))
             in
             (match resolve_preds [] where with
              | Error e -> Error e
              | Ok preds ->
                let candidates =
                  match preds with
                  | (c, _, v) :: _ when Hashtbl.mem tbl.indexes c ->
                    Machine.compute db.m ~core:db.db_core index_probe_cost;
                    (match Hashtbl.find_opt (Hashtbl.find tbl.indexes c) v with
                     | Some l -> !l
                     | None -> [])
                  | _ ->
                    Machine.compute db.m ~core:db.db_core (tbl.nrows * row_scan_cost);
                    List.init tbl.nrows Fun.id
                in
                let matches r =
                  List.for_all (fun (_, i, v) -> tbl.rows.(r).(i) = v) preds
                in
                let selected = List.filter matches candidates in
                let selected = List.sort compare selected in
                let selected =
                  match limit with
                  | Some n -> List.filteri (fun i _ -> i < n) selected
                  | None -> selected
                in
                Machine.compute db.m ~core:db.db_core
                  (List.length selected * row_materialize_cost);
                let rows =
                  List.map
                    (fun r -> List.map (fun (_, i) -> tbl.rows.(r).(i)) proj)
                    selected
                in
                Ok { columns = List.map fst proj; rows }))))

let table_rows db name =
  Option.map (fun t -> t.nrows) (Hashtbl.find_opt db.tables name)

type query = string
type reply = (result, string) Stdlib.result

let serve db binding = Mk.Flounder.export binding (fun sql -> exec db sql)

module Tpcw = struct
  let populate db ~items =
    (match exec db "CREATE TABLE item (id, title, stock, price)" with
     | Ok _ -> ()
     | Error e -> failwith e);
    for i = 1 to items do
      let sql =
        Printf.sprintf "INSERT INTO item VALUES (%d, 'item-%d', %d, %d)" i i
          ((i * 7) mod 100)
          (100 + ((i * 131) mod 5000))
      in
      match exec db sql with Ok _ -> () | Error e -> failwith e
    done;
    match create_index db ~table:"item" ~column:"id" with
    | Ok () -> ()
    | Error e -> failwith e

  let point_query rng ~items =
    let id = 1 + Mk_sim.Prng.int rng items in
    Printf.sprintf "SELECT id, title, stock, price FROM item WHERE id = %d" id
end
