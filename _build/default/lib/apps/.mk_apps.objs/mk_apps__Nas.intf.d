lib/apps/nas.mli: Runtime
