lib/apps/runtime.ml: List Machine Mk Mk_baseline Mk_hw
