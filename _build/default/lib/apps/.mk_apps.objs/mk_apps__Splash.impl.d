lib/apps/splash.ml: Coherence Engine List Machine Mk_hw Mk_sim Platform Runtime
