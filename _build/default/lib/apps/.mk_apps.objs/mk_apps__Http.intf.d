lib/apps/http.mli: Mk_net
