lib/apps/sqldb.mli: Mk Mk_hw Mk_sim Stdlib
