lib/apps/echo.mli: Mk_hw Mk_net
