lib/apps/http.ml: Buffer Engine List Machine Mk_hw Mk_net Mk_sim Printf Stack String Sync Tcp_lite
