lib/apps/splash.mli: Runtime
