lib/apps/runtime.mli: Mk Mk_baseline Mk_hw
