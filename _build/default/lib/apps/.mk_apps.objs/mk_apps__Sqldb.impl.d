lib/apps/sqldb.ml: Array Fun Hashtbl List Machine Mk Mk_hw Mk_sim Option Printf Result Stdlib String
