lib/apps/echo.ml: Engine Ethernet Ipv4 Machine Mk_hw Mk_net Mk_sim Netif Nic Pbuf Platform Stack Udp
