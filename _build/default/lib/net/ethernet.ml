(* Ethernet II framing: real 14-byte headers in the pbuf. MAC addresses are
   48-bit ints. *)

let header_bytes = 14
let ethertype_ipv4 = 0x0800
let mtu = 1500

let mac_of_core core = 0x020000000000 lor core

type hdr = { dst : int; src : int; ethertype : int }

let encode p ~dst ~src ~ethertype =
  Pbuf.push_header p header_bytes;
  Pbuf.set_u16 p 0 ((dst lsr 32) land 0xffff);
  Pbuf.set_u32 p 2 (dst land 0xffffffff);
  Pbuf.set_u16 p 6 ((src lsr 32) land 0xffff);
  Pbuf.set_u32 p 8 (src land 0xffffffff);
  Pbuf.set_u16 p 12 ethertype

let decode p =
  if Pbuf.len p < header_bytes then None
  else begin
    let dst = (Pbuf.get_u16 p 0 lsl 32) lor Pbuf.get_u32 p 2 in
    let src = (Pbuf.get_u16 p 6 lsl 32) lor Pbuf.get_u32 p 8 in
    let ethertype = Pbuf.get_u16 p 12 in
    Pbuf.pull p header_bytes;
    Some { dst; src; ethertype }
  end
