(* Network-interface abstraction: anything that can transmit a framed
   packet and deliver received ones upward. Implementations: the e1000
   device model (Nic), URPC point-to-point links (Stack.connect_urpc), and
   the in-kernel loopback (Kernel_loopback). *)

type t = {
  ifname : string;
  mac : int;
  send : Pbuf.t -> unit;
  mutable rx : Pbuf.t -> unit;  (* installed by the stack *)
  mutable tx_packets : int;
  mutable rx_packets : int;
  mutable loss : (Mk_sim.Prng.t * float) option;  (* fault injection *)
  mutable dropped : int;
}

let create ~name ~mac ~send =
  { ifname = name; mac; send; rx = (fun _ -> ()); tx_packets = 0; rx_packets = 0;
    loss = None; dropped = 0 }

(* Fault injection: drop incoming frames with the given probability.
   Deterministic per seed; used to exercise TCP's retransmission path. *)
let set_loss t ?(seed = 1) rate =
  if rate < 0.0 || rate >= 1.0 then invalid_arg "Netif.set_loss: rate in [0, 1)";
  t.loss <- (if rate = 0.0 then None else Some (Mk_sim.Prng.create ~seed, rate))

let drops t = t.dropped

let name t = t.ifname
let mac t = t.mac

let transmit t p =
  t.tx_packets <- t.tx_packets + 1;
  t.send p

let deliver t p =
  match t.loss with
  | Some (rng, rate) when Mk_sim.Prng.float rng 1.0 < rate ->
    t.dropped <- t.dropped + 1
  | _ ->
    t.rx_packets <- t.rx_packets + 1;
    t.rx p

let set_rx t f = t.rx <- f
