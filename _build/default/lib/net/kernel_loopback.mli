(** The in-kernel shared-memory loopback path (Table 4's Linux side).

    Linux and Windows use in-kernel network stacks with packet queues in
    shared data structures: loopback traffic enters the kernel on the
    sending core (syscall + copy into an skb), is queued on a shared,
    lock-protected queue, and is picked up by kernel code on the receiving
    core (softirq), which reads the skb the other core wrote — pure
    cache-coherence traffic — and copies it out to the user. *)

type t

val create : Mk_hw.Machine.t -> t

val sendto : t -> core:int -> Pbuf.t -> unit
(** UDP sendto over loopback from [core]: syscall, copy_from_user into a
    fresh skb, UDP/IP processing, queue insertion under the queue lock,
    receiver wakeup. Blocks when the queue is full (socket buffer limit). *)

val recvfrom : t -> core:int -> Pbuf.t
(** Blocking recvfrom: syscall, queue removal under the lock, IP/UDP
    processing on the receiving core (reading the remote-written skb), and
    copy_to_user. *)

val queue_len : t -> int
val packets : t -> int
