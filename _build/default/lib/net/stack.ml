open Mk_sim
open Mk_hw
open Mk

(* Per-layer software costs (cycles/packet), calibrated so the loopback
   paths land in Table 4's throughput regime. *)
let udp_layer_cost = 900
let ip_layer_cost = 800
let driver_layer_cost = 700
let tcp_layer_cost = 2500

type udp_sock = {
  port : int;
  rx_q : (Pbuf.t * (int * int)) Sync.Mailbox.t;
  owner : t;
}

and t = {
  m : Machine.t;
  score : int;
  sip : int;
  nif : Netif.t;
  udp_socks : (int, udp_sock) Hashtbl.t;
  offload : bool;
  kernel_overhead : int;  (* per-packet syscall/softirq cost: in-kernel stacks *)
  tcp_engine : Tcp_lite.t;
  (* Address resolution: off by default (point-to-point links don't need
     it); NIC-attached stacks enable it and resolve next hops like any
     Ethernet host. *)
  arp_enabled : bool;
  arp_table : (int, int) Hashtbl.t;  (* ip -> mac *)
  arp_pending : (int, Pbuf.t list ref) Hashtbl.t;  (* awaiting resolution *)
  ping_waiters : (int, int Sync.Ivar.t) Hashtbl.t;  (* seq -> send time *)
  mutable ping_seq : int;
}

let machine t = t.m
let core t = t.score
let ip t = t.sip
let netif t = t.nif

let send_frame t ~dst_mac p =
  Machine.compute t.m ~core:t.score driver_layer_cost;
  Ethernet.encode p ~dst:dst_mac ~src:(Netif.mac t.nif)
    ~ethertype:Ethernet.ethertype_ipv4;
  (* The stack writes the headers it just built. *)
  Coherence.touch_range t.m.Machine.coh ~core:t.score ~addr:(Pbuf.addr p)
    ~bytes:(Ethernet.header_bytes + Ipv4.header_bytes) ~write:true;
  Netif.transmit t.nif p

let send_arp t ~op ~target_mac ~target_ip =
  let p = Pbuf.alloc t.m ~size:0 () in
  Arp.encode p
    ~a:{ Arp.op; sender_mac = Netif.mac t.nif; sender_ip = t.sip; target_mac; target_ip };
  Ethernet.encode p
    ~dst:(if op = Arp.op_request then Arp.broadcast_mac else target_mac)
    ~src:(Netif.mac t.nif) ~ethertype:Arp.ethertype;
  Netif.transmit t.nif p

(* Output path: UDP/TCP -> IP -> Ethernet -> interface, charging each
   layer's processing and touching the header lines it writes. Without ARP
   the peer's MAC is derived from its address (our point-to-point links);
   with it, unresolved packets queue behind an ARP request. *)
let ip_output t ~proto ~dst_ip p =
  Machine.compute t.m ~core:t.score (ip_layer_cost + t.kernel_overhead);
  Ipv4.encode p ~src:t.sip ~dst:dst_ip ~proto;
  if not t.arp_enabled then
    send_frame t ~dst_mac:(Ethernet.mac_of_core (dst_ip land 0xff)) p
  else
    match Hashtbl.find_opt t.arp_table dst_ip with
    | Some mac -> send_frame t ~dst_mac:mac p
    | None ->
      (match Hashtbl.find_opt t.arp_pending dst_ip with
       | Some q -> q := p :: !q
       | None ->
         Hashtbl.replace t.arp_pending dst_ip (ref [ p ]);
         send_arp t ~op:Arp.op_request ~target_mac:0 ~target_ip:dst_ip)

(* Input path, run in the context of whatever task delivers the frame. *)
let handle_arp t p =
  match Arp.decode p with
  | None -> ()
  | Some a ->
    (* Learn the sender either way. *)
    Hashtbl.replace t.arp_table a.Arp.sender_ip a.Arp.sender_mac;
    (match Hashtbl.find_opt t.arp_pending a.Arp.sender_ip with
     | Some q ->
       Hashtbl.remove t.arp_pending a.Arp.sender_ip;
       List.iter
         (fun pkt -> send_frame t ~dst_mac:a.Arp.sender_mac pkt)
         (List.rev !q)
     | None -> ());
    if a.Arp.op = Arp.op_request && a.Arp.target_ip = t.sip then
      send_arp t ~op:Arp.op_reply ~target_mac:a.Arp.sender_mac ~target_ip:a.Arp.sender_ip

let handle_icmp t ~src_ip p =
  match Icmp.decode p with
  | None -> ()
  | Some m ->
    if m.Icmp.icmp_type = Icmp.type_echo_request then begin
      let reply = Pbuf.of_string t.m (Pbuf.contents p) in
      Icmp.encode reply ~icmp_type:Icmp.type_echo_reply ~ident:m.Icmp.ident ~seq:m.Icmp.seq;
      ip_output t ~proto:Icmp.protocol ~dst_ip:src_ip reply
    end
    else if m.Icmp.icmp_type = Icmp.type_echo_reply then
      match Hashtbl.find_opt t.ping_waiters m.Icmp.seq with
      | Some iv ->
        Hashtbl.remove t.ping_waiters m.Icmp.seq;
        Sync.Ivar.fill iv (Engine.now_ ())
      | None -> ()

let input t p =
  Machine.compute t.m ~core:t.score (driver_layer_cost + t.kernel_overhead);
  match Ethernet.decode p with
  | None -> ()
  | Some eth ->
    if eth.Ethernet.ethertype = Arp.ethertype then handle_arp t p
    else if eth.Ethernet.ethertype <> Ethernet.ethertype_ipv4 then ()
    else begin
      Machine.compute t.m ~core:t.score ip_layer_cost;
      (* Header parse reads. *)
      Coherence.touch_range t.m.Machine.coh ~core:t.score ~addr:(Pbuf.addr p)
        ~bytes:Ipv4.header_bytes ~write:false;
      match Ipv4.decode p with
      | None -> ()
      | Some iph ->
        if iph.Ipv4.proto = Ipv4.proto_udp then begin
          Machine.compute t.m ~core:t.score udp_layer_cost;
          match Udp.decode p with
          | None -> ()
          | Some uh ->
            if not t.offload then
              Machine.compute t.m ~core:t.score (Checksum.cycles (Pbuf.len p));
            (match Hashtbl.find_opt t.udp_socks uh.Udp.dst_port with
             | Some sock ->
               Sync.Mailbox.send sock.rx_q (p, (iph.Ipv4.src, uh.Udp.src_port))
             | None -> ())
        end
        else if iph.Ipv4.proto = Ipv4.proto_tcp then begin
          Machine.compute t.m ~core:t.score tcp_layer_cost;
          Tcp_lite.input t.tcp_engine ~src_ip:iph.Ipv4.src p
        end
        else if iph.Ipv4.proto = Icmp.protocol then handle_icmp t ~src_ip:iph.Ipv4.src p
    end

let create m ~core ?ip ?(checksum_offload = false) ?(kernel_overhead = 0) ?timer
    ?(arp = false) nif =
  let sip = match ip with Some i -> i | None -> Ipv4.addr_of_core core in
  let t_ref = ref None in
  let tcp_engine =
    Tcp_lite.create ?timer ~ip:sip
      ~output:(fun ~dst_ip p ->
        ip_output (Option.get !t_ref) ~proto:Ipv4.proto_tcp ~dst_ip p)
      ~alloc_pbuf:(fun size -> Pbuf.alloc m ~size ())
      ()
  in
  let t =
    { m; score = core; sip; nif; udp_socks = Hashtbl.create 8;
      offload = checksum_offload; kernel_overhead; tcp_engine;
      arp_enabled = arp; arp_table = Hashtbl.create 16;
      arp_pending = Hashtbl.create 8; ping_waiters = Hashtbl.create 8;
      ping_seq = 0 }
  in
  t_ref := Some t;
  Netif.set_rx nif (fun p -> input t p);
  t

let udp_bind t ~port =
  if Hashtbl.mem t.udp_socks port then invalid_arg "Stack.udp_bind: port in use";
  let s = { port; rx_q = Sync.Mailbox.create (); owner = t } in
  Hashtbl.replace t.udp_socks port s;
  s

let udp_sendto sock ~dst_ip ~dst_port payload =
  let t = sock.owner in
  Machine.compute t.m ~core:t.score udp_layer_cost;
  if not t.offload then
    Machine.compute t.m ~core:t.score (Checksum.cycles (Pbuf.len payload));
  Udp.encode payload ~src_port:sock.port ~dst_port;
  ip_output t ~proto:Ipv4.proto_udp ~dst_ip payload

let udp_recvfrom sock = Sync.Mailbox.recv sock.rx_q
let udp_pending sock = Sync.Mailbox.length sock.rx_q

let arp_add t ~ip ~mac = Hashtbl.replace t.arp_table ip mac
let arp_lookup t ~ip = Hashtbl.find_opt t.arp_table ip

(* ICMP echo round trip; None on timeout. *)
let ping t ~dst_ip ~timeout =
  t.ping_seq <- t.ping_seq + 1;
  let seq = t.ping_seq in
  let iv = Sync.Ivar.create () in
  Hashtbl.replace t.ping_waiters seq iv;
  let p = Pbuf.of_string t.m "ping-payload-0123456789abcdef" in
  Icmp.encode p ~icmp_type:Icmp.type_echo_request ~ident:1 ~seq;
  let sent = Engine.now_ () in
  ip_output t ~proto:Icmp.protocol ~dst_ip p;
  Engine.spawn_ ~name:"ping.timeout" (fun () ->
      Engine.wait timeout;
      match Hashtbl.find_opt t.ping_waiters seq with
      | Some iv ->
        Hashtbl.remove t.ping_waiters seq;
        if not (Sync.Ivar.is_filled iv) then Sync.Ivar.fill iv (-1)
      | None -> ());
  let arrived = Sync.Ivar.read iv in
  if arrived < 0 then None else Some (arrived - sent)

let tcp t = t.tcp_engine
let tcp_listen t ~port = Tcp_lite.listen t.tcp_engine ~port
let tcp_connect t ~dst_ip ~dst_port = Tcp_lite.connect t.tcp_engine ~dst_ip ~dst_port

(* A URPC-carried point-to-point link: each frame becomes an n-line
   message; delivery happens in a dedicated receiver task per direction
   that feeds the peer stack's input path. *)
let connect_urpc m ~core_a ~core_b ?(slots = 16) () =
  let make ~src ~dst =
    let ch =
      Urpc.create m ~sender:src ~receiver:dst ~slots
        ~name:(Printf.sprintf "netlink%d->%d" src dst)
        ()
    in
    let nif =
      Netif.create
        ~name:(Printf.sprintf "urpc%d" src)
        ~mac:(Ethernet.mac_of_core src)
        ~send:(fun p ->
          let lines = (Pbuf.len p + 63) / 64 in
          Urpc.send ch ~lines p)
    in
    (ch, nif)
  in
  let ch_ab, nif_a = make ~src:core_a ~dst:core_b in
  let ch_ba, nif_b = make ~src:core_b ~dst:core_a in
  (* Receiver pumps: deliver frames into the destination interface. *)
  Engine.spawn m.Machine.eng ~name:"netlink.pump.ab" (fun () ->
      let rec loop () =
        let p = Urpc.recv ch_ab in
        Netif.deliver nif_b p;
        loop ()
      in
      loop ());
  Engine.spawn m.Machine.eng ~name:"netlink.pump.ba" (fun () ->
      let rec loop () =
        let p = Urpc.recv ch_ba in
        Netif.deliver nif_a p;
        loop ()
      in
      loop ());
  (nif_a, nif_b)
