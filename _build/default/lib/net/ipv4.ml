(* IPv4 without options: real 20-byte headers with a real header checksum. *)

let header_bytes = 20
let proto_udp = 17
let proto_tcp = 6

type hdr = { src : int; dst : int; proto : int; payload_len : int; ttl : int }

let addr_of_core core = 0x0a000000 lor (core + 1) (* 10.0.0.x *)

let mutable_ident = ref 0

let encode p ~src ~dst ~proto =
  let payload_len = Pbuf.len p in
  Pbuf.push_header p header_bytes;
  incr mutable_ident;
  Pbuf.set_u8 p 0 0x45;  (* version 4, IHL 5 *)
  Pbuf.set_u8 p 1 0;
  Pbuf.set_u16 p 2 (header_bytes + payload_len);
  Pbuf.set_u16 p 4 (!mutable_ident land 0xffff);
  Pbuf.set_u16 p 6 0x4000;  (* DF *)
  Pbuf.set_u8 p 8 64;  (* TTL *)
  Pbuf.set_u8 p 9 proto;
  Pbuf.set_u16 p 10 0;  (* checksum placeholder *)
  Pbuf.set_u32 p 12 src;
  Pbuf.set_u32 p 16 dst;
  let csum = Checksum.of_pbuf ~start:0 ~len:header_bytes p in
  Pbuf.set_u16 p 10 csum

let decode p =
  if Pbuf.len p < header_bytes then None
  else if Pbuf.get_u8 p 0 <> 0x45 then None
  else if not (Checksum.valid ~start:0 ~len:header_bytes p) then None
  else begin
    let total = Pbuf.get_u16 p 2 in
    let ttl = Pbuf.get_u8 p 8 in
    let proto = Pbuf.get_u8 p 9 in
    let src = Pbuf.get_u32 p 12 in
    let dst = Pbuf.get_u32 p 16 in
    Pbuf.pull p header_bytes;
    Some { src; dst; proto; payload_len = total - header_bytes; ttl }
  end
