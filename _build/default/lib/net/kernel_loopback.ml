open Mk_sim
open Mk_hw
open Mk_baseline

let sock_buffer_packets = 64
let softirq_cost = 600  (* softirq scheduling on the receive side *)
let skb_metadata_lines = 4  (* struct sk_buff spans several lines *)
let socket_lines = 4  (* struct sock: sk_lock, receive queue, accounting *)
let slab_lines = 4  (* skb slab freelist, shared between alloc/free cores *)

type t = {
  m : Machine.t;
  q : Pbuf.t Sync.Mailbox.t;
  q_lock : Spinlock.Tas.t;
  q_head_line : int;
  skb_meta_base : int;
  socket_base : int;
  slab_base : int;
  room : Sync.Semaphore.t;
  mutable count : int;
}

let create m =
  {
    m;
    q = Sync.Mailbox.create ();
    q_lock = Spinlock.Tas.create m;
    q_head_line = Machine.alloc_lines m 1;
    skb_meta_base = Machine.alloc_lines m skb_metadata_lines;
    socket_base = Machine.alloc_lines m socket_lines;
    slab_base = Machine.alloc_lines m slab_lines;
    room = Sync.Semaphore.create sock_buffer_packets;
    count = 0;
  }

let touch_socket t ~core =
  (* Both ends manipulate the destination socket: sk_lock, receive-queue
     pointers, rmem accounting — shared lines that bounce per packet. *)
  let cl = t.m.Machine.plat.Platform.cacheline in
  for i = 0 to socket_lines - 1 do
    Coherence.store t.m.Machine.coh ~core (t.socket_base + (i * cl))
  done

let touch_slab t ~core =
  (* skb alloc/free hit the same slab freelist from both cores. *)
  let cl = t.m.Machine.plat.Platform.cacheline in
  for i = 0 to slab_lines - 1 do
    Coherence.store t.m.Machine.coh ~core (t.slab_base + (i * cl))
  done

let touch_skb_meta t ~core ~write =
  let cl = t.m.Machine.plat.Platform.cacheline in
  for i = 0 to skb_metadata_lines - 1 do
    let a = t.skb_meta_base + (i * cl) in
    if write then Coherence.store t.m.Machine.coh ~core a
    else Coherence.load t.m.Machine.coh ~core a
  done

let sendto t ~core payload =
  let m = t.m in
  let p = m.Machine.plat in
  Sync.Semaphore.acquire t.room;
  (* Syscall in; allocate an skb and copy the user buffer into it. *)
  Machine.compute m ~core p.Platform.syscall;
  touch_slab t ~core;
  let skb = Pbuf.copy payload m ~core in
  touch_skb_meta t ~core ~write:true;
  (* UDP/IP output processing in the kernel. *)
  Machine.compute m ~core (Stack.udp_layer_cost + Stack.ip_layer_cost);
  Machine.compute m ~core (Checksum.cycles (Pbuf.len payload));
  (* Queue on the shared loopback device under its lock. *)
  Spinlock.Tas.with_lock t.q_lock ~core (fun () ->
      Coherence.store m.Machine.coh ~core t.q_head_line;
      Sync.Mailbox.send t.q skb);
  (* Deliver to the destination socket: softirq runs the receive path up to
     the socket, which the sender-side core queues onto. *)
  touch_socket t ~core;
  Machine.compute m ~core softirq_cost;
  t.count <- t.count + 1

let recvfrom t ~core =
  let m = t.m in
  let p = m.Machine.plat in
  (* Syscall in; block until data. *)
  Machine.compute m ~core p.Platform.syscall;
  Spinlock.Tas.with_lock t.q_lock ~core (fun () ->
      Coherence.store m.Machine.coh ~core t.q_head_line);
  let skb = Sync.Mailbox.recv t.q in
  (* Read the skb the other core wrote: metadata + payload are coherence
     misses; then IP/UDP input processing and copy_to_user. *)
  touch_skb_meta t ~core ~write:false;
  touch_socket t ~core;
  Machine.compute m ~core (Stack.ip_layer_cost + Stack.udp_layer_cost);
  Machine.compute m ~core (Checksum.cycles (Pbuf.len skb));
  let user_copy = Pbuf.copy skb m ~core in
  (* Free the skb back to the (shared) slab. *)
  touch_slab t ~core;
  Machine.compute m ~core p.Platform.syscall;
  Sync.Semaphore.release t.room;
  user_copy

let queue_len t = Sync.Mailbox.length t.q
let packets t = t.count
