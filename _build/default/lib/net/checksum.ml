(* RFC 1071 Internet checksum, computed for real over pbuf contents.
   The walk's memory traffic is charged by the caller (Pbuf.touch); the
   ALU cost is [cycles len]. *)

let cycles_per_16_bytes = 4

let cycles len = (len + 15) / 16 * cycles_per_16_bytes

let of_pbuf ?(start = 0) ?len:l p =
  let n = match l with Some n -> n | None -> Pbuf.len p - start in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + Pbuf.get_u16 p (start + !i);
    i := !i + 2
  done;
  if !i < n then sum := !sum + (Pbuf.get_u8 p (start + !i) lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let valid ?start ?len p = of_pbuf ?start ?len p = 0
