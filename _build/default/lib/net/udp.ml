(* UDP with real 8-byte headers. The UDP checksum over the payload is
   computed (and its cycle cost charged by the stack) unless offloaded. *)

let header_bytes = 8

type hdr = { src_port : int; dst_port : int; length : int }

let encode p ~src_port ~dst_port =
  let payload = Pbuf.len p in
  Pbuf.push_header p header_bytes;
  Pbuf.set_u16 p 0 src_port;
  Pbuf.set_u16 p 2 dst_port;
  Pbuf.set_u16 p 4 (header_bytes + payload);
  Pbuf.set_u16 p 6 0 (* checksum optional over loopback *)

let decode p =
  if Pbuf.len p < header_bytes then None
  else begin
    let src_port = Pbuf.get_u16 p 0 in
    let dst_port = Pbuf.get_u16 p 2 in
    let length = Pbuf.get_u16 p 4 in
    Pbuf.pull p header_bytes;
    Some { src_port; dst_port; length }
  end
