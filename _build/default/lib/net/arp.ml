(* ARP (RFC 826, IPv4-over-Ethernet subset): real 28-byte packets.
   Point-to-point URPC links don't need it, but NIC-attached stacks resolve
   next-hop MACs with it like any Ethernet host. *)

let ethertype = 0x0806
let packet_bytes = 28
let op_request = 1
let op_reply = 2

type pkt = { op : int; sender_mac : int; sender_ip : int; target_mac : int; target_ip : int }

let encode p ~(a : pkt) =
  Pbuf.push_header p packet_bytes;
  Pbuf.set_u16 p 0 1;  (* hardware type: Ethernet *)
  Pbuf.set_u16 p 2 0x0800;  (* protocol type: IPv4 *)
  Pbuf.set_u8 p 4 6;  (* hw addr len *)
  Pbuf.set_u8 p 5 4;  (* proto addr len *)
  Pbuf.set_u16 p 6 a.op;
  Pbuf.set_u16 p 8 ((a.sender_mac lsr 32) land 0xffff);
  Pbuf.set_u32 p 10 (a.sender_mac land 0xffffffff);
  Pbuf.set_u32 p 14 a.sender_ip;
  Pbuf.set_u16 p 18 ((a.target_mac lsr 32) land 0xffff);
  Pbuf.set_u32 p 20 (a.target_mac land 0xffffffff);
  Pbuf.set_u32 p 24 a.target_ip

let decode p =
  if Pbuf.len p < packet_bytes then None
  else if Pbuf.get_u16 p 0 <> 1 || Pbuf.get_u16 p 2 <> 0x0800 then None
  else begin
    let a =
      {
        op = Pbuf.get_u16 p 6;
        sender_mac = (Pbuf.get_u16 p 8 lsl 32) lor Pbuf.get_u32 p 10;
        sender_ip = Pbuf.get_u32 p 14;
        target_mac = (Pbuf.get_u16 p 18 lsl 32) lor Pbuf.get_u32 p 20;
        target_ip = Pbuf.get_u32 p 24;
      }
    in
    Pbuf.pull p packet_bytes;
    Some a
  end

let broadcast_mac = 0xffffffffffff
