lib/net/udp.ml: Pbuf
