lib/net/pbuf.ml: Bytes Char Coherence Machine Mk_hw String
