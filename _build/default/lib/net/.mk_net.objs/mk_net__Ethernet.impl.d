lib/net/ethernet.ml: Pbuf
