lib/net/ipv4.ml: Checksum Pbuf
