lib/net/checksum.ml: Pbuf
