lib/net/nic.mli: Mk_hw Netif Pbuf
