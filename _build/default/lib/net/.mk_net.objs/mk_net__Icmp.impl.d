lib/net/icmp.ml: Checksum Pbuf
