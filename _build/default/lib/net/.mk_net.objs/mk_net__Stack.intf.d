lib/net/stack.mli: Mk_hw Netif Pbuf Tcp_lite
