lib/net/arp.ml: Pbuf
