lib/net/netif.ml: Mk_sim Pbuf
