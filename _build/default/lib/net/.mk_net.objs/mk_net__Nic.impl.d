lib/net/nic.ml: Engine Ethernet Machine Mk_hw Mk_sim Netif Option Pbuf Platform Resource Sync
