lib/net/kernel_loopback.ml: Checksum Coherence Machine Mk_baseline Mk_hw Mk_sim Pbuf Platform Spinlock Stack Sync
