lib/net/kernel_loopback.mli: Mk_hw Pbuf
