lib/net/pbuf.mli: Mk_hw
