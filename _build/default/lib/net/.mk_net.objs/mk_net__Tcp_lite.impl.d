lib/net/tcp_lite.ml: Hashtbl List Mk_hw Mk_sim Pbuf String Sync
