lib/net/stack.ml: Arp Checksum Coherence Engine Ethernet Hashtbl Icmp Ipv4 List Machine Mk Mk_hw Mk_sim Netif Option Pbuf Printf Sync Tcp_lite Udp Urpc
