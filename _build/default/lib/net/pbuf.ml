open Mk_hw

type t = {
  data : Bytes.t;
  mutable off : int;
  mutable length : int;
  base_addr : int;  (* simulated address of data[0] *)
}

let alloc m ?node ?(headroom = 64) ~size () =
  let total = headroom + size in
  let base_addr = Machine.alloc_bytes m ?node total in
  { data = Bytes.make total '\000'; off = headroom; length = size; base_addr }

let of_string m ?node s =
  let p = alloc m ?node ~size:(String.length s) () in
  Bytes.blit_string s 0 p.data p.off (String.length s);
  p

let len t = t.length
let addr t = t.base_addr + t.off

let push_header t n =
  if n > t.off then invalid_arg "Pbuf.push_header: not enough headroom";
  t.off <- t.off - n;
  t.length <- t.length + n

let pull t n =
  if n > t.length then invalid_arg "Pbuf.pull: beyond end of data";
  t.off <- t.off + n;
  t.length <- t.length - n

let check t i = if i < 0 || i >= t.length then invalid_arg "Pbuf: offset out of range"

let get_u8 t i =
  check t i;
  Char.code (Bytes.get t.data (t.off + i))

let set_u8 t i v =
  check t i;
  Bytes.set t.data (t.off + i) (Char.chr (v land 0xff))

let get_u16 t i = (get_u8 t i lsl 8) lor get_u8 t (i + 1)

let set_u16 t i v =
  set_u8 t i (v lsr 8);
  set_u8 t (i + 1) v

let get_u32 t i = (get_u16 t i lsl 16) lor get_u16 t (i + 2)

let set_u32 t i v =
  set_u16 t i (v lsr 16);
  set_u16 t (i + 2) v

let blit_string s t i =
  check t i;
  if i + String.length s > t.length then invalid_arg "Pbuf.blit_string: too long";
  Bytes.blit_string s 0 t.data (t.off + i) (String.length s)

let sub_string t i n =
  check t i;
  Bytes.sub_string t.data (t.off + i) n

let contents t = Bytes.sub_string t.data t.off t.length

let touch t m ~core ~write =
  Coherence.touch_range m.Machine.coh ~core ~addr:(addr t) ~bytes:t.length ~write

let copy ?node t m ~core =
  let dst = alloc m ?node ~size:t.length () in
  Bytes.blit t.data t.off dst.data dst.off t.length;
  touch t m ~core ~write:false;
  touch dst m ~core ~write:true;
  dst
