(** Packet buffers (lwIP-style pbufs).

    A pbuf owns real bytes (headers are actually serialized and parsed) and
    a region of simulated physical memory, so that building, copying and
    reading packets produces the cache/coherence behaviour Table 4
    measures. Headroom lets protocol layers push headers without copying. *)

type t

val alloc : Mk_hw.Machine.t -> ?node:int -> ?headroom:int -> size:int -> unit -> t
(** A buffer with [size] payload bytes available after [headroom] (default
    64, enough for eth+ip+udp/tcp headers). *)

val of_string : Mk_hw.Machine.t -> ?node:int -> string -> t
(** Payload buffer initialized from a string. *)

val len : t -> int
val addr : t -> int
(** Simulated physical address of the first valid byte. *)

val push_header : t -> int -> unit
(** Extend the valid region [n] bytes downward into the headroom. *)

val pull : t -> int -> unit
(** Drop [n] bytes from the front (consume a parsed header). *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
(** Big-endian, offset relative to the current front. *)

val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit

val blit_string : string -> t -> int -> unit
val sub_string : t -> int -> int -> string
val contents : t -> string
(** The whole valid region. *)

val touch : t -> Mk_hw.Machine.t -> core:int -> write:bool -> unit
(** Charge a full pass over the valid region's cache lines (packet copy,
    checksum walk, DMA). *)

val copy : ?node:int -> t -> Mk_hw.Machine.t -> core:int -> t
(** Allocate a new simulated region and copy (charging reads of the source
    and writes of the destination) — an skb copy / copy_to_user. *)
