(** Per-application IP stack instances — the lwIP of §4.10/§5.4.

    On Barrelfish the network stack is a library linked into each
    application's domain; stacks on different cores talk over URPC links
    ({!connect_urpc}) or through a NIC driver domain. Packet processing is
    charged to the stack's core and really parses/builds headers in
    simulated memory, so stack instances show up in the cache and
    interconnect counters. *)

type t

val create :
  Mk_hw.Machine.t ->
  core:int ->
  ?ip:int ->
  ?checksum_offload:bool ->
  ?kernel_overhead:int ->
  ?timer:Mk_hw.Timer.t ->
  ?arp:bool ->
  Netif.t ->
  t
(** Bind a stack instance to an interface. [ip] defaults to a 10.0.0.x
    address derived from the core. Incoming packets are processed in the
    context of the delivering task and charged to [core].
    [kernel_overhead] adds per-packet cycles on both paths — the
    syscall/softirq/sk-lock tax of modelling an in-kernel stack.
    [timer] enables TCP retransmission (the paper's web server runs a
    separate timer driver for exactly this). [arp] turns on real ARP
    next-hop resolution (NIC-attached stacks); without it MACs derive from
    addresses, which is all point-to-point links need. *)

val machine : t -> Mk_hw.Machine.t
val core : t -> int
val ip : t -> int
val netif : t -> Netif.t

val connect_urpc :
  Mk_hw.Machine.t -> core_a:int -> core_b:int -> ?slots:int -> unit -> Netif.t * Netif.t
(** A point-to-point link carried over a pair of URPC channels: how two
    user-space stacks are plumbed together for IP loopback on the
    multikernel (Table 4). Frames travel as cache-line messages. *)

(** {1 UDP sockets} *)

type udp_sock

val udp_bind : t -> port:int -> udp_sock
val udp_sendto : udp_sock -> dst_ip:int -> dst_port:int -> Pbuf.t -> unit
val udp_recvfrom : udp_sock -> Pbuf.t * (int * int)
(** Blocking receive: payload pbuf plus (source ip, source port). *)

val udp_pending : udp_sock -> int

(** {1 ARP / ICMP} *)

val arp_add : t -> ip:int -> mac:int -> unit
(** Static ARP entry. *)

val arp_lookup : t -> ip:int -> int option

val ping : t -> dst_ip:int -> timeout:int -> int option
(** ICMP echo round-trip time in cycles, or [None] on timeout. Task
    context required. *)

(** {1 TCP} *)

val tcp : t -> Tcp_lite.t
val tcp_listen : t -> port:int -> Tcp_lite.listener
val tcp_connect : t -> dst_ip:int -> dst_port:int -> Tcp_lite.conn

(** {1 Cost knobs} *)

val udp_layer_cost : int
(** Cycles of UDP-layer processing per packet (excl. checksum & copies). *)

val ip_layer_cost : int
val driver_layer_cost : int
