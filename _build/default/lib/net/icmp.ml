(* ICMP echo (ping): real 8-byte headers with a real checksum over header
   and payload. Enough protocol for reachability probing and the RTT
   measurement the stack exposes. *)

let protocol = 1
let header_bytes = 8
let type_echo_reply = 0
let type_echo_request = 8

type msg = { icmp_type : int; ident : int; seq : int }

let encode p ~icmp_type ~ident ~seq =
  Pbuf.push_header p header_bytes;
  Pbuf.set_u8 p 0 icmp_type;
  Pbuf.set_u8 p 1 0;  (* code *)
  Pbuf.set_u16 p 2 0;  (* checksum placeholder *)
  Pbuf.set_u16 p 4 ident;
  Pbuf.set_u16 p 6 seq;
  let csum = Checksum.of_pbuf p in
  Pbuf.set_u16 p 2 csum

let decode p =
  if Pbuf.len p < header_bytes then None
  else if not (Checksum.valid p) then None
  else begin
    let m = { icmp_type = Pbuf.get_u8 p 0; ident = Pbuf.get_u16 p 4; seq = Pbuf.get_u16 p 6 } in
    Pbuf.pull p header_bytes;
    Some m
  end
