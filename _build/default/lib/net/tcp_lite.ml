(* A small but genuine TCP: real 20-byte headers, sequence/acknowledgement
   numbers, a 3-way handshake, MSS segmentation, cumulative acks, FIN
   teardown, and timer-driven retransmission with exponential backoff (the
   reason the paper's web-server setup runs a timer driver). Connections
   survive packet loss when the owning stack has a {!Mk_hw.Timer}; without
   one the substrate must be loss-free (URPC links are). *)

open Mk_sim

let header_bytes = 20
let mss = 1460
let window = 65535
let initial_seq = 1000
let initial_rto = 400_000  (* cycles; ~0.2 ms at 2 GHz *)
let max_rto = 8_000_000
let max_retries = 8

let flag_fin = 0x01
let flag_syn = 0x02
let flag_psh = 0x08
let flag_ack = 0x10

type seg_hdr = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  flags : int;
  wnd : int;
}

let encode p ~(h : seg_hdr) =
  Pbuf.push_header p header_bytes;
  Pbuf.set_u16 p 0 h.src_port;
  Pbuf.set_u16 p 2 h.dst_port;
  Pbuf.set_u32 p 4 h.seq;
  Pbuf.set_u32 p 8 h.ack;
  Pbuf.set_u8 p 12 0x50;  (* data offset: 5 words *)
  Pbuf.set_u8 p 13 h.flags;
  Pbuf.set_u16 p 14 h.wnd;
  Pbuf.set_u16 p 16 0;  (* checksum: offloaded on these paths *)
  Pbuf.set_u16 p 18 0

let decode p =
  if Pbuf.len p < header_bytes then None
  else begin
    let h =
      {
        src_port = Pbuf.get_u16 p 0;
        dst_port = Pbuf.get_u16 p 2;
        seq = Pbuf.get_u32 p 4;
        ack = Pbuf.get_u32 p 8;
        flags = Pbuf.get_u8 p 13;
        wnd = Pbuf.get_u16 p 14;
      }
    in
    Pbuf.pull p header_bytes;
    Some h
  end

type state =
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait
  | Close_wait
  | Closed

type conn = {
  engine : t;
  local_port : int;
  mutable st : state;
  mutable remote_ip : int;
  mutable remote_port : int;
  mutable snd_nxt : int;
  mutable snd_una : int;
  mutable rcv_nxt : int;
  rx_data : string Sync.Mailbox.t;  (* "" signals EOF *)
  established : unit Sync.Ivar.t;
  mutable parent : listener option;
  (* Retransmission state: unacked segments in send order. *)
  mutable unacked : (int * int * string) list;  (* seq, flags, payload *)
  mutable rto_handle : Mk_hw.Timer.handle option;
  mutable rto : int;
  mutable retries : int;
}

and listener = { lport : int; accept_q : conn Sync.Mailbox.t }

and t = {
  listeners : (int, listener) Hashtbl.t;
  conns : (int * int * int, conn) Hashtbl.t;
  mutable next_ephemeral : int;
  ip : int;
  output : dst_ip:int -> Pbuf.t -> unit;
  alloc_pbuf : int -> Pbuf.t;
  timer : Mk_hw.Timer.t option;
  mutable segments_sent : int;
  mutable segments_received : int;
  mutable retransmitted : int;
}

let create ?timer ~ip ~output ~alloc_pbuf () =
  {
    listeners = Hashtbl.create 8;
    conns = Hashtbl.create 16;
    next_ephemeral = 32768;
    ip;
    output;
    alloc_pbuf;
    timer;
    segments_sent = 0;
    segments_received = 0;
    retransmitted = 0;
  }

let conn_key c = (c.local_port, c.remote_ip, c.remote_port)

(* Raw transmit of one segment with an explicit sequence number (used both
   for fresh sends and retransmissions). *)
let transmit c ~seq ~flags ~payload =
  let t = c.engine in
  let p = t.alloc_pbuf (String.length payload) in
  if payload <> "" then Pbuf.blit_string payload p 0;
  encode p
    ~h:
      {
        src_port = c.local_port;
        dst_port = c.remote_port;
        seq;
        ack = c.rcv_nxt;
        flags;
        wnd = window;
      };
  t.segments_sent <- t.segments_sent + 1;
  t.output ~dst_ip:c.remote_ip p

let seq_consumed ~flags ~payload =
  String.length payload + (if flags land (flag_syn lor flag_fin) <> 0 then 1 else 0)

let cancel_rto c =
  (match c.rto_handle with Some h -> Mk_hw.Timer.cancel h | None -> ());
  c.rto_handle <- None

let rec arm_rto c =
  match c.engine.timer with
  | None -> ()
  | Some tm ->
    cancel_rto c;
    c.rto_handle <- Some (Mk_hw.Timer.arm tm ~delay:c.rto (fun () -> on_rto c))

and on_rto c =
  c.rto_handle <- None;
  match c.unacked with
  | [] -> ()
  | (seq, flags, payload) :: _ ->
    if c.retries >= max_retries then begin
      (* Give up: the peer is unreachable. Fail any blocked reader. *)
      c.st <- Closed;
      c.unacked <- [];
      Sync.Mailbox.send c.rx_data ""
    end
    else begin
      c.engine.retransmitted <- c.engine.retransmitted + 1;
      c.retries <- c.retries + 1;
      c.rto <- min max_rto (c.rto * 2);
      transmit c ~seq ~flags ~payload;
      arm_rto c
    end

(* Send a fresh segment at snd_nxt, tracking it for retransmission if it
   consumes sequence space. *)
let send_segment c ~flags ~payload =
  let seq = c.snd_nxt in
  let consumed = seq_consumed ~flags ~payload in
  c.snd_nxt <- c.snd_nxt + consumed;
  if consumed > 0 && c.engine.timer <> None then begin
    c.unacked <- c.unacked @ [ (seq, flags, payload) ];
    if c.rto_handle = None then arm_rto c
  end;
  transmit c ~seq ~flags ~payload

(* Cumulative acknowledgement: retire covered segments. *)
let process_ack c ack =
  if ack > c.snd_una then begin
    c.snd_una <- ack;
    c.retries <- 0;
    c.rto <- initial_rto;
    c.unacked <-
      List.filter
        (fun (seq, flags, payload) -> seq + seq_consumed ~flags ~payload > ack)
        c.unacked;
    if c.unacked = [] then cancel_rto c else arm_rto c
  end

let new_conn t ~local_port ~remote_ip ~remote_port ~st =
  {
    engine = t;
    local_port;
    st;
    remote_ip;
    remote_port;
    snd_nxt = initial_seq;
    snd_una = initial_seq;
    rcv_nxt = 0;
    rx_data = Sync.Mailbox.create ();
    established = Sync.Ivar.create ();
    parent = None;
    unacked = [];
    rto_handle = None;
    rto = initial_rto;
    retries = 0;
  }

let listen t ~port =
  if Hashtbl.mem t.listeners port then invalid_arg "Tcp_lite.listen: port in use";
  let l = { lport = port; accept_q = Sync.Mailbox.create () } in
  Hashtbl.replace t.listeners port l;
  l

let accept l = Sync.Mailbox.recv l.accept_q

let connect t ~dst_ip ~dst_port =
  let port = t.next_ephemeral in
  t.next_ephemeral <- t.next_ephemeral + 1;
  let c = new_conn t ~local_port:port ~remote_ip:dst_ip ~remote_port:dst_port ~st:Syn_sent in
  Hashtbl.replace t.conns (conn_key c) c;
  send_segment c ~flags:flag_syn ~payload:"";
  Sync.Ivar.read c.established;
  c

let rec send c data =
  match c.st with
  | Established | Close_wait ->
    if String.length data <= mss then
      send_segment c ~flags:(flag_ack lor flag_psh) ~payload:data
    else begin
      send_segment c ~flags:flag_ack ~payload:(String.sub data 0 mss);
      send c (String.sub data mss (String.length data - mss))
    end
  | _ -> invalid_arg "Tcp_lite.send: connection not established"

let recv c = Sync.Mailbox.recv c.rx_data

let close c =
  match c.st with
  | Established ->
    c.st <- Fin_wait;
    send_segment c ~flags:(flag_fin lor flag_ack) ~payload:""
  | Close_wait ->
    c.st <- Closed;
    send_segment c ~flags:(flag_fin lor flag_ack) ~payload:""
  | _ -> ()

let state c = c.st

let handle_conn c (h : seg_hdr) payload =
  if h.flags land flag_ack <> 0 then process_ack c h.ack;
  match c.st with
  | Syn_sent when h.flags land flag_syn <> 0 && h.flags land flag_ack <> 0 ->
    c.rcv_nxt <- h.seq + 1;
    c.st <- Established;
    send_segment c ~flags:flag_ack ~payload:"";
    Sync.Ivar.fill c.established ()
  | Syn_received when h.flags land flag_ack <> 0 && h.flags land flag_syn = 0 ->
    c.st <- Established;
    (match c.parent with
     | Some l -> Sync.Mailbox.send l.accept_q c
     | None -> ());
    if not (Sync.Ivar.is_filled c.established) then Sync.Ivar.fill c.established ()
  | Established | Close_wait | Fin_wait ->
    if h.flags land flag_syn <> 0 then
      (* Duplicate SYN|ACK: our handshake ACK was lost; re-ack. *)
      send_segment c ~flags:flag_ack ~payload:""
    else begin
      let in_order = h.seq = c.rcv_nxt in
      let had_payload = payload <> "" in
      if had_payload then
        if in_order then begin
          c.rcv_nxt <- c.rcv_nxt + String.length payload;
          Sync.Mailbox.send c.rx_data payload
        end
        else
          (* Duplicate or gap: drop, re-advertise what we expect. *)
          send_segment c ~flags:flag_ack ~payload:"";
      let fin_seq = h.seq + String.length payload in
      if h.flags land flag_fin <> 0 then begin
        if fin_seq = c.rcv_nxt then begin
          c.rcv_nxt <- c.rcv_nxt + 1;
          send_segment c ~flags:flag_ack ~payload:"";
          match c.st with
          | Established ->
            c.st <- Close_wait;
            Sync.Mailbox.send c.rx_data ""  (* EOF *)
          | Fin_wait ->
            c.st <- Closed;
            Sync.Mailbox.send c.rx_data ""
          | _ -> ()
        end
        else send_segment c ~flags:flag_ack ~payload:""
      end
      else if had_payload && in_order then send_segment c ~flags:flag_ack ~payload:""
    end
  | Closed ->
    (* A retransmitted FIN after we are done: re-acknowledge it. *)
    if h.flags land flag_fin <> 0 then transmit c ~seq:c.snd_nxt ~flags:flag_ack ~payload:""
  | Listen | Syn_sent | Syn_received -> ()

let input t ~src_ip p =
  t.segments_received <- t.segments_received + 1;
  match decode p with
  | None -> ()
  | Some h ->
    let payload = if Pbuf.len p > 0 then Pbuf.contents p else "" in
    let key = (h.dst_port, src_ip, h.src_port) in
    (match Hashtbl.find_opt t.conns key with
     | Some c -> handle_conn c h payload
     | None ->
       if h.flags land flag_syn <> 0 && h.flags land flag_ack = 0 then
         match Hashtbl.find_opt t.listeners h.dst_port with
         | Some l ->
           let c =
             new_conn t ~local_port:h.dst_port ~remote_ip:src_ip ~remote_port:h.src_port
               ~st:Syn_received
           in
           c.parent <- Some l;
           c.rcv_nxt <- h.seq + 1;
           Hashtbl.replace t.conns (conn_key c) c;
           send_segment c ~flags:(flag_syn lor flag_ack) ~payload:""
         | None -> ()
       else ())

let stats t = (t.segments_sent, t.segments_received)
let retransmissions t = t.retransmitted
