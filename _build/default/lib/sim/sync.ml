(* Blocking primitives built on Engine.suspend. Wakers are one-shot, so a
   woken task never races with a second wake-up. All queues are FIFO, which
   keeps the whole simulation deterministic. *)

let wake (w : Engine.waker) = w ()

module Ivar = struct
  type 'a state = Empty of Engine.waker Queue.t | Full of 'a
  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty (Queue.create ()) }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
      t.state <- Full v;
      Queue.iter wake waiters

  let is_filled t = match t.state with Full _ -> true | Empty _ -> false
  let peek t = match t.state with Full v -> Some v | Empty _ -> None

  let read t =
    match t.state with
    | Full v -> v
    | Empty waiters ->
      Engine.suspend (fun w -> Queue.add w waiters);
      (match t.state with
       | Full v -> v
       | Empty _ -> assert false)
end

module Mailbox = struct
  type 'a t = { items : 'a Queue.t; waiters : Engine.waker Queue.t }

  let create () = { items = Queue.create (); waiters = Queue.create () }

  let send t v =
    Queue.add v t.items;
    match Queue.take_opt t.waiters with None -> () | Some w -> wake w

  let rec recv t =
    match Queue.take_opt t.items with
    | Some v -> v
    | None ->
      Engine.suspend (fun w -> Queue.add w t.waiters);
      recv t

  let try_recv t = Queue.take_opt t.items
  let length t = Queue.length t.items
end

module Semaphore = struct
  type t = { mutable count : int; waiters : Engine.waker Queue.t }

  let create n =
    if n < 0 then invalid_arg "Semaphore.create";
    { count = n; waiters = Queue.create () }

  let rec acquire t =
    if t.count > 0 then t.count <- t.count - 1
    else begin
      Engine.suspend (fun w -> Queue.add w t.waiters);
      acquire t
    end

  let release t =
    t.count <- t.count + 1;
    match Queue.take_opt t.waiters with None -> () | Some w -> wake w

  let available t = t.count
end

module Mutex = struct
  type t = Semaphore.t

  let create () = Semaphore.create 1
  let lock = Semaphore.acquire
  let unlock t =
    if Semaphore.available t > 0 then invalid_arg "Mutex.unlock: not locked";
    Semaphore.release t

  let with_lock t f =
    lock t;
    match f () with
    | v -> unlock t; v
    | exception e -> unlock t; raise e
end

module Condition = struct
  type t = { waiters : Engine.waker Queue.t }

  let create () = { waiters = Queue.create () }

  let wait t mutex =
    (* Atomic in simulation terms: no other task runs between unlock and
       suspend because tasks only switch at scheduling points. *)
    Mutex.unlock mutex;
    Engine.suspend (fun w -> Queue.add w t.waiters);
    Mutex.lock mutex

  let signal t =
    match Queue.take_opt t.waiters with None -> () | Some w -> wake w

  let broadcast t =
    let ws = Queue.create () in
    Queue.transfer t.waiters ws;
    Queue.iter wake ws
end

module Barrier = struct
  type t = { parties : int; mutable arrived : int; mutable waiters : Engine.waker list }

  let create parties =
    if parties <= 0 then invalid_arg "Barrier.create";
    { parties; arrived = 0; waiters = [] }

  let await t =
    t.arrived <- t.arrived + 1;
    if t.arrived = t.parties then begin
      let ws = List.rev t.waiters in
      t.arrived <- 0;
      t.waiters <- [];
      List.iter wake ws
    end
    else Engine.suspend (fun w -> t.waiters <- w :: t.waiters)
end
