type src = Logs.src

let all : src list ref = ref []

let make name =
  let s = Logs.Src.create ("mk." ^ name) ~doc:("multikernel " ^ name ^ " tracing") in
  Logs.Src.set_level s None;
  all := s :: !all;
  s

let enable () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level ~all:true (Some Logs.Debug);
  List.iter (fun s -> Logs.Src.set_level s (Some Logs.Debug)) !all

let logf level src fmt =
  Format.kasprintf
    (fun s ->
      let module L = (val Logs.src_log src : Logs.LOG) in
      L.msg level (fun m -> m "%s" s))
    fmt

let debugf src fmt = logf Logs.Debug src fmt
let infof src fmt = logf Logs.Info src fmt
