(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic element of the simulation draws from an explicitly
    seeded stream so that runs are reproducible bit-for-bit. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derive an independent stream (for giving each task its own source). *)

val int64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample (for arrival processes). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
