(* Binary min-heap of simulation events, ordered by (time, seq).
   The sequence number makes the ordering total and the whole engine
   deterministic: events scheduled earlier (in program order) at the same
   simulated time run first. *)

type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable size : int;
}

let create () = { arr = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Only called with a non-empty backing array (push seeds the first one). *)
let grow h =
  let cap = Array.length h.arr in
  assert (cap > 0);
  let narr = Array.make (cap * 2) h.arr.(0) in
  Array.blit h.arr 0 narr 0 h.size;
  h.arr <- narr

let push h ~time ~seq payload =
  if h.size = Array.length h.arr then begin
    if h.size = 0 then h.arr <- Array.make 64 { time; seq; payload }
    else grow h
  end;
  let e = { time; seq; payload } in
  let i = ref h.size in
  h.size <- h.size + 1;
  h.arr.(!i) <- e;
  (* Sift up. *)
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if precedes e h.arr.(parent) then begin
      h.arr.(!i) <- h.arr.(parent);
      h.arr.(parent) <- e;
      i := parent
    end else continue_ := false
  done

let peek h = if h.size = 0 then None else Some h.arr.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.arr.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      let e = h.arr.(h.size) in
      h.arr.(0) <- e;
      (* Sift down. *)
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && precedes h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.size && precedes h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.arr.(!i) in
          h.arr.(!i) <- h.arr.(!smallest);
          h.arr.(!smallest) <- tmp;
          i := !smallest
        end else continue_ := false
      done
    end;
    Some top
  end
