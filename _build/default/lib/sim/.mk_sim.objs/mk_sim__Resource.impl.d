lib/sim/resource.ml: Engine
