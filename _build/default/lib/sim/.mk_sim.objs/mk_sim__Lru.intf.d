lib/sim/lru.mli:
