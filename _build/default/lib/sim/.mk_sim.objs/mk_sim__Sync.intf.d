lib/sim/sync.mli:
