lib/sim/engine.mli:
