lib/sim/stats.ml: Array Printf Stdlib
