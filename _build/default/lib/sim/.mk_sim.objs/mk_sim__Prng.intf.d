lib/sim/prng.mli:
