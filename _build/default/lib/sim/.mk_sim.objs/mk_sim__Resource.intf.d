lib/sim/resource.mli:
