lib/sim/engine.ml: Effect Heap Option Printf
