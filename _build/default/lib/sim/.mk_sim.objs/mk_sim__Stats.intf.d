lib/sim/stats.mli:
