(* Classic doubly-linked list + hashtable LRU. *)

type node = {
  key : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cap : int;
  tbl : (int, node) Hashtbl.t;
  mutable head : node option;  (* most recent *)
  mutable tail : node option;  (* least recent *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { cap = capacity; tbl = Hashtbl.create (2 * capacity); head = None; tail = None }

let unlink t n =
  (match n.prev with
   | Some p -> p.next <- n.next
   | None -> t.head <- n.next);
  (match n.next with
   | Some s -> s.prev <- n.prev
   | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t key =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
    unlink t n;
    push_front t n;
    None
  | None ->
    let n = { key; prev = None; next = None } in
    Hashtbl.replace t.tbl key n;
    push_front t n;
    if Hashtbl.length t.tbl > t.cap then begin
      match t.tail with
      | Some victim ->
        unlink t victim;
        Hashtbl.remove t.tbl victim.key;
        Some victim.key
      | None -> None
    end
    else None

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl key
  | None -> ()

let mem t key = Hashtbl.mem t.tbl key
let size t = Hashtbl.length t.tbl
let capacity t = t.cap
