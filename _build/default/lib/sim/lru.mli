(** O(1) least-recently-used tracking (for finite-capacity cache models).

    A set of integer keys with recency order; inserting past capacity
    reports the evicted key. *)

type t

val create : capacity:int -> t
(** [capacity > 0]. *)

val touch : t -> int -> int option
(** Insert or refresh a key as most-recently-used. Returns [Some victim]
    when the insertion pushed the least-recently-used key out. *)

val remove : t -> int -> unit
(** Forget a key (external invalidation); no-op if absent. *)

val mem : t -> int -> bool
val size : t -> int
val capacity : t -> int
