(* Discrete-event simulation engine.

   Tasks are one-shot-continuation coroutines over OCaml effects
   (Effect.Deep). The engine owns a min-heap of (time, seq) -> thunk; a
   thunk either starts a task or resumes a captured continuation. All
   blocking abstractions (Sync, Resource, ...) are built from E_suspend. *)

type waker = ?delay:int -> unit -> unit

type _ Effect.t +=
  | E_wait : int -> unit Effect.t
  | E_now : int Effect.t
  | E_suspend : (waker -> unit) -> unit Effect.t
  | E_spawn : (string option * (unit -> unit)) -> unit Effect.t
  | E_name : string Effect.t

exception Stalled of string
exception Halted

type t = {
  mutable now : int;
  mutable seq : int;
  heap : (unit -> unit) Heap.t;
  mutable live : int;
  mutable executed : int;
}

let create () = { now = 0; seq = 0; heap = Heap.create (); live = 0; executed = 0 }

let now t = t.now
let events_executed t = t.executed
let live_tasks t = t.live

let schedule t ~at thunk =
  let at = if at < t.now then t.now else at in
  t.seq <- t.seq + 1;
  Heap.push t.heap ~time:at ~seq:t.seq thunk

(* Run [f] as a task body under the scheduling-effect handler. *)
let rec exec t (name : string) f =
  t.live <- t.live + 1;
  let open Effect.Deep in
  match_with f ()
    { retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun e ->
          t.live <- t.live - 1;
          match e with
          | Halted -> ()
          | e ->
            (* A crashing task aborts the whole simulation: surface it. *)
            raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_wait n ->
            Some
              (fun (k : (a, _) continuation) ->
                schedule t ~at:(t.now + max 0 n) (fun () -> continue k ()))
          | E_now -> Some (fun (k : (a, _) continuation) -> continue k t.now)
          | E_name -> Some (fun (k : (a, _) continuation) -> continue k name)
          | E_suspend register ->
            Some
              (fun (k : (a, _) continuation) ->
                let fired = ref false in
                let wake ?(delay = 0) () =
                  if not !fired then begin
                    fired := true;
                    schedule t ~at:(t.now + max 0 delay) (fun () -> continue k ())
                  end
                in
                register wake)
          | E_spawn (nm, body) ->
            Some
              (fun (k : (a, _) continuation) ->
                let nm = Option.value nm ~default:(name ^ ".child") in
                schedule t ~at:t.now (fun () -> exec t nm body);
                continue k ())
          | _ -> None) }

let spawn t ?(name = "task") f = schedule t ~at:t.now (fun () -> exec t name f)

let run t ?until ?(allow_stall = true) () =
  let limit = until in
  let rec loop () =
    match Heap.peek t.heap with
    | None ->
      if t.live > 0 && not allow_stall then
        raise (Stalled (Printf.sprintf "%d task(s) suspended forever at t=%d" t.live t.now))
    | Some e ->
      (match limit with
       | Some lim when e.Heap.time > lim -> t.now <- lim
       | _ ->
         (match Heap.pop t.heap with
          | None -> assert false
          | Some e ->
            t.now <- e.Heap.time;
            t.executed <- t.executed + 1;
            e.Heap.payload ();
            loop ()))
  in
  loop ()

(* Task-level API. *)

let now_ () = Effect.perform E_now
let wait n = Effect.perform (E_wait n)

let wait_until at =
  let n = at - now_ () in
  if n > 0 then wait n

let yield () = wait 0
let suspend register = Effect.perform (E_suspend register)
let spawn_ ?name f = Effect.perform (E_spawn (name, f))
let task_name () = Effect.perform E_name
let halt () = raise Halted
