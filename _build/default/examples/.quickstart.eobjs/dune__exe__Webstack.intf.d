examples/webstack.mli:
