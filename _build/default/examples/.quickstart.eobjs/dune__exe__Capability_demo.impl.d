examples/capability_demo.ml: Cap Capops Format Fun List Mk Mk_hw Mm Monitor Os Platform Printf Types
