examples/webstack.ml: Engine Flounder Http List Machine Mk Mk_apps Mk_hw Mk_net Mk_sim Netif Nic Option Platform Printf Sqldb Stack String
