examples/future_hardware.ml: Dom Engine Fun List Machine Mk Mk_hw Mk_sim Os Platform Printf Routing Shootdown Types Vspace
