examples/quickstart.ml: Array Cap Dom Flounder Format List Machine Mk Mk_hw Mk_sim Os Platform Printf Skb Tlb Types Vspace
