examples/capability_demo.mli:
