examples/quickstart.mli:
