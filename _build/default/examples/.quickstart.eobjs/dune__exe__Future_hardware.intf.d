examples/future_hardware.mli:
