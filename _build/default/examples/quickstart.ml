(* Quickstart: boot a multikernel on a simulated 2x2-core AMD machine,
   look at what the SKB learned, run a cross-core RPC, and do a mapped-
   memory round trip with a TLB shootdown.

   Run with: dune exec examples/quickstart.exe *)

open Mk_hw
open Mk

let () =
  let plat = Platform.amd_2x2 in
  Printf.printf "Booting a multikernel on: %s\n%!" (Platform.describe plat);
  let os = Os.boot plat in

  (* The boot-time online measurement (4.9) populated the SKB. *)
  Printf.printf "\nSKB facts: %d. Measured URPC latencies from core 0:\n"
    (Skb.size (Os.skb os));
  for dst = 1 to Os.n_cores os - 1 do
    Printf.printf "  core 0 -> core %d: %4d cycles\n" dst (Os.latency os ~src:0 ~dst)
  done;

  Os.run os (fun () ->
      (* A typed RPC service on core 3, called from core 0 over URPC. *)
      let binding = Flounder.connect (Os.machine os) ~name:"greeter" ~client:0 ~server:3 () in
      Flounder.export binding (fun name -> "hello, " ^ name ^ "!");
      Printf.printf "\nRPC to core 3 says: %S\n" (Flounder.rpc binding "core 0");

      (* A domain spanning all cores with a shared address space. *)
      let dom = Os.spawn_domain os ~name:"demo" ~cores:[ 0; 1; 2; 3 ] in
      let vaddr = 0x100000 in
      (match Os.alloc_map_frame os dom ~core:0 ~vaddr ~bytes:Types.page_size with
       | Ok frame -> Format.printf "\nMapped %a at %#x@." Cap.pp frame vaddr
       | Error e -> failwith (Types.error_to_string e));

      (* Everyone touches the page, filling their TLBs... *)
      List.iter
        (fun core -> ignore (Vspace.touch (Dom.vspace dom) ~core ~vaddr))
        (Dom.cores dom);
      Printf.printf "All 4 TLBs hold the translation.\n";

      (* ...then one core revokes write access: the monitors run the
         NUMA-aware multicast shootdown of 5.1. *)
      let t0 = Mk_sim.Engine.now_ () in
      (match Os.protect os dom ~core:0 ~vaddr ~bytes:Types.page_size ~writable:false with
       | Ok () -> ()
       | Error e -> failwith (Types.error_to_string e));
      Printf.printf "mprotect across 4 cores took %d cycles (%.0f ns)\n"
        (Mk_sim.Engine.now_ () - t0)
        (Machine.ns_of_cycles (Os.machine os) (Mk_sim.Engine.now_ () - t0));
      Array.iter
        (fun tlb ->
          assert (not (Tlb.mem tlb ~vpage:(Types.vpage_of_vaddr vaddr))))
        (Os.machine os).Machine.tlbs;
      Printf.printf "No core retains a stale TLB entry.\n");
  print_endline "\nquickstart: done"
