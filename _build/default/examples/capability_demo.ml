(* Distributed capability management (4.7): per-core memory pools, a
   retype agreed by two-phase commit, a deliberately conflicting retype
   that the protocol refuses, and a global revoke that cleans every core.

   Run with: dune exec examples/capability_demo.exe *)

open Mk_hw
open Mk

let ok = function Ok v -> v | Error e -> failwith (Types.error_to_string e)

let () =
  let os = Os.boot Platform.amd_4x4 in
  Printf.printf "Booted %s\n" (Platform.describe (Os.platform os));
  Os.run os (fun () ->
      let members = List.init (Os.n_cores os) Fun.id in

      (* Allocation is purely local: a retype of the core's own pool. *)
      let mm5 = Os.mm os ~core:5 in
      let ram = ok (Mm.alloc_ram mm5 ~bytes:65536) in
      Format.printf "core 5 allocated %a from its local pool (%d KiB free)@."
        Cap.pp ram (Mm.free_bytes mm5 / 1024);

      (* Replicate the capability to core 12 through the monitors. *)
      let mon5 = Os.monitor os ~core:5 in
      ok (Monitor.send_cap mon5 ~dst:12 ram);
      Printf.printf "capability transferred to core 12's replica database\n";

      (* Core 5 retypes the first 16 KiB into frames: all 16 replicas must
         agree (two-phase commit), because a conflicting retype elsewhere
         could alias a page table with a mappable frame. *)
      let plan5 = Os.default_plan os ~root:5 ~members in
      let frames =
        ok (Capops.retype mon5 ~plan:plan5 ram ~to_:Cap.Frame ~count:4 ~bytes_each:4096)
      in
      Printf.printf "distributed retype committed: %d frames minted on core 5\n"
        (List.length frames);

      (* Core 12 tries to retype THE SAME region assuming the old state:
         its view of the frontier is refreshed by the commit, so a stale
         expectation aborts. We fake staleness by rolling our own op. *)
      let mon12 = Os.monitor os ~core:12 in
      let plan12 = Os.default_plan os ~root:12 ~members in
      let committed =
        Monitor.agree mon12 ~plan:plan12
          ~op:(Monitor.Ag_retype { cap = ram; expected_frontier = 0; bytes = 4096 })
      in
      Printf.printf "conflicting retype with a stale view: %s\n"
        (if committed then "COMMITTED (bug!)" else "aborted, as it must");

      (* But through the proper path, core 12 can carve the NEXT extent. *)
      let more =
        ok (Capops.retype mon12 ~plan:plan12 ram ~to_:Cap.Frame ~count:1 ~bytes_each:4096)
      in
      Format.printf "core 12 carved the next extent: %a@." Cap.pp (List.hd more);

      (* Revoke: every descendant and copy dies on every core. *)
      let killed = ok (Capops.revoke mon5 ~plan:plan5 ram) in
      Printf.printf "revoke killed %d local capabilities; region is reusable\n" killed;
      let again = ok (Capops.retype mon5 ~plan:plan5 ram ~to_:Cap.Frame ~count:1
                        ~bytes_each:65536) in
      Format.printf "full-size retype after revoke: %a@." Cap.pp (List.hd again));
  print_endline "\ncapability_demo: done"
