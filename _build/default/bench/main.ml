(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5). Run all with `dune exec bench/main.exe`, or a
   subset: `dune exec bench/main.exe -- fig6 table2`. *)

let all : (string * string * (unit -> unit)) list =
  [
    ("fig3", "shared memory vs message passing", Fig3.run);
    ("table1", "LRPC latency", Table1.run);
    ("table2", "URPC latency and throughput", Table2.run);
    ("table3", "URPC vs L4 IPC", Table3.run);
    ("fig6", "TLB shootdown protocols", Fig6.run);
    ("fig7", "end-to-end unmap latency", Fig7.run);
    ("fig8", "two-phase commit", Fig8.run);
    ("table4", "IP loopback", Table4.run);
    ("fig9", "compute-bound workloads", Fig9.run);
    ("polling", "cost-of-polling model (5.2)", Polling.run);
    ("net", "IO workloads (5.4): echo, web, web+sql", Net_bench.run);
    ("ablation", "ablations: page tables, barriers, prefetch", Ablation.run);
    ("scaling", "scaling extension: mesh machines to 128 cores", Scaling.run);
    ("micro", "bechamel simulator micro-benches", Micro.run);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] | [ "all" ] -> List.iter (fun (_, _, f) -> f ()) all
  | [ "list" ] -> List.iter (fun (name, doc, _) -> Printf.printf "%-8s %s\n" name doc) all
  | names ->
    List.iter
      (fun name ->
        match List.find_opt (fun (n, _, _) -> n = name) all with
        | Some (_, _, f) -> f ()
        | None ->
          Printf.eprintf "unknown bench %S (try `list`)\n" name;
          exit 1)
      names
