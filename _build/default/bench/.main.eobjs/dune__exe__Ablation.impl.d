bench/ablation.ml: Common Dom Engine Fun List Machine Mk Mk_baseline Mk_hw Mk_sim Os Platform Printf Stats Threads Types Urpc Vspace
