bench/fig6.ml: Common Engine Fun List Machine Mk Mk_hw Mk_sim Platform Printf Routing Shootdown Stats
