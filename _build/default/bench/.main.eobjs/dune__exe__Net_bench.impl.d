bench/net_bench.ml: Common Echo Engine Flounder Http List Machine Mk Mk_apps Mk_hw Mk_net Mk_sim Netif Nic Platform Printf Prng Sqldb Stack String
