bench/micro.ml: Analyze Bechamel Benchmark Coherence Common Engine Hashtbl Instance Machine Measure Mk Mk_hw Mk_sim Monitor Os Platform Printf Skb Staged Test Time Toolkit Urpc
