bench/fig3.ml: Array Coherence Common Engine List Machine Mk Mk_hw Mk_sim Platform Printf Stats Sync Urpc
