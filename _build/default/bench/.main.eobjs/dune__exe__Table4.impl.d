bench/table4.ml: Array Common Engine Kernel_loopback Machine Mk_hw Mk_net Mk_sim Pbuf Perfcounter Platform Printf Stack
