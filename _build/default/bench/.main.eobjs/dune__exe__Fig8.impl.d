bench/fig8.ml: Common Engine Fun List Mk Mk_hw Mk_sim Monitor Os Platform Printf Stats Sync
