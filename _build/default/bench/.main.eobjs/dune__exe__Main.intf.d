bench/main.mli:
