bench/main.ml: Ablation Array Fig3 Fig6 Fig7 Fig8 Fig9 List Micro Net_bench Polling Printf Scaling Sys Table1 Table2 Table3 Table4
