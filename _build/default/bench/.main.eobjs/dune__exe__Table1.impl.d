bench/table1.ml: Common Cpu_driver Engine List Lrpc Machine Mk Mk_hw Mk_sim Platform Printf Stats
