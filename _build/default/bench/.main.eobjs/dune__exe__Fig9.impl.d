bench/fig9.ml: Common Fun List Machine Mk Mk_apps Mk_baseline Mk_hw Mk_sim Nas Platform Printf Runtime Splash
