bench/common.ml: List Mk_hw Platform Printf
