bench/fig7.ml: Array Common Dom Engine Fun Ipi_shootdown List Machine Mk Mk_baseline Mk_hw Mk_sim Os Platform Printf Stats Tlb Types Vspace
