bench/table3.ml: Common Engine L4_ipc Machine Mk Mk_baseline Mk_hw Mk_sim Perfcounter Platform Printf Stats Urpc
