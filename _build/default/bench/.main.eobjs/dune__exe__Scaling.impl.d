bench/scaling.ml: Array Common Dom Engine Fun List Machine Mk Mk_baseline Mk_hw Mk_sim Monitor Os Platform Printf Stats Tlb Types Vspace
