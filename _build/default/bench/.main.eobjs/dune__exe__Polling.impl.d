bench/polling.ml: Common Engine List Machine Mk Mk_hw Mk_sim Platform Printf Urpc
