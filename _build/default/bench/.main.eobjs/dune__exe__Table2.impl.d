bench/table2.ml: Common Engine List Machine Mk Mk_hw Mk_sim Platform Printf Stats Topology Urpc
