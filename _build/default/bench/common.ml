(* Shared helpers for the paper-reproduction benches. *)

open Mk_hw

let hr title =
  Printf.printf "\n==== %s ====\n%!" title

let sub title = Printf.printf "-- %s --\n%!" title

let ns_of plat cycles = Platform.cycles_to_ns plat (float_of_int cycles)

(* Fixed-width row printing for paper-style tables. *)
let row fmt = Printf.printf fmt

let core_counts ~max_cores =
  (* The paper's x axes step by 2 from 2 up to the machine size. *)
  let rec go n acc = if n > max_cores then List.rev acc else go (n + 2) (n :: acc) in
  go 2 []

let mean_int l =
  match l with
  | [] -> 0.0
  | _ -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

let stddev_int l =
  let m = mean_int l in
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
    let n = float_of_int (List.length l) in
    let var =
      List.fold_left (fun acc x -> acc +. ((float_of_int x -. m) ** 2.0)) 0.0 l
      /. (n -. 1.0)
    in
    sqrt var
