(** Phi-accrual failure detector (exponential approximation).

    Pure state machine over integer simulated time: feed it heartbeat
    arrival times, ask it how suspicious a peer's silence is. With mean
    observed interval [m], [phi ~now] is [(now - last) / (m * ln 10)], i.e.
    the number of decades of improbability of the current silence; a
    threshold of 4.0 fires after ~9.2 mean intervals. Deterministic and
    allocation-free after {!create}. *)

type t

val create :
  ?window:int -> threshold:float -> expected_interval:int -> now:int -> unit -> t
(** [window] is the sliding count of inter-arrival samples kept (default
    16). The detector is seeded with one synthetic [expected_interval]
    sample so it is live before the first real heartbeat. *)

val heartbeat : t -> now:int -> unit
(** Record a heartbeat arrival. Arrivals at or before the previous one are
    ignored (duplicated messages must not shrink the mean to zero). *)

val phi : t -> now:int -> float
(** Current suspicion level; 0 when a heartbeat just arrived. *)

val suspect : t -> now:int -> bool
(** [phi > threshold]. *)

val mean_interval : t -> float

val last_heard : t -> int
