(* Phi-style accrual failure detector (Hayashibara et al.), simplified to
   the exponential approximation used by Akka/Cassandra: with mean observed
   heartbeat interval m, the suspicion level for a silence of e cycles is

     phi(e) = -log10 P(interarrival > e) = e / (m * ln 10)

   so [suspect] fires once the silence exceeds [threshold * ln 10] mean
   intervals (threshold 4.0 ~= 9.2 intervals). Integer time, float phi;
   fully deterministic — no wall clock, no randomness. *)

type t = {
  window : int;
  intervals : int array;  (* ring buffer of observed inter-arrival times *)
  mutable n : int;        (* entries in the ring, <= window *)
  mutable idx : int;      (* next write position *)
  mutable sum : int;
  mutable last : int;     (* time of last heartbeat *)
  threshold : float;
}

let log10_e = 0.4342944819032518  (* 1 / ln 10 *)

let create ?(window = 16) ~threshold ~expected_interval ~now () =
  if window <= 0 then invalid_arg "Detector.create: window";
  if expected_interval <= 0 then invalid_arg "Detector.create: expected_interval";
  let t =
    {
      window;
      intervals = Array.make window 0;
      n = 0;
      idx = 0;
      sum = 0;
      last = now;
      threshold;
    }
  in
  (* Seed with one synthetic interval so phi is defined before the first
     real heartbeat arrives. *)
  t.intervals.(0) <- expected_interval;
  t.n <- 1;
  t.idx <- 1 mod window;
  t.sum <- expected_interval;
  t

let heartbeat t ~now =
  let iv = now - t.last in
  if iv > 0 then begin
    if t.n = t.window then t.sum <- t.sum - t.intervals.(t.idx)
    else t.n <- t.n + 1;
    t.intervals.(t.idx) <- iv;
    t.sum <- t.sum + iv;
    t.idx <- (t.idx + 1) mod t.window;
    t.last <- now
  end

let mean_interval t = float_of_int t.sum /. float_of_int t.n

let phi t ~now =
  let elapsed = now - t.last in
  if elapsed <= 0 then 0.0
  else log10_e *. float_of_int elapsed /. mean_interval t

let suspect t ~now = phi t ~now > t.threshold

let last_heard t = t.last
