(** Fault injector: executes a {!Plan} against a running simulation.

    One injector is attached to a {i machine}; the hardware and OS layers
    consult it at their fault points. Determinism contract: unarmed (or
    armed with an empty plan) every query is a single boolean field read
    returning the no-fault answer — no PRNG draws, no allocation, no
    scheduled events — so zero-fault runs are bit-identical to runs without
    the fault subsystem. All randomness comes from one seeded splitmix64
    stream: a (plan, seed) pair replays exactly. *)

type t

(** Verdict for one URPC message send. *)
type urpc_action = Deliver | Drop | Dup | Delay of int

type stats = {
  mutable cores_stopped : int;
  mutable urpc_dropped : int;
  mutable urpc_duplicated : int;
  mutable urpc_delayed : int;
  mutable nic_lost : int;
  mutable ipi_dropped : int;
}

val create : plan:Plan.t -> seed:int -> unit -> t

val none : t
(** Shared inert injector; the default for every machine. Arming it is a
    no-op (empty plan), so it is never mutated and safe to share. *)

val arm : ?only:(int -> bool) -> t -> Mk_sim.Engine.t -> unit
(** Start the plan's clock at [Engine.now] and schedule its core-stop
    events. Call after boot so boot-time activity is fault-free. No-op on
    an empty plan. [only] (default: all) filters which victims get stop
    {i events} on this engine — every victim's stop {i time} is still
    recorded for queries — so a sharded boot arms one injector per shard,
    each firing callbacks only for its own cores. *)

val armed : t -> bool
(** The one-field hot-path guard every fault point checks first. *)

val plan : t -> Plan.t
val stats : t -> stats

val on_core_stop : t -> (int -> unit) -> unit
(** Register a callback run (outside any task context) when a core-stop
    event fires, with the victim core id. Registration order is preserved;
    registering after {!arm} is fine — callbacks are read at fire time. *)

val core_dead : t -> core:int -> bool
(** Has this core's stop time passed? *)

val stop_time : t -> core:int -> int option
(** Absolute simulated stop time for a victim (after {!arm}). *)

val link_penalty : t -> src_pkg:int -> dst_pkg:int -> int
(** Extra cycles for a transfer crossing the (undirected) package pair
    right now; 0 when unarmed or no window matches. *)

val urpc_fault : t -> urpc_action
(** Draw the fate of one URPC message send. *)

val nic_drop : t -> bool
(** Draw whether one NIC packet is lost. *)
