(* A fault plan: the complete, declarative description of every fault a
   chaos run will inject. All times are offsets from the moment the plan is
   armed (Injector.arm), so one plan can be replayed against any workload
   start time. Plans are plain data — generating one from a seed and
   printing it is enough to reproduce a chaos run exactly. *)

type core_stop = { victim : int; stop_at : int }

type link_fault = {
  lf_src : int;  (* package *)
  lf_dst : int;  (* package *)
  lf_from : int;
  lf_until : int;
  lf_extra : int;  (* cycles added to each transfer crossing the link *)
}

type msg_fault = {
  mf_from : int;
  mf_until : int;
  drop_1_in : int;  (* 0 = never *)
  dup_1_in : int;
  delay_1_in : int;
  max_delay : int;
}

type nic_fault = { nf_from : int; nf_until : int; loss_1_in : int }

type t = {
  core_stops : core_stop list;
  links : link_fault list;
  msgs : msg_fault list;
  nics : nic_fault list;
}

let empty = { core_stops = []; links = []; msgs = []; nics = [] }

let is_empty p =
  p.core_stops = [] && p.links = [] && p.msgs = [] && p.nics = []

(* A partitioned link: transfers still complete, but only after a delay so
   large the failure detector will long since have fired. Chosen below any
   risk of overflowing simulated-time arithmetic. *)
let partition_extra = 50_000_000

let victims p = List.map (fun s -> s.victim) p.core_stops

(* Generate a deterministic random plan for a chaos run. [victims] are the
   cores eligible to be stopped (keep name-service / failure-manager homes
   out of it), [packages] the interconnect node count for link faults.
   Fault times land in the middle half of [horizon] so detection and
   recovery complete inside the run. *)
let generate ~seed ~victims:eligible ~packages ~horizon () =
  if eligible = [] then invalid_arg "Plan.generate: no eligible victims";
  let prng = Mk_sim.Prng.create ~seed:(seed * 2654435761 + 17) in
  let pick_time lo hi = lo + Mk_sim.Prng.int prng (max 1 (hi - lo)) in
  let n_stops = 1 + Mk_sim.Prng.int prng (min 2 (List.length eligible)) in
  let pool = Array.of_list eligible in
  Mk_sim.Prng.shuffle prng pool;
  let core_stops =
    List.init n_stops (fun i ->
        { victim = pool.(i); stop_at = pick_time (horizon / 6) (horizon / 2) })
  in
  let links =
    if packages < 2 then []
    else begin
      let a = Mk_sim.Prng.int prng packages in
      let b = (a + 1 + Mk_sim.Prng.int prng (packages - 1)) mod packages in
      let from_t = pick_time (horizon / 8) (horizon / 2) in
      [
        {
          lf_src = a;
          lf_dst = b;
          lf_from = from_t;
          lf_until = from_t + (horizon / 8);
          lf_extra = 200 + Mk_sim.Prng.int prng 800;
        };
      ]
    end
  in
  let msgs =
    let from_t = pick_time (horizon / 8) (horizon / 2) in
    [
      {
        mf_from = from_t;
        mf_until = from_t + (horizon / 8);
        drop_1_in = 6;
        dup_1_in = 10;
        delay_1_in = 4;
        max_delay = 2_000;
      };
    ]
  in
  let nics =
    let from_t = pick_time (horizon / 8) (horizon / 2) in
    [ { nf_from = from_t; nf_until = from_t + (horizon / 6); loss_1_in = 4 } ]
  in
  { core_stops; links; msgs; nics }

let pp ppf p =
  let open Format in
  fprintf ppf "@[<v>";
  List.iter (fun s -> fprintf ppf "stop core %d at +%d@," s.victim s.stop_at) p.core_stops;
  List.iter
    (fun l ->
      fprintf ppf "link %d->%d +%d cycles during [+%d, +%d)@," l.lf_src l.lf_dst
        l.lf_extra l.lf_from l.lf_until)
    p.links;
  List.iter
    (fun m ->
      fprintf ppf "urpc drop 1/%d dup 1/%d delay 1/%d (<=%d) during [+%d, +%d)@,"
        m.drop_1_in m.dup_1_in m.delay_1_in m.max_delay m.mf_from m.mf_until)
    p.msgs;
  List.iter
    (fun n -> fprintf ppf "nic loss 1/%d during [+%d, +%d)@," n.loss_1_in n.nf_from n.nf_until)
    p.nics;
  fprintf ppf "@]"
