(** Declarative fault plans.

    A plan is the complete description of every fault a run will inject:
    core stops, interconnect link degradation, URPC message perturbation
    and NIC packet loss. All times are offsets from the moment the plan is
    armed ({!Injector.arm}), so the same plan replays identically against
    any workload. Plans are plain data; {!generate} derives one
    deterministically from a seed. *)

type core_stop = { victim : int; stop_at : int }

type link_fault = {
  lf_src : int;  (** source package / interconnect node *)
  lf_dst : int;  (** destination package *)
  lf_from : int;
  lf_until : int;
  lf_extra : int;  (** cycles added to each transfer crossing the link *)
}

type msg_fault = {
  mf_from : int;
  mf_until : int;
  drop_1_in : int;  (** 0 = never *)
  dup_1_in : int;
  delay_1_in : int;
  max_delay : int;
}

type nic_fault = { nf_from : int; nf_until : int; loss_1_in : int }

type t = {
  core_stops : core_stop list;
  links : link_fault list;
  msgs : msg_fault list;
  nics : nic_fault list;
}

val empty : t

val is_empty : t -> bool

val partition_extra : int
(** Per-transfer delay that models a partitioned (vs merely degraded)
    link: large enough that the failure detector fires first. *)

val victims : t -> int list
(** Cores the plan stops, in plan order. *)

val generate :
  seed:int -> victims:int list -> packages:int -> horizon:int -> unit -> t
(** Deterministic random plan: 1–2 core stops drawn from [victims], one
    degraded-link window, one URPC perturbation window and one NIC loss
    window, all timed to land inside [horizon]. Same seed, same plan. *)

val pp : Format.formatter -> t -> unit
