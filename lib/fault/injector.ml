(* The injector executes a Plan against a running simulation. It is the
   single object the hardware/OS layers consult at their fault points.

   Determinism contract: with an empty plan (or before [arm]) the injector
   is inert — every query is a single [armed] field read returning the
   no-fault answer, no PRNG draws, no allocation, and no events are
   scheduled. This is what keeps zero-fault runs bit-identical to builds
   without the fault subsystem linked in (enforced by the determinism
   suite). All randomness comes from one splitmix64 stream seeded at
   [create], so a (plan, seed) pair replays exactly. *)

open Mk_sim

type urpc_action = Deliver | Drop | Dup | Delay of int

type stats = {
  mutable cores_stopped : int;
  mutable urpc_dropped : int;
  mutable urpc_duplicated : int;
  mutable urpc_delayed : int;
  mutable nic_lost : int;
  mutable ipi_dropped : int;
}

type t = {
  plan : Plan.t;
  prng : Prng.t;
  mutable eng : Engine.t option;
  mutable armed : bool;
  mutable armed_at : int;
  mutable dead_at : (int * int) list;  (* victim core, absolute stop time *)
  mutable on_stop : (int -> unit) list;
  stats : stats;
}

let create ~plan ~seed () =
  {
    plan;
    prng = Prng.create ~seed;
    eng = None;
    armed = false;
    armed_at = 0;
    dead_at = [];
    on_stop = [];
    stats =
      {
        cores_stopped = 0;
        urpc_dropped = 0;
        urpc_duplicated = 0;
        urpc_delayed = 0;
        nic_lost = 0;
        ipi_dropped = 0;
      };
  }

(* Shared inert injector: the default for every machine. [arm] on an empty
   plan is a no-op, so this value is never mutated and is safe to share
   across machines and bench domains. *)
let none = create ~plan:Plan.empty ~seed:0 ()

let armed t = t.armed
let plan t = t.plan
let stats t = t.stats

let on_core_stop t f = t.on_stop <- t.on_stop @ [ f ]

let arm ?(only = fun _ -> true) t eng =
  if not (Plan.is_empty t.plan) then begin
    if t.armed then invalid_arg "Injector.arm: already armed";
    t.eng <- Some eng;
    t.armed <- true;
    let base = Engine.now eng in
    t.armed_at <- base;
    List.iter
      (fun { Plan.victim; stop_at } ->
        let at = base + stop_at in
        (* [dead_at] records every victim — remote cores' deaths are still
           facts this injector's queries must know about — but stop events
           fire only for the cores [only] selects, so a sharded boot arms
           one injector per shard without double-firing the callbacks. *)
        t.dead_at <- (victim, at) :: t.dead_at;
        if only victim then
          Engine.schedule_at eng ~at (fun () ->
              t.stats.cores_stopped <- t.stats.cores_stopped + 1;
              List.iter (fun f -> f victim) t.on_stop))
      t.plan.core_stops
  end

(* Armed queries are interaction points: the windows below are wall-clock
   tests and the fate draws advance the one shared PRNG stream, so both
   must happen at the true simulated time and in true event order. Each
   armed branch therefore pays any banked latency charge first (a no-op
   when nothing is banked, which includes every non-task context). The
   inert path stays a single [armed] field read. *)
let rel_now t =
  match t.eng with Some e -> Engine.now e - t.armed_at | None -> 0

let core_dead t ~core =
  t.armed
  &&
  begin
    Engine.flush_charge ();
    let now = match t.eng with Some e -> Engine.now e | None -> 0 in
    List.exists (fun (c, at) -> c = core && now >= at) t.dead_at
  end

let stop_time t ~core =
  List.fold_left
    (fun acc (c, at) -> if c = core then Some at else acc)
    None t.dead_at

let link_penalty t ~src_pkg ~dst_pkg =
  if (not t.armed) || src_pkg = dst_pkg then 0
  else begin
    Engine.flush_charge ();
    let rel = rel_now t in
    List.fold_left
      (fun acc (l : Plan.link_fault) ->
        if
          rel >= l.lf_from && rel < l.lf_until
          && ((l.lf_src = src_pkg && l.lf_dst = dst_pkg)
             || (l.lf_src = dst_pkg && l.lf_dst = src_pkg))
        then acc + l.lf_extra
        else acc)
      0 t.plan.links
  end

let draw t n = n > 0 && Prng.int t.prng n = 0

let urpc_fault t =
  if not t.armed then Deliver
  else begin
    Engine.flush_charge ();
    let rel = rel_now t in
    match
      List.find_opt
        (fun (m : Plan.msg_fault) -> rel >= m.mf_from && rel < m.mf_until)
        t.plan.msgs
    with
    | None -> Deliver
    | Some m ->
      if draw t m.drop_1_in then begin
        t.stats.urpc_dropped <- t.stats.urpc_dropped + 1;
        Drop
      end
      else if draw t m.dup_1_in then begin
        t.stats.urpc_duplicated <- t.stats.urpc_duplicated + 1;
        Dup
      end
      else if draw t m.delay_1_in then begin
        t.stats.urpc_delayed <- t.stats.urpc_delayed + 1;
        Delay (1 + Prng.int t.prng (max 1 m.max_delay))
      end
      else Deliver
  end

let nic_drop t =
  t.armed
  &&
  begin
    Engine.flush_charge ();
    let rel = rel_now t in
    match
      List.find_opt
        (fun (n : Plan.nic_fault) -> rel >= n.nf_from && rel < n.nf_until)
        t.plan.nics
    with
    | None -> false
    | Some n ->
      let lost = draw t n.loss_1_in in
      if lost then t.stats.nic_lost <- t.stats.nic_lost + 1;
      lost
  end
