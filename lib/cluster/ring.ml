(* Allocation-free FIFO over a growable circular array.

   Stdlib [Queue] allocates a cell per [push]; on the LB hot path (every
   request visits the hold queue check, every reply the priority queue)
   that is pure per-request garbage. This ring keeps the same FIFO
   semantics over a flat array that doubles when full, so steady-state
   operation allocates nothing. [dummy] fills dead slots — popped slots
   are overwritten with it so the ring never retains payloads. *)

type 'a t = {
  dummy : 'a;
  mutable slots : 'a array;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
}

let create ~dummy () = { dummy; slots = Array.make 16 dummy; head = 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.slots in
  let slots = Array.make (2 * cap) t.dummy in
  for i = 0 to t.len - 1 do
    slots.(i) <- t.slots.((t.head + i) mod cap)
  done;
  t.slots <- slots;
  t.head <- 0

let push t v =
  if t.len = Array.length t.slots then grow t;
  t.slots.((t.head + t.len) mod Array.length t.slots) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Ring.pop: empty";
  let v = t.slots.(t.head) in
  t.slots.(t.head) <- t.dummy;
  t.head <- (t.head + 1) mod Array.length t.slots;
  t.len <- t.len - 1;
  v
