(* A simulated datacenter: N independently-booted multikernel machines,
   a front-end load balancer machine and a client (load generator)
   machine, linked by bandwidth/latency-modeled wires over PDES shards.

   Shard layout: shard 0 is the LB machine, shards 1..N the backends,
   shard N+1 the client. Every machine is its own [Pdes] shard with its
   own engine; machines interact only through [Machine_link]s whose
   propagation latency is at least the executor's lookahead — the
   two-level cost structure (cheap intra-machine URPC hops vs. expensive
   inter-machine wire legs) is therefore also exactly what makes the
   conservative windows sound, and a cluster run is byte-identical at
   every domain count (MK_PDES picks placement only).

   Request path: client --wire--> LB loop (policy pick, per-backend
   in-flight cap and bounded hold queue, overflow shed as 503) --wire-->
   backend front core (HTTP parse) --URPC--> session owner core (handler,
   per-core session table) --URPC--> front --wire--> LB --wire--> client.
   The client measures latency; the links and the session service count
   inter- and intra-machine traffic. *)

open Mk_sim
open Mk_hw
open Mk
open Mk_net
open Mk_apps

type config = {
  machines : int;
  policy : Lb.policy;
  platform : Platform.t;
  wire_gbps : float;  (* LB <-> backend links *)
  wire_latency : int;  (* one-way propagation, cycles *)
  client_gbps : float;  (* client <-> LB aggregate pipe *)
  client_latency : int;
  lb_cost : int;  (* LB core cycles per message handled *)
  max_outstanding : int;  (* per-backend in-flight cap at the LB *)
  queue_cap : int;  (* per-backend hold queue before shedding *)
}

let default_config ?(policy = Lb.Consistent_hash) ~machines () =
  {
    machines;
    policy;
    platform = Platform.amd_2x2;
    wire_gbps = 10.0;
    wire_latency = 6_000;  (* ~2.1 us at 2.8 GHz: switch + propagation *)
    client_gbps = 400.0;  (* edge aggregation, so the uplink isn't the story *)
    client_latency = 6_000;
    lb_cost = 150;  (* L4 forwarding decision per message (flow-table hit) *)
    max_outstanding = 64;
    queue_cap = 512;
  }

(* Backend replies bypass the client-request queue: they ride a side
   queue the LB loop drains before taking the next client message. Without
   that priority, an overload flood of client requests head-of-line blocks
   the replies that would free backend slots, and goodput collapses
   instead of saturating. [Wake] just pokes the loop when it is idle. *)
type lb_msg = From_client of Serve.request | Wake

type backend = {
  b_id : int;
  b_os : Os.t;
  b_serve : Serve.t;
  b_down : Serve.request Machine_link.t;  (* LB -> backend *)
  b_up : Serve.reply Machine_link.t;  (* backend -> LB *)
  b_queue : Serve.request Ring.t;  (* held at the LB for a free slot *)
}

(* Ring dummies: never routed, only fill dead slots. *)
let no_request = { Serve.rq_id = -1; rq_session = 0 }
let no_reply = Serve.rejected ~id:(-1) ~session:0

type t = {
  cfg : config;
  pdes : Pdes.t;
  lb_os : Os.t;
  lb : Lb.t;
  lb_box : lb_msg Sync.Mailbox.t;
  pending_replies : Serve.reply Ring.t;
  backends : backend array;
  client : Machine.t;
  c2lb : Serve.request Machine_link.t;
  lb2c : Serve.reply Machine_link.t;
  mutable client_rx : Serve.reply -> unit;
  mutable t_stop : int;  (* LB sheds instead of forwarding after this *)
  mutable forwarded : int;
  mutable lb_rejected : int;
  mutable probe_id : int;
}

let reject t (rq : Serve.request) =
  t.lb_rejected <- t.lb_rejected + 1;
  let rp = Serve.rejected ~id:rq.Serve.rq_id ~session:rq.Serve.rq_session in
  Machine_link.send t.lb2c ~bytes:rp.Serve.rp_bytes rp

let forward t b rq =
  Lb.note_sent t.lb b.b_id;
  t.forwarded <- t.forwarded + 1;
  Machine_link.send b.b_down ~bytes:Serve.request_bytes rq

let route t rq =
  if Engine.now_ () > t.t_stop then reject t rq
  else
    match Lb.pick_idx t.lb ~session:rq.Serve.rq_session with
    | -1 -> reject t rq
    | bi ->
      let b = t.backends.(bi) in
      if Lb.outstanding t.lb bi < t.cfg.max_outstanding then forward t b rq
      else if Ring.length b.b_queue < t.cfg.queue_cap then Ring.push b.b_queue rq
      else reject t rq

(* A reply freed a slot on [bi]: shed anything the stop time overtook,
   then fill the slot from the hold queue. *)
let dispatch_queued t bi =
  let b = t.backends.(bi) in
  while (not (Ring.is_empty b.b_queue)) && Engine.now_ () > t.t_stop do
    reject t (Ring.pop b.b_queue)
  done;
  if
    (not (Ring.is_empty b.b_queue))
    && Lb.alive t.lb bi
    && Lb.outstanding t.lb bi < t.cfg.max_outstanding
  then forward t b (Ring.pop b.b_queue)

let serving_cores plat =
  let n = Platform.n_cores plat in
  let front = if n > 2 then 2 else n - 1 in
  (front, List.filter (fun c -> c <> front) (Platform.core_ids plat))

let create cfg =
  let m = cfg.machines in
  if m < 1 then invalid_arg "Cluster.create: machines";
  let lookahead = min cfg.wire_latency cfg.client_latency in
  let pdes = Pdes.create ~n_shards:(m + 2) ~lookahead in
  let ghz = cfg.platform.Platform.ghz in
  (* Distinct src_id per link endpoint: the canonical cross-shard merge
     key (Pdes.send) must identify the sender uniquely. *)
  let next_src = ref 0 in
  let link ~src ~dst ~gbps ~latency =
    incr next_src;
    Machine_link.create pdes ~dst_shard:dst ~src_shard:src ~src_id:!next_src ~ghz ~gbps
      ~latency ()
  in
  let lb_os =
    Os.boot ~eng:(Pdes.engine pdes 0) ~measure_latencies:Os.No_measure cfg.platform
  in
  let client = Machine.create ~eng:(Pdes.engine pdes (m + 1)) cfg.platform in
  let front, workers = serving_cores cfg.platform in
  let backends =
    Array.init m (fun i ->
        let eng = Pdes.engine pdes (i + 1) in
        let os = Os.boot ~eng ~measure_latencies:Os.No_measure cfg.platform in
        (* Service bring-up (NS registration + lookup, Flounder connects)
           is messaging: run it as a task on this machine and drive the
           engine to quiescence — host context, every shard independent. *)
        let serve = ref None in
        Engine.spawn eng ~name:"cluster.setup" (fun () ->
            serve := Some (Serve.start os ~backend_id:i ~front ~workers));
        Machine.run (Os.machine os);
        let serve =
          match !serve with Some s -> s | None -> failwith "backend setup stalled"
        in
        let down = link ~src:0 ~dst:(i + 1) ~gbps:cfg.wire_gbps ~latency:cfg.wire_latency in
        let up = link ~src:(i + 1) ~dst:0 ~gbps:cfg.wire_gbps ~latency:cfg.wire_latency in
        Machine_link.set_rx down (fun ~bytes:_ rq -> Serve.submit serve rq);
        Serve.set_reply serve (fun rp -> Machine_link.send up ~bytes:rp.Serve.rp_bytes rp);
        {
          b_id = i;
          b_os = os;
          b_serve = serve;
          b_down = down;
          b_up = up;
          b_queue = Ring.create ~dummy:no_request ();
        })
  in
  let c2lb = link ~src:(m + 1) ~dst:0 ~gbps:cfg.client_gbps ~latency:cfg.client_latency in
  let lb2c = link ~src:0 ~dst:(m + 1) ~gbps:cfg.client_gbps ~latency:cfg.client_latency in
  let t =
    {
      cfg;
      pdes;
      lb_os;
      lb = Lb.create cfg.policy ~backends:m;
      lb_box = Sync.Mailbox.create ();
      pending_replies = Ring.create ~dummy:no_reply ();
      backends;
      client;
      c2lb;
      lb2c;
      client_rx = (fun _ -> ());
      t_stop = max_int;
      forwarded = 0;
      lb_rejected = 0;
      probe_id = -1;
    }
  in
  Machine_link.set_rx c2lb (fun ~bytes:_ rq -> Sync.Mailbox.send t.lb_box (From_client rq));
  Array.iter
    (fun b ->
      Machine_link.set_rx b.b_up (fun ~bytes:_ rp ->
          Ring.push t.pending_replies rp;
          Sync.Mailbox.send t.lb_box Wake))
    backends;
  Machine_link.set_rx lb2c (fun ~bytes:_ rp -> t.client_rx rp);
  (* The LB loop: one front-end task on the LB machine's core 0, charged
     per message — the single-front-end capacity model. *)
  let lbm = Os.machine lb_os in
  Engine.spawn lbm.Machine.eng ~name:"cluster.lb" (fun () ->
      let drain_replies () =
        while not (Ring.is_empty t.pending_replies) do
          let rp = Ring.pop t.pending_replies in
          Machine.compute lbm ~core:0 cfg.lb_cost;
          if rp.Serve.rp_backend >= 0 then begin
            Lb.note_done t.lb rp.Serve.rp_backend;
            dispatch_queued t rp.Serve.rp_backend
          end;
          Machine_link.send t.lb2c ~bytes:rp.Serve.rp_bytes rp
        done
      in
      let rec loop () =
        drain_replies ();
        (match Sync.Mailbox.recv t.lb_box with
        | From_client rq ->
          Machine.compute lbm ~core:0 cfg.lb_cost;
          route t rq
        | Wake -> ());
        loop ()
      in
      loop ());
  t

(* Setup (and any previous run) leaves each machine at its own simulated
   time; load runs start past all of them so warmup/window bounds mean the
   same thing on every clock. *)
let time_base t =
  let latest = ref 0 in
  for s = 0 to Pdes.n_shards t.pdes - 1 do
    latest := max !latest (Engine.now (Pdes.engine t.pdes s))
  done;
  !latest + t.cfg.client_latency

type result = {
  r_users : int;
  r_think : int;
  r_window : int;  (* cycles *)
  r_users_started : int;
  r_issued_total : int;
  r_offered : int;  (* arrivals inside the window *)
  r_completed : int;  (* served replies completing inside the window *)
  r_shed : int;  (* rejected replies completing inside the window *)
  r_completed_total : int;
  r_shed_total : int;
  r_p50 : int;
  r_p99 : int;
  r_p999 : int;
  r_max : int;
  r_mean : float;
  r_throughput_rps : float;  (* served completions / window *)
  r_offered_rps : float;
  r_inter_frames : int;
  r_inter_bytes : int;
  r_wire_batches : int;  (* coalescable flush groups across all links *)
  r_wire_msgs : int;  (* frames inside those groups (= inter frames) *)
  r_intra_msgs : int;
  r_intra_bytes : int;
  r_session_entries : int;  (* sum of per-backend distinct sessions *)
  r_per_backend : (int * int) array;  (* (served, distinct sessions) *)
}

let inter_traffic t =
  let frames = ref 0 and bytes = ref 0 and batches = ref 0 in
  let count : 'a. 'a Machine_link.t -> unit =
   fun l ->
    frames := !frames + Machine_link.tx_frames l;
    bytes := !bytes + Machine_link.tx_bytes l;
    batches := !batches + Machine_link.tx_batches l
  in
  count t.c2lb;
  count t.lb2c;
  Array.iter
    (fun b ->
      count b.b_down;
      count b.b_up)
    t.backends;
  (!frames, !bytes, !batches)

let intra_traffic t =
  Array.fold_left
    (fun (m, by) b ->
      let s = Serve.session b.b_serve in
      (m + Session.intra_msgs s, by + Session.intra_bytes s))
    (0, 0) t.backends

let run_load t ~users ~think ~warmup ~window =
  let base = time_base t in
  let w_start = base + warmup in
  let w_end = w_start + window in
  t.t_stop <- w_end;
  let lg =
    Loadgen.start ~eng:t.client.Machine.eng
      ~send:(fun rq -> Machine_link.send t.c2lb ~bytes:Serve.request_bytes rq)
      ~users ~think ~t_start:base ~t_end:w_end ~w_start ~w_end ()
  in
  t.client_rx <- Loadgen.on_reply lg;
  let if0, ib0, wb0 = inter_traffic t in
  let im0, iby0 = intra_traffic t in
  Pdes.exec t.pdes;
  let if1, ib1, wb1 = inter_traffic t in
  let im1, iby1 = intra_traffic t in
  let h = Loadgen.hist lg in
  let secs = float_of_int window /. (t.cfg.platform.Platform.ghz *. 1e9) in
  {
    r_users = users;
    r_think = think;
    r_window = window;
    r_users_started = Loadgen.users_started lg;
    r_issued_total = Loadgen.issued lg;
    r_offered = Loadgen.offered lg;
    r_completed = Loadgen.completed lg;
    r_shed = Loadgen.shed lg;
    r_completed_total = Loadgen.completed_total lg;
    r_shed_total = Loadgen.shed_total lg;
    r_p50 = Stats.Histogram.quantile h 0.50;
    r_p99 = Stats.Histogram.quantile h 0.99;
    r_p999 = Stats.Histogram.quantile h 0.999;
    r_max = Stats.Histogram.max h;
    r_mean = Stats.Histogram.mean h;
    r_throughput_rps = float_of_int (Loadgen.completed lg) /. secs;
    r_offered_rps = float_of_int (Loadgen.offered lg) /. secs;
    r_inter_frames = if1 - if0;
    r_inter_bytes = ib1 - ib0;
    r_wire_batches = wb1 - wb0;
    r_wire_msgs = if1 - if0;
    r_intra_msgs = im1 - im0;
    r_intra_bytes = iby1 - iby0;
    r_session_entries =
      Array.fold_left (fun a b -> a + Session.sessions (Serve.session b.b_serve)) 0
        t.backends;
    r_per_backend =
      Array.map
        (fun b -> (Serve.served b.b_serve, Session.sessions (Serve.session b.b_serve)))
        t.backends;
  }

(* One end-to-end request outside any load run, for examples and tests:
   returns the reply and the client-observed latency. *)
let probe t ~session =
  t.t_stop <- max_int;
  let result = ref None in
  let issued_at = ref 0 in
  t.client_rx <- (fun rp -> result := Some (rp, Engine.now t.client.Machine.eng));
  let id = t.probe_id in
  t.probe_id <- id - 1;
  Engine.spawn t.client.Machine.eng ~name:"cluster.probe" (fun () ->
      issued_at := Engine.now_ ();
      Machine_link.send t.c2lb ~bytes:Serve.request_bytes
        { Serve.rq_id = id; rq_session = session });
  Pdes.exec t.pdes;
  match !result with
  | Some (rp, at) -> (rp, at - !issued_at)
  | None -> failwith "Cluster.probe: request lost"

let mark_backend_dead t b =
  Lb.mark_dead t.lb b;
  let os = t.backends.(b).b_os in
  List.iter (fun c -> Os.mark_dead os ~core:c) (Platform.core_ids t.cfg.platform)

let config t = t.cfg
let n_machines t = t.cfg.machines
let lb t = t.lb
let pdes t = t.pdes
let backend_os t b = t.backends.(b).b_os
let backend_serve t b = t.backends.(b).b_serve
let forwarded t = t.forwarded
let lb_rejected t = t.lb_rejected
