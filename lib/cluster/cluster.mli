(** A simulated datacenter serving cluster.

    [machines] independently-booted multikernel OSes (one PDES shard
    each), a front-end load-balancer machine and a client machine, wired
    with bandwidth/latency-modeled {!Mk_net.Machine_link}s. Requests cross
    two wire legs each way (client → LB → backend and back); inside a
    backend they take URPC hops to a per-core session table shard — the
    two-level cost structure of a real rack, and since every wire latency
    is at least the PDES lookahead, also exactly the cut that makes the
    conservative windows sound. Results are byte-identical across domain
    counts ([MK_PDES] and [Pdes.exec ~domains] pick placement only). *)

type config = {
  machines : int;
  policy : Lb.policy;
  platform : Mk_hw.Platform.t;
  wire_gbps : float;  (** LB ↔ backend link bandwidth *)
  wire_latency : int;  (** one-way propagation, cycles (≥ lookahead) *)
  client_gbps : float;  (** client ↔ LB aggregate pipe *)
  client_latency : int;
  lb_cost : int;  (** LB core cycles per message handled *)
  max_outstanding : int;  (** per-backend in-flight cap at the LB *)
  queue_cap : int;  (** per-backend hold queue before shedding (503) *)
}

val default_config : ?policy:Lb.policy -> machines:int -> unit -> config
(** 10 Gb/s backend wires, ~2 µs one-way latency, amd_2x2 machines,
    consistent-hash policy. *)

type t

val create : config -> t
(** Boot every machine (shard 0 the LB, 1..N the backends, N+1 the
    client), bring up the session service on each backend, wire the links
    and start the LB loop. *)

type result = {
  r_users : int;
  r_think : int;
  r_window : int;  (** measurement window, cycles *)
  r_users_started : int;  (** distinct users whose first arrival fired *)
  r_issued_total : int;
  r_offered : int;  (** arrivals issued inside the window *)
  r_completed : int;  (** served replies completing inside the window *)
  r_shed : int;  (** 503s completing inside the window *)
  r_completed_total : int;
  r_shed_total : int;
  r_p50 : int;  (** client-observed latency quantiles, cycles *)
  r_p99 : int;
  r_p999 : int;
  r_max : int;
  r_mean : float;
  r_throughput_rps : float;  (** served completions per wall second *)
  r_offered_rps : float;
  r_inter_frames : int;  (** wire frames during the run (all links) *)
  r_inter_bytes : int;
  r_wire_batches : int;
      (** coalescable flush groups on the wire links — what batching sends
          as one cross-shard message each; identical with batching on or
          off (see {!Mk_net.Machine_link.tx_batches}) *)
  r_wire_msgs : int;  (** frames inside those groups (= [r_inter_frames]) *)
  r_intra_msgs : int;  (** URPC messages inside backends during the run *)
  r_intra_bytes : int;
  r_session_entries : int;  (** distinct sessions across all shards *)
  r_per_backend : (int * int) array;  (** (served, distinct sessions) *)
}

val run_load : t -> users:int -> think:int -> warmup:int -> window:int -> result
(** Closed-loop run: [users] users with [think] cycles between reply and
    next request; latency is measured over \[warmup, warmup + window) past
    the latest machine clock. Runs the PDES executor to quiescence; callable
    repeatedly (counters are deltas per run). *)

val probe : t -> session:int -> Mk_apps.Serve.reply * int
(** One end-to-end request outside any load run; returns the reply and the
    client-observed latency in cycles. *)

val mark_backend_dead : t -> int -> unit
(** Remove a backend from LB rotation and mark all its cores dead in its
    OS ({!Mk.Os.mark_dead}). In-flight requests to it are lost. *)

val config : t -> config
val n_machines : t -> int
val lb : t -> Lb.t
val pdes : t -> Mk_sim.Pdes.t
val backend_os : t -> int -> Mk.Os.t
val backend_serve : t -> int -> Mk_apps.Serve.t
val forwarded : t -> int
val lb_rejected : t -> int
