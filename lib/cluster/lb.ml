(* Load-balancing policies: a pure, deterministic state machine (no
   simulation dependencies), driven by the front-end machine's LB loop.

   - [Round_robin] cycles through live backends.
   - [Least_outstanding] picks the live backend with the fewest in-flight
     requests (lowest index on ties).
   - [Consistent_hash] places [vnodes] points per backend on a hash ring
     (splitmix mix of backend/vnode) and sends a session to the first live
     point clockwise of the session's hash — so when a backend dies, only
     the sessions it owned move, the property the referee test pins. *)

type policy = Round_robin | Least_outstanding | Consistent_hash

let policy_name = function
  | Round_robin -> "rr"
  | Least_outstanding -> "lo"
  | Consistent_hash -> "ch"

let vnodes = 64

type t = {
  policy : policy;
  n : int;
  alive : bool array;
  outstanding : int array;
  mutable rr_next : int;
  ring : (int * int) array;  (* (point, backend), sorted; [||] unless CH *)
}

let create policy ~backends =
  if backends < 1 then invalid_arg "Lb.create: backends";
  let ring =
    match policy with
    | Consistent_hash ->
      let pts =
        Array.init (backends * vnodes) (fun i ->
            let b = i / vnodes and v = i mod vnodes in
            (Mk.Session.mix ((b lsl 20) lor v), b))
      in
      Array.sort compare pts;
      pts
    | Round_robin | Least_outstanding -> [||]
  in
  {
    policy;
    n = backends;
    alive = Array.make backends true;
    outstanding = Array.make backends 0;
    rr_next = 0;
    ring;
  }

let n t = t.n
let alive t b = t.alive.(b)
let outstanding t b = t.outstanding.(b)
let any_alive t = Array.exists Fun.id t.alive
let mark_dead t b = t.alive.(b) <- false
let mark_alive t b = t.alive.(b) <- true
let note_sent t b = t.outstanding.(b) <- t.outstanding.(b) + 1
let note_done t b = t.outstanding.(b) <- t.outstanding.(b) - 1

(* Option-free pick for the per-request LB loop: -1 = no live backend.
   {!pick} wraps it for callers that want the option. *)
let pick_idx t ~session =
  match t.policy with
  | Round_robin ->
    let rec go tries i =
      if tries = 0 then -1
      else if t.alive.(i) then begin
        t.rr_next <- (i + 1) mod t.n;
        i
      end
      else go (tries - 1) ((i + 1) mod t.n)
    in
    go t.n t.rr_next
  | Least_outstanding ->
    let best = ref (-1) in
    for i = 0 to t.n - 1 do
      if t.alive.(i) && (!best < 0 || t.outstanding.(i) < t.outstanding.(!best)) then
        best := i
    done;
    !best
  | Consistent_hash ->
    if not (any_alive t) then -1
    else begin
      let p = Mk.Session.mix session in
      let len = Array.length t.ring in
      (* First ring point >= p, wrapping past the top. *)
      let lo = ref 0 and hi = ref len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if fst t.ring.(mid) < p then lo := mid + 1 else hi := mid
      done;
      let rec walk steps i =
        if steps = len then -1
        else
          let _, b = t.ring.(i) in
          if t.alive.(b) then b else walk (steps + 1) ((i + 1) mod len)
      in
      walk 0 (if !lo = len then 0 else !lo)
    end

let pick t ~session = match pick_idx t ~session with -1 -> None | b -> Some b
