(** Pluggable load-balancer policies.

    A pure, deterministic state machine — no simulation dependencies — so
    policy behavior is unit-testable without booting a cluster. The
    cluster's front-end LB loop drives it: {!pick} a backend per request,
    {!note_sent}/{!note_done} track in-flight counts, {!mark_dead} removes
    a backend from rotation (fed by the cluster's failure handling). *)

type policy = Round_robin | Least_outstanding | Consistent_hash

val policy_name : policy -> string
(** Short tag for artifacts: ["rr"], ["lo"], ["ch"]. *)

val vnodes : int
(** Ring points per backend under [Consistent_hash]. *)

type t

val create : policy -> backends:int -> t
val n : t -> int

val pick : t -> session:int -> int option
(** Choose a live backend for a session's request; [None] when every
    backend is dead. [Consistent_hash] maps the session to the first live
    ring point clockwise of its hash, so the death of one backend moves
    only the sessions that backend owned. *)

val pick_idx : t -> session:int -> int
(** Same choice as {!pick} without the option allocation: [-1] when every
    backend is dead. For the LB loop's per-request path. *)

val note_sent : t -> int -> unit
val note_done : t -> int -> unit
val outstanding : t -> int -> int
val mark_dead : t -> int -> unit
val mark_alive : t -> int -> unit
val alive : t -> int -> bool
val any_alive : t -> bool
