(** Allocation-free FIFO over a growable circular array.

    Same observable semantics as stdlib [Queue] for push/pop/length, but
    steady-state operation allocates nothing: elements live in a flat
    array that doubles when full, and popped slots are overwritten with
    [dummy] so the ring never retains payloads. Built for the cluster
    LB's hold and reply queues, which see every request. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [dummy] fills empty slots; it is never returned by {!pop}. *)

val length : _ t -> int
val is_empty : _ t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Oldest element, FIFO. Raises [Invalid_argument] when empty. *)
