open Mk_sim
open Mk_hw

type style = Linux | Windows

let style_to_string = function Linux -> "Linux" | Windows -> "Windows"

let vector = 0xfd

let per_ipi_send_cost = function Linux -> 950 | Windows -> 1350

(* Page-table edit cost under the mmap/address-space lock. *)
let pt_edit = 300

type round = {
  mutable outstanding : int;
  done_ : unit Sync.Ivar.t;
  r_vpages : int list;
}

type t = {
  m : Machine.t;
  style : style;
  cores : int list;
  lock : Spinlock.Tas.t;  (* mmap_sem / dispatcher lock *)
  ack_line : int;
  req_line : int;
  mutable current : round option;
}

let setup m style ~cores =
  let t =
    {
      m;
      style;
      cores;
      lock = Spinlock.Tas.create m;
      ack_line = Machine.alloc_lines m 1;
      req_line = Machine.alloc_lines m 1;
      current = None;
    }
  in
  List.iter
    (fun core ->
      Ipi.register m.Machine.ipi ~core ~vector (fun ~src:_ ->
          match t.current with
          | None -> ()
          | Some round ->
            (* Read the request, invalidate, ack on the shared line. *)
            Coherence.load m.Machine.coh ~core t.req_line;
            List.iter
              (fun vpage ->
                if Tlb.invalidate m.Machine.tlbs.(core) ~vpage then
                  Engine.charge m.Machine.plat.Platform.tlb_invlpg)
              round.r_vpages;
            Coherence.store m.Machine.coh ~core t.ack_line;
            round.outstanding <- round.outstanding - 1;
            if round.outstanding = 0 then Sync.Ivar.fill round.done_ ()))
    cores;
  t

let unmap t ~initiator ~vpages =
  let t0 = Engine.now_ () in
  let m = t.m in
  let targets = List.filter (fun c -> c <> initiator) t.cores in
  (* Page-table update under the address-space lock. *)
  Spinlock.Tas.with_lock t.lock ~core:initiator (fun () ->
      List.iter (fun _ -> Machine.compute m ~core:initiator pt_edit) vpages;
      (* Publish the operation for the handlers. *)
      Coherence.store m.Machine.coh ~core:initiator t.req_line);
  (* Local TLB. *)
  List.iter
    (fun vpage ->
      if Tlb.invalidate m.Machine.tlbs.(initiator) ~vpage then
        Engine.charge m.Machine.plat.Platform.tlb_invlpg)
    vpages;
  if targets = [] then Engine.now_ () - t0
  else begin
    let round =
      { outstanding = List.length targets; done_ = Sync.Ivar.create (); r_vpages = vpages }
    in
    t.current <- Some round;
    (* Serial IPI sends: the linear term of Figure 7. *)
    List.iter
      (fun dst ->
        Machine.compute m ~core:initiator (per_ipi_send_cost t.style);
        Ipi.send m.Machine.ipi ~src:initiator ~dst ~vector)
      targets;
    (* Spin on the shared acknowledgement word: every ack store invalidates
       our copy, so the final observation is one more coherent load. *)
    Sync.Ivar.read round.done_;
    Coherence.load m.Machine.coh ~core:initiator t.ack_line;
    t.current <- None;
    Engine.now_ () - t0
  end
