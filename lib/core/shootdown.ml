open Mk_sim
open Mk_hw

(* Request messages carry the round number; acks carry the subtree size
   they account for (aggregators merge their leaves' acks). *)
type req = { round : int }
type ack = { round_a : int; covers : int }

type t = {
  m : Machine.t;
  protocol : Routing.proto;
  root : int;
  members : int list;
  (* Root-side send actions, in plan order. *)
  send_round : int -> unit;
  (* Root-side ack sources. *)
  ack_chans : ack Urpc.t list;
  expected_acks : int;  (* total cores covered by incoming acks *)
}

let proto t = t.protocol
let n_cores t = List.length t.members

(* A leaf task: receive a request, immediately ack to parent. *)
let leaf_task ~req_in ~(parent_ack : ack Urpc.t) () =
  let rec loop () =
    let r : req = Urpc.recv req_in in
    Urpc.send parent_ack { round_a = r.round; covers = 1 };
    loop ()
  in
  loop ()

(* An aggregator: receive from root, forward to local leaves, collect their
   acks, send one aggregated ack upstream. *)
let aggregator_task ~req_in ~fwd ~leaf_acks ~(parent_ack : ack Urpc.t) () =
  let n = List.length fwd in
  let rec loop () =
    let r : req = Urpc.recv req_in in
    List.iter (fun ch -> Urpc.send ch { round = r.round }) fwd;
    List.iter (fun ch -> ignore (Urpc.recv ch : ack)) leaf_acks;
    Urpc.send parent_ack { round_a = r.round; covers = n + 1 };
    loop ()
  in
  loop ()

(* A broadcast slave: wait on the shared line, ack point-to-point. *)
let bcast_slave_task bc ~core ~(parent_ack : ack Urpc.t) () =
  let rec loop () =
    let r : req = Urpc.Broadcast.recv bc ~core in
    Urpc.send parent_ack { round_a = r.round; covers = 1 };
    loop ()
  in
  loop ()

let setup m ~proto ~root ~cores ?latency ?plan:plan_override () =
  let plat = m.Machine.plat in
  let latency =
    match latency with
    | Some f -> f
    | None -> fun ~src ~dst -> Platform.hops_between plat src dst
  in
  let members = List.sort_uniq compare cores in
  let slaves = List.filter (fun c -> c <> root) members in
  (* The collector polls an array of ack channels; the hardware stride
     prefetcher hides part of each fetch (the paper's explanation of the
     flat sub-8-core unicast curve). *)
  let ack_chan ~from =
    Urpc.create m ~sender:from ~receiver:root ~prefetch:true
      ~name:(Printf.sprintf "ack%d->%d" from root) ()
  in
  match proto with
  | Routing.Broadcast ->
    let bc = Urpc.Broadcast.create m ~sender:root ~receivers:slaves () in
    let acks =
      List.map
        (fun c ->
          let ch = ack_chan ~from:c in
          Engine.spawn m.Machine.eng ~name:(Printf.sprintf "bslave%d" c)
            (bcast_slave_task bc ~core:c ~parent_ack:ch);
          ch)
        slaves
    in
    {
      m;
      protocol = proto;
      root;
      members;
      send_round = (fun round -> Urpc.Broadcast.send bc { round });
      ack_chans = acks;
      expected_acks = List.length slaves;
    }
  | Routing.Unicast | Routing.Multicast | Routing.Numa_multicast ->
    let plan =
      match plan_override with
      | Some p -> p
      | None ->
        (match proto with
         | Routing.Unicast -> Routing.unicast ~root ~members
         | Routing.Multicast -> Routing.multicast plat ~root ~members
         | Routing.Numa_multicast | Routing.Broadcast ->
           Routing.numa_multicast plat ~latency ~root ~members)
    in
    let numa = plan.Routing.numa_aware in
    let branch_setup (b : Routing.branch) =
      let agg = b.Routing.aggregator in
      (* NUMA-aware: the root->aggregator buffer lives on the aggregation
         node; default: on the root's node. *)
      let node =
        if numa then Platform.package_of plat agg else Platform.package_of plat root
      in
      let req_in =
        Urpc.create m ~sender:root ~receiver:agg ~node
          ~name:(Printf.sprintf "req%d->%d" root agg) ()
      in
      let parent_ack = ack_chan ~from:agg in
      (match b.Routing.leaves with
       | [] ->
         Engine.spawn m.Machine.eng ~name:(Printf.sprintf "leaf%d" agg)
           (leaf_task ~req_in ~parent_ack)
       | leaves ->
         let fwd_and_acks =
           List.map
             (fun leaf ->
               let fwd =
                 Urpc.create m ~sender:agg ~receiver:leaf
                   ~node:(Platform.package_of plat agg)
                   ~name:(Printf.sprintf "fwd%d->%d" agg leaf) ()
               in
               let lack =
                 Urpc.create m ~sender:leaf ~receiver:agg ~prefetch:true
                   ~node:(Platform.package_of plat leaf)
                   ~name:(Printf.sprintf "lack%d->%d" leaf agg) ()
               in
               Engine.spawn m.Machine.eng ~name:(Printf.sprintf "leaf%d" leaf)
                 (leaf_task ~req_in:fwd ~parent_ack:lack);
               (fwd, lack))
             leaves
         in
         let fwd = List.map fst fwd_and_acks and leaf_acks = List.map snd fwd_and_acks in
         Engine.spawn m.Machine.eng ~name:(Printf.sprintf "agg%d" agg)
           (aggregator_task ~req_in ~fwd ~leaf_acks ~parent_ack));
      (req_in, parent_ack, 1 + List.length b.Routing.leaves)
    in
    let setups = List.map branch_setup plan.Routing.branches in
    let req_chans = List.map (fun (r, _, _) -> r) setups in
    let acks = List.map (fun (_, a, _) -> a) setups in
    let covered = List.fold_left (fun acc (_, _, n) -> acc + n) 0 setups in
    {
      m;
      protocol = proto;
      root;
      members;
      send_round =
        (fun round -> List.iter (fun ch -> Urpc.send ch { round }) req_chans);
      ack_chans = acks;
      expected_acks = covered;
    }

let round t =
  let t0 = Engine.now_ () in
  let r = t0 in
  t.send_round r;
  (* Collect one ack per branch (aggregated acks cover whole subtrees). *)
  List.iter (fun ch -> ignore (Urpc.recv ch : ack)) t.ack_chans;
  Engine.now_ () - t0
