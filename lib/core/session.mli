(** Per-core sharded session tables over URPC.

    A backend machine's session service in the multikernel idiom: no
    session state is shared between cores. Each worker core owns the hash
    shard [mix session mod workers] in private memory; the front (driver)
    core reaches the owner over a typed {!Flounder} binding, paying real
    URPC costs; workers register with the {!Name_service} and the front
    discovers them by lookup. All state stays on one machine — the cluster
    layer replicates whole services across machines instead of sharing. *)

type req = { mutable rq_session : int; mutable rq_work : int }
(** [rq_work] is the handler cost in cycles, charged on the owner core.
    Mutable so {!call} can refill one scratch request per binding instead
    of allocating a record per call (safe: one outstanding RPC per
    binding, and the service never crosses a PDES shard cut). *)

type resp = { rs_hits : int; rs_core : int }
(** [rs_hits] is the session's hit count after this request; [rs_core]
    the owner core that served it. *)

type t

val mix : int -> int
(** Deterministic splitmix-style integer hash (also used by the load
    balancer's consistent-hash ring). *)

val start :
  ?req_lines:int ->
  ?resp_lines:int ->
  Os.t ->
  name:string ->
  front:int ->
  workers:int list ->
  t
(** Bring up the service: register every worker shard with the name
    service, discover them from [front] by lookup, connect one Flounder
    binding per worker and start its server loop. Task context required
    (registration and lookup are messaging). [req_lines]/[resp_lines]
    size the URPC messages (cache lines, default 1). *)

val call : t -> session:int -> work:int -> resp
(** Serve one request from the front core: URPC to the session's owner
    core, charge [work] cycles there, bump the session's hit count in the
    owner's private table. Task context on the front core; concurrent
    calls to the same owner serialize on its binding (FIFO queueing). *)

val owner_core : t -> session:int -> int
val front : t -> int
val workers : t -> int list

val served_on : t -> core:int -> int
val sessions_on : t -> core:int -> int
(** Distinct sessions resident in [core]'s shard table. *)

val sessions : t -> int
(** Distinct sessions across all shards of this machine. *)

val calls : t -> int

val intra_msgs : t -> int
(** Intra-machine URPC messages on the serving path (2 per call). *)

val intra_bytes : t -> int
(** Intra-machine URPC payload bytes on the serving path. *)
