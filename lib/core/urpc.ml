open Mk_sim
open Mk_hw

let send_sw_cost = 30
let recv_sw_cost = 30
let prefetch_latency_penalty = 120
let icache_lines = 9

(* [kind] tags injected-fault deliveries: a normal message releases a ring
   slot when consumed; a duplicate is a spurious redelivery of a slot the
   receiver already consumed (no flow release); a dropped message frees its
   slot at the wire without ever reaching the receiver. *)
let k_normal = 0

let k_dup = 1
let k_dropped = 2

(* Mutable and freelist-linked: one record travels sender -> wire queue ->
   receive mailbox and is recycled through the channel's [free] list once
   the receiver has read the payload, so steady-state messaging allocates
   nothing per message. [visible_at] rides in the record rather than a
   (time, delivery) tuple on the wire queue. *)
type 'a delivery = {
  mutable payload : 'a;
  mutable slot_addr : int;
  mutable lines : int;
  mutable kind : int;
  mutable visible_at : int;
  mutable next_free : 'a delivery option;
}

type 'a t = {
  m : Machine.t;
  src : int;
  dst : int;
  slot_addrs : int array;
  send_ctrl : int array;  (* sender-local ring bookkeeping lines *)
  recv_ctrl : int array;  (* receiver-local dispatch/waitset lines *)
  mutable head : int;
  flow : Sync.Semaphore.t;
  box : 'a delivery Sync.Mailbox.t;
  prefetch : bool;
  chan_name : string;
  (* In-flight messages awaiting visibility, drained by one persistent
     per-channel sequencer task (spawned on first send). [visible_at] is
     monotonic per channel, so queue order is delivery order. *)
  wire_q : 'a delivery Queue.t;
  (* Recycled delivery records (capped in practice by ring slots + 1). *)
  mutable free : 'a delivery option;
  mutable wire_spawned : bool;
  mutable wire_waker : Engine.waker option;  (* parked sequencer, if idle *)
  mutable last_visible : int;
  mutable sent : int;
  mutable received : int;
  mutable notify : (unit -> unit) option;
  (* PDES cross-shard delivery (sender half): messages leave the shard at
     their visibility time instead of entering the receive mailbox. *)
  mutable remote_delivery : (visible_at:int -> 'a -> unit) option;
}

(* Reserve the buffer memory of a channel without building it. Buffer
   addresses feed the coherence model, so reservation order is part of the
   simulated machine; splitting it from construction lets a caller lay out
   many channels up front (fixing every address) and only pay for the
   channel records that actually carry traffic — the monitor mesh reserves
   n*(n-1) channels and typically uses a handful. *)
let preallocate m ~sender ~receiver ?(slots = 16) ?node () =
  if slots <= 0 then invalid_arg "Urpc.preallocate: slots must be positive";
  let plat = m.Machine.plat in
  let node =
    match node with Some n -> n | None -> Platform.package_of plat sender
  in
  (* Each slot gets its own line; message payloads larger than one line
     spill into lines allocated right after the ring (same home). The ring
     and each control block are allocated as one contiguous region so a
     channel pins three home ranges, not one per line. *)
  let slot_base = Machine.alloc_lines m ~node slots in
  let send_base =
    Machine.alloc_lines m ~node:(Platform.package_of plat sender) 2
  in
  let recv_base =
    Machine.alloc_lines m ~node:(Platform.package_of plat receiver) 3
  in
  (slot_base, send_base, recv_base)

let create_prealloc (type a) m ~sender ~receiver ?(slots = 16) ?(prefetch = false)
    ?(name = "urpc") ~slot_base ~send_base ~recv_base () : a t =
  if slots <= 0 then invalid_arg "Urpc.create_prealloc: slots must be positive";
  let cl = m.Machine.plat.Platform.cacheline in
  let slot_addrs = Array.init slots (fun i -> slot_base + (i * cl)) in
  let send_ctrl = Array.init 2 (fun i -> send_base + (i * cl)) in
  let recv_ctrl = Array.init 3 (fun i -> recv_base + (i * cl)) in
  {
    m;
    src = sender;
    dst = receiver;
    slot_addrs;
    send_ctrl;
    recv_ctrl;
    head = 0;
    flow = Sync.Semaphore.create slots;
    box = Sync.Mailbox.create ();
    prefetch;
    chan_name = name;
    wire_q = Queue.create ();
    free = None;
    wire_spawned = false;
    wire_waker = None;
    last_visible = 0;
    sent = 0;
    received = 0;
    notify = None;
    remote_delivery = None;
  }

let create m ~sender ~receiver ?slots ?node ?prefetch ?name () =
  let slot_base, send_base, recv_base =
    preallocate m ~sender ~receiver ?slots ?node ()
  in
  create_prealloc m ~sender ~receiver ?slots ?prefetch ?name ~slot_base ~send_base
    ~recv_base ()

let set_notify t f = t.notify <- Some f
let set_remote_delivery t f = t.remote_delivery <- Some f

let sender t = t.src
let receiver t = t.dst
let name t = t.chan_name
let pending t = Sync.Mailbox.length t.box
let stats_sent t = t.sent
let stats_received t = t.received

(* Post [lines] consecutive line stores starting at the slot; the message
   becomes visible when the last store's invalidation completes. In-order
   delivery is enforced by the channel's visibility sequencer. *)
let post_message t ~slot_addr ~lines =
  let coh = t.m.Machine.coh in
  let cl = t.m.Machine.plat.Platform.cacheline in
  let delay = ref 0 in
  for i = 0 to lines - 1 do
    let d = Coherence.store_posted coh ~core:t.src (slot_addr + (i * cl)) in
    if d > !delay then delay := d
  done;
  !delay

(* The per-channel delivery sequencer: one persistent task that sleeps
   until the head message's visibility time, posts it to the receive
   mailbox, and parks itself when the wire is idle. Because [visible_at]
   is monotonic per channel, draining the queue in FIFO order realizes
   exactly the (time, seq) schedule that one spawned wire task per
   message used to — minus a task creation/teardown and a continuation
   allocation per message, and minus the wake-up event entirely when
   messages are in flight back to back. *)
(* Pull a delivery record off the channel freelist (or allocate the first
   few); released by the receiver once the payload has been read, or at the
   wire for an injected drop. *)
let get_delivery t ~payload ~slot_addr ~lines ~kind ~visible_at =
  match t.free with
  | Some d ->
    t.free <- d.next_free;
    d.next_free <- None;
    d.payload <- payload;
    d.slot_addr <- slot_addr;
    d.lines <- lines;
    d.kind <- kind;
    d.visible_at <- visible_at;
    d
  | None -> { payload; slot_addr; lines; kind; visible_at; next_free = None }

let release_delivery t d =
  d.next_free <- t.free;
  t.free <- Some d

let rec wire_loop t =
  if Queue.is_empty t.wire_q then begin
    Engine.suspend (fun w -> t.wire_waker <- Some w);
    wire_loop t
  end
  else begin
    let d = Queue.take t.wire_q in
    Engine.wait_until d.visible_at;
    if d.kind = k_dropped then begin
      (* Injected loss: the slot is reclaimed (the sender's ring index
         advances regardless) but the receiver never sees the message. *)
      Sync.Semaphore.release t.flow;
      release_delivery t d
    end
    else begin
      match t.remote_delivery with
      | Some hook ->
        (* Cross-shard: the message leaves this shard at its visibility
           time; the flow credit returns at the wire (the real receiver —
           another shard's receiver-half channel — cannot touch this
           semaphore). A duplicate redelivers a slot whose credit was
           already returned, same rule as [charge_receive]. *)
        hook ~visible_at:d.visible_at d.payload;
        if d.kind <> k_dup then Sync.Semaphore.release t.flow;
        release_delivery t d
      | None ->
        Sync.Mailbox.send t.box d;
        (match t.notify with Some f -> f () | None -> ())
    end;
    wire_loop t
  end

let wire_post t d =
  Queue.add d t.wire_q;
  if not t.wire_spawned then begin
    t.wire_spawned <- true;
    (* Name built here, not in [create]: a monitor mesh makes n*(n-1)
       channels and most never carry a message. *)
    Engine.spawn_ ~name:(t.chan_name ^ ".wire") (fun () -> wire_loop t)
  end
  else begin
    match t.wire_waker with
    | Some w ->
      t.wire_waker <- None;
      w ()
    | None -> ()  (* already draining; it will see the new entry *)
  end

let send t ?(lines = 1) payload =
  (match t.m.Machine.comm with
   | Some c -> Trace.Comm.record c ~src:t.src ~dst:t.dst
   | None -> ());
  Sync.Semaphore.acquire t.flow;
  Engine.charge (send_sw_cost + if t.prefetch then prefetch_latency_penalty else 0);
  (* Ring-position and channel-state updates (sender-local lines: one
     sender task per channel, so these hits fuse into the banked charge). *)
  Array.iter (fun a -> Coherence.store_local t.m.Machine.coh ~core:t.src a) t.send_ctrl;
  let slot_addr = t.slot_addrs.(t.head) in
  t.head <- (t.head + 1) mod Array.length t.slot_addrs;
  let delay = post_message t ~slot_addr ~lines in
  let visible_at = max (Engine.now_ () + delay) t.last_visible in
  let inj = t.m.Machine.fault in
  if not (Mk_fault.Injector.armed inj) then begin
    t.last_visible <- visible_at;
    t.sent <- t.sent + 1;
    wire_post t (get_delivery t ~payload ~slot_addr ~lines ~kind:k_normal ~visible_at)
  end
  else begin
    (* Fault point: the injector decides this message's fate. Delay is
       head-of-line (the channel is in-order, so later messages queue
       behind); a duplicate is delivered twice back to back; a drop still
       performed all its coherence work — only delivery is suppressed. *)
    let fate = Mk_fault.Injector.urpc_fault inj in
    let visible_at =
      match fate with
      | Mk_fault.Injector.Delay d -> visible_at + d
      | _ -> visible_at
    in
    t.last_visible <- visible_at;
    t.sent <- t.sent + 1;
    match fate with
    | Mk_fault.Injector.Drop ->
      wire_post t (get_delivery t ~payload ~slot_addr ~lines ~kind:k_dropped ~visible_at)
    | Mk_fault.Injector.Dup ->
      wire_post t (get_delivery t ~payload ~slot_addr ~lines ~kind:k_normal ~visible_at);
      wire_post t (get_delivery t ~payload ~slot_addr ~lines ~kind:k_dup ~visible_at)
    | Mk_fault.Injector.Deliver | Mk_fault.Injector.Delay _ ->
      wire_post t (get_delivery t ~payload ~slot_addr ~lines ~kind:k_normal ~visible_at)
  end

(* Receive-side cost once a message line is visible: fetch each line from
   the sender's cache, then run the dispatch stub. With the prefetch
   variant and a backlog, the fetch of the next line overlaps the dispatch
   of the current one, halving the exposed fetch cost. *)
let charge_receive t (d : 'a delivery) =
  let coh = t.m.Machine.coh in
  let cl = t.m.Machine.plat.Platform.cacheline in
  if t.prefetch then
    (* Stride-prefetched endpoint array (§4.6): the hardware prefetcher
       issued the fetch before the dispatch loop reached this channel,
       hiding part of the transfer latency. *)
    for i = 0 to d.lines - 1 do
      let lat = Coherence.load_async coh ~core:t.dst (d.slot_addr + (i * cl)) in
      Engine.charge (lat * 7 / 10)
    done
  else
    for i = 0 to d.lines - 1 do
      Coherence.load coh ~core:t.dst (d.slot_addr + (i * cl))
    done;
  (* Dispatch-table and waitset updates (receiver-local lines). *)
  Array.iter (fun a -> Coherence.store_local t.m.Machine.coh ~core:t.dst a) t.recv_ctrl;
  Engine.charge recv_sw_cost;
  t.received <- t.received + 1;
  (* A duplicate redelivers a slot whose flow credit was already returned. *)
  if d.kind <> k_dup then Sync.Semaphore.release t.flow;
  let v = d.payload in
  release_delivery t d;
  v

(* Arrival half of a cross-shard message: materialize it in this
   (receiver-half) channel's ring and post it to the receive mailbox.
   Effect-free, so a delivered {!Pdes} message thunk can call it at the
   message's arrival time. Tagged [k_dup] because this channel's flow
   semaphore never lent a credit for it — the sender half released its own
   credit at the wire. *)
let deliver_remote t ?(lines = 1) payload =
  let slot_addr = t.slot_addrs.(t.head) in
  t.head <- (t.head + 1) mod Array.length t.slot_addrs;
  let d = get_delivery t ~payload ~slot_addr ~lines ~kind:k_dup ~visible_at:0 in
  Sync.Mailbox.send t.box d;
  match t.notify with Some f -> f () | None -> ()

let recv t =
  let d = Sync.Mailbox.recv t.box in
  charge_receive t d

let recv_timeout t ~timeout =
  match Sync.Mailbox.recv_timeout t.box ~timeout with
  | Some d -> Some (charge_receive t d)
  | None -> None

let recv_blocking t ~poll_cycles ~wakeup_cost =
  let t0 = Engine.now_ () in
  let d = Sync.Mailbox.recv t.box in
  if Engine.now_ () - t0 > poll_cycles then Engine.charge wakeup_cost;
  charge_receive t d

let try_recv t =
  match Sync.Mailbox.try_recv t.box with
  | Some d -> Some (charge_receive t d)
  | None ->
    (* Poll read of the head slot: a cache hit while we own/share it. *)
    Engine.charge t.m.Machine.plat.Platform.l1_hit;
    None

module Broadcast = struct
  type 'a bc = {
    m : Machine.t;
    src : int;
    line_addr : int;
    (* Receiver mailboxes twice over: in creation order for delivery
       fan-out, and indexed by core id so [recv] is an array load rather
       than an assoc-list scan per message. *)
    order : 'a Sync.Mailbox.t array;
    by_core : 'a Sync.Mailbox.t option array;
    wire_q : (int * 'a) Queue.t;
    mutable wire_spawned : bool;
    mutable wire_waker : Engine.waker option;
    mutable last_visible : int;
  }

  let create m ~sender ~receivers ?node () =
    let node =
      match node with
      | Some n -> n
      | None -> Platform.package_of m.Machine.plat sender
    in
    let line_addr = Machine.alloc_lines m ~node 1 in
    let by_core = Array.make (Machine.n_cores m) None in
    let order =
      receivers
      |> List.map (fun c ->
             let box = Sync.Mailbox.create () in
             by_core.(c) <- Some box;
             box)
      |> Array.of_list
    in
    {
      m;
      src = sender;
      line_addr;
      order;
      by_core;
      wire_q = Queue.create ();
      wire_spawned = false;
      wire_waker = None;
      last_visible = 0;
    }

  (* Same delivery-sequencer scheme as point-to-point channels: one
     persistent task fans each message out to every receiver mailbox at
     its visibility time, in order. *)
  let rec wire_loop t =
    match Queue.take_opt t.wire_q with
    | Some (visible_at, payload) ->
      Engine.wait_until visible_at;
      Array.iter (fun box -> Sync.Mailbox.send box payload) t.order;
      wire_loop t
    | None ->
      Engine.suspend (fun w -> t.wire_waker <- Some w);
      wire_loop t

  let send t payload =
    Engine.charge send_sw_cost;
    let delay = Coherence.store_posted t.m.Machine.coh ~core:t.src t.line_addr in
    let visible_at = max (Engine.now_ () + delay) t.last_visible in
    t.last_visible <- visible_at;
    Queue.add (visible_at, payload) t.wire_q;
    if not t.wire_spawned then begin
      t.wire_spawned <- true;
      Engine.spawn_ ~name:"bcast.wire" (fun () -> wire_loop t)
    end
    else begin
      match t.wire_waker with
      | Some w ->
        t.wire_waker <- None;
        w ()
      | None -> ()
    end

  let recv t ~core =
    let box =
      match
        if core >= 0 && core < Array.length t.by_core then t.by_core.(core) else None
      with
      | Some b -> b
      | None -> invalid_arg "Urpc.Broadcast.recv: not a receiver of this channel"
    in
    let payload = Sync.Mailbox.recv box in
    (* Every receiver pulls the line from wherever it currently lives —
       serialized at the home directory and the owner's cache port. *)
    Coherence.load t.m.Machine.coh ~core t.line_addr;
    Engine.charge recv_sw_cost;
    payload
end
