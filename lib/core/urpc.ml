open Mk_sim
open Mk_hw

let send_sw_cost = 30
let recv_sw_cost = 30
let prefetch_latency_penalty = 120
let icache_lines = 9

type 'a delivery = { payload : 'a; slot_addr : int; lines : int }

type 'a t = {
  m : Machine.t;
  src : int;
  dst : int;
  slot_addrs : int array;
  send_ctrl : int array;  (* sender-local ring bookkeeping lines *)
  recv_ctrl : int array;  (* receiver-local dispatch/waitset lines *)
  mutable head : int;
  flow : Sync.Semaphore.t;
  box : 'a delivery Sync.Mailbox.t;
  prefetch : bool;
  chan_name : string;
  wire_name : string;  (* precomputed: [send] spawns one wire task per message *)
  mutable last_visible : int;
  mutable sent : int;
  mutable received : int;
  mutable notify : (unit -> unit) option;
}

let create (type a) m ~sender ~receiver ?(slots = 16) ?node ?(prefetch = false)
    ?(name = "urpc") () : a t =
  if slots <= 0 then invalid_arg "Urpc.create: slots must be positive";
  let plat = m.Machine.plat in
  let node =
    match node with Some n -> n | None -> Platform.package_of plat sender
  in
  (* Each slot gets its own line; message payloads larger than one line
     spill into lines allocated right after the ring (same home). The ring
     and each control block are allocated as one contiguous region so a
     channel pins three home ranges, not one per line. *)
  let cl = plat.Platform.cacheline in
  let slot_base = Machine.alloc_lines m ~node slots in
  let slot_addrs = Array.init slots (fun i -> slot_base + (i * cl)) in
  let send_base =
    Machine.alloc_lines m ~node:(Platform.package_of plat sender) 2
  in
  let send_ctrl = Array.init 2 (fun i -> send_base + (i * cl)) in
  let recv_base =
    Machine.alloc_lines m ~node:(Platform.package_of plat receiver) 3
  in
  let recv_ctrl = Array.init 3 (fun i -> recv_base + (i * cl)) in
  {
    m;
    src = sender;
    dst = receiver;
    slot_addrs;
    send_ctrl;
    recv_ctrl;
    head = 0;
    flow = Sync.Semaphore.create slots;
    box = Sync.Mailbox.create ();
    prefetch;
    chan_name = name;
    wire_name = name ^ ".wire";
    last_visible = 0;
    sent = 0;
    received = 0;
    notify = None;
  }

let set_notify t f = t.notify <- Some f

let sender t = t.src
let receiver t = t.dst
let name t = t.chan_name
let pending t = Sync.Mailbox.length t.box
let stats_sent t = t.sent
let stats_received t = t.received

(* Post [lines] consecutive line stores starting at the slot; the message
   becomes visible when the last store's invalidation completes. In-order
   delivery is enforced by the channel's visibility sequencer. *)
let post_message t ~slot_addr ~lines =
  let coh = t.m.Machine.coh in
  let cl = t.m.Machine.plat.Platform.cacheline in
  let delay = ref 0 in
  for i = 0 to lines - 1 do
    let d = Coherence.store_posted coh ~core:t.src (slot_addr + (i * cl)) in
    if d > !delay then delay := d
  done;
  !delay

let send t ?(lines = 1) payload =
  Sync.Semaphore.acquire t.flow;
  Engine.wait (send_sw_cost + if t.prefetch then prefetch_latency_penalty else 0);
  (* Ring-position and channel-state updates (sender-local lines). *)
  Array.iter (fun a -> Coherence.store t.m.Machine.coh ~core:t.src a) t.send_ctrl;
  let slot_addr = t.slot_addrs.(t.head) in
  t.head <- (t.head + 1) mod Array.length t.slot_addrs;
  let delay = post_message t ~slot_addr ~lines in
  let visible_at = max (Engine.now_ () + delay) t.last_visible in
  t.last_visible <- visible_at;
  t.sent <- t.sent + 1;
  Engine.spawn_ ~name:t.wire_name (fun () ->
      Engine.wait_until visible_at;
      Sync.Mailbox.send t.box { payload; slot_addr; lines };
      match t.notify with Some f -> f () | None -> ())

(* Receive-side cost once a message line is visible: fetch each line from
   the sender's cache, then run the dispatch stub. With the prefetch
   variant and a backlog, the fetch of the next line overlaps the dispatch
   of the current one, halving the exposed fetch cost. *)
let charge_receive t (d : 'a delivery) =
  let coh = t.m.Machine.coh in
  let cl = t.m.Machine.plat.Platform.cacheline in
  if t.prefetch then
    (* Stride-prefetched endpoint array (§4.6): the hardware prefetcher
       issued the fetch before the dispatch loop reached this channel,
       hiding part of the transfer latency. *)
    for i = 0 to d.lines - 1 do
      let lat = Coherence.load_async coh ~core:t.dst (d.slot_addr + (i * cl)) in
      Engine.wait (lat * 7 / 10)
    done
  else
    for i = 0 to d.lines - 1 do
      Coherence.load coh ~core:t.dst (d.slot_addr + (i * cl))
    done;
  (* Dispatch-table and waitset updates (receiver-local lines). *)
  Array.iter (fun a -> Coherence.store t.m.Machine.coh ~core:t.dst a) t.recv_ctrl;
  Engine.wait recv_sw_cost;
  t.received <- t.received + 1;
  Sync.Semaphore.release t.flow;
  d.payload

let recv t =
  let d = Sync.Mailbox.recv t.box in
  charge_receive t d

let recv_blocking t ~poll_cycles ~wakeup_cost =
  let t0 = Engine.now_ () in
  let d = Sync.Mailbox.recv t.box in
  if Engine.now_ () - t0 > poll_cycles then Engine.wait wakeup_cost;
  charge_receive t d

let try_recv t =
  match Sync.Mailbox.try_recv t.box with
  | Some d -> Some (charge_receive t d)
  | None ->
    (* Poll read of the head slot: a cache hit while we own/share it. *)
    Engine.wait t.m.Machine.plat.Platform.l1_hit;
    None

module Broadcast = struct
  type 'a bc = {
    m : Machine.t;
    src : int;
    line_addr : int;
    boxes : (int * 'a Sync.Mailbox.t) list;
  }

  let create m ~sender ~receivers ?node () =
    let node =
      match node with
      | Some n -> n
      | None -> Platform.package_of m.Machine.plat sender
    in
    let line_addr = Machine.alloc_lines m ~node 1 in
    {
      m;
      src = sender;
      line_addr;
      boxes = List.map (fun c -> (c, Sync.Mailbox.create ())) receivers;
    }

  let send t payload =
    Engine.wait send_sw_cost;
    let delay = Coherence.store_posted t.m.Machine.coh ~core:t.src t.line_addr in
    Engine.spawn_ ~name:"bcast.wire" (fun () ->
        Engine.wait delay;
        List.iter (fun (_, box) -> Sync.Mailbox.send box payload) t.boxes)

  let recv t ~core =
    let box =
      match List.assoc_opt core t.boxes with
      | Some b -> b
      | None -> invalid_arg "Urpc.Broadcast.recv: not a receiver of this channel"
    in
    let payload = Sync.Mailbox.recv box in
    (* Every receiver pulls the line from wherever it currently lives —
       serialized at the home directory and the owner's cache port. *)
    Coherence.load t.m.Machine.coh ~core t.line_addr;
    Engine.wait recv_sw_cost;
    payload
end
