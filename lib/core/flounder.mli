(** Typed message-interface stubs (§4.6).

    Barrelfish generates marshalling code from interface definitions with a
    stub compiler ("Flounder"); here the equivalent is a typed RPC binding
    over a pair of URPC channels, with message sizes declared per interface
    so the transport charges the right number of cache lines. All message
    transports hide behind this interface, keeping services
    transport-independent. *)

type ('req, 'resp) binding

val connect :
  ?shard:Shard.t ->
  Mk_hw.Machine.t ->
  name:string ->
  client:int ->
  server:int ->
  ?req_lines:int ->
  ?resp_lines:int ->
  unit ->
  ('req, 'resp) binding
(** Create a client-side binding (a channel pair). [req_lines]/[resp_lines]
    are the marshalled sizes in cache lines (default 1). With [shard] the
    channels are built through {!Shard.link_urpc} — each half's ring on
    its owning shard, split at the wire when client and server live on
    different shards — and {!export}'s server loop runs on the server
    core's shard machine; the given machine is ignored. *)

val export : ('req, 'resp) binding -> ('req -> 'resp) -> unit
(** Start the server loop: for each request, run the handler in the server
    core's context and send the response. Call once per binding. *)

val rpc : ('req, 'resp) binding -> 'req -> 'resp
(** Synchronous call. Concurrent callers on the same binding serialize. *)

val rpc_fill : ('req, 'resp) binding -> (unit -> 'req) -> 'resp
(** Like {!rpc}, but the request is produced by [fill] after the binding
    lock is taken. A caller that owns the binding may mutate and return a
    single scratch request record: the binding admits one outstanding RPC,
    and the server reads the request before the response is sent, so the
    scratch cannot be refilled while still in use. For per-call
    allocation-free hot paths. *)

val rpc_async : ('req, 'resp) binding -> 'req -> (unit -> 'resp)
(** Split-phase call: send now, return a function that blocks for the
    reply — the pipelining pattern of §3.1. *)

val oneway : ('req, _) binding -> 'req -> unit
(** Fire-and-forget request (no response expected for this message; the
    server handler still runs and its response is discarded). *)

val client_core : (_, _) binding -> int
val server_core : (_, _) binding -> int

(** At-most-once RPC for lossy conditions (fault subsystem).

    Requests carry an id; the client retransmits with exponential backoff
    ([base_timeout], doubling per attempt, up to [max_attempts]); the
    server replays cached responses for retransmitted ids, so the handler
    runs at most once per logical call even under message duplication.

    A call that returns [Error `Timeout] may leave unacknowledged requests
    stranding ring slots on the underlying channel — callers are expected
    to fail over to a fresh binding (see [Ft_service]) rather than keep
    calling a binding whose server is dead. *)
module Reliable : sig
  type ('req, 'resp) t

  val connect :
    ?shard:Shard.t ->
    Mk_hw.Machine.t ->
    name:string ->
    client:int ->
    server:int ->
    ?base_timeout:int ->
    ?max_attempts:int ->
    ?req_lines:int ->
    ?resp_lines:int ->
    unit ->
    ('req, 'resp) t
  (** [base_timeout] (default 30k cycles) is the first attempt's response
      timeout; each retry doubles it. [shard] as in the plain {!connect}. *)

  val export : ('req, 'resp) t -> ?should_halt:(unit -> bool) -> ('req -> 'resp) -> unit
  (** Start the server loop. [should_halt] is polled per request: when it
      turns true the server consumes the request and halts without
      replying — how a service incarnation on a stopped core dies. *)

  val call : ('req, 'resp) t -> 'req -> ('resp, [ `Timeout ]) result
  (** Synchronous at-most-once call with retry/backoff. *)

  val stats_retries : (_, _) t -> int
  val stats_gave_up : (_, _) t -> int
  val client_core : (_, _) t -> int
  val server_core : (_, _) t -> int
end
