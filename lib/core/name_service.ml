open Mk_hw

type service_ref = { srv_name : string; srv_core : int; srv_tag : int }

type request = Register of service_ref | Lookup of string
type response = Ack | Found of service_ref option

type t = {
  m : Machine.t;
  home : int;
  table : (string, service_ref) Hashtbl.t;
  bindings : (request, response) Flounder.binding array;  (* per client core *)
}

let local_call_cost = 400  (* same-core LRPC-ish path into the server *)

let create ?shard m ~home_core =
  let n = Machine.n_cores m in
  let table = Hashtbl.create 32 in
  let handler = function
    | Register r ->
      Hashtbl.replace table r.srv_name r;
      Ack
    | Lookup name -> Found (Hashtbl.find_opt table name)
  in
  (* Sharded boot: the server loops (and hence every [table] mutation) run
     on the home core's shard; remote cores reach it over the split URPC
     wire, so no client ever touches the home shard's state directly. *)
  let bindings =
    Array.init n (fun c ->
        let b =
          Flounder.connect ?shard m ~name:(Printf.sprintf "ns.core%d" c) ~client:c
            ~server:home_core ()
        in
        Flounder.export b handler;
        b)
  in
  let m = match shard with None -> m | Some sh -> Shard.machine_of_core sh home_core in
  (* The home core's own binding exists but same-core requests shortcut it
     below; keep the array uniform anyway. *)
  { m; home = home_core; table; bindings }

let home_core t = t.home

let call t ~from_core req =
  if from_core = t.home then begin
    Machine.compute t.m ~core:t.home local_call_cost;
    match req with
    | Register r ->
      Hashtbl.replace t.table r.srv_name r;
      Ack
    | Lookup name -> Found (Hashtbl.find_opt t.table name)
  end
  else Flounder.rpc t.bindings.(from_core) req

let register t ~from_core ~name ~tag =
  match call t ~from_core (Register { srv_name = name; srv_core = from_core; srv_tag = tag }) with
  | Ack | Found _ -> ()

let lookup t ~from_core ~name =
  match call t ~from_core (Lookup name) with
  | Found r -> r
  | Ack -> None

let registered t = Hashtbl.length t.table
