open Mk_sim
open Mk_hw

let handle_cost = 50
let poll_scan_cost = 5

(* §4.4: with nothing runnable, the monitor idles the core (MONITOR/MWAIT
   or waiting for an IPI). Waking from that sleep costs more than a poll
   hit. The poll window before sleeping follows §5.2's P = C heuristic. *)
let sleep_poll_window = 6000
let wakeup_cost = 1200

type fan_op =
  | Op_noop
  | Op_tlb_invalidate of { vpages : int list }
  | Op_set_replica of { key : string; value : int }
  | Op_pt_update of { vpages : int list }
      (* replicated-page-table mode (§4.8): apply a mapping change to this
         core's hardware-table replica *)

type agree_op =
  | Ag_noop
  | Ag_retype of { cap : Cap.t; expected_frontier : int; bytes : int }
  | Ag_revoke of { cap : Cap.t }

type msg =
  | Heartbeat of { from : int }
  | Ping of { seq : int; from : int }
  | Pong of { seq : int }
  | Fan of { xid : int; parent : int; leaves : int list; op : fan_op }
  | Fan_ack of { xid : int }
  | Prepare of { xid : int; parent : int; leaves : int list; op : agree_op }
  | Vote of { xid : int; yes : bool }
  | Decide of { xid : int; parent : int; leaves : int list; commit : bool; op : agree_op }
  | Decide_ack of { xid : int }
  | Cap_transfer of { xid : int; from : int; cap : Cap.t }
  | Cap_transfer_ack of { xid : int; ok : bool }
  | Wake of { domid : Types.domid }

(* Per-transaction state while a fan/agreement is in flight through us. *)
type fan_state = {
  mutable fs_remaining : int;
  fs_parent : int option;  (* None at the origin *)
  fs_done : unit Sync.Ivar.t option;
}

type vote_state = {
  mutable vs_remaining : int;
  mutable vs_yes : bool;
  vs_parent : int option;
  vs_plan : Routing.plan option;  (* at the origin: to run phase 2 *)
  vs_op : agree_op;
  vs_result : bool Sync.Ivar.t option;
}

(* Failure-detection state, present once [start_ft] has run: one phi
   detector per peer, the local is-dead view, and the interned replica keys
   death announcements arrive under. *)
type ft_state = {
  ft_interval : int;
  ft_until : int;  (* absolute stop time: lets the engine drain after a run *)
  ft_detectors : Mk_fault.Detector.t option array;  (* None for self *)
  ft_peer_dead : bool array;
  ft_dead_keys : string array;
  ft_on_death : core:int -> at:int -> unit;
}

type t = {
  m : Machine.t;
  driver : Cpu_driver.t;
  core_id : int;
  (* The monitor mesh is built lazily: [connect] reserves every channel's
     buffer addresses (simulated state, so layout is deterministic), but
     the channel record itself is only materialized on first use —
     [peers.(dst)] caches it. At 128 cores the mesh is 16k channels and a
     workload typically exercises a few dozen. The per-destination base
     arrays are filled by [connect]'s per-edge path; a large unsharded
     mesh skips them entirely and computes every base from [mesh_arena]
     (closed-form src-major layout), so no O(n) base array per monitor —
     O(n^2) over the mesh — is ever allocated. *)
  peers : msg Urpc.t option array;  (* indexed by destination core *)
  mutable peer_slot_base : int array;  (* reserved ring base per destination *)
  mutable peer_send_base : int array;
  mutable peer_recv_base : int array;
  (* Sharded boot ([connect ?shard]): a mesh edge that crosses the PDES
     cut is split at the wire like any {!Shard.link_urpc} channel. The
     sender half lives in the sender's [peers]; these hold the receiver
     halves, indexed by *source* core, reserved at connect time and
     materialized by the first arriving message. *)
  mutable rx_peers : msg Urpc.t option array;
  mutable rx_slot_base : int array;
  mutable rx_send_base : int array;
  mutable rx_recv_base : int array;
  (* Base address of the closed-form mesh buffer arena (-1 = per-edge
     reservations in the arrays above). *)
  mutable mesh_arena : int;
  mutable shard : Shard.t option;
  mutable on_replica : (key:string -> value:int -> unit) option;
  mutable mesh : t array;  (* all monitors, indexed by core; set by [connect] *)
  inbox : Sync.Semaphore.t;
  mutable scan_idx : int;
  mutable next_seq : int;
  fans : (int, fan_state) Hashtbl.t;
  votes : (int, vote_state) Hashtbl.t;
  pings : (int, unit Sync.Ivar.t) Hashtbl.t;
  cap_acks : (int, bool Sync.Ivar.t) Hashtbl.t;
  revoking : (Cap.objtype * int * int, unit) Hashtbl.t;
  (* Extent locks taken by a yes vote in a retype prepare; cleared by the
     decide round. Guarantees a single global ordering of conflicting
     retypes (§4.7). *)
  retype_locks : (Cap.objtype * int * int, int) Hashtbl.t;  (* extent -> xid *)
  replicas : (string, int) Hashtbl.t;
  wakers : (Types.domid, unit -> unit) Hashtbl.t;
  mutable handled : int;
  mutable sleeps : int;
  mutable slept_cycles : int;
  (* A halted monitor's core has stopped: its event loop and heartbeat
     task observe the flag and terminate. *)
  mutable halted : bool;
  mutable ft : ft_state option;
}

let create m driver =
  {
    m;
    driver;
    core_id = Cpu_driver.core driver;
    peers = Array.make (Machine.n_cores m) None;
    peer_slot_base = [||];
    peer_send_base = [||];
    peer_recv_base = [||];
    rx_peers = [||];
    rx_slot_base = [||];
    rx_send_base = [||];
    rx_recv_base = [||];
    mesh_arena = -1;
    shard = None;
    on_replica = None;
    mesh = [||];
    inbox = Sync.Semaphore.create 0;
    scan_idx = 0;
    next_seq = 0;
    fans = Hashtbl.create 8;
    votes = Hashtbl.create 8;
    pings = Hashtbl.create 8;
    cap_acks = Hashtbl.create 8;
    revoking = Hashtbl.create 8;
    retype_locks = Hashtbl.create 8;
    replicas = Hashtbl.create 8;
    wakers = Hashtbl.create 8;
    handled = 0;
    sleeps = 0;
    slept_cycles = 0;
    halted = false;
    ft = None;
  }

let core t = t.core_id
let driver t = t.driver
let machine t = t.m

let fresh_xid t =
  let x = (t.core_id * 1_000_000) + t.next_seq in
  t.next_seq <- t.next_seq + 1;
  x

let origin_of_xid xid = xid / 1_000_000

(* A mesh edge's reserved buffers are 21 contiguous lines: a 16-slot ring
   and the 2-line send / 3-line recv control blocks ([Urpc.preallocate]'s
   defaults), in that order. The closed-form arena lays edges out in
   src-major order, exactly like the per-edge reservation loop would. *)
let mesh_edge_lines = 21

(* Reserved buffer bases for the mesh edge [t.core_id] -> [dst];
   (-1, -1, -1) when no reservation exists. *)
let peer_bases t dst =
  if dst = t.core_id then (-1, -1, -1)
  else if t.mesh_arena >= 0 then begin
    let n = Array.length t.peers in
    let cl = t.m.Machine.plat.Platform.cacheline in
    let d = if dst > t.core_id then dst - 1 else dst in
    let b = t.mesh_arena + (((t.core_id * (n - 1)) + d) * mesh_edge_lines * cl) in
    (b, b + (16 * cl), b + (18 * cl))
  end
  else if Array.length t.peer_slot_base = 0 then (-1, -1, -1)
  else (t.peer_slot_base.(dst), t.peer_send_base.(dst), t.peer_recv_base.(dst))

let chan_to t dst =
  match if dst >= 0 && dst < Array.length t.peers then t.peers.(dst) else None with
  | Some ch -> ch
  | None ->
    let slot_base, send_base, recv_base =
      if dst < 0 || dst >= Array.length t.peers then (-1, -1, -1) else peer_bases t dst
    in
    if slot_base < 0 then
      invalid_arg (Printf.sprintf "Monitor %d: no channel to %d" t.core_id dst)
    else begin
      (* First use of this mesh edge: build the channel over the buffers
         reserved at connect time. Host-side construction only — buffer
         addresses (the simulated state) were fixed by [connect]. *)
      let name = "mon" ^ string_of_int t.core_id ^ "->" ^ string_of_int dst in
      let ch =
        Urpc.create_prealloc t.m ~sender:t.core_id ~receiver:dst ~name ~slot_base
          ~send_base ~recv_base ()
      in
      let mdst = t.mesh.(dst) in
      (match t.shard with
      | Some sh when Shard.shard_of_core sh dst <> Shard.shard_of_core sh t.core_id ->
        (* Edge crosses the PDES cut: this is only the sender half. Each
           message leaves at its visibility time as a timestamped Pdes
           message; the receiver half materializes lazily on *its* shard,
           inside the delivery thunk, over the buffers [connect]
           reserved. *)
        let plat = t.m.Machine.plat in
        let spkg = Platform.package_of plat t.core_id in
        let dpkg = Platform.package_of plat dst in
        let leg = Shard.leg_latency sh spkg dpkg in
        let rs = Shard.shard_of_core sh dst in
        let src = t.core_id in
        Urpc.set_remote_delivery ch (fun ~visible_at payload ->
            Pdes.send (Shard.pdes sh) ~dst:rs ~src_core:src ~at:(visible_at + leg)
              (fun () ->
                let rx =
                  match mdst.rx_peers.(src) with
                  | Some rx -> rx
                  | None ->
                    let rx =
                      Urpc.create_prealloc mdst.m ~sender:src ~receiver:dst ~name
                        ~slot_base:mdst.rx_slot_base.(src)
                        ~send_base:mdst.rx_send_base.(src)
                        ~recv_base:mdst.rx_recv_base.(src) ()
                    in
                    Urpc.set_notify rx (fun () -> Sync.Semaphore.release mdst.inbox);
                    mdst.rx_peers.(src) <- Some rx;
                    rx
                in
                Urpc.deliver_remote rx payload))
      | _ -> Urpc.set_notify ch (fun () -> Sync.Semaphore.release mdst.inbox));
      t.peers.(dst) <- Some ch;
      ch
    end

let send_to t dst msg = Urpc.send (chan_to t dst) msg

(* ------------------------------------------------------------------ *)
(* Local application of operations                                     *)

let apply_fan_op t op =
  match op with
  | Op_noop -> ()
  | Op_tlb_invalidate { vpages } ->
    let tlb = t.m.Machine.tlbs.(t.core_id) in
    List.iter
      (fun vpage ->
        if Tlb.invalidate tlb ~vpage then
          Engine.charge t.m.Machine.plat.Platform.tlb_invlpg)
      vpages
  | Op_set_replica { key; value } ->
    Hashtbl.replace t.replicas key value;
    (match t.on_replica with Some f -> f ~key ~value | None -> ())
  | Op_pt_update { vpages } ->
    (* Replicated-table mode: edit the local replica's entries and drop any
       stale translation the TLB still caches. *)
    let tlb = t.m.Machine.tlbs.(t.core_id) in
    List.iter
      (fun vpage ->
        Machine.compute t.m ~core:t.core_id Vspace_costs.pt_update_cost;
        if Tlb.invalidate tlb ~vpage then
          Engine.charge t.m.Machine.plat.Platform.tlb_invlpg)
      vpages

let extent_key (c : Cap.t) = (c.Cap.otype, c.Cap.base, c.Cap.bytes)

let vote_on t ~xid op =
  match op with
  | Ag_noop -> true
  | Ag_retype { cap; expected_frontier; bytes = _ } ->
    let key = extent_key cap in
    if Hashtbl.mem t.revoking key then false
    else begin
      match Hashtbl.find_opt t.retype_locks key with
      | Some owner when owner <> xid -> false  (* a concurrent retype holds it *)
      | _ ->
        if Cap.Db.vote_retype (Cpu_driver.capdb t.driver) cap ~expected_frontier then begin
          Hashtbl.replace t.retype_locks key xid;
          true
        end
        else false
    end
  | Ag_revoke { cap } ->
    if Hashtbl.mem t.revoking (extent_key cap) then false
    else begin
      Hashtbl.replace t.revoking (extent_key cap) ();
      true
    end

let apply_decision t ~xid ~commit op =
  let db = Cpu_driver.capdb t.driver in
  match op with
  | Ag_noop -> ()
  | Ag_retype { cap; expected_frontier = _; bytes } ->
    (* Release the prepare-phase extent lock if this transaction holds it. *)
    let key = extent_key cap in
    (match Hashtbl.find_opt t.retype_locks key with
     | Some owner when owner = xid -> Hashtbl.remove t.retype_locks key
     | _ -> ());
    (* The origin performs the real retype itself after the commit round;
       replicas just advance their view of the consumed extent. *)
    if commit && origin_of_xid xid <> t.core_id then
      ignore (Cap.Db.advance_frontier db cap ~bytes : (unit, Types.error) result)
  | Ag_revoke { cap } ->
    Hashtbl.remove t.revoking (extent_key cap);
    if commit && origin_of_xid xid <> t.core_id then
      ignore (Cap.Db.revoke_replica db cap : int)

(* ------------------------------------------------------------------ *)
(* Protocol engine                                                     *)

let fan_complete t xid st =
  Hashtbl.remove t.fans xid;
  match (st.fs_parent, st.fs_done) with
  | Some p, _ -> send_to t p (Fan_ack { xid })
  | None, Some iv -> Sync.Ivar.fill iv ()
  | None, None -> ()

let vote_round_done t xid vs =
  match vs.vs_parent with
  | Some p ->
    Hashtbl.remove t.votes xid;
    send_to t p (Vote { xid; yes = vs.vs_yes })
  | None ->
    (* Origin: all votes in. Run the decide round over the same plan. *)
    let plan = Option.get vs.vs_plan in
    let commit = vs.vs_yes in
    apply_decision t ~xid ~commit vs.vs_op;
    vs.vs_remaining <- Routing.branch_count plan;
    if vs.vs_remaining = 0 then begin
      Hashtbl.remove t.votes xid;
      match vs.vs_result with Some iv -> Sync.Ivar.fill iv commit | None -> ()
    end
    else
      List.iter
        (fun (b : Routing.branch) ->
          send_to t b.Routing.aggregator
            (Decide { xid; parent = t.core_id; leaves = b.Routing.leaves; commit; op = vs.vs_op }))
        plan.Routing.branches

let decide_round_done t xid vs =
  Hashtbl.remove t.votes xid;
  match vs.vs_parent with
  | Some p -> send_to t p (Decide_ack { xid })
  | None -> (match vs.vs_result with Some iv -> Sync.Ivar.fill iv vs.vs_yes | None -> ())

let handle t msg =
  t.handled <- t.handled + 1;
  Engine.charge handle_cost;
  match msg with
  | Heartbeat { from } ->
    (match t.ft with
     | Some ft ->
       (match ft.ft_detectors.(from) with
        | Some d -> Mk_fault.Detector.heartbeat d ~now:(Engine.now_ ())
        | None -> ())
     | None -> ())
  | Ping { seq; from } -> send_to t from (Pong { seq })
  | Pong { seq } ->
    (match Hashtbl.find_opt t.pings seq with
     | Some iv ->
       Hashtbl.remove t.pings seq;
       Sync.Ivar.fill iv ()
     | None -> ())
  | Fan { xid; parent; leaves; op } ->
    apply_fan_op t op;
    if leaves = [] then send_to t parent (Fan_ack { xid })
    else begin
      Hashtbl.replace t.fans xid
        { fs_remaining = List.length leaves; fs_parent = Some parent; fs_done = None };
      List.iter
        (fun leaf -> send_to t leaf (Fan { xid; parent = t.core_id; leaves = []; op }))
        leaves
    end
  | Fan_ack { xid } ->
    (match Hashtbl.find_opt t.fans xid with
     | None -> ()
     | Some st ->
       st.fs_remaining <- st.fs_remaining - 1;
       if st.fs_remaining = 0 then fan_complete t xid st)
  | Prepare { xid; parent; leaves; op } ->
    let my_vote = vote_on t ~xid op in
    if leaves = [] then send_to t parent (Vote { xid; yes = my_vote })
    else begin
      Hashtbl.replace t.votes xid
        { vs_remaining = List.length leaves; vs_yes = my_vote; vs_parent = Some parent;
          vs_plan = None; vs_op = op; vs_result = None };
      List.iter
        (fun leaf -> send_to t leaf (Prepare { xid; parent = t.core_id; leaves = []; op }))
        leaves
    end
  | Vote { xid; yes } ->
    (match Hashtbl.find_opt t.votes xid with
     | None -> ()
     | Some vs ->
       vs.vs_yes <- vs.vs_yes && yes;
       vs.vs_remaining <- vs.vs_remaining - 1;
       if vs.vs_remaining = 0 then vote_round_done t xid vs)
  | Decide { xid; parent; leaves; commit; op } ->
    apply_decision t ~xid ~commit op;
    if leaves = [] then send_to t parent (Decide_ack { xid })
    else begin
      Hashtbl.replace t.votes xid
        { vs_remaining = List.length leaves; vs_yes = commit; vs_parent = Some parent;
          vs_plan = None; vs_op = op; vs_result = None };
      List.iter
        (fun leaf ->
          send_to t leaf (Decide { xid; parent = t.core_id; leaves = []; commit; op }))
        leaves
    end
  | Decide_ack { xid } ->
    (match Hashtbl.find_opt t.votes xid with
     | None -> ()
     | Some vs ->
       vs.vs_remaining <- vs.vs_remaining - 1;
       if vs.vs_remaining = 0 then decide_round_done t xid vs)
  | Cap_transfer { xid; from; cap } ->
    let ok =
      match Cap.Db.insert_remote (Cpu_driver.capdb t.driver) cap with
      | Ok () -> true
      | Error _ -> false
    in
    send_to t from (Cap_transfer_ack { xid; ok })
  | Cap_transfer_ack { xid; ok } ->
    (match Hashtbl.find_opt t.cap_acks xid with
     | Some iv ->
       Hashtbl.remove t.cap_acks xid;
       Sync.Ivar.fill iv ok
     | None -> ())
  | Wake { domid } ->
    (match Hashtbl.find_opt t.wakers domid with Some w -> w () | None -> ())

(* The monitor's event loop: one schedulable task multiplexing all incoming
   channels. A semaphore counts visible messages across channels, so the
   simulated monitor only runs when there is work — the real system's poll
   loop cost is approximated by a per-message scan charge. *)
let run_loop t =
  let n = Array.length t.mesh - 1 in
  (* Incoming channels in sender order (the scan order), resolved through
     the senders' peer tables: an edge nobody has sent on yet is simply
     not materialized, which for the scan is the same as empty. A
     cross-shard edge must NOT be resolved through the sender (that would
     read another shard's state mid-window): its receiver half lives in
     our own [rx_peers], reserved at connect time ([rx_slot_base] >= 0)
     and materialized by the first arriving message. *)
  let in_chan j =
    let src = if j < t.core_id then j else j + 1 in
    match if Array.length t.rx_peers = 0 then None else t.rx_peers.(src) with
    | Some _ as c -> c
    | None ->
      if Array.length t.rx_slot_base > 0 && t.rx_slot_base.(src) >= 0 then None
      else t.mesh.(src).peers.(t.core_id)
  in
  let rec next_msg scanned idx =
    if scanned > n then None
    else
      match in_chan (idx mod n) with
      | Some ch when Urpc.pending ch > 0 ->
        t.scan_idx <- (idx + 1) mod n;
        Some (Urpc.recv ch)
      | _ -> next_msg (scanned + 1) (idx + 1)
  in
  let rec loop () =
    let idle_from = Engine.now_ () in
    Sync.Semaphore.acquire t.inbox;
    (* A stopped core executes nothing: [kill] released the inbox so the
       loop observes the flag. Queued messages stay undelivered. *)
    if t.halted then Engine.halt ();
    let waited = Engine.now_ () - idle_from in
    if waited > sleep_poll_window then begin
      (* The core slept through the wait; pay the MWAIT exit on wake. *)
      t.sleeps <- t.sleeps + 1;
      t.slept_cycles <- t.slept_cycles + (waited - sleep_poll_window);
      Engine.wait wakeup_cost
    end;
    Engine.wait poll_scan_cost;
    (match next_msg 0 t.scan_idx with
     | Some msg -> handle t msg
     | None -> ());
    loop ()
  in
  loop ()

(* Unsharded meshes above this size reserve their buffers as one
   closed-form arena instead of n*(n-1) individual reservations: same
   src-major layout and home nodes (so the simulated machine is
   identical), but O(1) allocator/pinning state and no per-monitor base
   arrays — the structures that made a 1024-core boot quadratic. Every
   paper/scaling platform sits at or below the threshold and keeps the
   exact historical path. *)
let mesh_arena_threshold = 128

let connect_arena monitors =
  let n = Array.length monitors in
  let m = monitors.(0).m in
  let plat = m.Machine.plat in
  let pkg c = Platform.package_of plat c in
  let base =
    Machine.alloc_region m
      ~lines:(n * (n - 1) * mesh_edge_lines)
      ~node_of:(fun off ->
        (* Buffers NUMA-local to the receiver, control blocks split
           sender/receiver — the same nodes [Urpc.preallocate] pins on
           the per-edge path below. *)
        let edge = off / mesh_edge_lines and o = off mod mesh_edge_lines in
        let src = edge / (n - 1) in
        let d = edge mod (n - 1) in
        let dst = if d >= src then d + 1 else d in
        if o >= 16 && o < 18 then pkg src else pkg dst)
  in
  Array.iter (fun mon -> mon.mesh_arena <- base) monitors

let connect ?shard monitors =
  let n = Array.length monitors in
  Array.iter (fun m -> m.shard <- shard) monitors;
  if shard = None && n > mesh_arena_threshold then connect_arena monitors
  else begin
  (* The full mesh is n*(n-1) channels — host-side cost matters at 128
     cores, so only the buffer reservations (which fix the simulated
     memory layout, in src-major order) happen here; channel records are
     materialized on first use by [chan_to]. *)
  Array.iter
    (fun mon ->
      mon.peer_slot_base <- Array.make n (-1);
      mon.peer_send_base <- Array.make n (-1);
      mon.peer_recv_base <- Array.make n (-1);
      mon.rx_peers <- Array.make n None;
      mon.rx_slot_base <- Array.make n (-1);
      mon.rx_send_base <- Array.make n (-1);
      mon.rx_recv_base <- Array.make n (-1))
    monitors;
  for src = 0 to n - 1 do
    let msrc = monitors.(src) in
    let plat = msrc.m.Machine.plat in
    for dst = 0 to n - 1 do
      if src <> dst then begin
        match shard with
        | Some sh when Shard.shard_of_core sh src <> Shard.shard_of_core sh dst ->
          (* Edge across the PDES cut: two halves, each homed on its own
             side so neither ring triggers remote coherence. *)
          let mdst = monitors.(dst) in
          let slot_base, send_base, recv_base =
            Urpc.preallocate msrc.m ~sender:src ~receiver:dst
              ~node:(Platform.package_of plat src) ()
          in
          msrc.peer_slot_base.(dst) <- slot_base;
          msrc.peer_send_base.(dst) <- send_base;
          msrc.peer_recv_base.(dst) <- recv_base;
          let slot_base, send_base, recv_base =
            Urpc.preallocate mdst.m ~sender:src ~receiver:dst
              ~node:(Platform.package_of plat dst) ()
          in
          mdst.rx_slot_base.(src) <- slot_base;
          mdst.rx_send_base.(src) <- send_base;
          mdst.rx_recv_base.(src) <- recv_base
        | _ ->
          (* Buffers NUMA-local to the receiver: the monitor mesh is what
             the NUMA-aware protocols of §5.1 run over. *)
          let slot_base, send_base, recv_base =
            Urpc.preallocate msrc.m ~sender:src ~receiver:dst
              ~node:(Platform.package_of plat dst) ()
          in
          msrc.peer_slot_base.(dst) <- slot_base;
          msrc.peer_send_base.(dst) <- send_base;
          msrc.peer_recv_base.(dst) <- recv_base
      end
    done
  done
  end;
  Array.iteri
    (fun i mon ->
      mon.mesh <- monitors;
      Engine.spawn mon.m.Machine.eng ~name:("monitor" ^ string_of_int i) (fun () ->
          run_loop mon))
    monitors

let ping t dst =
  let seq = fresh_xid t in
  let iv = Sync.Ivar.create () in
  Hashtbl.replace t.pings seq iv;
  let t0 = Engine.now_ () in
  send_to t dst (Ping { seq; from = t.core_id });
  Sync.Ivar.read iv;
  Engine.now_ () - t0

let run_fan_async t ~plan ~op =
  let xid = fresh_xid t in
  let iv = Sync.Ivar.create () in
  apply_fan_op t op;
  let branches = plan.Routing.branches in
  if branches = [] then Sync.Ivar.fill iv ()
  else begin
    Hashtbl.replace t.fans xid
      { fs_remaining = List.length branches; fs_parent = None; fs_done = Some iv };
    List.iter
      (fun (b : Routing.branch) ->
        send_to t b.Routing.aggregator
          (Fan { xid; parent = t.core_id; leaves = b.Routing.leaves; op }))
      branches
  end;
  iv

let run_fan t ~plan ~op = Sync.Ivar.read (run_fan_async t ~plan ~op)

let agree_async t ~plan ~op =
  let xid = fresh_xid t in
  let iv = Sync.Ivar.create () in
  let my_vote = vote_on t ~xid op in
  let branches = plan.Routing.branches in
  if branches = [] then begin
    apply_decision t ~xid ~commit:my_vote op;
    Sync.Ivar.fill iv my_vote
  end
  else begin
    Hashtbl.replace t.votes xid
      { vs_remaining = List.length branches; vs_yes = my_vote; vs_parent = None;
        vs_plan = Some plan; vs_op = op; vs_result = Some iv };
    List.iter
      (fun (b : Routing.branch) ->
        send_to t b.Routing.aggregator
          (Prepare { xid; parent = t.core_id; leaves = b.Routing.leaves; op }))
      branches
  end;
  iv

let agree t ~plan ~op = Sync.Ivar.read (agree_async t ~plan ~op)

let transferable (cap : Cap.t) =
  match cap.Cap.otype with
  | Cap.Frame | Cap.Dev_frame | Cap.RAM | Cap.Endpoint -> true
  | Cap.Page_table _ | Cap.CNode | Cap.Dispatcher -> false

let send_cap t ~dst cap =
  if not (transferable cap) then Error (Types.Err_cap_type "not transferable")
  else if Hashtbl.mem t.revoking (extent_key cap) then Error Types.Err_revoke_in_progress
  else begin
    let xid = fresh_xid t in
    let iv = Sync.Ivar.create () in
    Hashtbl.replace t.cap_acks xid iv;
    send_to t dst (Cap_transfer { xid; from = t.core_id; cap });
    if Sync.Ivar.read iv then Ok () else Error (Types.Err_invalid_args "cap transfer refused")
  end

let set_replica t key value = Hashtbl.replace t.replicas key value
let get_replica t key = Hashtbl.find_opt t.replicas key
let set_on_replica t f = t.on_replica <- Some f

let register_wake t domid w = Hashtbl.replace t.wakers domid w

let wake_remote t ~core domid = send_to t core (Wake { domid })

(* ------------------------------------------------------------------ *)
(* Failure detection                                                   *)

let dead_replica_key core = "dead:" ^ string_of_int core

let kill t =
  t.halted <- true;
  (* Unblock the event loop so it can observe the flag; if it was mid-poll
     the next acquire sees it instead. *)
  Sync.Semaphore.release t.inbox

let is_halted t = t.halted

let peer_suspected t ~core =
  match t.ft with Some ft -> ft.ft_peer_dead.(core) | None -> false

(* One heartbeat/detector round per interval: mark peers announced dead by
   another monitor (replica key), fire the detector on silent peers, and
   heartbeat everyone still believed alive. Skipping suspected peers also
   bounds the URPC flow credits a dead peer can strand (the detector fires
   after ~threshold*ln10 intervals, well under the 16-slot ring). *)
let rec ft_loop t ft =
  Engine.wait ft.ft_interval;
  if t.halted then Engine.halt ();
  let now = Engine.now_ () in
  if now > ft.ft_until then Engine.halt ();
  Array.iteri
    (fun peer det ->
      match det with
      | None -> ()
      | Some d ->
        if not ft.ft_peer_dead.(peer) then begin
          if Hashtbl.mem t.replicas ft.ft_dead_keys.(peer) then
            (* Another monitor detected it and the announcement reached us
               first: stop heartbeating, no duplicate recovery. *)
            ft.ft_peer_dead.(peer) <- true
          else if Mk_fault.Detector.suspect d ~now then begin
            ft.ft_peer_dead.(peer) <- true;
            ft.ft_on_death ~core:peer ~at:now
          end
          else send_to t peer (Heartbeat { from = t.core_id })
        end)
    ft.ft_detectors;
  ft_loop t ft

let start_ft t ~interval ~threshold ~until ~on_death =
  if t.ft <> None then invalid_arg "Monitor.start_ft: already started";
  let n = Array.length t.mesh in
  let now = Engine.now t.m.Machine.eng in
  let ft =
    {
      ft_interval = interval;
      ft_until = until;
      ft_detectors =
        Array.init n (fun peer ->
            if peer = t.core_id then None
            else
              Some
                (Mk_fault.Detector.create ~threshold ~expected_interval:interval
                   ~now ()));
      ft_peer_dead = Array.make n false;
      ft_dead_keys = Array.init n dead_replica_key;
      ft_on_death = on_death;
    }
  in
  t.ft <- Some ft;
  Engine.spawn t.m.Machine.eng
    ~name:("ft" ^ string_of_int t.core_id)
    (fun () -> ft_loop t ft)

let messages_handled t = t.handled
let sleep_stats t = (t.sleeps, t.slept_cycles)
