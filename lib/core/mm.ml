open Mk_hw

type t = {
  driver : Cpu_driver.t;
  core_id : int;
  root : Cap.t;
  pool : int;
  mutable used : int;
  mutable peers : t array;
  mutable monitors : Monitor.t array;
  mutable donor_ok : int -> int -> bool;
}

let init ?machine_of m drivers ~mem_per_core =
  let machine_of = match machine_of with Some f -> f | None -> fun _ -> m in
  Array.map
    (fun driver ->
      let core = Cpu_driver.core driver in
      let m = machine_of core in
      let node = Platform.package_of m.Machine.plat core in
      let base = Machine.alloc_bytes m ~node mem_per_core in
      let root = Cap.Db.mint_ram (Cpu_driver.capdb driver) ~base ~bytes:mem_per_core in
      { driver; core_id = core; root; pool = mem_per_core; used = 0;
        peers = [||]; monitors = [||]; donor_ok = (fun _ _ -> true) })
    drivers

let core t = t.core_id
let pool_bytes t = t.pool
let free_bytes t = t.pool - t.used

let set_peers ?donor_ok ts ~monitors =
  Array.iter
    (fun t ->
      t.peers <- ts;
      t.monitors <- monitors;
      match donor_ok with Some f -> t.donor_ok <- f | None -> ())
    ts

let local_carve t ~bytes =
  match Cpu_driver.cap_retype t.driver t.root ~to_:Cap.RAM ~count:1 ~bytes_each:bytes with
  | Ok [ c ] ->
    t.used <- t.used + bytes;
    Ok c
  | Ok _ -> Error (Types.Err_invalid_args "mm: unexpected retype result")
  | Error e -> Error e

(* Borrow from the peer with the most free memory, moving the capability
   through the monitors so the remote database learns about the carve. *)
let borrow t ~bytes =
  let best = ref None in
  Array.iter
    (fun p ->
      if p.core_id <> t.core_id && t.donor_ok t.core_id p.core_id
         && free_bytes p >= bytes then
        match !best with
        | Some b when free_bytes b >= free_bytes p -> ()
        | _ -> best := Some p)
    t.peers;
  match !best with
  | None -> Error Types.Err_no_memory
  | Some donor ->
    (match local_carve donor ~bytes with
     | Error e -> Error e
     | Ok cap ->
       if Array.length t.monitors = 0 then Ok cap
       else
         (match Monitor.send_cap t.monitors.(donor.core_id) ~dst:t.core_id cap with
          | Ok () -> Ok cap
          | Error e -> Error e))

let alloc_ram t ~bytes =
  if bytes <= 0 then Error (Types.Err_invalid_args "alloc_ram: bytes must be positive")
  else if free_bytes t >= bytes then local_carve t ~bytes
  else borrow t ~bytes

let alloc_frame t ~bytes =
  match alloc_ram t ~bytes with
  | Error e -> Error e
  | Ok ram ->
    (match Cpu_driver.cap_retype t.driver ram ~to_:Cap.Frame ~count:1 ~bytes_each:bytes with
     | Ok [ f ] -> Ok f
     | Ok _ -> Error (Types.Err_invalid_args "mm: unexpected retype result")
     | Error e -> Error e)
