open Mk_sim
open Mk_hw

(* One logical machine sharded for windowed conservative PDES (see
   {!Pdes}): the platform's packages are split into [n_shards] contiguous
   ranges ({!Topology.contiguous_partition}), each shard gets a full
   [Machine.t] over its own engine, and the three cross-core mechanisms —
   blocking coherence to a remote-homed line, IPIs to a remote core, URPC
   across the cut — are rewired to travel as timestamped {!Pdes.send}
   messages instead of direct calls.

   The lookahead bound is the minimum one-way interconnect leg between any
   two packages of different shards: [cc_base + hop_one_way * hops], the
   same cost model the coherence fabric charges, taken at the minimum
   cross-shard hop distance via {!Topology.min_cross_latency}. Every
   cross-shard message below carries at least one such leg, so the bound
   is sound by construction (and {!Pdes.send} re-checks it). *)

type 'a link = {
  tx : 'a Urpc.t;  (* lives on the sender's shard *)
  rx : 'a Urpc.t;  (* lives on the receiver's shard; == tx when same shard *)
}

type t = {
  pdes : Pdes.t;
  plat : Platform.t;
  machines : Machine.t array;  (* one full-platform machine per shard *)
  shard_of_pkg : int array;
  shard_of_core : int array;
  leg : int array array;  (* (pkg a).(pkg b) -> one-way message leg, cycles *)
}

let n_shards t = Array.length t.machines
let pdes t = t.pdes
let lookahead t = Pdes.lookahead t.pdes
let shard_of_core t core = t.shard_of_core.(core)
let shard_of_pkg t p = t.shard_of_pkg.(p)

let machine t i =
  if i < 0 || i >= Array.length t.machines then invalid_arg "Shard.machine: bad shard";
  t.machines.(i)

let machine_of_core t core = t.machines.(t.shard_of_core.(core))
let engine t i = Pdes.engine t.pdes i
let leg_latency t a b = t.leg.(a).(b)

(* -- cross-shard wiring -- *)

let install_coherence t i =
  let m = t.machines.(i) in
  let my_eng = Pdes.engine t.pdes i in
  Coherence.set_remote_home m.Machine.coh
    ~is_remote:(fun home -> t.shard_of_pkg.(home) <> i)
    ~route:(fun ~core ~line ~home ~write ~wake ->
      (* Request leg to the home shard's directory; service there at the
         arrival time; reply leg back, carrying the service latency. The
         requesting task stays parked the whole round trip. *)
      let src_pkg = Platform.package_of t.plat core in
      let home_shard = t.shard_of_pkg.(home) in
      let req_at = Engine.now my_eng + t.leg.(src_pkg).(home) in
      Pdes.send t.pdes ~dst:home_shard ~src_core:core ~at:req_at (fun () ->
          let lat =
            Coherence.remote_service t.machines.(home_shard).Machine.coh ~now:req_at
              ~core ~line ~write
          in
          Pdes.send t.pdes ~dst:i ~src_core:core
            ~at:(req_at + lat + t.leg.(home).(src_pkg))
            (fun () -> wake ())))

let install_ipi t i =
  let m = t.machines.(i) in
  let my_eng = Pdes.engine t.pdes i in
  let la = Pdes.lookahead t.pdes in
  Ipi.set_remote m.Machine.ipi
    ~is_remote:(fun dst -> t.shard_of_core.(dst) <> i)
    ~route:(fun ~src ~dst ~vector ~wire ->
      (* The IPI wire cost can undercut a coherence leg (interrupts are
         small command packets); the conservative window still needs the
         full lookahead, so a faster wire is held to the bound. *)
      let ds = t.shard_of_core.(dst) in
      let at = Engine.now my_eng + max wire la in
      Pdes.send t.pdes ~dst:ds ~src_core:src ~at (fun () ->
          Ipi.deliver t.machines.(ds).Machine.ipi ~eng:(Pdes.engine t.pdes ds) ~src ~dst
            ~vector))

let create ~n_shards:k plat =
  let npkg = plat.Platform.n_packages in
  if k <= 0 then invalid_arg "Shard.create: n_shards must be positive";
  if k > npkg then invalid_arg "Shard.create: more shards than packages";
  let topo = plat.Platform.topo in
  let part = Topology.contiguous_partition topo ~parts:k in
  let leg =
    Array.init npkg (fun a ->
        Array.init npkg (fun b ->
            plat.Platform.cc_base + (plat.Platform.hop_one_way * Topology.hops topo a b)))
  in
  let la =
    if k = 1 then plat.Platform.cc_base
    else begin
      let m = Topology.min_cross_latency topo ~part in
      let best = ref max_int in
      Array.iteri
        (fun a row ->
          Array.iteri (fun b h -> if a <> b && h < !best then best := h) row)
        m;
      plat.Platform.cc_base + (plat.Platform.hop_one_way * !best)
    end
  in
  let pdes = Pdes.create ~n_shards:k ~lookahead:la in
  let machines = Array.init k (fun i -> Machine.create ~eng:(Pdes.engine pdes i) plat) in
  let t =
    {
      pdes;
      plat;
      machines;
      shard_of_pkg = part;
      shard_of_core =
        Array.init (Platform.n_cores plat) (fun c ->
            part.(Platform.package_of plat c));
      leg;
    }
  in
  for i = 0 to k - 1 do
    install_coherence t i;
    install_ipi t i
  done;
  t

(* -- URPC across the cut --

   One logical channel becomes a (sender-half, receiver-half) pair: the
   sender half runs the real send path (ring stores, flow control, wire
   sequencing) on the sender's shard; at each message's visibility time
   the payload crosses as a Pdes message carrying one interconnect leg and
   materializes in the receiver half's ring, where the receiver pays the
   normal fetch + dispatch path. Each half's buffer is homed on its own
   side of the cut, so neither ring ever triggers remote coherence. *)
let link_urpc (type a) t ~sender ~receiver ?slots ?name () : a link =
  let ss = t.shard_of_core.(sender) and rs = t.shard_of_core.(receiver) in
  if ss = rs then begin
    let ch : a Urpc.t =
      Urpc.create t.machines.(ss) ~sender ~receiver ?slots ?name ()
    in
    { tx = ch; rx = ch }
  end
  else begin
    let spkg = Platform.package_of t.plat sender in
    let rpkg = Platform.package_of t.plat receiver in
    let tx : a Urpc.t =
      Urpc.create t.machines.(ss) ~sender ~receiver ?slots ~node:spkg ?name ()
    in
    let rx : a Urpc.t =
      Urpc.create t.machines.(rs) ~sender ~receiver ?slots ~node:rpkg ?name ()
    in
    let leg = t.leg.(spkg).(rpkg) in
    Urpc.set_remote_delivery tx (fun ~visible_at payload ->
        Pdes.send t.pdes ~dst:rs ~src_core:sender ~at:(visible_at + leg) (fun () ->
            Urpc.deliver_remote rx payload));
    { tx; rx }
  end

let exec ?domains t = Pdes.exec ?domains t.pdes
let barriers t = Pdes.barriers t.pdes
