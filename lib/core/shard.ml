open Mk_sim
open Mk_hw

(* One logical machine sharded for windowed conservative PDES (see
   {!Pdes}): the platform's packages are split into [n_shards] contiguous
   ranges ({!Topology.contiguous_partition}), each shard gets a full
   [Machine.t] over its own engine, and the three cross-core mechanisms —
   blocking coherence to a remote-homed line, IPIs to a remote core, URPC
   across the cut — are rewired to travel as timestamped {!Pdes.send}
   messages instead of direct calls.

   The lookahead bound is the minimum one-way interconnect leg between any
   two packages of different shards: [cc_base + hop_one_way * hops], the
   same cost model the coherence fabric charges, taken at the minimum
   cross-shard hop distance via {!Topology.min_cross_latency}. Every
   cross-shard message below carries at least one such leg, so the bound
   is sound by construction (and {!Pdes.send} re-checks it). *)

type 'a link = {
  tx : 'a Urpc.t;  (* lives on the sender's shard *)
  rx : 'a Urpc.t;  (* lives on the receiver's shard; == tx when same shard *)
}

type t = {
  pdes : Pdes.t;
  plat : Platform.t;
  machines : Machine.t array;  (* one full-platform machine per shard *)
  shard_of_pkg : int array;
  shard_of_core : int array;
  first_core : int array;  (* lowest-numbered core of each shard *)
  leg : int array array;  (* (pkg a).(pkg b) -> one-way message leg, cycles *)
  mutable shared_brk : int;  (* bump pointer of the shared arena *)
}

(* The shared arena (see [alloc_shared]) lives far above any machine's brk
   so per-machine allocations can never collide with a mirrored range. *)
let shared_arena_base = 1 lsl 44

let n_shards t = Array.length t.machines
let pdes t = t.pdes
let lookahead t = Pdes.lookahead t.pdes
let shard_of_core t core = t.shard_of_core.(core)
let shard_of_pkg t p = t.shard_of_pkg.(p)

let machine t i =
  if i < 0 || i >= Array.length t.machines then invalid_arg "Shard.machine: bad shard";
  t.machines.(i)

let machine_of_core t core = t.machines.(t.shard_of_core.(core))
let engine t i = Pdes.engine t.pdes i
let leg_latency t a b = t.leg.(a).(b)
let first_core t s = t.first_core.(s)

(* Virtual "now" seen from shard [i]: engine time plus the calling task's
   banked latency charge (0 in event context), so cross-shard timestamps
   match what an unfused run would compute — the fusion referee byte-diffs
   the two. *)
let vnow t i = Engine.now (Pdes.engine t.pdes i) + Engine.pending_charge ()

(* -- cross-shard wiring -- *)

let install_coherence t i =
  let m = t.machines.(i) in
  let my_eng = Pdes.engine t.pdes i in
  Coherence.set_remote_home m.Machine.coh
    ~is_remote:(fun home -> t.shard_of_pkg.(home) <> i)
    ~route:(fun ~core ~line ~home ~write ~wake ->
      (* Request leg to the home shard's directory; service there at the
         arrival time; reply leg back, carrying the service latency. The
         requesting task stays parked the whole round trip. *)
      let src_pkg = Platform.package_of t.plat core in
      let home_shard = t.shard_of_pkg.(home) in
      let req_at = Engine.now my_eng + t.leg.(src_pkg).(home) in
      Pdes.send t.pdes ~dst:home_shard ~src_core:core ~at:req_at (fun () ->
          let lat =
            Coherence.remote_service t.machines.(home_shard).Machine.coh ~now:req_at
              ~core ~line ~write
          in
          Pdes.send t.pdes ~dst:i ~src_core:core
            ~at:(req_at + lat + t.leg.(home).(src_pkg))
            (fun () -> wake ())))

let install_ipi t i =
  let m = t.machines.(i) in
  let my_eng = Pdes.engine t.pdes i in
  let la = Pdes.lookahead t.pdes in
  Ipi.set_remote m.Machine.ipi
    ~is_remote:(fun dst -> t.shard_of_core.(dst) <> i)
    ~route:(fun ~src ~dst ~vector ~wire ->
      (* The IPI wire cost can undercut a coherence leg (interrupts are
         small command packets); the conservative window still needs the
         full lookahead, so a faster wire is held to the bound. *)
      let ds = t.shard_of_core.(dst) in
      let at = Engine.now my_eng + max wire la in
      Pdes.send t.pdes ~dst:ds ~src_core:src ~at (fun () ->
          Ipi.deliver t.machines.(ds).Machine.ipi ~eng:(Pdes.engine t.pdes ds) ~src ~dst
            ~vector))

let create ?faults ~n_shards:k plat =
  let npkg = plat.Platform.n_packages in
  if k <= 0 then invalid_arg "Shard.create: n_shards must be positive";
  if k > npkg then invalid_arg "Shard.create: more shards than packages";
  (match faults with
  | Some fs when Array.length fs <> k ->
    invalid_arg "Shard.create: faults must have one injector per shard"
  | _ -> ());
  let topo = plat.Platform.topo in
  let part = Topology.contiguous_partition topo ~parts:k in
  let leg =
    Array.init npkg (fun a ->
        Array.init npkg (fun b ->
            plat.Platform.cc_base + (plat.Platform.hop_one_way * Topology.hops topo a b)))
  in
  let la =
    if k = 1 then plat.Platform.cc_base
    else begin
      let m = Topology.min_cross_latency topo ~part in
      let best = ref max_int in
      Array.iteri
        (fun a row ->
          Array.iteri (fun b h -> if a <> b && h < !best then best := h) row)
        m;
      plat.Platform.cc_base + (plat.Platform.hop_one_way * !best)
    end
  in
  let pdes = Pdes.create ~n_shards:k ~lookahead:la in
  let machines =
    Array.init k (fun i ->
        let fault = Option.map (fun fs -> fs.(i)) faults in
        Machine.create ~eng:(Pdes.engine pdes i) ?fault plat)
  in
  let shard_of_core =
    Array.init (Platform.n_cores plat) (fun c -> part.(Platform.package_of plat c))
  in
  let first_core = Array.make k (-1) in
  Array.iteri (fun c s -> if first_core.(s) < 0 then first_core.(s) <- c) shard_of_core;
  let t =
    {
      pdes;
      plat;
      machines;
      shard_of_pkg = part;
      shard_of_core;
      first_core;
      leg;
      shared_brk = shared_arena_base;
    }
  in
  for i = 0 to k - 1 do
    install_coherence t i;
    install_ipi t i
  done;
  t

(* -- cross-shard control transfer --

   The OS layer's cross-core control paths (spawn a dispatcher, announce a
   replica, respawn a service, ...) must execute on the target core's
   shard. In host context (setup, before/after [exec]) every shard is
   quiescent, so running the closure directly is safe and free — exactly
   what the unsharded boot does. Inside a window the closure travels as a
   timestamped Pdes message carrying one interconnect leg, like any other
   cross-shard interaction. *)

(* Control-transfer leg between two cores' packages, floored at the
   executor's lookahead: [src_core] names the *logical* originator, and
   when the calling task's shard differs from [src_core]'s package's (a
   coordinator acting on behalf of a remote core, e.g. {!link_urpc}
   building a remote half mid-run) the declared pair can be intra-package
   — below the window bound the message physically needs. *)
let ctl_leg t a b = max t.leg.(a).(b) (Pdes.lookahead t.pdes)

let post t ~src_core ~core fn =
  match Pdes.current t.pdes with
  | None -> fn ()
  | Some cur ->
    let dst = t.shard_of_core.(core) in
    if dst = cur then fn ()
    else begin
      let spkg = Platform.package_of t.plat src_core in
      let dpkg = Platform.package_of t.plat core in
      Pdes.send t.pdes ~dst ~src_core ~at:(vnow t cur + ctl_leg t spkg dpkg) fn
    end

(* Blocking cross-shard function call: run [f] in a task on [core]'s shard
   and hand the result back, charging one leg each way. When the target is
   remote the caller must be a task (it parks on an ivar for the reply). *)
let call t ~src_core ~core f =
  match Pdes.current t.pdes with
  | None -> f ()
  | Some cur ->
    let dst = t.shard_of_core.(core) in
    if dst = cur then f ()
    else begin
      let spkg = Platform.package_of t.plat src_core in
      let dpkg = Platform.package_of t.plat core in
      let iv = Sync.Ivar.create () in
      Pdes.send t.pdes ~dst ~src_core ~at:(vnow t cur + ctl_leg t spkg dpkg) (fun () ->
          Engine.spawn (Pdes.engine t.pdes dst) ~name:"shard.call" (fun () ->
              let r = f () in
              Pdes.send t.pdes ~dst:cur ~src_core:core
                ~at:(vnow t dst + ctl_leg t dpkg spkg)
                (fun () -> Sync.Ivar.fill iv r)));
      Sync.Ivar.read iv
    end

(* Shared arena: a range of lines mirrored at identical addresses into
   every shard's coherence map, homed on package [node] — so a blocking
   access from a core of another shard routes through the remote-home hook
   like real cross-shard traffic. The pin applies directly on the calling
   context's shard and travels as Pdes messages to the others, ordered by
   the same [src_core] as later {!post}s from the caller: a pin always
   lands before a later-posted task that touches the line. Call from host
   context or from a single coordinating task only (the bump pointer is
   not a concurrent structure). *)
let alloc_shared t ~src_core ?(node = 0) nlines =
  let cl = t.plat.Platform.cacheline in
  let bytes = max 1 nlines * cl in
  let base = t.shared_brk in
  t.shared_brk <- t.shared_brk + bytes;
  let first_line = base / cl and last_line = (base + bytes - 1) / cl in
  let pin m = Coherence.set_home_range m.Machine.coh ~first_line ~last_line ~node in
  (match Pdes.current t.pdes with
  | None -> Array.iter pin t.machines
  | Some cur ->
    let la = Pdes.lookahead t.pdes in
    Array.iteri
      (fun s m ->
        if s = cur then pin m
        else Pdes.send t.pdes ~dst:s ~src_core ~at:(vnow t cur + la) (fun () -> pin m))
      t.machines);
  base

(* -- URPC across the cut --

   One logical channel becomes a (sender-half, receiver-half) pair: the
   sender half runs the real send path (ring stores, flow control, wire
   sequencing) on the sender's shard; at each message's visibility time
   the payload crosses as a Pdes message carrying one interconnect leg and
   materializes in the receiver half's ring, where the receiver pays the
   normal fetch + dispatch path. Each half's buffer is homed on its own
   side of the cut, so neither ring ever triggers remote coherence. *)
let link_urpc (type a) t ~sender ~receiver ?slots ?name () : a link =
  let ss = t.shard_of_core.(sender) and rs = t.shard_of_core.(receiver) in
  (* Each half's ring must be allocated by its owning shard: in host
     context direct construction is safe (every shard is quiescent), but
     inside a window a remote half is built via {!call} so the ring lines
     land in the owner's brk/coherence map without a cross-shard race. *)
  let on_shard s (f : unit -> a Urpc.t) : a Urpc.t =
    match Pdes.current t.pdes with
    | None -> f ()
    | Some cur when cur = s -> f ()
    | Some _ -> call t ~src_core:sender ~core:t.first_core.(s) f
  in
  if ss = rs then begin
    let ch : a Urpc.t =
      on_shard ss (fun () -> Urpc.create t.machines.(ss) ~sender ~receiver ?slots ?name ())
    in
    { tx = ch; rx = ch }
  end
  else begin
    let spkg = Platform.package_of t.plat sender in
    let rpkg = Platform.package_of t.plat receiver in
    let leg = t.leg.(spkg).(rpkg) in
    let rx : a Urpc.t =
      on_shard rs (fun () ->
          Urpc.create t.machines.(rs) ~sender ~receiver ?slots ~node:rpkg ?name ())
    in
    let tx : a Urpc.t =
      on_shard ss (fun () ->
          let tx =
            Urpc.create t.machines.(ss) ~sender ~receiver ?slots ~node:spkg ?name ()
          in
          Urpc.set_remote_delivery tx (fun ~visible_at payload ->
              Pdes.send t.pdes ~dst:rs ~src_core:sender ~at:(visible_at + leg)
                (fun () -> Urpc.deliver_remote rx payload));
          tx)
    in
    { tx; rx }
  end

let exec ?domains t = Pdes.exec ?domains t.pdes
let barriers t = Pdes.barriers t.pdes
