open Mk_sim
open Mk_hw

let pt_update_cost = Vspace_costs.pt_update_cost
let tlb_walk_cost = Vspace_costs.tlb_walk_cost

type pt_mode =
  | Shared_table
  | Replicated of { track_tlb_fills : bool }

type entry = { frame : Cap.t; mutable w : bool }

type t = {
  m : Machine.t;
  machine_of : int -> Machine.t;  (* per-core machine (sharded boot) *)
  dom : Types.domid;
  vcores : int list;
  mode : pt_mode;
  pages : (int, entry) Hashtbl.t;  (* vpage -> entry (ground truth) *)
  (* Which cores may hold a cached translation per vpage (only maintained
     when the mode tracks fills). *)
  filled_by : (int, int list ref) Hashtbl.t;
}

let create ?(mode = Shared_table) ?machine_of m ~domid ~cores ~pt_root =
  (match pt_root.Cap.otype with
   | Cap.Page_table 4 -> ()
   | _ -> Types.fail (Types.Err_cap_type "vspace root must be a level-4 page table"));
  let machine_of = match machine_of with Some f -> f | None -> fun _ -> m in
  { m; machine_of; dom = domid; vcores = cores; mode; pages = Hashtbl.create 256;
    filled_by = Hashtbl.create 64 }

let domid t = t.dom
let cores t = t.vcores
let mode t = t.mode

let pages_of ~vaddr ~bytes =
  let first = Types.vpage_of_vaddr vaddr in
  let last = Types.vpage_of_vaddr (vaddr + max 1 bytes - 1) in
  List.init (last - first + 1) (fun i -> first + i)

(* Replica tables fill lazily: a core's table learns a mapping the first
   time the core touches it (a soft fault that copies the entry over), so
   an unmap only has to visit cores whose replica actually holds it. *)

let map t ~driver ~vaddr ~frame ~writable =
  match frame.Cap.otype with
  | Cap.Frame | Cap.Dev_frame ->
    if not frame.Cap.rights.Cap.read then Error Types.Err_cap_rights
    else if writable && not frame.Cap.rights.Cap.write then Error Types.Err_cap_rights
    else begin
      let vpages = pages_of ~vaddr ~bytes:frame.Cap.bytes in
      if List.exists (fun vp -> Hashtbl.mem t.pages vp) vpages then
        Error Types.Err_already_mapped
      else begin
        (* One checked page-table store per entry, through the CPU driver. *)
        Cpu_driver.syscall driver (fun () ->
            let core = Cpu_driver.core driver in
            let m = t.machine_of core in
            List.iter
              (fun vp ->
                Machine.compute m ~core pt_update_cost;
                Hashtbl.replace t.pages vp { frame; w = writable })
              vpages);
        Ok ()
      end
    end
  | _ -> Error (Types.Err_cap_type "map requires a frame capability")

let touch t ~core ~vaddr =
  let vp = Types.vpage_of_vaddr vaddr in
  match Hashtbl.find_opt t.pages vp with
  | None -> Error Types.Err_not_mapped
  | Some _ ->
    let tlb = (t.machine_of core).Machine.tlbs.(core) in
    if not (Tlb.mem tlb ~vpage:vp) then begin
      (* The walk itself is a pure delay: bank it. *)
      Engine.charge tlb_walk_cost;
      (match t.mode with
       | Shared_table -> ()
       | Replicated _ ->
         (* [filled_by] is shared with every other core touching this
            vspace: the first-touch check must happen at the true time
            (after the walk), or two cores walking the same page inside
            the window would both take the copy path. *)
         Engine.flush_charge ();
         (* Soft fault on first touch: copy the entry into this core's
            replica, and remember who holds it. *)
         let already =
           match Hashtbl.find_opt t.filled_by vp with
           | Some l -> List.mem core !l
           | None -> false
         in
         if not already then begin
           Engine.wait pt_update_cost;
           match Hashtbl.find_opt t.filled_by vp with
           | Some l -> l := core :: !l
           | None -> Hashtbl.replace t.filled_by vp (ref [ core ])
         end);
      Tlb.fill tlb ~vpage:vp
    end;
    Ok ()

let cores_with_mapping t ~vpages =
  match t.mode with
  | Shared_table -> t.vcores
  | Replicated { track_tlb_fills = false } -> t.vcores
  | Replicated { track_tlb_fills = true } ->
    List.sort_uniq compare
      (List.concat_map
         (fun vp ->
           match Hashtbl.find_opt t.filled_by vp with Some l -> !l | None -> [])
         vpages)

let is_mapped t ~vaddr = Hashtbl.mem t.pages (Types.vpage_of_vaddr vaddr)

let writable t ~vaddr =
  match Hashtbl.find_opt t.pages (Types.vpage_of_vaddr vaddr) with
  | Some e -> e.w
  | None -> false

(* The global part of unmap/protect: update the page table(s), then ensure
   no stale TLB entry survives anywhere that may hold one, via the
   monitors' one-phase commit. With a shared table, every core the domain
   spans must be shot down; with replicated tables and fill tracking, only
   the cores recorded as holding the translation (§4.8). The caller builds
   the plan over [shoot_members]. *)
let shoot_members t ~vpages = cores_with_mapping t ~vpages

let shoot t ~monitor ~plan_for ~vpages =
  (* The initiator edits its own table first... (charged on the monitor's
     own machine, which under a sharded boot is its shard's) *)
  List.iter
    (fun _vp ->
      Machine.compute (Monitor.machine monitor) ~core:(Monitor.core monitor)
        pt_update_cost)
    vpages;
  (* ...then one fan visits exactly the cores that must act: with a shared
     table, every spanned core's TLB; with lazily-filled replicas, only the
     cores whose replica holds the entry — which also edit it. *)
  let targets = shoot_members t ~vpages in
  let op =
    match t.mode with
    | Shared_table -> Monitor.Op_tlb_invalidate { vpages }
    | Replicated _ -> Monitor.Op_pt_update { vpages }
  in
  Monitor.run_fan monitor ~plan:(plan_for ~members:targets) ~op;
  (match t.mode with
   | Replicated _ -> List.iter (fun vp -> Hashtbl.remove t.filled_by vp) vpages
   | Shared_table -> ())

let unmap t ~monitor ~plan_for ~vaddr ~bytes =
  let vpages = pages_of ~vaddr ~bytes in
  if not (List.for_all (fun vp -> Hashtbl.mem t.pages vp) vpages) then
    Error Types.Err_not_mapped
  else begin
    List.iter (fun vp -> Hashtbl.remove t.pages vp) vpages;
    shoot t ~monitor ~plan_for ~vpages;
    Ok ()
  end

let protect t ~monitor ~plan_for ~vaddr ~bytes ~writable =
  let vpages = pages_of ~vaddr ~bytes in
  if not (List.for_all (fun vp -> Hashtbl.mem t.pages vp) vpages) then
    Error Types.Err_not_mapped
  else begin
    List.iter (fun vp -> (Hashtbl.find t.pages vp).w <- writable) vpages;
    shoot t ~monitor ~plan_for ~vpages;
    Ok ()
  end

let mapped_pages t = Hashtbl.length t.pages
