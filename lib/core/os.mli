(** Booting and operating a complete multikernel (Barrelfish-style) OS on a
    simulated machine.

    [boot] brings up, per core: a CPU driver, a monitor, and a memory-server
    pool; connects the monitor mesh; starts the name service; populates the
    SKB with hardware-discovery facts; and (by default) runs the boot-time
    online measurement of inter-monitor URPC latencies that feeds the
    SKB's multicast-tree computation (§4.9, §5.1).

    Functions that execute OS operations ({!spawn_domain}, {!unmap}, ...)
    must run inside a simulation task; use {!run} to enter one. *)

type t

val boot :
  ?eng:Mk_sim.Engine.t ->
  ?fault:Mk_fault.Injector.t ->
  ?measure_latencies:bool ->
  ?mem_per_core:int ->
  Mk_hw.Platform.t ->
  t
(** Construct the machine and the OS and run the engine until boot
    completes. [mem_per_core] defaults to 64 MiB of simulated RAM.
    [fault] attaches a fault injector to the machine; arm it after boot
    (see {!Mk_fault.Injector.arm}) so boot itself is fault-free. *)

val machine : t -> Mk_hw.Machine.t
val platform : t -> Mk_hw.Platform.t
val skb : t -> Skb.t
val name_service : t -> Name_service.t
val n_cores : t -> int

val driver : t -> core:int -> Cpu_driver.t
val monitor : t -> core:int -> Monitor.t
val mm : t -> core:int -> Mm.t

val alive : t -> core:int -> bool
val mark_dead : t -> core:int -> unit
(** Record that a core has failed. From then on every routing plan built by
    {!plan}/{!default_plan} silently routes around it. Called by the
    failure manager ([Ft]) on detection. *)

val live_cores : t -> int list

val run : t -> ?name:string -> (unit -> 'a) -> 'a
(** Spawn [f] as a simulation task, drive the engine until it finishes and
    all derived work quiesces, and return its result. *)

val latency : t -> src:int -> dst:int -> int
(** Measured URPC latency between two cores' monitors (SKB fact), falling
    back to interconnect hop count if not measured. *)

val plan : t -> Routing.proto -> root:int -> members:int list -> Routing.plan
(** Build a routing plan; NUMA-aware plans use the SKB latencies. *)

val default_plan : t -> root:int -> members:int list -> Routing.plan
(** What the OS actually uses for global operations: the NUMA-aware
    multicast computed from the SKB (§5.1's conclusion). *)

val spawn_domain :
  ?pt_mode:Vspace.pt_mode -> t -> name:string -> cores:int list -> Dom.t
(** Create a domain spanning [cores]: a dispatcher on each (announced to
    the remote OS nodes through the monitors), a shared vspace whose root
    page table is allocated from the local memory server, and a capability
    space. Task context required. *)

val alloc_map_frame :
  t -> Dom.t -> core:int -> vaddr:int -> bytes:int -> (Cap.t, Types.error) result
(** Allocate a frame from [core]'s memory server and map it into the
    domain's vspace at [vaddr]. *)

val unmap : t -> Dom.t -> core:int -> vaddr:int -> bytes:int -> (unit, Types.error) result
(** The full application-level unmap path of Figure 7: LRPC to the local
    monitor, page-table update, NUMA-aware multicast TLB shootdown over the
    domain's cores, aggregated acks, LRPC reply. *)

val protect :
  t -> Dom.t -> core:int -> vaddr:int -> bytes:int -> writable:bool ->
  (unit, Types.error) result
(** Same path as {!unmap} but reducing rights (the mprotect measured in
    Figure 7). *)

val domains : t -> Dom.t list
