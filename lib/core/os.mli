(** Booting and operating a complete multikernel (Barrelfish-style) OS on a
    simulated machine.

    [boot] brings up, per core: a CPU driver, a monitor, and a memory-server
    pool; connects the monitor mesh; starts the name service; populates the
    SKB with hardware-discovery facts; and (by default) runs the boot-time
    online measurement of inter-monitor URPC latencies that feeds the
    SKB's multicast-tree computation (§4.9, §5.1).

    With [shards], the OS boots over a {!Shard.t}: each core's CPU driver,
    monitor, memory pool and LRPC endpoint are placed on its core's shard
    machine, the name service and SKB are homed on shard 0 (reached over
    the split URPC wire), and {!run} drives the whole OS through windowed
    conservative PDES ({!Mk_sim.Pdes}) instead of a single engine — with
    byte-identical output at every domain count.

    Functions that execute OS operations ({!spawn_domain}, {!unmap}, ...)
    must run inside a simulation task; use {!run} to enter one. *)

type t

(** Boot-time URPC latency probing policy. [Representative] (the default)
    probes one core pair per latency class — ordered package pair, plus
    the intra-package shared/unshared-cache pairs — and derives the full
    n·(n−1) fact set from topology, avoiding the quadratic ping storm
    ([Exhaustive] is ~2M round trips at 1024 cores). Fact shape and loop
    order match [Exhaustive]; the platforms' package homogeneity makes the
    derived values exact. *)
type measure = No_measure | Representative | Exhaustive

val boot :
  ?eng:Mk_sim.Engine.t ->
  ?fault:Mk_fault.Injector.t ->
  ?shards:int ->
  ?faults:Mk_fault.Injector.t array ->
  ?measure_latencies:measure ->
  ?mem_per_core:int ->
  Mk_hw.Platform.t ->
  t
(** Construct the machine and the OS and run the engine until boot
    completes. [mem_per_core] defaults to 64 MiB of simulated RAM.
    [fault] attaches a fault injector to the machine; arm it after boot
    (see {!Mk_fault.Injector.arm}) so boot itself is fault-free.

    [shards] boots the OS sharded over that many contiguous package ranges
    ({!Shard.create}); [faults] then installs one injector per shard
    machine (and [eng]/[fault] are rejected). The sharded structure is
    independent of how many OCaml domains later execute it — [MK_PDES] /
    [--pdes] pick placement only, so a sharded run's output is
    byte-identical at every domain count. *)

val machine : t -> Mk_hw.Machine.t
(** The machine; under a sharded boot, shard 0's. *)

val shard : t -> Shard.t option
(** The shard structure of a sharded boot ([None] unsharded). *)

val machine_of_core : t -> int -> Mk_hw.Machine.t
(** The machine a core's tasks run on: its shard's when sharded, {!machine}
    otherwise. *)

val call : t -> ?src_core:int -> core:int -> (unit -> 'a) -> 'a
(** Run [f] in [core]'s shard context and return its result ({!Shard.call};
    the identity unsharded, same-shard, or in host context). [src_core]
    (default 0) attributes the interconnect legs of a cross-shard hop. *)

val post : t -> ?src_core:int -> core:int -> (unit -> unit) -> unit
(** Fire-and-forget variant of {!call} ({!Shard.post}). *)

val platform : t -> Mk_hw.Platform.t
val skb : t -> Skb.t
val name_service : t -> Name_service.t
val n_cores : t -> int

val driver : t -> core:int -> Cpu_driver.t
val monitor : t -> core:int -> Monitor.t
val mm : t -> core:int -> Mm.t

val alive : t -> core:int -> bool
val mark_dead : t -> core:int -> unit
(** Record that a core has failed. From then on every routing plan built by
    {!plan}/{!default_plan} silently routes around it. Called by the
    failure manager ([Ft]) on detection. Under a sharded boot each shard
    holds its own liveness view — these read/write the calling context's
    shard's view (shard 0's from host context), and the mesh-wide death
    announcement brings the other shards' views up to date. *)

val live_cores : t -> int list

val run : t -> ?name:string -> (unit -> 'a) -> 'a
(** Spawn [f] as a simulation task, drive the engine until it finishes and
    all derived work quiesces, and return its result. Sharded: [f] runs on
    shard 0 and the run executes through {!Mk_sim.Pdes} window execution
    ({!Shard.exec}). *)

val latency : t -> src:int -> dst:int -> int
(** Measured URPC latency between two cores' monitors (SKB fact), falling
    back to interconnect hop count if not measured. *)

val plan : t -> Routing.proto -> root:int -> members:int list -> Routing.plan
(** Build a routing plan; NUMA-aware plans use the SKB latencies. *)

val default_plan : t -> root:int -> members:int list -> Routing.plan
(** What the OS actually uses for global operations: the NUMA-aware
    multicast computed from the SKB (§5.1's conclusion). *)

(** {1 Dependency-driven placement}

    Closing the SKB loop (§4.9): profile a run's URPC traffic, feed the
    measured communication graph back as SKB facts, and query the SKB for
    a thread -> core mapping that keeps the chattiest threads on shared
    caches ({!Routing.place_threads}). *)

val start_comm_profile : t -> Mk_sim.Trace.Comm.t
(** Attach a message-graph recorder to every machine of this OS (all
    shards). Every subsequent URPC send records its (src, dst) core pair
    until {!stop_comm_profile}. *)

val stop_comm_profile : t -> Mk_sim.Trace.Comm.t -> (int * int * int) list
(** Detach the recorder and return the measured [(src, dst, count)] core
    pairs, sorted. The caller relabels cores to its logical thread ids
    before asserting them with {!assert_comm_edges}. *)

val assert_comm_edges : t -> (int * int * int) list -> unit
(** Assert [(thread_i, thread_j, weight)] edges as SKB [comm_edge] facts
    (replacing earlier weights for the same pair). *)

val comm_placement : t -> threads:int -> int array
(** Thread -> core mapping computed from the SKB's [comm_edge] facts via
    {!Routing.place_threads}. *)

val spawn_domain :
  ?pt_mode:Vspace.pt_mode -> t -> name:string -> cores:int list -> Dom.t
(** Create a domain spanning [cores]: a dispatcher on each (announced to
    the remote OS nodes through the monitors), a shared vspace whose root
    page table is allocated from the local memory server, and a capability
    space. Task context required. Sharded: the allocation, each
    dispatcher installation, and the announce fan each run on their core's
    shard; call from one coordinating task. *)

val alloc_map_frame :
  t -> Dom.t -> core:int -> vaddr:int -> bytes:int -> (Cap.t, Types.error) result
(** Allocate a frame from [core]'s memory server and map it into the
    domain's vspace at [vaddr]. *)

val unmap : t -> Dom.t -> core:int -> vaddr:int -> bytes:int -> (unit, Types.error) result
(** The full application-level unmap path of Figure 7: LRPC to the local
    monitor, page-table update, NUMA-aware multicast TLB shootdown over the
    domain's cores, aggregated acks, LRPC reply. *)

val protect :
  t -> Dom.t -> core:int -> vaddr:int -> bytes:int -> writable:bool ->
  (unit, Types.error) result
(** Same path as {!unmap} but reducing rights (the mprotect measured in
    Figure 7). *)

val domains : t -> Dom.t list
