open Mk_sim

(* The OS-level failure manager: glues the monitors' phi detectors to
   actual recovery. On the first detection of a core's death it
   - marks the core dead in the OS (routing plans repair around it),
   - announces the death mesh-wide (best-effort fan, so peers stop
     heartbeating the corpse without waiting on a lossy protocol),
   - respawns every service homed on the dead core on a live core and
     re-registers it with the name service.
   Subsequent detections of the same death (other monitors' detectors
   racing the announcement) are deduplicated here. *)

type service = {
  s_name : string;
  mutable s_home : int;
  s_respawn : int -> unit;  (* bring the service up on a new core *)
}

type t = {
  os : Os.t;
  hb_interval : int;
  threshold : float;
  mutable services : service list;
  detected_at : int array;  (* absolute time of first detection; -1 = none *)
  detected_by : int array;
  recovered_at : int array;  (* services respawned + death announced *)
  mutable deaths : int;
}

(* Respawn target: the highest live core, preferring not to pile recovered
   services onto the name service's home core (or the low-numbered cores
   clients conventionally run on). Deterministic. *)
let pick_new_home t =
  let live = Os.live_cores t.os in
  let ns_home = Name_service.home_core (Os.name_service t.os) in
  match List.rev (List.filter (fun c -> c <> ns_home) live) with
  | c :: _ -> c
  | [] -> (match live with c :: _ -> c | [] -> failwith "Ft: no live cores")

let handle_death t ~by ~core ~at =
  if t.detected_at.(core) < 0 then begin
    t.detected_at.(core) <- at;
    t.detected_by.(core) <- by;
    t.deaths <- t.deaths + 1;
    Os.mark_dead t.os ~core;
    (* Announce through the mesh so every monitor stops heartbeating the
       dead core. Best-effort (fire-and-forget fan): recovery must not
       block on a protocol that can itself lose messages. *)
    let mon = Os.monitor t.os ~core:by in
    let members = List.filter (fun c -> c <> by) (Os.live_cores t.os) in
    let plan = Os.default_plan t.os ~root:by ~members in
    ignore
      (Monitor.run_fan_async mon ~plan
         ~op:(Monitor.Op_set_replica { key = Monitor.dead_replica_key core; value = at })
        : unit Sync.Ivar.t);
    (* Service failover: respawn everything homed on the corpse. *)
    List.iter
      (fun s ->
        if s.s_home = core then begin
          let new_home = pick_new_home t in
          s.s_home <- new_home;
          s.s_respawn new_home
        end)
      t.services;
    t.recovered_at.(core) <- Engine.now_ ()
  end

let attach ?(hb_interval = 20_000) ?(threshold = 4.0) ~until os =
  let n = Os.n_cores os in
  let t =
    {
      os;
      hb_interval;
      threshold;
      services = [];
      detected_at = Array.make n (-1);
      detected_by = Array.make n (-1);
      recovered_at = Array.make n (-1);
      deaths = 0;
    }
  in
  for c = 0 to n - 1 do
    Monitor.start_ft (Os.monitor os ~core:c) ~interval:hb_interval ~threshold
      ~until ~on_death:(fun ~core ~at -> handle_death t ~by:c ~core ~at)
  done;
  (* Wire the fault plan's core stops to the monitors they stop. *)
  let inj = (Os.machine os).Mk_hw.Machine.fault in
  Mk_fault.Injector.on_core_stop inj (fun core ->
      Monitor.kill (Os.monitor os ~core));
  t

let register_service t ~name ~home ~respawn =
  t.services <- { s_name = name; s_home = home; s_respawn = respawn } :: t.services

let service_home t ~name =
  List.find_map
    (fun s -> if s.s_name = name then Some s.s_home else None)
    t.services

let detected_at t ~core = if t.detected_at.(core) < 0 then None else Some t.detected_at.(core)
let detected_by t ~core = if t.detected_by.(core) < 0 then None else Some t.detected_by.(core)
let recovered_at t ~core = if t.recovered_at.(core) < 0 then None else Some t.recovered_at.(core)
let deaths t = t.deaths
let hb_interval t = t.hb_interval

(* The detector crosses its threshold after ~threshold*ln10 mean intervals
   of silence and is evaluated once per interval; one extra interval of
   slack covers heartbeats in flight when the core stopped. *)
let detection_bound t =
  int_of_float (ceil (t.threshold *. 2.302585093)) * t.hb_interval
  + (2 * t.hb_interval)
