open Mk_sim

(* The OS-level failure manager: glues the monitors' phi detectors to
   actual recovery. On the first detection of a core's death it
   - marks the core dead in the OS (routing plans repair around it),
   - announces the death mesh-wide (best-effort fan, so peers stop
     heartbeating the corpse without waiting on a lossy protocol),
   - respawns every service homed on the dead core on a live core and
     re-registers it with the name service.
   Subsequent detections of the same death (other monitors' detectors
   racing the announcement) are deduplicated here. *)

type service = {
  s_name : string;
  mutable s_home : int;
  s_respawn : int -> unit;  (* bring the service up on a new core *)
}

type t = {
  os : Os.t;
  hb_interval : int;
  threshold : float;
  mutable services : service list;
  detected_at : int array;  (* absolute time of first detection; -1 = none *)
  detected_by : int array;
  recovered_at : int array;  (* services respawned + death announced *)
  mutable deaths : int;
}

(* Respawn target: the highest live core, preferring not to pile recovered
   services onto the name service's home core (or the low-numbered cores
   clients conventionally run on). Deterministic. *)
let pick_new_home t =
  let live = Os.live_cores t.os in
  let ns_home = Name_service.home_core (Os.name_service t.os) in
  match List.rev (List.filter (fun c -> c <> ns_home) live) with
  | c :: _ -> c
  | [] -> (match live with c :: _ -> c | [] -> failwith "Ft: no live cores")

(* Announce through the mesh so every monitor stops heartbeating the
   dead core. Best-effort (fire-and-forget fan): recovery must not
   block on a protocol that can itself lose messages. Runs in a task on
   the detector's shard (= the only shard, unsharded). *)
let announce t ~by ~core ~at =
  Os.mark_dead t.os ~core;
  let mon = Os.monitor t.os ~core:by in
  let members = List.filter (fun c -> c <> by) (Os.live_cores t.os) in
  let plan = Os.default_plan t.os ~root:by ~members in
  ignore
    (Monitor.run_fan_async mon ~plan
       ~op:(Monitor.Op_set_replica { key = Monitor.dead_replica_key core; value = at })
      : unit Sync.Ivar.t)

(* Failover: respawn everything homed on the corpse. Runs on the
   deduplicating shard (shard 0 / the coordinator), where the liveness view
   has already dropped the dead core. *)
let recover t ~core =
  List.iter
    (fun s ->
      if s.s_home = core then begin
        let new_home = pick_new_home t in
        s.s_home <- new_home;
        s.s_respawn new_home
      end)
    t.services;
  t.recovered_at.(core) <- Engine.now_ ()

let handle_death t ~by ~core ~at =
  match Os.shard t.os with
  | None ->
    if t.detected_at.(core) < 0 then begin
      t.detected_at.(core) <- at;
      t.detected_by.(core) <- by;
      t.deaths <- t.deaths + 1;
      announce t ~by ~core ~at;
      recover t ~core
    end
  | Some sh ->
    (* Detections race across shards; shard 0 is the dedup authority.
       Funnelling the whole record through one shard keeps detected_* and
       the service list single-writer; the announcement fan still runs
       from the detector's own monitor, reached back via [Os.call]. *)
    Shard.post sh ~src_core:by ~core:0 (fun () ->
        if t.detected_at.(core) < 0 then begin
          t.detected_at.(core) <- at;
          t.detected_by.(core) <- by;
          t.deaths <- t.deaths + 1;
          Os.mark_dead t.os ~core;
          Engine.spawn (Shard.engine sh 0) ~name:"ft.recover" (fun () ->
              Os.call t.os ~src_core:0 ~core:by (fun () -> announce t ~by ~core ~at);
              recover t ~core)
        end)

let attach ?(hb_interval = 20_000) ?(threshold = 4.0) ~until os =
  let n = Os.n_cores os in
  let t =
    {
      os;
      hb_interval;
      threshold;
      services = [];
      detected_at = Array.make n (-1);
      detected_by = Array.make n (-1);
      recovered_at = Array.make n (-1);
      deaths = 0;
    }
  in
  for c = 0 to n - 1 do
    Monitor.start_ft (Os.monitor os ~core:c) ~interval:hb_interval ~threshold
      ~until ~on_death:(fun ~core ~at -> handle_death t ~by:c ~core ~at)
  done;
  (* Wire the fault plan's core stops to the monitors they stop. Sharded:
     every shard machine carries its own injector (armed with an
     [?only]-its-cores filter), so each stop event fires on the victim's
     own shard and kills a same-shard monitor. *)
  let wire inj =
    Mk_fault.Injector.on_core_stop inj (fun core ->
        Monitor.kill (Os.monitor os ~core))
  in
  (match Os.shard os with
   | None -> wire (Os.machine os).Mk_hw.Machine.fault
   | Some sh ->
     for s = 0 to Shard.n_shards sh - 1 do
       let inj = (Shard.machine sh s).Mk_hw.Machine.fault in
       if inj != Mk_fault.Injector.none then wire inj
     done);
  t

let register_service t ~name ~home ~respawn =
  t.services <- { s_name = name; s_home = home; s_respawn = respawn } :: t.services

let service_home t ~name =
  List.find_map
    (fun s -> if s.s_name = name then Some s.s_home else None)
    t.services

let detected_at t ~core = if t.detected_at.(core) < 0 then None else Some t.detected_at.(core)
let detected_by t ~core = if t.detected_by.(core) < 0 then None else Some t.detected_by.(core)
let recovered_at t ~core = if t.recovered_at.(core) < 0 then None else Some t.recovered_at.(core)
let deaths t = t.deaths
let hb_interval t = t.hb_interval

(* The detector crosses its threshold after ~threshold*ln10 mean intervals
   of silence and is evaluated once per interval; one extra interval of
   slack covers heartbeats in flight when the core stopped. *)
let detection_bound t =
  int_of_float (ceil (t.threshold *. 2.302585093)) * t.hb_interval
  + (2 * t.hb_interval)
