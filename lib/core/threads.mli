(** User-level threads over dispatchers (§4.5, §4.8).

    The default Barrelfish user library provides POSIX-like threads that
    share an address space across dispatchers (and hence cores). Thread
    operations stay in user space: creating, joining and synchronizing
    never enter the kernel — the property Figure 9 contrasts with Linux's
    in-kernel implementation (e.g. barriers via system call).

    The shared-memory synchronization primitives really touch simulated
    shared cache lines, so their scaling behaviour (e.g. a centralized
    barrier's linear cost in waiters) emerges from the coherence model. *)

type thread

val spawn :
  Mk_hw.Machine.t -> disp:Dispatcher.t -> ?name:string -> (unit -> unit) -> thread
(** Create a thread on the dispatcher's core (pure user-level operation). *)

val join : thread -> unit
val core : thread -> int

val create_cost : int
(** Cycles of user-level bookkeeping to create a thread. *)

(** {1 Migratable threads}

    §4.8: "The thread schedulers on each dispatcher exchange messages to
    create and unblock threads, and to migrate threads between dispatchers
    (and hence cores)." A context carries the thread's current placement;
    migration hands the TCB between user-level schedulers, the destination
    core pulling its cache lines — no kernel involvement. *)

type ctx

val current_core : ctx -> int

val spawn_ctx :
  Mk_hw.Machine.t -> disp:Dispatcher.t -> ?name:string -> (ctx -> unit) -> thread

val migrate : ctx -> to_disp:Dispatcher.t -> unit
(** Move the calling thread to another dispatcher (no-op if already
    there). Charges the hand-off on both schedulers plus the TCB's
    cache-line transfer. *)

(** Spin-based mutex on a shared cache line (user space). *)
module Mutex : sig
  type t

  val create : Mk_hw.Machine.t -> t
  val lock : t -> core:int -> unit
  val unlock : t -> core:int -> unit
end

(** Centralized sense-reversing barrier on shared cache lines: every
    arrival is a store to the (contended) counter line, every release a
    fetch of the sense line — both serialized by the coherence protocol,
    which is what makes it scale linearly in parties. *)
module Barrier : sig
  type t

  val create : Mk_hw.Machine.t -> parties:int -> t
  val await : t -> core:int -> unit
end

(** Message-based barrier: dispatchers signal a coordinator over URPC and
    are released by a multicast — the "thread schedulers on each dispatcher
    exchange messages" design of §4.8, which avoids the contended line. *)
module Msg_barrier : sig
  type t

  val create :
    ?shard:Shard.t -> Mk_hw.Machine.t -> coordinator:int -> parties:(int * int) list -> t
  (** [parties] is [(party_index, core)] for each participant. With [shard]
      each channel is a {!Shard.link_urpc} pair split at the wire, so the
      barrier works across a PDES cut (the machine is then ignored). *)

  val await : t -> party:int -> unit
end
