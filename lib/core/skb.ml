open Mk_hw

type term =
  | Int of int
  | Atom of string
  | Var of string
  | Compound of string * term list

type subst = (string * term) list

(* Facts of one functor/arity live in a bucket: a growable array in
   assertion order (so query results keep their documented order) plus a
   prolog-style first-argument index. Hot relations are probed with a
   ground first argument — [urpc_latency(Int src, ...)],
   [core_package(Int c, ...)] — and the boot-time measurement loop asserts
   O(n^2) latency facts, each preceded by a retract; without the index
   both are linear scans of an O(n^2) bucket, which made the SKB the
   host-side bottleneck of every OS boot. Retraction tombstones the slot
   ([hole]) rather than compacting, keeping indexed positions stable. *)

type first_key = KInt of int | KAtom of string

(* Physical sentinel marking a retracted slot; never a legal fact. *)
let hole = Atom "\000retracted"

type bucket = {
  mutable items : term array;
  mutable n : int;  (* used slots, including holes *)
  byfirst : (first_key, int list ref) Hashtbl.t;
      (* ground first arg -> positions, reverse assertion order *)
}

type t = {
  facts : (string * int, bucket) Hashtbl.t;
  mutable count : int;
}

let create () = { facts = Hashtbl.create 64; count = 0 }

let rec is_ground = function
  | Int _ | Atom _ -> true
  | Var _ -> false
  | Compound (_, args) -> List.for_all is_ground args

let key_of = function
  | Compound (f, args) -> (f, List.length args)
  | Atom a -> (a, 0)
  | Int _ | Var _ -> invalid_arg "Skb: facts must be atoms or compounds"

(* The indexable first argument of a fact or pattern, if any. *)
let first_key_of = function
  | Compound (_, Int i :: _) -> Some (KInt i)
  | Compound (_, Atom a :: _) -> Some (KAtom a)
  | _ -> None

let new_bucket () = { items = Array.make 8 hole; n = 0; byfirst = Hashtbl.create 8 }

let bucket_add b f =
  if b.n = Array.length b.items then begin
    let bigger = Array.make (2 * b.n) hole in
    Array.blit b.items 0 bigger 0 b.n;
    b.items <- bigger
  end;
  b.items.(b.n) <- f;
  (match first_key_of f with
   | Some k ->
     (match Hashtbl.find_opt b.byfirst k with
      | Some ps -> ps := b.n :: !ps
      | None -> Hashtbl.replace b.byfirst k (ref [ b.n ]))
   | None -> ());
  b.n <- b.n + 1

let assert_fact t f =
  if not (is_ground f) then invalid_arg "Skb.assert_fact: fact contains variables";
  let key = key_of f in
  let b =
    match Hashtbl.find_opt t.facts key with
    | Some b -> b
    | None ->
      let b = new_bucket () in
      Hashtbl.replace t.facts key b;
      b
  in
  bucket_add b f;
  t.count <- t.count + 1

(* Unification of a pattern (may contain vars) against a ground fact. *)
let rec unify pattern fact_ (s : subst) : subst option =
  match (pattern, fact_) with
  | Int a, Int b -> if a = b then Some s else None
  | Atom a, Atom b -> if String.equal a b then Some s else None
  | Var v, g ->
    (match List.assoc_opt v s with
     | Some bound -> if bound = g then Some s else None
     | None -> Some ((v, g) :: s))
  | Compound (f, args), Compound (g, brgs) ->
    if String.equal f g && List.length args = List.length brgs then
      List.fold_left2
        (fun acc a b -> match acc with None -> None | Some s -> unify a b s)
        (Some s) args brgs
    else None
  | _, _ -> None

let find_bucket t pattern =
  match pattern with
  | Compound (f, args) -> Hashtbl.find_opt t.facts (f, List.length args)
  | Atom a -> Hashtbl.find_opt t.facts (a, 0)
  | Int _ | Var _ -> invalid_arg "Skb.query: pattern must be an atom or compound"

(* Candidate positions for a pattern, in assertion order: the first-arg
   index slice when the pattern's first argument is ground, else every
   slot. Holes are skipped by the callers' unify (nothing unifies with the
   sentinel), but the indexed path never yields one: retraction removes
   positions from the index eagerly. *)
let fold_candidates b pattern init step =
  match first_key_of pattern with
  | Some k ->
    (match Hashtbl.find_opt b.byfirst k with
     | None -> init
     | Some ps -> List.fold_left (fun acc i -> step acc b.items.(i)) init (List.rev !ps))
  | None ->
    let acc = ref init in
    for i = 0 to b.n - 1 do
      let f = b.items.(i) in
      if f != hole then acc := step !acc f
    done;
    !acc

let query t pattern =
  match find_bucket t pattern with
  | None -> []
  | Some b ->
    List.rev
      (fold_candidates b pattern [] (fun acc f ->
           match unify pattern f [] with Some s -> s :: acc | None -> acc))

let query_one t pattern =
  match find_bucket t pattern with
  | None -> None
  | Some b ->
    (* First match in assertion order: keep folding but only bind once. *)
    fold_candidates b pattern None (fun acc f ->
        match acc with Some _ -> acc | None -> unify pattern f [])

let holds t pattern = query_one t pattern <> None

let retract t pattern =
  match pattern with
  | Compound (_, _) ->
    (match find_bucket t pattern with
     | None -> ()
     | Some b ->
       let candidates =
         match first_key_of pattern with
         | Some k ->
           (match Hashtbl.find_opt b.byfirst k with
            | None -> []
            | Some ps -> !ps)
         | None -> List.init b.n Fun.id
       in
       let removed = ref 0 in
       List.iter
         (fun i ->
           let f = b.items.(i) in
           if f != hole && unify pattern f [] <> None then begin
             (match first_key_of f with
              | Some k ->
                (match Hashtbl.find_opt b.byfirst k with
                 | Some ps -> ps := List.filter (fun j -> j <> i) !ps
                 | None -> ())
              | None -> ());
             b.items.(i) <- hole;
             incr removed
           end)
         candidates;
       t.count <- t.count - !removed)
  | _ -> invalid_arg "Skb.retract: pattern must be a compound"

let lookup_int s v =
  match List.assoc_opt v s with
  | Some (Int i) -> i
  | Some _ -> invalid_arg ("Skb.lookup_int: variable " ^ v ^ " not bound to an int")
  | None -> raise Not_found

let fact f args = Compound (f, args)

let size t = t.count

let populate_platform t plat =
  let n = Platform.n_cores plat in
  assert_fact t (fact "num_cores" [ Int n ]);
  assert_fact t (fact "num_packages" [ Int plat.Platform.n_packages ]);
  for c = 0 to n - 1 do
    assert_fact t (fact "core_package" [ Int c; Int (Platform.package_of plat c) ]);
    assert_fact t (fact "share_group" [ Int c; Int (Platform.share_group_of plat c) ])
  done;
  for p = 0 to plat.Platform.n_packages - 1 do
    assert_fact t (fact "package_first_core" [ Int p; Int (p * plat.Platform.cores_per_package) ])
  done;
  Array.iter
    (fun (a, b) -> assert_fact t (fact "ht_link" [ Int a; Int b ]))
    (Topology.links plat.Platform.topo)

let assert_urpc_latency t ~src ~dst ~cycles =
  retract t (fact "urpc_latency" [ Int src; Int dst; Var "_" ]);
  assert_fact t (fact "urpc_latency" [ Int src; Int dst; Int cycles ])

let urpc_latency t ~src ~dst =
  match query_one t (fact "urpc_latency" [ Int src; Int dst; Var "L" ]) with
  | Some s -> (try Some (lookup_int s "L") with Not_found -> None)
  | None -> None

(* Measured communication graph: comm_edge(src, dst, weight) counts the
   messages a profiling run observed between two logical threads. Same
   retract-then-assert discipline as urpc_latency so re-profiling
   overwrites rather than accumulates. *)
let assert_comm_edge t ~src ~dst ~weight =
  retract t (fact "comm_edge" [ Int src; Int dst; Var "_" ]);
  assert_fact t (fact "comm_edge" [ Int src; Int dst; Int weight ])

let comm_edges t =
  query t (fact "comm_edge" [ Var "S"; Var "D"; Var "W" ])
  |> List.map (fun s -> (lookup_int s "S", lookup_int s "D", lookup_int s "W"))
  |> List.sort compare
