(** OS-level failure manager (fault subsystem).

    Starts per-monitor heartbeating + phi-accrual failure detection
    ({!Monitor.start_ft}), wires the fault injector's core-stop events to
    {!Monitor.kill}, and on the first detection of a death: marks the core
    dead OS-wide (routing plans repair around it), announces it over the
    mesh, and respawns/re-registers every service homed on the dead core.
    Detection races between monitors are deduplicated here. *)

type t

val attach : ?hb_interval:int -> ?threshold:float -> until:int -> Os.t -> t
(** Start failure detection on every monitor. [hb_interval] (default 20k
    cycles) is the heartbeat/evaluation period; [threshold] (default 4.0)
    the phi threshold; [until] the absolute simulated time at which the
    detection tasks stop (so a run can drain). Call after [Os.boot],
    before arming the injector. *)

val register_service : t -> name:string -> home:int -> respawn:(int -> unit) -> unit
(** Make a named service failover-managed: if [home] dies, [respawn] is
    called with the replacement core (and must bring the service up there,
    including name-service re-registration). *)

val service_home : t -> name:string -> int option
(** Current home core of a managed service. *)

val detected_at : t -> core:int -> int option
(** Absolute time a core's death was first detected, if it was. *)

val detected_by : t -> core:int -> int option
val recovered_at : t -> core:int -> int option
(** Time the death was announced and dependent services respawned. *)

val deaths : t -> int
val hb_interval : t -> int

val detection_bound : t -> int
(** Worst-case cycles from a core stop to detection implied by the
    configured interval and threshold (what the chaos suite asserts). *)
