(** System-wide name service (§4.6).

    Maps service names (and a client-chosen tag) to a service reference —
    the core a service runs on — which clients then use to establish a
    channel via {!Flounder.connect}. Runs as a user-space process on one
    core; remote cores reach it over per-core URPC request/response
    channels set up at boot, so every lookup pays real messaging costs. *)

type t

type service_ref = { srv_name : string; srv_core : int; srv_tag : int }

val create : ?shard:Shard.t -> Mk_hw.Machine.t -> home_core:int -> t
(** Start the name-server process on [home_core] and pre-establish the
    per-core client channels. With [shard] the server loops run on the home
    core's shard and remote clients reach it over the split URPC wire
    ({!Flounder.connect}'s [?shard]); the given machine is ignored. *)

val home_core : t -> int

val register : t -> from_core:int -> name:string -> tag:int -> unit
(** Advertise a service; later registrations shadow earlier ones. *)

val lookup : t -> from_core:int -> name:string -> service_ref option

val registered : t -> int
(** Number of live registrations (statistics). *)
