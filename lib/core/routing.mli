(** Message-routing plans for global operations (§5.1).

    A plan describes how a root core disseminates a request to a set of
    cores and collects acknowledgements: an ordered list of branches, each
    an aggregation core plus the leaves it forwards to. The four protocols
    of Figure 6 correspond to:

    - {e Broadcast}: no plan — one shared cache line every slave polls
      (see {!Urpc.Broadcast}); scales worst.
    - {e Unicast}: every member is its own branch; the root sends N-1
      point-to-point messages.
    - {e Multicast}: one aggregation core per processor package; the
      aggregator forwards over the shared L3, so all packages proceed in
      parallel.
    - {e NUMA-aware multicast}: multicast, plus URPC buffers allocated on
      the aggregation node's local memory and branches ordered by
      decreasing message latency from the root — the SKB supplies the
      latencies ({!Skb.urpc_latency}). *)

type proto = Broadcast | Unicast | Multicast | Numa_multicast

val proto_to_string : proto -> string
val all_protos : proto list

type branch = {
  aggregator : int;
  leaves : int list;  (** forwarded to by the aggregator, same package *)
}

type plan = {
  root : int;
  branches : branch list;  (** in send order *)
  numa_aware : bool;  (** place channel buffers on the aggregation node *)
}

val unicast : root:int -> members:int list -> plan
(** Point-to-point to each member (the root excluded); ascending order. *)

val multicast : Mk_hw.Platform.t -> root:int -> members:int list -> plan
(** One aggregation branch per package: the lowest member core of each
    package aggregates; members on the root's own package are direct
    leaves of the root. *)

val numa_multicast :
  Mk_hw.Platform.t ->
  latency:(src:int -> dst:int -> int) ->
  root:int ->
  members:int list ->
  plan
(** Multicast with branches sorted by decreasing [latency root aggregator]
    (send to the farthest node first so its transfer overlaps the rest)
    and NUMA-local buffer placement. The latency function typically wraps
    the SKB's online measurements; missing pairs default to hop count. *)

val plan_cores : plan -> int list
(** Every core the plan reaches (excluding the root). *)

val branch_count : plan -> int

val place_threads :
  Mk_hw.Platform.t -> threads:int -> edges:(int * int * int) list -> int array
(** [place_threads plat ~threads ~edges] maps logical threads
    [0 .. threads-1] to distinct cores from a measured communication
    graph ([edges] are [(i, j, weight)] message counts). Heaviest edges
    are clustered first into groups of at most one package's cores;
    clusters are ranked by the traffic they keep package-local and packed
    onto packages first-fit, so the chattiest threads land on shared
    caches. Fully deterministic (ties break toward the smallest ids).
    Raises [Invalid_argument] unless [0 <= threads <= n_cores]. *)
