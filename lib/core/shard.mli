(** A logical machine sharded for windowed conservative PDES.

    Splits a platform's packages into contiguous ranges
    ({!Mk_hw.Topology.contiguous_partition}), builds one full
    {!Mk_hw.Machine.t} per shard over a {!Mk_sim.Pdes} executor, and
    rewires the cross-core mechanisms that can cross the cut — blocking
    coherence to a remote-homed line, IPIs to a remote core, URPC channels
    — to travel as timestamped cross-shard messages carrying at least one
    interconnect leg ([cc_base + hop_one_way * hops]). The minimum
    cross-shard leg is the executor's lookahead, so the conservative
    windows are sound by construction.

    Workload rules for a sharded run: a core's tasks run on its shard's
    machine ({!machine_of_core}); memory a core allocates and touches with
    the posted/async/banked access variants must stay homed on its own
    shard's packages (blocking {!Mk_hw.Coherence.load}/[store] may touch
    any shard); cross-shard messaging goes through {!link_urpc} or IPIs. *)

type t

type 'a link = {
  tx : 'a Urpc.t;  (** sender half — send on the sender's shard *)
  rx : 'a Urpc.t;  (** receiver half — recv on the receiver's shard *)
}
(** A URPC channel across (or within) the cut; [tx == rx] when sender and
    receiver share a shard. *)

val create : ?faults:Mk_fault.Injector.t array -> n_shards:int -> Mk_hw.Platform.t -> t
(** Shard [plat] into [n_shards] contiguous package ranges. [faults]
    installs one injector per shard machine (fault draws must happen on
    the shard that observes them, so a sharded chaos run carries one
    deterministic stream per shard). Raises [Invalid_argument] when
    [n_shards] is non-positive, exceeds the package count, or [faults]
    has the wrong length. *)

val n_shards : t -> int

val pdes : t -> Mk_sim.Pdes.t
val lookahead : t -> int
(** The executor's window bound: the minimum one-way cross-shard leg. *)

val machine : t -> int -> Mk_hw.Machine.t
(** The shard's machine (full platform; only its own cores are active). *)

val machine_of_core : t -> int -> Mk_hw.Machine.t
val engine : t -> int -> Mk_sim.Engine.t
val shard_of_core : t -> int -> int
val shard_of_pkg : t -> int -> int

val first_core : t -> int -> int
(** The lowest-numbered core of a shard (its "representative" for
    cross-shard control transfers that only need to land on the shard). *)

val post : t -> src_core:int -> core:int -> (unit -> unit) -> unit
(** Run the closure in [core]'s shard context. Direct call when the
    target shard is the current one — or in host context, where every
    shard is quiescent; otherwise a timestamped Pdes message carrying one
    interconnect leg from [src_core]'s package. Messages from the same
    [src_core] deliver in send order, so a sequence of posts to one shard
    is FIFO. *)

val call : t -> src_core:int -> core:int -> (unit -> 'a) -> 'a
(** Blocking cross-shard function call: run [f] in a task on [core]'s
    shard, return its result, charging one interconnect leg each way.
    Direct call when the target shard is current or in host context; when
    remote, the caller must be a task (it parks until the reply). *)

val alloc_shared : t -> src_core:int -> ?node:int -> int -> int
(** Allocate [n] cache lines in the shared arena: the address range is
    mirrored into every shard's coherence map, homed on package [node]
    (default 0), so blocking accesses from other shards route through the
    remote-home hook like real cross-shard traffic. Mirror pins travel as
    Pdes messages ordered by [src_core]: use the same [src_core] for the
    allocation and the {!post}s that hand the address out, and the pin
    lands first. Call from host context or one coordinating task only. *)

val leg_latency : t -> int -> int -> int
(** [leg_latency t a b]: one-way message leg between packages [a] and [b]
    under the coherence cost model. *)

val link_urpc :
  t -> sender:int -> receiver:int -> ?slots:int -> ?name:string -> unit -> 'a link
(** Build a URPC channel from [sender] to [receiver]. Same shard: one
    ordinary channel. Across shards: a sender-half/receiver-half pair
    linked at the wire — each message leaves the sender shard at its
    visibility time, crosses as a Pdes message carrying one interconnect
    leg, and materializes in the receiver half's ring. Each half's buffer
    is homed on its own side, so the rings never trigger remote
    coherence. *)

val exec : ?domains:int -> t -> unit
(** Run the sharded simulation to completion ({!Mk_sim.Pdes.exec}). *)

val barriers : t -> int
(** Window barriers executed so far. *)
