(** User-level RPC channels (§4.6).

    The only inter-core communication mechanism: a region of shared memory
    used as a ring of cache-line-sized slots, written by exactly one sender
    core and polled by exactly one receiver core. The send fast path is a
    posted (write-buffered) store — the sender continues while invalidation
    is in flight — and the receive path pays the cache-to-cache fetch, so a
    message costs two interconnect round trips end to end, exactly the
    behaviour §4.6 describes for HyperTransport.

    The channel buffer's home (directory) node is a placement knob: by
    default it lives on the sender's node; the NUMA-aware multicast of §5.1
    allocates it on the aggregation node instead ({!create}'s [node]). *)

type 'a t

val create :
  Mk_hw.Machine.t ->
  sender:int ->
  receiver:int ->
  ?slots:int ->
  ?node:int ->
  ?prefetch:bool ->
  ?name:string ->
  unit ->
  'a t
(** [slots] is the ring size (default 16, the paper's pipeline depth);
    [node] pins the buffer's home node (default: sender's package);
    [prefetch] selects the throughput-optimized variant of §4.6 that uses
    prefetch instructions (better pipelined throughput, worse
    single-message latency). *)

val preallocate :
  Mk_hw.Machine.t ->
  sender:int ->
  receiver:int ->
  ?slots:int ->
  ?node:int ->
  unit ->
  int * int * int
(** Reserve a channel's buffer memory — (slot ring, sender control,
    receiver control) base addresses — without constructing the channel.
    Buffer addresses are simulated-machine state (they fix cache-line
    homes), so a caller that wants a deterministic layout for many
    channels but will only use a few can reserve them all up front and
    build lazily with {!create_prealloc}. [create] = [preallocate] +
    [create_prealloc]. *)

val create_prealloc :
  Mk_hw.Machine.t ->
  sender:int ->
  receiver:int ->
  ?slots:int ->
  ?prefetch:bool ->
  ?name:string ->
  slot_base:int ->
  send_base:int ->
  recv_base:int ->
  unit ->
  'a t
(** Construct a channel over buffers reserved by {!preallocate} with the
    same [slots]. Pure host-side construction: no simulated state is
    touched, so when it runs does not affect results. *)

val send : 'a t -> ?lines:int -> 'a -> unit
(** Send a message occupying [lines] cache lines (default 1). Blocks only
    when all ring slots are in flight (flow control); otherwise the sender
    is released after the software path + store post and the line transfer
    completes asynchronously. Messages arrive in order. *)

val recv : 'a t -> 'a
(** Block until a message line is visible, then pay the fetch + dispatch
    path. A task blocked here models a dispatcher polling the channel. *)

val recv_timeout : 'a t -> timeout:int -> 'a option
(** Like {!recv} but gives up after [timeout] cycles, returning [None].
    The building block for the retry/backoff RPC stubs. *)

val recv_blocking : 'a t -> poll_cycles:int -> wakeup_cost:int -> 'a
(** §5.2's poll-then-block discipline: poll for [poll_cycles]; if the
    message had not arrived by then, charge [wakeup_cost] (the C of the
    paper's model: IPI + context switch via the monitor) on top. *)

val try_recv : 'a t -> 'a option
(** Non-blocking poll. Pays the fetch cost when a message is present and
    only a cache-hit poll read otherwise. *)

val sender : _ t -> int
val receiver : _ t -> int
val name : _ t -> string
val pending : _ t -> int
(** Messages visible to the receiver but not yet received. *)

val stats_sent : _ t -> int
val stats_received : _ t -> int

val set_notify : _ t -> (unit -> unit) -> unit
(** Install a callback run each time a message becomes visible to the
    receiver. Lets a dispatcher multiplex many channels without burning
    poll cycles in the simulator (the real system's poll loop; its cost is
    charged by the consumer, see {!Monitor}). *)

val set_remote_delivery : 'a t -> (visible_at:int -> 'a -> unit) -> unit
(** PDES cross-shard linkage, sender half: instead of entering the local
    receive mailbox, each message leaves the shard at its visibility time
    through the callback (which ships it as a timestamped {!Pdes} message
    ending in the receiver shard's {!deliver_remote}). The flow credit
    returns at the wire — the real receiver lives on another shard and
    cannot release this channel's semaphore. The callback runs in the
    channel's wire-sequencer task but must not block. *)

val deliver_remote : 'a t -> ?lines:int -> 'a -> unit
(** PDES cross-shard linkage, receiver half: materialize an arriving
    message in this channel's ring and post it to the receive mailbox —
    the receiver then pays the normal fetch + dispatch path. Effect-free,
    so a delivered cross-shard message thunk can call it at the arrival
    time. The pair ([set_remote_delivery] on a sender-half channel,
    [deliver_remote] on a receiver-half channel of another shard) splits
    one logical channel at the wire. *)

val send_sw_cost : int
(** Cycles of marshalling/stub code on the send side (per message). *)

val recv_sw_cost : int
(** Cycles of dispatch/stub code on the receive side (per message). *)

val icache_lines : int
(** Instruction-cache footprint of the URPC send+receive fast path, for
    Table 3 (a property of the code size, asserted not measured). *)

(** One writer, many pollers of the same line: the (bad) Broadcast protocol
    of §5.1. Every receiver pulls the full line from the sender's cache,
    serializing at its home directory — which is why it scales poorly. *)
module Broadcast : sig
  type 'a bc

  val create :
    Mk_hw.Machine.t -> sender:int -> receivers:int list -> ?node:int -> unit -> 'a bc

  val send : 'a bc -> 'a -> unit
  val recv : 'a bc -> core:int -> 'a
end
