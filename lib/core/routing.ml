open Mk_hw

type proto = Broadcast | Unicast | Multicast | Numa_multicast

let proto_to_string = function
  | Broadcast -> "Broadcast"
  | Unicast -> "Unicast"
  | Multicast -> "Multicast"
  | Numa_multicast -> "NUMA-Aware Multicast"

let all_protos = [ Broadcast; Unicast; Multicast; Numa_multicast ]

type branch = { aggregator : int; leaves : int list }

type plan = { root : int; branches : branch list; numa_aware : bool }

let others ~root ~members =
  List.sort_uniq compare (List.filter (fun c -> c <> root) members)

let unicast ~root ~members =
  {
    root;
    branches = List.map (fun c -> { aggregator = c; leaves = [] }) (others ~root ~members);
    numa_aware = false;
  }

(* Group the non-root members by package; the root's own package members
   become direct children of the root (a branch whose aggregator is the
   root handles no forwarding - the root just sends to each leaf). *)
let group_by_package plat ~root ~members =
  let rest = others ~root ~members in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let p = Platform.package_of plat c in
      let cur = Option.value (Hashtbl.find_opt tbl p) ~default:[] in
      Hashtbl.replace tbl p (c :: cur))
    rest;
  let root_pkg = Platform.package_of plat root in
  let local = Option.value (Hashtbl.find_opt tbl root_pkg) ~default:[] in
  Hashtbl.remove tbl root_pkg;
  let remote =
    Hashtbl.fold (fun _ cores acc -> List.sort compare cores :: acc) tbl []
    |> List.sort compare
  in
  (List.sort compare local, remote)

let multicast_branches plat ~root ~members =
  let local, remote = group_by_package plat ~root ~members in
  let local_branches = List.map (fun c -> { aggregator = c; leaves = [] }) local in
  let remote_branches =
    List.map
      (fun cores ->
        match cores with
        | agg :: leaves -> { aggregator = agg; leaves }
        | [] -> assert false)
      remote
  in
  (local_branches, remote_branches)

let multicast plat ~root ~members =
  let local, remote = multicast_branches plat ~root ~members in
  { root; branches = remote @ local; numa_aware = false }

let numa_multicast plat ~latency ~root ~members =
  let local, remote = multicast_branches plat ~root ~members in
  (* Farthest aggregation node first: its message is in flight while the
     root keeps sending. Descending latency; ties broken by core id for
     determinism. *)
  let dist b = latency ~src:root ~dst:b.aggregator in
  let remote =
    List.stable_sort (fun a b -> compare (dist b, a.aggregator) (dist a, b.aggregator)) remote
  in
  { root; branches = remote @ local; numa_aware = true }

let plan_cores plan =
  List.concat_map (fun b -> b.aggregator :: b.leaves) plan.branches

let branch_count plan = List.length plan.branches

(* Dependency-driven placement: cluster the measured communication graph
   greedily (heaviest edges first, clusters capped at a package's core
   count) and pack the heaviest-talking clusters onto packages so their
   traffic stays on-package. Deterministic: ties everywhere break toward
   the numerically smallest thread/edge. *)
let place_threads plat ~threads ~edges =
  let n_cores = Platform.n_cores plat in
  if threads < 0 || threads > n_cores then
    invalid_arg "Routing.place_threads: threads must be between 0 and the core count";
  let cap = plat.Platform.cores_per_package in
  let parent = Array.init threads Fun.id in
  let size = Array.make (max threads 1) 1 in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let edges =
    List.filter (fun (i, j, _) -> i >= 0 && i < threads && j >= 0 && j < threads && i <> j) edges
  in
  let heaviest_first =
    List.sort (fun (i1, j1, w1) (i2, j2, w2) -> compare (w2, (i1, j1)) (w1, (i2, j2))) edges
  in
  List.iter
    (fun (i, j, _) ->
      let a = find i and b = find j in
      if a <> b && size.(a) + size.(b) <= cap then begin
        let r, child = if a < b then (a, b) else (b, a) in
        parent.(child) <- r;
        size.(r) <- size.(r) + size.(child)
      end)
    heaviest_first;
  (* Internal weight of each cluster: all measured traffic it keeps local. *)
  let weight = Hashtbl.create 16 in
  List.iter
    (fun (i, j, w) ->
      let a = find i in
      if a = find j then
        Hashtbl.replace weight a (w + Option.value (Hashtbl.find_opt weight a) ~default:0))
    edges;
  let members = Hashtbl.create 16 in
  for i = threads - 1 downto 0 do
    let r = find i in
    Hashtbl.replace members r (i :: Option.value (Hashtbl.find_opt members r) ~default:[])
  done;
  let clusters =
    Hashtbl.fold
      (fun r ms acc -> (Option.value (Hashtbl.find_opt weight r) ~default:0, r, ms) :: acc)
      members []
    |> List.sort (fun (w1, r1, _) (w2, r2, _) -> compare (w2, r1) (w1, r2))
  in
  let npkg = plat.Platform.n_packages in
  let free = Array.make npkg cap in
  let place = Array.make threads (-1) in
  let alloc_one () =
    let p = ref 0 in
    while free.(!p) = 0 do
      incr p
    done;
    let c = (!p * cap) + (cap - free.(!p)) in
    free.(!p) <- free.(!p) - 1;
    c
  in
  List.iter
    (fun (_, _, ms) ->
      let k = List.length ms in
      let fit = ref (-1) in
      (try
         for p = 0 to npkg - 1 do
           if !fit < 0 && free.(p) >= k then begin
             fit := p;
             raise Exit
           end
         done
       with Exit -> ());
      match !fit with
      | p when p >= 0 ->
        let base = (p * cap) + (cap - free.(p)) in
        List.iteri (fun idx th -> place.(th) <- base + idx) ms;
        free.(p) <- free.(p) - k
      | _ ->
        (* No package has k consecutive free cores (packing fragmentation);
           spill the cluster over the first free cores in package order. *)
        List.iter (fun th -> place.(th) <- alloc_one ()) ms)
    clusters;
  place
