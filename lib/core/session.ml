(* Per-core sharded session tables, reached over URPC.

   The multikernel design inside one backend machine: session state is
   never shared across cores — each worker core owns a hash shard of the
   session space in core-private memory, and the front (driver) core
   reaches the owner over a typed Flounder/URPC binding. Workers advertise
   themselves through the name service, and the front discovers them by
   lookup, so bring-up pays the same messaging costs as any other
   service. *)

open Mk_hw

type req = { mutable rq_session : int; mutable rq_work : int }
type resp = { rs_hits : int; rs_core : int }

type t = {
  os : Os.t;
  front : int;
  workers : int array;
  (* Per worker: session -> hits. Open-addressed over flat int arrays —
     probed once per request, allocation-free. Sessions are non-negative
     (user ids) and hit counts are >= 1, so 0 serves as the dummy. *)
  tables : int Inttbl.t array;
  bindings : (req, resp) Flounder.binding array;
  (* One scratch request per binding, refilled under the binding lock by
     {!call} ({!Flounder.rpc_fill}) instead of allocating per call. *)
  scratch : req array;
  served : int array;
  mutable calls : int;
  req_lines : int;
  resp_lines : int;
}

(* Deterministic 64-bit finalizer (splitmix-style, constants clipped to
   OCaml's 63-bit ints): the shard map must not depend on [Hashtbl.hash]
   internals, and the load balancer's consistent-hash ring reuses it. *)
let mix z =
  let z = (z lxor (z lsr 33)) * 0x2545F4914F6CDD1D in
  let z = (z lxor (z lsr 29)) * 0x1B03738712FAD5C9 in
  (z lxor (z lsr 32)) land max_int

let worker_slot t ~session = mix session mod Array.length t.workers
let owner_core t ~session = t.workers.(worker_slot t ~session)

let start ?(req_lines = 1) ?(resp_lines = 1) os ~name ~front ~workers =
  if workers = [] then invalid_arg "Session.start: no workers";
  let workers = Array.of_list workers in
  let k = Array.length workers in
  let m = Os.machine os in
  let ns = Os.name_service os in
  let tables = Array.init k (fun _ -> Inttbl.create ~initial_bits:6 ~dummy:0 ()) in
  let served = Array.make k 0 in
  (* Each worker advertises its shard; the front discovers the owner core
     by lookup rather than trusting the construction order. *)
  Array.iteri
    (fun i w ->
      Name_service.register ns ~from_core:w ~name:(Printf.sprintf "%s.w%d" name i)
        ~tag:i)
    workers;
  let bindings =
    Array.init k (fun i ->
        let server =
          match
            Name_service.lookup ns ~from_core:front
              ~name:(Printf.sprintf "%s.w%d" name i)
          with
          | Some r -> r.Name_service.srv_core
          | None -> workers.(i)
        in
        Flounder.connect m
          ~name:(Printf.sprintf "%s.b%d" name i)
          ~client:front ~server ~req_lines ~resp_lines ())
  in
  Array.iteri
    (fun i b ->
      Flounder.export b (fun rq ->
          Machine.compute m ~core:workers.(i) rq.rq_work;
          let hits = Inttbl.find_or tables.(i) rq.rq_session 0 + 1 in
          Inttbl.set tables.(i) rq.rq_session hits;
          served.(i) <- served.(i) + 1;
          { rs_hits = hits; rs_core = workers.(i) }))
    bindings;
  let scratch = Array.init k (fun _ -> { rq_session = 0; rq_work = 0 }) in
  { os; front; workers; tables; bindings; scratch; served; calls = 0; req_lines; resp_lines }

let call t ~session ~work =
  let i = worker_slot t ~session in
  t.calls <- t.calls + 1;
  Flounder.rpc_fill t.bindings.(i) (fun () ->
      let s = t.scratch.(i) in
      s.rq_session <- session;
      s.rq_work <- work;
      s)

let front t = t.front
let workers t = Array.to_list t.workers
let served_on t ~core =
  let total = ref 0 in
  Array.iteri (fun i w -> if w = core then total := !total + t.served.(i)) t.workers;
  !total

let sessions_on t ~core =
  let total = ref 0 in
  Array.iteri
    (fun i w -> if w = core then total := !total + Inttbl.length t.tables.(i))
    t.workers;
  !total

let sessions t = Array.fold_left (fun a tbl -> a + Inttbl.length tbl) 0 t.tables
let calls t = t.calls

(* Two URPC messages per call (request + response), in cache lines. *)
let intra_msgs t = 2 * t.calls

let intra_bytes t =
  let line = (Os.platform t.os).Mk_hw.Platform.cacheline in
  t.calls * (t.req_lines + t.resp_lines) * line
