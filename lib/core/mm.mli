(** Distributed memory server (§4.7).

    Physical memory is split at boot into per-core pools, each owned by the
    local OS node as a root RAM capability. Allocation is a local retype —
    no cross-core communication on the fast path, which is the point of
    decentralizing resource allocation. When a pool runs dry the allocator
    borrows a region from the most-filled peer pool (a simplified version
    of Barrelfish's memory-server hierarchy), transferring the capability
    through the monitors. *)

type t

val init :
  ?machine_of:(int -> Mk_hw.Machine.t) ->
  Mk_hw.Machine.t ->
  Cpu_driver.t array ->
  mem_per_core:int ->
  t array
(** Mint each core's root RAM capability, NUMA-local to its package, and
    return the per-core allocators. [machine_of] (sharded boot) selects the
    machine each core's pool is carved from — its own shard's — instead of
    the single given machine. *)

val core : t -> int
val pool_bytes : t -> int
val free_bytes : t -> int

val alloc_ram : t -> bytes:int -> (Cap.t, Types.error) result
(** Carve a RAM capability out of the local pool (local syscall only). *)

val alloc_frame : t -> bytes:int -> (Cap.t, Types.error) result
(** RAM retyped to a mappable frame. *)

val set_peers : ?donor_ok:(int -> int -> bool) -> t array -> monitors:Monitor.t array -> unit
(** Enable cross-core borrowing when a local pool is exhausted. [donor_ok
    borrower donor] (default: always true) restricts which peers may
    donate; a sharded {!Os} passes a same-shard predicate so borrowing
    never reaches across a PDES cut mid-window. *)
