open Mk_sim
open Mk_hw

(* A binding is four channel halves: the client sends requests on
   [req_tx] and awaits responses on [resp_rx]; the server loop receives on
   [req_rx] and responds on [resp_tx]. Unsharded (and within one shard)
   the halves coincide ([req_tx == req_rx]); across a PDES cut each
   direction is a {!Shard.link_urpc} pair split at the wire, and the
   server loop runs on the server core's shard machine [sm]. *)
type ('req, 'resp) binding = {
  m : Machine.t;  (* client side *)
  sm : Machine.t;  (* server side; == m unless the binding crosses shards *)
  req_tx : ('req * bool) Urpc.t;  (* bool: expects a response *)
  req_rx : ('req * bool) Urpc.t;
  resp_tx : 'resp Urpc.t;
  resp_rx : 'resp Urpc.t;
  req_lines : int;
  resp_lines : int;
  lock : Sync.Mutex.t;  (* one outstanding RPC per binding *)
}

let connect ?shard m ~name ~client ~server ?(req_lines = 1) ?(resp_lines = 1) () =
  let lock = Sync.Mutex.create () in
  match shard with
  | None ->
    let req = Urpc.create m ~sender:client ~receiver:server ~name:(name ^ ".req") () in
    let resp = Urpc.create m ~sender:server ~receiver:client ~name:(name ^ ".resp") () in
    {
      m;
      sm = m;
      req_tx = req;
      req_rx = req;
      resp_tx = resp;
      resp_rx = resp;
      req_lines;
      resp_lines;
      lock;
    }
  | Some sh ->
    (* [m] is ignored: each half is built on its owning shard's machine
       (mid-run, {!Shard.link_urpc} routes the construction there). *)
    let req = Shard.link_urpc sh ~sender:client ~receiver:server ~name:(name ^ ".req") () in
    let resp =
      Shard.link_urpc sh ~sender:server ~receiver:client ~name:(name ^ ".resp") ()
    in
    {
      m = Shard.machine_of_core sh client;
      sm = Shard.machine_of_core sh server;
      req_tx = req.Shard.tx;
      req_rx = req.Shard.rx;
      resp_tx = resp.Shard.tx;
      resp_rx = resp.Shard.rx;
      req_lines;
      resp_lines;
      lock;
    }

let export b handler =
  let rec loop () =
    let req, wants_resp = Urpc.recv b.req_rx in
    let resp = handler req in
    if wants_resp then Urpc.send b.resp_tx ~lines:b.resp_lines resp;
    loop ()
  in
  Engine.spawn b.sm.Machine.eng ~name:(Urpc.name b.req_rx ^ ".server") loop

let rpc b req =
  Sync.Mutex.with_lock b.lock (fun () ->
      Urpc.send b.req_tx ~lines:b.req_lines (req, true);
      Urpc.recv b.resp_rx)

let rpc_fill b fill =
  (* [fill] runs under the binding lock, so a caller may mutate and return
     a per-binding scratch request: the server consumes it before the
     response is sent, and no second RPC can refill it earlier. *)
  Sync.Mutex.with_lock b.lock (fun () ->
      Urpc.send b.req_tx ~lines:b.req_lines (fill (), true);
      Urpc.recv b.resp_rx)

let rpc_async b req =
  Sync.Mutex.lock b.lock;
  Urpc.send b.req_tx ~lines:b.req_lines (req, true);
  fun () ->
    let resp = Urpc.recv b.resp_rx in
    Sync.Mutex.unlock b.lock;
    resp

let oneway b req = Urpc.send b.req_tx ~lines:b.req_lines (req, false)

let client_core b = Urpc.sender b.req_tx
let server_core b = Urpc.receiver b.req_tx

(* At-most-once RPC over lossy channels: requests carry an id, the client
   retransmits with exponentially backed-off timeouts, and the server keeps
   a response cache so a retransmitted request replays the cached response
   instead of re-executing the handler. This is the fault-tolerant stub
   variant services use when a fault plan may drop/duplicate/delay URPC
   messages or kill the server's core. *)
module Reliable = struct
  type ('req, 'resp) t = {
    rb : (int * 'req, int * 'resp) binding;
    mutable next_id : int;
    base_timeout : int;
    max_attempts : int;
    mutable retries : int;
    mutable gave_up : int;
  }

  let connect ?shard m ~name ~client ~server ?(base_timeout = 30_000)
      ?(max_attempts = 6) ?req_lines ?resp_lines () =
    {
      rb = connect ?shard m ~name ~client ~server ?req_lines ?resp_lines ();
      next_id = 1;
      base_timeout;
      max_attempts;
      retries = 0;
      gave_up = 0;
    }

  let export t ?(should_halt = fun () -> false) handler =
    let seen = Hashtbl.create 32 in
    let rec loop () =
      let (id, req), wants_resp = Urpc.recv t.rb.req_rx in
      (* A stopped core processes nothing more: consume-and-die models the
         request reaching a dead endpoint. *)
      if should_halt () then Engine.halt ();
      let resp =
        match Hashtbl.find_opt seen id with
        | Some r -> r  (* duplicate/retransmit: replay, don't re-execute *)
        | None ->
          let r = handler req in
          Hashtbl.replace seen id r;
          r
      in
      if wants_resp then Urpc.send t.rb.resp_tx ~lines:t.rb.resp_lines (id, resp);
      loop ()
    in
    Engine.spawn t.rb.sm.Machine.eng ~name:(Urpc.name t.rb.req_rx ^ ".rserver") loop

  let call t req =
    Sync.Mutex.with_lock t.rb.lock (fun () ->
        let id = t.next_id in
        t.next_id <- id + 1;
        let rec attempt n timeout =
          Urpc.send t.rb.req_tx ~lines:t.rb.req_lines ((id, req), true);
          let deadline = Engine.now_ () + timeout in
          (* Drain responses until ours arrives or the deadline passes;
             responses to earlier (timed-out) attempts are discarded. *)
          let rec await () =
            let left = deadline - Engine.now_ () in
            if left <= 0 then None
            else
              match Urpc.recv_timeout t.rb.resp_rx ~timeout:left with
              | None -> None
              | Some (rid, resp) -> if rid = id then Some resp else await ()
          in
          match await () with
          | Some resp -> Ok resp
          | None ->
            if n >= t.max_attempts then begin
              t.gave_up <- t.gave_up + 1;
              Error `Timeout
            end
            else begin
              t.retries <- t.retries + 1;
              attempt (n + 1) (timeout * 2)
            end
        in
        attempt 1 t.base_timeout)

  let stats_retries t = t.retries
  let stats_gave_up t = t.gave_up
  let client_core t = client_core t.rb
  let server_core t = server_core t.rb
end
