(** User-level virtual address space management (§4.7-4.8).

    All page-table manipulation happens in user space by invoking page
    table and frame capabilities; the CPU driver only checks. A domain's
    dispatchers share one vspace across cores (the shared-page-table
    variant of §4.8); unmapping or reducing rights is a global operation:
    no stale TLB entry may survive, implemented as a one-phase commit
    through the monitors ({!unmap}, {!protect}).

    Page-table storage itself is allocated from RAM capabilities retyped to
    [Page_table] — the invariant that user memory can never alias a page
    table is exactly what the distributed retype protocol protects. *)

type t

(** How the domain's hardware page tables are organized across cores —
    the two alternatives §4.8 discusses. *)
type pt_mode =
  | Shared_table
      (** one table shared by all dispatchers: cheap updates, but an unmap
          must shoot down every core the domain spans *)
  | Replicated of { track_tlb_fills : bool }
      (** per-core table replicas kept consistent by monitor messages:
          costlier map, and — when fills are tracked — shootdowns touch
          only cores that may actually cache the translation.

          Under a sharded (PDES) boot this mode is unsupported for domains
          spanning shards: the lazy fill-tracking table is host state
          mutated at first touch from whichever core faults, which would
          race across a window cut. Sharded runs use {!Shared_table}. *)

val create :
  ?mode:pt_mode ->
  ?machine_of:(int -> Mk_hw.Machine.t) ->
  Mk_hw.Machine.t -> domid:Types.domid -> cores:int list -> pt_root:Cap.t -> t
(** [pt_root] must be a level-4 page-table capability. [mode] defaults to
    {!Shared_table}. [machine_of] (sharded boot) selects the machine whose
    TLBs/compute a given core's accesses charge — its own shard's. *)

val mode : t -> pt_mode

val domid : t -> Types.domid
val cores : t -> int list

val map :
  t -> driver:Cpu_driver.t -> vaddr:Types.vaddr -> frame:Cap.t -> writable:bool ->
  (unit, Types.error) result
(** Install a mapping for every page of the frame. Checks the capability
    type and rights; charges the page-table walk stores. *)

val touch : t -> core:int -> vaddr:Types.vaddr -> (unit, Types.error) result
(** Simulate an access: on a TLB miss, charge the hardware walk and fill
    the core's TLB. [Err_not_mapped] on unmapped addresses (a page fault
    the simulation treats as fatal). *)

val is_mapped : t -> vaddr:Types.vaddr -> bool
val writable : t -> vaddr:Types.vaddr -> bool

val shoot_members : t -> vpages:int list -> int list
(** The cores a shootdown of [vpages] must reach: all spanned cores for a
    shared table; only recorded TLB-fillers when tracking is on. *)

val unmap :
  t ->
  monitor:Monitor.t ->
  plan_for:(members:int list -> Routing.plan) ->
  vaddr:Types.vaddr ->
  bytes:int ->
  (unit, Types.error) result
(** Remove the mapping and shoot down the TLBs that may hold it, through
    the monitors; returns only when all reached cores have acknowledged
    (the order-insensitive one-phase commit of §3.4). [plan_for] builds
    the routing plan for a given member set — replica updates span the
    whole domain, TLB invalidations only {!shoot_members}. *)

val protect :
  t ->
  monitor:Monitor.t ->
  plan_for:(members:int list -> Routing.plan) ->
  vaddr:Types.vaddr ->
  bytes:int ->
  writable:bool ->
  (unit, Types.error) result
(** Reduce rights on a mapped range (the mprotect of Figure 7); same
    shootdown obligation as {!unmap}. *)

val mapped_pages : t -> int

val pt_update_cost : int
(** Cycles to edit one page-table entry (checked store via CPU driver). *)
