(** The per-core monitor process (§4.4).

    Monitors collectively coordinate system-wide state: they run the
    agreement protocols that keep replicated data structures (capability
    databases, address-space mappings) globally consistent, perform
    inter-core capability transfer and channel setup, and wake blocked
    local dispatchers. Each monitor is a single-core, schedulable
    user-space process whose only cross-core interface is URPC.

    Two protocol engines cover everything the paper needs:

    - {!run_fan}: ordered one-phase dissemination over a {!Routing.plan}
      with aggregated acknowledgements — TLB shootdown (§5.1) and any
      order-insensitive replica update.
    - {!agree}: two-phase commit over the same plans — capability retype
      and revoke (§4.7, Figure 8), where all cores must agree on a single
      ordering of operations. *)

type fan_op =
  | Op_noop  (** raw messaging-cost measurement (Figure 6) *)
  | Op_tlb_invalidate of { vpages : int list }
  | Op_set_replica of { key : string; value : int }
      (** generic replicated OS state (e.g. scheduler parameters) *)
  | Op_pt_update of { vpages : int list }
      (** apply a mapping change to this core's page-table replica and drop
          the stale TLB entries (the replicated-table variant of §4.8) *)

type agree_op =
  | Ag_noop  (** 2PC cost measurement (Figure 8) *)
  | Ag_retype of {
      cap : Cap.t;
      expected_frontier : int;
      bytes : int;  (** total bytes being carved out *)
    }
  | Ag_revoke of { cap : Cap.t }

type msg

type t

val create : Mk_hw.Machine.t -> Cpu_driver.t -> t
(** One monitor per CPU driver / core. *)

val core : t -> int
val driver : t -> Cpu_driver.t
val machine : t -> Mk_hw.Machine.t

val connect : ?shard:Shard.t -> t array -> unit
(** Build the full mesh of monitor URPC channels (buffers NUMA-local to
    each receiver) and start every monitor's dispatch loop. Call once at
    boot with all monitors. With [shard] (a sharded boot), a mesh edge
    whose endpoints live on different shards is split at the wire: the
    sender half's ring is homed on the sender's package in the sender's
    shard machine, the receiver half on the receiver's side, and each
    message crosses as a timestamped Pdes message carrying one
    interconnect leg — the monitors' dispatch loops never read another
    shard's state. *)

val chan_to : t -> int -> msg Urpc.t
(** The outgoing channel to a peer monitor (for channel-setup services). *)

val ping : t -> int -> int
(** Round-trip a message to a peer monitor and return the cycles taken:
    the boot-time online measurement that feeds the SKB. *)

val run_fan : t -> plan:Routing.plan -> op:fan_op -> unit
(** Disseminate [op] along the plan; blocks until every reached core has
    applied it and acknowledgements have aggregated back. The op is also
    applied locally at the root. *)

val run_fan_async : t -> plan:Routing.plan -> op:fan_op -> unit Mk_sim.Sync.Ivar.t
(** Split-phase variant: returns immediately with a completion ivar, so
    requests can be pipelined (Figure 8's "cost when pipelining"). *)

val agree : t -> plan:Routing.plan -> op:agree_op -> bool
(** Two-phase commit of [op] across the plan's cores (plus the root).
    Returns whether the operation committed. On commit every replica has
    applied the op; on abort nothing changed anywhere. *)

val agree_async : t -> plan:Routing.plan -> op:agree_op -> bool Mk_sim.Sync.Ivar.t

val send_cap : t -> dst:int -> Cap.t -> (unit, Types.error) result
(** Transfer a capability to another core's database, refusing types that
    may not cross cores and capabilities under revocation (§4.8). *)

val set_replica : t -> string -> int -> unit
val get_replica : t -> string -> int option
(** The generic replicated key/value state updated by [Op_set_replica]. *)

val set_on_replica : t -> (key:string -> value:int -> unit) -> unit
(** Hook fired whenever an [Op_set_replica] is applied on this monitor
    (locally or via a fan). A sharded {!Os} uses it to keep each shard's
    liveness view in sync from the death announcements, without reading
    another shard's state. *)

val register_wake : t -> Types.domid -> (unit -> unit) -> unit
(** Register the waker the monitor calls when a [Wake] message arrives for
    a blocked local dispatcher (§4.6's poll-then-block path). *)

val wake_remote : t -> core:int -> Types.domid -> unit

(** {2 Failure detection (fault subsystem)} *)

val start_ft :
  t ->
  interval:int ->
  threshold:float ->
  until:int ->
  on_death:(core:int -> at:int -> unit) ->
  unit
(** Start this monitor's failure-detection task: every [interval] cycles it
    heartbeats every peer it believes alive and evaluates a per-peer
    phi-accrual detector ({!Mk_fault.Detector}) with the given [threshold].
    The first monitor to suspect a peer calls [on_death] (from its
    detection task's context); peers already announced dead via the
    [dead:<core>] replica key are marked without a callback. The task stops
    at absolute time [until] so runs can drain. *)

val kill : t -> unit
(** The monitor's core stopped: terminate its event loop and heartbeat
    task. Queued incoming messages are never consumed. Wired to the fault
    injector's core-stop events by [Ft.attach]. *)

val is_halted : t -> bool

val peer_suspected : t -> core:int -> bool
(** This monitor's local view of a peer (detector fired or announcement
    received). *)

val dead_replica_key : int -> string
(** Replica key under which a core's death is announced mesh-wide. *)

val handle_cost : int
(** Monitor event-loop cycles charged per handled message. *)

val messages_handled : t -> int

val sleep_stats : t -> int * int
(** [(times_slept, cycles_slept)] — §4.4's core idling: after polling its
    channels for the §5.2 window with nothing arriving, the monitor puts
    the core to sleep (MWAIT / wait-for-IPI) and pays a wake-up cost when
    the next message lands. *)
