open Mk_sim
open Mk_hw

type mon_req =
  | Req_unmap of { dom : Dom.t; vaddr : int; bytes : int }
  | Req_protect of { dom : Dom.t; vaddr : int; bytes : int; writable : bool }

type mon_resp = (unit, Types.error) result

type t = {
  m : Machine.t;
  drivers : Cpu_driver.t array;
  monitors : Monitor.t array;
  the_skb : Skb.t;
  mms : Mm.t array;
  ns : Name_service.t;
  mutable endpoints : (mon_req, mon_resp) Lrpc.endpoint array;
  mutable next_domid : int;
  doms : (int, Dom.t) Hashtbl.t;
  (* Cores believed alive. A core leaves this set when the failure manager
     (Ft) marks it dead; routing plans are built over live members only. *)
  alive : bool array;
}

let machine t = t.m
let platform t = t.m.Machine.plat
let skb t = t.the_skb
let name_service t = t.ns
let n_cores t = Machine.n_cores t.m
let driver t ~core = t.drivers.(core)
let monitor t ~core = t.monitors.(core)
let mm t ~core = t.mms.(core)
let domains t = Hashtbl.fold (fun _ d acc -> d :: acc) t.doms []

let alive t ~core = t.alive.(core)
let mark_dead t ~core = t.alive.(core) <- false
let live_cores t =
  Array.to_list (Array.init (Array.length t.alive) Fun.id)
  |> List.filter (fun c -> t.alive.(c))

let latency t ~src ~dst =
  if src = dst then 0
  else
    match Skb.urpc_latency t.the_skb ~src ~dst with
    | Some l -> l
    | None -> Platform.hops_between (platform t) src dst

let plan t proto ~root ~members =
  (* Routing-tree repair: dead cores drop out of every plan, so fans and
     agreements route around them. With every core alive the filter is the
     identity (same list, same plan — zero-fault runs are unchanged). *)
  let members = List.filter (fun c -> t.alive.(c)) members in
  match proto with
  | Routing.Broadcast ->
    invalid_arg "Os.plan: broadcast has no tree plan (use Urpc.Broadcast)"
  | Routing.Unicast -> Routing.unicast ~root ~members
  | Routing.Multicast -> Routing.multicast (platform t) ~root ~members
  | Routing.Numa_multicast ->
    Routing.numa_multicast (platform t)
      ~latency:(fun ~src ~dst -> latency t ~src ~dst)
      ~root ~members

let default_plan t ~root ~members = plan t Routing.Numa_multicast ~root ~members

let run t ?(name = "main") f =
  let result = ref None in
  Engine.spawn t.m.Machine.eng ~name (fun () -> result := Some (f ()));
  Machine.run t.m;
  match !result with
  | Some r -> r
  | None -> failwith "Os.run: main task did not complete (deadlock?)"

(* Per-core monitor LRPC endpoint: how applications reach OS services that
   need global coordination (§4.4). The handler runs the monitor-side work
   in the caller's context after the kernel crossing Lrpc charges. *)
let monitor_endpoint t core =
  Lrpc.export t.drivers.(core) ~name:(Printf.sprintf "monitor%d.vspace" core)
    (fun req ->
      let mon = t.monitors.(core) in
      let plan_for ~members = default_plan t ~root:core ~members in
      match req with
      | Req_unmap { dom; vaddr; bytes } ->
        Vspace.unmap (Dom.vspace dom) ~monitor:mon ~plan_for ~vaddr ~bytes
      | Req_protect { dom; vaddr; bytes; writable } ->
        Vspace.protect (Dom.vspace dom) ~monitor:mon ~plan_for ~vaddr ~bytes ~writable)

let boot ?eng ?fault ?(measure_latencies = true) ?(mem_per_core = 64 * 1024 * 1024)
    plat =
  let m = Machine.create ?eng ?fault plat in
  let n = Machine.n_cores m in
  let drivers = Array.init n (fun core -> Cpu_driver.boot m ~core) in
  let monitors = Array.map (fun d -> Monitor.create m d) drivers in
  Monitor.connect monitors;
  let mms = Mm.init m drivers ~mem_per_core in
  Mm.set_peers mms ~monitors;
  let the_skb = Skb.create () in
  Skb.populate_platform the_skb plat;
  let ns = Name_service.create m ~home_core:0 in
  let t =
    {
      m;
      drivers;
      monitors;
      the_skb;
      mms;
      ns;
      endpoints = [||];
      next_domid = 1;
      doms = Hashtbl.create 8;
      alive = Array.make n true;
    }
  in
  t.endpoints <- Array.init n (fun core -> monitor_endpoint t core);
  (* Online measurement (§4.9): round-trip each monitor pair once and
     record the one-way latency as an SKB fact. *)
  if measure_latencies then
    Engine.spawn m.Machine.eng ~name:"boot.measure" (fun () ->
        for src = 0 to n - 1 do
          for dst = 0 to n - 1 do
            if src <> dst then begin
              (* First ping warms the channel (cold misses on the ring and
                 bookkeeping lines); the second is the steady-state figure. *)
              let (_ : int) = Monitor.ping monitors.(src) dst in
              let rtt = Monitor.ping monitors.(src) dst in
              Skb.assert_urpc_latency the_skb ~src ~dst ~cycles:(rtt / 2)
            end
          done
        done);
  Machine.run m;
  t

let spawn_domain ?pt_mode t ~name ~cores =
  (match cores with [] -> invalid_arg "Os.spawn_domain: empty core list" | _ -> ());
  let domid = t.next_domid in
  t.next_domid <- domid + 1;
  let home = List.hd cores in
  (* Root page table: RAM from the local memory server retyped in place. *)
  let pt_root =
    match Mm.alloc_ram t.mms.(home) ~bytes:Types.page_size with
    | Error e -> Types.fail e
    | Ok ram ->
      (match
         Cpu_driver.cap_retype t.drivers.(home) ram ~to_:(Cap.Page_table 4) ~count:1
           ~bytes_each:Types.page_size
       with
       | Ok [ c ] -> c
       | Ok _ | Error _ -> Types.fail Types.Err_no_memory)
  in
  let vspace = Vspace.create ?mode:pt_mode t.m ~domid ~cores ~pt_root in
  let disps =
    List.map
      (fun core ->
        let d = Dispatcher.create ~domid ~core ~name:(Printf.sprintf "%s/%d" name core) in
        Cpu_driver.add_dispatcher t.drivers.(core) d;
        (core, d))
      cores
  in
  (* Announce the new domain to every OS node it spans: replicated domain
     table updated through the monitors. *)
  let members = cores in
  let p = default_plan t ~root:home ~members in
  Monitor.run_fan t.monitors.(home) ~plan:p
    ~op:(Monitor.Op_set_replica { key = Printf.sprintf "dom%d" domid; value = 1 });
  let dom = Dom.create ~domid ~name ~cores ~vspace ~disps in
  Hashtbl.replace t.doms domid dom;
  dom

let alloc_map_frame t dom ~core ~vaddr ~bytes =
  match Mm.alloc_frame t.mms.(core) ~bytes with
  | Error e -> Error e
  | Ok frame ->
    (match
       Vspace.map (Dom.vspace dom) ~driver:t.drivers.(core) ~vaddr ~frame ~writable:true
     with
     | Ok () -> Ok frame
     | Error e -> Error e)

let unmap t dom ~core ~vaddr ~bytes =
  Lrpc.call t.endpoints.(core) (Req_unmap { dom; vaddr; bytes })

let protect t dom ~core ~vaddr ~bytes ~writable =
  Lrpc.call t.endpoints.(core) (Req_protect { dom; vaddr; bytes; writable })
