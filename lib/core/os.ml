open Mk_sim
open Mk_hw

type mon_req =
  | Req_unmap of { dom : Dom.t; vaddr : int; bytes : int }
  | Req_protect of { dom : Dom.t; vaddr : int; bytes : int; writable : bool }

type mon_resp = (unit, Types.error) result

type measure = No_measure | Representative | Exhaustive

type t = {
  m : Machine.t;  (* the machine; shard 0's under a sharded boot *)
  sh : Shard.t option;
  drivers : Cpu_driver.t array;
  monitors : Monitor.t array;
  the_skb : Skb.t;
  mms : Mm.t array;
  ns : Name_service.t;
  mutable endpoints : (mon_req, mon_resp) Lrpc.endpoint array;
  mutable next_domid : int;
  doms : (int, Dom.t) Hashtbl.t;
  (* Cores believed alive. A core leaves this set when the failure manager
     (Ft) marks it dead; routing plans are built over live members only.
     One view per shard (a single one unsharded): each shard only reads and
     writes its own, kept in sync by the mesh-wide death announcements
     (every monitor applying the [dead:<core>] replica fires the
     [on_replica] hook on its own shard). *)
  alive : bool array array;
}

let machine t = t.m
let shard t = t.sh
let platform t = t.m.Machine.plat
let skb t = t.the_skb
let name_service t = t.ns
let n_cores t = Machine.n_cores t.m
let driver t ~core = t.drivers.(core)
let monitor t ~core = t.monitors.(core)
let mm t ~core = t.mms.(core)
let domains t = Hashtbl.fold (fun _ d acc -> d :: acc) t.doms []

let machine_of_core t core =
  match t.sh with None -> t.m | Some sh -> Shard.machine_of_core sh core

(* Run [f] in [core]'s shard context (direct call unsharded, same-shard, or
   in host context). [src_core] attributes the interconnect legs of a
   cross-shard transfer. *)
let call t ?(src_core = 0) ~core f =
  match t.sh with None -> f () | Some sh -> Shard.call sh ~src_core ~core f

let post t ?(src_core = 0) ~core fn =
  match t.sh with None -> fn () | Some sh -> Shard.post sh ~src_core ~core fn

(* The liveness view of the shard whose window is executing; shard 0's
   (= the only one unsharded) from host context. *)
let view t =
  match t.sh with
  | None -> t.alive.(0)
  | Some sh -> (
    match Pdes.current (Shard.pdes sh) with
    | None -> t.alive.(0)
    | Some s -> t.alive.(s))

let alive t ~core = (view t).(core)
let mark_dead t ~core = (view t).(core) <- false

let live_cores t =
  let v = view t in
  Array.to_list (Array.init (Array.length v) Fun.id)
  |> List.filter (fun c -> v.(c))

let latency t ~src ~dst =
  if src = dst then 0
  else
    match Skb.urpc_latency t.the_skb ~src ~dst with
    | Some l -> l
    | None -> Platform.hops_between (platform t) src dst

let plan t proto ~root ~members =
  (* Routing-tree repair: dead cores drop out of every plan, so fans and
     agreements route around them. With every core alive the filter is the
     identity (same list, same plan — zero-fault runs are unchanged). *)
  let v = view t in
  let members = List.filter (fun c -> v.(c)) members in
  match proto with
  | Routing.Broadcast ->
    invalid_arg "Os.plan: broadcast has no tree plan (use Urpc.Broadcast)"
  | Routing.Unicast -> Routing.unicast ~root ~members
  | Routing.Multicast -> Routing.multicast (platform t) ~root ~members
  | Routing.Numa_multicast ->
    Routing.numa_multicast (platform t)
      ~latency:(fun ~src ~dst -> latency t ~src ~dst)
      ~root ~members

let default_plan t ~root ~members = plan t Routing.Numa_multicast ~root ~members

(* Dependency-driven placement (§4.9, closing the loop): profile a run's
   URPC traffic, assert the measured graph as SKB facts, and let the SKB
   answer thread->core mapping queries. *)

let iter_machines t f =
  let seen = ref [] in
  for core = 0 to n_cores t - 1 do
    let m = machine_of_core t core in
    if not (List.memq m !seen) then begin
      seen := m :: !seen;
      f m
    end
  done

let start_comm_profile t =
  let c = Trace.Comm.create () in
  iter_machines t (fun m -> m.Machine.comm <- Some c);
  c

let stop_comm_profile t c =
  iter_machines t (fun m -> m.Machine.comm <- None);
  Trace.Comm.snapshot c

let assert_comm_edges t edges =
  List.iter (fun (src, dst, weight) -> Skb.assert_comm_edge t.the_skb ~src ~dst ~weight) edges

let comm_placement t ~threads =
  Routing.place_threads (platform t) ~threads ~edges:(Skb.comm_edges t.the_skb)

let run t ?(name = "main") f =
  let result = ref None in
  (match t.sh with
   | None ->
     Engine.spawn t.m.Machine.eng ~name (fun () -> result := Some (f ()));
     Machine.run t.m
   | Some sh ->
     (* The main task lives on shard 0; work reaches the other shards
        through the cross-shard hooks ([call]/[post], URPC, IPIs). *)
     Engine.spawn (Shard.engine sh 0) ~name (fun () -> result := Some (f ()));
     Shard.exec sh);
  match !result with
  | Some r -> r
  | None -> failwith "Os.run: main task did not complete (deadlock?)"

(* Per-core monitor LRPC endpoint: how applications reach OS services that
   need global coordination (§4.4). The handler runs the monitor-side work
   in the caller's context after the kernel crossing Lrpc charges. *)
let monitor_endpoint t core =
  Lrpc.export t.drivers.(core) ~name:(Printf.sprintf "monitor%d.vspace" core)
    (fun req ->
      let mon = t.monitors.(core) in
      let plan_for ~members = default_plan t ~root:core ~members in
      match req with
      | Req_unmap { dom; vaddr; bytes } ->
        Vspace.unmap (Dom.vspace dom) ~monitor:mon ~plan_for ~vaddr ~bytes
      | Req_protect { dom; vaddr; bytes; writable } ->
        Vspace.protect (Dom.vspace dom) ~monitor:mon ~plan_for ~vaddr ~bytes ~writable)

(* -- Boot-time online measurement (§4.9) -- *)

(* Representative probing: the platforms are homogeneous (identical
   packages, uniform share groups), so a pair's steady-state round trip is
   determined by its ordered package pair — and, inside a package, by
   whether the cores share a cache. Probing one representative pair per
   class and deriving the full n·(n−1) fact set gives the same fact shape
   without the quadratic ping storm (~2M round trips at 1024 cores). *)
let probe_class plat ~src ~dst =
  let ps = Platform.package_of plat src and pd = Platform.package_of plat dst in
  if ps = pd then (-1, -1, Platform.shares_cache plat src dst)
  else (ps, pd, false)

let probe_key plat measure ~src ~dst =
  match measure with
  | Exhaustive -> (src, dst, false)
  | _ -> probe_class plat ~src ~dst

let probe_pairs plat measure =
  let n = Platform.n_cores plat in
  match measure with
  | No_measure -> []
  | Exhaustive ->
    List.concat_map
      (fun src ->
        List.filter_map
          (fun dst -> if src = dst then None else Some (src, dst))
          (List.init n Fun.id))
      (List.init n Fun.id)
  | Representative ->
    let cpp = plat.Platform.cores_per_package in
    let p = plat.Platform.n_packages in
    let first q = q * cpp in
    (* Intra-package classes: probe both directions from package 0's first
       core (homogeneity makes the package choice immaterial). *)
    let intra =
      if cpp < 2 then []
      else
        List.concat_map
          (fun shared ->
            let rec partner c =
              if c >= cpp then None
              else if Platform.shares_cache plat 0 c = shared then Some c
              else partner (c + 1)
            in
            match partner 1 with
            | Some c -> [ (0, c); (c, 0) ]
            | None -> [])
          [ true; false ]
    in
    let inter =
      List.concat_map
        (fun ps ->
          List.filter_map
            (fun pd -> if ps = pd then None else Some (first ps, first pd))
            (List.init p Fun.id))
        (List.init p Fun.id)
    in
    intra @ inter

(* Derive and assert the full ordered-pair fact set from the probed
   round trips (same loop order as the exhaustive path). *)
let assert_latency_facts the_skb plat measure rtt_of =
  let n = Platform.n_cores plat in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then
        let rtt = rtt_of (probe_key plat measure ~src ~dst) in
        Skb.assert_urpc_latency the_skb ~src ~dst ~cycles:(rtt / 2)
    done
  done

let boot_unsharded ?eng ?fault ~measure ~mem_per_core plat =
  let m = Machine.create ?eng ?fault plat in
  let n = Machine.n_cores m in
  let drivers = Array.init n (fun core -> Cpu_driver.boot m ~core) in
  let monitors = Array.map (fun d -> Monitor.create m d) drivers in
  Monitor.connect monitors;
  let mms = Mm.init m drivers ~mem_per_core in
  Mm.set_peers mms ~monitors;
  let the_skb = Skb.create () in
  Skb.populate_platform the_skb plat;
  let ns = Name_service.create m ~home_core:0 in
  let t =
    {
      m;
      sh = None;
      drivers;
      monitors;
      the_skb;
      mms;
      ns;
      endpoints = [||];
      next_domid = 1;
      doms = Hashtbl.create 8;
      alive = [| Array.make n true |];
    }
  in
  t.endpoints <- Array.init n (fun core -> monitor_endpoint t core);
  (* Online measurement (§4.9): round-trip monitor pairs and record the
     one-way latency as an SKB fact. *)
  (match measure with
   | No_measure -> ()
   | Exhaustive ->
     Engine.spawn m.Machine.eng ~name:"boot.measure" (fun () ->
         for src = 0 to n - 1 do
           for dst = 0 to n - 1 do
             if src <> dst then begin
               (* First ping warms the channel (cold misses on the ring and
                  bookkeeping lines); the second is the steady-state figure. *)
               let (_ : int) = Monitor.ping monitors.(src) dst in
               let rtt = Monitor.ping monitors.(src) dst in
               Skb.assert_urpc_latency the_skb ~src ~dst ~cycles:(rtt / 2)
             end
           done
         done)
   | Representative ->
     Engine.spawn m.Machine.eng ~name:"boot.measure" (fun () ->
         let rtt = Hashtbl.create 64 in
         List.iter
           (fun (src, dst) ->
             let (_ : int) = Monitor.ping monitors.(src) dst in
             let r = Monitor.ping monitors.(src) dst in
             Hashtbl.replace rtt (probe_key plat measure ~src ~dst) r)
           (probe_pairs plat measure);
         assert_latency_facts the_skb plat measure (Hashtbl.find rtt)));
  Machine.run m;
  t

let dead_key_core key =
  match String.index_opt key ':' with
  | Some i when String.sub key 0 i = "dead" ->
    int_of_string_opt (String.sub key (i + 1) (String.length key - i - 1))
  | _ -> None

let boot_sharded ?faults ~n_shards ~measure ~mem_per_core plat =
  let sh = Shard.create ?faults ~n_shards plat in
  let n = Platform.n_cores plat in
  let machine_of = Shard.machine_of_core sh in
  (* Placement: each core's cpu driver, monitor, memory pool and LRPC
     endpoint live on its own shard's machine; the NS and SKB are homed on
     shard 0 and reached over the split URPC wire / post-boot host reads. *)
  let drivers = Array.init n (fun core -> Cpu_driver.boot (machine_of core) ~core) in
  let monitors = Array.init n (fun c -> Monitor.create (machine_of c) drivers.(c)) in
  Monitor.connect ~shard:sh monitors;
  let mms = Mm.init ~machine_of (Shard.machine sh 0) drivers ~mem_per_core in
  let same_shard a b = Shard.shard_of_core sh a = Shard.shard_of_core sh b in
  Mm.set_peers ~donor_ok:same_shard mms ~monitors;
  let the_skb = Skb.create () in
  Skb.populate_platform the_skb plat;
  let ns = Name_service.create ~shard:sh (Shard.machine sh 0) ~home_core:0 in
  let t =
    {
      m = Shard.machine sh 0;
      sh = Some sh;
      drivers;
      monitors;
      the_skb;
      mms;
      ns;
      endpoints = [||];
      next_domid = 1;
      doms = Hashtbl.create 8;
      alive = Array.init (Shard.n_shards sh) (fun _ -> Array.make n true);
    }
  in
  t.endpoints <- Array.init n (fun core -> monitor_endpoint t core);
  (* Death announcements keep every shard's liveness view in sync: each
     monitor applying the replica update marks the core dead in its own
     shard's view — no shard reads another's. *)
  Array.iteri
    (fun c mon ->
      let s = Shard.shard_of_core sh c in
      Monitor.set_on_replica mon (fun ~key ~value:_ ->
          match dead_key_core key with
          | Some core -> t.alive.(s).(core) <- false
          | None -> ()))
    monitors;
  (* Measurement: one probe task per shard pings that shard's share of the
     pairs (in canonical order) into a host-side table; the facts are
     derived and asserted after the boot windows quiesce, so the SKB —
     homed with shard 0 — is only written from host context. *)
  let pairs = probe_pairs plat measure in
  let res = Array.make (List.length pairs) 0 in
  let by_shard = Array.make (Shard.n_shards sh) [] in
  List.iteri
    (fun i (src, dst) ->
      let s = Shard.shard_of_core sh src in
      by_shard.(s) <- (i, src, dst) :: by_shard.(s))
    pairs;
  Array.iteri
    (fun s lst ->
      match List.rev lst with
      | [] -> ()
      | lst ->
        Engine.spawn (Shard.engine sh s) ~name:"boot.measure" (fun () ->
            List.iter
              (fun (i, src, dst) ->
                let (_ : int) = Monitor.ping monitors.(src) dst in
                res.(i) <- Monitor.ping monitors.(src) dst)
              lst))
    by_shard;
  Shard.exec sh;
  if measure <> No_measure then begin
    let rtt = Hashtbl.create 64 in
    List.iteri
      (fun i (src, dst) ->
        Hashtbl.replace rtt (probe_key plat measure ~src ~dst) res.(i))
      pairs;
    assert_latency_facts the_skb plat measure (Hashtbl.find rtt)
  end;
  t

let boot ?eng ?fault ?shards ?faults ?(measure_latencies = Representative)
    ?(mem_per_core = 64 * 1024 * 1024) plat =
  match shards with
  | None ->
    (match faults with
     | Some _ -> invalid_arg "Os.boot: ?faults requires ?shards"
     | None -> ());
    boot_unsharded ?eng ?fault ~measure:measure_latencies ~mem_per_core plat
  | Some n_shards ->
    (match (eng, fault) with
     | None, None -> ()
     | _ -> invalid_arg "Os.boot: ?eng/?fault do not apply to a sharded boot");
    boot_sharded ?faults ~n_shards ~measure:measure_latencies ~mem_per_core plat

let spawn_domain ?pt_mode t ~name ~cores =
  (match cores with [] -> invalid_arg "Os.spawn_domain: empty core list" | _ -> ());
  let domid = t.next_domid in
  t.next_domid <- domid + 1;
  let home = List.hd cores in
  (* Root page table: RAM from the local memory server retyped in place —
     on the home core's shard. *)
  let pt_root =
    call t ~core:home (fun () ->
        match Mm.alloc_ram t.mms.(home) ~bytes:Types.page_size with
        | Error e -> Types.fail e
        | Ok ram ->
          (match
             Cpu_driver.cap_retype t.drivers.(home) ram ~to_:(Cap.Page_table 4)
               ~count:1 ~bytes_each:Types.page_size
           with
           | Ok [ c ] -> c
           | Ok _ | Error _ -> Types.fail Types.Err_no_memory))
  in
  let machine_of =
    match t.sh with None -> None | Some sh -> Some (Shard.machine_of_core sh)
  in
  let vspace = Vspace.create ?mode:pt_mode ?machine_of t.m ~domid ~cores ~pt_root in
  let disps =
    List.map
      (fun core ->
        let d = Dispatcher.create ~domid ~core ~name:(Printf.sprintf "%s/%d" name core) in
        call t ~core (fun () -> Cpu_driver.add_dispatcher t.drivers.(core) d);
        (core, d))
      cores
  in
  (* Announce the new domain to every OS node it spans: replicated domain
     table updated through the monitors — fanned out from the home core's
     shard. *)
  let members = cores in
  call t ~core:home (fun () ->
      let p = default_plan t ~root:home ~members in
      Monitor.run_fan t.monitors.(home) ~plan:p
        ~op:(Monitor.Op_set_replica { key = Printf.sprintf "dom%d" domid; value = 1 }));
  let dom = Dom.create ~domid ~name ~cores ~vspace ~disps in
  Hashtbl.replace t.doms domid dom;
  dom

let alloc_map_frame t dom ~core ~vaddr ~bytes =
  call t ~core (fun () ->
      match Mm.alloc_frame t.mms.(core) ~bytes with
      | Error e -> Error e
      | Ok frame ->
        (match
           Vspace.map (Dom.vspace dom) ~driver:t.drivers.(core) ~vaddr ~frame
             ~writable:true
         with
         | Ok () -> Ok frame
         | Error e -> Error e))

let unmap t dom ~core ~vaddr ~bytes =
  call t ~core (fun () -> Lrpc.call t.endpoints.(core) (Req_unmap { dom; vaddr; bytes }))

let protect t dom ~core ~vaddr ~bytes ~writable =
  call t ~core (fun () ->
      Lrpc.call t.endpoints.(core) (Req_protect { dom; vaddr; bytes; writable }))
