(** Raw TLB-shootdown messaging protocols (§5.1, Figure 6).

    Measures only the inter-core messaging cost — no TLB invalidation, no
    monitor dispatch — exactly like the paper's Figure 6: the master core
    initiates a round, every slave core acknowledges, and the round ends
    when the master has collected all (possibly aggregated) acks.

    The four protocols differ in dissemination and buffer placement:
    Broadcast (one shared line all slaves pull), Unicast (point-to-point
    channels), Multicast (one forwarding aggregator per package), and
    NUMA-aware Multicast (aggregator-local buffers, farthest-first send
    order). *)

type t

val setup :
  Mk_hw.Machine.t ->
  proto:Routing.proto ->
  root:int ->
  cores:int list ->
  ?latency:(src:int -> dst:int -> int) ->
  ?plan:Routing.plan ->
  unit ->
  t
(** Build the channels and start the slave/aggregator tasks for one
    protocol instance. [latency] feeds the NUMA-aware plan ordering
    (defaults to interconnect hop count). [plan] overrides the tree
    entirely (e.g. one computed from SKB [comm_edge] facts); it must
    cover exactly [cores] minus the root, and is only meaningful for the
    tree-based protocols. *)

val round : t -> int
(** Run one shootdown round from the root; returns its latency in cycles.
    Must be called from a simulation task. *)

val proto : t -> Routing.proto
val n_cores : t -> int
