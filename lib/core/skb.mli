(** The system knowledge base (§4.9).

    A service holding knowledge of the underlying hardware as relational
    facts, queried with unification — our stand-in for the port of the
    ECLiPSe constraint solver the paper uses. It is populated from three
    sources, exactly as in the paper: hardware discovery (platform
    description), online measurement (boot-time URPC latency probing, see
    {!Os}), and pre-asserted facts (topology quirks).

    Facts are ground terms like [fact "ht_link" [Int 0; Int 1]]; queries
    may contain variables: [query skb (compound "core_package" [Var "c"; Int 3])]
    returns one substitution per matching fact. The multicast-tree
    computation of §5.1 ({!Routing.numa_multicast}) is a deterministic
    function over these facts. *)

type term =
  | Int of int
  | Atom of string
  | Var of string
  | Compound of string * term list

type subst = (string * term) list
(** Variable bindings produced by a query. *)

type t

val create : unit -> t

val assert_fact : t -> term -> unit
(** Add a ground fact (no variables). Raises [Invalid_argument] otherwise. *)

val retract : t -> term -> unit
(** Remove all facts unifying with the pattern. *)

val query : t -> term -> subst list
(** All substitutions under which the pattern unifies with a stored fact,
    in assertion order. *)

val query_one : t -> term -> subst option

val holds : t -> term -> bool
(** Is there at least one matching fact? *)

val lookup_int : subst -> string -> int
(** Binding of a variable expected to be an integer; raises [Not_found] /
    [Invalid_argument] otherwise. *)

val fact : string -> term list -> term
(** [fact f args] builds [Compound (f, args)]. *)

val size : t -> int

(** {1 Standard hardware facts} *)

val populate_platform : t -> Mk_hw.Platform.t -> unit
(** Assert the discovery facts: [core_package(core, pkg)],
    [share_group(core, grp)], [ht_link(a, b)], [num_cores(n)],
    [package_first_core(pkg, core)]. *)

val assert_urpc_latency : t -> src:int -> dst:int -> cycles:int -> unit
(** Online-measurement fact [urpc_latency(src, dst, cycles)]. *)

val urpc_latency : t -> src:int -> dst:int -> int option

val assert_comm_edge : t -> src:int -> dst:int -> weight:int -> unit
(** Online-measurement fact [comm_edge(src, dst, weight)]: a profiling
    run observed [weight] messages from logical thread [src] to [dst].
    Re-asserting an edge replaces its weight. *)

val comm_edges : t -> (int * int * int) list
(** All [comm_edge] facts as [(src, dst, weight)], sorted ascending. *)
