open Mk_sim
open Mk_hw

let create_cost = 300
let join_cost = 120
let migrate_dispatch_cost = 250  (* scheduler hand-off work on each side *)
let tcb_lines = 2  (* thread control block: registers + scheduler state *)

type thread = { t_core : int; finished : unit Sync.Ivar.t }

(* A migratable execution context: threads spawned with [spawn_ctx] read
   their current placement from it, so the user-level schedulers can move
   them between dispatchers (and hence cores) as §4.8 describes. *)
type ctx = {
  c_m : Machine.t;
  mutable c_core : int;
  tcb_addr : int;
}

let current_core c = c.c_core

let tids = ref 0

let spawn m ~disp ?name body =
  let core = Dispatcher.core disp in
  incr tids;
  let name =
    Option.value name ~default:(Printf.sprintf "%s.t%d" (Dispatcher.name disp) !tids)
  in
  Machine.compute m ~core create_cost;
  disp.Dispatcher.threads_spawned <- disp.Dispatcher.threads_spawned + 1;
  let finished = Sync.Ivar.create () in
  Engine.spawn m.Machine.eng ~name (fun () ->
      body ();
      Sync.Ivar.fill finished ());
  { t_core = core; finished }

let join th =
  Engine.charge join_cost;
  Sync.Ivar.read th.finished

let core th = th.t_core

let spawn_ctx m ~disp ?name body =
  let ctx = { c_m = m; c_core = Dispatcher.core disp; tcb_addr = Machine.alloc_lines m tcb_lines } in
  (* The creating core writes the fresh TCB. *)
  spawn m ~disp ?name (fun () ->
      let cl = m.Machine.plat.Platform.cacheline in
      for i = 0 to tcb_lines - 1 do
        Coherence.store m.Machine.coh ~core:ctx.c_core (ctx.tcb_addr + (i * cl))
      done;
      body ctx)

(* Move the calling thread to another dispatcher: the two user-level
   schedulers hand the TCB over; the destination core pulls its cache
   lines. No kernel involvement (§4.8). *)
let migrate ctx ~to_disp =
  let dst = Dispatcher.core to_disp in
  if dst <> ctx.c_core then begin
    let m = ctx.c_m in
    Machine.compute m ~core:ctx.c_core migrate_dispatch_cost;
    Machine.compute m ~core:dst migrate_dispatch_cost;
    let cl = m.Machine.plat.Platform.cacheline in
    for i = 0 to tcb_lines - 1 do
      Coherence.load m.Machine.coh ~core:dst (ctx.tcb_addr + (i * cl))
    done;
    Dispatcher.upcall to_disp;
    ctx.c_core <- dst
  end

module Mutex = struct
  type t = { m : Machine.t; line : int; inner : Sync.Mutex.t }

  let create m = { m; line = Machine.alloc_lines m 1; inner = Sync.Mutex.create () }

  (* A test-and-set acquire is (at least) one coherent store to the lock
     line; contention beyond that is modelled by the FIFO handoff. *)
  let lock t ~core =
    Coherence.store t.m.Machine.coh ~core t.line;
    Sync.Mutex.lock t.inner

  let unlock t ~core =
    Coherence.store t.m.Machine.coh ~core t.line;
    Sync.Mutex.unlock t.inner
end

module Barrier = struct
  type t = {
    m : Machine.t;
    counter_line : int;
    sense_line : int;
    parties : int;
    mutable arrived : int;
    mutable waiters : Engine.waker list;
  }

  let create m ~parties =
    if parties <= 0 then invalid_arg "Threads.Barrier.create";
    {
      m;
      counter_line = Machine.alloc_lines m 1;
      sense_line = Machine.alloc_lines m 1;
      parties;
      arrived = 0;
      waiters = [];
    }

  let await t ~core =
    (* Atomic increment of the shared counter. Under contention a
       compare-exchange retries; the retry count grows with the number of
       simultaneous arrivals — the "different scaling under contention" of
       §5.3's user-level barrier. *)
    (* Retries grow superlinearly: every failed CAS re-arms every other
       arriving core's failure window. *)
    let retries = 1 + (t.parties * t.parties / 12) in
    for _ = 1 to retries do
      Coherence.store t.m.Machine.coh ~core t.counter_line
    done;
    t.arrived <- t.arrived + 1;
    if t.arrived = t.parties then begin
      t.arrived <- 0;
      (* Flip the sense line; every spinner then pulls the new value. *)
      ignore (Coherence.store_posted t.m.Machine.coh ~core t.sense_line : int);
      let ws = List.rev t.waiters in
      t.waiters <- [];
      List.iter (fun (w : Engine.waker) -> w ()) ws
    end
    else begin
      Engine.suspend (fun w -> t.waiters <- w :: t.waiters);
      (* Woken by the sense flip: fetch the sense line (coherence miss). *)
      Coherence.load t.m.Machine.coh ~core t.sense_line
    end
end

module Msg_barrier = struct
  (* Each channel is kept as its (tx, rx) halves: identical unsharded, a
     {!Shard.link_urpc} pair when the barrier spans a PDES cut — senders
     only touch tx (their own shard's ring), receivers only rx. *)
  type t = {
    parties : (int * int) list;
    chans_up : (int * (unit Urpc.t * unit Urpc.t)) list;  (* party -> coordinator *)
    chans_down : (int * (unit Urpc.t * unit Urpc.t)) list;  (* coordinator -> party *)
    coordinator_core : int;
    mutable coord_party : int option;  (* party index co-located with coord *)
    mutable arrived_local : int;
  }

  let create ?shard m ~coordinator ~parties =
    let link ~sender ~receiver ~name =
      match shard with
      | None ->
        let ch = Urpc.create m ~sender ~receiver ~name () in
        (ch, ch)
      | Some sh ->
        let l = Shard.link_urpc sh ~sender ~receiver ~name () in
        (l.Shard.tx, l.Shard.rx)
    in
    let chans_up =
      List.filter_map
        (fun (p, c) ->
          if c = coordinator then None
          else
            Some
              ( p,
                link ~sender:c ~receiver:coordinator
                  ~name:(Printf.sprintf "bar_up%d" p) ))
        parties
    in
    let chans_down =
      List.filter_map
        (fun (p, c) ->
          if c = coordinator then None
          else
            Some
              ( p,
                link ~sender:coordinator ~receiver:c
                  ~name:(Printf.sprintf "bar_down%d" p) ))
        parties
    in
    let coord_party =
      List.find_map (fun (p, c) -> if c = coordinator then Some p else None) parties
    in
    {
      parties;
      chans_up;
      chans_down;
      coordinator_core = coordinator;
      coord_party;
      arrived_local = 0;
    }

  (* The coordinator's own await collects everyone's signal and releases
     them; remote parties signal up and block on their down channel. *)
  let await t ~party =
    match t.coord_party with
    | Some cp when cp = party ->
      List.iter (fun (_, (_, rx)) -> Urpc.recv rx) t.chans_up;
      List.iter (fun (_, (tx, _)) -> Urpc.send tx ()) t.chans_down
    | _ ->
      let up_tx, _ = List.assoc party t.chans_up in
      let _, down_rx = List.assoc party t.chans_down in
      Urpc.send up_tx ();
      Urpc.recv down_rx
end
