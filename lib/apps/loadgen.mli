(** Closed-loop load generator for the cluster subsystem.

    Simulates [users] concurrent users in closed loop (request → reply →
    think → repeat) with memory proportional to requests in flight, not
    users: first arrivals stagger uniformly over one think time, and
    re-arrivals are armed from the reply callback. Client-observed latency
    of replies completing inside [w_start, w_end) lands in a
    constant-space {!Mk_sim.Stats.Histogram}. *)

type t

val start :
  eng:Mk_sim.Engine.t ->
  send:(Serve.request -> unit) ->
  users:int ->
  think:int ->
  t_start:int ->
  t_end:int ->
  w_start:int ->
  w_end:int ->
  unit ->
  t
(** Spawn the arrival generator on the client machine's engine. [send]
    transmits one request and is called from task context on [eng]; first
    arrivals stagger over [t_start, t_start + think); arrivals stop after
    [t_end]. All times are absolute. *)

val on_reply : t -> Serve.reply -> unit
(** Reply delivery: record latency (served) or a shed (rejected), then arm
    the user's next arrival. Effect-free entry point — safe from a
    {!Mk_net.Machine_link} delivery thunk. *)

val hist : t -> Mk_sim.Stats.Histogram.t
val users : t -> int
val issued : t -> int
val offered : t -> int
(** Arrivals issued inside the measurement window. *)

val completed : t -> int
(** Served replies that completed inside the window. *)

val shed : t -> int
(** Rejected replies that completed inside the window. *)

val completed_total : t -> int
val shed_total : t -> int
val in_flight : t -> int

val users_started : t -> int
(** Distinct users whose first arrival has fired (sessions the run
    touched) — bounded by the horizon when think exceeds it. *)
