(** OS-neutral parallel runtime for the compute-bound workloads (§5.3).

    Figure 9 runs identical OpenMP/SPLASH programs on Barrelfish and Linux;
    the performance differences come from the threading and synchronization
    implementations (user-level library vs. in-kernel). This interface
    captures exactly that: a way to start one worker per core and a barrier,
    with each OS providing its own implementation. The compute kernels in
    {!Nas} and {!Splash} are written once against this interface. *)

type worker_ctx = {
  rank : int;
  wcore : int;
  barrier : unit -> unit;  (** full-team barrier, charged to this worker's core *)
}

type t = {
  rt_name : string;
  rt_machine : Mk_hw.Machine.t;
  rt_machine_of : int -> Mk_hw.Machine.t;
      (** The machine a given worker core's accesses charge — its shard's
          under a sharded OS, {!rt_machine} otherwise. *)
  rt_alloc : int -> int;
      (** Allocate workload cache lines every worker may touch: the shared
          arena ({!Mk.Shard.alloc_shared}) under a sharded OS, plain
          {!Mk_hw.Machine.alloc_lines} otherwise. Call before [run_team]. *)
  rt_call : 'a. src_core:int -> (unit -> 'a) -> 'a;
      (** Run a closure over shared host state (work queues) in the
          coordinator's shard context; the identity unsharded. *)
  run_team : cores:int list -> (worker_ctx -> unit) -> unit;
      (** Start one worker per core, wait for all to finish. Task context
          required. Under a sharded OS each worker runs on its own core's
          shard and the team barrier is message-based over split URPC
          links. *)
}

val name : t -> string

val barrelfish : Mk.Os.t -> t
(** User-level threads in a shared-address-space domain; barriers are the
    user-space shared-line implementation of {!Mk.Threads.Barrier}. *)

val barrelfish_msg : Mk.Os.t -> t
(** Variant using the message-based barrier ({!Mk.Threads.Msg_barrier}) —
    the ablation for §4.8's "thread schedulers exchange messages". *)

val linux : Mk_baseline.Monolithic.t -> t
(** Kernel threads created by clone; barriers via futex system calls. *)
