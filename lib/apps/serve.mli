(** One backend machine's serving application for the cluster subsystem.

    Requests arrive from the load balancer as compact records (wire bytes
    modeled by the link layer); the front core re-materializes and parses
    the HTTP head with the real {!Http} parser at the same per-character
    cost as the single-machine web stack, reaches the session's owner core
    over the per-core sharded {!Mk.Session} service (URPC), and formats
    the response with {!Http.format_response} so the reply's wire size is
    the true payload size. The backend registers itself with its machine's
    name service as ["cluster.serve"]. *)

type request = { rq_id : int; rq_session : int }

val request_bytes : int
(** Modeled wire size of one request (head + framing). *)

type reply = {
  rp_id : int;
  rp_session : int;
  rp_status : int;
  rp_hits : int;  (** session hit count after this request *)
  rp_core : int;  (** owner core that served it; -1 when rejected *)
  rp_backend : int;  (** backend machine id; -1 when rejected *)
  rp_bytes : int;  (** formatted HTTP response size on the wire *)
  rp_rejected : bool;
}

val rejected : id:int -> session:int -> reply
(** The 503 reply a load balancer sheds with. *)

val front_cost : int
(** Front-core cycles per request beyond parsing (kept-alive connection
    bookkeeping; the accept path is not paid per request). *)

type t

val start : Mk.Os.t -> backend_id:int -> front:int -> workers:int list -> t
(** Bring up the serving app on a booted backend: start the sharded
    session service on [workers], register ["cluster.serve"] with the
    machine's name service, and spawn the front loop on [front]'s engine.
    Task context required (service bring-up is messaging). *)

val submit : t -> request -> unit
(** Hand a request to the front loop. Effect-free (mailbox post) — safe
    to call from a {!Mk_net.Machine_link} delivery thunk. *)

val set_reply : t -> (reply -> unit) -> unit
(** Where finished replies go (the cluster wires this to the backend's
    uplink). Runs in the per-request task's context on this machine. *)

val session : t -> Mk.Session.t
val served : t -> int
val backend_id : t -> int
