(* Cluster serving application: one backend machine's half of the
   datacenter story.

   Requests arrive from the load balancer over an inter-machine link as
   compact [request] records (the wire bytes are modeled, not carried).
   The front (driver) core reconstructs the HTTP request head, parses it
   with the real {!Http} parser and charges the same per-character cost
   as the single-machine web stack, then reaches the session's owner core
   over the per-core sharded {!Mk.Session} service (URPC), where the
   handler cost is charged and the session table updated — no session
   state is ever shared between cores. The response is formatted with
   {!Http.format_response} so the reply's wire size is the real payload
   size. *)

open Mk_sim
open Mk_hw
open Mk

type request = { rq_id : int; rq_session : int }

(* Modeled size of a request on the wire: the GET head plus framing. *)
let request_bytes = 120

type reply = {
  rp_id : int;
  rp_session : int;
  rp_status : int;
  rp_hits : int;
  rp_core : int;
  rp_backend : int;
  rp_bytes : int;
  rp_rejected : bool;
}

(* Synthesized by the load balancer when it sheds a request. *)
let rejected ~id ~session =
  {
    rp_id = id;
    rp_session = session;
    rp_status = 503;
    rp_hits = 0;
    rp_core = -1;
    rp_backend = -1;
    rp_bytes = 64;
    rp_rejected = true;
  }

(* Per-request front-core cost beyond parsing: connection bookkeeping on a
   kept-alive LB connection, routing to the owner binding, reply framing.
   Deliberately far below {!Http.conn_setup_cost} — the balancer holds
   persistent connections, so the accept path is not paid per request. *)
let front_cost = 4_000

type t = {
  os : Os.t;
  backend_id : int;
  front : int;
  session : Session.t;
  inbox : request Sync.Mailbox.t;
  mutable reply_fn : reply -> unit;
  mutable served : int;
}

let handle t rq =
  let m = Os.machine t.os in
  let head =
    Printf.sprintf "GET /session/%d HTTP/1.1\r\nHost: cluster\r\n\r\n" rq.rq_session
  in
  Machine.compute m ~core:t.front
    (front_cost + (String.length head * Http.parse_cost_per_char));
  let resp =
    match Http.parse_request head with
    | Some ("GET", path) ->
      let session =
        match String.rindex_opt path '/' with
        | Some i ->
          (try int_of_string (String.sub path (i + 1) (String.length path - i - 1))
           with _ -> rq.rq_session)
        | None -> rq.rq_session
      in
      let r = Session.call t.session ~session ~work:Http.handler_overhead in
      ( Http.ok_html
          (Printf.sprintf "session %d: %d hits (machine %d core %d)\n" session
             r.Session.rs_hits t.backend_id r.Session.rs_core),
        r )
    | _ -> (Http.not_found, { Session.rs_hits = 0; rs_core = t.front })
  in
  let http, sr = resp in
  t.served <- t.served + 1;
  t.reply_fn
    {
      rp_id = rq.rq_id;
      rp_session = rq.rq_session;
      rp_status = http.Http.status;
      rp_hits = sr.Session.rs_hits;
      rp_core = sr.Session.rs_core;
      rp_backend = t.backend_id;
      rp_bytes = String.length (Http.format_response http);
      rp_rejected = false;
    }

let start os ~backend_id ~front ~workers =
  let session = Session.start os ~name:"cluster.sess" ~front ~workers in
  Name_service.register (Os.name_service os) ~from_core:front ~name:"cluster.serve"
    ~tag:backend_id;
  let t =
    {
      os;
      backend_id;
      front;
      session;
      inbox = Sync.Mailbox.create ();
      reply_fn = (fun _ -> ());
      served = 0;
    }
  in
  let eng = (Os.machine os).Machine.eng in
  Engine.spawn eng ~name:"serve.front" (fun () ->
      let rec loop () =
        let rq = Sync.Mailbox.recv t.inbox in
        Engine.spawn_ ~name:"serve.req" (fun () -> handle t rq);
        loop ()
      in
      loop ());
  t

(* Link-rx entry point: effect-free (mailbox post), callable from a
   [Machine_link] delivery thunk. *)
let submit t rq = Sync.Mailbox.send t.inbox rq
let set_reply t f = t.reply_fn <- f
let session t = t.session
let served t = t.served
let backend_id t = t.backend_id
