(* Cluster serving application: one backend machine's half of the
   datacenter story.

   Requests arrive from the load balancer over an inter-machine link as
   compact [request] records (the wire bytes are modeled, not carried).
   The front (driver) core charges the same per-character parse cost as
   the single-machine web stack for the request head it would
   reconstruct, then reaches the session's owner core over the per-core
   sharded {!Mk.Session} service (URPC), where the handler cost is
   charged and the session table updated — no session state is ever
   shared between cores. The reply's wire size is the byte length of the
   exact {!Http.format_response} output for the handler's response.

   Hot-path note: head and body lengths are computed arithmetically
   ([Http.digits] over the template fragments below) instead of
   sprintf-ing the strings and measuring them — the simulated costs and
   wire sizes are identical, but the host allocates nothing per request
   here. Equivalence with the string-building formulation is pinned by
   tests. The [request]/[reply] records themselves still allocate: they
   cross the PDES shard cut to another domain, so a per-backend freelist
   would race with the consumer. *)

open Mk_sim
open Mk_hw
open Mk

type request = { rq_id : int; rq_session : int }

(* Modeled size of a request on the wire: the GET head plus framing. *)
let request_bytes = 120

type reply = {
  rp_id : int;
  rp_session : int;
  rp_status : int;
  rp_hits : int;
  rp_core : int;
  rp_backend : int;
  rp_bytes : int;
  rp_rejected : bool;
}

(* Synthesized by the load balancer when it sheds a request. *)
let rejected ~id ~session =
  {
    rp_id = id;
    rp_session = session;
    rp_status = 503;
    rp_hits = 0;
    rp_core = -1;
    rp_backend = -1;
    rp_bytes = 64;
    rp_rejected = true;
  }

(* Per-request front-core cost beyond parsing: connection bookkeeping on a
   kept-alive LB connection, routing to the owner binding, reply framing.
   Deliberately far below {!Http.conn_setup_cost} — the balancer holds
   persistent connections, so the accept path is not paid per request. *)
let front_cost = 4_000

type t = {
  os : Os.t;
  backend_id : int;
  front : int;
  session : Session.t;
  inbox : request Sync.Mailbox.t;
  mutable reply_fn : reply -> unit;
  mutable served : int;
}

(* Fixed bytes of "GET /session/<id> HTTP/1.1\r\nHost: cluster\r\n\r\n"
   and of "session <id>: <hits> hits (machine <b> core <c>)\n". *)
let head_fixed =
  String.length "GET /session/" + String.length " HTTP/1.1\r\nHost: cluster\r\n\r\n"

let body_fixed =
  String.length "session " + String.length ": "
  + String.length " hits (machine "
  + String.length " core " + String.length ")\n"

let handle t rq =
  let m = Os.machine t.os in
  let head_len = head_fixed + Http.digits rq.rq_session in
  Machine.compute m ~core:t.front
    (front_cost + (head_len * Http.parse_cost_per_char));
  let r = Session.call t.session ~session:rq.rq_session ~work:Http.handler_overhead in
  let body_len =
    body_fixed + Http.digits rq.rq_session + Http.digits r.Session.rs_hits
    + Http.digits t.backend_id + Http.digits r.Session.rs_core
  in
  t.served <- t.served + 1;
  t.reply_fn
    {
      rp_id = rq.rq_id;
      rp_session = rq.rq_session;
      rp_status = 200;
      rp_hits = r.Session.rs_hits;
      rp_core = r.Session.rs_core;
      rp_backend = t.backend_id;
      rp_bytes = Http.response_length_of ~status:200 ~content_type:"text/html" ~body_len;
      rp_rejected = false;
    }

let start os ~backend_id ~front ~workers =
  let session = Session.start os ~name:"cluster.sess" ~front ~workers in
  Name_service.register (Os.name_service os) ~from_core:front ~name:"cluster.serve"
    ~tag:backend_id;
  let t =
    {
      os;
      backend_id;
      front;
      session;
      inbox = Sync.Mailbox.create ();
      reply_fn = (fun _ -> ());
      served = 0;
    }
  in
  let eng = (Os.machine os).Machine.eng in
  Engine.spawn eng ~name:"serve.front" (fun () ->
      let rec loop () =
        let rq = Sync.Mailbox.recv t.inbox in
        Engine.spawn_ ~name:"serve.req" (fun () -> handle t rq);
        loop ()
      in
      loop ());
  t

(* Link-rx entry point: effect-free (mailbox post), callable from a
   [Machine_link] delivery thunk. *)
let submit t rq = Sync.Mailbox.send t.inbox rq
let set_reply t f = t.reply_fn <- f
let session t = t.session
let served t = t.served
let backend_id t = t.backend_id
