(* Closed-loop cluster load generator.

   Models [users] concurrent users without materializing a task per user:
   each user is closed-loop state — issue a request, wait for the reply,
   think, repeat. First arrivals are staggered uniformly over one think
   time (user [u] starts at [u * think / users]), so the offered load
   ramps to [users / think] requests per cycle and holds there; re-arrivals
   are scheduled from the reply callback with [Engine.schedule_at]. A
   million users therefore costs memory proportional to the requests in
   flight, not the user count.

   Latency is measured at the client (issue to reply delivery) and fed to
   a constant-space [Stats.Histogram]; only replies completing inside the
   measurement window [w_start, w_end) are recorded, so warmup transients
   do not pollute the quantiles. *)

open Mk_sim

type t = {
  eng : Engine.t;
  send : Serve.request -> unit;
  users : int;
  think : int;
  t_end : int;  (* last instant a (re-)arrival may be issued *)
  w_start : int;
  w_end : int;
  (* rq_id -> issue time. Ids are non-negative and issue times >= 0, so
     [-1] is the absent sentinel; probed and updated allocation-free on
     every request and reply. *)
  pending : int Mk_hw.Inttbl.t;
  hist : Stats.Histogram.t;
  mutable next_id : int;
  mutable issued : int;
  mutable offered : int;  (* issued inside the window *)
  mutable completed : int;  (* served replies completing inside the window *)
  mutable shed : int;  (* rejected replies completing inside the window *)
  mutable completed_total : int;
  mutable shed_total : int;
  mutable users_started : int;  (* distinct users whose first arrival fired *)
}

(* Task context on the client engine. *)
let issue t ~session =
  let id = t.next_id in
  t.next_id <- id + 1;
  let now = Engine.now_ () in
  t.issued <- t.issued + 1;
  if now >= t.w_start && now < t.w_end then t.offered <- t.offered + 1;
  Mk_hw.Inttbl.set t.pending id now;
  t.send { Serve.rq_id = id; rq_session = session }

(* Link-rx entry point: runs outside any task context at reply delivery
   time; the closed-loop re-arrival is armed with [schedule_at] and issues
   from a fresh (tiny) task. *)
let on_reply t (rp : Serve.reply) =
  let issued_at = Mk_hw.Inttbl.find_or t.pending rp.rp_id (-1) in
  if issued_at < 0 then ()
  else begin
    Mk_hw.Inttbl.remove t.pending rp.rp_id;
    let now = Engine.now t.eng in
    let in_window = now >= t.w_start && now < t.w_end in
    if rp.rp_rejected then begin
      t.shed_total <- t.shed_total + 1;
      if in_window then t.shed <- t.shed + 1
    end
    else begin
      t.completed_total <- t.completed_total + 1;
      if in_window then begin
        t.completed <- t.completed + 1;
        Stats.Histogram.add t.hist (now - issued_at)
      end
    end;
    let at = now + t.think in
    if at <= t.t_end then
      Engine.schedule_at t.eng ~at (fun () ->
          Engine.spawn t.eng ~name:"lg.user" (fun () ->
              issue t ~session:rp.rp_session))
  end

let start ~eng ~send ~users ~think ~t_start ~t_end ~w_start ~w_end () =
  if users < 1 || think < 1 then invalid_arg "Loadgen.start";
  let t =
    {
      eng;
      send;
      users;
      think;
      t_end;
      w_start;
      w_end;
      pending = Mk_hw.Inttbl.create ~initial_bits:10 ~dummy:(-1) ();
      hist = Stats.Histogram.create ();
      next_id = 0;
      issued = 0;
      offered = 0;
      completed = 0;
      shed = 0;
      completed_total = 0;
      shed_total = 0;
      users_started = 0;
    }
  in
  Engine.spawn eng ~name:"lg.gen" (fun () ->
      let rec gen u =
        if u < t.users then begin
          let at = t_start + (u * t.think / t.users) in
          if at <= t.t_end then begin
            Engine.wait_until at;
            t.users_started <- t.users_started + 1;
            issue t ~session:u;
            gen (u + 1)
          end
        end
      in
      gen 0);
  t

let hist t = t.hist
let users t = t.users
let issued t = t.issued
let offered t = t.offered
let completed t = t.completed
let shed t = t.shed
let completed_total t = t.completed_total
let shed_total t = t.shed_total
let in_flight t = Mk_hw.Inttbl.length t.pending
let users_started t = t.users_started
