open Mk_sim
open Mk_hw
open Mk_net

let parse_cost_per_char = 2

(* Serving a request is more than parsing: stat/open of the content,
   response assembly, logging, connection bookkeeping. Calibrated to
   lighttpd-class path lengths. *)
let handler_overhead = 25_000
let conn_setup_cost = 30_000  (* accept + PCB + per-connection state *)

type response = { status : int; content_type : string; body : string }

type handler = meth:string -> path:string -> response

let ok_html body = { status = 200; content_type = "text/html"; body }

let not_found =
  { status = 404; content_type = "text/plain"; body = "404 not found\n" }

let status_text = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 400 -> "Bad Request"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

(* Response template fragments. [format_response] and [response_length_of]
   both read these, so the emitted bytes and the computed length cannot
   drift apart. *)
let resp_pre = "HTTP/1.1 "
let resp_server = "\r\nServer: mk-httpd/0.1\r\nContent-Type: "
let resp_clen = "\r\nContent-Length: "
let resp_close = "\r\nConnection: close\r\n\r\n"

(* Length of [string_of_int n], for all ints. Counts on the negative side
   so [min_int] (which has no positive image) is handled. *)
let digits n =
  let rec go n acc = if n > -10 then acc else go (n / 10) (acc + 1) in
  if n >= 0 then go (-n) 1 else 1 + go n 1

let response_fixed =
  String.length resp_pre + 1 (* space after the status code *)
  + String.length resp_server + String.length resp_clen
  + String.length resp_close

let response_length_of ~status ~content_type ~body_len =
  response_fixed + digits status
  + String.length (status_text status)
  + String.length content_type + digits body_len + body_len

let format_response r =
  String.concat ""
    [
      resp_pre;
      string_of_int r.status;
      " ";
      status_text r.status;
      resp_server;
      r.content_type;
      resp_clen;
      string_of_int (String.length r.body);
      resp_close;
      r.body;
    ]

let parse_request head =
  match String.index_opt head '\r' with
  | None -> None
  | Some eol ->
    let line = String.sub head 0 eol in
    (match String.split_on_char ' ' line with
     | [ meth; path; _version ] -> Some (meth, path)
     | _ -> None)

(* Incremental header scanner. Messages arrive as TCP segments; finding
   the blank line by rescanning the whole buffer per chunk is quadratic in
   the number of segments. The scanner remembers how far it has looked
   ([pos]) and resumes there, backing up 3 bytes on a miss in case the
   CRLFCRLF straddles a chunk boundary — each byte is examined O(1)
   times no matter how the message is fragmented. *)
module Scan = struct
  type t = { b : Buffer.t; mutable pos : int }

  let create () = { b = Buffer.create 256; pos = 0 }
  let add t s = Buffer.add_string t.b s
  let pos t = t.pos
  let length t = Buffer.length t.b
  let contents t = Buffer.contents t.b
  let sub t off len = Buffer.sub t.b off len

  let header_end t =
    let len = Buffer.length t.b in
    let i = ref t.pos in
    let found = ref (-1) in
    while !found < 0 && !i + 3 < len do
      if
        Buffer.nth t.b !i = '\r'
        && Buffer.nth t.b (!i + 1) = '\n'
        && Buffer.nth t.b (!i + 2) = '\r'
        && Buffer.nth t.b (!i + 3) = '\n'
      then found := !i + 4
      else incr i
    done;
    if !found >= 0 then begin
      t.pos <- !found;
      Some !found
    end
    else begin
      (* [max t.pos]: keep the offset monotonic even when a previous call
         already found a header end within the last 3 buffered bytes. *)
      t.pos <- Stdlib.max t.pos (len - 3);
      None
    end
end

(* Pull TCP segments until the head of the request (through the blank
   line) has arrived. *)
let read_head conn =
  let sc = Scan.create () in
  let rec go () =
    match Scan.header_end sc with
    | Some _ -> Some (Scan.contents sc)
    | None -> (
      match Tcp_lite.recv conn with
      | "" -> None  (* EOF before a full request *)
      | chunk ->
        Scan.add sc chunk;
        go ())
  in
  go ()

let start_server stack ~port handler =
  let m = Stack.machine stack in
  let core = Stack.core stack in
  let listener = Stack.tcp_listen stack ~port in
  Engine.spawn m.Machine.eng ~name:"httpd.accept" (fun () ->
      let rec accept_loop () =
        let conn = Tcp_lite.accept listener in
        Engine.spawn_ ~name:"httpd.conn" (fun () ->
            Machine.compute m ~core conn_setup_cost;
            (match read_head conn with
             | None -> ()
             | Some head ->
               Machine.compute m ~core (String.length head * parse_cost_per_char);
               let resp =
                 match parse_request head with
                 | Some (meth, path) ->
                   Machine.compute m ~core handler_overhead;
                   handler ~meth ~path
                 | None -> { status = 400; content_type = "text/plain"; body = "bad request\n" }
               in
               Tcp_lite.send conn (format_response resp));
            Tcp_lite.close conn);
        accept_loop ()
      in
      accept_loop ())

(* Case-insensitive Content-Length scan over the header block, without
   the [String.lowercase_ascii] copy of the whole head. Missing header —
   or one with no digits — reads as 0. *)
let content_length_of head =
  let lc c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c in
  let key = "content-length:" in
  let klen = String.length key and hlen = String.length head in
  let rec matches i j =
    j >= klen || (lc head.[i + j] = key.[j] && matches i (j + 1))
  in
  let rec find i =
    if i + klen > hlen then 0
    else if matches i 0 then begin
      let j = ref (i + klen) in
      while !j < hlen && head.[!j] = ' ' do
        incr j
      done;
      let v = ref 0 and k = ref !j in
      while !k < hlen && head.[!k] >= '0' && head.[!k] <= '9' do
        v := (!v * 10) + (Char.code head.[!k] - Char.code '0');
        incr k
      done;
      !v
    end
    else find (i + 1)
  in
  find 0

(* Client side: read a full response (headers + Content-Length body). *)
let read_response conn =
  let sc = Scan.create () in
  let rec read_until_headers () =
    match Scan.header_end sc with
    | Some off -> Some off
    | None -> (
      match Tcp_lite.recv conn with
      | "" -> None
      | chunk ->
        Scan.add sc chunk;
        read_until_headers ())
  in
  match read_until_headers () with
  | None -> None
  | Some body_off ->
    let head = Scan.sub sc 0 body_off in
    let status =
      (* Second token of the status line, "HTTP/1.1 <code> <text>". *)
      match String.index_opt head ' ' with
      | None -> 0
      | Some sp ->
        let e =
          match String.index_from_opt head (sp + 1) ' ' with
          | Some e -> e
          | None -> String.length head
        in
        (try int_of_string (String.sub head (sp + 1) (e - sp - 1)) with _ -> 0)
    in
    let content_length = content_length_of head in
    let rec read_body () =
      if Scan.length sc - body_off >= content_length then
        Some (status, Scan.sub sc body_off content_length)
      else
        match Tcp_lite.recv conn with
        | "" -> Some (status, Scan.sub sc body_off (Scan.length sc - body_off))
        | chunk ->
          Scan.add sc chunk;
          read_body ()
    in
    read_body ()

let fetch stack ~server_ip ~port ~path =
  let conn = Stack.tcp_connect stack ~dst_ip:server_ip ~dst_port:port in
  Tcp_lite.send conn (String.concat "" [ "GET "; path; " HTTP/1.1\r\nHost: sim\r\n\r\n" ]);
  let r = read_response conn in
  Tcp_lite.close conn;
  r

let run_load ?(retry_failed = false) stacks ~server_ip ~port ~path
    ~clients_per_stack ~duration =
  let completed = ref 0 in
  let deadline = Engine.now_ () + duration in
  let done_box = Sync.Mailbox.create () in
  let nclients = List.length stacks * clients_per_stack in
  List.iter
    (fun stack ->
      for _i = 1 to clients_per_stack do
        Engine.spawn_ ~name:"httperf.client" (fun () ->
            let rec loop () =
              if Engine.now_ () >= deadline then Sync.Mailbox.send done_box ()
              else begin
                (match fetch stack ~server_ip ~port ~path with
                 | Some (200, _) -> incr completed
                 | Some _ | None ->
                   (* Under a fault plan a request can be lost mid-flight;
                      the closed-loop client retries it rather than
                      counting it as offered-and-gone. *)
                   if retry_failed then Engine.wait 10_000);
                loop ()
              end
            in
            loop ())
      done)
    stacks;
  for _i = 1 to nclients do
    Sync.Mailbox.recv done_box
  done;
  !completed
