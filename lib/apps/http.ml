open Mk_sim
open Mk_hw
open Mk_net

let parse_cost_per_char = 2

(* Serving a request is more than parsing: stat/open of the content,
   response assembly, logging, connection bookkeeping. Calibrated to
   lighttpd-class path lengths. *)
let handler_overhead = 25_000
let conn_setup_cost = 30_000  (* accept + PCB + per-connection state *)

type response = { status : int; content_type : string; body : string }

type handler = meth:string -> path:string -> response

let ok_html body = { status = 200; content_type = "text/html"; body }

let not_found =
  { status = 404; content_type = "text/plain"; body = "404 not found\n" }

let status_text = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 400 -> "Bad Request"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let format_response r =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nServer: mk-httpd/0.1\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    r.status (status_text r.status) r.content_type (String.length r.body) r.body

let parse_request head =
  match String.index_opt head '\r' with
  | None -> None
  | Some eol ->
    let line = String.sub head 0 eol in
    (match String.split_on_char ' ' line with
     | [ meth; path; _version ] -> Some (meth, path)
     | _ -> None)

(* Pull TCP segments until the head of the request (through the blank
   line) has arrived. *)
let read_head conn =
  let buf = Buffer.create 256 in
  let rec go () =
    let contains_blank () =
      let s = Buffer.contents buf in
      let rec scan i =
        if i + 3 >= String.length s then false
        else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
        then true
        else scan (i + 1)
      in
      scan 0
    in
    if contains_blank () then Some (Buffer.contents buf)
    else begin
      match Tcp_lite.recv conn with
      | "" -> None  (* EOF before a full request *)
      | chunk ->
        Buffer.add_string buf chunk;
        go ()
    end
  in
  go ()

let start_server stack ~port handler =
  let m = Stack.machine stack in
  let core = Stack.core stack in
  let listener = Stack.tcp_listen stack ~port in
  Engine.spawn m.Machine.eng ~name:"httpd.accept" (fun () ->
      let rec accept_loop () =
        let conn = Tcp_lite.accept listener in
        Engine.spawn_ ~name:"httpd.conn" (fun () ->
            Machine.compute m ~core conn_setup_cost;
            (match read_head conn with
             | None -> ()
             | Some head ->
               Machine.compute m ~core (String.length head * parse_cost_per_char);
               let resp =
                 match parse_request head with
                 | Some (meth, path) ->
                   Machine.compute m ~core handler_overhead;
                   handler ~meth ~path
                 | None -> { status = 400; content_type = "text/plain"; body = "bad request\n" }
               in
               Tcp_lite.send conn (format_response resp));
            Tcp_lite.close conn);
        accept_loop ()
      in
      accept_loop ())

(* Client side: read a full response (headers + Content-Length body). *)
let read_response conn =
  let buf = Buffer.create 4096 in
  let header_end s =
    let rec scan i =
      if i + 3 >= String.length s then None
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then
        Some (i + 4)
      else scan (i + 1)
    in
    scan 0
  in
  let rec read_until_headers () =
    match header_end (Buffer.contents buf) with
    | Some off -> Some off
    | None ->
      (match Tcp_lite.recv conn with
       | "" -> None
       | chunk ->
         Buffer.add_string buf chunk;
         read_until_headers ())
  in
  match read_until_headers () with
  | None -> None
  | Some body_off ->
    let s = Buffer.contents buf in
    let head = String.sub s 0 body_off in
    let status =
      match String.split_on_char ' ' head with
      | _ :: code :: _ -> (try int_of_string code with _ -> 0)
      | _ -> 0
    in
    let content_length =
      let lower = String.lowercase_ascii head in
      let key = "content-length:" in
      let rec find i =
        if i + String.length key > String.length lower then 0
        else if String.sub lower i (String.length key) = key then begin
          let j = ref (i + String.length key) in
          while !j < String.length lower && lower.[!j] = ' ' do incr j done;
          let k = ref !j in
          while !k < String.length lower && lower.[!k] >= '0' && lower.[!k] <= '9' do
            incr k
          done;
          int_of_string (String.sub lower !j (!k - !j))
        end
        else find (i + 1)
      in
      find 0
    in
    let rec read_body () =
      if Buffer.length buf - body_off >= content_length then
        Some (status, String.sub (Buffer.contents buf) body_off content_length)
      else
        match Tcp_lite.recv conn with
        | "" -> Some (status, String.sub (Buffer.contents buf) body_off
                        (Buffer.length buf - body_off))
        | chunk ->
          Buffer.add_string buf chunk;
          read_body ()
    in
    read_body ()

let fetch stack ~server_ip ~port ~path =
  let conn = Stack.tcp_connect stack ~dst_ip:server_ip ~dst_port:port in
  Tcp_lite.send conn (Printf.sprintf "GET %s HTTP/1.1\r\nHost: sim\r\n\r\n" path);
  let r = read_response conn in
  Tcp_lite.close conn;
  r

let run_load ?(retry_failed = false) stacks ~server_ip ~port ~path
    ~clients_per_stack ~duration =
  let completed = ref 0 in
  let deadline = Engine.now_ () + duration in
  let done_box = Sync.Mailbox.create () in
  let nclients = List.length stacks * clients_per_stack in
  List.iter
    (fun stack ->
      for _i = 1 to clients_per_stack do
        Engine.spawn_ ~name:"httperf.client" (fun () ->
            let rec loop () =
              if Engine.now_ () >= deadline then Sync.Mailbox.send done_box ()
              else begin
                (match fetch stack ~server_ip ~port ~path with
                 | Some (200, _) -> incr completed
                 | Some _ | None ->
                   (* Under a fault plan a request can be lost mid-flight;
                      the closed-loop client retries it rather than
                      counting it as offered-and-gone. *)
                   if retry_failed then Engine.wait 10_000);
                loop ()
              end
            in
            loop ())
      done)
    stacks;
  for _i = 1 to nclients do
    Sync.Mailbox.recv done_box
  done;
  !completed
