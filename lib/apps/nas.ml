open Mk_sim
open Mk_hw

(* Work volumes (total cycles across the whole run) and serial fractions,
   calibrated to Figure 9's y-axes on the 4x4 AMD machine. *)

let split_work ~total ~serial_frac ~n ~rank =
  let serial = int_of_float (float_of_int total *. serial_frac) in
  let parallel = (total - serial) / n in
  if rank = 0 then serial + parallel else parallel

let elapsed f =
  let t0 = Engine.now_ () in
  f ();
  Engine.now_ () - t0

(* An allreduce point: every worker updates the shared reduction line
   (contended store), then synchronizes. *)
let reduction m line (ctx : Runtime.worker_ctx) =
  Coherence.store m.Machine.coh ~core:ctx.Runtime.wcore line;
  ctx.Runtime.barrier ()

let cg (rt : Runtime.t) ~cores =
  let n = List.length cores in
  let niter = 75 and total = 14_500_000_000 and serial_frac = 0.04 in
  let red_line = rt.Runtime.rt_alloc 1 in
  elapsed (fun () ->
      rt.Runtime.run_team ~cores (fun ctx ->
          let m = rt.Runtime.rt_machine_of ctx.Runtime.wcore in
          let work =
            split_work ~total ~serial_frac ~n ~rank:ctx.Runtime.rank / niter
          in
          for _iter = 1 to niter do
            (* SpMV + vector updates. *)
            Machine.compute m ~core:ctx.Runtime.wcore work;
            (* Each CG iteration is a chain of parallel loops and dot
               products, each ending in an implicit OpenMP barrier. *)
            for _r = 1 to 26 do
              reduction m red_line ctx
            done
          done))

let ft (rt : Runtime.t) ~cores =
  let n = List.length cores in
  let niter = 6 and total = 48_000_000_000 and serial_frac = 0.02 in
  (* Each worker owns a block of the array others read during transpose. *)
  let blocks = List.map (fun c -> (c, rt.Runtime.rt_alloc 32)) cores in
  let cl = rt.Runtime.rt_machine.Machine.plat.Platform.cacheline in
  elapsed (fun () ->
      rt.Runtime.run_team ~cores (fun ctx ->
          let m = rt.Runtime.rt_machine_of ctx.Runtime.wcore in
          let work =
            split_work ~total ~serial_frac ~n ~rank:ctx.Runtime.rank / (niter * 3)
          in
          let my_block = List.assoc ctx.Runtime.wcore blocks in
          for _iter = 1 to niter do
            for _dim = 1 to 3 do
              (* Local FFTs along one dimension. *)
              Machine.compute m ~core:ctx.Runtime.wcore work;
              (* Write our block, then all-to-all: pull two lines from every
                 other worker's block. *)
              for i = 0 to 7 do
                Coherence.store m.Machine.coh ~core:ctx.Runtime.wcore
                  (my_block + (i * cl))
              done;
              List.iter
                (fun (c, block) ->
                  if c <> ctx.Runtime.wcore then begin
                    Coherence.load m.Machine.coh ~core:ctx.Runtime.wcore block;
                    Coherence.load m.Machine.coh ~core:ctx.Runtime.wcore (block + cl)
                  end)
                blocks;
              ctx.Runtime.barrier ()
            done
          done))

let is_sort (rt : Runtime.t) ~cores =
  let n = List.length cores in
  let niter = 40 and total = 2_750_000_000 and serial_frac = 0.02 in
  (* The shared bucket array: a handful of lines every worker updates. *)
  let buckets = rt.Runtime.rt_alloc 16 in
  let cl = rt.Runtime.rt_machine.Machine.plat.Platform.cacheline in
  elapsed (fun () ->
      rt.Runtime.run_team ~cores (fun ctx ->
          let m = rt.Runtime.rt_machine_of ctx.Runtime.wcore in
          let work =
            split_work ~total ~serial_frac ~n ~rank:ctx.Runtime.rank / niter
          in
          for _iter = 1 to niter do
            (* Local key counting. *)
            Machine.compute m ~core:ctx.Runtime.wcore work;
            ctx.Runtime.barrier ();
            (* Global histogram: contended read-modify-writes. *)
            for b = 0 to 15 do
              Coherence.store m.Machine.coh ~core:ctx.Runtime.wcore (buckets + (b * cl))
            done;
            ctx.Runtime.barrier ()
          done))
