open Mk_sim
open Mk

(* A failover-managed RPC service: each incarnation is a fresh single-core
   domain (dispatcher re-spawn) exporting at-most-once bindings to a fixed
   set of client cores, registered with the name service under its
   incarnation number as the tag. When the home core dies the failure
   manager calls [respawn]; clients notice via call timeouts, poll the name
   service until a newer incarnation appears, and adopt its binding. *)

type ('req, 'resp) t = {
  os : Os.t;
  name : string;
  handler : 'req -> 'resp;
  client_cores : int list;
  req_lines : int;
  resp_lines : int;
  base_timeout : int;
  max_attempts : int;
  mutable incarnation : int;
  mutable home : int;
  mutable bindings : (int * int * ('req, 'resp) Flounder.Reliable.t) list;
      (* (incarnation, client core, binding) *)
  mutable respawns : int;
}

(* Runs in the coordinating task (the Ft recover task on failover);
   sharded, the pieces that live on the home core's shard — the server
   loops and the name-service registration RPC — are reached via
   [Os.call]. *)
let spawn_incarnation t ~home =
  let inc = t.incarnation + 1 in
  t.incarnation <- inc;
  t.home <- home;
  let m = Os.machine_of_core t.os home in
  let inj = m.Mk_hw.Machine.fault in
  (* The incarnation is pinned to the core it was spawned on: once that
     core stops, the server consumes-and-dies instead of replying. The
     draw consults the home shard's injector — where the server loop runs. *)
  let should_halt () = Mk_fault.Injector.core_dead inj ~core:home in
  ignore
    (Os.spawn_domain t.os ~name:(Printf.sprintf "%s#%d" t.name inc) ~cores:[ home ]
      : Dom.t);
  let shard = Os.shard t.os in
  let binds =
    List.map
      (fun c ->
        let rb =
          Flounder.Reliable.connect ?shard m
            ~name:(Printf.sprintf "%s#%d.c%d" t.name inc c)
            ~client:c ~server:home ~base_timeout:t.base_timeout
            ~max_attempts:t.max_attempts ~req_lines:t.req_lines
            ~resp_lines:t.resp_lines ()
        in
        Os.call t.os ~core:home (fun () ->
            Flounder.Reliable.export rb ~should_halt t.handler);
        (inc, c, rb))
      t.client_cores
  in
  t.bindings <- binds @ t.bindings;
  Os.call t.os ~core:home (fun () ->
      Name_service.register (Os.name_service t.os) ~from_core:home ~name:t.name
        ~tag:inc)

let start os ft ~name ~home ~client_cores ?(req_lines = 1) ?(resp_lines = 1)
    ?(base_timeout = 10_000) ?(max_attempts = 4) handler =
  let t =
    {
      os;
      name;
      handler;
      client_cores;
      req_lines;
      resp_lines;
      base_timeout;
      max_attempts;
      incarnation = 0;
      home;
      bindings = [];
      respawns = 0;
    }
  in
  spawn_incarnation t ~home;
  Ft.register_service ft ~name ~home ~respawn:(fun new_home ->
      t.respawns <- t.respawns + 1;
      spawn_incarnation t ~home:new_home);
  t

let home t = t.home
let incarnation t = t.incarnation
let respawns t = t.respawns

let binding_for t ~inc ~core =
  List.find_map
    (fun (i, c, rb) -> if i = inc && c = core then Some rb else None)
    t.bindings

type ('req, 'resp) client = {
  cs : ('req, 'resp) t;
  c_core : int;
  mutable c_inc : int;
  mutable c_rb : ('req, 'resp) Flounder.Reliable.t;
  mutable c_failovers : int;
}

let client t ~core =
  match binding_for t ~inc:t.incarnation ~core with
  | Some rb -> { cs = t; c_core = core; c_inc = t.incarnation; c_rb = rb; c_failovers = 0 }
  | None -> invalid_arg "Ft_service.client: core not in client_cores"

(* Poll the name service (from the client's core) until a newer incarnation
   than [inc] is registered. Each miss backs off one client timeout. *)
let refresh cl ~tries =
  let ns = Os.name_service cl.cs.os in
  let rec go tries =
    if tries <= 0 then None
    else
      match Name_service.lookup ns ~from_core:cl.c_core ~name:cl.cs.name with
      | Some r when r.Name_service.srv_tag > cl.c_inc -> Some r.Name_service.srv_tag
      | _ ->
        Engine.wait cl.cs.base_timeout;
        go (tries - 1)
  in
  go tries

let rec call ?(refresh_tries = 40) cl req =
  match Flounder.Reliable.call cl.c_rb req with
  | Ok resp -> Ok resp
  | Error `Timeout -> (
    (* Either the server's core died (a new incarnation will register
       shortly) or a message-fault window outlasted our retries (the old
       binding is still good once the window passes). *)
    match refresh cl ~tries:refresh_tries with
    | Some inc -> (
      match binding_for cl.cs ~inc ~core:cl.c_core with
      | Some rb ->
        cl.c_inc <- inc;
        cl.c_rb <- rb;
        cl.c_failovers <- cl.c_failovers + 1;
        call ~refresh_tries cl req
      | None -> Error `Unavailable)
    | None -> Error `Unavailable)

let failovers cl = cl.c_failovers
