(** HTTP/1.1 server and httperf-style load generator (§5.4).

    A real (small) HTTP implementation over {!Mk_net.Tcp_lite}: request
    parsing, response formatting with Content-Length, one connection per
    request (the httperf closed-loop pattern the paper uses), parse costs
    charged to the server core. *)

val parse_cost_per_char : int
(** Server-side request-parse cost, cycles per head character. *)

val handler_overhead : int
(** Per-request handler path length beyond parsing (stat/open, response
    assembly, logging), cycles. *)

val conn_setup_cost : int
(** Accept + PCB + per-connection state, cycles (paid once per
    connection). *)

type response = { status : int; content_type : string; body : string }

type handler = meth:string -> path:string -> response

val ok_html : string -> response
val not_found : response

val start_server : Mk_net.Stack.t -> port:int -> handler -> unit
(** Accept loop on the stack's core; each connection served by its own
    task. *)

val parse_request : string -> (string * string) option
(** [parse_request head] returns (method, path) from a request head
    (through the blank line). Exposed for tests. *)

val format_response : response -> string

val digits : int -> int
(** [digits n] is [String.length (string_of_int n)], without building the
    string. Defined for every int, including [min_int]. *)

val response_length_of : status:int -> content_type:string -> body_len:int -> int
(** Length in bytes of {!format_response} for a response with these
    fields, computed arithmetically from the same template fragments the
    formatter emits — so wire sizes can be modeled without materializing
    the response string. Pinned to [String.length (format_response r)] by
    tests. *)

(** Incremental CRLFCRLF scanner for chunked message reassembly.

    {!header_end} resumes from where the previous call stopped looking
    (backing up 3 bytes on a miss, in case the blank line straddles a
    chunk boundary), so feeding a message in segments scans each byte
    O(1) times instead of rescanning the whole buffer per segment.
    Exposed for tests. *)
module Scan : sig
  type t

  val create : unit -> t
  val add : t -> string -> unit

  val pos : t -> int
  (** Resume offset of the next {!header_end} scan (monotonic). *)

  val length : t -> int
  val contents : t -> string
  val sub : t -> int -> int -> string

  val header_end : t -> int option
  (** Offset just past the first ["\r\n\r\n"], once buffered. *)
end

val fetch :
  Mk_net.Stack.t -> server_ip:int -> port:int -> path:string -> (int * string) option
(** One closed-loop client request: connect, GET, read full response,
    close. Returns (status, body). Task context required. *)

(** Closed-loop load generation: [clients] concurrent fetch loops per
    client stack for [duration] cycles; returns completed requests.
    [retry_failed] makes each client back off briefly and re-issue a
    failed request (graceful degradation under a fault plan) instead of
    immediately moving on. *)
val run_load :
  ?retry_failed:bool ->
  Mk_net.Stack.t list ->
  server_ip:int ->
  port:int ->
  path:string ->
  clients_per_stack:int ->
  duration:int ->
  int
