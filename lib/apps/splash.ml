open Mk_sim
open Mk_hw

let elapsed f =
  let t0 = Engine.now_ () in
  f ();
  Engine.now_ () - t0

let barnes_hut (rt : Runtime.t) ~cores =
  let n = List.length cores in
  let steps = 4 and total = 4_600_000_000 in
  let tree_frac = 0.08 in  (* tree build, done by rank 0 *)
  (* The shared octree: a block of lines everyone reads during forces. *)
  let tree = rt.Runtime.rt_alloc 64 in
  let cl = rt.Runtime.rt_machine.Machine.plat.Platform.cacheline in
  elapsed (fun () ->
      rt.Runtime.run_team ~cores (fun ctx ->
          let m = rt.Runtime.rt_machine_of ctx.Runtime.wcore in
          let per_step = total / steps in
          let build = int_of_float (float_of_int per_step *. tree_frac) in
          let force = (per_step - build) / n in
          for _step = 1 to steps do
            if ctx.Runtime.rank = 0 then begin
              Machine.compute m ~core:ctx.Runtime.wcore build;
              (* Publishing the rebuilt tree invalidates all readers. *)
              for i = 0 to 15 do
                Coherence.store m.Machine.coh ~core:ctx.Runtime.wcore (tree + (i * cl))
              done
            end;
            ctx.Runtime.barrier ();
            (* Force computation: read-shared tree walks + local math. *)
            for i = 0 to 15 do
              Coherence.load m.Machine.coh ~core:ctx.Runtime.wcore (tree + (i * cl))
            done;
            Machine.compute m ~core:ctx.Runtime.wcore force;
            ctx.Runtime.barrier ()
          done))

let radiosity (rt : Runtime.t) ~cores =
  let total = 17_000_000_000 and tasks = 2048 in
  let task_work = total / tasks in
  let queue_line = rt.Runtime.rt_alloc 1 in
  elapsed (fun () ->
      let remaining = ref tasks in
      rt.Runtime.run_team ~cores (fun ctx ->
          let m = rt.Runtime.rt_machine_of ctx.Runtime.wcore in
          let rec work () =
            (* Dequeue under the shared queue head line (lock + RMW); the
               claim itself (test-and-decrement of the host-side counter)
               goes through [rt_call], which funnels it to the coordinating
               shard when the team spans a PDES cut — the counter stays
               single-writer. Identity (and hence byte-identical to the old
               inline claim) unsharded. *)
            Coherence.store m.Machine.coh ~core:ctx.Runtime.wcore queue_line;
            if
              rt.Runtime.rt_call ~src_core:ctx.Runtime.wcore (fun () ->
                  if !remaining > 0 then begin
                    decr remaining;
                    true
                  end
                  else false)
            then begin
              Machine.compute m ~core:ctx.Runtime.wcore task_work;
              work ()
            end
          in
          work ();
          ctx.Runtime.barrier ()))
