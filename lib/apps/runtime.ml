open Mk_hw

type worker_ctx = { rank : int; wcore : int; barrier : unit -> unit }

type t = {
  rt_name : string;
  rt_machine : Machine.t;
  rt_machine_of : int -> Machine.t;
  rt_alloc : int -> int;
  rt_call : 'a. src_core:int -> (unit -> 'a) -> 'a;
  run_team : cores:int list -> (worker_ctx -> unit) -> unit;
}

let name t = t.rt_name

(* Sharded team execution: workers are spawned on their own core's shard
   (reached via [Os.call]), synchronize over a message barrier whose
   channels are split at the wire, and report completion with one done
   token each — no shared spin line, ivar, or counter ever crosses the
   cut. The coordinator's body runs inside an [Os.call] from the invoking
   task, which therefore blocks until the whole team is finished. *)
let sharded_run_team os sh ~dom_name ~cores body =
  let dom = Mk.Os.spawn_domain os ~name:dom_name ~cores in
  let coordinator = List.hd cores in
  let parties = List.mapi (fun i c -> (i, c)) cores in
  let bar =
    Mk.Threads.Msg_barrier.create ~shard:sh (Mk.Os.machine os) ~coordinator ~parties
  in
  let dones =
    List.filter_map
      (fun (p, c) ->
        if c = coordinator then None
        else
          Some
            ( c,
              Mk.Shard.link_urpc sh ~sender:c ~receiver:coordinator
                ~name:(Printf.sprintf "omp.done%d" p) () ))
      parties
  in
  List.iteri
    (fun rank core ->
      if core <> coordinator then
        Mk.Os.call os ~src_core:coordinator ~core (fun () ->
            let disp = Mk.Dom.dispatcher_on dom core in
            ignore
              (Mk.Threads.spawn (Mk.Os.machine_of_core os core) ~disp (fun () ->
                   body
                     { rank; wcore = core;
                       barrier =
                         (fun () -> Mk.Threads.Msg_barrier.await bar ~party:rank) };
                   Mk.Urpc.send (List.assoc core dones).Mk.Shard.tx ())
                : Mk.Threads.thread)))
    cores;
  Mk.Os.call os ~src_core:coordinator ~core:coordinator (fun () ->
      let disp = Mk.Dom.dispatcher_on dom coordinator in
      let th =
        Mk.Threads.spawn (Mk.Os.machine_of_core os coordinator) ~disp (fun () ->
            body
              { rank = 0; wcore = coordinator;
                barrier = (fun () -> Mk.Threads.Msg_barrier.await bar ~party:0) })
      in
      Mk.Threads.join th;
      List.iter (fun (_, l) -> Mk.Urpc.recv l.Mk.Shard.rx) dones)

let barrelfish os =
  let m = Mk.Os.machine os in
  match Mk.Os.shard os with
  | Some sh ->
    {
      rt_name = "Barrelfish";
      rt_machine = m;
      rt_machine_of = (fun core -> Mk.Os.machine_of_core os core);
      (* Workload memory goes in the shared arena, mirrored into every
         shard's coherence map; shared host state (work queues) is reached
         through a coordinator-funnelled call. *)
      rt_alloc = (fun n -> Mk.Shard.alloc_shared sh ~src_core:0 n);
      rt_call = (fun ~src_core f -> Mk.Shard.call sh ~src_core ~core:0 f);
      run_team = (fun ~cores body -> sharded_run_team os sh ~dom_name:"omp" ~cores body);
    }
  | None ->
    {
      rt_name = "Barrelfish";
      rt_machine = m;
      rt_machine_of = (fun _ -> m);
      rt_alloc = (fun n -> Machine.alloc_lines m n);
      rt_call = (fun ~src_core:_ f -> f ());
      run_team =
        (fun ~cores body ->
          let dom =
            Mk.Os.spawn_domain os ~name:"omp" ~cores
          in
          let bar = Mk.Threads.Barrier.create m ~parties:(List.length cores) in
          let threads =
            List.mapi
              (fun rank core ->
                let disp = Mk.Dom.dispatcher_on dom core in
                Mk.Threads.spawn m ~disp (fun () ->
                    body
                      { rank; wcore = core;
                        barrier = (fun () -> Mk.Threads.Barrier.await bar ~core) }))
              cores
          in
          List.iter Mk.Threads.join threads);
    }

let barrelfish_msg os =
  let m = Mk.Os.machine os in
  match Mk.Os.shard os with
  | Some sh ->
    {
      rt_name = "Barrelfish (msg barrier)";
      rt_machine = m;
      rt_machine_of = (fun core -> Mk.Os.machine_of_core os core);
      rt_alloc = (fun n -> Mk.Shard.alloc_shared sh ~src_core:0 n);
      rt_call = (fun ~src_core f -> Mk.Shard.call sh ~src_core ~core:0 f);
      run_team =
        (fun ~cores body -> sharded_run_team os sh ~dom_name:"omp-msg" ~cores body);
    }
  | None ->
    {
      rt_name = "Barrelfish (msg barrier)";
      rt_machine = m;
      rt_machine_of = (fun _ -> m);
      rt_alloc = (fun n -> Machine.alloc_lines m n);
      rt_call = (fun ~src_core:_ f -> f ());
      run_team =
        (fun ~cores body ->
          let dom = Mk.Os.spawn_domain os ~name:"omp-msg" ~cores in
          let coordinator = List.hd cores in
          let parties = List.mapi (fun i c -> (i, c)) cores in
          let bar = Mk.Threads.Msg_barrier.create m ~coordinator ~parties in
          let threads =
            List.mapi
              (fun rank core ->
                let disp = Mk.Dom.dispatcher_on dom core in
                Mk.Threads.spawn m ~disp (fun () ->
                    body
                      { rank; wcore = core;
                        barrier = (fun () -> Mk.Threads.Msg_barrier.await bar ~party:rank) }))
              cores
          in
          List.iter Mk.Threads.join threads);
    }

let linux mono =
  let m = Mk_baseline.Monolithic.machine mono in
  {
    rt_name = "Linux";
    rt_machine = m;
    rt_machine_of = (fun _ -> m);
    rt_alloc = (fun n -> Machine.alloc_lines m n);
    rt_call = (fun ~src_core:_ f -> f ());
    run_team =
      (fun ~cores body ->
        let bar =
          Mk_baseline.Monolithic.Futex_barrier.create mono ~parties:(List.length cores)
        in
        let kts =
          List.mapi
            (fun rank core ->
              Mk_baseline.Monolithic.spawn mono ~core (fun () ->
                  body
                    { rank; wcore = core;
                      barrier =
                        (fun () ->
                          Mk_baseline.Monolithic.Futex_barrier.await bar ~core) }))
            cores
        in
        List.iter (Mk_baseline.Monolithic.join mono) kts);
  }
