(** UDP echo over the e1000 model — the network-throughput experiment of
    §5.4 (ipbench-style).

    An external load generator (modelled off-machine: it consumes no
    simulated core cycles) offers UDP traffic at a configurable rate into
    the NIC; the driver domain and the echo application (lwIP-style stack
    linked into its domain) bounce every packet back; achieved throughput
    is measured at the generator. *)

type result = {
  offered_mbps : float;
  achieved_mbps : float;
  rx_packets : int;
  echoed : int;
  dropped : int;
  lost : int;  (** packets lost on the wire by an armed fault plan *)
}

val run :
  Mk_hw.Machine.t ->
  nic:Mk_net.Nic.t ->
  app_stack:Mk_net.Stack.t ->
  port:int ->
  payload_bytes:int ->
  offered_mbps:float ->
  duration:int ->
  result
(** Start the echo server on [app_stack], offer load for [duration]
    cycles, and report achieved echo throughput. Task context required. *)
