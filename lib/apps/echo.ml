open Mk_sim
open Mk_hw
open Mk_net

type result = {
  offered_mbps : float;
  achieved_mbps : float;
  rx_packets : int;
  echoed : int;
  dropped : int;
  lost : int;  (* wire loss injected by an armed fault plan *)
}

let frame_overhead = Ethernet.header_bytes + Ipv4.header_bytes + Udp.header_bytes

let run m ~nic ~app_stack ~port ~payload_bytes ~offered_mbps ~duration =
  let plat = m.Machine.plat in
  let sock = Stack.udp_bind app_stack ~port in
  (* Echo server: receive, swap addresses, send back. *)
  Engine.spawn_ ~name:"udp.echo" (fun () ->
      let rec loop () =
        let payload, (src_ip, src_port) = Stack.udp_recvfrom sock in
        (* The application reads the payload it received and sends it
           back unmodified. *)
        Pbuf.touch payload m ~core:(Stack.core app_stack) ~write:false;
        let reply = Pbuf.alloc m ~size:(Pbuf.len payload) () in
        Pbuf.blit_string (Pbuf.contents payload) reply 0;
        Pbuf.touch reply m ~core:(Stack.core app_stack) ~write:true;
        Stack.udp_sendto sock ~dst_ip:src_ip ~dst_port:src_port reply;
        loop ()
      in
      loop ());
  (* External generator: injects frames at the offered rate; echoes coming
     back on the wire are counted. *)
  let echoed = ref 0 and echoed_bytes = ref 0 in
  Nic.attach_wire nic (fun p ->
      incr echoed;
      echoed_bytes := !echoed_bytes + Pbuf.len p);
  let frame_bytes = payload_bytes + frame_overhead in
  let cycles_per_packet =
    plat.Platform.ghz *. 1e9 /. (offered_mbps *. 1e6 /. 8.0 /. float_of_int frame_bytes)
  in
  let t_end = Engine.now_ () + duration in
  let generator_ip = 0x0a0000fe in
  let rec generate_int next_f =
    if int_of_float next_f < t_end then begin
      Engine.wait_until (int_of_float next_f);
      let p = Pbuf.alloc m ~size:payload_bytes () in
      Udp.encode p ~src_port:9999 ~dst_port:port;
      Ipv4.encode p ~src:generator_ip ~dst:(Stack.ip app_stack) ~proto:Ipv4.proto_udp;
      Ethernet.encode p ~dst:(Netif.mac (Nic.netif nic)) ~src:0x02feedbeef00
        ~ethertype:Ethernet.ethertype_ipv4;
      Nic.inject nic p;
      generate_int (next_f +. cycles_per_packet)
    end
  in
  let t0 = Engine.now_ () in
  generate_int (float_of_int (Engine.now_ ()));
  (* Drain: give in-flight packets time to come back. *)
  Engine.wait (duration / 10);
  let elapsed = Engine.now_ () - t0 in
  let achieved_mbps =
    float_of_int (!echoed_bytes * 8) /. (float_of_int elapsed /. (plat.Platform.ghz *. 1e9))
    /. 1e6
  in
  {
    offered_mbps;
    achieved_mbps;
    rx_packets = Nic.rx_count nic;
    echoed = !echoed;
    dropped = Nic.rx_dropped nic;
    lost = Nic.rx_lost nic;
  }
