(** A failover-managed RPC service (fault subsystem demo/app layer).

    Each incarnation of the service is a fresh single-core domain
    (dispatcher re-spawn) exporting {!Mk.Flounder.Reliable} bindings to a
    fixed set of client cores, and is registered with the name service
    under its incarnation number as the tag. The failure manager ({!Mk.Ft})
    respawns it when its home core dies; clients notice through call
    timeouts, poll the name service for a newer incarnation, and fail over
    to its binding. *)

type ('req, 'resp) t

val start :
  Mk.Os.t ->
  Mk.Ft.t ->
  name:string ->
  home:int ->
  client_cores:int list ->
  ?req_lines:int ->
  ?resp_lines:int ->
  ?base_timeout:int ->
  ?max_attempts:int ->
  ('req -> 'resp) ->
  ('req, 'resp) t
(** Spawn incarnation 1 on [home] and register the service with both the
    name service and the failure manager. Task context required. *)

val home : (_, _) t -> int
val incarnation : (_, _) t -> int
val respawns : (_, _) t -> int

type ('req, 'resp) client

val client : ('req, 'resp) t -> core:int -> ('req, 'resp) client
(** A per-core client handle bound to the current incarnation. *)

val call :
  ?refresh_tries:int ->
  ('req, 'resp) client ->
  'req ->
  ('resp, [ `Unavailable ]) result
(** At-most-once call with transparent failover: on timeout, poll the name
    service (up to [refresh_tries] polls, one client timeout apart) for a
    newer incarnation and retry on its binding. [Error `Unavailable] means
    no newer incarnation registered within the polling window. *)

val failovers : (_, _) client -> int
