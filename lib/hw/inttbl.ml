(* Open-addressed hash table specialized to non-negative int keys.

   Replaces the generic [Hashtbl] on the coherence model's line table,
   which sits on every simulated load and store: generic hashing plus
   bucket-list chasing per access. Here a probe walks a flat int array
   (power-of-two capacity, linear probing) with the value fetched once at
   the end, and there is no per-insert bucket cell allocation. Keys are
   multiplied by a 64-bit odd constant (Fibonacci hashing) so strided key
   patterns — page-aligned addresses map to lines 64 apart — spread over
   the table instead of clustering in a few residue classes.

   Deletion uses tombstones (-2) so probe runs over deleted slots stay
   valid: lookups skip them, inserts reuse the first one seen on their
   probe path, and a rehash (triggered by the occupied count, live keys
   plus tombstones) drops them all. The coherence line table never
   deletes, so its probes never even see a tombstone branch taken. *)

type 'a t = {
  dummy : 'a;
  mutable keys : int array;  (* -1 = empty slot, -2 = tombstone *)
  mutable vals : 'a array;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable size : int;  (* live bindings *)
  mutable occupied : int;  (* live bindings + tombstones *)
}

let fib = 0x2545F4914F6CDD1D
let empty = -1
let tomb = -2

(* Multiplicative hash folded to the table size; the xor-shift mixes the
   well-scrambled high bits into the low bits the mask keeps. *)
let slot_of ~mask key =
  let h = key * fib in
  (h lxor (h lsr 31)) land max_int land mask

let create ?(initial_bits = 12) ~dummy () =
  let cap = 1 lsl initial_bits in
  {
    dummy;
    keys = Array.make cap empty;
    vals = Array.make cap dummy;
    mask = cap - 1;
    size = 0;
    occupied = 0;
  }

let length t = t.size

(* Lookup probe: the slot holding [key], or -1 if absent. Tombstones are
   skipped; an empty slot ends the run. *)
let rec probe_find keys mask key i =
  let k = Array.unsafe_get keys i in
  if k = key then i
  else if k = empty then -1
  else probe_find keys mask key ((i + 1) land mask)

(* Insert probe: the slot holding [key] if bound, else the first tombstone
   of the probe path (slot reuse), else the terminating empty slot. *)
let rec probe_insert keys mask key i reuse =
  let k = Array.unsafe_get keys i in
  if k = key then i
  else if k = empty then (if reuse >= 0 then reuse else i)
  else
    probe_insert keys mask key
      ((i + 1) land mask)
      (if k = tomb && reuse < 0 then i else reuse)

let find t key =
  if key < 0 then invalid_arg "Inttbl.find: negative key";
  let i = probe_find t.keys t.mask key (slot_of ~mask:t.mask key) in
  if i >= 0 then Array.unsafe_get t.vals i else raise Not_found

let find_opt t key =
  match find t key with v -> Some v | exception Not_found -> None

(* Option-free lookup for hot paths: the caller supplies the absent value
   (typically the same sentinel used as [dummy]) and compares physically. *)
let find_or t key default =
  if key < 0 then invalid_arg "Inttbl.find_or: negative key";
  let i = probe_find t.keys t.mask key (slot_of ~mask:t.mask key) in
  if i >= 0 then Array.unsafe_get t.vals i else default

let mem t key =
  key >= 0 && probe_find t.keys t.mask key (slot_of ~mask:t.mask key) >= 0

(* Rebuild, dropping tombstones; the capacity only doubles when the *live*
   population needs it, so delete-heavy churn compacts in place. *)
let rehash t =
  let ncap =
    if 2 * (t.size + 1) > t.mask + 1 then (t.mask + 1) * 2 else t.mask + 1
  in
  let nkeys = Array.make ncap empty in
  let nvals = Array.make ncap t.dummy in
  let nmask = ncap - 1 in
  for i = 0 to t.mask do
    let k = t.keys.(i) in
    if k >= 0 then begin
      let j = probe_insert nkeys nmask k (slot_of ~mask:nmask k) (-1) in
      nkeys.(j) <- k;
      nvals.(j) <- t.vals.(i)
    end
  done;
  t.keys <- nkeys;
  t.vals <- nvals;
  t.mask <- nmask;
  t.occupied <- t.size

(* Insert [key -> v]; overwrites any existing binding. Occupancy (live +
   tombstones) is kept at or below 1/2 so linear-probe runs stay short. *)
let set t key v =
  if key < 0 then invalid_arg "Inttbl.set: negative key";
  let i = probe_insert t.keys t.mask key (slot_of ~mask:t.mask key) (-1) in
  if t.keys.(i) = key then t.vals.(i) <- v
  else begin
    if t.keys.(i) = empty && 2 * (t.occupied + 1) > t.mask + 1 then begin
      rehash t;
      (* A fresh table has no tombstones: the probe lands on an empty. *)
      let j = probe_insert t.keys t.mask key (slot_of ~mask:t.mask key) (-1) in
      t.keys.(j) <- key;
      t.vals.(j) <- v;
      t.occupied <- t.occupied + 1
    end
    else begin
      if t.keys.(i) = empty then t.occupied <- t.occupied + 1;
      t.keys.(i) <- key;
      t.vals.(i) <- v
    end;
    t.size <- t.size + 1
  end

let remove t key =
  if key < 0 then invalid_arg "Inttbl.remove: negative key";
  let i = probe_find t.keys t.mask key (slot_of ~mask:t.mask key) in
  if i >= 0 then begin
    t.keys.(i) <- tomb;
    t.vals.(i) <- t.dummy;  (* release the value for the GC *)
    t.size <- t.size - 1
  end

(* Slot order: deterministic for a given operation history (probing and
   tombstone reuse are pure functions of it), which is what keeps
   iteration-driven output stable across delete/re-add churn. *)
let iter f t =
  for i = 0 to t.mask do
    if t.keys.(i) >= 0 then f t.keys.(i) t.vals.(i)
  done
