(* Open-addressed hash table specialized to non-negative int keys.

   Replaces the generic [Hashtbl] on the coherence model's line table,
   which sits on every simulated load and store: generic hashing plus
   bucket-list chasing per access. Here a probe walks a flat int array
   (power-of-two capacity, linear probing) with the value fetched once at
   the end, and there is no per-insert bucket cell allocation. Keys are
   multiplied by a 64-bit odd constant (Fibonacci hashing) so strided key
   patterns — page-aligned addresses map to lines 64 apart — spread over
   the table instead of clustering in a few residue classes.

   No deletion: the line table only grows (lines are never forgotten,
   only state-changed), which keeps probe sequences valid for free. *)

type 'a t = {
  dummy : 'a;
  mutable keys : int array;  (* -1 = empty slot *)
  mutable vals : 'a array;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable size : int;
}

let fib = 0x2545F4914F6CDD1D

(* Multiplicative hash folded to the table size; the xor-shift mixes the
   well-scrambled high bits into the low bits the mask keeps. *)
let slot_of ~mask key =
  let h = key * fib in
  (h lxor (h lsr 31)) land max_int land mask

let create ?(initial_bits = 12) ~dummy () =
  let cap = 1 lsl initial_bits in
  { dummy; keys = Array.make cap (-1); vals = Array.make cap dummy; mask = cap - 1; size = 0 }

let length t = t.size

let rec probe keys mask key i =
  let k = Array.unsafe_get keys i in
  if k = key || k = -1 then i else probe keys mask key ((i + 1) land mask)

let index t key = probe t.keys t.mask key (slot_of ~mask:t.mask key)

let find t key =
  if key < 0 then invalid_arg "Inttbl.find: negative key";
  let i = index t key in
  if Array.unsafe_get t.keys i = key then Array.unsafe_get t.vals i
  else raise Not_found

let find_opt t key =
  match find t key with v -> Some v | exception Not_found -> None

let mem t key = key >= 0 && t.keys.(index t key) = key

let grow t =
  let ncap = (t.mask + 1) * 2 in
  let nkeys = Array.make ncap (-1) in
  let nvals = Array.make ncap t.dummy in
  let nmask = ncap - 1 in
  for i = 0 to t.mask do
    let k = t.keys.(i) in
    if k >= 0 then begin
      let j = probe nkeys nmask k (slot_of ~mask:nmask k) in
      nkeys.(j) <- k;
      nvals.(j) <- t.vals.(i)
    end
  done;
  t.keys <- nkeys;
  t.vals <- nvals;
  t.mask <- nmask

(* Insert [key -> v]; overwrites any existing binding. Load factor is kept
   at or below 1/2 so linear-probe runs stay short. *)
let set t key v =
  if key < 0 then invalid_arg "Inttbl.set: negative key";
  let i = index t key in
  if t.keys.(i) = key then t.vals.(i) <- v
  else begin
    if 2 * (t.size + 1) > t.mask + 1 then begin
      grow t;
      let j = index t key in
      t.keys.(j) <- key;
      t.vals.(j) <- v
    end
    else begin
      t.keys.(i) <- key;
      t.vals.(i) <- v
    end;
    t.size <- t.size + 1
  end

let iter f t =
  for i = 0 to t.mask do
    if t.keys.(i) >= 0 then f t.keys.(i) t.vals.(i)
  done
