(** Hardware performance counters of the simulated machine.

    Mirrors what the paper measures with real PMCs: per-core data-cache
    misses, cache-to-cache transfers, memory fetches, invalidations, and
    per-link interconnect traffic in 32-bit dwords (Table 4's units).
    Benches snapshot / diff around a measurement window. *)

type t

type snap = {
  loads : int array;
  stores : int array;
  dcache_miss : int array;
  c2c_fetch : int array;
  dram_fetch : int array;
  invalidations : int array;
  link_dwords : (Topology.link * int) list;
}

val create : Platform.t -> t

(* Incremented by the coherence model: *)

val count_load : t -> core:int -> unit
val count_store : t -> core:int -> unit
val count_miss : t -> core:int -> unit
val count_c2c : t -> core:int -> unit
val count_dram : t -> core:int -> unit
val count_inval : t -> core:int -> unit
val add_link_dwords : t -> Topology.link -> int -> unit

val link_counter : t -> Topology.link -> int ref
(** The mutable dword counter behind a (directed) link, created on first
    use. Lets hot paths pre-resolve the counters along a route once and
    bump them with plain stores instead of per-charge hashtable lookups.
    Never-charged counters are invisible to {!snapshot}. *)

val touch_line : t -> core:int -> line:int -> unit
(** Footprint tracking (Table 3): records a distinct-line touch when
    enabled. *)

val set_footprint_tracking : t -> bool -> unit
val reset_footprint : t -> unit
val footprint_lines : t -> core:int -> int
(** Number of distinct cache lines the core touched since the last reset. *)

val snapshot : t -> snap
val diff : snap -> snap -> snap
(** [diff later earlier]: element-wise subtraction. *)

val total_dwords : snap -> int
val dwords_on : snap -> Topology.link -> int
