(** Open-addressed hash table for non-negative int keys.

    Power-of-two capacity, linear probing, load factor kept at or below
    1/2, no deletion. Built for the coherence model's line table, which is
    probed on every simulated load/store: a lookup scans a flat int array
    and touches the value array once, with no allocation. *)

type 'a t

val create : ?initial_bits:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused value slots (never returned by lookups).
    [initial_bits] sets the starting capacity to [2^initial_bits]
    (default 12). *)

val length : _ t -> int

val find : 'a t -> int -> 'a
(** @raise Not_found if the key is absent. *)

val find_opt : 'a t -> int -> 'a option
val mem : _ t -> int -> bool

val set : 'a t -> int -> 'a -> unit
(** Bind a key, overwriting any existing binding. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
