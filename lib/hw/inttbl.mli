(** Open-addressed hash table for non-negative int keys.

    Power-of-two capacity, linear probing, occupancy (live bindings plus
    tombstones) kept at or below 1/2. Built for the coherence model's line
    table, which is probed on every simulated load/store: a lookup scans a
    flat int array and touches the value array once, with no allocation.

    Deletion marks the slot with a tombstone; a later insert on the same
    probe path reuses it, and rehashes drop tombstones entirely. Probe
    behaviour and iteration order are deterministic functions of the
    operation history. *)

type 'a t

val create : ?initial_bits:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused value slots (never returned by lookups).
    [initial_bits] sets the starting capacity to [2^initial_bits]
    (default 12). *)

val length : _ t -> int

val find : 'a t -> int -> 'a
(** @raise Not_found if the key is absent. *)

val find_opt : 'a t -> int -> 'a option

val find_or : 'a t -> int -> 'a -> 'a
(** [find_or t key default] is the bound value, or [default] when the key
    is absent — no option allocation, for per-event probe paths. Callers
    typically pass their [dummy] sentinel and compare physically. *)

val mem : _ t -> int -> bool

val set : 'a t -> int -> 'a -> unit
(** Bind a key, overwriting any existing binding. *)

val remove : 'a t -> int -> unit
(** Unbind a key (no-op when absent). Leaves a tombstone that keeps other
    keys' probe runs valid; the slot is reused by later inserts and
    reclaimed on rehash. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Iterate in slot order — deterministic for a given operation history. *)
