type t = {
  loads : int array;
  stores : int array;
  dcache_miss : int array;
  c2c_fetch : int array;
  dram_fetch : int array;
  invalidations : int array;
  link_dwords : (Topology.link, int ref) Hashtbl.t;
  mutable track_footprint : bool;
  footprint : (int, unit) Hashtbl.t array;
}

type snap = {
  loads : int array;
  stores : int array;
  dcache_miss : int array;
  c2c_fetch : int array;
  dram_fetch : int array;
  invalidations : int array;
  link_dwords : (Topology.link * int) list;
}

let create plat =
  let n = Platform.n_cores plat in
  {
    loads = Array.make n 0;
    stores = Array.make n 0;
    dcache_miss = Array.make n 0;
    c2c_fetch = Array.make n 0;
    dram_fetch = Array.make n 0;
    invalidations = Array.make n 0;
    link_dwords = Hashtbl.create 16;
    track_footprint = false;
    footprint = Array.init n (fun _ -> Hashtbl.create 64);
  }

let bump arr ~core = arr.(core) <- arr.(core) + 1
let count_load (t : t) = bump t.loads
let count_store (t : t) = bump t.stores
let count_miss (t : t) = bump t.dcache_miss
let count_c2c (t : t) = bump t.c2c_fetch
let count_dram (t : t) = bump t.dram_fetch
let count_inval (t : t) = bump t.invalidations

let link_counter (t : t) link =
  match Hashtbl.find_opt t.link_dwords link with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.link_dwords link r;
    r

let add_link_dwords (t : t) link n =
  let r = link_counter t link in
  r := !r + n

let touch_line (t : t) ~core ~line =
  if t.track_footprint then Hashtbl.replace t.footprint.(core) line ()

let set_footprint_tracking t b = t.track_footprint <- b

let reset_footprint t = Array.iter Hashtbl.reset t.footprint

let footprint_lines t ~core = Hashtbl.length t.footprint.(core)

let snapshot (t : t) : snap =
  {
    loads = Array.copy t.loads;
    stores = Array.copy t.stores;
    dcache_miss = Array.copy t.dcache_miss;
    c2c_fetch = Array.copy t.c2c_fetch;
    dram_fetch = Array.copy t.dram_fetch;
    invalidations = Array.copy t.invalidations;
    (* Links with a pre-registered but never-charged counter are omitted,
       so pre-registration (Coherence's precomputed paths) is invisible. *)
    link_dwords =
      Hashtbl.fold (fun l r acc -> if !r = 0 then acc else (l, !r) :: acc)
        t.link_dwords []
      |> List.sort compare;
  }

let diff (a : snap) (b : snap) : snap =
  let sub x y = Array.mapi (fun i v -> v - y.(i)) x in
  let sub_links la lb =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (l, n) -> Hashtbl.replace tbl l n) la;
    List.iter
      (fun (l, n) ->
        let cur = Option.value (Hashtbl.find_opt tbl l) ~default:0 in
        Hashtbl.replace tbl l (cur - n))
      lb;
    Hashtbl.fold (fun l n acc -> (l, n) :: acc) tbl [] |> List.sort compare
  in
  {
    loads = sub a.loads b.loads;
    stores = sub a.stores b.stores;
    dcache_miss = sub a.dcache_miss b.dcache_miss;
    c2c_fetch = sub a.c2c_fetch b.c2c_fetch;
    dram_fetch = sub a.dram_fetch b.dram_fetch;
    invalidations = sub a.invalidations b.invalidations;
    link_dwords = sub_links a.link_dwords b.link_dwords;
  }

let total_dwords (s : snap) = List.fold_left (fun acc (_, n) -> acc + n) 0 s.link_dwords

let dwords_on (s : snap) link =
  match List.assoc_opt link s.link_dwords with Some n -> n | None -> 0
