type t = {
  name : string;
  ghz : float;
  n_packages : int;
  cores_per_package : int;
  cores_per_share_group : int;
  topo : Topology.t;
  l1_hit : int;
  shared_cache_fetch : int;
  cc_base : int;
  hop_one_way : int;
  dram : int;
  dir_occupancy : int;
  syscall : int;
  context_switch : int;
  dispatch : int;
  trap : int;
  ipi_wire : int;
  tlb_invlpg : int;
  cacheline : int;
}

(* Latency parameters are calibrated against the paper's microbenchmarks
   (Tables 1-3); see EXPERIMENTS.md for the paper-vs-measured record. *)

let intel_2x4 =
  {
    name = "2x4-core Intel";
    ghz = 2.66;
    n_packages = 2;
    cores_per_package = 4;
    cores_per_share_group = 2 (* 2 dies per package, shared L2 per die *);
    topo = Topology.create ~n:2 ~links:[ (0, 1) ] (* shared FSB *);
    l1_hit = 3;
    shared_cache_fetch = 40 (* shared on-die L2 *);
    cc_base = 226;
    hop_one_way = 8 (* FSB arbitration *);
    dram = 300;
    dir_occupancy = 70;
    syscall = 120;
    context_switch = 500;
    dispatch = 50;
    trap = 800;
    ipi_wire = 400;
    tlb_invlpg = 120;
    cacheline = 64;
  }

let amd_2x2 =
  {
    name = "2x2-core AMD";
    ghz = 2.8;
    n_packages = 2;
    cores_per_package = 2;
    cores_per_share_group = 2 (* no shared LLC, but on-package transfer is cheap *);
    topo = Topology.create ~n:2 ~links:[ (0, 1) ];
    l1_hit = 3;
    shared_cache_fetch = 180;
    cc_base = 215;
    hop_one_way = 3;
    dram = 220;
    dir_occupancy = 70;
    syscall = 110;
    context_switch = 430;
    dispatch = 70;
    trap = 800;
    ipi_wire = 450;
    tlb_invlpg = 120;
    cacheline = 64;
  }

let amd_4x4 =
  {
    name = "4x4-core AMD";
    ghz = 2.5;
    n_packages = 4;
    cores_per_package = 4;
    cores_per_share_group = 4 (* shared 6MB L3 *);
    (* Square of HT links. *)
    topo = Topology.create ~n:4 ~links:[ (0, 1); (1, 3); (3, 2); (2, 0) ];
    l1_hit = 3;
    shared_cache_fetch = 172;
    cc_base = 225;
    hop_one_way = 3;
    dram = 250;
    dir_occupancy = 90;
    syscall = 200;
    context_switch = 1020;
    dispatch = 70;
    trap = 800;
    ipi_wire = 500;
    tlb_invlpg = 150;
    cacheline = 64;
  }

let amd_8x4 =
  {
    name = "8x4-core AMD";
    ghz = 2.0;
    n_packages = 8;
    cores_per_package = 4;
    cores_per_share_group = 4 (* shared 2MB L3 *);
    (* The HT ladder of Figure 2: two columns 6-4-2-0 and 7-5-3-1 with rungs
       and the crossing links in the middle; diameter 3. *)
    topo =
      Topology.create ~n:8
        ~links:
          [ (0, 2); (2, 4); (4, 6); (1, 3); (3, 5); (5, 7);
            (0, 1); (6, 7); (2, 3); (4, 5); (2, 5); (3, 4) ];
    l1_hit = 3;
    shared_cache_fetch = 228;
    cc_base = 262;
    hop_one_way = 3;
    dram = 240;
    dir_occupancy = 90;
    syscall = 210;
    context_switch = 1080;
    dispatch = 80;
    trap = 800;
    ipi_wire = 550;
    tlb_invlpg = 150;
    cacheline = 64;
  }

let synthetic_mesh ~packages ~cores_per_package =
  (* Nearly square 2D mesh over the packages; closed-form routing, so a
     1024-core machine carries no per-pair topology state. *)
  let side = int_of_float (ceil (sqrt (float_of_int packages))) in
  {
    amd_8x4 with
    name = Printf.sprintf "synthetic %dx%d mesh" packages cores_per_package;
    n_packages = packages;
    cores_per_package;
    cores_per_share_group = cores_per_package;
    topo = Topology.mesh ~n:packages ~side;
  }

let synthetic_tree ~packages ~cores_per_package =
  (* Complete binary tree over the packages: deep NUMA (diameter grows as
     log n but worst-case paths cross the root), the shape the PDES
     scaling study shards along subtrees. Closed-form routing. *)
  {
    amd_8x4 with
    name = Printf.sprintf "synthetic %dx%d tree" packages cores_per_package;
    n_packages = packages;
    cores_per_package;
    cores_per_share_group = cores_per_package;
    topo = Topology.tree ~n:packages;
  }

let synthetic_bands ~bands ~packages_per_band ~cores_per_package =
  (* Heterogeneous latency bands: each band's packages are fully meshed
     (one hop anywhere inside the band), bands are chained through single
     gateway links — so cross-band traffic pays 1 hop per band boundary
     plus up to 2 hops reaching the gateways, a latency staircase. The
     link list is O(bands * ppb^2): sub-quadratic in total packages at
     fixed band size, and routed through the lazy per-source BFS rows. *)
  if bands <= 0 || packages_per_band <= 0 then
    invalid_arg "Platform.synthetic_bands: bands and packages_per_band must be positive";
  let packages = bands * packages_per_band in
  let links = ref [] in
  for b = 0 to bands - 1 do
    let base = b * packages_per_band in
    for i = 0 to packages_per_band - 1 do
      for j = i + 1 to packages_per_band - 1 do
        links := (base + i, base + j) :: !links
      done
    done;
    (* Gateway: last package of this band to first of the next. *)
    if b + 1 < bands then links := (base + packages_per_band - 1, base + packages_per_band) :: !links
  done;
  {
    amd_8x4 with
    name = Printf.sprintf "synthetic %db x %dp x %dc bands" bands packages_per_band cores_per_package;
    n_packages = packages;
    cores_per_package;
    cores_per_share_group = cores_per_package;
    topo = Topology.create ~n:packages ~links:!links;
  }

let all = [ intel_2x4; amd_2x2; amd_4x4; amd_8x4 ]

let n_cores t = t.n_packages * t.cores_per_package
let package_of t core = core / t.cores_per_package
let share_group_of t core = core / t.cores_per_share_group
let shares_cache t a b = share_group_of t a = share_group_of t b
let hops_between t a b = Topology.hops t.topo (package_of t a) (package_of t b)
let cycles_to_ns t cycles = cycles /. t.ghz

let core_ids t = List.init (n_cores t) Fun.id

let describe t =
  Printf.sprintf "%s: %d cores (%d packages x %d), %.2f GHz, diameter %d"
    t.name (n_cores t) t.n_packages t.cores_per_package t.ghz
    (Topology.diameter t.topo)
