(** Interconnect topology at the package (HyperTransport node) level.

    An undirected graph of packages; routing is shortest-path with
    deterministic tie-breaking (lowest next-hop id), mirroring the static
    routing tables of HT systems. Used both for latency (hop counts) and
    for per-link traffic accounting (Table 4).

    Routing state is sub-quadratic in nodes: the synthetic families
    ({!fully_connected}, {!tree}, {!mesh}) answer {!hops} and first-hop
    queries in closed form with no per-pair state at all, and an
    arbitrary {!create} link list materializes one O(n) BFS row per
    queried source on demand (safe to share read-only across domains).
    All routing answers — distances, first hops, link enumeration order —
    are identical to a dense all-pairs BFS with ascending-neighbor
    tie-breaking, which the test suite checks by direct comparison. *)

type t

type link = int * int
(** Normalized: [(a, b)] with [a < b]. *)

val create : n:int -> links:link list -> t
(** [n] packages, connected by [links]. Raises [Invalid_argument] on
    out-of-range endpoints, self-loops, or a disconnected graph. *)

val fully_connected : n:int -> t
(** Convenience: every pair directly linked (small SMPs / single bus).
    Implicit — no O(n²) link list is ever allocated; {!links} synthesizes
    the array on demand. *)

val tree : n:int -> t
(** Complete binary tree with parent [(i-1)/2]: deep NUMA, log-depth with
    root-crossing worst-case paths. Closed-form routing. *)

val mesh : n:int -> side:int -> t
(** Row-major 2D grid of width [side] whose last row may be ragged (ids
    [0..n-1], node [p] at column [p mod side], row [p / side]; links to
    the right and downward neighbors when they exist). Closed-form
    Manhattan routing. *)

val n_nodes : t -> int
val links : t -> link array
val hops : t -> int -> int -> int
(** Shortest-path distance in links; 0 for [src = dst]. *)

val next_hop : t -> int -> int -> int
(** First hop from [src] towards [dst] ([src] itself when equal), with
    the lowest-id tie-break among shortest paths. *)

val diameter : t -> int

val path : t -> int -> int -> link list
(** The links traversed from [src] to [dst], in normalized form (for
    traffic accounting; empty when [src = dst]). *)

val path_directed : t -> int -> int -> (int * int) list
(** Same, but each hop keeps its direction of travel. *)

val neighbors : t -> int -> int list

val contiguous_partition : t -> parts:int -> int array
(** Deterministic node -> class map splitting the node ids into [parts]
    contiguous ranges of near-equal size. This is the PDES shard
    assignment rule: contiguous package ranges keep bump-allocated home
    ranges shard-local. Raises [Invalid_argument] when [parts <= 0];
    with [parts >= n_nodes] every node is its own class (ids [0..n-1]). *)

val min_cross_latency : t -> part:int array -> int array array
(** [min_cross_latency t ~part] is the per class-pair minimum hop cost
    under the [part] node -> class map: entry [(a, b)] is the smallest
    {!hops} between any node of class [a] and any node of class [b], with
    [0] on the diagonal (and [max_int] for a class pair with no nodes —
    only possible when [part] skips class ids). The minimum off-diagonal
    entry is the guaranteed lookahead window of a conservative PDES
    sharded along [part]; it is also reusable as a placement distance
    table (SKB). Raises [Invalid_argument] if [part] is not exactly
    [n_nodes] entries or contains a negative class. *)
