(* Fixed-capacity bitset over small integers (core ids).

   Backed by an int array with 32 bits per word, so membership is two
   shifts and a load regardless of how many cores the machine has, and the
   whole set for a 128-core machine is 4 words. Replaces the [int list]
   sharer sets that made every coherence lookup O(sharers) with a cons per
   insert. *)

type t = { words : int array; nbits : int }

let bits_per_word = 32
let word_of i = i lsr 5
let bit_of i = 1 lsl (i land 31)

let create ~n =
  if n <= 0 then invalid_arg "Bitset.create: n must be positive";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0; nbits = n }

let capacity t = t.nbits

let check t i =
  if i < 0 || i >= t.nbits then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0, %d)" i t.nbits)

let add t i =
  check t i;
  t.words.(word_of i) <- t.words.(word_of i) lor bit_of i

let remove t i =
  check t i;
  t.words.(word_of i) <- t.words.(word_of i) land lnot (bit_of i)

let mem t i =
  check t i;
  t.words.(word_of i) land bit_of i <> 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let is_empty t =
  let rec go k = k = Array.length t.words || (t.words.(k) = 0 && go (k + 1)) in
  go 0

let cardinal t =
  let count = ref 0 in
  for k = 0 to Array.length t.words - 1 do
    let w = ref t.words.(k) in
    while !w <> 0 do
      w := !w land (!w - 1);
      incr count
    done
  done;
  !count

(* Members in ascending order: peel the lowest set bit of each word. *)
let iter f t =
  for k = 0 to Array.length t.words - 1 do
    let w = ref t.words.(k) in
    let base = k * bits_per_word in
    while !w <> 0 do
      let low = !w land - !w in
      (* log2 of an isolated 32-bit-range bit *)
      let rec bitpos b acc = if b = 1 then acc else bitpos (b lsr 1) (acc + 1) in
      f (base + bitpos low 0);
      w := !w land (!w - 1)
    done
  done

let fold f init t =
  let acc = ref init in
  iter (fun i -> acc := f !acc i) t;
  !acc

let to_list t = List.rev (fold (fun acc i -> i :: acc) [] t)

let choose t =
  let rec go k =
    if k = Array.length t.words then raise Not_found
    else if t.words.(k) = 0 then go (k + 1)
    else begin
      let low = t.words.(k) land -t.words.(k) in
      let rec bitpos b acc = if b = 1 then acc else bitpos (b lsr 1) (acc + 1) in
      (k * bits_per_word) + bitpos low 0
    end
  in
  go 0

let copy t = { words = Array.copy t.words; nbits = t.nbits }

let equal a b = a.nbits = b.nbits && a.words = b.words
