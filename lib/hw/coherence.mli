(** Directory-based MESI cache-coherence model.

    Tracks the MESI state of every touched cache line across per-core
    private caches (with shared-LLC groups treated as a locality class, not
    a separate level), computes the latency of each load/store from the
    line state, the interconnect hop distance and home-directory queueing,
    and maintains the performance counters.

    This is the component that makes messages-vs-shared-memory tradeoffs
    emerge rather than being asserted: Figure 3's linear shared-memory
    growth comes from home-node serialization under contention; Table 2's
    latency classes come from the hop distances; Figure 6's broadcast
    behaviour comes from N cores fetching the same dirty line serially.

    Caches default to infinite capacity (misses are cold and coherence
    misses); pass [cache_lines_per_core] to model finite caches with LRU
    replacement — dirty victims write back to their home node, clean ones
    are silently dropped, and the directory stays consistent either way. *)

type t

type line_state =
  | Invalid  (** in memory only *)
  | Shared of int list  (** clean, cached by these cores *)
  | Modified of int  (** dirty, exclusively owned by this core *)

val create : ?cache_lines_per_core:int -> Platform.t -> Perfcounter.t -> t

val set_fault : t -> Mk_fault.Injector.t -> unit
(** Attach a fault injector: cross-package data transfers and DRAM fetches
    gain the injector's current link penalty. Defaults to
    [Injector.none], whose per-transaction cost is one boolean read. *)

val platform : t -> Platform.t

val line_of_addr : t -> int -> int
(** [addr / cacheline_bytes]. *)

val set_home : t -> line:int -> node:int -> unit
(** Pin a line's home (directory) node — NUMA-aware allocation. Without
    this, the home defaults to the first toucher's package. *)

val set_home_range : t -> first_line:int -> last_line:int -> node:int -> unit
(** Pin a whole region at once (what the allocator uses). Ranges must be
    disjoint and arrive in increasing address order. *)

val set_home_region : t -> first_line:int -> last_line:int -> node_of:(int -> int) -> unit
(** Pin a region whose home node is a function of the (absolute) line
    number — O(1) state for arenas with a regular interleaved layout,
    like the large monitor mesh's n*(n-1) channel buffers. The region
    must not overlap any explicit range (the bump allocator guarantees
    this); explicit ranges take precedence on lookup. *)

val home_of : t -> line:int -> int option

val set_remote_home :
  t ->
  is_remote:(int -> bool) ->
  route:(core:int -> line:int -> home:int -> write:bool -> wake:Mk_sim.Engine.waker -> unit) ->
  unit
(** PDES cross-shard routing: when a blocking {!load}/{!store} touches a
    line whose *pinned* home package satisfies [is_remote], the access is
    not serviced here — the task parks and [route] receives the request
    plus the task's waker; the shard layer ships it to the owning shard
    (see {!Shard}) and invokes the waker when the reply arrives. [route]
    runs outside task context and must not perform task effects. The
    posted/async/banked access variants do not support remote homes: their
    soundness arguments (single writer, visibility gated within one
    engine) do not cross a shard boundary, so callers must keep such lines
    home-local — the shard layer's allocators do. *)

val remote_service : t -> now:int -> core:int -> line:int -> write:bool -> int
(** Service a remote core's blocking access at this (home) shard's
    directory: full state transition, counters and traffic, returning the
    access latency in cycles. Effect-free — [now] is the servicing shard
    engine's current time (for directory/port queueing), supplied by the
    caller because this runs from a delivered cross-shard message thunk,
    outside any task. *)

val load : t -> core:int -> int -> unit
(** [load t ~core addr]: blocks the calling task for the access latency and
    updates line state, counters and link traffic. *)

val store : t -> core:int -> int -> unit
(** Blocking store: waits until ownership is acquired (all remote copies
    invalidated). *)

val store_local : t -> core:int -> int -> unit
(** Blocking store to a line the *call site* guarantees is effectively
    core-private (single writer, any readers gated on a later visibility
    event — e.g. URPC ring/channel-state words). Behaves like {!store},
    but the common hit/local outcome is banked with {!Engine.charge}
    instead of waited, so back-to-back private-line updates fuse into one
    scheduler event. Never use it on a line another core can race: the
    caller's code after the store runs before concurrent same-window
    events, which is only sound when nothing can observe the line or the
    caller's progress inside the banked window. *)

val load_async : t -> core:int -> int -> int
(** State transitions and traffic as {!load}, but does not block: returns
    the cycles until the data would arrive. Models a prefetched load whose
    latency is hidden behind other work. *)

val store_posted : t -> core:int -> int -> int
(** Write-buffer store: charges the calling core only the store-post cost
    and returns the number of extra cycles until the store is globally
    visible (remote copies invalidated, line owned). State transitions and
    traffic are accounted immediately. This is the URPC fast path: the
    sender streams into its write buffer while invalidation is in flight. *)

val touch_range : t -> core:int -> addr:int -> bytes:int -> write:bool -> unit
(** Access every line of [addr, addr+bytes): bulk data movement (packet
    payloads, page zeroing). Blocking. *)

val line_state : t -> line:int -> line_state
(** For tests and assertions. *)

val store_post_cost : int
(** Cycles a posted store occupies the issuing core (write-buffer insert). *)
