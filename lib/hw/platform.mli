(** Descriptions of the simulated test machines.

    The four platforms of §4.1 plus synthetic machines for scaling studies.
    A platform fixes the core/package layout, the cache-sharing groups, the
    interconnect topology and the latency parameters of the coherence and
    kernel cost models. Parameters are calibrated so the microbenchmarks of
    the paper land in the right regime (see EXPERIMENTS.md); they are not
    claimed to be exact die measurements. *)

type t = {
  name : string;
  ghz : float;  (** core clock, for cycles → ns conversion *)
  n_packages : int;
  cores_per_package : int;
  cores_per_share_group : int;
      (** cores sharing the last-level cache: 4 for AMD packages with an L3,
          2 for the Intel dies with a shared L2, 1 when LLC is private *)
  topo : Topology.t;  (** package-level interconnect *)
  (* -- memory system latencies, in cycles -- *)
  l1_hit : int;
  shared_cache_fetch : int;
      (** cache-to-cache transfer inside a share group (via shared LLC) *)
  cc_base : int;  (** base cache-to-cache cost across packages, excl. hops *)
  hop_one_way : int;  (** added per interconnect hop, one way *)
  dram : int;  (** local memory fetch *)
  dir_occupancy : int;
      (** home-node serialization per coherence transaction; the source of
          queueing under contention (Fig. 3) *)
  (* -- kernel-path costs, in cycles -- *)
  syscall : int;  (** user→kernel→user crossing *)
  context_switch : int;  (** address-space switch incl. TLB refill drag *)
  dispatch : int;  (** scheduler activation + user-level dispatch *)
  trap : int;  (** cost of taking an IPI (≈800 on the paper's x86-64) *)
  ipi_wire : int;  (** APIC bus/interconnect delivery delay of an IPI *)
  tlb_invlpg : int;  (** invalidate a single TLB entry *)
  cacheline : int;  (** bytes; 64 everywhere here *)
}

val intel_2x4 : t
(** 2×4-core Intel: 2 packages × 2 dies × 2 cores, shared 4MB L2 per die,
    single FSB with snoop filter, 2.66 GHz. *)

val amd_2x2 : t
(** 2×2-core AMD: 2 packages × 2 cores, private L2, 2 HT links, 2.8 GHz. *)

val amd_4x4 : t
(** 4×4-core AMD: 4 packages × 4 cores, shared 6MB L3, HT square, 2.5 GHz. *)

val amd_8x4 : t
(** 8×4-core AMD: 8 packages × 4 cores, shared 2MB L3, HT ladder of Fig. 2,
    2 GHz. *)

val synthetic_mesh : packages:int -> cores_per_package:int -> t
(** A future-hardware machine: 2D mesh interconnect, shared LLC per package.
    Used by the scaling-extension benches (§7 directions). *)

val synthetic_tree : packages:int -> cores_per_package:int -> t
(** A future-hardware machine: complete-binary-tree interconnect (deep
    NUMA — log-depth but root-crossing worst-case paths). The PDES scaling
    bench shards it along subtrees. *)

val synthetic_bands : bands:int -> packages_per_band:int -> cores_per_package:int -> t
(** A future-hardware machine with heterogeneous latency bands: packages
    inside a band are fully meshed (one hop), bands are chained through
    single gateway links, so cross-band hops grow with band distance — a
    latency staircase. Raises [Invalid_argument] on non-positive sizes. *)

val all : t list
(** The four paper platforms. *)

val n_cores : t -> int
val package_of : t -> int -> int
(** Package (HT node) of a core. *)

val share_group_of : t -> int -> int
(** Globally unique id of the core's LLC sharing group. *)

val shares_cache : t -> int -> int -> bool
val hops_between : t -> int -> int -> int
(** Interconnect hops between two cores' packages. *)

val cycles_to_ns : t -> float -> float
val core_ids : t -> int list
val describe : t -> string
