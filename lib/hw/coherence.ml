open Mk_sim

type line_state = Invalid | Shared of int list | Modified of int

(* Internal line state is a small-int tag plus a reusable sharer bitset:
   no list allocation or O(sharers) scan on the access path, and state
   transitions recycle the same bitset. The public {!line_state} view
   converts on demand (tests only). *)
let tag_invalid = 0

let tag_shared = 1
let tag_modified = 2

type line = {
  mutable tag : int;
  (* Exclusive owner core when [tag = tag_modified]. *)
  mutable excl : int;
  (* Sharer set when [tag = tag_shared]. *)
  sharers : Bitset.t;
  mutable home : int;
  (* MOESI owner (-1 = none): the last writer keeps sourcing data to
     readers until the line is written again. *)
  mutable owner : int;
  (* End of the last owner-sourced transfer of this line: successive reads
     of one dirty line are serviced one at a time (a single line has a
     single set of MSHR/response buffers at its owner), which is Figure 6's
     Broadcast storm. Distinct lines pipeline. *)
  mutable line_busy_until : int;
}

(* Placeholder for the line table's empty value slots; never returned. *)
let dummy_line =
  {
    tag = tag_invalid;
    excl = -1;
    sharers = Bitset.create ~n:1;
    home = 0;
    owner = -1;
    line_busy_until = 0;
  }

(* Cross-shard routing for a PDES-sharded run: lines pinned to a package
   another shard owns are serviced by that shard's directory, reached via
   timestamped messages rather than a direct call (see {!Pdes}). Both
   callbacks run outside task context and must not perform task effects. *)
type remote_route = {
  rr_is_remote : int -> bool;  (* package -> owned by another shard? *)
  rr_route :
    core:int -> line:int -> home:int -> write:bool -> wake:Engine.waker -> unit;
}

type t = {
  plat : Platform.t;
  counters : Perfcounter.t;
  lines : line Inttbl.t;
  (* Optional finite capacity per core (in lines): evictions write dirty
     victims back to their home and drop clean ones. None = infinite. *)
  lrus : Lru.t option array;
  (* Home-node pinning as sorted, non-overlapping [first, last] -> node
     ranges: the bump allocator pins whole regions, so per-line entries
     would be wastefully huge. Stored as parallel int arrays so the binary
     search in [pinned_home_of] touches flat memory, and adjacent
     same-node ranges are merged on insert — the URPC mesh alone would
     otherwise pin hundreds of thousands of one-line ranges. *)
  mutable range_first : int array;
  mutable range_last : int array;
  mutable range_node : int array;
  mutable n_ranges : int;
  (* Computed home regions: [first, last] ranges whose node is a function
     of the line, for arenas with a regular interleaved layout (the large
     monitor-mesh arena pins n*(n-1) channel buffers in O(1) state this
     way). Checked after the explicit ranges miss; the list stays tiny. *)
  mutable regions : (int * int * (int -> int)) list;
  dirs : Resource.t array;  (* one directory/home-node resource per package *)
  ports : Resource.t array;  (* per-core cache port: serializes c2c sourcing *)
  n_cores : int;
  (* -- precomputed hot-path lookups (everything below is derivable from
        [plat]; hoisted here because the access path runs per event) -- *)
  pkg : int array;  (* core -> package *)
  sgrp : int array;  (* core -> LLC share group *)
  (* Cross-group transfer and DRAM latencies depend only on the two
     packages involved, so the tables are package-indexed — and dense only
     up to [dense_pkg_max] packages. Above that ([| |] here) latencies are
     derived per access from the closed-form topology distance, so a
     1024-core machine carries no quadratic latency tables at all. *)
  xfer_pkg : int array array;  (* (src pkg).(dst pkg) -> transfer latency *)
  dram_lat : int array array;  (* (src pkg).(home pkg) -> DRAM fetch latency *)
  (* (src pkg).(dst pkg) -> dword counters of the directed links en route,
     pre-resolved so charging traffic is a few stores, not a path walk.
     Dense with the tables above; larger machines resolve paths into
     [path_cache] on first use, so the footprint follows the pairs that
     actually communicate instead of all n². *)
  path_refs : int ref array array array;
  path_cache : int ref array Inttbl.t;
  probe_refs : int ref array;  (* every link, both directions *)
  (* Fault injector consulted for link degradation; [Injector.none] (and
     one armed-flag read per transaction) on the zero-fault path. *)
  mutable inj : Mk_fault.Injector.t;
  (* PDES cross-shard routing; [None] (one field read per blocking access)
     outside sharded runs. *)
  mutable remote : remote_route option;
  (* -- access-outcome scratch (see the comment above [prepare_load]) -- *)
  mutable o_kind : int;  (* 0 = hit, 1 = local, 2 = fabric transaction *)
  mutable o_lat : int;
  mutable o_home : int;
  mutable o_src_port : int;  (* sourcing core's cache port; -1 = none *)
  mutable o_line : line;  (* per-line storm slot; [dummy_line] = none *)
}

(* Dword accounting per the HT convention the paper uses for Table 4:
   command/probe packets are 2 dwords, a cache line of data is 16 dwords
   plus a 2-dword header. *)
let cmd_dwords = 2
let data_dwords = 18
let store_post_cost = 60
let port_occupancy = 70

(* Largest package count that still precomputes the dense package-pair
   latency/path tables (every paper platform and the 128-core scaling
   machines sit far below it). Beyond this, the 256+-package sweeps,
   latencies come from the closed-form topology per access and link-path
   counters are cached per communicating pair. *)
let dense_pkg_max = 64

let create ?cache_lines_per_core plat counters =
  let n = Platform.n_cores plat in
  let npkg = plat.Platform.n_packages in
  let topo = plat.Platform.topo in
  let pkg = Array.init n (fun c -> Platform.package_of plat c) in
  let sgrp = Array.init n (fun c -> Platform.share_group_of plat c) in
  let dense = npkg <= dense_pkg_max in
  let xfer_pkg =
    if not dense then [||]
    else
      Array.init npkg (fun src ->
          Array.init npkg (fun dst ->
              plat.Platform.cc_base
              + (2 * plat.Platform.hop_one_way * Topology.hops topo src dst)))
  in
  let dram_lat =
    if not dense then [||]
    else
      Array.init npkg (fun src ->
          Array.init npkg (fun home ->
              plat.Platform.dram
              + (2 * plat.Platform.hop_one_way * Topology.hops topo src home)))
  in
  let path_refs =
    if not dense then [||]
    else
      Array.init npkg (fun src ->
          Array.init npkg (fun dst ->
              Topology.path_directed topo src dst
              |> List.map (Perfcounter.link_counter counters)
              |> Array.of_list))
  in
  let probe_refs =
    Array.concat
      (Array.to_list
         (Array.map
            (fun (a, b) ->
              [| Perfcounter.link_counter counters (a, b);
                 Perfcounter.link_counter counters (b, a) |])
            (Topology.links topo)))
  in
  {
    plat;
    counters;
    lines = Inttbl.create ~dummy:dummy_line ();
    lrus =
      (match cache_lines_per_core with
       | None -> Array.make n None
       | Some cap -> Array.init n (fun _ -> Some (Lru.create ~capacity:cap)));
    range_first = Array.make 64 0;
    range_last = Array.make 64 0;
    range_node = Array.make 64 0;
    n_ranges = 0;
    regions = [];
    dirs =
      Array.init npkg (fun i -> Resource.create ~name:(Printf.sprintf "dir%d" i) ());
    ports =
      Array.init n (fun i -> Resource.create ~name:(Printf.sprintf "cacheport%d" i) ());
    n_cores = n;
    pkg;
    sgrp;
    xfer_pkg;
    dram_lat;
    path_refs;
    path_cache = Inttbl.create ~initial_bits:8 ~dummy:[||] ();
    probe_refs;
    inj = Mk_fault.Injector.none;
    remote = None;
    o_kind = 0;
    o_lat = 0;
    o_home = 0;
    o_src_port = -1;
    o_line = dummy_line;
  }

let set_fault t inj = t.inj <- inj

let set_remote_home t ~is_remote ~route =
  t.remote <- Some { rr_is_remote = is_remote; rr_route = route }

(* Extra transfer latency from an injected degraded/partitioned link
   between two packages; 0 unless a fault plan is armed. *)
let link_extra t a b =
  if Mk_fault.Injector.armed t.inj then
    Mk_fault.Injector.link_penalty t.inj ~src_pkg:a ~dst_pkg:b
  else 0

let platform t = t.plat
let line_of_addr t addr = addr / t.plat.Platform.cacheline

let set_home_range t ~first_line ~last_line ~node =
  (* The allocator hands out monotonically increasing addresses, so ranges
     usually arrive sorted and append at the end; pins into the detached
     shared arena ({!Mk.Shard.alloc_shared} mirrors high-address ranges
     onto every shard machine) can arrive before later low-address brk
     pins, so out-of-order ranges fall back to a sorted insertion that
     keeps the binary search valid. Overlap is rejected either way. *)
  let n = t.n_ranges in
  let idx =
    if n = 0 || first_line > t.range_first.(n - 1) then n
    else begin
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if t.range_first.(mid) < first_line then lo := mid + 1 else hi := mid
      done;
      !lo
    end
  in
  if
    (idx > 0 && t.range_last.(idx - 1) >= first_line)
    || (idx < n && t.range_first.(idx) <= last_line)
  then invalid_arg "Coherence.set_home_range: overlapping ranges";
  if idx > 0 && t.range_node.(idx - 1) = node && t.range_last.(idx - 1) = first_line - 1
  then t.range_last.(idx - 1) <- last_line
  else begin
    if n = Array.length t.range_first then begin
      let grow a =
        let bigger = Array.make (n * 2) 0 in
        Array.blit a 0 bigger 0 n;
        bigger
      in
      t.range_first <- grow t.range_first;
      t.range_last <- grow t.range_last;
      t.range_node <- grow t.range_node
    end;
    if idx < n then begin
      Array.blit t.range_first idx t.range_first (idx + 1) (n - idx);
      Array.blit t.range_last idx t.range_last (idx + 1) (n - idx);
      Array.blit t.range_node idx t.range_node (idx + 1) (n - idx)
    end;
    t.range_first.(idx) <- first_line;
    t.range_last.(idx) <- last_line;
    t.range_node.(idx) <- node;
    t.n_ranges <- n + 1
  end

let set_home t ~line ~node = set_home_range t ~first_line:line ~last_line:line ~node

let set_home_region t ~first_line ~last_line ~node_of =
  t.regions <- (first_line, last_line, node_of) :: t.regions

let pinned_home_of t line =
  let rec search lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      if line < t.range_first.(mid) then search lo (mid - 1)
      else if line > t.range_last.(mid) then search (mid + 1) hi
      else Some t.range_node.(mid)
    end
  in
  match search 0 (t.n_ranges - 1) with
  | Some _ as r -> r
  | None ->
    let rec scan = function
      | [] -> None
      | (f, l, fn) :: rest -> if line >= f && line <= l then Some (fn line) else scan rest
    in
    scan t.regions

let home_of t ~line =
  match Inttbl.find_opt t.lines line with
  | Some l -> Some l.home
  | None -> pinned_home_of t line

let get_line t ~core line =
  let l = Inttbl.find_or t.lines line dummy_line in
  if l != dummy_line then l
  else begin
    let home =
      match pinned_home_of t line with Some n -> n | None -> t.pkg.(core)
    in
    let l =
      {
        tag = tag_invalid;
        excl = -1;
        sharers = Bitset.create ~n:t.n_cores;
        home;
        owner = -1;
        line_busy_until = 0;
      }
    in
    Inttbl.set t.lines line l;
    l
  end

(* Cross-share-group transfer latency between two cores. Every caller has
   already established the cores are in different share groups, so the
   latency depends only on their packages. *)
let xfer_of t src dst =
  let ps = t.pkg.(src) and pd = t.pkg.(dst) in
  if t.xfer_pkg != [||] then t.xfer_pkg.(ps).(pd)
  else
    t.plat.Platform.cc_base
    + (2 * t.plat.Platform.hop_one_way * Topology.hops t.plat.Platform.topo ps pd)

let dram_of t src_pkg home =
  if t.dram_lat != [||] then t.dram_lat.(src_pkg).(home)
  else
    t.plat.Platform.dram
    + (2 * t.plat.Platform.hop_one_way * Topology.hops t.plat.Platform.topo src_pkg home)

(* Pre-resolved directed link counters en route between two (distinct)
   packages; above [dense_pkg_max], resolved once per communicating pair
   into [path_cache]. A valid path between distinct packages is never
   empty, so [[||]] doubles as the table's absent sentinel. *)
let path_refs_of t src_pkg dst_pkg =
  if t.path_refs != [||] then t.path_refs.(src_pkg).(dst_pkg)
  else begin
    let key = (src_pkg * t.plat.Platform.n_packages) + dst_pkg in
    let refs = Inttbl.find_or t.path_cache key [||] in
    if refs != [||] then refs
    else begin
      let refs =
        Topology.path_directed t.plat.Platform.topo src_pkg dst_pkg
        |> List.map (Perfcounter.link_counter t.counters)
        |> Array.of_list
      in
      Inttbl.set t.path_cache key refs;
      refs
    end
  end

(* Charge dword traffic along the route between two packages, keeping the
   direction of travel (Table 4 reports per-direction link utilization). *)
let charge_path t src_pkg dst_pkg dwords =
  if src_pkg <> dst_pkg then begin
    let refs = path_refs_of t src_pkg dst_pkg in
    for i = 0 to Array.length refs - 1 do
      let r = Array.unsafe_get refs i in
      r := !r + dwords
    done
  end

(* Broadcast probe traffic: HT probes fan out on every link, both ways. *)
let charge_probe_broadcast t =
  let refs = t.probe_refs in
  for i = 0 to Array.length refs - 1 do
    let r = Array.unsafe_get refs i in
    r := !r + cmd_dwords
  done

let is_local_group t a b = t.sgrp.(a) = t.sgrp.(b)

(* Capacity: a core dropping a line (eviction or remote invalidation). *)
let forget t ~core lid =
  match t.lrus.(core) with Some lru -> Lru.remove lru lid | None -> ()

let evict t ~core victim_lid =
  let v = Inttbl.find_or t.lines victim_lid dummy_line in
  if v != dummy_line then begin
    if v.tag = tag_modified && v.excl = core then begin
      (* Dirty eviction: write the line back to its home. *)
      charge_path t t.pkg.(core) v.home data_dwords;
      v.tag <- tag_invalid;
      v.owner <- -1
    end
    else if v.tag = tag_shared then begin
      Bitset.remove v.sharers core;
      if Bitset.is_empty v.sharers then v.tag <- tag_invalid;
      if v.owner = core then v.owner <- -1
    end
  end

(* Record that [core] now caches [lid]; handle any capacity eviction. *)
let note_presence t ~core lid =
  match t.lrus.(core) with
  | None -> ()
  | Some lru ->
    (match Lru.touch lru lid with
     | Some victim when victim <> lid -> evict t ~core victim
     | Some _ | None -> ())

(* What a memory access must do, decided from the line state. State
   transitions, counters and traffic happen in [prepare_load]/
   [prepare_store]; how the latency is realized (blocking wait vs
   posted/async delay) is up to the caller via [realize_*].

   The decision lives in the [o_*] scratch fields of [t] rather than an
   allocated variant: a prepare/realize pair runs back-to-back on every
   simulated load and store, and boxing the latency/home/port/line per
   access was a measurable slice of the event allocation budget. The only
   code between a prepare and its realize is straight-line (no scheduling
   point), except inside [realize_posted] itself, which copies the fields
   to locals before flushing. Kinds: *)
let k_hit = 0
let k_local = 1  (* within a share group: no fabric involvement *)
let k_txn = 2  (* fabric transaction; [o_line] set = per-line storm slot *)

let set_hit t = t.o_kind <- k_hit

let set_local t lat =
  t.o_kind <- k_local;
  t.o_lat <- lat

let set_txn t ~home ~lat ~src_port ~ln =
  t.o_kind <- k_txn;
  t.o_lat <- lat;
  t.o_home <- home;
  t.o_src_port <- src_port;
  t.o_line <- ln

(* A posted access moves line state at the caller's *virtual* time while
   the engine clock may lag by the banked charge. Posted accesses only
   touch protocol-ordered lines (URPC channel slots, barrier sense words):
   a single writer, readers gated on a later visibility event — so a small
   bank (fixed software-path costs, hit runs) cannot race anything. Two
   exceptions pay the bank up front:
   - a large one (a compute quantum banked by [Resource.acquire]) could
     move line state millions of cycles early;
   - an armed fault injector breaks the slot discipline the argument rests
     on (a duplicated message is read after its flow credit was returned,
     so sender and receiver can race one slot line), so chaos runs flush
     every posted access to stay bit-identical with the unfused referee. *)
let max_deferred_at_access = 512

let access_flush t =
  if
    Engine.pending_charge () > max_deferred_at_access
    || Mk_fault.Injector.armed t.inj
  then Engine.flush_charge ()

let prepare_load t ~core addr =
  let p = t.plat in
  let lid = line_of_addr t addr in
  let l = get_line t ~core lid in
  Perfcounter.count_load t.counters ~core;
  Perfcounter.touch_line t.counters ~core ~line:lid;
  note_presence t ~core lid;
  if l.tag = tag_modified then begin
    let o = l.excl in
    if o = core then set_hit t
    else begin
      Perfcounter.count_miss t.counters ~core;
      Perfcounter.count_c2c t.counters ~core;
      l.tag <- tag_shared;
      Bitset.clear l.sharers;
      Bitset.add l.sharers core;
      Bitset.add l.sharers o;
      if is_local_group t core o then set_local t p.Platform.shared_cache_fetch
      else begin
        let lat = xfer_of t o core + link_extra t t.pkg.(o) t.pkg.(core) in
        charge_path t t.pkg.(core) l.home cmd_dwords;
        charge_path t t.pkg.(o) t.pkg.(core) data_dwords;
        set_txn t ~home:l.home ~lat ~src_port:o ~ln:l
      end
    end
  end
  else if l.tag = tag_shared then begin
    if Bitset.mem l.sharers core then set_hit t
    else begin
      Perfcounter.count_miss t.counters ~core;
      Bitset.add l.sharers core;
      let o = l.owner in
      if o >= 0 && o <> core && not (is_local_group t core o) then begin
        (* Owned line: the last writer's cache sources the data. *)
        Perfcounter.count_c2c t.counters ~core;
        let lat = xfer_of t o core + link_extra t t.pkg.(o) t.pkg.(core) in
        charge_path t t.pkg.(core) l.home cmd_dwords;
        charge_path t t.pkg.(o) t.pkg.(core) data_dwords;
        set_txn t ~home:l.home ~lat ~src_port:o ~ln:l
      end
      else if o >= 0 && o <> core then begin
        Perfcounter.count_c2c t.counters ~core;
        set_local t p.Platform.shared_cache_fetch
      end
      else begin
        Perfcounter.count_dram t.counters ~core;
        let lat = dram_of t t.pkg.(core) l.home + link_extra t t.pkg.(core) l.home in
        charge_path t t.pkg.(core) l.home (cmd_dwords + data_dwords);
        set_txn t ~home:l.home ~lat ~src_port:(-1) ~ln:dummy_line
      end
    end
  end
  else begin
    Perfcounter.count_miss t.counters ~core;
    Perfcounter.count_dram t.counters ~core;
    l.tag <- tag_shared;
    Bitset.clear l.sharers;
    Bitset.add l.sharers core;
    let lat = dram_of t t.pkg.(core) l.home + link_extra t t.pkg.(core) l.home in
    charge_path t t.pkg.(core) l.home (cmd_dwords + data_dwords);
    set_txn t ~home:l.home ~lat ~src_port:(-1) ~ln:dummy_line
  end

let prepare_store t ~core addr =
  let p = t.plat in
  let lid = line_of_addr t addr in
  let l = get_line t ~core lid in
  Perfcounter.count_store t.counters ~core;
  Perfcounter.touch_line t.counters ~core ~line:lid;
  note_presence t ~core lid;
  l.owner <- core;
  if l.tag = tag_modified then begin
    let o = l.excl in
    if o = core then set_hit t
    else begin
      Perfcounter.count_miss t.counters ~core;
      Perfcounter.count_c2c t.counters ~core;
      forget t ~core:o lid;
      l.excl <- core;
      if is_local_group t core o then set_local t p.Platform.shared_cache_fetch
      else begin
        let lat = xfer_of t o core + link_extra t t.pkg.(o) t.pkg.(core) in
        charge_path t t.pkg.(core) l.home cmd_dwords;
        charge_path t t.pkg.(o) t.pkg.(core) data_dwords;
        (* Migratory write: ownership moves between different cores, so
           successive transfers pipeline (no per-line storm slot). *)
        set_txn t ~home:l.home ~lat ~src_port:o ~ln:dummy_line
      end
    end
  end
  else if l.tag = tag_shared then begin
    if Bitset.mem l.sharers core && Bitset.cardinal l.sharers = 1 then begin
      (* Silent E->M upgrade. *)
      l.tag <- tag_modified;
      l.excl <- core;
      set_hit t
    end
    else begin
      Perfcounter.count_miss t.counters ~core;
      Perfcounter.count_inval t.counters ~core;
      (* Single pass over the sharers: drop each remote copy and track the
         farthest one (invalidation latency is bounded by it). *)
      let far = ref 0 in
      Bitset.iter
        (fun c ->
          if c <> core then begin
            forget t ~core:c lid;
            if not (is_local_group t core c) then begin
              let lat = xfer_of t c core in
              if lat > !far then far := lat
            end
          end)
        l.sharers;
      l.tag <- tag_modified;
      l.excl <- core;
      if !far = 0 then set_local t p.Platform.shared_cache_fetch
      else begin
        (* Invalidation probes broadcast across the fabric; latency bounded
           by the farthest sharer. *)
        charge_probe_broadcast t;
        set_txn t ~home:l.home ~lat:!far ~src_port:(-1) ~ln:dummy_line
      end
    end
  end
  else begin
    Perfcounter.count_miss t.counters ~core;
    Perfcounter.count_dram t.counters ~core;
    l.tag <- tag_modified;
    l.excl <- core;
    let lat = dram_of t t.pkg.(core) l.home + link_extra t t.pkg.(core) l.home in
    charge_path t t.pkg.(core) l.home (cmd_dwords + data_dwords);
    set_txn t ~home:l.home ~lat ~src_port:(-1) ~ln:dummy_line
  end

(* Realize an outcome without blocking: reserve the serialized resources
   and return the delay (relative to now) until the access completes.
   The home directory is occupied for its fixed service time; the sourcing
   cache's port is occupied for the whole transfer (a second fetch from the
   same cache cannot start until the first response has left), which is
   what serializes reader storms on one line. Both overlap the transfer
   latency itself. *)
let realize_txn_at t ~now ~home ~lat ~src_port ~ln =
  let occ = t.plat.Platform.dir_occupancy in
  let dir_done = Resource.reserve_at t.dirs.(home) ~now occ in
  let port_done =
    if src_port >= 0 then Resource.reserve_at t.ports.(src_port) ~now port_occupancy
    else dir_done
  in
  if ln != dummy_line then begin
    (* Owner-sourced transfer: readers of one dirty line are serviced
       one at a time; each service slot spans directory lookup, port
       turnaround and the transfer itself. An uncontended access still
       completes in [lat]. *)
    let slot_start = max now ln.line_busy_until in
    ln.line_busy_until <- slot_start + occ + port_occupancy + lat;
    let data_at = slot_start + lat in
    max (max lat (max dir_done port_done - now)) (data_at - now)
  end
  else max lat (max dir_done port_done - now)

let realize_posted t =
  let p = t.plat in
  if t.o_kind = k_hit then p.Platform.l1_hit
  else if t.o_kind = k_local then t.o_lat
  else begin
    (* Copy the scratch outcome to locals BEFORE flushing: the flush is a
       scheduling point that can run other tasks, and their accesses
       overwrite the shared scratch fields. *)
    let home = t.o_home and lat = t.o_lat in
    let src_port = t.o_src_port and ln = t.o_line in
    (* A transaction serializes on shared resources (directory, source
       port, per-line storm slot): those queues must be joined at the true
       simulated time and in true event order, so pay any banked charge
       before reserving. Hit/Local touch nothing shared and skip this. *)
    Engine.flush_charge ();
    realize_txn_at t ~now:(Engine.now_ ()) ~home ~lat ~src_port ~ln
  end

(* Effect-free service of a remote core's request at this (home) shard:
   prepare + realize with the caller supplying the shard engine's current
   time. Runs from a delivered cross-shard message thunk, outside any task
   context, so it must not flush or wait — there is no bank to flush and
   the returned latency travels back inside the reply message timestamp. *)
let remote_service t ~now ~core ~line ~write =
  let addr = line * t.plat.Platform.cacheline in
  if write then prepare_store t ~core addr else prepare_load t ~core addr;
  if t.o_kind = k_hit then t.plat.Platform.l1_hit
  else if t.o_kind = k_local then t.o_lat
  else
    realize_txn_at t ~now ~home:t.o_home ~lat:t.o_lat ~src_port:t.o_src_port
      ~ln:t.o_line

(* Blocking realization. A blocking access is an *interaction point*, not a
   pure delay: callers use its completion to order their own shared-state
   updates against other cores (spinlock words, barrier arrival counters,
   work-queue heads), so the whole access — including a Hit — must happen
   at the true simulated time. Banking a Hit here deadlocked the futex
   barrier: the sleeper's arrival slid ahead of the waker's scan. *)
let realize_blocking t =
  if t.o_kind = k_hit then Engine.wait t.plat.Platform.l1_hit
  else if t.o_kind = k_local then Engine.wait t.o_lat
  else Engine.wait (realize_posted t)

(* A blocking access whose line is pinned to a package another shard owns:
   park the task and hand (line, home, waker) to the route callback, which
   ships the request across the shard boundary and eventually invokes the
   waker at the reply's arrival time. Only [load]/[store] support remote
   homes — the posted/async/banked variants rely on same-shard visibility
   arguments that do not survive a shard boundary, and the shard layer
   keeps their lines (URPC rings, private heaps) home-local by
   construction. *)
let remote_blocking rr ~core ~line ~home ~write =
  Engine.flush_charge ();
  Engine.suspend (fun wake -> rr.rr_route ~core ~line ~home ~write ~wake)

let load t ~core addr =
  Engine.flush_charge ();
  (match t.remote with
  | Some rr -> (
    let lid = line_of_addr t addr in
    match pinned_home_of t lid with
    | Some home when rr.rr_is_remote home ->
      remote_blocking rr ~core ~line:lid ~home ~write:false
    | _ ->
      prepare_load t ~core addr;
      realize_blocking t)
  | None ->
    prepare_load t ~core addr;
    realize_blocking t)

let load_async t ~core addr =
  access_flush t;
  prepare_load t ~core addr;
  realize_posted t

let store t ~core addr =
  Engine.flush_charge ();
  (match t.remote with
  | Some rr -> (
    let lid = line_of_addr t addr in
    match pinned_home_of t lid with
    | Some home when rr.rr_is_remote home ->
      remote_blocking rr ~core ~line:lid ~home ~write:true
    | _ ->
      prepare_store t ~core addr;
      realize_blocking t)
  | None ->
    prepare_store t ~core addr;
    realize_blocking t)

(* Blocking store to a line the call site guarantees is effectively
   core-private (URPC ring/channel-state words: one sender task, readers
   gated on a later visibility event). Privacy makes the access a pure
   delay — nothing observes the line state or the caller's progress inside
   the window — so the common Hit/Local outcome is banked instead of
   waited. A transaction (first touch, post-migration refill) still joins
   the shared directory queues and waits. *)
let store_local t ~core addr =
  access_flush t;
  prepare_store t ~core addr;
  if t.o_kind = k_hit then Engine.charge t.plat.Platform.l1_hit
  else if t.o_kind = k_local then Engine.charge t.o_lat
  else Engine.wait (realize_posted t)

let store_posted t ~core addr =
  access_flush t;
  prepare_store t ~core addr;
  let delay = realize_posted t in
  (* The posted-store pipeline drain is a fixed local cost. *)
  Engine.charge store_post_cost;
  max 0 (delay - store_post_cost)

let touch_range t ~core ~addr ~bytes ~write =
  if bytes > 0 then begin
    let first = line_of_addr t addr in
    let last = line_of_addr t (addr + bytes - 1) in
    for l = first to last do
      let a = l * t.plat.Platform.cacheline in
      if write then store t ~core a else load t ~core a
    done
  end

let line_state t ~line =
  match Inttbl.find_opt t.lines line with
  | None -> Invalid
  | Some l ->
    if l.tag = tag_modified then Modified l.excl
    else if l.tag = tag_shared then Shared (Bitset.to_list l.sharers)
    else Invalid
