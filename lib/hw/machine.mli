(** A complete simulated machine: platform + engine + memory system.

    Bundles the event engine, coherence model, counters, per-core TLBs and
    execution resources, the IPI controller, and a bump allocator for
    simulated physical memory. Every higher layer (multikernel OS, baseline
    OS, devices) hangs off one of these. *)

type t = {
  eng : Mk_sim.Engine.t;
  plat : Platform.t;
  counters : Perfcounter.t;
  coh : Coherence.t;
  tlbs : Tlb.t array;
  cores : Mk_sim.Resource.t array;  (** per-core execution serialization *)
  ipi : Ipi.t;
  fault : Mk_fault.Injector.t;  (** fault injector; [Injector.none] by default *)
  mutable brk : int;  (** bump-allocator frontier, line-aligned *)
  mutable comm : Mk_sim.Trace.Comm.t option;
      (** when set, URPC sends record (src, dst) message counts here —
          the measured communication graph behind SKB-driven placement;
          [None] (the default) costs one option check per send *)
}

val create :
  ?eng:Mk_sim.Engine.t ->
  ?cache_lines_per_core:int ->
  ?fault:Mk_fault.Injector.t ->
  Platform.t ->
  t
(** [cache_lines_per_core] switches the coherence model from infinite to
    finite LRU caches of that many lines per core. [fault] attaches a fault
    injector to the coherence fabric, IPI controller and (via the machine
    record) the URPC / NIC layers; the default [Injector.none] makes every
    fault point a single boolean read. *)

val n_cores : t -> int

val alloc_bytes : t -> ?node:int -> int -> int
(** Allocate a line-aligned region of simulated physical memory; returns
    the base address. [node] pins the home (directory/NUMA) node of every
    line in the region — the knob behind NUMA-aware URPC buffers. *)

val alloc_lines : t -> ?node:int -> int -> int
(** Same, in units of cache lines. *)

val alloc_region : t -> lines:int -> node_of:(int -> int) -> int
(** Allocate [lines] cache lines whose home nodes follow [node_of]
    (line offset from the region base -> node) — a computed home region
    ({!Coherence.set_home_region}), so a huge regularly-interleaved arena
    costs O(1) pinning state. Returns the base address. *)

val compute : t -> core:int -> int -> unit
(** Occupy [core] for [n] cycles of pure computation (FIFO with anything
    else executing there), blocking the calling task until done. *)

val spawn_on : t -> core:int -> ?name:string -> (unit -> unit) -> unit
(** Convenience: spawn a task logically bound to a core (naming only — code
    must use [compute]/coherence calls with the right core id). *)

val run : t -> unit
(** Drive the engine until no events remain. *)

val run_until : t -> int -> unit
val now : t -> int
val ns_of_cycles : t -> int -> float
