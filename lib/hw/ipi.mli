(** Inter-processor interrupts.

    The mechanism Linux/Windows shootdown is built on (§5.1): the sender
    writes the local APIC (cheap), the interrupt crosses the interconnect,
    and the target core takes a trap (≈800 cycles on the paper's hardware)
    before the registered handler runs in its context. The trap and handler
    occupy the target's core resource, so IPI storms serialize per core
    exactly as on real hardware. *)

type t

val create : Platform.t -> core_resources:Mk_sim.Resource.t array -> t

val set_fault : t -> Mk_fault.Injector.t -> unit
(** Attach a fault injector: IPIs to a stopped core are silently dropped
    (counted in the injector's stats) and degraded links delay delivery. *)

val register : t -> core:int -> vector:int -> (src:int -> unit) -> unit
(** Install the handler a core runs when it receives [vector]. The handler
    body runs as a simulation task on the target core, after the trap cost.
    Re-registering a vector replaces the handler. *)

val send : t -> src:int -> dst:int -> vector:int -> unit
(** Fire-and-forget: charges the sender the APIC-write cost and schedules
    delivery after the wire delay. Raises [Invalid_argument] if the target
    has no handler for [vector]. *)

val apic_write_cost : int
(** Cycles the sender spends writing the interrupt command register. *)

val sent : t -> int
(** Total IPIs sent (statistics). *)
