(** Inter-processor interrupts.

    The mechanism Linux/Windows shootdown is built on (§5.1): the sender
    writes the local APIC (cheap), the interrupt crosses the interconnect,
    and the target core takes a trap (≈800 cycles on the paper's hardware)
    before the registered handler runs in its context. The trap and handler
    occupy the target's core resource, so IPI storms serialize per core
    exactly as on real hardware. *)

type t

val create : Platform.t -> core_resources:Mk_sim.Resource.t array -> t

val set_fault : t -> Mk_fault.Injector.t -> unit
(** Attach a fault injector: IPIs to a stopped core are silently dropped
    (counted in the injector's stats) and degraded links delay delivery. *)

val register : t -> core:int -> vector:int -> (src:int -> unit) -> unit
(** Install the handler a core runs when it receives [vector]. The handler
    body runs as a simulation task on the target core, after the trap cost.
    Re-registering a vector replaces the handler. *)

val send : t -> src:int -> dst:int -> vector:int -> unit
(** Fire-and-forget: charges the sender the APIC-write cost and schedules
    delivery after the wire delay. Raises [Invalid_argument] if the target
    has no handler for [vector]. *)

val set_remote : t -> is_remote:(int -> bool) -> route:(src:int -> dst:int -> vector:int -> wire:int -> unit) -> unit
(** PDES cross-shard delivery: when {!send} targets a core satisfying
    [is_remote], the sender still pays the APIC-write cost but the wire
    leg and handler are handed to [route] (with [wire] the computed wire
    delay), which ships them to the owning shard as a timestamped message
    ending in that shard's {!deliver}. [route] runs in the sending task's
    context but must not block. *)

val deliver : t -> eng:Mk_sim.Engine.t -> src:int -> dst:int -> vector:int -> unit
(** Arrival half of a cross-shard IPI on the owning shard: trap [dst] and
    run its registered handler, exactly like local delivery after the wire
    delay. Effect-free (spawns the trap task on [eng]), so it can be
    called from a delivered cross-shard message thunk. Raises
    [Invalid_argument] if no handler is registered. *)

val apic_write_cost : int
(** Cycles the sender spends writing the interrupt command register. *)

val sent : t -> int
(** Total IPIs sent (statistics). *)
