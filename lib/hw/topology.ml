type link = int * int

(* Routing state for one BFS source: [dist.(v)] hops from the source,
   [next.(v)] first hop from the source towards [v] (the source itself on
   the diagonal). One row is O(n); the dense n x n matrices the original
   implementation carried are gone. *)
type row = { dist : int array; next : int array }

(* Structure-aware families get closed-form routing with no per-pair (or
   even per-node) state; arbitrary link lists fall back to per-source BFS
   rows materialized on demand. [Tree] is the complete binary tree with
   parent (i-1)/2; [Mesh side] is the row-major grid of the given width
   whose last row may be ragged — exactly the shapes the synthetic
   platform generators emit. *)
type kind =
  | Complete
  | Tree
  | Mesh of int  (* grid width *)
  | Irregular of {
      link_arr : link array;
      adj : int list array;  (* sorted ascending: the BFS tie-break order *)
      (* Lazily published BFS rows. A [t] is shared read-only across pool
         and PDES domains, so publication must be a CAS: the row content
         is a pure function of the graph, hence any racing winner is
         identical and losers just drop their copy. *)
      rows : row option Atomic.t array;
      mutable diam : int;  (* memoized diameter; -1 = not yet computed *)
    }

type t = { n : int; kind : kind }

let norm (a, b) = if a < b then (a, b) else (b, a)

(* BFS from [s] with neighbors visited in ascending order: the lowest-id
   tie-break for routing. First hop is inherited from the discovering
   parent, except when the parent is the source. This is byte-identical
   to the row the old all-pairs construction produced. *)
let bfs_row ~n ~adj s =
  let dist = Array.make n max_int in
  let next = Array.make n (-1) in
  dist.(s) <- 0;
  next.(s) <- s;
  let q = Queue.create () in
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    List.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          next.(v) <- (if u = s then v else next.(u));
          Queue.add v q
        end)
      adj.(u)
  done;
  { dist; next }

let irregular_row ~n ~adj ~rows s =
  match Atomic.get rows.(s) with
  | Some r -> r
  | None ->
    let r = bfs_row ~n ~adj s in
    if Atomic.compare_and_set rows.(s) None (Some r) then r
    else (match Atomic.get rows.(s) with Some r -> r | None -> assert false)

let create ~n ~links =
  if n <= 0 then invalid_arg "Topology.create: n must be positive";
  let adj = Array.make n [] in
  let seen = Hashtbl.create 16 in
  let add (a, b) =
    if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Topology.create: bad endpoint";
    if a = b then invalid_arg "Topology.create: self-loop";
    let l = norm (a, b) in
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b)
    end
  in
  List.iter add links;
  (* Deterministic neighbor order. *)
  Array.iteri (fun i l -> adj.(i) <- List.sort_uniq compare l) adj;
  let rows = Array.init n (fun _ -> Atomic.make None) in
  (* Connectivity check doubles as the first materialized row. *)
  let r0 = bfs_row ~n ~adj 0 in
  if n > 1 then
    for d = 0 to n - 1 do
      if r0.dist.(d) = max_int then invalid_arg "Topology.create: disconnected graph"
    done;
  Atomic.set rows.(0) (Some r0);
  let link_arr = Array.of_seq (Hashtbl.to_seq_keys seen) in
  Array.sort compare link_arr;
  { n; kind = Irregular { link_arr; adj; rows; diam = -1 } }

let fully_connected ~n =
  if n <= 0 then invalid_arg "Topology.create: n must be positive";
  { n; kind = Complete }

let tree ~n =
  if n <= 0 then invalid_arg "Topology.tree: n must be positive";
  { n; kind = Tree }

let mesh ~n ~side =
  if n <= 0 then invalid_arg "Topology.mesh: n must be positive";
  if side <= 0 then invalid_arg "Topology.mesh: side must be positive";
  { n; kind = Mesh side }

let n_nodes t = t.n

(* -- closed forms ------------------------------------------------------ *)

(* Complete binary tree helpers: depth, and lifting a node [k] levels up. *)
let tree_depth v =
  let d = ref 0 and v = ref v in
  while !v > 0 do
    v := (!v - 1) / 2;
    incr d
  done;
  !d

let tree_lift v k =
  let v = ref v in
  for _ = 1 to k do
    v := (!v - 1) / 2
  done;
  !v

let tree_dist s d =
  let ds = tree_depth s and dd = tree_depth d in
  let s' = if ds > dd then tree_lift s (ds - dd) else s in
  let d' = if dd > ds then tree_lift d (dd - ds) else d in
  let climb = ref 0 and a = ref s' and b = ref d' in
  while !a <> !b do
    a := (!a - 1) / 2;
    b := (!b - 1) / 2;
    climb := !climb + 2
  done;
  abs (ds - dd) + !climb

(* Paths in a tree are unique, so no tie-break arises: towards a node in
   our subtree the first hop is its ancestor one level below us, otherwise
   it is our parent. *)
let tree_next s d =
  if s = d then s
  else begin
    let ds = tree_depth s and dd = tree_depth d in
    if dd > ds && tree_lift d (dd - ds) = s then tree_lift d (dd - ds - 1)
    else (s - 1) / 2
  end

let mesh_dist side s d = abs ((s mod side) - (d mod side)) + abs ((s / side) - (d / side))

(* First hop in the (possibly ragged) grid. BFS with ascending neighbor
   order routes via the numerically smallest neighbor of [s] that lies on
   a shortest path, and the grid neighbors in ascending id order are
   up (s-side), left (s-1), right (s+1), down (s+side) — so scanning them
   in that order and taking the first that reduces the Manhattan distance
   reproduces the old tie-break exactly. *)
let mesh_next n side s d =
  if s = d then s
  else begin
    let ds = mesh_dist side s d in
    let x = s mod side in
    if s - side >= 0 && mesh_dist side (s - side) d = ds - 1 then s - side
    else if x > 0 && mesh_dist side (s - 1) d = ds - 1 then s - 1
    else if x + 1 < side && s + 1 < n && mesh_dist side (s + 1) d = ds - 1 then s + 1
    else s + side
  end

let check_node t v = if v < 0 || v >= t.n then invalid_arg "index out of bounds"

let hops t s d =
  check_node t s;
  check_node t d;
  match t.kind with
  | Complete -> if s = d then 0 else 1
  | Tree -> tree_dist s d
  | Mesh side -> mesh_dist side s d
  | Irregular { adj; rows; _ } -> (irregular_row ~n:t.n ~adj ~rows s).dist.(d)

let next_hop t s d =
  check_node t s;
  check_node t d;
  match t.kind with
  | Complete -> d
  | Tree -> tree_next s d
  | Mesh side -> mesh_next t.n side s d
  | Irregular { adj; rows; _ } -> (irregular_row ~n:t.n ~adj ~rows s).next.(d)

(* Iterate the neighbors of [u] in ascending id order without consulting
   (or building) any adjacency structure for the closed-form families. *)
let iter_neighbors t u f =
  match t.kind with
  | Complete ->
    for v = 0 to t.n - 1 do
      if v <> u then f v
    done
  | Tree ->
    if u > 0 then f ((u - 1) / 2);
    if (2 * u) + 1 < t.n then f ((2 * u) + 1);
    if (2 * u) + 2 < t.n then f ((2 * u) + 2)
  | Mesh side ->
    if u - side >= 0 then f (u - side);
    if u mod side > 0 then f (u - 1);
    if (u mod side) + 1 < side && u + 1 < t.n then f (u + 1);
    if u + side < t.n then f (u + side)
  | Irregular { adj; _ } -> List.iter f adj.(u)

let neighbors t u =
  check_node t u;
  match t.kind with
  | Irregular { adj; _ } -> adj.(u)
  | _ ->
    let acc = ref [] in
    iter_neighbors t u (fun v -> acc := v :: !acc);
    List.rev !acc

let links t =
  match t.kind with
  | Irregular { link_arr; _ } -> Array.copy link_arr
  | Complete ->
    (* All pairs (a, b) with a < b, in the lexicographic order the old
       sort produced. *)
    let arr = Array.make (t.n * (t.n - 1) / 2) (0, 0) in
    let i = ref 0 in
    for a = 0 to t.n - 1 do
      for b = a + 1 to t.n - 1 do
        arr.(!i) <- (a, b);
        incr i
      done
    done;
    arr
  | Tree -> Array.init (t.n - 1) (fun i -> ((i + 1 - 1) / 2, i + 1))
  | Mesh side ->
    let acc = ref [] in
    for p = t.n - 1 downto 0 do
      if p + side < t.n then acc := (p, p + side) :: !acc;
      if (p mod side) + 1 < side && p + 1 < t.n then acc := (p, p + 1) :: !acc
    done;
    Array.of_list !acc

(* Eccentricity of [s] by closed-form distance scan (no BFS state). *)
let ecc_scan t s =
  let m = ref 0 and arg = ref s in
  for v = 0 to t.n - 1 do
    let d = hops t s v in
    if d > !m then begin
      m := d;
      arg := v
    end
  done;
  (!m, !arg)

let diameter t =
  match t.kind with
  | Complete -> if t.n = 1 then 0 else 1
  | Tree ->
    (* Double sweep, exact on trees: the farthest node from any start is
       an endpoint of a diameter. *)
    let _, u = ecc_scan t 0 in
    fst (ecc_scan t u)
  | Mesh side ->
    let rows = (t.n + side - 1) / side in
    if rows = 1 then t.n - 1 else side - 1 + (rows - 1)
  | Irregular ({ adj; _ } as ir) ->
    if ir.diam >= 0 then ir.diam
    else begin
      (* Scratch BFS per source (O(n) memory, reused): the lazy row cache
         is deliberately not populated here, so taking the diameter of a
         big irregular platform does not re-create the dense matrices. *)
      let dist = Array.make t.n max_int in
      let q = Queue.create () in
      let m = ref 0 in
      for s = 0 to t.n - 1 do
        Array.fill dist 0 t.n max_int;
        dist.(s) <- 0;
        Queue.add s q;
        while not (Queue.is_empty q) do
          let u = Queue.take q in
          if dist.(u) > !m then m := dist.(u);
          List.iter
            (fun v ->
              if dist.(v) = max_int then begin
                dist.(v) <- dist.(u) + 1;
                Queue.add v q
              end)
            adj.(u)
        done
      done;
      ir.diam <- !m;
      !m
    end

let path_directed t s d =
  let rec go u acc =
    if u = d then List.rev acc
    else
      let v = next_hop t u d in
      go v ((u, v) :: acc)
  in
  go s []

let path t s d = List.map norm (path_directed t s d)

(* Deterministic contiguous partition of the node ids into [parts] classes
   of near-equal size (the first [n mod parts] classes get the extra
   node). Contiguous ranges keep home-node pinning shard-local for bump
   allocators, which is why the PDES sharding uses exactly this rule. *)
let contiguous_partition t ~parts =
  if parts <= 0 then invalid_arg "Topology.contiguous_partition: parts must be positive";
  Array.init t.n (fun v -> min (parts - 1) (v * parts / t.n))

(* Per partition-class-pair minimum hop cost: [m.(a).(b)] is the smallest
   hop distance between any node of class [a] and any node of class [b]
   (0 on the diagonal). The smallest off-diagonal entry is the guaranteed
   lookahead of a conservative PDES sharded along [part]: no interaction
   between two different classes can take effect in fewer hops.

   Computed by one multi-source BFS per class — O(classes * (n + links))
   time and O(n) scratch, never the old all-pairs scan — except on the
   complete graph, where every cross-class distance is 1 by inspection. *)
let min_cross_latency t ~part =
  if Array.length part <> t.n then
    invalid_arg "Topology.min_cross_latency: partition size mismatch";
  let k = Array.fold_left (fun acc c -> max acc (c + 1)) 0 part in
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Topology.min_cross_latency: negative class")
    part;
  let m = Array.make_matrix k k max_int in
  for i = 0 to k - 1 do
    m.(i).(i) <- 0
  done;
  (match t.kind with
  | Complete ->
    let pop = Array.make k 0 in
    Array.iter (fun c -> pop.(c) <- pop.(c) + 1) part;
    for a = 0 to k - 1 do
      for b = 0 to k - 1 do
        if a <> b && pop.(a) > 0 && pop.(b) > 0 then m.(a).(b) <- 1
      done
    done
  | _ ->
    let dist = Array.make t.n max_int in
    let q = Queue.create () in
    for a = 0 to k - 1 do
      Array.fill dist 0 t.n max_int;
      for v = 0 to t.n - 1 do
        if part.(v) = a then begin
          dist.(v) <- 0;
          Queue.add v q
        end
      done;
      while not (Queue.is_empty q) do
        let u = Queue.take q in
        iter_neighbors t u (fun v ->
            if dist.(v) = max_int then begin
              dist.(v) <- dist.(u) + 1;
              Queue.add v q
            end)
      done;
      for v = 0 to t.n - 1 do
        let b = part.(v) in
        if b <> a && dist.(v) < m.(a).(b) then m.(a).(b) <- dist.(v)
      done
    done);
  m
