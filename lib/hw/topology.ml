type link = int * int

type t = {
  n : int;
  link_arr : link array;
  adj : int list array;
  dist : int array array;
  (* next.(s).(d) = first hop from s towards d (s itself when s = d). *)
  next : int array array;
}

let norm (a, b) = if a < b then (a, b) else (b, a)

let create ~n ~links =
  if n <= 0 then invalid_arg "Topology.create: n must be positive";
  let adj = Array.make n [] in
  let seen = Hashtbl.create 16 in
  let add (a, b) =
    if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Topology.create: bad endpoint";
    if a = b then invalid_arg "Topology.create: self-loop";
    let l = norm (a, b) in
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b)
    end
  in
  List.iter add links;
  (* Deterministic neighbor order. *)
  Array.iteri (fun i l -> adj.(i) <- List.sort_uniq compare l) adj;
  let dist = Array.make_matrix n n max_int in
  let next = Array.make_matrix n n (-1) in
  (* BFS from every source; neighbors visited in ascending order gives the
     lowest-id tie-break for routing. *)
  for s = 0 to n - 1 do
    dist.(s).(s) <- 0;
    next.(s).(s) <- s;
    let q = Queue.create () in
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.take q in
      List.iter
        (fun v ->
          if dist.(s).(v) = max_int then begin
            dist.(s).(v) <- dist.(s).(u) + 1;
            (* First hop: inherit u's first hop, except when u is the source. *)
            next.(s).(v) <- (if u = s then v else next.(s).(u));
            Queue.add v q
          end)
        adj.(u)
    done
  done;
  if n > 1 then
    for d = 0 to n - 1 do
      if dist.(0).(d) = max_int then invalid_arg "Topology.create: disconnected graph"
    done;
  let link_arr = Array.of_seq (Hashtbl.to_seq_keys seen) in
  Array.sort compare link_arr;
  { n; link_arr; adj; dist; next }

let fully_connected ~n =
  let links = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      links := (a, b) :: !links
    done
  done;
  create ~n ~links:!links

let n_nodes t = t.n
let links t = Array.copy t.link_arr
let hops t s d = t.dist.(s).(d)

let diameter t =
  let m = ref 0 in
  for s = 0 to t.n - 1 do
    for d = 0 to t.n - 1 do
      if t.dist.(s).(d) > !m then m := t.dist.(s).(d)
    done
  done;
  !m

let path_directed t s d =
  let rec go u acc = if u = d then List.rev acc else
      let v = t.next.(u).(d) in
      go v ((u, v) :: acc)
  in
  go s []

let path t s d = List.map norm (path_directed t s d)

let neighbors t u = t.adj.(u)

(* Deterministic contiguous partition of the node ids into [parts] classes
   of near-equal size (the first [n mod parts] classes get the extra
   node). Contiguous ranges keep home-node pinning shard-local for bump
   allocators, which is why the PDES sharding uses exactly this rule. *)
let contiguous_partition t ~parts =
  if parts <= 0 then invalid_arg "Topology.contiguous_partition: parts must be positive";
  Array.init t.n (fun v -> min (parts - 1) (v * parts / t.n))

(* Per partition-class-pair minimum hop cost: [m.(a).(b)] is the smallest
   hop distance between any node of class [a] and any node of class [b]
   (0 on the diagonal). The smallest off-diagonal entry is the guaranteed
   lookahead of a conservative PDES sharded along [part]: no interaction
   between two different classes can take effect in fewer hops. *)
let min_cross_latency t ~part =
  if Array.length part <> t.n then
    invalid_arg "Topology.min_cross_latency: partition size mismatch";
  let k = Array.fold_left (fun acc c -> max acc (c + 1)) 0 part in
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Topology.min_cross_latency: negative class")
    part;
  let m = Array.make_matrix k k max_int in
  for i = 0 to k - 1 do
    m.(i).(i) <- 0
  done;
  for u = 0 to t.n - 1 do
    for v = 0 to t.n - 1 do
      let a = part.(u) and b = part.(v) in
      if a <> b && t.dist.(u).(v) < m.(a).(b) then m.(a).(b) <- t.dist.(u).(v)
    done
  done;
  m
