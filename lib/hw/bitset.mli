(** Fixed-capacity mutable bitset over small integers (core ids).

    Int-array backed, 32 bits per word: O(1) add/remove/mem with no
    allocation, sized at creation for the machine's core count (≥128 cores
    is 4 words). Used by {!Coherence} for cache-line sharer sets, where the
    previous [int list] representation made hot-path lookups O(sharers)
    with a cons per insert. *)

type t

val create : n:int -> t
(** Empty set over [0, n). Raises [Invalid_argument] when [n <= 0]. *)

val capacity : t -> int

val add : t -> int -> unit
val remove : t -> int -> unit

val mem : t -> int -> bool
(** All three raise [Invalid_argument] outside [0, capacity). *)

val clear : t -> unit
val is_empty : t -> bool

val cardinal : t -> int
(** Population count (Kernighan loop per word). *)

val iter : (int -> unit) -> t -> unit
(** Members in ascending order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val to_list : t -> int list
(** Ascending. *)

val choose : t -> int
(** Smallest member. Raises [Not_found] when empty. *)

val copy : t -> t
val equal : t -> t -> bool
