open Mk_sim

(* Cross-shard delivery for a PDES-sharded run: an IPI to a core another
   shard owns leaves this shard as a timestamped message (see {!Pdes}) and
   re-enters the owning shard through [deliver]. *)
type remote_route = {
  ri_is_remote : int -> bool;  (* dst core -> owned by another shard? *)
  ri_route : src:int -> dst:int -> vector:int -> wire:int -> unit;
}

type t = {
  plat : Platform.t;
  cores : Resource.t array;
  handlers : (int * int, src:int -> unit) Hashtbl.t;  (* (core, vector) *)
  mutable sent : int;
  mutable inj : Mk_fault.Injector.t;
  mutable remote : remote_route option;
}

let apic_write_cost = 100

let create plat ~core_resources =
  if Array.length core_resources <> Platform.n_cores plat then
    invalid_arg "Ipi.create: resource array size mismatch";
  {
    plat;
    cores = core_resources;
    handlers = Hashtbl.create 16;
    sent = 0;
    inj = Mk_fault.Injector.none;
    remote = None;
  }

let set_fault t inj = t.inj <- inj

let set_remote t ~is_remote ~route =
  t.remote <- Some { ri_is_remote = is_remote; ri_route = route }

let register t ~core ~vector f = Hashtbl.replace t.handlers (core, vector) f

let wire_cost t ~src ~dst =
  let wire =
    t.plat.Platform.ipi_wire
    + (t.plat.Platform.hop_one_way * Platform.hops_between t.plat src dst)
  in
  if Mk_fault.Injector.armed t.inj then
    wire
    + Mk_fault.Injector.link_penalty t.inj
        ~src_pkg:(Platform.package_of t.plat src)
        ~dst_pkg:(Platform.package_of t.plat dst)
  else wire

(* Arrival half: trap the target core and run its handler. Effect-free up
   to the spawn, so the cross-shard path can call it from a delivered
   message thunk. *)
let deliver t ~eng ~src ~dst ~vector =
  let handler =
    match Hashtbl.find_opt t.handlers (dst, vector) with
    | Some f -> f
    | None ->
      invalid_arg (Printf.sprintf "Ipi.send: no handler for vector %d on core %d" vector dst)
  in
  Engine.spawn eng ~name:(Printf.sprintf "ipi%d->%d" src dst) (fun () ->
      if
        Mk_fault.Injector.armed t.inj
        && Mk_fault.Injector.core_dead t.inj ~core:dst
      then
        (* A stopped core takes no interrupts: the IPI vanishes at the
           target's (dead) APIC. *)
        (Mk_fault.Injector.stats t.inj).ipi_dropped <-
          (Mk_fault.Injector.stats t.inj).ipi_dropped + 1
      else begin
        (* The target stops what it is doing for trap entry + handler. *)
        let (_ : int) = Resource.acquire t.cores.(dst) t.plat.Platform.trap in
        handler ~src
      end)

let send t ~src ~dst ~vector =
  match t.remote with
  | Some rr when rr.ri_is_remote dst ->
    (* Cross-shard: the handler lives on the owning shard. Pay the APIC
       write at the true simulated time (the route callback timestamps the
       departure off the engine clock), then hand off the wire leg. *)
    t.sent <- t.sent + 1;
    Engine.charge apic_write_cost;
    Engine.flush_charge ();
    rr.ri_route ~src ~dst ~vector ~wire:(wire_cost t ~src ~dst)
  | _ ->
    let handler =
      match Hashtbl.find_opt t.handlers (dst, vector) with
      | Some f -> f
      | None ->
        invalid_arg
          (Printf.sprintf "Ipi.send: no handler for vector %d on core %d" vector dst)
    in
    t.sent <- t.sent + 1;
    Engine.charge apic_write_cost;
    let wire = wire_cost t ~src ~dst in
    Engine.spawn_ ~name:(Printf.sprintf "ipi%d->%d" src dst) (fun () ->
        Engine.charge wire;
        if
          Mk_fault.Injector.armed t.inj
          && Mk_fault.Injector.core_dead t.inj ~core:dst
        then
          (* A stopped core takes no interrupts: the IPI vanishes at the
             target's (dead) APIC. *)
          (Mk_fault.Injector.stats t.inj).ipi_dropped <-
            (Mk_fault.Injector.stats t.inj).ipi_dropped + 1
        else begin
          (* The target stops what it is doing for trap entry + handler. *)
          let (_ : int) = Resource.acquire t.cores.(dst) t.plat.Platform.trap in
          handler ~src
        end)

let sent t = t.sent
