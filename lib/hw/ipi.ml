open Mk_sim

type t = {
  plat : Platform.t;
  cores : Resource.t array;
  handlers : (int * int, src:int -> unit) Hashtbl.t;  (* (core, vector) *)
  mutable sent : int;
  mutable inj : Mk_fault.Injector.t;
}

let apic_write_cost = 100

let create plat ~core_resources =
  if Array.length core_resources <> Platform.n_cores plat then
    invalid_arg "Ipi.create: resource array size mismatch";
  {
    plat;
    cores = core_resources;
    handlers = Hashtbl.create 16;
    sent = 0;
    inj = Mk_fault.Injector.none;
  }

let set_fault t inj = t.inj <- inj

let register t ~core ~vector f = Hashtbl.replace t.handlers (core, vector) f

let send t ~src ~dst ~vector =
  let handler =
    match Hashtbl.find_opt t.handlers (dst, vector) with
    | Some f -> f
    | None ->
      invalid_arg (Printf.sprintf "Ipi.send: no handler for vector %d on core %d" vector dst)
  in
  t.sent <- t.sent + 1;
  Engine.charge apic_write_cost;
  let wire =
    t.plat.Platform.ipi_wire
    + (t.plat.Platform.hop_one_way * Platform.hops_between t.plat src dst)
  in
  let wire =
    if Mk_fault.Injector.armed t.inj then
      wire
      + Mk_fault.Injector.link_penalty t.inj
          ~src_pkg:(Platform.package_of t.plat src)
          ~dst_pkg:(Platform.package_of t.plat dst)
    else wire
  in
  Engine.spawn_ ~name:(Printf.sprintf "ipi%d->%d" src dst) (fun () ->
      Engine.charge wire;
      if
        Mk_fault.Injector.armed t.inj
        && Mk_fault.Injector.core_dead t.inj ~core:dst
      then
        (* A stopped core takes no interrupts: the IPI vanishes at the
           target's (dead) APIC. *)
        (Mk_fault.Injector.stats t.inj).ipi_dropped <-
          (Mk_fault.Injector.stats t.inj).ipi_dropped + 1
      else begin
        (* The target stops what it is doing for trap entry + handler. *)
        let (_ : int) = Resource.acquire t.cores.(dst) t.plat.Platform.trap in
        handler ~src
      end)

let sent t = t.sent
