open Mk_sim

type t = {
  eng : Engine.t;
  plat : Platform.t;
  counters : Perfcounter.t;
  coh : Coherence.t;
  tlbs : Tlb.t array;
  cores : Resource.t array;
  ipi : Ipi.t;
  fault : Mk_fault.Injector.t;
  mutable brk : int;
  mutable comm : Trace.Comm.t option;
      (* message-graph recorder for placement profiling; None = no cost *)
}

let create ?eng ?cache_lines_per_core ?(fault = Mk_fault.Injector.none) plat =
  let eng = match eng with Some e -> e | None -> Engine.create () in
  let n = Platform.n_cores plat in
  let counters = Perfcounter.create plat in
  let coh = Coherence.create ?cache_lines_per_core plat counters in
  let cores = Array.init n (fun i -> Resource.create ~name:(Printf.sprintf "core%d" i) ()) in
  let ipi = Ipi.create plat ~core_resources:cores in
  Coherence.set_fault coh fault;
  Ipi.set_fault ipi fault;
  {
    eng;
    plat;
    counters;
    coh;
    tlbs = Array.init n (fun i -> Tlb.create ~core:i);
    cores;
    ipi;
    fault;
    brk = 0x1000;
    comm = None;
  }

let n_cores t = Platform.n_cores t.plat

let alloc_bytes t ?node bytes =
  let cl = t.plat.Platform.cacheline in
  let bytes = max cl ((bytes + cl - 1) / cl * cl) in
  let base = t.brk in
  t.brk <- t.brk + bytes;
  (match node with
   | None -> ()
   | Some node ->
     Coherence.set_home_range t.coh ~first_line:(base / cl)
       ~last_line:((base + bytes - 1) / cl) ~node);
  base

let alloc_lines t ?node n = alloc_bytes t ?node (n * t.plat.Platform.cacheline)

let alloc_region t ~lines ~node_of =
  let cl = t.plat.Platform.cacheline in
  let base = t.brk in
  t.brk <- t.brk + (lines * cl);
  let first_line = base / cl in
  Coherence.set_home_region t.coh ~first_line ~last_line:(first_line + lines - 1)
    ~node_of:(fun line -> node_of (line - first_line));
  base

let compute t ~core n =
  if n > 0 then ignore (Resource.acquire t.cores.(core) n : int)

let spawn_on t ~core ?name f =
  let name = Option.value name ~default:(Printf.sprintf "core%d-task" core) in
  Engine.spawn t.eng ~name f

let run t = Engine.run t.eng ()
let run_until t limit = Engine.run t.eng ~until:limit ()
let now t = Engine.now t.eng
let ns_of_cycles t c = Platform.cycles_to_ns t.plat (float_of_int c)
