type src = Logs.src

let all : src list ref = ref []

let make name =
  let s = Logs.Src.create ("mk." ^ name) ~doc:("multikernel " ^ name ^ " tracing") in
  Logs.Src.set_level s None;
  all := s :: !all;
  s

let set_level = Logs.Src.set_level

let enable () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level ~all:true (Some Logs.Debug);
  List.iter (fun s -> Logs.Src.set_level s (Some Logs.Debug)) !all

(* Levels are declared App < Error < Warning < Info < Debug, so a message
   is reported iff its level compares <= the source's current level. *)
let enabled src level =
  match Logs.Src.level src with None -> false | Some cur -> compare level cur <= 0

(* Tracing sits on simulator hot paths (per message send, per TLB fill),
   so the disabled case must not pay for formatting: only when the source
   level admits the message do we render it. [Format.ikfprintf] consumes
   the format arguments without evaluating any %a/%t closures or building
   a string, so a disabled [debugf] costs a level check and nothing else. *)
let logf level src fmt =
  if enabled src level then
    Format.kasprintf
      (fun s ->
        let module L = (val Logs.src_log src : Logs.LOG) in
        L.msg level (fun m -> m "%s" s))
      fmt
  else Format.ikfprintf ignore Format.str_formatter fmt

let debugf src fmt = logf Logs.Debug src fmt
let infof src fmt = logf Logs.Info src fmt

(* Communication-graph recorder: counts messages per (src, dst) core pair.
   A recorder is attached to a machine only while a profiling run wants it,
   so the common case costs one [None] check per send. *)
module Comm = struct
  type t = { counts : (int * int, int ref) Hashtbl.t }

  let create () = { counts = Hashtbl.create 64 }

  let record t ~src ~dst =
    match Hashtbl.find_opt t.counts (src, dst) with
    | Some r -> incr r
    | None -> Hashtbl.add t.counts (src, dst) (ref 1)

  let snapshot t =
    Hashtbl.fold (fun (src, dst) r acc -> (src, dst, !r) :: acc) t.counts []
    |> List.sort compare

  let clear t = Hashtbl.reset t.counts
end
