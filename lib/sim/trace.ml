type src = Logs.src

let all : src list ref = ref []

let make name =
  let s = Logs.Src.create ("mk." ^ name) ~doc:("multikernel " ^ name ^ " tracing") in
  Logs.Src.set_level s None;
  all := s :: !all;
  s

let set_level = Logs.Src.set_level

let enable () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level ~all:true (Some Logs.Debug);
  List.iter (fun s -> Logs.Src.set_level s (Some Logs.Debug)) !all

(* Levels are declared App < Error < Warning < Info < Debug, so a message
   is reported iff its level compares <= the source's current level. *)
let enabled src level =
  match Logs.Src.level src with None -> false | Some cur -> compare level cur <= 0

(* Tracing sits on simulator hot paths (per message send, per TLB fill),
   so the disabled case must not pay for formatting: only when the source
   level admits the message do we render it. [Format.ikfprintf] consumes
   the format arguments without evaluating any %a/%t closures or building
   a string, so a disabled [debugf] costs a level check and nothing else. *)
let logf level src fmt =
  if enabled src level then
    Format.kasprintf
      (fun s ->
        let module L = (val Logs.src_log src : Logs.LOG) in
        L.msg level (fun m -> m "%s" s))
      fmt
  else Format.ikfprintf ignore Format.str_formatter fmt

let debugf src fmt = logf Logs.Debug src fmt
let infof src fmt = logf Logs.Info src fmt
