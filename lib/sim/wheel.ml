(* Timing wheel for near-future events, ordered by (time, seq).

   The engine's event population is dominated by short delays — cache-hit
   waits, software path costs, line-transfer latencies — all far below a
   few thousand cycles. A binary heap pays O(log n) sifting for every one
   of them. The wheel instead keeps an array of [window] slots, one per
   future tick: scheduling is "append to slot (time mod window)". Delays
   of [window] or more overflow into the engine's heap (see
   Engine.schedule), so the wheel itself never wraps: two different
   pending times cannot share a slot.

   Ordering within a slot is free: the engine's [seq] is globally
   monotonic, and a slot is always fully filled before it is drained
   (same-time events go to the engine's FIFO, not the wheel), so append
   order is seq order.

   The minimum is tracked, not searched for: [front]/[front_time] always
   name the slot holding the earliest pending time, so [min_time] and
   [min_seq] are plain field reads. A push only has to compare against
   [front_time]; a pop that drains the front slot finds the next occupied
   slot through a two-level occupancy bitmap (32 slots per word, one
   summary word per 32 words), i.e. a couple of word scans and
   count-trailing-zeros instead of probing empty slots one by one. The
   naive probe costs O(gap to next event) per pop — proportional to
   simulated-time density, and measurably slower than the heap it
   replaces on sparse schedules; the bitmap makes the cost independent of
   how far apart events are in simulated time.

   The slot arrays are a couple hundred KB; an engine that never routes an
   event here (see the population threshold in Engine.schedule) must not
   pay for allocating and faulting them in, so [create] is free and the
   arrays are built on first push. *)

let bits = 12
let window = 1 lsl bits
let mask = window - 1

(* Occupancy bitmap geometry: 32 slots per level-0 word, 32 level-0 words
   per level-1 bit. With [bits] = 12: 128 level-0 words, 4 level-1 words. *)
let word_bits = 5
let word_mask = 31
let all_ones = 0xFFFFFFFF
let words = window lsr word_bits
let l1_words = words lsr word_bits

(* Count trailing zeros of a non-zero 32-bit value (de Bruijn multiply). *)
let debruijn = 0x077CB531

let ctz_tab =
  let t = Array.make 32 0 in
  for i = 0 to 31 do
    t.((((1 lsl i) * debruijn) land all_ones) lsr 27) <- i
  done;
  t

let ctz x = Array.unsafe_get ctz_tab ((((x land -x) * debruijn) land all_ones) lsr 27)

type 'a t = {
  dummy : 'a;  (* written over popped payload slots to release them to the GC *)
  mutable slot_seq : int array array;
  mutable slot_pay : 'a array array;
  mutable slot_time : int array;  (* absolute due time of the entries in the slot *)
  mutable slot_len : int array;
  mutable slot_head : int array;  (* index of the first not-yet-popped entry *)
  mutable occ : int array;  (* bit (s land 31) of word (s lsr 5): slot s non-empty *)
  mutable occ_l1 : int array;  (* bit (w land 31) of word (w lsr 5): occ.(w) <> 0 *)
  mutable count : int;
  mutable front : int;  (* slot of the earliest time; valid while count > 0 *)
  mutable front_time : int;  (* the earliest time itself; valid while count > 0 *)
}

let create ~dummy =
  {
    dummy;
    slot_seq = [||];
    slot_pay = [||];
    slot_time = [||];
    slot_len = [||];
    slot_head = [||];
    occ = [||];
    occ_l1 = [||];
    count = 0;
    front = 0;
    front_time = 0;
  }

let init t =
  t.slot_seq <- Array.make window [||];
  t.slot_pay <- Array.make window [||];
  t.slot_time <- Array.make window 0;
  t.slot_len <- Array.make window 0;
  t.slot_head <- Array.make window 0;
  t.occ <- Array.make words 0;
  t.occ_l1 <- Array.make l1_words 0

let length t = t.count
let is_empty t = t.count = 0

let push t ~now ~time ~seq payload =
  ignore now;
  if Array.length t.slot_time = 0 then init t;
  let s = time land mask in
  let len = Array.unsafe_get t.slot_len s in
  if len > Array.unsafe_get t.slot_head s && Array.unsafe_get t.slot_time s <> time
  then
    (* Slot already holds a different (necessarily earlier) time. Under the
       engine's routing invariants (now <= time < now + window, past slots
       drained in time order) this cannot happen; refuse defensively and
       let the caller fall back to the heap. *)
    false
  else begin
    let cap = Array.length (Array.unsafe_get t.slot_seq s) in
    if len = cap then begin
      let ncap = if cap = 0 then 4 else cap * 2 in
      let nseq = Array.make ncap 0 in
      let npay = Array.make ncap t.dummy in
      Array.blit t.slot_seq.(s) 0 nseq 0 len;
      Array.blit t.slot_pay.(s) 0 npay 0 len;
      t.slot_seq.(s) <- nseq;
      t.slot_pay.(s) <- npay
    end;
    Array.unsafe_set (Array.unsafe_get t.slot_seq s) len seq;
    Array.unsafe_set (Array.unsafe_get t.slot_pay s) len payload;
    Array.unsafe_set t.slot_len s (len + 1);
    if len = 0 then begin
      (* Slot goes empty -> occupied: record its time and set its bit. *)
      Array.unsafe_set t.slot_time s time;
      let w = s lsr word_bits in
      Array.unsafe_set t.occ w (Array.unsafe_get t.occ w lor (1 lsl (s land word_mask)));
      let lw = w lsr word_bits in
      Array.unsafe_set t.occ_l1 lw
        (Array.unsafe_get t.occ_l1 lw lor (1 lsl (w land word_mask)))
    end;
    if t.count = 0 || time < t.front_time then begin
      t.front <- s;
      t.front_time <- time
    end;
    t.count <- t.count + 1;
    true
  end

(* Next occupied slot cyclically after [t.front]; requires count > 0.
   All pending times lie in (front_time, front_time + window), so the first
   occupied slot found walking forward (with wrap) holds the new minimum. *)
let advance_front t =
  let s = (t.front + 1) land mask in
  let w = s lsr word_bits in
  let x = Array.unsafe_get t.occ w land (all_ones lsl (s land word_mask)) in
  let ns =
    if x <> 0 then (w lsl word_bits) lor ctz x
    else begin
      (* No slot left in this word: scan level 1 for the next word with a
         bit set, wrapping; terminates because count > 0 guarantees some
         occupied slot exists (possibly back in word [w] below bit s). *)
      let rec find i m =
        let li = i land (l1_words - 1) in
        let y = Array.unsafe_get t.occ_l1 li land m in
        if y <> 0 then begin
          let w' = (li lsl word_bits) lor ctz y in
          (w' lsl word_bits) lor ctz (Array.unsafe_get t.occ w')
        end
        else find (i + 1) all_ones
      in
      find (w lsr word_bits) (all_ones lsl ((w land word_mask) + 1))
    end
  in
  t.front <- ns;
  t.front_time <- Array.unsafe_get t.slot_time ns

let min_time t = t.front_time

let min_seq t =
  Array.unsafe_get (Array.unsafe_get t.slot_seq t.front) (Array.unsafe_get t.slot_head t.front)

let pop_exn t =
  if t.count = 0 then invalid_arg "Wheel.pop_exn: empty";
  let s = t.front in
  let h = Array.unsafe_get t.slot_head s in
  let pay = Array.unsafe_get (Array.unsafe_get t.slot_pay s) h in
  Array.unsafe_set (Array.unsafe_get t.slot_pay s) h t.dummy;
  t.count <- t.count - 1;
  if h + 1 = Array.unsafe_get t.slot_len s then begin
    (* Slot drained: reset it, clear its occupancy bit, move the front. *)
    Array.unsafe_set t.slot_head s 0;
    Array.unsafe_set t.slot_len s 0;
    let w = s lsr word_bits in
    let ow = Array.unsafe_get t.occ w land lnot (1 lsl (s land word_mask)) in
    Array.unsafe_set t.occ w ow;
    if ow = 0 then begin
      let lw = w lsr word_bits in
      Array.unsafe_set t.occ_l1 lw
        (Array.unsafe_get t.occ_l1 lw land lnot (1 lsl (w land word_mask)))
    end;
    if t.count > 0 then advance_front t
  end
  else Array.unsafe_set t.slot_head s (h + 1);
  pay
