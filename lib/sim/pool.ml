(* Shared-nothing domain pool with deterministic ordered merge.

   Jobs are closures over independent simulation worlds; nothing is shared
   between them but the work queue itself. A batch is an array of wrapped
   jobs plus an atomic claim index: domains race on [fetch_and_add] for the
   next unstarted job, so scheduling is dynamic, but every observable
   output — results, printed text, counter totals — is merged back in
   submission order, which makes a [-j N] run byte-identical to [-j 1].

   Nesting (a pool job submitting its own batch) cannot deadlock: the
   submitter claims only jobs of its *own* batch while it waits. Either it
   runs them itself, or another domain already claimed them — and that
   domain, even if it blocks submitting a sub-batch, can in turn run its
   own sub-jobs. Some domain always holds a leaf job, so progress is
   guaranteed without ever oversubscribing beyond the pool size. *)

(* -- output capture -- *)

let out_key : Buffer.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let emit s =
  match Domain.DLS.get out_key with
  | None ->
    print_string s;
    flush stdout
  | Some buf -> Buffer.add_string buf s

(* Save/restore rather than reset-to-None: a pool job that is itself a
   redirected bench must fall back to the job's capture buffer, not to
   stdout, when its inner redirection ends. *)
let redirect_to buf f =
  let saved = Domain.DLS.get out_key in
  Domain.DLS.set out_key (Some buf);
  Fun.protect ~finally:(fun () -> Domain.DLS.set out_key saved) f

(* -- per-domain totals (own counters + absorbed foreign jobs) -- *)

type foreign = {
  mutable f_executed : int;
  mutable f_fused : int;
  mutable f_minor : float;
  mutable f_promoted : float;
  mutable f_major : int;
  mutable f_barriers : int;  (* PDES window barriers (Pdes reports here) *)
  mutable f_shards : int;  (* high-water PDES shard count (max, not sum) *)
  mutable f_wire_batches : int;  (* coalesced wire handoffs (Machine_link) *)
  mutable f_wire_msgs : int;  (* frames inside those handoffs *)
}

let foreign_key : foreign Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        f_executed = 0;
        f_fused = 0;
        f_minor = 0.0;
        f_promoted = 0.0;
        f_major = 0;
        f_barriers = 0;
        f_shards = 0;
        f_wire_batches = 0;
        f_wire_msgs = 0;
      })

(* Fold counters produced on other domains into this domain's totals. The
   pool's own merge uses it for jobs that ran elsewhere; Pdes uses it for
   the worker-domain halves of a sharded window run, so an enclosing
   measurement reads the same totals wherever the shards executed. *)
let absorb ?(executed = 0) ?(fused = 0) ?(minor = 0.0) ?(promoted = 0.0) ?(major = 0) () =
  let fo = Domain.DLS.get foreign_key in
  fo.f_executed <- fo.f_executed + executed;
  fo.f_fused <- fo.f_fused + fused;
  fo.f_minor <- fo.f_minor +. minor;
  fo.f_promoted <- fo.f_promoted +. promoted;
  fo.f_major <- fo.f_major + major

(* Window barriers executed by PDES runs on (or absorbed into) this
   domain: lives here rather than in Pdes so the per-job counter capture
   below needs no dependency on it. *)
let note_barriers n = (Domain.DLS.get foreign_key).f_barriers <- (Domain.DLS.get foreign_key).f_barriers + n
let total_barriers () = (Domain.DLS.get foreign_key).f_barriers

(* PDES shard count is a high-water mark, not a sum: two sharded runs on 4
   shards still ran "over 4 shards". Pdes reports its structure here. *)
let note_shards n =
  let fo = Domain.DLS.get foreign_key in
  fo.f_shards <- max fo.f_shards n

let total_shards () = (Domain.DLS.get foreign_key).f_shards

(* Wire-link coalescing counters (Machine_link reports at its flush
   points, which run on the Pdes exec-calling domain): [batches] counts
   window-sized handoff groups, [msgs] the frames inside them. Counted
   identically whether batching is on or off — the counters describe the
   coalescable traffic, not the transport — so referee runs stay
   byte-identical. *)
let note_wire ~batches ~msgs =
  let fo = Domain.DLS.get foreign_key in
  fo.f_wire_batches <- fo.f_wire_batches + batches;
  fo.f_wire_msgs <- fo.f_wire_msgs + msgs

let total_wire_batches () = (Domain.DLS.get foreign_key).f_wire_batches
let total_wire_msgs () = (Domain.DLS.get foreign_key).f_wire_msgs

(* Scope the shard high-water mark: run [f] with the counter zeroed,
   return what it reached during [f] (including what nested pool runs
   absorbed from other domains), and fold it back into the enclosing
   scope's maximum. The bench harness uses this for per-bench [shards]. *)
let with_shards f =
  let fo = Domain.DLS.get foreign_key in
  let saved = fo.f_shards in
  fo.f_shards <- 0;
  Fun.protect
    ~finally:(fun () -> fo.f_shards <- max saved fo.f_shards)
    (fun () ->
      let v = f () in
      (v, (Domain.DLS.get foreign_key).f_shards))

let total_executed () =
  Engine.domain_events_executed () + (Domain.DLS.get foreign_key).f_executed

let total_fused () = Engine.domain_events_fused () + (Domain.DLS.get foreign_key).f_fused

let total_minor_words () =
  (Gc.quick_stat ()).Gc.minor_words +. (Domain.DLS.get foreign_key).f_minor

let total_promoted_words () =
  (Gc.quick_stat ()).Gc.promoted_words +. (Domain.DLS.get foreign_key).f_promoted

let total_major_collections () =
  (Gc.quick_stat ()).Gc.major_collections + (Domain.DLS.get foreign_key).f_major

(* -- the pool -- *)

type batch = {
  jobs : (unit -> unit) array;  (* wrapped: capture output/result/counters *)
  next : int Atomic.t;  (* claim index *)
  mutable completed : int;  (* guarded by the pool mutex *)
}

type t = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable batches : batch list;  (* open batches, oldest first *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
  n_domains : int;
}

let size t = t.n_domains

let job_done t b =
  Mutex.lock t.lock;
  b.completed <- b.completed + 1;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

(* Claim the next unstarted job of any open batch. Called with the lock
   held; the atomic index keeps the claim itself lock-free for helpers. *)
let rec try_claim = function
  | [] -> None
  | b :: rest ->
    let n = Array.length b.jobs in
    if Atomic.get b.next >= n then try_claim rest
    else begin
      let i = Atomic.fetch_and_add b.next 1 in
      if i < n then Some (b, i) else try_claim rest
    end

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    let rec next_job () =
      match try_claim t.batches with
      | Some _ as claim ->
        Mutex.unlock t.lock;
        claim
      | None ->
        if t.shutting_down then begin
          Mutex.unlock t.lock;
          None
        end
        else begin
          Condition.wait t.cond t.lock;
          next_job ()
        end
    in
    match next_job () with
    | None -> ()
    | Some (b, i) ->
      b.jobs.(i) ();
      job_done t b;
      loop ()
  in
  loop ()

let create ~jobs =
  let n = max 1 (min jobs (Domain.recommended_domain_count ())) in
  let t =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      batches = [];
      shutting_down = false;
      workers = [];
      n_domains = n;
    }
  in
  t.workers <- List.init (n - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.shutting_down <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers

let ambient_pool : t option ref = ref None
let set_ambient p = ambient_pool := p
let ambient () = !ambient_pool

(* Submit a batch and block until it completes, claiming this batch's own
   unstarted jobs while waiting. *)
let run_batch t jobs =
  let b = { jobs; next = Atomic.make 0; completed = 0 } in
  let n = Array.length jobs in
  Mutex.lock t.lock;
  t.batches <- t.batches @ [ b ];
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  let rec help () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < n then begin
      jobs.(i) ();
      job_done t b;
      help ()
    end
  in
  help ();
  Mutex.lock t.lock;
  while b.completed < n do
    Condition.wait t.cond t.lock
  done;
  t.batches <- List.filter (fun x -> x != b) t.batches;
  Mutex.unlock t.lock

(* -- ordered run -- *)

type 'a cell = {
  buf : Buffer.t;
  mutable dom : int;  (* domain that executed the job *)
  mutable outcome : ('a, exn * Printexc.raw_backtrace) result option;
  mutable d_executed : int;
  mutable d_fused : int;
  mutable d_minor : float;
  mutable d_promoted : float;
  mutable d_major : int;
  mutable d_barriers : int;
  mutable d_shards : int;
  mutable d_wire_batches : int;
  mutable d_wire_msgs : int;
}

(* Execute one job on whatever domain claimed it: capture its output and
   the per-domain counter deltas it produced there. The totals include the
   domain's foreign cell, so a job that itself sharded work to *other*
   domains still reports everything it caused. *)
let exec_cell cell f () =
  cell.dom <- (Domain.self () :> int);
  let ev0 = total_executed () and fu0 = total_fused () in
  let mi0 = total_minor_words () and pr0 = total_promoted_words () in
  let ma0 = total_major_collections () and ba0 = total_barriers () in
  let wb0 = total_wire_batches () and wm0 = total_wire_msgs () in
  let fo = Domain.DLS.get foreign_key in
  let sh0 = fo.f_shards in
  fo.f_shards <- 0;
  (match redirect_to cell.buf f with
  | v -> cell.outcome <- Some (Ok v)
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    cell.outcome <- Some (Error (e, bt)));
  cell.d_shards <- fo.f_shards;
  fo.f_shards <- max sh0 fo.f_shards;
  cell.d_executed <- total_executed () - ev0;
  cell.d_fused <- total_fused () - fu0;
  cell.d_minor <- total_minor_words () -. mi0;
  cell.d_promoted <- total_promoted_words () -. pr0;
  cell.d_major <- total_major_collections () - ma0;
  cell.d_barriers <- total_barriers () - ba0;
  cell.d_wire_batches <- total_wire_batches () - wb0;
  cell.d_wire_msgs <- total_wire_msgs () - wm0

let run ?pool fs =
  match fs with
  | [] -> []
  | fs ->
    let cells =
      List.map
        (fun _ ->
          {
            buf = Buffer.create 256;
            dom = -1;
            outcome = None;
            d_executed = 0;
            d_fused = 0;
            d_minor = 0.0;
            d_promoted = 0.0;
            d_major = 0;
            d_barriers = 0;
            d_shards = 0;
            d_wire_batches = 0;
            d_wire_msgs = 0;
          })
        fs
      |> Array.of_list
    in
    let jobs = Array.of_list fs in
    let wrapped = Array.mapi (fun i f -> exec_cell cells.(i) f) jobs in
    (match match pool with Some _ as p -> p | None -> !ambient_pool with
    | None -> Array.iter (fun j -> j ()) wrapped
    | Some p -> run_batch p wrapped);
    (* Ordered merge: replay captured output in submission order, absorb
       counters of jobs that ran on other domains (same-domain jobs are
       already in this domain's own counters), then surface the first
       failure — after the replay, so a failing sweep still shows every
       completed job's output, in order. *)
    let self = (Domain.self () :> int) in
    let fo = Domain.DLS.get foreign_key in
    Array.iter
      (fun c ->
        emit (Buffer.contents c.buf);
        if c.dom <> self then begin
          fo.f_executed <- fo.f_executed + c.d_executed;
          fo.f_fused <- fo.f_fused + c.d_fused;
          fo.f_minor <- fo.f_minor +. c.d_minor;
          fo.f_promoted <- fo.f_promoted +. c.d_promoted;
          fo.f_major <- fo.f_major + c.d_major;
          fo.f_barriers <- fo.f_barriers + c.d_barriers;
          fo.f_shards <- max fo.f_shards c.d_shards;
          fo.f_wire_batches <- fo.f_wire_batches + c.d_wire_batches;
          fo.f_wire_msgs <- fo.f_wire_msgs + c.d_wire_msgs
        end)
      cells;
    Array.iter
      (fun c ->
        match c.outcome with
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      cells;
    Array.to_list cells
    |> List.map (fun c ->
           match c.outcome with
           | Some (Ok v) -> v
           | _ -> assert false)
