(* Blocking primitives built on Engine.suspend. Wakers are one-shot, so a
   woken task never races with a second wake-up. All queues are FIFO, which
   keeps the whole simulation deterministic.

   Every mutating operation is an *interaction point* for latency-charge
   fusion: it flushes the caller's banked charge first, so queue contents,
   counts and wake-ups are observed/mutated at the caller's true simulated
   time. Pure queries (length, peek, ...) don't flush. *)

let wake (w : Engine.waker) = w ()

module Ivar = struct
  type 'a state = Empty of Engine.waker Queue.t | Full of 'a
  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty (Queue.create ()) }

  let fill t v =
    Engine.flush_charge ();
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
      t.state <- Full v;
      Queue.iter wake waiters

  let try_fill t v =
    Engine.flush_charge ();
    match t.state with
    | Full _ -> false
    | Empty waiters ->
      t.state <- Full v;
      Queue.iter wake waiters;
      true

  let is_filled t = match t.state with Full _ -> true | Empty _ -> false
  let peek t = match t.state with Full v -> Some v | Empty _ -> None

  let read t =
    Engine.flush_charge ();
    match t.state with
    | Full v -> v
    | Empty waiters ->
      Engine.suspend (fun w -> Queue.add w waiters);
      (match t.state with
       | Full v -> v
       | Empty _ -> assert false)
end

module Mailbox = struct
  (* Waiters are boxed so a timed-out waiter can be marked stale in place:
     [send] skips stale entries, and the timeout watchdog's wake never
     races a real wake because wakers are one-shot. *)
  type entry = { mutable stale : bool; mutable waker : Engine.waker }

  let noop_waker : Engine.waker = fun ?delay:_ () -> ()
  type 'a t = { items : 'a Queue.t; waiters : entry Queue.t }

  let create () = { items = Queue.create (); waiters = Queue.create () }

  let rec wake_one q =
    if not (Queue.is_empty q) then begin
      let e = Queue.take q in
      if e.stale then wake_one q
      else begin
        e.stale <- true;
        wake e.waker
      end
    end

  let send t v =
    Engine.flush_charge ();
    Queue.add v t.items;
    wake_one t.waiters

  (* [is_empty]/[take] rather than [take_opt]: the mailbox hand-off is on
     the URPC per-message path, and [take_opt] boxes every received value
     in an option. *)
  let rec recv t =
    Engine.flush_charge ();
    if Queue.is_empty t.items then begin
      Engine.suspend (fun w -> Queue.add { stale = false; waker = w } t.waiters);
      recv t
    end
    else Queue.take t.items

  (* Timed receive. A watchdog task marks the entry stale at the deadline
     and fires its waker; whichever of send/watchdog runs first wins the
     one-shot waker, and the loser's wake is a no-op. A message arriving in
     the same cycle as the timeout is still returned (the post-suspend
     [take_opt] re-checks the queue). *)
  let recv_timeout t ~timeout =
    Engine.flush_charge ();
    match Queue.take_opt t.items with
    | Some v -> Some v
    | None ->
      let deadline = Engine.now_ () + max 0 timeout in
      let rec wait_for () =
        let left = deadline - Engine.now_ () in
        if left <= 0 then Queue.take_opt t.items
        else begin
          (* Spawn the watchdog in task context (effects are unavailable
             inside the suspend callback); the entry only becomes visible
             to [send] once suspend registers it, and the watchdog cannot
             fire before then because [left] > 0. *)
          let entry = { stale = false; waker = noop_waker } in
          Engine.spawn_ ~name:"mbox.timeout" (fun () ->
              Engine.wait left;
              if not entry.stale then begin
                entry.stale <- true;
                wake entry.waker
              end);
          Engine.suspend (fun w ->
              entry.waker <- w;
              Queue.add entry t.waiters);
          match Queue.take_opt t.items with
          | Some v -> Some v
          | None -> wait_for ()
        end
      in
      wait_for ()

  let try_recv t =
    Engine.flush_charge ();
    Queue.take_opt t.items
  let length t = Queue.length t.items
end

module Semaphore = struct
  type t = { mutable count : int; waiters : Engine.waker Queue.t }

  let create n =
    if n < 0 then invalid_arg "Semaphore.create";
    { count = n; waiters = Queue.create () }

  let rec acquire t =
    Engine.flush_charge ();
    if t.count > 0 then t.count <- t.count - 1
    else begin
      Engine.suspend (fun w -> Queue.add w t.waiters);
      acquire t
    end

  let release t =
    Engine.flush_charge ();
    t.count <- t.count + 1;
    if not (Queue.is_empty t.waiters) then wake (Queue.take t.waiters)

  let available t = t.count
end

module Mutex = struct
  type t = Semaphore.t

  let create () = Semaphore.create 1
  let lock = Semaphore.acquire
  let unlock t =
    if Semaphore.available t > 0 then invalid_arg "Mutex.unlock: not locked";
    Semaphore.release t

  let with_lock t f =
    lock t;
    match f () with
    | v -> unlock t; v
    | exception e -> unlock t; raise e
end

module Condition = struct
  type t = { waiters : Engine.waker Queue.t }

  let create () = { waiters = Queue.create () }

  let wait t mutex =
    (* Atomic in simulation terms: no other task runs between unlock and
       suspend because tasks only switch at scheduling points. *)
    Engine.flush_charge ();
    Mutex.unlock mutex;
    Engine.suspend (fun w -> Queue.add w t.waiters);
    Mutex.lock mutex

  let signal t =
    Engine.flush_charge ();
    if not (Queue.is_empty t.waiters) then wake (Queue.take t.waiters)

  let broadcast t =
    Engine.flush_charge ();
    let ws = Queue.create () in
    Queue.transfer t.waiters ws;
    Queue.iter wake ws
end

module Barrier = struct
  type t = { parties : int; mutable arrived : int; mutable waiters : Engine.waker list }

  let create parties =
    if parties <= 0 then invalid_arg "Barrier.create";
    { parties; arrived = 0; waiters = [] }

  let await t =
    Engine.flush_charge ();
    t.arrived <- t.arrived + 1;
    if t.arrived = t.parties then begin
      let ws = List.rev t.waiters in
      t.arrived <- 0;
      t.waiters <- [];
      List.iter wake ws
    end
    else Engine.suspend (fun w -> t.waiters <- w :: t.waiters)
end
