(* Binary min-heap of simulation events, ordered by (time, seq).
   The sequence number makes the ordering total and the whole engine
   deterministic: events scheduled earlier (in program order) at the same
   simulated time run first.

   Struct-of-arrays layout: instead of one record per entry (a heap
   allocation on every push, and pointer-chasing on every comparison), the
   heap keeps three parallel arrays [times]/[seqs]/[payloads]. Push and pop
   then touch only flat int arrays plus one payload slot — zero allocation
   on the hot path, which matters because the engine pushes one entry per
   scheduled event. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable size : int;
}

(* Kept for compatibility with [peek]/[pop] consumers (tests); the engine
   itself uses the zero-allocation primitives below. *)
type 'a entry = { time : int; seq : int; payload : 'a }

(* With [~dummy] the backing arrays are pre-sized at creation (and the
   payload array has a fill value), so the first push of a run never pays
   the seed allocation; without it they are seeded lazily by [push]. *)
let create ?dummy () =
  match dummy with
  | None -> { times = [||]; seqs = [||]; payloads = [||]; size = 0 }
  | Some d ->
    { times = Array.make 64 0; seqs = Array.make 64 0; payloads = Array.make 64 d; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* Only called with non-empty backing arrays (push seeds the first ones). *)
let grow h =
  let cap = Array.length h.times in
  assert (cap > 0);
  let ntimes = Array.make (cap * 2) 0 in
  let nseqs = Array.make (cap * 2) 0 in
  let npayloads = Array.make (cap * 2) h.payloads.(0) in
  Array.blit h.times 0 ntimes 0 h.size;
  Array.blit h.seqs 0 nseqs 0 h.size;
  Array.blit h.payloads 0 npayloads 0 h.size;
  h.times <- ntimes;
  h.seqs <- nseqs;
  h.payloads <- npayloads

let push h ~time ~seq payload =
  if h.size = Array.length h.times then begin
    if h.size = 0 then begin
      h.times <- Array.make 64 0;
      h.seqs <- Array.make 64 0;
      h.payloads <- Array.make 64 payload
    end
    else grow h
  end;
  (* Sift up, moving parent slots down; the new entry is written once at
     its final position. *)
  let i = ref h.size in
  h.size <- h.size + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = h.times.(parent) in
    if time < pt || (time = pt && seq < h.seqs.(parent)) then begin
      h.times.(!i) <- pt;
      h.seqs.(!i) <- h.seqs.(parent);
      h.payloads.(!i) <- h.payloads.(parent);
      i := parent
    end
    else continue_ := false
  done;
  h.times.(!i) <- time;
  h.seqs.(!i) <- seq;
  h.payloads.(!i) <- payload

let min_time h = h.times.(0)
let min_seq h = h.seqs.(0)

let pop_exn h =
  if h.size = 0 then invalid_arg "Heap.pop_exn: empty";
  let top = h.payloads.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    (* Re-insert the last entry at the root, sifting the hole down. *)
    let time = h.times.(h.size) in
    let seq = h.seqs.(h.size) in
    let payload = h.payloads.(h.size) in
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref (-1) in
      let st = ref time and ss = ref seq in
      if l < h.size && (h.times.(l) < !st || (h.times.(l) = !st && h.seqs.(l) < !ss))
      then begin
        smallest := l;
        st := h.times.(l);
        ss := h.seqs.(l)
      end;
      if r < h.size && (h.times.(r) < !st || (h.times.(r) = !st && h.seqs.(r) < !ss))
      then smallest := r;
      if !smallest >= 0 then begin
        let s = !smallest in
        h.times.(!i) <- h.times.(s);
        h.seqs.(!i) <- h.seqs.(s);
        h.payloads.(!i) <- h.payloads.(s);
        i := s
      end
      else continue_ := false
    done;
    h.times.(!i) <- time;
    h.seqs.(!i) <- seq;
    h.payloads.(!i) <- payload
  end;
  top

let peek h =
  if h.size = 0 then None
  else Some { time = h.times.(0); seq = h.seqs.(0); payload = h.payloads.(0) }

let pop h =
  if h.size = 0 then None
  else begin
    let time = h.times.(0) and seq = h.seqs.(0) in
    let payload = pop_exn h in
    Some { time; seq; payload }
  end
