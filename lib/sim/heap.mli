(** Binary min-heap of simulation events, ordered by [(time, seq)].

    The sequence number totalizes the order, which is what makes the engine
    deterministic: of two events at the same simulated time, the one
    scheduled first (lower [seq]) pops first.

    The implementation is a struct-of-arrays binary heap (parallel
    [time]/[seq]/[payload] arrays): {!push} and {!pop_exn} allocate nothing,
    which matters because the engine pushes one entry per scheduled event.
    {!peek} and {!pop} are allocating conveniences for tests and
    diagnostics. *)

type 'a t

type 'a entry = { time : int; seq : int; payload : 'a }

val create : ?dummy:'a -> unit -> 'a t
(** [?dummy] pre-sizes the backing arrays at creation (it fills unused
    payload slots and is never returned); omitted, the arrays are seeded
    lazily by the first {!push}. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int -> seq:int -> 'a -> unit
(** Zero-allocation insert (amortized: the backing arrays double). *)

val min_time : 'a t -> int
(** Time of the minimum entry. Undefined when empty (reads slot 0). *)

val min_seq : 'a t -> int
(** Sequence number of the minimum entry. Undefined when empty. *)

val pop_exn : 'a t -> 'a
(** Remove the minimum entry and return its payload without allocating.
    Raises [Invalid_argument] when empty. *)

val peek : 'a t -> 'a entry option
val pop : 'a t -> 'a entry option
