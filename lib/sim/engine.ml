(* Discrete-event simulation engine.

   Tasks are one-shot-continuation coroutines over OCaml effects
   (Effect.Deep). The engine owns a min-heap of (time, seq) -> thunk; a
   thunk either starts a task or resumes a captured continuation. All
   blocking abstractions (Sync, Resource, ...) are built from E_suspend.

   Hot-path note: events scheduled at the *current* simulated time
   (yield, E_wait 0, same-cycle wakes, spawns) dominate most workloads, and
   they never need heap ordering — they run before the clock next advances,
   in seq order, and seq is monotonic. They go to a ring-buffer FIFO
   instead of the heap. Near-future events (delay < Wheel.window: cache
   hits, software path costs, line transfers — nearly everything else) go
   to a timing wheel; only far-future events reach the heap. The run loop
   merges the FIFO, wheel and heap fronts by (time, seq), so the schedule
   is bit-for-bit identical to the all-heap engine while the common cases
   cost O(1) with no sift. *)

type waker = ?delay:int -> unit -> unit

type _ Effect.t +=
  | E_wait : int -> unit Effect.t
  | E_now : int Effect.t
  | E_suspend : (waker -> unit) -> unit Effect.t
  | E_spawn : (string option * (unit -> unit)) -> unit Effect.t
  | E_name : string Effect.t

exception Stalled of string
exception Halted

(* A queued event is either a plain thunk or a captured task continuation
   to be resumed with (). Storing the continuation directly — instead of
   wrapping it in a [fun () -> continue k ()] closure — saves one
   allocation and one indirect call on every wait/suspend resumption,
   which is most events the engine executes. The two cases are
   discriminated by runtime tag: continuations are [Obj.cont_tag] blocks,
   anything else is callable. *)
type ev = Obj.t

type t = {
  mutable now : int;
  mutable seq : int;
  heap : ev Heap.t;
  wheel : ev Wheel.t;
  (* FIFO of events due at the current time: parallel seq/event rings. *)
  mutable fq_seq : int array;
  mutable fq_thunk : ev array;
  mutable fq_head : int;
  mutable fq_len : int;
  mutable live : int;
  mutable executed : int;
  (* Names of live tasks, for Stalled diagnostics: task id -> ~name. *)
  names : (int, string) Hashtbl.t;
  mutable next_task : int;
}

let nop () = ()
let nop_ev : ev = Obj.repr nop
let ev_of_thunk (f : unit -> unit) : ev = Obj.repr f

let ev_of_cont (k : (unit, unit) Effect.Deep.continuation) : ev = Obj.repr k

(* Execute a queued event. The tag check is exact: a first-class
   continuation is always a [cont_tag] block, and no callable value ever
   carries that tag (closures are [closure_tag]/[infix_tag]). *)
let run_ev (x : ev) =
  if Obj.tag x = Obj.cont_tag then
    Effect.Deep.continue (Obj.obj x : (unit, unit) Effect.Deep.continuation) ()
  else (Obj.obj x : unit -> unit) ()

let create () =
  {
    now = 0;
    seq = 0;
    (* Pre-sized with the engine's own dummy thunk so the first far-future
       event of a run does not pay the backing-array allocation mid-flight;
       the arrays are recycled across runs of a [reset] engine. *)
    heap = Heap.create ~dummy:nop_ev ();
    wheel = Wheel.create ~dummy:nop_ev;
    fq_seq = Array.make 64 0;
    fq_thunk = Array.make 64 nop_ev;
    fq_head = 0;
    fq_len = 0;
    live = 0;
    executed = 0;
    names = Hashtbl.create 16;
    next_task = 0;
  }

(* Rewind an *idle* engine (no pending events, no live tasks) to t=0 so its
   FIFO rings, wheel slots and heap arrays are reused by the next run
   instead of reallocated — the bechamel engine micro-bench measures
   spawn+run, not allocator traffic for a fresh engine. [executed] keeps
   accumulating: it counts the engine's lifetime, not a run. *)
let reset t =
  if
    t.live > 0 || t.fq_len > 0
    || not (Heap.is_empty t.heap)
    || not (Wheel.is_empty t.wheel)
  then invalid_arg "Engine.reset: engine busy (live tasks or pending events)";
  t.now <- 0;
  t.seq <- 0

let now t = t.now
let events_executed t = t.executed
let live_tasks t = t.live

(* Earliest pending event across the three fronts (FIFO entries are due at
   the current time). [None] = idle engine. This is what a windowed
   executor (Pdes) uses to pick the next lookahead horizon without popping
   anything. *)
let next_time t =
  let nt = ref max_int in
  if t.fq_len > 0 then nt := t.now;
  if not (Wheel.is_empty t.wheel) then begin
    let wt = Wheel.min_time t.wheel in
    if wt < !nt then nt := wt
  end;
  if not (Heap.is_empty t.heap) then begin
    let ht = Heap.min_time t.heap in
    if ht < !nt then nt := ht
  end;
  if !nt = max_int then None else Some !nt

(* Events executed by every engine on this domain: lets the bench harness
   attribute events/sec to a bench without threading engine handles out,
   and stays correct when benches run on parallel domains. *)
let domain_executed : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

(* The engine whose [run] loop is currently draining events on this
   domain (saved/restored across nested runs). [now_] reads the clock
   through it instead of performing [E_now]: an effect costs two stack
   switches plus a continuation and a handler-closure allocation per
   perform, which the serving bench pays ~28M times — a pure
   representation change, since the value returned is the same field the
   [E_now] handler read. *)
let domain_running : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let domain_events_executed () = !(Domain.DLS.get domain_executed)

(* -- deferred latency charging ("fusion") --

   A pure delay (cache hit, fixed software-path cost, TLB walk) does not
   need a scheduler round trip: nothing else can observe the task until it
   next interacts. [charge n] banks the delay in a per-domain pending
   cell; the bank is drained as ONE [E_wait] by [flush_charge] at every
   interaction point (wait/now_/suspend/Sync operation/resource
   reservation/task exit). Because the flush realigns real time with
   virtual time before anything observable happens, the simulated schedule
   is bit-identical to charging each delay as its own wait.

   The cell can live per-domain rather than per-task because tasks are
   cooperative and every control transfer flushes first: whenever the
   engine (or any other task) runs, the cell is zero. *)
type charge_cell = {
  mutable pending : int;  (* banked delay, flushed at interaction points *)
  mutable deferred : int;  (* charges banked (would-be wait events) *)
  mutable flushes : int;  (* waits actually performed to drain the bank *)
  mutable fuse : bool;  (* fusion enabled on this domain *)
}

(* Referee switch: MK_NO_FUSION=1 (or [set_fusion false]) makes [charge]
   behave exactly like [wait], so CI can diff full bench outputs
   fused-vs-unfused. The flag lives in the per-domain charge cell — not a
   process global — so pool workers can run fused and unfused simulations
   concurrently (the fusion-equivalence property does exactly that), and
   the hot [charge] path reads it from the cell it already fetched. *)
let fusion_default =
  match Sys.getenv_opt "MK_NO_FUSION" with
  | None | Some "" | Some "0" -> true
  | Some _ -> false

let domain_charge : charge_cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { pending = 0; deferred = 0; flushes = 0; fuse = fusion_default })

let set_fusion b = (Domain.DLS.get domain_charge).fuse <- b
let fusion_enabled () = (Domain.DLS.get domain_charge).fuse
let pending_charge () = (Domain.DLS.get domain_charge).pending

(* Scheduler events saved by coalescing so far on this domain: each
   deferred charge would have been one wait event, and each flush pays one
   back. Adding this to [domain_events_executed] reconstructs exactly the
   event count an unfused run executes, which keeps events/sec
   baseline-comparable across fusion modes. *)
let domain_events_fused () =
  let c = Domain.DLS.get domain_charge in
  c.deferred - c.flushes

let fifo_grow t =
  let cap = Array.length t.fq_seq in
  let nseq = Array.make (cap * 2) 0 in
  let nthunk = Array.make (cap * 2) nop_ev in
  for i = 0 to t.fq_len - 1 do
    nseq.(i) <- t.fq_seq.((t.fq_head + i) land (cap - 1));
    nthunk.(i) <- t.fq_thunk.((t.fq_head + i) land (cap - 1))
  done;
  t.fq_seq <- nseq;
  t.fq_thunk <- nthunk;
  t.fq_head <- 0

let fifo_push t seq thunk =
  if t.fq_len = Array.length t.fq_seq then fifo_grow t;
  let slot = (t.fq_head + t.fq_len) land (Array.length t.fq_seq - 1) in
  t.fq_seq.(slot) <- seq;
  t.fq_thunk.(slot) <- thunk;
  t.fq_len <- t.fq_len + 1

let fifo_pop t =
  let thunk = t.fq_thunk.(t.fq_head) in
  t.fq_thunk.(t.fq_head) <- nop_ev;  (* drop the event for the GC *)
  t.fq_head <- (t.fq_head + 1) land (Array.length t.fq_seq - 1);
  t.fq_len <- t.fq_len - 1;
  thunk

(* All FIFO entries are due at [t.now]: entries are only enqueued for the
   current time, and the clock cannot advance past them (they always beat
   any strictly-later heap entry). *)
let fifo_front_seq t = t.fq_seq.(t.fq_head)

(* Spill the FIFO back into the heap (at the current time, preserving seq).
   Only needed on the cold path where [run ~until] stops the clock while
   same-time events are still queued. *)
let fifo_spill t =
  while t.fq_len > 0 do
    let seq = fifo_front_seq t in
    let thunk = fifo_pop t in
    Heap.push t.heap ~time:t.now ~seq thunk
  done

(* Move every wheel entry into the heap (preserving (time, seq)). Cold
   path: only used when [run ~until] stops the clock early, so the wheel's
   window can be re-anchored at an arbitrary new [now]. *)
let wheel_spill t =
  while not (Wheel.is_empty t.wheel) do
    let time = Wheel.min_time t.wheel in
    let seq = Wheel.min_seq t.wheel in
    let thunk = Wheel.pop_exn t.wheel in
    Heap.push t.heap ~time ~seq thunk
  done

(* Minimum timed-event population before future events are routed to the
   wheel. Below it the heap wins: with a handful of pending events the
   whole heap is two hot cache lines and its sifts are trivial, while the
   wheel scatters them across a multi-KB slot array (measured pending
   averages: UDP-echo-style benches ~2.6, broadcast tree ~8.6, the
   message-passing scaling bench ~35). Routing by load cannot change
   results: the run loop merges the wheel and heap fronts by (time, seq),
   so which structure holds an event is invisible to the schedule. *)
let wheel_threshold = 24

let schedule t ~at thunk =
  let at = if at < t.now then t.now else at in
  t.seq <- t.seq + 1;
  if at = t.now then fifo_push t t.seq thunk
  else if
    at - t.now < Wheel.window
    && Wheel.length t.wheel + Heap.length t.heap >= wheel_threshold
    && Wheel.push t.wheel ~now:t.now ~time:at ~seq:t.seq thunk
  then ()
  else Heap.push t.heap ~time:at ~seq:t.seq thunk

(* Drain the pending-charge bank as one wait. Must run inside a task (it
   performs [E_wait]); a no-op when nothing is banked, so it is safe (and
   cheap) to call at every interaction point. *)
let flush_charge () =
  let c = Domain.DLS.get domain_charge in
  if c.pending > 0 then begin
    let p = c.pending in
    c.pending <- 0;
    c.flushes <- c.flushes + 1;
    Effect.perform (E_wait p)
  end

(* Run [f] as a task body under the scheduling-effect handler. The body is
   bracketed so any charge still banked when the task returns (or halts)
   is paid before the task dies — otherwise a fused run could end with a
   smaller final clock than an unfused one. *)
let rec exec t (name : string) f =
  t.live <- t.live + 1;
  let tid = t.next_task in
  t.next_task <- tid + 1;
  Hashtbl.replace t.names tid name;
  let open Effect.Deep in
  match_with
    (fun () ->
      match f () with
      | () -> flush_charge ()
      | exception Halted ->
        flush_charge ();
        raise Halted)
    ()
    { retc =
        (fun () ->
          t.live <- t.live - 1;
          Hashtbl.remove t.names tid);
      exnc =
        (fun e ->
          t.live <- t.live - 1;
          Hashtbl.remove t.names tid;
          (* Drop, don't pay, the bank on a crash: the next slice on this
             domain must not inherit a dead task's pending delay. *)
          (Domain.DLS.get domain_charge).pending <- 0;
          match e with
          | Halted -> ()
          | e ->
            (* A crashing task aborts the whole simulation: surface it. *)
            raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_wait n ->
            Some
              (fun (k : (a, _) continuation) ->
                schedule t ~at:(t.now + max 0 n)
                  (ev_of_cont (Obj.magic (k : (a, _) continuation))))
          | E_now -> Some (fun (k : (a, _) continuation) -> continue k t.now)
          | E_name -> Some (fun (k : (a, _) continuation) -> continue k name)
          | E_suspend register ->
            Some
              (fun (k : (a, _) continuation) ->
                let fired = ref false in
                let wake ?(delay = 0) () =
                  if not !fired then begin
                    fired := true;
                    (* An invoker with a banked charge (e.g. a futex wake
                       loop that charged a per-waiter cost) must reach the
                       true time *before* the wake is scheduled — not just
                       so the event lands at the right time, but so it is
                       sequenced after everything else that fires inside
                       the banked window. Paying the bank here is safe
                       even though wakers may run outside any task: a
                       non-empty bank implies task context, because every
                       yield point flushes first. *)
                    flush_charge ();
                    schedule t ~at:(t.now + max 0 delay)
                      (ev_of_cont (Obj.magic (k : (a, _) continuation)))
                  end
                in
                register wake)
          | E_spawn (nm, body) ->
            Some
              (fun (k : (a, _) continuation) ->
                let nm = Option.value nm ~default:(name ^ ".child") in
                (* Children start at the parent's *virtual* time: a parent
                   with a banked charge has conceptually already lived
                   those cycles, so the child must not start before them.
                   With nothing banked this is exactly [t.now]. *)
                let at = t.now + (Domain.DLS.get domain_charge).pending in
                schedule t ~at (ev_of_thunk (fun () -> exec t nm body));
                continue k ())
          | _ -> None) }

let spawn t ?(name = "task") f =
  (* Same virtual-time rule as [E_spawn]: callable from inside a task
     (where a charge may be banked) as well as from setup code (where the
     bank is always empty and this is plain [t.now]). *)
  let at = t.now + (Domain.DLS.get domain_charge).pending in
  schedule t ~at (ev_of_thunk (fun () -> exec t name f))

(* Injection hook: schedule a bare thunk at an absolute time. The thunk
   runs outside any task context (like a waker body): it may mutate state
   and call [spawn]/[schedule_at], but must not perform task effects. Used
   by the fault injector to arm timed fault events. *)
let schedule_at t ~at thunk = schedule t ~at (ev_of_thunk thunk)

(* Event sources for the run loop's three-way front merge. *)
let src_fifo = 0

let src_wheel = 1
let src_heap = 2

let run t ?until ?(allow_stall = true) () =
  let limit = until in
  let dom_counter = Domain.DLS.get domain_executed in
  let rec loop () =
    let have_f = t.fq_len > 0 in
    let have_w = not (Wheel.is_empty t.wheel) in
    let have_h = not (Heap.is_empty t.heap) in
    if not have_f && not have_w && not have_h then begin
      if t.live > 0 && not allow_stall then begin
        (* Name the stuck tasks (in spawn order, capped) — "3 tasks
           suspended" alone sends the reader straight to a debugger. *)
        let ids = Hashtbl.fold (fun id nm acc -> (id, nm) :: acc) t.names [] in
        let names = List.sort compare ids |> List.map snd in
        let cap = 8 in
        let shown = List.filteri (fun i _ -> i < cap) names in
        let extra = List.length names - List.length shown in
        let who =
          String.concat ", " shown
          ^ (if extra > 0 then Printf.sprintf ", ... (+%d more)" extra else "")
        in
        raise
          (Stalled
             (Printf.sprintf "%d task(s) suspended forever at t=%d: %s" t.live t.now who))
      end
    end
    else begin
      (* Next event by (time, seq) across the three fronts. FIFO entries
         are at t.now, so they beat any strictly-later wheel/heap entry;
         at equal time, lower seq wins. *)
      let src = ref src_fifo in
      let ntime = ref max_int and nseq = ref max_int in
      if have_f then begin
        ntime := t.now;
        nseq := fifo_front_seq t
      end;
      if have_w then begin
        let wt = Wheel.min_time t.wheel in
        if wt < !ntime || (wt = !ntime && Wheel.min_seq t.wheel < !nseq) then begin
          src := src_wheel;
          ntime := wt;
          nseq := Wheel.min_seq t.wheel
        end
      end;
      if have_h then begin
        let ht = Heap.min_time t.heap in
        if ht < !ntime || (ht = !ntime && Heap.min_seq t.heap < !nseq) then begin
          src := src_heap;
          ntime := ht
        end
      end;
      let ntime = !ntime in
      match limit with
      | Some lim when ntime > lim ->
        if lim >= t.now then
          (* Forward stop (the common case; a PDES window barrier does this
             once per window). The FIFO is necessarily empty — its entries
             are due at [t.now <= lim] and would have run — and the wheel
             can stay put: every pending wheel time lies in
             (lim, lim + window), so pushes after the clock moves to [lim]
             cannot collide with an occupied slot (and Wheel.push refuses
             and falls back to the heap if one ever did). *)
          t.now <- lim
        else begin
          (* Rewinding stop ([until] before the current time): spill
             everything into the heap so (time, seq) survives the
             re-anchoring. *)
          fifo_spill t;
          wheel_spill t;
          t.now <- lim
        end
      | _ ->
        let thunk =
          if !src = src_fifo then fifo_pop t
          else if !src = src_wheel then Wheel.pop_exn t.wheel
          else Heap.pop_exn t.heap
        in
        t.now <- ntime;
        t.executed <- t.executed + 1;
        incr dom_counter;
        run_ev thunk;
        loop ()
    end
  in
  let cur = Domain.DLS.get domain_running in
  let saved = !cur in
  cur := Some t;
  Fun.protect ~finally:(fun () -> cur := saved) loop

(* Task-level API. Every operation that can observe or be observed by the
   rest of the simulation flushes the charge bank first, so banked delays
   are indistinguishable from eagerly waited ones.

   [now_] is the deliberate exception: it reports *virtual* time (real
   time plus the banked charge) without flushing. The value is exactly
   what an unfused run would read, and crucially [now_] keeps its
   historical guarantee of never yielding — call sites freely mix it into
   compound expressions whose other operands read shared state, which a
   flush (a yield) would tear. *)

let now_ () =
  (* Fast path: read the running engine's clock off the domain. The
     [E_now] effect remains as the fallback (and for any caller outside a
     run loop that still has a task handler on its stack). *)
  match !(Domain.DLS.get domain_running) with
  | Some t -> t.now + (Domain.DLS.get domain_charge).pending
  | None -> Effect.perform E_now + (Domain.DLS.get domain_charge).pending

let wait n =
  flush_charge ();
  Effect.perform (E_wait n)

let charge n =
  let c = Domain.DLS.get domain_charge in
  if c.fuse && n > 0 then begin
    c.pending <- c.pending + n;
    c.deferred <- c.deferred + 1
  end
  else wait n

let wait_until at =
  let n = at - now_ () in
  if n > 0 then wait n

let yield () = wait 0

let suspend register =
  flush_charge ();
  Effect.perform (E_suspend register)

let spawn_ ?name f = Effect.perform (E_spawn (name, f))
let task_name () = Effect.perform E_name
let halt () = raise Halted
