(** Sample accumulators for benchmark reporting.

    Retains all samples (benchmarks are bounded) so percentiles are exact. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val mean : t -> float
val stddev : t -> float
(** Sample standard deviation (n-1 denominator); 0 when n < 2. *)

val min : t -> float
val max : t -> float
val total : t -> float
val percentile : t -> float -> float
(** [percentile t 0.5] is the median (nearest-rank on sorted samples).
    Raises [Invalid_argument] on an empty accumulator. *)

val samples : t -> float array
(** Copy of the samples in insertion order. *)

val summary : t -> string
(** ["mean=… sd=… min=… max=… n=…"] for quick printing. *)

val mean_ints : int list -> float
(** Mean of an int list; 0 when empty. One-shot helper for callers that
    have a list in hand and no accumulator. *)

val stddev_ints : int list -> float
(** Sample standard deviation (n-1 denominator) of an int list; 0 when
    fewer than two samples. *)
