(** Sample accumulators for benchmark reporting.

    By default only O(1) state is kept (count, sum, sum of squares,
    extrema): an accumulator that lives as long as the simulation does not
    grow with it. Exact percentiles need the raw samples — opt in with
    [create ~retain_samples:true] when the sample count is bounded. *)

type t

val create : ?retain_samples:bool -> unit -> t
(** [retain_samples] (default [false]) stores every sample so
    {!percentile} and {!samples} are available; otherwise both raise and
    memory use is constant. *)

val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val mean : t -> float
val stddev : t -> float
(** Sample standard deviation (n-1 denominator); 0 when n < 2. *)

val min : t -> float
val max : t -> float
val total : t -> float
val percentile : t -> float -> float
(** [percentile t 0.5] is the median (nearest-rank on sorted samples).
    Raises [Invalid_argument] on an empty accumulator or one created
    without [~retain_samples:true]. *)

val samples : t -> float array
(** Copy of the samples in insertion order. Raises [Invalid_argument]
    unless created with [~retain_samples:true]. *)

val summary : t -> string
(** ["mean=… sd=… min=… max=… n=…"] for quick printing. *)

(** Log-bucketed latency histogram: constant space however many samples
    arrive, with quantile error bounded by the bucket width. Values below
    [2^sub_bits] are exact (one bucket per value); above that each
    power-of-two range splits into [2^sub_bits] linear sub-buckets, so the
    relative error of {!Histogram.quantile} is at most [1 / 2^sub_bits]
    (~3% at the default [sub_bits = 5]). Samples are non-negative ints
    (cycles); negatives clamp to 0. *)
module Histogram : sig
  type t

  val create : ?sub_bits:int -> unit -> t
  (** [sub_bits] (default 5) sets the sub-bucket resolution; the bucket
      array is [~(64 - sub_bits) * 2^sub_bits] ints regardless of sample
      count. Raises [Invalid_argument] outside [1..16]. *)

  val add : t -> int -> unit
  val count : t -> int
  val min : t -> int
  (** Exact observed minimum; 0 when empty. *)

  val max : t -> int
  (** Exact observed maximum; 0 when empty. *)

  val mean : t -> float

  val quantile : t -> float -> int
  (** [quantile t 0.999] is the p999 estimate: the upper bound of the
      bucket holding the nearest-rank sample, clamped to the observed
      extrema — within one bucket width of the exact nearest-rank value.
      0 when empty. *)

  val merge_into : dst:t -> t -> unit
  (** Fold [src] into [dst] (e.g. per-shard histograms into a cluster
      total). Raises [Invalid_argument] on a [sub_bits] mismatch. *)

  val bucket_of : t -> int -> int
  (** Bucket index a value lands in (exposed for the error-bound test). *)

  val bounds : t -> int -> int * int
  (** Inclusive [(lo, hi)] value range of a bucket index. *)
end

val mean_ints : int list -> float
(** Mean of an int list; 0 when empty. One-shot helper for callers that
    have a list in hand and no accumulator. *)

val stddev_ints : int list -> float
(** Sample standard deviation (n-1 denominator) of an int list; 0 when
    fewer than two samples. *)
