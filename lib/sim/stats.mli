(** Sample accumulators for benchmark reporting.

    By default only O(1) state is kept (count, sum, sum of squares,
    extrema): an accumulator that lives as long as the simulation does not
    grow with it. Exact percentiles need the raw samples — opt in with
    [create ~retain_samples:true] when the sample count is bounded. *)

type t

val create : ?retain_samples:bool -> unit -> t
(** [retain_samples] (default [false]) stores every sample so
    {!percentile} and {!samples} are available; otherwise both raise and
    memory use is constant. *)

val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val mean : t -> float
val stddev : t -> float
(** Sample standard deviation (n-1 denominator); 0 when n < 2. *)

val min : t -> float
val max : t -> float
val total : t -> float
val percentile : t -> float -> float
(** [percentile t 0.5] is the median (nearest-rank on sorted samples).
    Raises [Invalid_argument] on an empty accumulator or one created
    without [~retain_samples:true]. *)

val samples : t -> float array
(** Copy of the samples in insertion order. Raises [Invalid_argument]
    unless created with [~retain_samples:true]. *)

val summary : t -> string
(** ["mean=… sd=… min=… max=… n=…"] for quick printing. *)

val mean_ints : int list -> float
(** Mean of an int list; 0 when empty. One-shot helper for callers that
    have a list in hand and no accumulator. *)

val stddev_ints : int list -> float
(** Sample standard deviation (n-1 denominator) of an int list; 0 when
    fewer than two samples. *)
