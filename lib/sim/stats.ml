(* Moments and extrema are O(1) state; the sample array exists only when
   the accumulator was created with [~retain_samples:true]. Long-running
   accumulators (per-channel latency stats live for a whole simulation)
   previously retained every sample and grew without bound even though
   nothing ever asked for percentiles. *)
type t = {
  retain : bool;
  mutable data : float array;  (* [||] unless retaining *)
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
}

let create ?(retain_samples = false) () =
  {
    retain = retain_samples;
    data = [||];
    n = 0;
    sum = 0.0;
    sumsq = 0.0;
    mn = infinity;
    mx = neg_infinity;
  }

let add t x =
  if t.retain then begin
    if t.n = Array.length t.data then begin
      let cap = if t.n = 0 then 64 else t.n * 2 in
      let narr = Array.make cap 0.0 in
      Array.blit t.data 0 narr 0 t.n;
      t.data <- narr
    end;
    t.data.(t.n) <- x
  end;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let add_int t x = add t (float_of_int x)
let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else
    let n = float_of_int t.n in
    let var = (t.sumsq -. (t.sum *. t.sum /. n)) /. (n -. 1.0) in
    if var <= 0.0 then 0.0 else sqrt var

let min t = t.mn
let max t = t.mx
let total t = t.sum

let percentile t p =
  if not t.retain then
    invalid_arg "Stats.percentile: accumulator created without ~retain_samples:true";
  if t.n = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.sub t.data 0 t.n in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p *. float_of_int t.n)) - 1 in
  let rank = Stdlib.max 0 (Stdlib.min (t.n - 1) rank) in
  sorted.(rank)

let samples t =
  if not t.retain then
    invalid_arg "Stats.samples: accumulator created without ~retain_samples:true";
  Array.sub t.data 0 t.n

(* One-shot list helpers (previously duplicated in the bench tree). *)

let mean_ints l =
  match l with
  | [] -> 0.0
  | _ -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

let stddev_ints l =
  let m = mean_ints l in
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
    let n = float_of_int (List.length l) in
    let var =
      List.fold_left (fun acc x -> acc +. ((float_of_int x -. m) ** 2.0)) 0.0 l
      /. (n -. 1.0)
    in
    sqrt var

let summary t =
  Printf.sprintf "mean=%.1f sd=%.1f min=%.1f max=%.1f n=%d" (mean t) (stddev t)
    (if t.n = 0 then 0.0 else t.mn)
    (if t.n = 0 then 0.0 else t.mx)
    t.n
