(* Moments and extrema are O(1) state; the sample array exists only when
   the accumulator was created with [~retain_samples:true]. Long-running
   accumulators (per-channel latency stats live for a whole simulation)
   previously retained every sample and grew without bound even though
   nothing ever asked for percentiles. *)
type t = {
  retain : bool;
  mutable data : float array;  (* [||] unless retaining *)
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
}

let create ?(retain_samples = false) () =
  {
    retain = retain_samples;
    data = [||];
    n = 0;
    sum = 0.0;
    sumsq = 0.0;
    mn = infinity;
    mx = neg_infinity;
  }

let add t x =
  if t.retain then begin
    if t.n = Array.length t.data then begin
      let cap = if t.n = 0 then 64 else t.n * 2 in
      let narr = Array.make cap 0.0 in
      Array.blit t.data 0 narr 0 t.n;
      t.data <- narr
    end;
    t.data.(t.n) <- x
  end;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let add_int t x = add t (float_of_int x)
let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else
    let n = float_of_int t.n in
    let var = (t.sumsq -. (t.sum *. t.sum /. n)) /. (n -. 1.0) in
    if var <= 0.0 then 0.0 else sqrt var

let min t = t.mn
let max t = t.mx
let total t = t.sum

let percentile t p =
  if not t.retain then
    invalid_arg "Stats.percentile: accumulator created without ~retain_samples:true";
  if t.n = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.sub t.data 0 t.n in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p *. float_of_int t.n)) - 1 in
  let rank = Stdlib.max 0 (Stdlib.min (t.n - 1) rank) in
  sorted.(rank)

let samples t =
  if not t.retain then
    invalid_arg "Stats.samples: accumulator created without ~retain_samples:true";
  Array.sub t.data 0 t.n

(* Log-bucketed histogram (HdrHistogram-style log-linear buckets). Values
   below [2^sub_bits] get one bucket each (exact); above that, each
   power-of-two range is split into [2^sub_bits] linear sub-buckets, so a
   bucket's width never exceeds [value / 2^sub_bits]. The bucket array is
   fixed-size (~1.9k ints at the default sub_bits=5) however many samples
   arrive — the serving benches feed it millions of latencies. *)
module Histogram = struct
  type t = {
    sub_bits : int;
    sub : int;  (* 2^sub_bits, sub-buckets per power-of-two group *)
    counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable mn : int;
    mutable mx : int;
  }

  let create ?(sub_bits = 5) () =
    if sub_bits < 1 || sub_bits > 16 then invalid_arg "Histogram.create: sub_bits";
    let sub = 1 lsl sub_bits in
    {
      sub_bits;
      sub;
      (* Groups g = 1 .. 63 - sub_bits cover every non-negative int msb;
         group 0 is the exact region below 2^sub_bits. *)
      counts = Array.make ((64 - sub_bits) * sub) 0;
      n = 0;
      sum = 0.0;
      mn = max_int;
      mx = 0;
    }

  let msb v =
    let m = ref 0 and x = ref v in
    while !x > 1 do
      incr m;
      x := !x lsr 1
    done;
    !m

  let index t v =
    if v < t.sub then v
    else
      let m = msb v in
      let g = m - t.sub_bits + 1 in
      (g * t.sub) + ((v lsr (m - t.sub_bits)) land (t.sub - 1))

  (* Inclusive [lo, hi] of a bucket; buckets in the exact region are a
     single value wide. *)
  let bounds t i =
    if i < t.sub then (i, i)
    else
      let g = i / t.sub and s = i mod t.sub in
      let lo = (t.sub + s) lsl (g - 1) in
      (lo, lo + (1 lsl (g - 1)) - 1)

  let bucket_of = index

  let add t v =
    let v = Stdlib.max 0 v in
    t.counts.(index t v) <- t.counts.(index t v) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. float_of_int v;
    if v < t.mn then t.mn <- v;
    if v > t.mx then t.mx <- v

  let count t = t.n
  let min t = if t.n = 0 then 0 else t.mn
  let max t = t.mx
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

  (* Nearest-rank on the bucketed distribution: the reported value is the
     upper bound of the bucket holding the rank-th sample (clamped to the
     observed extrema), so it is within one bucket width of the exact
     nearest-rank answer — the property the qcheck test pins. *)
  let quantile t q =
    if t.n = 0 then 0
    else begin
      let rank = int_of_float (ceil (q *. float_of_int t.n)) in
      let rank = Stdlib.max 1 (Stdlib.min t.n rank) in
      let cum = ref 0 and i = ref 0 in
      while !cum < rank do
        cum := !cum + t.counts.(!i);
        incr i
      done;
      let _, hi = bounds t (!i - 1) in
      Stdlib.max t.mn (Stdlib.min t.mx hi)
    end

  let merge_into ~dst src =
    if dst.sub_bits <> src.sub_bits then
      invalid_arg "Histogram.merge_into: sub_bits mismatch";
    Array.iteri (fun i c -> if c > 0 then dst.counts.(i) <- dst.counts.(i) + c) src.counts;
    dst.n <- dst.n + src.n;
    dst.sum <- dst.sum +. src.sum;
    if src.n > 0 then begin
      if src.mn < dst.mn then dst.mn <- src.mn;
      if src.mx > dst.mx then dst.mx <- src.mx
    end
end

(* One-shot list helpers (previously duplicated in the bench tree). *)

let mean_ints l =
  match l with
  | [] -> 0.0
  | _ -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

let stddev_ints l =
  let m = mean_ints l in
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
    let n = float_of_int (List.length l) in
    let var =
      List.fold_left (fun acc x -> acc +. ((float_of_int x -. m) ** 2.0)) 0.0 l
      /. (n -. 1.0)
    in
    sqrt var

let summary t =
  Printf.sprintf "mean=%.1f sd=%.1f min=%.1f max=%.1f n=%d" (mean t) (stddev t)
    (if t.n = 0 then 0.0 else t.mn)
    (if t.n = 0 then 0.0 else t.mx)
    t.n
