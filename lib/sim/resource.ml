type t = {
  rname : string;
  mutable busy_until : int;
  mutable busy_cycles : int;
}

let create ?(name = "resource") () = { rname = name; busy_until = 0; busy_cycles = 0 }

let name t = t.rname
let busy_until t = t.busy_until

let reserve_at t ~now n =
  let n = max 0 n in
  let start = if now > t.busy_until then now else t.busy_until in
  t.busy_until <- start + n;
  t.busy_cycles <- t.busy_cycles + n;
  start + n

(* Reservations are an interaction point: [busy_until] is a queue shared
   with every other user of the resource, so it must be mutated at the
   caller's true simulated time and in true event order — flush first. *)
let reserve t n =
  Engine.flush_charge ();
  reserve_at t ~now:(Engine.now_ ()) n

let acquire t n =
  let finish = reserve t n in
  let now = Engine.now_ () in
  (* The stay on the resource itself is a pure delay for this task: bank
     it instead of sleeping. Competing acquirers see [busy_until], which
     was already updated above. *)
  if finish > now then Engine.charge (finish - now);
  finish - max 0 n

let utilization t ~since ~now =
  if now <= since then 0.0
  else
    let busy = min t.busy_cycles (now - since) in
    float_of_int busy /. float_of_int (now - since)

let reset_accounting t = t.busy_cycles <- 0
let busy_cycles t = t.busy_cycles
