(** Deterministic discrete-event simulation engine.

    Simulated entities ("tasks") are cooperative coroutines implemented with
    OCaml effects. A task runs until it performs one of the scheduling
    effects ({!wait}, {!suspend}, ...), at which point control returns to the
    engine, which advances the simulated clock to the next pending event.

    Time is a dimensionless integer; the hardware layer interprets it as CPU
    cycles of the simulated platform. The engine is fully deterministic:
    events at the same time fire in the order they were scheduled. *)

type t
(** A simulation engine instance: clock + pending-event heap. *)

exception Stalled of string
(** Raised by {!run} when live tasks remain but no event is pending
    (every remaining task is suspended forever) and [allow_stall] is false.
    The message names the suspended tasks (their [~name]s, in spawn order,
    capped at eight) alongside the count and the stall time. *)

val create : unit -> t

val reset : t -> unit
(** Rewind an idle engine to [t = 0], recycling its FIFO rings, wheel
    slots and heap arrays for the next run instead of reallocating them.
    {!events_executed} keeps accumulating across resets.
    @raise Invalid_argument if tasks are live or events are pending. *)

val now : t -> int
(** Current simulated time. *)

val next_time : t -> int option
(** Time of the earliest pending event (FIFO/wheel/heap), without popping
    it; [None] when the engine is idle. A windowed executor uses this to
    compute the next conservative lookahead horizon. *)

val events_executed : t -> int
(** Total number of events dispatched so far (debugging / perf metric). *)

val domain_events_executed : unit -> int
(** Events dispatched by every engine on the *current domain* since it
    started. The bench harness snapshots this around a bench run to report
    events/sec; per-domain (not global) so parallel bench workers don't
    see each other's events. *)

val domain_events_fused : unit -> int
(** Scheduler events saved by latency-charge fusion on the current domain:
    charges banked minus flush waits paid. Adding this to
    {!domain_events_executed} reconstructs the event count an unfused run
    executes, so events/sec stays comparable across fusion modes. The
    reconstruction is slightly conservative: fusion also removes
    second-order scheduler traffic (e.g. a delivery sequencer that parks
    and is re-woken between a sender's eager waits never parks when those
    waits are banked), and those avoided park/wake events are counted
    neither as executed nor as fused. *)

val set_fusion : bool -> unit
(** Enable/disable latency-charge fusion on the {e current domain}
    (default: enabled unless the [MK_NO_FUSION] environment variable is
    set to a non-zero value). With fusion off, {!charge} performs a plain
    {!wait}: the referee mode CI uses to check that fused and unfused runs
    are bit-identical. The flag is per-domain so parallel pool jobs can
    run in different modes concurrently. *)

val fusion_enabled : unit -> bool

val pending_charge : unit -> int
(** Delay currently banked on this domain (0 outside a task slice). *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** [spawn eng f] schedules task [f] to start at the current simulated time.
    Usable both from outside [run] (setup) and from within a task. *)

val schedule_at : t -> at:int -> (unit -> unit) -> unit
(** [schedule_at eng ~at thunk] runs [thunk] at absolute time [at] (clamped
    to now), ordered after events already scheduled for that time. The
    thunk runs outside any task context — it may mutate state and call
    {!spawn}, but must not perform task effects. This is the engine-level
    injection hook used by the fault subsystem to arm timed fault events. *)

val run : t -> ?until:int -> ?allow_stall:bool -> unit -> unit
(** Execute events until the heap is empty, or until the clock would pass
    [until]. If tasks remain suspended when the heap drains, raises
    {!Stalled} unless [allow_stall] is true (default: true, because
    long-lived server tasks legitimately out-live a run). *)

val live_tasks : t -> int
(** Number of spawned tasks that have not yet terminated. *)

(** {1 Task-level operations}

    These must be called from inside a task (they perform effects handled by
    {!run}); calling them elsewhere raises [Effect.Unhandled]. *)

type waker = ?delay:int -> unit -> unit
(** A one-shot resumption callback handed to {!suspend}. Calling it more than
    once is harmless (subsequent calls are ignored). [delay] adds simulated
    time between the wake decision and the task actually resuming. *)

val now_ : unit -> int
(** Current *virtual* simulated time, from inside a task: real engine time
    plus any charge banked by {!charge}. This is exactly the time an
    unfused run would read, and [now_] never yields (it does not flush),
    so it can appear in compound expressions that also read shared
    state. *)

val wait : int -> unit
(** Advance this task's local time by [n >= 0] cycles. *)

val charge : int -> unit
(** Bank a *pure* delay — one that nothing else can observe before this
    task next interacts — instead of performing a wait for it. The bank is
    drained as a single wait by {!flush_charge}, which every interaction
    point ({!wait}, {!suspend}, Sync operations, resource reservation,
    task exit) calls first, so the simulated schedule is bit-identical to
    eager waiting. [charge n] with [n <= 0] (or with
    fusion disabled) degrades to [wait n]. Never convert a wait that paces
    an unbounded polling loop: a task that only charges never yields. *)

val flush_charge : unit -> unit
(** Pay any banked charge as one wait; no-op when the bank is empty. Call
    before mutating or reading state shared with other tasks from a path
    that may have charged (the Sync primitives and the engine's own
    interaction points already do). *)

val wait_until : int -> unit
(** Sleep until the given absolute time (no-op if already past). *)

val yield : unit -> unit
(** Reschedule after all other events already pending at the current time. *)

val suspend : (waker -> unit) -> unit
(** [suspend register] blocks the task; [register] receives the waker and
    typically stores it in some wait queue. The task resumes when (and if)
    the waker is invoked. *)

val spawn_ : ?name:string -> (unit -> unit) -> unit
(** Spawn a sibling task from inside a task. *)

val task_name : unit -> string
(** Name of the running task (for tracing). *)

val halt : unit -> 'a
(** Terminate the current task immediately. *)
