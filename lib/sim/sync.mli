(** Blocking synchronization primitives for simulation tasks.

    These are {e simulation-level} primitives (zero simulated-time cost
    unless stated); they do not model hardware synchronization. The OS
    layers charge hardware costs explicitly via [Mk_hw] before using them. *)

(** Write-once cell; readers block until it is filled. *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t
  val fill : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] if already filled. *)

  val try_fill : 'a t -> 'a -> bool
  (** Like {!fill} but returns [false] instead of raising when already
      filled (duplicate-delivery friendly). *)

  val is_filled : 'a t -> bool
  val peek : 'a t -> 'a option
  val read : 'a t -> 'a
  (** Blocks the calling task until filled. *)
end

(** Unbounded FIFO mailbox; [recv] blocks when empty. *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a

  val recv_timeout : 'a t -> timeout:int -> 'a option
  (** Blocking receive that gives up after [timeout] cycles, returning
      [None]. A message arriving in the same cycle as the deadline is still
      delivered. Must be called from a task. *)

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end

(** Counting semaphore. *)
module Semaphore : sig
  type t

  val create : int -> t
  val acquire : t -> unit
  val release : t -> unit
  val available : t -> int
end

(** Mutual exclusion between simulation tasks (FIFO handoff). *)
module Mutex : sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a
end

(** Condition variable used with {!Mutex}. *)
module Condition : sig
  type t

  val create : unit -> t
  val wait : t -> Mutex.t -> unit
  val signal : t -> unit
  val broadcast : t -> unit
end

(** Reusable n-party barrier. *)
module Barrier : sig
  type t

  val create : int -> t
  val await : t -> unit
  (** Blocks until [n] tasks have called [await]; then all are released and
      the barrier resets for the next round. *)
end
