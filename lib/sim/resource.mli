(** FIFO-serialized hardware resources.

    A resource models a component that services one request at a time (a
    CPU core's execution pipeline, a cache directory's home node, a memory
    controller, a server thread). Acquiring it for [n] cycles reserves the
    earliest available slot and blocks the caller until service completes —
    this is what produces queueing delay proportional to offered load, e.g.
    the linear growth of shared-memory update cost in Figure 3. *)

type t

val create : ?name:string -> unit -> t

val name : t -> string

val busy_until : t -> int
(** Absolute time at which all currently accepted work completes. *)

val acquire : t -> int -> int
(** [acquire r n] reserves the resource for [n] cycles starting at
    [max now (busy_until r)], waits until the reservation ends, and returns
    the time service {e started} (so callers can compute queueing delay). *)

val reserve : t -> int -> int
(** Like {!acquire} but does not block the caller: reserves capacity and
    returns the absolute completion time. Used for fire-and-forget work the
    caller does not wait on (e.g. posting to a busy device). *)

val reserve_at : t -> now:int -> int -> int
(** {!reserve} with the current time supplied by the caller, for hot paths
    that already know [now] (performing the clock effect is not free). *)

val utilization : t -> since:int -> now:int -> float
(** Fraction of [since..now] the resource spent busy. *)

val reset_accounting : t -> unit

val busy_cycles : t -> int
(** Total cycles of service accepted since creation or
    {!reset_accounting}. *)
