(** Windowed conservative parallel discrete-event simulation.

    Splits {e one} logical simulation into shards — each with its own
    {!Engine.t} — that only interact through timestamped cross-shard
    messages carrying at least [lookahead] cycles of latency. Execution
    alternates exchange barriers (deliver pending messages in a canonical
    order) and windows (run every shard independently up to
    [horizon = tmin + lookahead], where [tmin] is the earliest pending
    event anywhere): nothing sent during a window can take effect inside
    it, so the shards need no synchronization within a window.

    The same loop body runs the shards inline ([domains = 1], the serial
    referee) or on a dedicated team of worker domains; shard state is
    handed over only at the barriers, and message delivery order is
    canonical, so the run is byte-identical for every domain count.

    The lookahead bound is physical in the multikernel model: the cheapest
    cross-shard interaction is an interconnect round trip whose minimum
    cost {!Topology.min_cross_latency} derives from the hop distances
    between the shards' package ranges. *)

type t

val create : n_shards:int -> lookahead:int -> t
(** A sharded simulation: [n_shards] fresh engines, all at time 0, and a
    guaranteed minimum cross-shard message latency of [lookahead > 0]
    cycles. Raises [Invalid_argument] on a non-positive argument. *)

val n_shards : t -> int
val lookahead : t -> int

val engine : t -> int -> Engine.t
(** The shard's engine, for building per-shard machines and spawning
    setup tasks. Raises [Invalid_argument] on a bad index. *)

val spawn : t -> shard:int -> ?name:string -> (unit -> unit) -> unit
(** [Engine.spawn] on the shard's engine. *)

val current : t -> int option
(** The shard of [t] whose window the calling domain is currently
    executing, or [None] outside window execution (host/setup context).
    Glue code uses it to pick between direct construction (host context:
    every shard is quiescent) and cross-shard messaging. *)

val send : t -> dst:int -> src_core:int -> at:int -> (unit -> unit) -> unit
(** Queue a cross-shard message: [fn] runs on shard [dst]'s engine at
    absolute time [at], delivered at the next exchange barrier. Messages
    are merged per destination in [(at, src_core, per-source sequence)]
    order — unique because a core belongs to exactly one shard — so
    delivery order (and the destination engine's tie-breaking) does not
    depend on how the sending windows interleaved. [fn] runs outside any
    task context: it may mutate state, call [Engine.spawn] /
    [Engine.schedule_at] and {!send}, but must not perform task effects.

    Raises [Invalid_argument] if [at] precedes the current window horizon
    — a lookahead violation, meaning the caller used a cross-shard latency
    below the [lookahead] the executor was created with. Callable during
    setup (before {!exec}), where the horizon is still 0. *)

val send_run :
  t ->
  dst:int ->
  src_shard:int ->
  src_core:int ->
  n:int ->
  ats:int array ->
  (int -> unit -> unit) ->
  unit
(** [send_run t ~dst ~src_shard ~src_core ~n ~ats mk] queues a batch of
    [n] frames from one sender stream as a single cross-shard message.
    Frame [i] delivers on shard [dst] at [ats.(i)] and [mk i] — called
    exactly once per frame, at the exchange barrier, in delivery order —
    returns its thunk. The batch consumes [n] consecutive per-source
    sequence numbers, and the barrier expands it frame by frame into the
    canonical (at, src_core, mseq) merge, so a run is delivered exactly
    as the same [n] individual {!send}s would have been — batching is
    invisible to the simulation.

    The source shard is explicit because the intended callers are
    {!add_flush} hooks, which run at the barrier, outside any window.
    [ats] must be non-decreasing and is read until the exchange that
    collects the run completes — a flush hook may hand over a live
    per-window buffer without snapshotting, because the same barrier that
    runs the hook also consumes the run. [src_core] must not collide with
    any other sender stream's merge key (same rule as {!send}).

    Raises [Invalid_argument] on a bad shard, [n < 1], [n >
    Array.length ats], decreasing [ats], or a lookahead violation on
    [ats.(0)]. *)

val add_flush : t -> shard:int -> (unit -> unit) -> unit
(** Register a hook that runs at the top of every exchange barrier,
    before any outbox is collected — in shard order, then registration
    order, always on the domain calling {!exec}. Senders that coalesce
    frames per window use it to hand over their buffers via {!send_run};
    since the first thing {!exec} does each round (including the final
    one) is exchange, no buffered frame can be lost at termination. *)

val exec : ?domains:int -> t -> unit
(** Run the sharded simulation to completion (no pending events or
    messages anywhere). [domains] (default {!configured_domains}; clamped
    to [n_shards]) picks how many OCaml domains execute the windows:
    [1] runs every shard inline on the caller, [> 1] spawns a short-lived
    team of [domains - 1] workers with shard [s] pinned to domain
    [s mod domains]. The team is dedicated rather than pooled because
    shard window jobs rendezvous at the exchange barrier — a {!Pool}
    submitter-helper that claimed one shard job would block in the barrier
    and deadlock the batch; worker counters are folded back through
    {!Pool.absorb} so enclosing measurements are placement-independent.

    Captured shard output is replayed in shard order on return; if a shard
    raised, the remaining shards finish the window, output is replayed,
    and the lowest-numbered shard's exception is re-raised. *)

val barriers : t -> int
(** Exchange barriers (= windows) executed so far, summed across {!exec}
    calls. Also reported to {!Pool.note_barriers} for the bench harness. *)

val set_domains_override : int option -> unit
(** Process-wide override of the default domain count ([--pdes N] in the
    bench driver); [None] restores the [MK_PDES] environment default. *)

val configured_domains : unit -> int
(** The override if set, else the [MK_PDES] environment variable, else 1. *)
