(** Timing wheel for near-future simulation events.

    Holds events due strictly less than {!window} ticks ahead of the
    current time, keyed by the same total (time, seq) order as {!Heap}.
    Scheduling and minimum-finding are amortized O(1), versus the heap's
    O(log n) sift — and short delays are the overwhelming majority of
    simulator events. The engine routes events here when they fit the
    horizon and into the heap otherwise; see Engine.schedule. *)

type 'a t

val window : int
(** The horizon: the wheel accepts times in [now, now + window). *)

val create : dummy:'a -> 'a t
(** [dummy] fills vacated payload slots so popped closures can be
    collected. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> now:int -> time:int -> seq:int -> 'a -> bool
(** Requires [now <= time < now + window]. Returns false (and stores
    nothing) if the target slot still holds entries for a different time —
    impossible under the engine's invariants, but checked so a caller bug
    degrades to heap order rather than corrupting the schedule. *)

val min_time : 'a t -> int
(** Earliest pending time. Requires the wheel to be non-empty. *)

val min_seq : 'a t -> int
(** Sequence number of the earliest pending event (ties on time are
    broken by seq, which is append order). Requires non-empty. *)

val pop_exn : 'a t -> 'a
(** Remove and return the (time, seq)-minimal event. *)
