(** Lightweight per-subsystem tracing built on [Logs].

    Each subsystem creates its own source once; tracing is off by default
    and enabled globally (e.g. by the CLI's [-v] flag). *)

type src

val make : string -> src
(** [make "urpc"] registers a log source named ["mk.urpc"]. *)

val enable : unit -> unit
(** Turn on Debug-level reporting to stderr for all mk sources. *)

val set_level : src -> Logs.level option -> unit
(** Set one source's level ([None] disables it). Messages below the level
    are discarded without formatting their arguments. *)

val debugf : src -> ('a, Format.formatter, unit, unit) format4 -> 'a
val infof : src -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** Per-(src, dst) core message counting, for dependency-driven placement.
    A recorder is opt-in per machine; when none is attached the cost on
    the send path is a single option check. *)
module Comm : sig
  type t

  val create : unit -> t

  val record : t -> src:int -> dst:int -> unit
  (** Count one message from core [src] to core [dst]. *)

  val snapshot : t -> (int * int * int) list
  (** [(src, dst, count)] triples, sorted ascending — the measured
      communication graph. *)

  val clear : t -> unit
end
