(** Shared-nothing domain pool for independent simulation instances.

    A pool shards a list of closures — each a self-contained simulation
    (its own engine, machine and result) — across [min (jobs, cores)]
    domains with an atomic work index, then merges results and captured
    output back in submission order. Because every job is shared-nothing
    and the merge is ordered, results and printed output are byte-identical
    to a serial run regardless of the job count.

    The pool is cooperative and nestable: a job may itself call {!run} to
    shard its inner sweep through the same pool. The submitter "helps" by
    claiming unstarted jobs of its own batch, then blocks until the batch
    completes, so nested submission never deadlocks — a waiting submitter
    can always run its own remaining jobs itself.

    Per-domain counters (simulated events, fused charges, GC words) are
    captured around each job on the domain that executed it and folded
    into the submitting domain's "foreign" cell by the ordered merge, so
    an enclosing measurement (the bench harness's [instrumented]) reads
    the same totals wherever the shards actually ran. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [min jobs (recommended_domain_count)] domains total:
    the calling domain participates as a submitter-helper, so [jobs - 1]
    worker domains are spawned. [jobs <= 1] spawns none: every {!run}
    executes inline, in order, on the caller — the serial and parallel
    paths are the same code, which is what guarantees byte-identity. *)

val size : t -> int
(** Number of domains that execute jobs (workers + the submitter). *)

val shutdown : t -> unit
(** Stop and join the worker domains. Must not be called while a batch is
    in flight. *)

val set_ambient : t option -> unit
(** Install the process-wide default pool used by {!run} when no explicit
    [?pool] is given (the bench driver sets it from [-j]). [None] (the
    default) makes {!run} execute inline. *)

val ambient : unit -> t option

val run : ?pool:t -> (unit -> 'a) list -> 'a list
(** Execute the closures — output-captured, in parallel when a pool is
    available — and return their results in submission order. Each job's
    captured output is re-emitted in submission order by the merge, and
    per-domain counter deltas of jobs that ran on other domains are folded
    into this domain's totals. If any job raised, the first failure (in
    submission order) is re-raised after all output has been replayed. *)

(** {1 Output capture}

    All bench output funnels through {!emit} so a pool can buffer a job's
    output on whatever domain runs it and replay it deterministically. *)

val emit : string -> unit
(** Write to the current domain's output sink: the innermost {!redirect_to}
    buffer, or stdout (flushed) when no redirection is active. *)

val redirect_to : Buffer.t -> (unit -> 'a) -> 'a
(** Run the closure with {!emit} appending to [buf]; restores the previous
    sink on exit (nesting-safe). *)

(** {1 Per-domain totals}

    Engine event counters and GC allocation counters for this domain,
    {e plus} everything absorbed from pool jobs this domain submitted that
    ran elsewhere. Measuring a delta of these around a call is therefore
    placement-independent. *)

val total_executed : unit -> int
val total_fused : unit -> int
val total_minor_words : unit -> float
val total_promoted_words : unit -> float
val total_major_collections : unit -> int

val absorb :
  ?executed:int -> ?fused:int -> ?minor:float -> ?promoted:float -> ?major:int -> unit -> unit
(** Fold counters produced on {e other} domains into this domain's foreign
    cell. The pool's ordered merge uses it internally; {!Pdes.exec} uses it
    for the worker-domain halves of a sharded window run, so an enclosing
    measurement reads the same totals wherever the shards executed. *)

val note_barriers : int -> unit
(** Record [n] PDES window barriers against this domain's totals. *)

val total_barriers : unit -> int
(** Window barriers executed by (or absorbed into) this domain. The bench
    harness reports the delta per run; 0 for non-PDES runs. *)

val note_shards : int -> unit
(** Record that a PDES run over [n] shards executed on this domain. Unlike
    the additive counters this is a high-water mark ([max]), so repeated
    sharded runs report the structure size, not a sum. *)

val total_shards : unit -> int
(** The shard high-water mark for the current scope (see {!with_shards});
    0 when nothing sharded. *)

val note_wire : batches:int -> msgs:int -> unit
(** Record wire-link coalescing against this domain's totals: [batches]
    window-sized handoff groups carrying [msgs] frames. [Machine_link]
    reports at its flush points; the counts describe the coalescable
    traffic and are identical whether batching is enabled or not. *)

val total_wire_batches : unit -> int
val total_wire_msgs : unit -> int
(** Wire handoff groups / frames recorded by (or absorbed into) this
    domain; the bench harness reports the delta per run. *)

val with_shards : (unit -> 'a) -> 'a * int
(** [with_shards f] runs [f] with the shard mark zeroed and returns the
    mark [f] reached (including marks absorbed from nested pool runs on
    other domains), folding it back into the enclosing scope's maximum.
    The bench harness wraps each bench in it for the per-entry [shards]
    field. *)
