(* Windowed conservative parallel discrete-event simulation.

   One logical simulation is split into [n_shards] shards, each with its
   own {!Engine.t} (and, at the hardware layer, its own machine covering a
   contiguous range of simulated cores). Shards only interact through
   timestamped cross-shard messages with a minimum latency of [lookahead]
   cycles — in the multikernel model that bound is physical: the cheapest
   cross-shard interaction is a cache-coherence or interconnect round trip
   whose cost is a function of the topology (see
   {!Topology.min_cross_latency}).

   Execution alternates window runs and exchange barriers:

   - exchange: deliver every message sent during the previous window into
     its destination shard's event queue, in (timestamp, src_core, seq)
     order so the destination engine's internal sequence numbers — and
     therefore its tie-breaking — are independent of which domain produced
     the messages, or how the previous window's shard runs interleaved;
   - window: [horizon <- tmin + lookahead] where [tmin] is the earliest
     pending event across all shards, then run every shard independently
     up to [horizon - 1]. Any message a shard sends is stamped at least
     [lookahead] after the event that sent it, hence at or after
     [horizon]: nothing sent during the window can affect the window, so
     the shards need no synchronization inside it.

   The same loop body runs whether the shards execute inline on the
   calling domain or across a team of worker domains; shard state is only
   ever touched by one domain per window and handed over at the barrier.
   A PDES run is therefore byte-identical for every domain count — the
   referee property the CI gate checks — and [domains = 1] doubles as the
   serial referee, exactly like the pool's [-j 1].

   The worker team is spawned per {!exec} rather than borrowed from
   {!Pool}: a pool's submitter-helper discipline assumes jobs are
   independent, but shard window jobs are *not* — they rendezvous at the
   barrier. A helper that claimed shard job 0 would block in its barrier
   wait, unable to claim shard jobs 1..3, and the batch would deadlock
   under pool contention. Dedicated domains make the rendezvous safe; the
   pool still sees the run's costs because {!exec} folds every worker's
   counters back through {!Pool.absorb} and reports its window count via
   {!Pool.note_barriers}. *)

type msg = {
  at : int;  (* absolute delivery time *)
  src_core : int;  (* simulated core that caused the send *)
  mseq : int;  (* per-source-shard sequence number *)
  fn : unit -> unit;  (* runs on the destination engine at [at] *)
}

(* A batch of frames from one sender stream, sharing one outbox entry:
   frame [i] delivers at [r_at.(i)] (non-decreasing) with sequence number
   [r_mseq0 + i]. The exchange barrier expands the run frame by frame in
   the same canonical (at, src_core, mseq) order individual {!send}s would
   have produced, so batching is invisible to the simulation. *)
type run = {
  r_src_core : int;
  r_mseq0 : int;  (* frame [i] carries mseq [r_mseq0 + i] *)
  r_n : int;
  r_at : int array;  (* per-frame delivery times, non-decreasing *)
  r_mk : int -> unit -> unit;  (* called once per frame at the barrier *)
}

type packet = Msg of msg | Run of run

type shard = {
  eng : Engine.t;
  buf : Buffer.t;  (* captured output, replayed in shard order *)
  outbox : packet list array;  (* per destination shard, newest first *)
  mutable send_seq : int;
  mutable flush : (unit -> unit) list;  (* registration order *)
  mutable err : (exn * Printexc.raw_backtrace) option;
}

type t = {
  shards : shard array;
  lookahead : int;
  mutable horizon : int;  (* exclusive upper bound of the last window *)
  mutable barriers : int;  (* windows executed, across exec calls *)
}

let create ~n_shards ~lookahead =
  if n_shards <= 0 then invalid_arg "Pdes.create: n_shards must be positive";
  if lookahead <= 0 then invalid_arg "Pdes.create: lookahead must be positive";
  {
    shards =
      Array.init n_shards (fun _ ->
          {
            eng = Engine.create ();
            buf = Buffer.create 256;
            outbox = Array.make n_shards [];
            send_seq = 0;
            flush = [];
            err = None;
          });
    lookahead;
    horizon = 0;
    barriers = 0;
  }

let n_shards t = Array.length t.shards
let lookahead t = t.lookahead
let barriers t = t.barriers

let engine t i =
  if i < 0 || i >= Array.length t.shards then invalid_arg "Pdes.engine: bad shard";
  t.shards.(i).eng

let spawn t ~shard ?name f = Engine.spawn (engine t shard) ?name f

(* Which shard the current domain is executing a window for; [send] uses
   it to pick the source outbox (and sequence counter) without threading
   the shard index through every hardware-layer hook. *)
let cur_key : (t * int) option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Which shard (of [t]) the calling domain is currently running a window
   for; [None] outside window execution (host/setup context). Lets glue
   code (e.g. {!Mk.Shard}) decide whether it is on a shard engine and, if
   so, which one, without threading the index everywhere. *)
let current t =
  match Domain.DLS.get cur_key with Some (t', i) when t' == t -> Some i | _ -> None

let send t ~dst ~src_core ~at fn =
  if dst < 0 || dst >= Array.length t.shards then invalid_arg "Pdes.send: bad dst shard";
  if at < t.horizon then
    invalid_arg
      (Printf.sprintf "Pdes.send: lookahead violation (at=%d < horizon=%d)" at t.horizon);
  (* Outside a window (setup before the first exchange) any outbox works —
     horizon is still 0 and the first exchange drains them all. *)
  let src =
    match Domain.DLS.get cur_key with Some (t', i) when t' == t -> i | _ -> 0
  in
  let s = t.shards.(src) in
  s.outbox.(dst) <- Msg { at; src_core; mseq = s.send_seq; fn } :: s.outbox.(dst);
  s.send_seq <- s.send_seq + 1

(* Queue a whole batch of frames from one sender stream as a single outbox
   entry, consuming [n] consecutive per-source sequence numbers. The
   source shard is explicit because the caller is typically a flush hook
   running at the exchange barrier, outside any window (where [cur_key]
   identifies no shard). [ats] is read until the next exchange completes —
   callers that buffer frames per window (and flush from {!add_flush}
   hooks) can hand over their live buffer without snapshotting, since the
   same exchange that runs the hook also consumes the run. *)
let send_run t ~dst ~src_shard ~src_core ~n ~ats mk =
  if dst < 0 || dst >= Array.length t.shards then invalid_arg "Pdes.send_run: bad dst shard";
  if src_shard < 0 || src_shard >= Array.length t.shards then
    invalid_arg "Pdes.send_run: bad src shard";
  if n < 1 || n > Array.length ats then invalid_arg "Pdes.send_run: bad frame count";
  if ats.(0) < t.horizon then
    invalid_arg
      (Printf.sprintf "Pdes.send_run: lookahead violation (at=%d < horizon=%d)" ats.(0)
         t.horizon);
  for i = 1 to n - 1 do
    if ats.(i) < ats.(i - 1) then
      invalid_arg "Pdes.send_run: frame times must be non-decreasing"
  done;
  let s = t.shards.(src_shard) in
  s.outbox.(dst) <-
    Run { r_src_core = src_core; r_mseq0 = s.send_seq; r_n = n; r_at = ats; r_mk = mk }
    :: s.outbox.(dst);
  s.send_seq <- s.send_seq + n

(* Register a hook that runs at the top of every exchange barrier (and so
   before outboxes are collected), in shard order then registration order
   — a deterministic point for senders that coalesce frames per window to
   hand them over via {!send_run}. *)
let add_flush t ~shard f =
  if shard < 0 || shard >= Array.length t.shards then invalid_arg "Pdes.add_flush: bad shard";
  let s = t.shards.(shard) in
  s.flush <- s.flush @ [ f ]

(* -- window execution -- *)

let run_shard t i ~until =
  let s = t.shards.(i) in
  let saved = Domain.DLS.get cur_key in
  Domain.DLS.set cur_key (Some (t, i));
  (match Pool.redirect_to s.buf (fun () -> Engine.run s.eng ~until ()) with
  | () -> ()
  | exception e -> s.err <- Some (e, Printexc.get_raw_backtrace ()));
  Domain.DLS.set cur_key saved

let compare_msg a b =
  let c = compare a.at b.at in
  if c <> 0 then c
  else
    let c = compare a.src_core b.src_core in
    if c <> 0 then c else compare a.mseq b.mseq

(* K-way merge of sorted singles and run cursors in (at, src_core, mseq)
   order: each run is internally sorted (non-decreasing [r_at], strictly
   increasing mseq), so advancing per-run cursors and always delivering
   the globally smallest key reproduces exactly the order one flat sort of
   the individual messages would have produced. *)
let deliver_merged eng singles runs =
  let k = Array.length runs in
  let pos = Array.make k 0 in
  let singles = ref singles in
  let exhausted = ref false in
  while not !exhausted do
    let bi = ref (-1) in
    for i = 0 to k - 1 do
      let r = runs.(i) in
      if pos.(i) < r.r_n then
        if !bi < 0 then bi := i
        else begin
          let b = runs.(!bi) in
          let ai = r.r_at.(pos.(i)) and ab = b.r_at.(pos.(!bi)) in
          if
            ai < ab
            || (ai = ab
               && (r.r_src_core < b.r_src_core
                  || (r.r_src_core = b.r_src_core
                     && r.r_mseq0 + pos.(i) < b.r_mseq0 + pos.(!bi))))
          then bi := i
        end
    done;
    let take_run i =
      let r = runs.(i) in
      let p = pos.(i) in
      Engine.schedule_at eng ~at:r.r_at.(p) (r.r_mk p);
      pos.(i) <- p + 1
    in
    match (!singles, !bi) with
    | [], -1 -> exhausted := true
    | m :: rest, -1 ->
      Engine.schedule_at eng ~at:m.at m.fn;
      singles := rest
    | [], i -> take_run i
    | m :: rest, i ->
      let r = runs.(i) in
      let p = pos.(i) in
      let ai = r.r_at.(p) in
      if
        m.at < ai
        || (m.at = ai
           && (m.src_core < r.r_src_core
              || (m.src_core = r.r_src_core && m.mseq < r.r_mseq0 + p)))
      then begin
        Engine.schedule_at eng ~at:m.at m.fn;
        singles := rest
      end
      else take_run i
  done

(* Deliver every pending cross-shard message. Flush hooks run first — in
   shard order, then registration order — so senders that coalesce frames
   per window hand them over before any outbox is collected. Per
   destination, messages from all source outboxes are merged in
   (at, src_core, mseq) order — a total order, since a core belongs to
   exactly one shard and that shard's [mseq] is strictly increasing — so
   the destination engine assigns its tie-breaking sequence numbers in an
   order independent of shard scheduling, and independent of whether
   frames traveled individually or as runs. *)
let exchange t =
  let n = Array.length t.shards in
  Array.iter
    (fun s ->
      match s.flush with [] -> () | hooks -> List.iter (fun f -> f ()) hooks)
    t.shards;
  for dst = 0 to n - 1 do
    let singles = ref [] in
    let runs = ref [] in
    for src = 0 to n - 1 do
      match t.shards.(src).outbox.(dst) with
      | [] -> ()
      | l ->
        List.iter
          (function
            | Msg m -> singles := m :: !singles
            | Run r -> runs := r :: !runs)
          l;
        t.shards.(src).outbox.(dst) <- []
    done;
    match (!singles, !runs) with
    | [], [] -> ()
    | l, [] ->
      let eng = t.shards.(dst).eng in
      List.iter
        (fun m -> Engine.schedule_at eng ~at:m.at m.fn)
        (List.sort compare_msg l)
    | l, rl ->
      deliver_merged t.shards.(dst).eng (List.sort compare_msg l) (Array.of_list rl)
  done

let global_min t =
  Array.fold_left
    (fun acc s ->
      match Engine.next_time s.eng with
      | None -> acc
      | Some nt -> ( match acc with None -> Some nt | Some a -> Some (min a nt)))
    None t.shards

let check_errors t =
  Array.iter
    (fun s ->
      match s.err with
      | Some (e, bt) ->
        s.err <- None;
        Printexc.raise_with_backtrace e bt
      | None -> ())
    t.shards

let finish t ~rounds =
  t.barriers <- t.barriers + rounds;
  Pool.note_barriers rounds;
  Pool.note_shards (Array.length t.shards);
  Array.iter
    (fun s ->
      Pool.emit (Buffer.contents s.buf);
      Buffer.clear s.buf)
    t.shards

(* -- worker team --

   Round-based SPMD: the main domain publishes a horizon and bumps the
   round counter; each worker runs its fixed subset of shards (shard [s]
   always runs on domain [s mod d], so a shard's output buffer and engine
   are touched by one domain only) and bumps the done counter; the main
   domain runs its own subset and spins until all workers report. All
   cross-domain handoffs are ordered by those atomics, which per the OCaml
   memory model also publish the plain shard state written before them.

   The waits are spin-then-block: a bounded busy-spin (cheap when a free
   hardware thread is available for every domain) falling back to a
   mutex/condvar sleep. Pure spinning melts down when the team is
   oversubscribed — e.g. 4 domains in a 1-CPU CI container, where each
   window would otherwise burn whole scheduler timeslices per waiter —
   while blocking costs only a wakeup. Rendezvous strategy never touches
   simulation state, so it cannot affect byte-identity. *)

let spin_budget = 2_000

(* Wait until [cond ()] holds: spin up to [spin_budget], then sleep on
   [cv]. Wakers flip the underlying atomic first, then broadcast under
   [mu]; re-checking under [mu] before sleeping closes the lost-wakeup
   window. *)
let wait_for ~mu ~cv cond =
  let spins = ref 0 in
  while not (cond ()) do
    if !spins < spin_budget then begin
      incr spins;
      Domain.cpu_relax ()
    end
    else begin
      Mutex.lock mu;
      while not (cond ()) do
        Condition.wait cv mu
      done;
      Mutex.unlock mu
    end
  done

let wake ~mu ~cv =
  Mutex.lock mu;
  Condition.broadcast cv;
  Mutex.unlock mu

type worker_total = {
  mutable w_executed : int;
  mutable w_fused : int;
  mutable w_minor : float;
  mutable w_promoted : float;
  mutable w_major : int;
}

let exec_team t ~domains:d =
  let n = Array.length t.shards in
  let round = Atomic.make 0 in
  let horizon_pub = Atomic.make 0 in
  let done_n = Atomic.make 0 in
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let fusion = Engine.fusion_enabled () in
  let totals =
    Array.init (d - 1) (fun _ ->
        { w_executed = 0; w_fused = 0; w_minor = 0.0; w_promoted = 0.0; w_major = 0 })
  in
  let worker w () =
    Engine.set_fusion fusion;
    let ev0 = Engine.domain_events_executed () and fu0 = Engine.domain_events_fused () in
    let g0 = Gc.quick_stat () in
    let my_round = ref 0 in
    let rec loop () =
      wait_for ~mu ~cv (fun () -> Atomic.get round <> !my_round);
      incr my_round;
      let h = Atomic.get horizon_pub in
      if h >= 0 then begin
        let i = ref w in
        while !i < n do
          run_shard t !i ~until:(h - 1);
          i := !i + d
        done;
        Atomic.incr done_n;
        wake ~mu ~cv;
        loop ()
      end
    in
    loop ();
    let g1 = Gc.quick_stat () in
    let tot = totals.(w - 1) in
    tot.w_executed <- Engine.domain_events_executed () - ev0;
    tot.w_fused <- Engine.domain_events_fused () - fu0;
    tot.w_minor <- g1.Gc.minor_words -. g0.Gc.minor_words;
    tot.w_promoted <- g1.Gc.promoted_words -. g0.Gc.promoted_words;
    tot.w_major <- g1.Gc.major_collections - g0.Gc.major_collections
  in
  let workers = List.init (d - 1) (fun w -> Domain.spawn (worker (w + 1))) in
  let quit () =
    Atomic.set horizon_pub (-1);
    Atomic.incr round;
    wake ~mu ~cv;
    List.iter Domain.join workers;
    Array.iter
      (fun w ->
        Pool.absorb ~executed:w.w_executed ~fused:w.w_fused ~minor:w.w_minor
          ~promoted:w.w_promoted ~major:w.w_major ())
      totals
  in
  let rounds = ref 0 in
  let rec loop () =
    exchange t;
    match global_min t with
    | None -> quit ()
    | Some tmin ->
      t.horizon <- tmin + t.lookahead;
      Atomic.set done_n 0;
      Atomic.set horizon_pub t.horizon;
      Atomic.incr round;
      wake ~mu ~cv;
      let i = ref 0 in
      while !i < n do
        run_shard t !i ~until:(t.horizon - 1);
        i := !i + d
      done;
      wait_for ~mu ~cv (fun () -> Atomic.get done_n >= d - 1);
      incr rounds;
      if Array.exists (fun s -> s.err <> None) t.shards then begin
        quit ();
        finish t ~rounds:!rounds;
        check_errors t
      end
      else loop ()
  in
  loop ();
  finish t ~rounds:!rounds;
  check_errors t

let exec_serial t =
  let n = Array.length t.shards in
  let rounds = ref 0 in
  let rec loop () =
    exchange t;
    match global_min t with
    | None -> ()
    | Some tmin ->
      t.horizon <- tmin + t.lookahead;
      for i = 0 to n - 1 do
        run_shard t i ~until:(t.horizon - 1)
      done;
      incr rounds;
      if Array.exists (fun s -> s.err <> None) t.shards then begin
        finish t ~rounds:!rounds;
        check_errors t
      end
      else loop ()
  in
  loop ();
  finish t ~rounds:!rounds;
  check_errors t

(* -- domain-count configuration (MK_PDES env, --pdes flag) -- *)

let domains_override = ref None
let set_domains_override d = domains_override := d

let configured_domains () =
  match !domains_override with
  | Some d -> max 1 d
  | None -> (
    match Sys.getenv_opt "MK_PDES" with
    | None -> 1
    | Some s -> (
      match int_of_string_opt (String.trim s) with Some d when d > 0 -> d | _ -> 1))

let exec ?domains t =
  let d = match domains with Some d -> max 1 d | None -> configured_domains () in
  let d = min d (Array.length t.shards) in
  if d <= 1 then exec_serial t else exec_team t ~domains:d
