(** e1000-style gigabit NIC device model (§5.4).

    A rate-limited (1 Gb/s) device with DMA receive/transmit rings in
    simulated memory. Received frames are DMA'd into ring buffers (cache
    traffic charged), then handed to the driver task, which runs the
    driver's portion of the stack on its core. Transmit reads the frame
    from memory, occupies the wire for its serialization time, and hands
    the frame to whatever is attached to the wire (the load generator). *)

type t

val create :
  Mk_hw.Machine.t -> driver_core:int -> ?gbps:float -> ?ring_slots:int -> unit -> t

val netif : t -> Netif.t
(** The interface a stack binds to; its [send] is the NIC's transmit. *)

val inject : t -> Pbuf.t -> unit
(** A frame arrives from the wire. Drops it if the receive ring is full
    (counted), else DMA + deliver to the driver. Task context required. *)

val attach_wire : t -> (Pbuf.t -> unit) -> unit
(** Where transmitted frames go (the traffic sink / load generator). *)

val wire_cycles : t -> bytes:int -> int
(** Serialization delay of a frame on the wire at the configured rate. *)

val rx_dropped : t -> int
(** Frames dropped because the receive ring was full. *)

val rx_lost : t -> int
(** Frames lost to injected wire faults (fault subsystem). *)

val tx_count : t -> int
val rx_count : t -> int
