open Mk_sim
open Mk_hw

(* Per-frame driver/device interaction costs. *)
let descriptor_cost = 120  (* ring descriptor read/write *)

type t = {
  m : Machine.t;
  driver_core : int;
  cycles_per_byte : float;
  ring_slots : int;
  rx_ring : Pbuf.t Sync.Mailbox.t;
  rx_wire : Resource.t;
  tx_wire : Resource.t;
  mutable nif : Netif.t option;
  mutable on_wire : Pbuf.t -> unit;
  mutable dropped : int;
  mutable lost : int;  (* injected packet loss (vs ring-overflow drops) *)
  mutable rx_n : int;
  mutable tx_n : int;
}

let wire_cycles t ~bytes = int_of_float (ceil (float_of_int bytes *. t.cycles_per_byte))

(* Driver writes the descriptor; device DMA-reads the frame and serializes
   it onto the wire. *)
let transmit t p =
  Machine.compute t.m ~core:t.driver_core descriptor_cost;
  Pbuf.touch p t.m ~core:t.driver_core ~write:false;
  let tx_cycles = wire_cycles t ~bytes:(Pbuf.len p) in
  let done_at = Resource.reserve t.tx_wire tx_cycles in
  t.tx_n <- t.tx_n + 1;
  Engine.spawn_ ~name:"nic.tx" (fun () ->
      Engine.wait_until done_at;
      t.on_wire p)

let create m ~driver_core ?(gbps = 1.0) ?(ring_slots = 256) () =
  let plat = m.Machine.plat in
  (* cycles/byte = (cycles/s) / (bytes/s) *)
  let cycles_per_byte = plat.Platform.ghz *. 1e9 /. (gbps *. 125_000_000.0) in
  let t =
    {
      m;
      driver_core;
      cycles_per_byte;
      ring_slots;
      rx_ring = Sync.Mailbox.create ();
      rx_wire = Resource.create ~name:"nic.rx_wire" ();
      tx_wire = Resource.create ~name:"nic.tx_wire" ();
      nif = None;
      on_wire = (fun _ -> ());
      dropped = 0;
      lost = 0;
      rx_n = 0;
      tx_n = 0;
    }
  in
  let nif =
    Netif.create ~name:"e1000" ~mac:(Ethernet.mac_of_core driver_core)
      ~send:(fun p -> transmit t p)
  in
  t.nif <- Some nif;
  (* The driver task: pulls DMA-completed frames off the ring and runs the
     receive path (stack input) on the driver core. *)
  Engine.spawn m.Machine.eng ~name:"e1000.driver" (fun () ->
      let rec loop () =
        let p = Sync.Mailbox.recv t.rx_ring in
        Machine.compute t.m ~core:t.driver_core descriptor_cost;
        Netif.deliver nif p;
        loop ()
      in
      loop ());
  t

let netif t = Option.get t.nif

let inject t p =
  (* Fault point: injected wire loss — the frame never reaches the ring. *)
  if Mk_fault.Injector.armed t.m.Machine.fault && Mk_fault.Injector.nic_drop t.m.Machine.fault
  then t.lost <- t.lost + 1
  else if Sync.Mailbox.length t.rx_ring >= t.ring_slots then t.dropped <- t.dropped + 1
  else begin
    (* Wire serialization, then DMA into a ring buffer (writes the frame's
       lines into memory, invalidating any cached copies). *)
    let rx_cycles = wire_cycles t ~bytes:(Pbuf.len p) in
    let done_at = Resource.reserve t.rx_wire rx_cycles in
    Engine.spawn_ ~name:"nic.rx" (fun () ->
        Engine.wait_until done_at;
        Pbuf.touch p t.m ~core:t.driver_core ~write:true;
        t.rx_n <- t.rx_n + 1;
        Sync.Mailbox.send t.rx_ring p)
  end

let attach_wire t f = t.on_wire <- f

let rx_dropped t = t.dropped
let rx_lost t = t.lost
let tx_count t = t.tx_n
let rx_count t = t.rx_n
