(* Inter-machine point-to-point link over PDES shards.

   Models the wire between two independently-simulated machines (each a
   PDES shard with its own engine): a FIFO serialization resource on the
   sending side paced by the configured bandwidth, plus a fixed
   propagation delay of at least the executor's lookahead. Delivery
   crosses the shard cut as a timestamped [Pdes.send] message, so the
   link is exactly the physical justification for the conservative
   window: nothing a machine sends can affect another machine sooner than
   the wire latency. *)

open Mk_sim

type 'a t = {
  pdes : Pdes.t;
  dst_shard : int;
  src_id : int;  (* canonical merge key: unique per sending endpoint *)
  wire : Resource.t;  (* tx serialization on the sender's engine *)
  cycles_per_byte : float;
  latency : int;  (* propagation, >= Pdes.lookahead *)
  mutable rx : bytes:int -> 'a -> unit;
  mutable tx_frames : int;
  mutable tx_bytes : int;
}

let create pdes ~dst_shard ~src_id ~ghz ?(gbps = 10.0) ~latency () =
  if latency < Pdes.lookahead pdes then
    invalid_arg "Machine_link.create: latency below the executor's lookahead";
  if gbps <= 0.0 then invalid_arg "Machine_link.create: gbps";
  {
    pdes;
    dst_shard;
    src_id;
    wire = Resource.create ~name:"wire" ();
    (* bytes -> cycles: 8 bits/byte at [gbps] Gbit/s is [8 / gbps] ns,
       times [ghz] cycles/ns. *)
    cycles_per_byte = 8.0 *. ghz /. gbps;
    latency;
    rx = (fun ~bytes:_ _ -> ());
    tx_frames = 0;
    tx_bytes = 0;
  }

let set_rx t f = t.rx <- f

let send t ~bytes msg =
  (* Task context on the sending machine's engine. Flush any banked
     latency charge first: the wire reservation below reads the clock, and
     the timestamp must not depend on the fusion mode. *)
  Engine.flush_charge ();
  let ser = int_of_float (ceil (float_of_int bytes *. t.cycles_per_byte)) in
  (* Posted transmit (NIC tx queue): the sender does not block, but the
     frame's departure queues behind everything already accepted by the
     wire, so delivery time reflects serialization plus queueing. *)
  let departed = Resource.reserve t.wire (Stdlib.max 1 ser) in
  t.tx_frames <- t.tx_frames + 1;
  t.tx_bytes <- t.tx_bytes + bytes;
  let rx = t.rx in
  Pdes.send t.pdes ~dst:t.dst_shard ~src_core:t.src_id ~at:(departed + t.latency)
    (fun () -> rx ~bytes msg)

let tx_frames t = t.tx_frames
let tx_bytes t = t.tx_bytes
let latency t = t.latency
