(* Inter-machine point-to-point link over PDES shards.

   Models the wire between two independently-simulated machines (each a
   PDES shard with its own engine): a FIFO serialization resource on the
   sending side paced by the configured bandwidth, plus a fixed
   propagation delay of at least the executor's lookahead. Delivery
   crosses the shard cut as a timestamped [Pdes.send] message, so the
   link is exactly the physical justification for the conservative
   window: nothing a machine sends can affect another machine sooner than
   the wire latency.

   Wire batching: per-frame [Pdes.send] pays a record, a closure and a
   share of the exchange sort for every frame, which dominates host cost
   at cluster request rates. Instead, frames departing inside the same
   PDES window are buffered per link and handed over at the next exchange
   barrier as one [Pdes.send_run] carrying every frame's own arrival
   timestamp; the barrier expands the run in canonical order, so the
   simulation is byte-identical to unbatched sends (MK_NO_WIRE_BATCH=1,
   refereed in CI). Buffered frames cannot be lost: the executor runs the
   flush hook at the top of every exchange, including the final one. *)

open Mk_sim

type 'a t = {
  pdes : Pdes.t;
  dst_shard : int;
  src_shard : int;  (* outbox (and flush-hook) home for batched frames *)
  src_id : int;  (* canonical merge key: unique per sending endpoint *)
  wire : Resource.t;  (* tx serialization on the sender's engine *)
  cycles_per_byte : float;
  latency : int;  (* propagation, >= Pdes.lookahead *)
  batching : bool;  (* sampled at create time *)
  mutable rx : bytes:int -> 'a -> unit;
  mutable tx_frames : int;
  mutable tx_bytes : int;
  mutable tx_batches : int;  (* coalescable flush groups, both modes *)
  mutable frames_at_flush : int;  (* tx_frames at the last flush *)
  (* Current window's frame buffer (batched mode only). [msg_buf] starts
     empty and is seeded from the first payload — the type has no dummy. *)
  mutable n_buf : int;
  mutable at_buf : int array;
  mutable bytes_buf : int array;
  mutable msg_buf : 'a array;
}

(* Referee switch: MK_NO_WIRE_BATCH=1 (or [set_batching_override
   (Some false)]) makes every frame an individual [Pdes.send], so CI can
   byte-diff batched vs unbatched cluster output. Sampled when a link is
   created, so one run never mixes modes on a link. *)
let batching_default =
  match Sys.getenv_opt "MK_NO_WIRE_BATCH" with
  | None | Some "" | Some "0" -> true
  | Some _ -> false

let batching_override = ref None
let set_batching_override b = batching_override := b

let batching_enabled () =
  match !batching_override with Some b -> b | None -> batching_default

let flush t =
  (* Batch bookkeeping is identical in both modes: a "batch" is the group
     of frames the link accepted since the previous barrier — what
     batching coalesces, counted whether or not it actually did. *)
  let frames = t.tx_frames - t.frames_at_flush in
  if frames > 0 then begin
    t.tx_batches <- t.tx_batches + 1;
    t.frames_at_flush <- t.tx_frames;
    Pool.note_wire ~batches:1 ~msgs:frames
  end;
  let n = t.n_buf in
  if n > 0 then begin
    t.n_buf <- 0;
    let rx = t.rx in
    let bytes_buf = t.bytes_buf and msg_buf = t.msg_buf in
    (* [at_buf] is handed over live: the same exchange barrier that runs
       this hook consumes the run, before the next window can refill it. *)
    Pdes.send_run t.pdes ~dst:t.dst_shard ~src_shard:t.src_shard ~src_core:t.src_id ~n
      ~ats:t.at_buf (fun i ->
        let b = bytes_buf.(i) and m = msg_buf.(i) in
        fun () -> rx ~bytes:b m)
  end

let create pdes ~dst_shard ~src_shard ~src_id ~ghz ?(gbps = 10.0) ~latency () =
  if latency < Pdes.lookahead pdes then
    invalid_arg "Machine_link.create: latency below the executor's lookahead";
  if gbps <= 0.0 then invalid_arg "Machine_link.create: gbps";
  let t =
    {
      pdes;
      dst_shard;
      src_shard;
      src_id;
      wire = Resource.create ~name:"wire" ();
      (* bytes -> cycles: 8 bits/byte at [gbps] Gbit/s is [8 / gbps] ns,
         times [ghz] cycles/ns. *)
      cycles_per_byte = 8.0 *. ghz /. gbps;
      latency;
      batching = batching_enabled ();
      rx = (fun ~bytes:_ _ -> ());
      tx_frames = 0;
      tx_bytes = 0;
      tx_batches = 0;
      frames_at_flush = 0;
      n_buf = 0;
      at_buf = [||];
      bytes_buf = [||];
      msg_buf = [||];
    }
  in
  (* The hook runs in both modes so [tx_batches] (and the Pool wire
     counters) never depend on the referee switch. *)
  Pdes.add_flush pdes ~shard:src_shard (fun () -> flush t);
  t

let set_rx t f = t.rx <- f

let push t ~at ~bytes msg =
  let n = t.n_buf in
  if n >= Array.length t.at_buf then begin
    let cap = Stdlib.max 16 (2 * Array.length t.at_buf) in
    let grow a = Array.append a (Array.make (cap - Array.length a) 0) in
    t.at_buf <- grow t.at_buf;
    t.bytes_buf <- grow t.bytes_buf;
    (* Seed fresh value slots with [msg]: the payload type has no dummy,
       and every slot at or past [n] is dead until overwritten. *)
    let old = t.msg_buf in
    let m = Array.make cap msg in
    Array.blit old 0 m 0 (Array.length old);
    t.msg_buf <- m
  end;
  t.at_buf.(n) <- at;
  t.bytes_buf.(n) <- bytes;
  t.msg_buf.(n) <- msg;
  t.n_buf <- n + 1

let send t ~bytes msg =
  (* Task context on the sending machine's engine. Flush any banked
     latency charge first: the wire reservation below reads the clock, and
     the timestamp must not depend on the fusion mode. *)
  Engine.flush_charge ();
  let ser = int_of_float (ceil (float_of_int bytes *. t.cycles_per_byte)) in
  (* Posted transmit (NIC tx queue): the sender does not block, but the
     frame's departure queues behind everything already accepted by the
     wire, so delivery time reflects serialization plus queueing. *)
  let departed = Resource.reserve t.wire (Stdlib.max 1 ser) in
  t.tx_frames <- t.tx_frames + 1;
  t.tx_bytes <- t.tx_bytes + bytes;
  let at = departed + t.latency in
  if t.batching then push t ~at ~bytes msg
  else begin
    let rx = t.rx in
    Pdes.send t.pdes ~dst:t.dst_shard ~src_core:t.src_id ~at (fun () -> rx ~bytes msg)
  end

let tx_frames t = t.tx_frames
let tx_bytes t = t.tx_bytes
let tx_batches t = t.tx_batches
let latency t = t.latency
