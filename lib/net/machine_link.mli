(** Inter-machine link between two PDES shards.

    The cluster subsystem's wire: each simulated machine is a PDES shard,
    and a link carries typed frames from one shard's engine to another
    with bandwidth-paced serialization (a FIFO {!Mk_sim.Resource.t} on the
    sending side) plus a fixed propagation latency. The latency must be at
    least the executor's lookahead — the physical bound that makes
    conservative windows sound — and delivery is a canonical
    {!Mk_sim.Pdes.send} message, so cluster runs are byte-identical at any
    domain count.

    Frames departing inside the same PDES window are coalesced into one
    {!Mk_sim.Pdes.send_run} batch per link, handed over by a flush hook at
    the exchange barrier; every frame keeps its own arrival timestamp and
    the barrier expands the batch in canonical merge order, so batching
    changes host cost only, never simulated output (refereed against
    [MK_NO_WIRE_BATCH=1] in CI).

    One [t] is one direction; build a pair for a full-duplex wire. *)

type 'a t

val create :
  Mk_sim.Pdes.t ->
  dst_shard:int ->
  src_shard:int ->
  src_id:int ->
  ghz:float ->
  ?gbps:float ->
  latency:int ->
  unit ->
  'a t
(** [src_shard] is the sending endpoint's shard — where buffered frames
    live and where the flush hook is registered. [src_id] is the
    canonical merge key for this endpoint's messages — give every link
    endpoint in a cluster a distinct id. [ghz] converts bytes to cycles
    at [gbps] (default 10.0) Gbit/s; [latency] is the one-way propagation
    delay in cycles. Raises [Invalid_argument] if [latency] is below the
    executor's lookahead. *)

val set_rx : 'a t -> (bytes:int -> 'a -> unit) -> unit
(** Receive handler, run on the destination shard's engine at delivery
    time, outside any task context: it may mutate state, spawn tasks and
    send on other links' queues via [Engine.spawn], but must not perform
    task effects (see {!Mk_sim.Pdes.send}). *)

val send : 'a t -> bytes:int -> 'a -> unit
(** Transmit a frame of [bytes] payload. Must run in a task on the
    {e sending} machine's engine; the sender does not block (posted
    transmit), but the frame serializes FIFO behind frames already
    accepted, so delivery is
    [departure (serialization + queueing) + latency]. *)

val tx_frames : _ t -> int
val tx_bytes : _ t -> int

val tx_batches : _ t -> int
(** Coalescable flush groups this link produced: the number of exchange
    barriers at which the link had accepted at least one frame since the
    previous barrier. Counted identically with batching enabled or
    disabled (it describes the traffic shape, not the transport), so
    referee runs agree; [tx_frames / tx_batches] is the realized
    frames-per-batch ratio. *)

val latency : _ t -> int

val set_batching_override : bool option -> unit
(** Process-wide override of wire batching, sampled when a link is
    created: [Some false] forces per-frame sends (the referee mode),
    [Some true] forces batching, [None] restores the [MK_NO_WIRE_BATCH]
    environment default (batching on unless the variable is set to a
    non-empty value other than ["0"]). *)

val batching_enabled : unit -> bool
(** The batching mode a link created now would sample. *)
