(* Sharded OS boots under PDES window execution: the simulated results
   must be byte-identical however many OCaml domains execute the windows
   (MK_PDES/--pdes pick *placement* only — the sharded structure, and
   hence every number, is fixed at boot). Each scenario returns a pure
   trace of simulated times; the trace is computed serially (1 domain)
   and re-computed on 2/4-domain teams and must compare equal.

   Also here: the boot-time latency-measurement policies — the default
   [Representative] probing must produce dramatically fewer events than
   the quadratic [Exhaustive] ping storm on a big synthetic machine. *)

open Mk_sim
open Mk_hw
open Mk
open Test_util

(* Force the PDES domain count for the duration of [f], shadowing any
   ambient MK_PDES (so the suite itself behaves the same under the CI
   referee's env). *)
let with_domains d f =
  Pdes.set_domains_override (Some d);
  Fun.protect ~finally:(fun () -> Pdes.set_domains_override None) f

(* -- scenarios ------------------------------------------------------- *)

(* Spawn a domain spanning every core (dispatcher announce fan crosses
   all shards), then a map/unmap from core 0: Figure 7's full LRPC +
   page-table + multicast-shootdown path over the sharded monitors. *)
let spawn_unmap_trace ~shards plat () =
  let os = Os.boot ~shards ~measure_latencies:Os.No_measure plat in
  Os.run os (fun () ->
      let cores = List.init (Platform.n_cores plat) Fun.id in
      let t0 = Engine.now_ () in
      let dom = Os.spawn_domain os ~name:"pdes.dom" ~cores in
      let t_spawn = Engine.now_ () - t0 in
      let vaddr = 0x4000_0000 in
      (match Os.alloc_map_frame os dom ~core:0 ~vaddr ~bytes:4096 with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "map failed");
      let t1 = Engine.now_ () in
      (match Os.unmap os dom ~core:0 ~vaddr ~bytes:4096 with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "unmap failed");
      (t_spawn, Engine.now_ () - t1, Engine.now_ ()))

(* Shootdown storm: every core maps its own frame, then all unmap in
   sequence — back-to-back multicasts with different roots, so fan-out,
   ack aggregation and cross-shard wire traffic overlap shard cuts in
   every direction. *)
let storm_trace ~shards plat () =
  let os = Os.boot ~shards ~measure_latencies:Os.No_measure plat in
  Os.run os (fun () ->
      let cores = List.init (Platform.n_cores plat) Fun.id in
      let dom = Os.spawn_domain os ~name:"pdes.storm" ~cores in
      List.iter
        (fun c ->
          match
            Os.alloc_map_frame os dom ~core:c
              ~vaddr:(0x4000_0000 + (c * 0x10000))
              ~bytes:8192
          with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "map failed")
        cores;
      let laps =
        List.map
          (fun c ->
            let t = Engine.now_ () in
            (match
               Os.unmap os dom ~core:c
                 ~vaddr:(0x4000_0000 + (c * 0x10000))
                 ~bytes:8192
             with
            | Ok () -> ()
            | Error _ -> Alcotest.fail "unmap failed");
            Engine.now_ () - t)
          cores
      in
      (laps, Engine.now_ ()))

(* -- byte-identity across domain counts ------------------------------ *)

let check_same name reference got = check_bool name true (got = reference)

let test_spawn_unmap_2shards () =
  let tr = spawn_unmap_trace ~shards:2 Platform.amd_4x4 in
  let reference = with_domains 1 tr in
  check_same "2 shards, 2 domains" reference (with_domains 2 tr)

let test_spawn_unmap_4shards () =
  let tr = spawn_unmap_trace ~shards:4 Platform.amd_4x4 in
  let reference = with_domains 1 tr in
  check_same "4 shards, 2 domains" reference (with_domains 2 tr);
  check_same "4 shards, 4 domains" reference (with_domains 4 tr)

let test_storm () =
  let tr = storm_trace ~shards:4 Platform.amd_4x4 in
  let reference = with_domains 1 tr in
  check_same "storm, 2 domains" reference (with_domains 2 tr);
  check_same "storm, 4 domains" reference (with_domains 4 tr)

(* A full chaos seed — sharded boot, per-shard fault injectors, failure
   detection, service failover, goodput — is the heaviest cross-shard
   workload in the tree; its whole result record must not depend on the
   domain count. *)
let test_chaos_seed () =
  let seed = 3 in
  let reference = with_domains 1 (fun () -> Mk_benches.Chaos.run_seed seed) in
  List.iter
    (fun d ->
      check_same
        (Printf.sprintf "chaos seed %d, %d domains" seed d)
        reference
        (with_domains d (fun () -> Mk_benches.Chaos.run_seed seed)))
    [ 2; 4 ]

(* Any legal (platform, shard count, domain count) triple agrees with its
   own serial execution. *)
let prop_any_cut =
  qtest ~count:8 "random (shards, domains) matches serial"
    QCheck2.Gen.(
      pair (oneofl [ Platform.amd_2x2; Platform.amd_4x4 ]) (pair (int_range 1 4) (int_range 1 4)))
    (fun (plat, (s, d)) ->
      let s = 1 + ((s - 1) mod plat.Platform.n_packages) in
      let tr = spawn_unmap_trace ~shards:s plat in
      with_domains 1 tr = with_domains d tr)

(* -- boot-time latency measurement ------------------------------------ *)

(* 256-core synthetic boot: [Representative] probes one pair per latency
   class and derives the rest from topology, so it must cost a small
   fraction of [Exhaustive]'s n*(n-1) ping storm — and both must agree on
   every derived fact. *)
let test_representative_vs_exhaustive () =
  let plat = Platform.synthetic_mesh ~packages:64 ~cores_per_package:4 in
  let events measure =
    let ev0 = Pool.total_executed () in
    let os = Os.boot ~measure_latencies:measure plat in
    (Pool.total_executed () - ev0, os)
  in
  let ev_rep, os_rep = events Os.Representative in
  let ev_exh, os_exh = events Os.Exhaustive in
  check_bool "representative boot is far cheaper" true (ev_rep * 4 < ev_exh);
  (* Spot-check fact agreement across the latency classes. *)
  List.iter
    (fun (src, dst) ->
      check_int
        (Printf.sprintf "latency %d->%d agrees" src dst)
        (Os.latency os_exh ~src ~dst)
        (Os.latency os_rep ~src ~dst))
    [ (0, 1); (0, 3); (0, 4); (0, 255); (128, 4); (255, 0) ]

let suite =
  ( "os-pdes",
    [
      tc "spawn+unmap identical over 2 shards" test_spawn_unmap_2shards;
      tc "spawn+unmap identical over 4 shards" test_spawn_unmap_4shards;
      tc "shootdown storm identical (4 shards)" test_storm;
      tc "chaos seed identical at any domain count" test_chaos_seed;
      prop_any_cut;
      tc "representative vs exhaustive boot" test_representative_vs_exhaustive;
    ] )
