open Mk_hw
open Mk
open Test_util

(* ---- Memory server ---- *)

let test_alloc_local () =
  run_os (fun os ->
      let mm = Os.mm os ~core:1 in
      check_int "core" 1 (Mm.core mm);
      let before = Mm.free_bytes mm in
      match Mm.alloc_ram mm ~bytes:8192 with
      | Ok c ->
        check_bool "RAM cap" true (c.Cap.otype = Cap.RAM);
        check_int "accounted" (before - 8192) (Mm.free_bytes mm)
      | Error e -> Alcotest.fail (Types.error_to_string e))

let test_alloc_frame () =
  run_os (fun os ->
      match Mm.alloc_frame (Os.mm os ~core:0) ~bytes:4096 with
      | Ok f -> check_bool "frame" true (f.Cap.otype = Cap.Frame)
      | Error e -> Alcotest.fail (Types.error_to_string e))

let test_borrowing () =
  (* Exhaust core 0's pool; the next allocation borrows from a peer. *)
  let os = Os.boot ~measure_latencies:Os.No_measure ~mem_per_core:65536 Platform.amd_2x2 in
  Os.run os (fun () ->
      let mm0 = Os.mm os ~core:0 in
      (match Mm.alloc_ram mm0 ~bytes:65536 with
       | Ok _ -> ()
       | Error e -> Alcotest.fail (Types.error_to_string e));
      check_int "pool dry" 0 (Mm.free_bytes mm0);
      match Mm.alloc_ram mm0 ~bytes:4096 with
      | Ok c ->
        check_bool "borrowed cap present locally" true
          (Cap.Db.mem (Cpu_driver.capdb (Os.driver os ~core:0)) c)
      | Error e -> Alcotest.fail ("borrow failed: " ^ Types.error_to_string e))

let test_bad_alloc () =
  run_os (fun os ->
      match Mm.alloc_ram (Os.mm os ~core:0) ~bytes:0 with
      | Error (Types.Err_invalid_args _) -> ()
      | _ -> Alcotest.fail "zero alloc should fail")

(* ---- Vspace ---- *)

let test_map_touch_unmap () =
  run_os (fun os ->
      let m = Os.machine os in
      let dom = Os.spawn_domain os ~name:"vtest" ~cores:[ 0; 1; 2; 3 ] in
      let vs = Dom.vspace dom in
      let vaddr = 0x40000 in
      (match Os.alloc_map_frame os dom ~core:0 ~vaddr ~bytes:Types.page_size with
       | Ok _ -> ()
       | Error e -> Alcotest.fail (Types.error_to_string e));
      check_bool "mapped" true (Vspace.is_mapped vs ~vaddr);
      check_bool "writable" true (Vspace.writable vs ~vaddr);
      (* Touching fills the TLB; second touch is a TLB hit (free). *)
      (match Vspace.touch vs ~core:2 ~vaddr with Ok () -> () | Error _ -> Alcotest.fail "touch");
      check_bool "tlb filled" true
        (Tlb.mem m.Machine.tlbs.(2) ~vpage:(Types.vpage_of_vaddr vaddr));
      (* Unmap shoots down every core. *)
      List.iter (fun c -> ignore (Vspace.touch vs ~core:c ~vaddr)) [ 0; 1; 3 ];
      (match Os.unmap os dom ~core:0 ~vaddr ~bytes:Types.page_size with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Types.error_to_string e));
      check_bool "unmapped" false (Vspace.is_mapped vs ~vaddr);
      Array.iter
        (fun tlb ->
          check_bool "no stale TLB entry" false
            (Tlb.mem tlb ~vpage:(Types.vpage_of_vaddr vaddr)))
        m.Machine.tlbs;
      match Vspace.touch vs ~core:0 ~vaddr with
      | Error Types.Err_not_mapped -> ()
      | _ -> Alcotest.fail "touch after unmap should fault")

let test_protect_clears_tlbs () =
  run_os (fun os ->
      let m = Os.machine os in
      let dom = Os.spawn_domain os ~name:"ptest" ~cores:[ 0; 1; 2; 3 ] in
      let vs = Dom.vspace dom in
      let vaddr = 0x50000 in
      (match Os.alloc_map_frame os dom ~core:0 ~vaddr ~bytes:Types.page_size with
       | Ok _ -> ()
       | Error e -> Alcotest.fail (Types.error_to_string e));
      List.iter (fun c -> ignore (Vspace.touch vs ~core:c ~vaddr)) [ 0; 1; 2; 3 ];
      (match Os.protect os dom ~core:1 ~vaddr ~bytes:Types.page_size ~writable:false with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Types.error_to_string e));
      check_bool "still mapped" true (Vspace.is_mapped vs ~vaddr);
      check_bool "read only now" false (Vspace.writable vs ~vaddr);
      Array.iter
        (fun tlb ->
          check_bool "stale rights flushed" false
            (Tlb.mem tlb ~vpage:(Types.vpage_of_vaddr vaddr)))
        m.Machine.tlbs)

let test_double_map_rejected () =
  run_os (fun os ->
      let dom = Os.spawn_domain os ~name:"dtest" ~cores:[ 0 ] in
      let vaddr = 0x60000 in
      (match Os.alloc_map_frame os dom ~core:0 ~vaddr ~bytes:Types.page_size with
       | Ok _ -> ()
       | Error e -> Alcotest.fail (Types.error_to_string e));
      match Os.alloc_map_frame os dom ~core:0 ~vaddr ~bytes:Types.page_size with
      | Error Types.Err_already_mapped -> ()
      | _ -> Alcotest.fail "double map should be rejected")

let test_map_requires_frame () =
  run_os (fun os ->
      let dom = Os.spawn_domain os ~name:"ftest" ~cores:[ 0 ] in
      let mm = Os.mm os ~core:0 in
      let ram = Result.get_ok (Mm.alloc_ram mm ~bytes:Types.page_size) in
      match
        Vspace.map (Dom.vspace dom) ~driver:(Os.driver os ~core:0) ~vaddr:0x70000
          ~frame:ram ~writable:true
      with
      | Error (Types.Err_cap_type _) -> ()
      | _ -> Alcotest.fail "mapping raw RAM should be rejected")

let test_unmap_unmapped () =
  run_os (fun os ->
      let dom = Os.spawn_domain os ~name:"utest" ~cores:[ 0 ] in
      match Os.unmap os dom ~core:0 ~vaddr:0xdead000 ~bytes:Types.page_size with
      | Error Types.Err_not_mapped -> ()
      | _ -> Alcotest.fail "unmapping nothing should fail")

let suite =
  ( "mm-vspace",
    [
      tc "mm alloc local" test_alloc_local;
      tc "mm alloc frame" test_alloc_frame;
      tc "mm borrowing" test_borrowing;
      tc "mm bad alloc" test_bad_alloc;
      tc "map/touch/unmap" test_map_touch_unmap;
      tc "protect clears tlbs" test_protect_clears_tlbs;
      tc "double map rejected" test_double_map_rejected;
      tc "map requires frame" test_map_requires_frame;
      tc "unmap unmapped" test_unmap_unmapped;
    ] )
