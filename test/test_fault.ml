(* The fault subsystem's building blocks: the phi failure detector's state
   machine, the injector's inert (zero-fault) contract, plan generation
   determinism, and the qcheck property that an armed-but-empty plan leaves
   a run bit-identical to one with no fault subsystem at all. *)

open Mk_sim
open Mk_hw
open Mk_fault
open Test_util

(* --- phi-accrual detector ------------------------------------------- *)

let test_detector_steady () =
  let d = Detector.create ~threshold:4.0 ~expected_interval:100 ~now:0 () in
  (* Regular heartbeats every 100: never suspected, phi stays small. *)
  let t = ref 0 in
  for _ = 1 to 50 do
    t := !t + 100;
    Detector.heartbeat d ~now:!t;
    check_bool "not suspect under steady beats" false
      (Detector.suspect d ~now:(!t + 100))
  done;
  check_bool "mean tracks interval" true
    (abs_float (Detector.mean_interval d -. 100.0) < 1.0)

let test_detector_silence_fires () =
  let d = Detector.create ~threshold:4.0 ~expected_interval:100 ~now:0 () in
  let t = ref 0 in
  for _ = 1 to 20 do
    t := !t + 100;
    Detector.heartbeat d ~now:!t
  done;
  (* phi = elapsed/(mean*ln10): crosses 4.0 at ~921 cycles of silence. *)
  check_bool "quiet shortly after last beat" false (Detector.suspect d ~now:(!t + 400));
  check_bool "suspected after long silence" true (Detector.suspect d ~now:(!t + 1000));
  (* A heartbeat rescinds the suspicion (accrual, not binary). *)
  Detector.heartbeat d ~now:(!t + 1000);
  check_bool "beat resets phi" false (Detector.suspect d ~now:(!t + 1100))

let test_detector_phi_monotone () =
  let d = Detector.create ~threshold:8.0 ~expected_interval:50 ~now:0 () in
  Detector.heartbeat d ~now:50;
  Detector.heartbeat d ~now:100;
  let p1 = Detector.phi d ~now:200 in
  let p2 = Detector.phi d ~now:400 in
  let p3 = Detector.phi d ~now:800 in
  check_bool "phi grows with silence" true (p1 < p2 && p2 < p3);
  check_bool "phi nonnegative" true (p1 >= 0.0)

(* --- injector inert contract ---------------------------------------- *)

let test_injector_inert () =
  let i = Injector.none in
  check_bool "none is unarmed" false (Injector.armed i);
  check_bool "no dead cores" false (Injector.core_dead i ~core:0);
  check_int "no link penalty" 0 (Injector.link_penalty i ~src_pkg:0 ~dst_pkg:1);
  check_bool "deliver verdict" true (Injector.urpc_fault i = Injector.Deliver);
  check_bool "no nic drop" false (Injector.nic_drop i)

let test_injector_empty_arm_noop () =
  let eng = Engine.create () in
  let i = Injector.create ~plan:Plan.empty ~seed:42 () in
  Injector.arm i eng;
  (* Arming an empty plan must not arm the hot-path guard or schedule
     anything. *)
  check_bool "still unarmed" false (Injector.armed i);
  Engine.run eng ();
  check_int "no events scheduled" 0 (Engine.events_executed eng)

(* --- plan generation ------------------------------------------------- *)

let test_plan_generate_deterministic () =
  let gen seed =
    Plan.generate ~seed ~victims:[ 2; 3; 4; 5 ] ~packages:2 ~horizon:1_000_000 ()
  in
  check_bool "same seed same plan" true (gen 7 = gen 7);
  check_bool "different seeds differ" true
    (List.exists (fun s -> gen s <> gen 7) [ 8; 9; 10; 11 ])

let test_plan_victims_in_pool () =
  for seed = 0 to 20 do
    let pool = [ 2; 3; 4; 5; 6 ] in
    let p = Plan.generate ~seed ~victims:pool ~packages:2 ~horizon:500_000 () in
    let vs = Plan.victims p in
    check_bool "1-2 victims" true (List.length vs >= 1 && List.length vs <= 2);
    List.iter (fun v -> check_bool "victim from pool" true (List.mem v pool)) vs;
    List.iter
      (fun (cs : Plan.core_stop) ->
        check_bool "stop inside horizon" true
          (cs.Plan.stop_at >= 0 && cs.Plan.stop_at < 500_000))
      p.Plan.core_stops
  done

(* --- mailbox timed receive (fault-subsystem primitive) ---------------- *)

let test_recv_timeout_expires () =
  run_sim (fun () ->
      let mb : int Sync.Mailbox.t = Sync.Mailbox.create () in
      let t0 = Engine.now_ () in
      check_bool "timed out" true (Sync.Mailbox.recv_timeout mb ~timeout:500 = None);
      check_int "waited the timeout" (t0 + 500) (Engine.now_ ()))

let test_recv_timeout_delivers () =
  run_sim (fun () ->
      let mb = Sync.Mailbox.create () in
      Engine.spawn_ ~name:"sender" (fun () ->
          Engine.wait 100;
          Sync.Mailbox.send mb 42);
      check_bool "got message" true
        (Sync.Mailbox.recv_timeout mb ~timeout:1_000 = Some 42);
      (* A second recv after a consumed timeout entry must still work. *)
      Engine.spawn_ ~name:"sender2" (fun () -> Sync.Mailbox.send mb 43);
      check_bool "plain recv unaffected" true (Sync.Mailbox.recv mb = 43))

(* --- zero-fault bit-identity (qcheck) --------------------------------- *)

(* A small but representative workload: cross-package URPC ping-pong plus
   IPI wakeups. Returns the full observable trace fingerprint. *)
let workload ?fault () =
  let m = Machine.create ?fault Platform.amd_2x2 in
  (match fault with Some i -> Injector.arm i m.Machine.eng | None -> ());
  let ch = Mk.Urpc.create m ~sender:0 ~receiver:3 ~name:"wl" () in
  let echo = Mk.Urpc.create m ~sender:3 ~receiver:0 ~name:"wl.echo" () in
  Engine.spawn m.Machine.eng ~name:"server" (fun () ->
      for _ = 1 to 40 do
        let v = Mk.Urpc.recv ch in
        Mk.Urpc.send echo (v * 2)
      done);
  Engine.spawn m.Machine.eng ~name:"client" (fun () ->
      for i = 1 to 40 do
        Mk.Urpc.send ch i;
        ignore (Mk.Urpc.recv echo : int);
        Engine.wait (i * 7)
      done);
  Machine.run m;
  ( Engine.now m.Machine.eng,
    Engine.events_executed m.Machine.eng,
    Mk.Urpc.stats_sent ch,
    Mk.Urpc.stats_received echo )

let qcheck_empty_plan_bit_identical =
  qtest ~count:20 "armed empty plan is bit-identical" QCheck2.Gen.small_int
    (fun seed ->
      let plain = workload () in
      let armed =
        workload ~fault:(Injector.create ~plan:Plan.empty ~seed ()) ()
      in
      plain = armed)

let suite =
  ( "fault",
    [
      tc "detector steady" test_detector_steady;
      tc "detector silence fires" test_detector_silence_fires;
      tc "detector phi monotone" test_detector_phi_monotone;
      tc "injector inert" test_injector_inert;
      tc "injector empty arm noop" test_injector_empty_arm_noop;
      tc "plan generate deterministic" test_plan_generate_deterministic;
      tc "plan victims in pool" test_plan_victims_in_pool;
      tc "recv_timeout expires" test_recv_timeout_expires;
      tc "recv_timeout delivers" test_recv_timeout_delivers;
      qcheck_empty_plan_bit_identical;
    ] )
