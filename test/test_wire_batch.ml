(* The wire-level batching path and the zero-copy HTTP scanner.

   Batching referee in miniature: a random cluster cell must produce an
   identical result record with wire batching forced on and forced off,
   and directed Pdes.send_run cases pin the canonical unpack order a
   batch must preserve (the property CI's full-sweep referee byte-diffs).
   The HTTP side pins the incremental CRLFCRLF scanner to a naive oracle
   over adversarially fragmented chunk streams, and the arithmetic
   response-length model to the real formatter. *)

open Mk_sim
open Mk_apps
open Mk_cluster
open Test_util

(* -- Pdes.send_run: canonical unpack order (directed) ----------------- *)

(* Run a 2-shard simulation whose only activity is the queued messages,
   each appending its tag to [log] when it executes on shard 1. *)
let delivery_order queue =
  let t = Pdes.create ~n_shards:2 ~lookahead:5 in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  queue t note;
  Pdes.exec ~domains:1 t;
  List.rev !log

let test_run_unpacks_in_index_order () =
  (* One batch, non-decreasing stamps (two equal): frames deliver in
     index order 0,1,2 — a run is its sends, in order. *)
  let got =
    delivery_order (fun t note ->
        Pdes.send_run t ~dst:1 ~src_shard:0 ~src_core:0 ~n:3
          ~ats:[| 10; 10; 25 |]
          (fun i -> note i))
  in
  check_bool "index order" true (got = [ 0; 1; 2 ])

let test_same_time_frames_keep_src_order () =
  (* Two sender streams, all frames at the same instant: the merge key is
     (at, src_core, mseq), so core 3's frames precede core 5's no matter
     which sender queued first — and within a stream, queueing order. *)
  let got =
    delivery_order (fun t note ->
        Pdes.send_run t ~dst:1 ~src_shard:0 ~src_core:5 ~n:2 ~ats:[| 20; 20 |]
          (fun i -> note (50 + i));
        Pdes.send_run t ~dst:1 ~src_shard:0 ~src_core:3 ~n:2 ~ats:[| 20; 20 |]
          (fun i -> note (30 + i)))
  in
  check_bool "src_core order at equal time" true (got = [ 30; 31; 50; 51 ])

let test_run_merges_with_singles_by_time () =
  (* A batch from core 2 straddles a single send from core 1: delivery
     interleaves by timestamp, not by hand-over unit. *)
  let got =
    delivery_order (fun t note ->
        Pdes.send_run t ~dst:1 ~src_shard:0 ~src_core:2 ~n:2 ~ats:[| 10; 30 |]
          (fun i -> note (20 + i));
        Pdes.send t ~dst:1 ~src_core:1 ~at:20 (note 11))
  in
  check_bool "time-ordered merge" true (got = [ 20; 11; 21 ])

let test_run_equals_singles () =
  (* The defining property: a run delivers exactly as the same frames
     sent individually, against a competing stream either way. *)
  let competing note t =
    Pdes.send t ~dst:1 ~src_core:9 ~at:12 (note 90);
    Pdes.send t ~dst:1 ~src_core:9 ~at:30 (note 91)
  in
  let as_run =
    delivery_order (fun t note ->
        competing note t;
        Pdes.send_run t ~dst:1 ~src_shard:0 ~src_core:4 ~n:3 ~ats:[| 12; 12; 40 |]
          (fun i -> note i))
  in
  let as_singles =
    delivery_order (fun t note ->
        competing note t;
        Pdes.send t ~dst:1 ~src_core:4 ~at:12 (note 0);
        Pdes.send t ~dst:1 ~src_core:4 ~at:12 (note 1);
        Pdes.send t ~dst:1 ~src_core:4 ~at:40 (note 2))
  in
  check_bool "run = its singles" true (as_run = as_singles)

(* -- batching referee: random cluster cells --------------------------- *)

let qcheck_batch_referee =
  qtest "cluster cell identical with wire batching forced on/off" ~count:4
    QCheck2.Gen.(tup3 (int_range 1 3) (int_range 50 250) (int_range 0 2))
    (fun (machines, users, pol_i) ->
      let policy =
        match pol_i with
        | 0 -> Lb.Round_robin
        | 1 -> Lb.Least_outstanding
        | _ -> Lb.Consistent_hash
      in
      let run ov =
        Mk_net.Machine_link.set_batching_override (Some ov);
        Fun.protect
          ~finally:(fun () -> Mk_net.Machine_link.set_batching_override None)
          (fun () ->
            let cl =
              Cluster.create (Cluster.default_config ~policy ~machines ())
            in
            Cluster.run_load cl ~users ~think:2_000_000 ~warmup:500_000
              ~window:4_000_000)
      in
      (* Every field of the result record — counts, quantiles, floats,
         per-backend arrays — must agree; wire counters included, since
         they describe traffic shape, not transport. *)
      run true = run false)

(* -- incremental CRLFCRLF scanner vs naive oracle --------------------- *)

let naive_header_end s =
  let n = String.length s in
  let rec go i =
    if i + 4 > n then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go 0

let chunks_of s sizes =
  let rec go i sizes acc =
    if i >= String.length s then List.rev acc
    else
      let n, rest = match sizes with [] -> (3, []) | n :: r -> (max 1 n, r) in
      let n = min n (String.length s - i) in
      go (i + n) rest (String.sub s i n :: acc)
  in
  go 0 sizes []

let qcheck_scan_fragmented =
  (* Strings over {'a', CR, LF} make blank lines likely; random chunk
     sizes (often 1-2 bytes) put the "\r\n\r\n" astride every possible
     boundary. The first hit must match the oracle, and the resume
     offset must be monotonic and bounded by what was fed. *)
  qtest "Scan.header_end over fragmented streams = naive scan" ~count:300
    QCheck2.Gen.(
      pair
        (string_size ~gen:(oneofl [ 'a'; '\r'; '\n' ]) (int_range 0 60))
        (list_size (int_range 0 40) (int_range 1 4)))
    (fun (s, sizes) ->
      let scan = Http.Scan.create () in
      let first_hit = ref None in
      let monotonic = ref true in
      let prev_pos = ref 0 in
      List.iter
        (fun chunk ->
          Http.Scan.add scan chunk;
          let r = Http.Scan.header_end scan in
          if !first_hit = None then first_hit := r;
          let p = Http.Scan.pos scan in
          if p < !prev_pos || p > Http.Scan.length scan then monotonic := false;
          prev_pos := p)
        (chunks_of s sizes);
      !monotonic && !first_hit = naive_header_end s)

let test_scan_straddles_boundaries () =
  (* The blank line split across three adds, one byte astride each cut. *)
  let scan = Http.Scan.create () in
  Http.Scan.add scan "GET / HTTP/1.1\r";
  check_bool "no end yet" true (Http.Scan.header_end scan = None);
  Http.Scan.add scan "\n\r";
  check_bool "still no end" true (Http.Scan.header_end scan = None);
  Http.Scan.add scan "\n";
  check_bool "found just past CRLFCRLF" true
    (Http.Scan.header_end scan = Some 18);
  check_string "head recoverable" "GET / HTTP/1.1\r\n\r\n"
    (Http.Scan.sub scan 0 18)

(* -- arithmetic response sizes pinned to the formatter ---------------- *)

let qcheck_response_length =
  qtest "response_length_of = String.length (format_response r)" ~count:300
    QCheck2.Gen.(
      tup3
        (oneofl [ 200; 204; 301; 302; 400; 403; 404; 500; 503; 999 ])
        (oneofl [ "text/html"; "text/plain"; "application/octet-stream"; "" ])
        (string_size (int_range 0 200)))
    (fun (status, content_type, body) ->
      Http.response_length_of ~status ~content_type
        ~body_len:(String.length body)
      = String.length (Http.format_response { Http.status; content_type; body }))

let test_digits () =
  List.iter
    (fun n ->
      check_int
        (Printf.sprintf "digits %d" n)
        (String.length (string_of_int n))
        (Http.digits n))
    [ 0; 1; 9; 10; 99; 100; 12345; -1; -9; -10; -99; max_int; min_int ]

let qcheck_digits =
  qtest "digits n = length of its decimal form" ~count:500
    QCheck2.Gen.(oneof [ int; int_range (-1000) 1000 ])
    (fun n -> Http.digits n = String.length (string_of_int n))

let suite =
  ( "wire-batch",
    [
      tc "send_run unpacks in index order" test_run_unpacks_in_index_order;
      tc "same-time frames keep src order" test_same_time_frames_keep_src_order;
      tc "run merges with singles by time" test_run_merges_with_singles_by_time;
      tc "run = the same frames as singles" test_run_equals_singles;
      qcheck_batch_referee;
      qcheck_scan_fragmented;
      tc "scanner straddles chunk boundaries" test_scan_straddles_boundaries;
      qcheck_response_length;
      tc "digits (directed)" test_digits;
      qcheck_digits;
    ] )
