open Mk
open Mk_hw
open Test_util

let test_assert_query () =
  let skb = Skb.create () in
  Skb.assert_fact skb (Skb.fact "likes" [ Skb.Atom "a"; Skb.Atom "b" ]);
  Skb.assert_fact skb (Skb.fact "likes" [ Skb.Atom "a"; Skb.Atom "c" ]);
  Skb.assert_fact skb (Skb.fact "likes" [ Skb.Atom "d"; Skb.Atom "b" ]);
  let subs = Skb.query skb (Skb.fact "likes" [ Skb.Atom "a"; Skb.Var "X" ]) in
  check_int "two matches" 2 (List.length subs);
  check_bool "holds" true (Skb.holds skb (Skb.fact "likes" [ Skb.Atom "d"; Skb.Var "_" ]));
  check_bool "no match" false (Skb.holds skb (Skb.fact "likes" [ Skb.Atom "z"; Skb.Var "_" ]))

let test_repeated_variable () =
  let skb = Skb.create () in
  Skb.assert_fact skb (Skb.fact "edge" [ Skb.Int 1; Skb.Int 1 ]);
  Skb.assert_fact skb (Skb.fact "edge" [ Skb.Int 1; Skb.Int 2 ]);
  (* X must bind consistently: only the self-loop matches edge(X, X). *)
  let subs = Skb.query skb (Skb.fact "edge" [ Skb.Var "X"; Skb.Var "X" ]) in
  check_int "one self loop" 1 (List.length subs);
  check_int "bound to 1" 1 (Skb.lookup_int (List.hd subs) "X")

let test_ground_facts_only () =
  let skb = Skb.create () in
  check_bool "vars rejected" true
    (match Skb.assert_fact skb (Skb.fact "p" [ Skb.Var "X" ]) with
     | () -> false
     | exception Invalid_argument _ -> true)

let test_retract () =
  let skb = Skb.create () in
  Skb.assert_fact skb (Skb.fact "p" [ Skb.Int 1 ]);
  Skb.assert_fact skb (Skb.fact "p" [ Skb.Int 2 ]);
  Skb.retract skb (Skb.fact "p" [ Skb.Int 1 ]);
  check_bool "1 gone" false (Skb.holds skb (Skb.fact "p" [ Skb.Int 1 ]));
  check_bool "2 stays" true (Skb.holds skb (Skb.fact "p" [ Skb.Int 2 ]));
  check_int "size" 1 (Skb.size skb)

let test_compound_args () =
  let skb = Skb.create () in
  Skb.assert_fact skb
    (Skb.fact "route" [ Skb.Int 0; Skb.Compound ("via", [ Skb.Int 1; Skb.Int 2 ]) ]);
  let sub =
    Skb.query_one skb
      (Skb.fact "route" [ Skb.Int 0; Skb.Compound ("via", [ Skb.Var "A"; Skb.Var "B" ]) ])
  in
  match sub with
  | Some s ->
    check_int "A" 1 (Skb.lookup_int s "A");
    check_int "B" 2 (Skb.lookup_int s "B")
  | None -> Alcotest.fail "nested unification failed"

let test_platform_facts () =
  let skb = Skb.create () in
  Skb.populate_platform skb Platform.amd_4x4;
  (match Skb.query_one skb (Skb.fact "num_cores" [ Skb.Var "N" ]) with
   | Some s -> check_int "16 cores" 16 (Skb.lookup_int s "N")
   | None -> Alcotest.fail "num_cores missing");
  check_int "one package fact per core" 16
    (List.length (Skb.query skb (Skb.fact "core_package" [ Skb.Var "C"; Skb.Var "P" ])));
  check_bool "links asserted" true
    (Skb.holds skb (Skb.fact "ht_link" [ Skb.Var "A"; Skb.Var "B" ]))

let test_latency_facts () =
  let skb = Skb.create () in
  Skb.assert_urpc_latency skb ~src:0 ~dst:1 ~cycles:500;
  check_bool "read back" true (Skb.urpc_latency skb ~src:0 ~dst:1 = Some 500);
  check_bool "missing pair" true (Skb.urpc_latency skb ~src:1 ~dst:0 = None);
  (* Re-measurement replaces, not duplicates. *)
  Skb.assert_urpc_latency skb ~src:0 ~dst:1 ~cycles:480;
  check_bool "updated" true (Skb.urpc_latency skb ~src:0 ~dst:1 = Some 480);
  check_int "single fact" 1
    (List.length (Skb.query skb (Skb.fact "urpc_latency" [ Skb.Int 0; Skb.Int 1; Skb.Var "L" ])))

let test_comm_edges () =
  let skb = Skb.create () in
  check_bool "empty" true (Skb.comm_edges skb = []);
  Skb.assert_comm_edge skb ~src:3 ~dst:1 ~weight:7;
  Skb.assert_comm_edge skb ~src:0 ~dst:1 ~weight:2;
  check_bool "sorted" true (Skb.comm_edges skb = [ (0, 1, 2); (3, 1, 7) ]);
  (* Re-profiling replaces the weight, not accumulates. *)
  Skb.assert_comm_edge skb ~src:3 ~dst:1 ~weight:9;
  check_bool "replaced" true (Skb.comm_edges skb = [ (0, 1, 2); (3, 1, 9) ])

let suite =
  ( "skb",
    [
      tc "assert/query" test_assert_query;
      tc "repeated variable" test_repeated_variable;
      tc "ground facts only" test_ground_facts_only;
      tc "retract" test_retract;
      tc "compound args" test_compound_args;
      tc "platform facts" test_platform_facts;
      tc "latency facts" test_latency_facts;
      tc "comm edges" test_comm_edges;
    ] )
