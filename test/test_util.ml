(* Shared helpers for the test suites. *)

open Mk_sim
open Mk_hw

let tc name f = Alcotest.test_case name `Quick f

(* Run [f] as a simulation task on a fresh engine and return its result. *)
let run_sim f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn eng ~name:"test" (fun () -> result := Some (f ()));
  Engine.run eng ();
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulation task did not complete"

(* Same, on a machine of the given platform. *)
let run_machine ?(plat = Platform.amd_2x2) f =
  let m = Machine.create plat in
  let result = ref None in
  Engine.spawn m.Machine.eng ~name:"test" (fun () -> result := Some (f m));
  Machine.run m;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulation task did not complete"

(* Run [f] against a booted OS. *)
let run_os ?(plat = Platform.amd_2x2) ?(measure_latencies = Mk.Os.No_measure) f =
  let os = Mk.Os.boot ~measure_latencies plat in
  Mk.Os.run os (fun () -> f os)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
