(* Property-based tests over the core data structures and protocols:
   randomized traces checked against invariants or naive oracles. *)

open Mk_sim
open Mk_hw
open Test_util

(* -- coherence: random access traces keep the directory consistent and
      latencies inside physical bounds -- *)

let qcheck_coherence_trace =
  qtest "coherence invariants under random traces" ~count:40
    QCheck2.Gen.(
      pair (int_range 1 1000)
        (list_size (int_range 10 80) (tup3 (int_bound 15) (int_bound 5) bool)))
    (fun (seed, ops) ->
      ignore seed;
      run_machine ~plat:Platform.amd_4x4 (fun m ->
          let coh = m.Machine.coh in
          let lines = Array.init 6 (fun _ -> Machine.alloc_lines m 1) in
          let max_lat =
            m.Machine.plat.Platform.dram
            + (8 * m.Machine.plat.Platform.hop_one_way)
            + m.Machine.plat.Platform.dir_occupancy
            + 200
          in
          List.for_all
            (fun (core, line_i, is_store) ->
              let a = lines.(line_i) in
              let t0 = Engine.now_ () in
              if is_store then Coherence.store coh ~core a
              else Coherence.load coh ~core a;
              let lat = Engine.now_ () - t0 in
              let state_ok =
                match Coherence.line_state coh ~line:(Coherence.line_of_addr coh a) with
                | Coherence.Invalid -> false (* we just touched it *)
                | Coherence.Modified o -> (not is_store) || o = core
                | Coherence.Shared cs ->
                  (not is_store)
                  && List.length (List.sort_uniq compare cs) = List.length cs
              in
              state_ok && lat >= m.Machine.plat.Platform.l1_hit && lat <= max_lat)
            ops))

(* -- hit-after-access: whoever just accessed a line hits on re-access -- *)

let qcheck_coherence_hit_after_access =
  qtest "re-access by the same core is a cache hit" ~count:40
    QCheck2.Gen.(list_size (int_range 5 40) (pair (int_bound 3) bool))
    (fun ops ->
      run_machine (fun m ->
          let coh = m.Machine.coh in
          let a = Machine.alloc_lines m 1 in
          List.for_all
            (fun (core, is_store) ->
              if is_store then Coherence.store coh ~core a
              else Coherence.load coh ~core a;
              let t0 = Engine.now_ () in
              if is_store then Coherence.store coh ~core a
              else Coherence.load coh ~core a;
              Engine.now_ () - t0 = m.Machine.plat.Platform.l1_hit)
            ops))

(* -- SQL: random tables and point queries against a list oracle -- *)

let qcheck_sql_oracle =
  qtest "SELECT matches the naive oracle" ~count:40
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 60) (pair (int_bound 9) (int_bound 100)))
        (int_bound 9))
    (fun (rows, probe) ->
      run_machine (fun m ->
          let db = Mk_apps.Sqldb.create m ~core:0 in
          (match Mk_apps.Sqldb.exec db "CREATE TABLE t (k, v)" with
           | Ok _ -> ()
           | Error e -> failwith e);
          List.iter
            (fun (k, v) ->
              match
                Mk_apps.Sqldb.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" k v)
              with
              | Ok _ -> ()
              | Error e -> failwith e)
            rows;
          let expected =
            List.filter_map
              (fun (k, v) -> if k = probe then Some [ Mk_apps.Sqldb.Int v ] else None)
              rows
          in
          match
            Mk_apps.Sqldb.exec db (Printf.sprintf "SELECT v FROM t WHERE k = %d" probe)
          with
          | Ok r ->
            List.sort compare r.Mk_apps.Sqldb.rows = List.sort compare expected
          | Error _ -> false))

(* -- SQL: the index never changes answers -- *)

let qcheck_sql_index_transparent =
  qtest "hash index is semantically transparent" ~count:30
    QCheck2.Gen.(list_size (int_range 1 60) (pair (int_bound 5) (int_bound 50)))
    (fun rows ->
      run_machine (fun m ->
          let mk with_index =
            let db = Mk_apps.Sqldb.create m ~core:0 in
            ignore (Mk_apps.Sqldb.exec db "CREATE TABLE t (k, v)");
            List.iter
              (fun (k, v) ->
                ignore
                  (Mk_apps.Sqldb.exec db
                     (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" k v)))
              rows;
            if with_index then
              ignore (Mk_apps.Sqldb.create_index db ~table:"t" ~column:"k");
            List.init 6 (fun k ->
                match
                  Mk_apps.Sqldb.exec db (Printf.sprintf "SELECT v FROM t WHERE k = %d" k)
                with
                | Ok r -> List.sort compare r.Mk_apps.Sqldb.rows
                | Error e -> failwith e)
          in
          mk false = mk true))

(* -- capabilities: children minted by retype never overlap -- *)

let qcheck_cap_children_disjoint =
  qtest "retyped extents are pairwise disjoint" ~count:40
    QCheck2.Gen.(list_size (int_range 1 10) (pair (int_range 1 4) (int_range 1 3)))
    (fun plan ->
      let db = Mk.Cap.Db.create ~core:0 in
      let ram = Mk.Cap.Db.mint_ram db ~base:0 ~bytes:(1 lsl 20) in
      let minted = ref [] in
      List.iter
        (fun (count, pages) ->
          match
            Mk.Cap.Db.retype db ram ~to_:Mk.Cap.Frame ~count ~bytes_each:(pages * 4096)
          with
          | Ok cs -> minted := cs @ !minted
          | Error _ -> ())
        plan;
      let rec pairwise = function
        | [] -> true
        | (c : Mk.Cap.t) :: rest ->
          List.for_all
            (fun (d : Mk.Cap.t) ->
              c.Mk.Cap.base + c.Mk.Cap.bytes <= d.Mk.Cap.base
              || d.Mk.Cap.base + d.Mk.Cap.bytes <= c.Mk.Cap.base)
            rest
          && pairwise rest
      in
      pairwise !minted)

(* -- engine: resource FIFO never reorders and never overlaps -- *)

let qcheck_resource_fifo =
  qtest "resource grants are FIFO and non-overlapping" ~count:40
    QCheck2.Gen.(list_size (int_range 1 20) (int_range 1 50))
    (fun durations ->
      run_sim (fun () ->
          let r = Resource.create () in
          let grants = ref [] in
          let done_ = Sync.Semaphore.create 0 in
          List.iteri
            (fun i d ->
              Engine.spawn_ (fun () ->
                  let start = Resource.acquire r d in
                  grants := (i, start, start + d) :: !grants;
                  Sync.Semaphore.release done_))
            durations;
          for _ = 1 to List.length durations do
            Sync.Semaphore.acquire done_
          done;
          let sorted = List.sort compare (List.rev !grants) in
          let rec check prev_end = function
            | [] -> true
            | (_, s, e) :: rest -> s >= prev_end && check e rest
          in
          check 0 sorted))

(* -- routing: NUMA plans and multicast plans reach identical core sets -- *)

let qcheck_numa_same_coverage =
  qtest "NUMA ordering never changes coverage" ~count:40
    QCheck2.Gen.(pair (int_bound 31) (int_range 2 32))
    (fun (root, n) ->
      let plat = Platform.amd_8x4 in
      let root = root mod n in
      let members = List.init n Fun.id in
      let mc = Mk.Routing.multicast plat ~root ~members in
      let nm =
        Mk.Routing.numa_multicast plat
          ~latency:(fun ~src ~dst -> (src * 7) + dst)
          ~root ~members
      in
      List.sort compare (Mk.Routing.plan_cores mc)
      = List.sort compare (Mk.Routing.plan_cores nm))

(* -- fusion: latency-charge fusion never changes what the simulation
      computes. A randomized multi-core workload mixing compute, waits,
      explicit charges, private-line stores, posted stores and URPC
      messaging must produce identical final times, per-task completion
      times and performance counters with fusion on and off.

      The observer itself must play by the charge contract: each task
      flushes before touching the shared results list (exactly what
      engine.mli prescribes before any shared-state mutation), and the
      list is keyed by task id rather than completion order — the order
      in which two causally unrelated tasks finish at the *same*
      timestamp is a scheduler tie, not a simulated output. -- *)

let fusion_observe ~fusion (traces, n_msgs) =
  Engine.set_fusion fusion;
  let m = Machine.create Platform.amd_2x2 in
  let coh = m.Machine.coh in
  let n = Machine.n_cores m in
  let priv = Array.init n (fun _ -> Machine.alloc_lines m 1) in
  let ends = ref [] in
  List.iteri
    (fun c ops ->
      let core = c mod n in
      Machine.spawn_on m ~core (fun () ->
          List.iter
            (fun (tag, amt) ->
              match tag mod 6 with
              | 0 -> Machine.compute m ~core amt
              | 1 -> Engine.wait amt
              | 2 -> Engine.charge amt
              | 3 -> Coherence.store_local coh ~core priv.(core)
              | 4 -> ignore (Coherence.load_async coh ~core priv.(core) : int)
              | _ -> ignore (Coherence.store_posted coh ~core priv.(core) : int))
            ops;
          Engine.flush_charge ();
          ends := (c, Engine.now_ ()) :: !ends))
    traces;
  let ch = Mk.Urpc.create m ~sender:0 ~receiver:2 () in
  Machine.spawn_on m ~core:0 (fun () ->
      for i = 1 to n_msgs do
        Mk.Urpc.send ch i
      done;
      Engine.flush_charge ();
      ends := (100, Engine.now_ ()) :: !ends);
  Machine.spawn_on m ~core:2 (fun () ->
      for _ = 1 to n_msgs do
        ignore (Mk.Urpc.recv ch : int)
      done;
      Engine.flush_charge ();
      ends := (101, Engine.now_ ()) :: !ends);
  Machine.run m;
  let snap = Perfcounter.snapshot m.Machine.counters in
  ( Machine.now m,
    List.sort compare !ends,
    { snap with Perfcounter.link_dwords = List.sort compare snap.Perfcounter.link_dwords }
  )

(* The two observations run as one 2-job pool batch — fusion on and off
   concurrently on separate domains when cores allow (the fusion flag is
   per-domain, so the jobs cannot interfere) — exercising exactly the
   sharding the bench harness uses. One pool is shared across qcheck
   cases; OCaml 5 cannot exit the main domain with workers live, so it is
   joined at exit. *)
let fusion_pool =
  lazy
    (let p = Pool.create ~jobs:2 in
     at_exit (fun () -> Pool.shutdown p);
     p)

let qcheck_fusion_equivalence =
  qtest "latency-charge fusion is observationally invisible" ~count:25
    QCheck2.Gen.(
      pair
        (list_repeat 4 (list_size (int_range 5 25) (pair (int_bound 5) (int_range 1 40))))
        (int_range 1 8))
    (fun workload ->
      (* Each job saves/restores its *own* domain's fusion flag. *)
      let observe fusion () =
        let was = Engine.fusion_enabled () in
        Fun.protect
          ~finally:(fun () -> Engine.set_fusion was)
          (fun () -> fusion_observe ~fusion workload)
      in
      match Pool.run ~pool:(Lazy.force fusion_pool) [ observe true; observe false ] with
      | [ a; b ] -> a = b
      | _ -> assert false)

(* -- pbuf/codec: UDP+IP+Ethernet stack-up and tear-down is lossless -- *)

let qcheck_headers_roundtrip =
  qtest "full header stack round-trips any payload" ~count:60
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 200))
    (fun payload ->
      run_machine (fun m ->
          let p = Mk_net.Pbuf.of_string m payload in
          Mk_net.Udp.encode p ~src_port:7 ~dst_port:8;
          Mk_net.Ipv4.encode p ~src:1 ~dst:2 ~proto:Mk_net.Ipv4.proto_udp;
          Mk_net.Ethernet.encode p ~dst:3 ~src:4
            ~ethertype:Mk_net.Ethernet.ethertype_ipv4;
          match Mk_net.Ethernet.decode p with
          | None -> false
          | Some _ ->
            (match Mk_net.Ipv4.decode p with
             | None -> false
             | Some _ ->
               (match Mk_net.Udp.decode p with
                | None -> false
                | Some _ -> Mk_net.Pbuf.contents p = payload))))

let suite =
  ( "properties",
    [
      qcheck_coherence_trace;
      qcheck_coherence_hit_after_access;
      qcheck_sql_oracle;
      qcheck_sql_index_transparent;
      qcheck_cap_children_disjoint;
      qcheck_resource_fifo;
      qcheck_fusion_equivalence;
      qcheck_numa_same_coverage;
      qcheck_headers_roundtrip;
    ] )
