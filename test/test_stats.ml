open Mk_sim
open Test_util

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Stats.count s);
  check_bool "mean" true (feq (Stats.mean s) 2.5);
  check_bool "min" true (feq (Stats.min s) 1.0);
  check_bool "max" true (feq (Stats.max s) 4.0);
  check_bool "total" true (feq (Stats.total s) 10.0);
  (* Sample stddev of 1..4 is sqrt(5/3). *)
  check_bool "stddev" true (feq ~eps:1e-6 (Stats.stddev s) (sqrt (5.0 /. 3.0)))

let test_empty () =
  let s = Stats.create ~retain_samples:true () in
  check_bool "mean 0" true (feq (Stats.mean s) 0.0);
  check_bool "stddev 0" true (feq (Stats.stddev s) 0.0);
  check_bool "percentile raises" true
    (match Stats.percentile s 0.5 with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_percentiles () =
  let s = Stats.create ~retain_samples:true () in
  for i = 1 to 100 do
    Stats.add_int s i
  done;
  check_bool "median" true (feq (Stats.percentile s 0.5) 50.0);
  check_bool "p99" true (feq (Stats.percentile s 0.99) 99.0);
  check_bool "p0 is min" true (feq (Stats.percentile s 0.0) 1.0);
  check_bool "p100 is max" true (feq (Stats.percentile s 1.0) 100.0)

let test_samples_order () =
  let s = Stats.create ~retain_samples:true () in
  List.iter (Stats.add s) [ 3.0; 1.0; 2.0 ];
  check_bool "insertion order" true (Stats.samples s = [| 3.0; 1.0; 2.0 |])

(* The default accumulator keeps no samples: the moments must still be
   exact, and the sample-dependent queries must refuse loudly rather than
   silently answer from nothing. *)
let test_unretained () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Stats.count s);
  check_bool "mean" true (feq (Stats.mean s) 5.0);
  (* Sample stddev: sum of squared deviations is 32, /7, sqrt. *)
  check_bool "stddev" true (feq ~eps:1e-9 (Stats.stddev s) (sqrt (32.0 /. 7.0)));
  check_bool "min" true (feq (Stats.min s) 2.0);
  check_bool "max" true (feq (Stats.max s) 9.0);
  check_bool "total" true (feq (Stats.total s) 40.0);
  check_bool "percentile refuses" true
    (match Stats.percentile s 0.5 with
     | _ -> false
     | exception Invalid_argument _ -> true);
  check_bool "samples refuses" true
    (match Stats.samples s with
     | _ -> false
     | exception Invalid_argument _ -> true)

let qcheck_mean_oracle =
  qtest "mean matches the naive oracle"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let oracle = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      feq ~eps:1e-6 (Stats.mean s) oracle)

let qcheck_minmax =
  qtest "min/max bound every sample"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      List.for_all (fun x -> x >= Stats.min s && x <= Stats.max s) xs)

(* The one-shot int-list helpers (moved here from the bench tree) must
   agree with an accumulator fed the same samples. *)
let test_int_list_helpers () =
  let feq name a b =
    if abs_float (a -. b) > 1e-9 then
      Alcotest.failf "%s: %f <> %f" name a b
  in
  feq "mean empty" 0.0 (Stats.mean_ints []);
  feq "stddev empty" 0.0 (Stats.stddev_ints []);
  feq "stddev singleton" 0.0 (Stats.stddev_ints [ 42 ]);
  feq "mean" 2.5 (Stats.mean_ints [ 1; 2; 3; 4 ]);
  let xs = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let s = Stats.create () in
  List.iter (Stats.add_int s) xs;
  feq "mean vs accumulator" (Stats.mean s) (Stats.mean_ints xs);
  feq "stddev vs accumulator" (Stats.stddev s) (Stats.stddev_ints xs)

let suite =
  ( "stats",
    [
      tc "int list helpers" test_int_list_helpers;
      tc "basic" test_basic;
      tc "empty" test_empty;
      tc "percentiles" test_percentiles;
      tc "samples order" test_samples_order;
      tc "unretained moments" test_unretained;
      qcheck_mean_oracle;
      qcheck_minmax;
    ] )
