open Mk_sim
open Test_util

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Stats.count s);
  check_bool "mean" true (feq (Stats.mean s) 2.5);
  check_bool "min" true (feq (Stats.min s) 1.0);
  check_bool "max" true (feq (Stats.max s) 4.0);
  check_bool "total" true (feq (Stats.total s) 10.0);
  (* Sample stddev of 1..4 is sqrt(5/3). *)
  check_bool "stddev" true (feq ~eps:1e-6 (Stats.stddev s) (sqrt (5.0 /. 3.0)))

let test_empty () =
  let s = Stats.create ~retain_samples:true () in
  check_bool "mean 0" true (feq (Stats.mean s) 0.0);
  check_bool "stddev 0" true (feq (Stats.stddev s) 0.0);
  check_bool "percentile raises" true
    (match Stats.percentile s 0.5 with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_percentiles () =
  let s = Stats.create ~retain_samples:true () in
  for i = 1 to 100 do
    Stats.add_int s i
  done;
  check_bool "median" true (feq (Stats.percentile s 0.5) 50.0);
  check_bool "p99" true (feq (Stats.percentile s 0.99) 99.0);
  check_bool "p0 is min" true (feq (Stats.percentile s 0.0) 1.0);
  check_bool "p100 is max" true (feq (Stats.percentile s 1.0) 100.0)

let test_samples_order () =
  let s = Stats.create ~retain_samples:true () in
  List.iter (Stats.add s) [ 3.0; 1.0; 2.0 ];
  check_bool "insertion order" true (Stats.samples s = [| 3.0; 1.0; 2.0 |])

(* The default accumulator keeps no samples: the moments must still be
   exact, and the sample-dependent queries must refuse loudly rather than
   silently answer from nothing. *)
let test_unretained () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Stats.count s);
  check_bool "mean" true (feq (Stats.mean s) 5.0);
  (* Sample stddev: sum of squared deviations is 32, /7, sqrt. *)
  check_bool "stddev" true (feq ~eps:1e-9 (Stats.stddev s) (sqrt (32.0 /. 7.0)));
  check_bool "min" true (feq (Stats.min s) 2.0);
  check_bool "max" true (feq (Stats.max s) 9.0);
  check_bool "total" true (feq (Stats.total s) 40.0);
  check_bool "percentile refuses" true
    (match Stats.percentile s 0.5 with
     | _ -> false
     | exception Invalid_argument _ -> true);
  check_bool "samples refuses" true
    (match Stats.samples s with
     | _ -> false
     | exception Invalid_argument _ -> true)

let qcheck_mean_oracle =
  qtest "mean matches the naive oracle"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let oracle = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      feq ~eps:1e-6 (Stats.mean s) oracle)

let qcheck_minmax =
  qtest "min/max bound every sample"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      List.for_all (fun x -> x >= Stats.min s && x <= Stats.max s) xs)

(* -- log-bucketed histogram ------------------------------------------ *)

module H = Stats.Histogram

(* Values below 2^sub_bits get a bucket each, so small distributions are
   exact: the histogram quantile must equal nearest-rank on the raw
   samples. *)
let test_hist_exact_region () =
  let h = H.create () in
  for v = 0 to 31 do
    H.add h v
  done;
  check_int "count" 32 (H.count h);
  check_int "min" 0 (H.min h);
  check_int "max" 31 (H.max h);
  check_bool "mean" true (feq (H.mean h) 15.5);
  check_int "p50 exact" 15 (H.quantile h 0.50);
  check_int "p99 exact" 31 (H.quantile h 0.99);
  check_int "p0 is min" 0 (H.quantile h 0.0);
  check_int "p100 is max" 31 (H.quantile h 1.0)

let test_hist_single_value () =
  let h = H.create () in
  for _ = 1 to 1000 do
    H.add h 123_456
  done;
  (* One distinct value: every quantile is clamped to the extrema. *)
  check_int "p50" 123_456 (H.quantile h 0.50);
  check_int "p999" 123_456 (H.quantile h 0.999);
  check_int "negative clamps to 0" 0 (H.quantile (let h = H.create () in H.add h (-5); h) 1.0)

let test_hist_bounds () =
  let h = H.create () in
  (* Every bucket must contain its own bounds, bounds must tile without
     overlap, and the relative width is bounded by 2^(1 - sub_bits). *)
  let prev_hi = ref (-1) in
  for i = 0 to 300 do
    let lo, hi = H.bounds h i in
    check_int (Printf.sprintf "tile %d" i) (!prev_hi + 1) lo;
    check_bool "ordered" true (lo <= hi);
    check_int (Printf.sprintf "lo roundtrip %d" i) i (H.bucket_of h lo);
    check_int (Printf.sprintf "hi roundtrip %d" i) i (H.bucket_of h hi);
    check_bool "width" true (hi - lo + 1 <= Stdlib.max 1 (lo / 16));
    prev_hi := hi
  done

let test_hist_merge () =
  let a = H.create () and b = H.create () in
  List.iter (H.add a) [ 10; 2_000; 3_000_000 ];
  List.iter (H.add b) [ 20; 5_000 ];
  H.merge_into ~dst:a b;
  check_int "count" 5 (H.count a);
  check_int "min" 10 (H.min a);
  check_int "max" 3_000_000 (H.max a);
  check_bool "sub_bits must match" true
    (match H.merge_into ~dst:a (H.create ~sub_bits:6 ()) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* The accuracy contract: the reported quantile lies inside the bucket
   holding the exact nearest-rank sample, so its error is bounded by that
   bucket's width (≤ value / 2^(sub_bits - 1)). *)
let qcheck_hist_quantile_error =
  qtest ~count:200 "histogram quantile lands in the exact sample's bucket"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 60) (int_bound ((1 lsl 30) - 1)))
        (float_bound_inclusive 1.0))
    (fun (xs, q) ->
      let h = H.create () in
      List.iter (H.add h) xs;
      let sorted = List.sort compare xs in
      let n = List.length xs in
      let rank =
        Stdlib.max 1 (Stdlib.min n (int_of_float (ceil (q *. float_of_int n))))
      in
      let exact = List.nth sorted (rank - 1) in
      let lo, hi = H.bounds h (H.bucket_of h exact) in
      let r = H.quantile h q in
      lo <= r && r <= hi)

(* The one-shot int-list helpers (moved here from the bench tree) must
   agree with an accumulator fed the same samples. *)
let test_int_list_helpers () =
  let feq name a b =
    if abs_float (a -. b) > 1e-9 then
      Alcotest.failf "%s: %f <> %f" name a b
  in
  feq "mean empty" 0.0 (Stats.mean_ints []);
  feq "stddev empty" 0.0 (Stats.stddev_ints []);
  feq "stddev singleton" 0.0 (Stats.stddev_ints [ 42 ]);
  feq "mean" 2.5 (Stats.mean_ints [ 1; 2; 3; 4 ]);
  let xs = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let s = Stats.create () in
  List.iter (Stats.add_int s) xs;
  feq "mean vs accumulator" (Stats.mean s) (Stats.mean_ints xs);
  feq "stddev vs accumulator" (Stats.stddev s) (Stats.stddev_ints xs)

let suite =
  ( "stats",
    [
      tc "int list helpers" test_int_list_helpers;
      tc "basic" test_basic;
      tc "empty" test_empty;
      tc "percentiles" test_percentiles;
      tc "samples order" test_samples_order;
      tc "unretained moments" test_unretained;
      tc "histogram exact region" test_hist_exact_region;
      tc "histogram single value" test_hist_single_value;
      tc "histogram bucket bounds" test_hist_bounds;
      tc "histogram merge" test_hist_merge;
      qcheck_mean_oracle;
      qcheck_minmax;
      qcheck_hist_quantile_error;
    ] )
