open Mk_sim
open Test_util

let test_wait_advances_time () =
  let t =
    run_sim (fun () ->
        check_int "starts at 0" 0 (Engine.now_ ());
        Engine.wait 100;
        Engine.wait 23;
        Engine.now_ ())
  in
  check_int "total" 123 t

let test_negative_wait_is_zero () =
  let t = run_sim (fun () -> Engine.wait (-5); Engine.now_ ()) in
  check_int "clamped" 0 t

let test_spawn_ordering () =
  (* Tasks spawned at the same time run in spawn order. *)
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.spawn eng (fun () -> log := i :: !log)
  done;
  Engine.run eng ();
  check_bool "order" true (List.rev !log = [ 1; 2; 3; 4; 5 ])

let test_determinism () =
  (* Two identical runs produce identical event interleavings. *)
  let trace () =
    let eng = Engine.create () in
    let log = ref [] in
    for i = 0 to 9 do
      Engine.spawn eng (fun () ->
          Engine.wait ((i * 7) mod 5);
          log := (i, Engine.now_ ()) :: !log;
          Engine.wait i;
          log := (i, Engine.now_ ()) :: !log)
    done;
    Engine.run eng ();
    !log
  in
  check_bool "same trace" true (trace () = trace ())

let test_suspend_wake () =
  let woke_at =
    run_sim (fun () ->
        let waker = ref None in
        Engine.spawn_ (fun () ->
            Engine.wait 50;
            match !waker with Some (w : Engine.waker) -> w () | None -> ());
        Engine.suspend (fun w -> waker := Some w);
        Engine.now_ ())
  in
  check_int "woken at 50" 50 woke_at

let test_waker_is_one_shot () =
  let count =
    run_sim (fun () ->
        let n = ref 0 in
        let waker = ref None in
        Engine.spawn_ (fun () ->
            Engine.wait 10;
            match !waker with
            | Some (w : Engine.waker) ->
              w ();
              w ();
              w ()
            | None -> ());
        Engine.suspend (fun w -> waker := Some w);
        incr n;
        Engine.wait 100;
        !n)
  in
  check_int "resumed once" 1 count

let test_wake_with_delay () =
  let t =
    run_sim (fun () ->
        let waker = ref None in
        Engine.spawn_ (fun () ->
            match !waker with Some (w : Engine.waker) -> w ~delay:70 () | None -> ());
        Engine.suspend (fun w -> waker := Some w);
        Engine.now_ ())
  in
  check_int "delayed wake" 70 t

let test_run_until () =
  let eng = Engine.create () in
  let hits = ref 0 in
  Engine.spawn eng (fun () ->
      for _ = 1 to 10 do
        Engine.wait 10;
        incr hits
      done);
  Engine.run eng ~until:35 ();
  check_int "partial" 3 !hits;
  check_int "clock clamped" 35 (Engine.now eng);
  Engine.run eng ();
  check_int "rest" 10 !hits

let test_run_until_spills_wheel () =
  (* Stop the clock while near-future (wheel-resident) events are pending:
     they must survive the stop, and fire at their original times in their
     original order when the run resumes. Enough waiting tasks are spawned
     to clear the engine's population threshold, so the later schedules
     really do land in the wheel rather than the heap. *)
  let n = 40 in
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to n do
    Engine.spawn eng (fun () ->
        (* Two tasks per delay: same-(time, seq-order) pairs must stay
           ordered across the spill too. *)
        Engine.wait (5 + ((i / 2) * 3));
        log := (i, Engine.now_ ()) :: !log)
  done;
  Engine.spawn eng (fun () ->
      Engine.wait 5000;
      (* Beyond the wheel window: heap-resident throughout. *)
      log := (0, Engine.now_ ()) :: !log);
  Engine.run eng ~until:4 ();
  check_int "stopped early" 4 (Engine.now eng);
  check_bool "nothing ran yet" true (!log = []);
  Engine.run eng ();
  let expect =
    List.init n (fun k ->
        let i = k + 1 in
        (i, 5 + ((i / 2) * 3)))
    |> List.sort (fun (i1, t1) (i2, t2) ->
           if t1 <> t2 then compare t1 t2 else compare i1 i2)
  in
  check_bool "order and times preserved" true
    (List.rev !log = expect @ [ (0, 5000) ])

let test_run_until_spills_fifo_batch () =
  (* Stop mid same-time FIFO batch: run to t=10, queue a batch of
     same-time events (they sit in the FIFO), then ask for an earlier
     stop — the batch must spill without losing its (time, seq) order. *)
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> Engine.wait 10);
  Engine.run eng ();
  check_int "at 10" 10 (Engine.now eng);
  let log = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () -> log := (i, Engine.now_ ()) :: !log)
  done;
  Engine.run eng ~until:8 ();
  check_bool "batch not run at stop" true (!log = []);
  Engine.run eng ();
  check_bool "batch ran at its time, in seq order" true
    (List.rev !log = [ (1, 10); (2, 10); (3, 10) ])

let test_stall_detection () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> Engine.suspend (fun _ -> ()));
  (match Engine.run eng ~allow_stall:false () with
   | () -> Alcotest.fail "expected Stalled"
   | exception Engine.Stalled _ -> ());
  let eng2 = Engine.create () in
  Engine.spawn eng2 (fun () -> Engine.suspend (fun _ -> ()));
  Engine.run eng2 ()  (* default tolerates blocked server tasks *)

let test_stalled_names () =
  (* The Stalled message names the suspended tasks, so a deadlock report
     points at the culprits instead of just counting them. *)
  let eng = Engine.create () in
  Engine.spawn eng ~name:"waiter.a" (fun () -> Engine.suspend (fun _ -> ()));
  Engine.spawn eng ~name:"waiter.b" (fun () ->
      Engine.wait 5;
      Engine.suspend (fun _ -> ()));
  (match Engine.run eng ~allow_stall:false () with
   | () -> Alcotest.fail "expected Stalled"
   | exception Engine.Stalled msg ->
     let has s =
       let n = String.length s in
       let rec go i =
         i + n <= String.length msg && (String.sub msg i n = s || go (i + 1))
       in
       go 0
     in
     check_bool "names waiter.a" true (has "waiter.a");
     check_bool "names waiter.b" true (has "waiter.b");
     check_bool "counts both" true (has "2 task(s)"))

let test_reset () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> Engine.wait 37);
  Engine.run eng ();
  check_int "ran to 37" 37 (Engine.now eng);
  Engine.reset eng;
  check_int "clock rewound" 0 (Engine.now eng);
  (* A recycled engine replays a fresh schedule identically. *)
  Engine.spawn eng (fun () -> Engine.wait 12);
  Engine.run eng ();
  check_int "second run from 0" 12 (Engine.now eng);
  (* Busy engines refuse: a suspended-forever task means pending state. *)
  let eng2 = Engine.create () in
  Engine.spawn eng2 (fun () -> Engine.suspend (fun _ -> ()));
  Engine.run eng2 ();
  match Engine.reset eng2 with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_halt () =
  let reached = ref false in
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      ignore (Engine.halt () : unit);
      reached := true);
  Engine.run eng ();
  check_bool "code after halt unreachable" false !reached;
  check_int "task accounted dead" 0 (Engine.live_tasks eng)

let test_live_tasks () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> Engine.wait 10);
  Engine.spawn eng (fun () -> Engine.suspend (fun _ -> ()));
  Engine.run eng ();
  check_int "one suspended forever" 1 (Engine.live_tasks eng)

let test_task_name () =
  let name = run_sim (fun () -> Engine.task_name ()) in
  check_string "name" "test" name

let test_nested_spawn () =
  let sum =
    run_sim (fun () ->
        let acc = ref 0 in
        Engine.spawn_ (fun () ->
            Engine.spawn_ (fun () -> acc := !acc + 1);
            acc := !acc + 10);
        Engine.wait 1;
        !acc)
  in
  check_int "both ran" 11 sum

(* -- latency-charge fusion -- *)

let with_fusion on f =
  let was = Engine.fusion_enabled () in
  Fun.protect ~finally:(fun () -> Engine.set_fusion was) (fun () ->
      Engine.set_fusion on;
      f ())

let test_charge_banks_delay () =
  with_fusion true (fun () ->
      let eng = Engine.create () in
      Engine.spawn eng (fun () ->
          Engine.charge 40;
          check_int "pending banked" 40 (Engine.pending_charge ());
          (* Virtual time includes the bank; real engine time does not. *)
          check_int "virtual now" 40 (Engine.now_ ());
          check_int "real now" 0 (Engine.now eng);
          Engine.charge 2;
          check_int "accumulates" 42 (Engine.pending_charge ());
          Engine.flush_charge ();
          check_int "bank drained" 0 (Engine.pending_charge ());
          check_int "real now caught up" 42 (Engine.now eng);
          check_int "virtual = real after flush" 42 (Engine.now_ ()));
      Engine.run eng ();
      check_int "final time includes charges" 42 (Engine.now eng))

let test_charge_flushes_at_wait () =
  with_fusion true (fun () ->
      let t =
        run_sim (fun () ->
            Engine.charge 30;
            (* A wait is an interaction point: bank drains first, then the
               wait runs, so total elapsed is charge + wait. *)
            Engine.wait 12;
            check_int "no pending after wait" 0 (Engine.pending_charge ());
            Engine.now_ ())
      in
      check_int "charge + wait" 42 t)

let test_charge_counts_fused_events () =
  with_fusion true (fun () ->
      let eng = Engine.create () in
      let fused0 = Engine.domain_events_fused () in
      Engine.spawn eng (fun () ->
          (* Three charges drain as one flush: two scheduler events saved. *)
          Engine.charge 5;
          Engine.charge 6;
          Engine.charge 7;
          Engine.flush_charge ());
      Engine.run eng ();
      check_int "two events fused" 2 (Engine.domain_events_fused () - fused0))

let test_fusion_off_is_eager () =
  with_fusion false (fun () ->
      let t =
        run_sim (fun () ->
            check_bool "reported off" false (Engine.fusion_enabled ());
            Engine.charge 40;
            (* With fusion disabled, charge degrades to wait: no bank. *)
            check_int "nothing banked" 0 (Engine.pending_charge ());
            Engine.now_ ())
      in
      check_int "still elapses" 40 t)

let test_charge_nonpositive_is_noop () =
  with_fusion true (fun () ->
      let t =
        run_sim (fun () ->
            Engine.charge 0;
            Engine.charge (-7);
            check_int "nothing banked" 0 (Engine.pending_charge ());
            Engine.now_ ())
      in
      check_int "no time" 0 t)

let suite =
  ( "engine",
    [
      tc "wait advances time" test_wait_advances_time;
      tc "negative wait" test_negative_wait_is_zero;
      tc "spawn ordering" test_spawn_ordering;
      tc "determinism" test_determinism;
      tc "suspend/wake" test_suspend_wake;
      tc "waker one-shot" test_waker_is_one_shot;
      tc "wake with delay" test_wake_with_delay;
      tc "run until" test_run_until;
      tc "run until spills wheel" test_run_until_spills_wheel;
      tc "run until spills fifo batch" test_run_until_spills_fifo_batch;
      tc "stall detection" test_stall_detection;
      tc "stalled names" test_stalled_names;
      tc "reset" test_reset;
      tc "halt" test_halt;
      tc "live tasks" test_live_tasks;
      tc "task name" test_task_name;
      tc "nested spawn" test_nested_spawn;
      tc "charge banks delay" test_charge_banks_delay;
      tc "charge flushes at wait" test_charge_flushes_at_wait;
      tc "charge counts fused events" test_charge_counts_fused_events;
      tc "fusion off is eager" test_fusion_off_is_eager;
      tc "charge nonpositive noop" test_charge_nonpositive_is_noop;
    ] )
