open Mk_sim
open Mk_hw
open Mk_net
open Mk_apps
open Test_util

(* ---- SQL engine ---- *)

let with_db f =
  run_machine (fun m ->
      let db = Sqldb.create m ~core:1 in
      f db)

let exec_ok db sql =
  match Sqldb.exec db sql with
  | Ok r -> r
  | Error e -> Alcotest.fail (sql ^ ": " ^ e)

let test_sql_create_insert_select () =
  with_db (fun db ->
      ignore (exec_ok db "CREATE TABLE pets (id, name, legs)");
      ignore (exec_ok db "INSERT INTO pets VALUES (1, 'rex', 4)");
      ignore (exec_ok db "INSERT INTO pets VALUES (2, 'tweety', 2)");
      ignore (exec_ok db "INSERT INTO pets VALUES (3, 'slug', 0)");
      check_bool "row count" true (Sqldb.table_rows db "pets" = Some 3);
      let r = exec_ok db "SELECT name FROM pets WHERE id = 2" in
      check_bool "select by id" true (r.Sqldb.rows = [ [ Sqldb.Text "tweety" ] ]);
      let all = exec_ok db "SELECT * FROM pets" in
      check_int "star select" 3 (List.length all.Sqldb.rows);
      check_bool "columns" true (all.Sqldb.columns = [ "id"; "name"; "legs" ]))

let test_sql_where_and_limit () =
  with_db (fun db ->
      ignore (exec_ok db "CREATE TABLE t (a, b)");
      for i = 1 to 10 do
        ignore (exec_ok db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i mod 2)))
      done;
      let evens = exec_ok db "SELECT a FROM t WHERE b = 0" in
      check_int "five evens" 5 (List.length evens.Sqldb.rows);
      let limited = exec_ok db "SELECT a FROM t WHERE b = 0 LIMIT 2" in
      check_int "limit" 2 (List.length limited.Sqldb.rows);
      let conj = exec_ok db "SELECT a FROM t WHERE b = 0 AND a = 4" in
      check_bool "conjunction" true (conj.Sqldb.rows = [ [ Sqldb.Int 4 ] ]))

let test_sql_errors () =
  with_db (fun db ->
      let fails sql = match Sqldb.exec db sql with Error _ -> true | Ok _ -> false in
      check_bool "no table" true (fails "SELECT * FROM ghosts");
      ignore (exec_ok db "CREATE TABLE t (a)");
      check_bool "no column" true (fails "SELECT nope FROM t");
      check_bool "syntax" true (fails "SELEC * FROM t");
      check_bool "bad values" true (fails "INSERT INTO t VALUES (1, 2)");
      check_bool "dup table" true (fails "CREATE TABLE t (x)");
      check_bool "unterminated string" true (fails "INSERT INTO t VALUES ('oops)"))

let test_sql_index_equivalence () =
  with_db (fun db ->
      ignore (exec_ok db "CREATE TABLE t (k, v)");
      for i = 1 to 200 do
        ignore (exec_ok db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" (i mod 50) i))
      done;
      let scan = exec_ok db "SELECT v FROM t WHERE k = 7" in
      (match Sqldb.create_index db ~table:"t" ~column:"k" with
       | Ok () -> ()
       | Error e -> Alcotest.fail e);
      let indexed = exec_ok db "SELECT v FROM t WHERE k = 7" in
      check_bool "same rows either way" true (scan.Sqldb.rows = indexed.Sqldb.rows);
      (* Index stays correct across later inserts. *)
      ignore (exec_ok db "INSERT INTO t VALUES (7, 999)");
      let again = exec_ok db "SELECT v FROM t WHERE k = 7" in
      check_int "new row visible" (List.length scan.Sqldb.rows + 1) (List.length again.Sqldb.rows))

let test_sql_remote_service () =
  run_machine (fun m ->
      let db = Sqldb.create m ~core:1 in
      ignore (exec_ok db "CREATE TABLE t (a)");
      ignore (exec_ok db "INSERT INTO t VALUES (5)");
      let b = Mk.Flounder.connect m ~name:"sql" ~client:3 ~server:1 () in
      Sqldb.serve db b;
      match Mk.Flounder.rpc b "SELECT a FROM t" with
      | Ok r -> check_bool "remote rows" true (r.Sqldb.rows = [ [ Sqldb.Int 5 ] ])
      | Error e -> Alcotest.fail e)

let test_tpcw () =
  with_db (fun db ->
      Sqldb.Tpcw.populate db ~items:500;
      check_bool "populated" true (Sqldb.table_rows db "item" = Some 500);
      let rng = Prng.create ~seed:1 in
      for _ = 1 to 20 do
        let q = Sqldb.Tpcw.point_query rng ~items:500 in
        let r = exec_ok db q in
        check_int "point query hits one row" 1 (List.length r.Sqldb.rows)
      done)

(* ---- HTTP ---- *)

let test_http_parsing () =
  check_bool "request" true
    (Http.parse_request "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n"
    = Some ("GET", "/index.html"));
  check_bool "garbage" true (Http.parse_request "ramble\r\n" = None);
  let r = Http.format_response (Http.ok_html "abc") in
  check_bool "status line" true (String.length r > 0 && String.sub r 0 15 = "HTTP/1.1 200 OK");
  check_bool "content length" true
    (let re = "Content-Length: 3" in
     let rec find i =
       i + String.length re <= String.length r
       && (String.sub r i (String.length re) = re || find (i + 1))
     in
     find 0)

let test_http_end_to_end () =
  run_machine (fun m ->
      let nif_a, nif_b = Stack.connect_urpc m ~core_a:0 ~core_b:2 () in
      let client = Stack.create m ~core:0 nif_a in
      let server = Stack.create m ~core:2 nif_b in
      Http.start_server server ~port:80 (fun ~meth ~path ->
          if meth = "GET" && path = "/hello" then Http.ok_html "hi there"
          else Http.not_found);
      (match Http.fetch client ~server_ip:(Stack.ip server) ~port:80 ~path:"/hello" with
       | Some (200, body) -> check_string "body" "hi there" body
       | Some (code, _) -> Alcotest.fail (Printf.sprintf "status %d" code)
       | None -> Alcotest.fail "no response");
      match Http.fetch client ~server_ip:(Stack.ip server) ~port:80 ~path:"/missing" with
      | Some (404, _) -> ()
      | _ -> Alcotest.fail "expected 404")

let test_http_load_counts () =
  run_machine (fun m ->
      let nif_a, nif_b = Stack.connect_urpc m ~core_a:0 ~core_b:2 () in
      let client = Stack.create m ~core:0 nif_a in
      let server = Stack.create m ~core:2 nif_b in
      Http.start_server server ~port:80 (fun ~meth:_ ~path:_ -> Http.ok_html "x");
      let n =
        Http.run_load [ client ] ~server_ip:(Stack.ip server) ~port:80 ~path:"/"
          ~clients_per_stack:3 ~duration:3_000_000
      in
      check_bool "served some requests" true (n > 3))

(* ---- Workload skeletons (smoke + scaling sanity) ---- *)

let linux_rt plat =
  let m = Machine.create plat in
  let mono = Mk_baseline.Monolithic.create m in
  (m, Runtime.linux mono)

let run_app app ~ncores =
  let m, rt = linux_rt Platform.amd_4x4 in
  let r = ref 0 in
  Engine.spawn m.Machine.eng (fun () -> r := app rt ~cores:(List.init ncores Fun.id));
  Machine.run m;
  !r

let test_workloads_scale () =
  List.iter
    (fun (name, app) ->
      let t2 = run_app app ~ncores:2 in
      let t8 = run_app app ~ncores:8 in
      check_bool (name ^ " positive") true (t2 > 0);
      check_bool (name ^ " faster on 8 cores") true (t8 < t2))
    [ ("cg", Nas.cg); ("ft", Nas.ft); ("is", Nas.is_sort);
      ("bh", Splash.barnes_hut); ("radiosity", Splash.radiosity) ]

let test_runtimes_comparable () =
  (* Same app, both OS runtimes: results within 2x of each other (the
     paper's "similar overall performance"). *)
  let linux = run_app Nas.is_sort ~ncores:4 in
  let os = Mk.Os.boot ~measure_latencies:Mk.Os.No_measure Platform.amd_4x4 in
  let bf = Mk.Os.run os (fun () -> Nas.is_sort (Runtime.barrelfish os) ~cores:[ 0; 1; 2; 3 ]) in
  check_bool "same ballpark" true (bf < 2 * linux && linux < 2 * bf)

let suite =
  ( "apps",
    [
      tc "sql create/insert/select" test_sql_create_insert_select;
      tc "sql where/limit" test_sql_where_and_limit;
      tc "sql errors" test_sql_errors;
      tc "sql index equivalence" test_sql_index_equivalence;
      tc "sql remote service" test_sql_remote_service;
      tc "tpcw" test_tpcw;
      tc "http parsing" test_http_parsing;
      tc "http end to end" test_http_end_to_end;
      tc "http load" test_http_load_counts;
      tc "workloads scale" test_workloads_scale;
      tc "runtimes comparable" test_runtimes_comparable;
    ] )
