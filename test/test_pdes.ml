(* Windowed conservative PDES: directed edge cases plus the referee
   property — a sharded run is byte-identical (output, clocks, event
   counts) no matter how many domains execute the windows. *)

open Mk_sim
open Mk_hw
open Test_util

(* -- raw Pdes executor (no hardware layer) -- *)

let test_single_shard_degenerate () =
  (* One shard must behave exactly like a plain engine run. *)
  let reference () =
    let eng = Engine.create () in
    let log = Buffer.create 64 in
    Engine.spawn eng ~name:"t" (fun () ->
        Engine.wait 10;
        Buffer.add_string log (Printf.sprintf "a@%d;" (Engine.now_ ()));
        Engine.wait 25;
        Buffer.add_string log (Printf.sprintf "b@%d;" (Engine.now_ ())));
    Engine.run eng ();
    (Buffer.contents log, Engine.now eng, Engine.events_executed eng)
  in
  let sharded () =
    let p = Pdes.create ~n_shards:1 ~lookahead:100 in
    let log = Buffer.create 64 in
    Pdes.spawn p ~shard:0 ~name:"t" (fun () ->
        Engine.wait 10;
        Buffer.add_string log (Printf.sprintf "a@%d;" (Engine.now_ ()));
        Engine.wait 25;
        Buffer.add_string log (Printf.sprintf "b@%d;" (Engine.now_ ())));
    Pdes.exec ~domains:1 p;
    (Buffer.contents log, Engine.now (Pdes.engine p 0), Engine.events_executed (Pdes.engine p 0))
  in
  let rl, _, re = reference () in
  let sl, _, se = sharded () in
  check_string "same log" rl sl;
  check_int "same events" re se

let test_message_at_horizon () =
  (* A message stamped exactly at the horizon is legal and runs in a later
     window, at exactly its timestamp. *)
  let p = Pdes.create ~n_shards:2 ~lookahead:50 in
  let got = ref (-1) in
  Pdes.spawn p ~shard:0 (fun () ->
      Engine.wait 10;
      (* tmin = 0 at the first window (both engines have t=0 spawns), so
         horizon = 50; from t=10 a +40 message lands exactly on it. *)
      Pdes.send p ~dst:1 ~src_core:0 ~at:50 (fun () -> got := Engine.now (Pdes.engine p 1)));
  Pdes.spawn p ~shard:1 (fun () -> Engine.wait 1);
  Pdes.exec ~domains:1 p;
  check_int "delivered at its timestamp" 50 !got

let test_lookahead_violation_rejected () =
  let p = Pdes.create ~n_shards:2 ~lookahead:50 in
  let raised = ref false in
  Pdes.spawn p ~shard:0 (fun () ->
      Engine.wait 10;
      match Pdes.send p ~dst:1 ~src_core:0 ~at:20 (fun () -> ()) with
      | () -> ()
      | exception Invalid_argument _ -> raised := true);
  Pdes.spawn p ~shard:1 (fun () -> Engine.wait 1);
  Pdes.exec ~domains:1 p;
  check_bool "undershooting the horizon is rejected" true !raised

let test_empty_shard_no_stall () =
  (* A shard with no events must neither stall the loop nor hold the
     horizon back; messages into it still deliver. *)
  let p = Pdes.create ~n_shards:3 ~lookahead:30 in
  let got = ref (-1) in
  Pdes.spawn p ~shard:0 (fun () ->
      Engine.wait 5;
      Pdes.send p ~dst:2 ~src_core:0 ~at:100 (fun () ->
          got := Engine.now (Pdes.engine p 2)));
  (* Shard 1 and 2 start with nothing scheduled. *)
  Pdes.exec ~domains:1 p;
  check_int "delivered into the idle shard" 100 !got;
  check_bool "ran some windows" true (Pdes.barriers p > 0)

let test_setup_send_before_exec () =
  (* Sends before the first window (horizon still 0) are delivered by the
     first exchange. *)
  let p = Pdes.create ~n_shards:2 ~lookahead:10 in
  let got = ref (-1) in
  Pdes.send p ~dst:1 ~src_core:3 ~at:7 (fun () -> got := Engine.now (Pdes.engine p 1));
  Pdes.exec ~domains:1 p;
  check_int "setup message delivered" 7 !got

let test_shard_error_propagates () =
  let p = Pdes.create ~n_shards:2 ~lookahead:10 in
  Pdes.spawn p ~shard:1 (fun () ->
      Engine.wait 5;
      failwith "boom");
  let raised =
    match Pdes.exec ~domains:1 p with () -> false | exception Failure m -> m = "boom"
  in
  check_bool "shard failure re-raised" true raised

(* -- deterministic cross-shard ping-pong, used for the referee checks -- *)

(* A small synthetic workload on the raw executor: [n] logical actors
   spread round-robin over the shards, each bouncing a counter to the next
   actor with latency >= lookahead, writing a log line per hop. Exercises
   multi-hop chains, simultaneous timestamps and idle windows without the
   hardware layer. *)
let ping_pong ~n_shards ~actors ~hops ~domains =
  let la = 40 in
  let p = Pdes.create ~n_shards ~lookahead:la in
  let out = Buffer.create 256 in
  let rec hop ~actor ~k ~at =
    if k < hops then begin
      let dst_actor = (actor + 1) mod actors in
      let dst = dst_actor mod n_shards in
      (* Output from shard context goes through [Pool.emit]: it lands in
         the executing shard's capture buffer and is replayed in shard
         order at the end, independent of window interleaving. *)
      Pdes.send p ~dst ~src_core:actor ~at (fun () ->
          Pool.emit
            (Printf.sprintf "hop actor=%d k=%d t=%d\n" dst_actor k
               (Engine.now (Pdes.engine p dst)));
          hop ~actor:dst_actor ~k:(k + 1) ~at:(at + la + ((k * 7) mod 23)))
    end
  in
  for a = 0 to actors - 1 do
    hop ~actor:a ~k:0 ~at:(la + a)
  done;
  Pool.redirect_to out (fun () -> Pdes.exec ~domains p);
  let clocks =
    List.init n_shards (fun i ->
        Printf.sprintf "%d:%d" (Engine.now (Pdes.engine p i))
          (Engine.events_executed (Pdes.engine p i)))
  in
  (Buffer.contents out, String.concat "," clocks, Pdes.barriers p)

let test_referee_domain_counts () =
  let reference = ping_pong ~n_shards:4 ~actors:7 ~hops:40 ~domains:1 in
  List.iter
    (fun d ->
      let got = ping_pong ~n_shards:4 ~actors:7 ~hops:40 ~domains:d in
      let r1, r2, r3 = reference and g1, g2, g3 = got in
      check_string (Printf.sprintf "output identical (domains=%d)" d) r1 g1;
      check_string (Printf.sprintf "clocks identical (domains=%d)" d) r2 g2;
      check_int (Printf.sprintf "same windows (domains=%d)" d) r3 g3)
    [ 2; 3; 4; 8 ]

(* -- sharded hardware layer (Shard glue) -- *)

(* Cross-shard coherence: a core loads and stores a line homed on a remote
   shard's package; the round trip must cost two legs plus the remote
   service and leave the line state on the home shard. *)
let test_remote_coherence_roundtrip () =
  let plat = Platform.amd_8x4 in
  let sh = Mk.Shard.create ~n_shards:2 plat in
  (* Home a line on package 7 (shard 1), access from core 0 (shard 0). *)
  let m1 = Mk.Shard.machine sh 1 in
  let addr = Machine.alloc_lines m1 ~node:7 1 in
  let coh0 = (Mk.Shard.machine sh 0).Machine.coh in
  Coherence.set_home coh0 ~line:(Coherence.line_of_addr coh0 addr) ~node:7;
  let t_load = ref (-1) and t_store = ref (-1) in
  Pdes.spawn (Mk.Shard.pdes sh) ~shard:0 ~name:"req" (fun () ->
      let t0 = Engine.now_ () in
      Coherence.load coh0 ~core:0 addr;
      t_load := Engine.now_ () - t0;
      let t1 = Engine.now_ () in
      Coherence.store coh0 ~core:0 addr;
      t_store := Engine.now_ () - t1);
  Mk.Shard.exec ~domains:1 sh;
  let leg = Mk.Shard.leg_latency sh 0 7 in
  check_bool "load paid two legs" true (!t_load >= 2 * leg);
  check_bool "store paid two legs" true (!t_store >= 2 * leg);
  (* The home shard's directory saw both accesses; the store owns it. *)
  let m1_coh = m1.Machine.coh in
  (match Coherence.line_state m1_coh ~line:(Coherence.line_of_addr m1_coh addr) with
  | Coherence.Modified c -> check_int "home sees the writer" 0 c
  | _ -> Alcotest.fail "home shard line not in Modified state")

(* Cross-shard IPI: handler runs on the owning shard, after at least the
   lookahead, and the trap serializes on the target core. *)
let test_remote_ipi () =
  let plat = Platform.amd_8x4 in
  let sh = Mk.Shard.create ~n_shards:2 plat in
  let target = 31 (* package 7, shard 1 *) and src = 0 in
  let m1 = Mk.Shard.machine sh 1 in
  let handled = ref (-1) in
  Ipi.register m1.Machine.ipi ~core:target ~vector:3 (fun ~src:s ->
      check_int "src travels" src s;
      handled := Engine.now_ ());
  Pdes.spawn (Mk.Shard.pdes sh) ~shard:0 ~name:"sender" (fun () ->
      Engine.wait 100;
      Ipi.send (Mk.Shard.machine sh 0).Machine.ipi ~src ~dst:target ~vector:3);
  Mk.Shard.exec ~domains:1 sh;
  check_bool "handler ran" true (!handled >= 0);
  check_bool "after wire + trap" true (!handled >= 100 + Mk.Shard.lookahead sh + plat.Platform.trap)

(* Cross-shard URPC: in-order delivery, payloads intact, receiver's
   arrival times strictly after send + leg. *)
let test_cross_shard_urpc () =
  let plat = Platform.amd_8x4 in
  let sh = Mk.Shard.create ~n_shards:2 plat in
  let sender = 0 and receiver = 31 in
  let link : int Mk.Shard.link =
    Mk.Shard.link_urpc sh ~sender ~receiver ~name:"x" ()
  in
  let n = 24 in
  let got = ref [] in
  Pdes.spawn (Mk.Shard.pdes sh) ~shard:0 ~name:"tx" (fun () ->
      for i = 1 to n do
        Mk.Urpc.send link.Mk.Shard.tx i
      done);
  Pdes.spawn (Mk.Shard.pdes sh) ~shard:1 ~name:"rx" (fun () ->
      for _ = 1 to n do
        let v = Mk.Urpc.recv link.Mk.Shard.rx in
        got := v :: !got
      done);
  Mk.Shard.exec ~domains:1 sh;
  Alcotest.(check (list int)) "in order, none lost" (List.init n (fun i -> i + 1))
    (List.rev !got);
  check_int "receiver counted them" n (Mk.Urpc.stats_received link.Mk.Shard.rx)

(* The hardware-layer referee: a sharded machine workload (remote loads +
   cross-shard URPC + local compute) must be byte-identical across domain
   counts, including engine clocks and event totals. *)
let sharded_hw_run ~domains =
  let plat = Platform.amd_8x4 in
  let sh = Mk.Shard.create ~n_shards:4 plat in
  let out = Buffer.create 256 in
  let link : int Mk.Shard.link = Mk.Shard.link_urpc sh ~sender:2 ~receiver:30 () in
  (* Remote line homed on package 6 (shard 3), hammered from shard 0. *)
  let m3 = Mk.Shard.machine sh 3 in
  let addr = Machine.alloc_lines m3 ~node:6 1 in
  let coh0 = (Mk.Shard.machine sh 0).Machine.coh in
  Coherence.set_home coh0 ~line:(Coherence.line_of_addr coh0 addr) ~node:6;
  Pdes.spawn (Mk.Shard.pdes sh) ~shard:0 ~name:"loader" (fun () ->
      for i = 1 to 12 do
        Coherence.load coh0 ~core:1 addr;
        Engine.wait ((i * 13) mod 57);
        Coherence.store coh0 ~core:1 addr;
        Pool.emit (Printf.sprintf "ld%d@%d\n" i (Engine.now_ ()))
      done);
  Pdes.spawn (Mk.Shard.pdes sh) ~shard:0 ~name:"tx" (fun () ->
      for i = 1 to 20 do
        Engine.wait ((i * 31) mod 101);
        Mk.Urpc.send link.Mk.Shard.tx i
      done);
  Pdes.spawn (Mk.Shard.pdes sh) ~shard:3 ~name:"rx" (fun () ->
      for _ = 1 to 20 do
        let v = Mk.Urpc.recv link.Mk.Shard.rx in
        Pool.emit (Printf.sprintf "rx%d@%d\n" v (Engine.now_ ()))
      done);
  Pool.redirect_to out (fun () -> Mk.Shard.exec ~domains sh);
  let clocks =
    List.init 4 (fun i ->
        let e = Mk.Shard.engine sh i in
        Printf.sprintf "%d:%d" (Engine.now e) (Engine.events_executed e))
  in
  (Buffer.contents out, String.concat "," clocks, Mk.Shard.barriers sh)

let test_hw_referee_domain_counts () =
  let r1, r2, r3 = sharded_hw_run ~domains:1 in
  List.iter
    (fun d ->
      let g1, g2, g3 = sharded_hw_run ~domains:d in
      check_string (Printf.sprintf "hw output identical (domains=%d)" d) r1 g1;
      check_string (Printf.sprintf "hw clocks identical (domains=%d)" d) r2 g2;
      check_int (Printf.sprintf "hw windows identical (domains=%d)" d) r3 g3)
    [ 2; 4 ]

(* qcheck: random small platforms and random actor workloads — serial and
   parallel window execution byte-identical. *)
let qcheck_referee =
  qtest "PDES serial and parallel runs are byte-identical" ~count:25
    QCheck2.Gen.(
      tup4 (int_range 2 6) (int_range 2 8) (int_range 5 30) (int_range 2 4))
    (fun (n_shards, actors, hops, domains) ->
      let a = ping_pong ~n_shards ~actors ~hops ~domains:1 in
      let b = ping_pong ~n_shards ~actors ~hops ~domains in
      a = b)

let suite =
  ( "pdes",
    [
      tc "single shard degenerate" test_single_shard_degenerate;
      tc "message at horizon" test_message_at_horizon;
      tc "lookahead violation rejected" test_lookahead_violation_rejected;
      tc "empty shard no stall" test_empty_shard_no_stall;
      tc "setup send before exec" test_setup_send_before_exec;
      tc "shard error propagates" test_shard_error_propagates;
      tc "referee across domain counts" test_referee_domain_counts;
      tc "remote coherence roundtrip" test_remote_coherence_roundtrip;
      tc "remote ipi" test_remote_ipi;
      tc "cross-shard urpc" test_cross_shard_urpc;
      tc "hw referee across domain counts" test_hw_referee_domain_counts;
      qcheck_referee;
    ] )
