(* End-to-end protocol comparisons: the properties behind Figures 6-8,
   checked as tests (orderings, not absolute numbers). *)

open Mk_sim
open Mk_hw
open Mk
open Test_util

let shootdown_cost proto ~ncores =
  run_machine ~plat:Platform.amd_8x4 (fun m ->
      let h = Shootdown.setup m ~proto ~root:0 ~cores:(List.init ncores Fun.id) () in
      (* Warmup round, then measure. *)
      ignore (Shootdown.round h : int);
      let s = Stats.create () in
      for _ = 1 to 5 do
        Stats.add_int s (Shootdown.round h)
      done;
      Stats.mean s)

let test_fig6_orderings () =
  let b = shootdown_cost Routing.Broadcast ~ncores:32 in
  let u = shootdown_cost Routing.Unicast ~ncores:32 in
  let mc = shootdown_cost Routing.Multicast ~ncores:32 in
  let nm = shootdown_cost Routing.Numa_multicast ~ncores:32 in
  check_bool "broadcast worst" true (b > u);
  check_bool "multicast beats unicast at 32" true (mc < u);
  check_bool "numa no worse than multicast" true (nm <= mc +. 100.0)

let test_fig6_broadcast_linear () =
  let c8 = shootdown_cost Routing.Broadcast ~ncores:8 in
  let c32 = shootdown_cost Routing.Broadcast ~ncores:32 in
  check_bool "grows superlinearly vs tree" true (c32 > 2.5 *. c8)

let test_fig6_multicast_flat () =
  let c16 = shootdown_cost Routing.Multicast ~ncores:16 in
  let c32 = shootdown_cost Routing.Multicast ~ncores:32 in
  check_bool "tree scales gently" true (c32 < 1.6 *. c16)

let unmap_cost_mk ~ncores =
  let os = Os.boot ~measure_latencies:Os.No_measure Platform.amd_8x4 in
  Os.run os (fun () ->
      let cores = List.init ncores Fun.id in
      let dom = Os.spawn_domain os ~name:"u" ~cores in
      (match Os.alloc_map_frame os dom ~core:0 ~vaddr:0x90000 ~bytes:4096 with
       | Ok _ -> ()
       | Error e -> Types.fail e);
      List.iter (fun c -> ignore (Vspace.touch (Dom.vspace dom) ~core:c ~vaddr:0x90000)) cores;
      let t0 = Engine.now_ () in
      (match Os.protect os dom ~core:0 ~vaddr:0x90000 ~bytes:4096 ~writable:false with
       | Ok () -> ()
       | Error e -> Types.fail e);
      Engine.now_ () - t0)

let unmap_cost_ipi style ~ncores =
  run_machine ~plat:Platform.amd_8x4 (fun m ->
      let cores = List.init ncores Fun.id in
      let ctx = Mk_baseline.Ipi_shootdown.setup m style ~cores in
      List.iter (fun c -> Tlb.fill m.Machine.tlbs.(c) ~vpage:1) cores;
      Mk_baseline.Ipi_shootdown.unmap ctx ~initiator:0 ~vpages:[ 1 ])

let test_fig7_crossover () =
  (* Messages win at scale; IPIs are competitive on few cores. *)
  let mk32 = unmap_cost_mk ~ncores:32 in
  let linux32 = unmap_cost_ipi Mk_baseline.Ipi_shootdown.Linux ~ncores:32 in
  let windows32 = unmap_cost_ipi Mk_baseline.Ipi_shootdown.Windows ~ncores:32 in
  check_bool "multikernel beats linux at 32" true (mk32 < linux32);
  check_bool "linux beats windows at 32" true (linux32 < windows32);
  let mk2 = unmap_cost_mk ~ncores:2 in
  let linux2 = unmap_cost_ipi Mk_baseline.Ipi_shootdown.Linux ~ncores:2 in
  check_bool "ipis competitive at 2 cores" true (linux2 < 2 * mk2)

let test_fig8_pipelining_amortizes () =
  let os = Os.boot ~measure_latencies:Os.No_measure Platform.amd_8x4 in
  Os.run os (fun () ->
      let mon = Os.monitor os ~core:0 in
      let plan = Os.default_plan os ~root:0 ~members:(List.init 16 Fun.id) in
      let t0 = Engine.now_ () in
      let (_ : bool) = Monitor.agree mon ~plan ~op:Monitor.Ag_noop in
      let single = Engine.now_ () - t0 in
      let t1 = Engine.now_ () in
      let ivs = List.init 16 (fun _ -> Monitor.agree_async mon ~plan ~op:Monitor.Ag_noop) in
      List.iter (fun iv -> ignore (Sync.Ivar.read iv : bool)) ivs;
      let per_op = (Engine.now_ () - t1) / 16 in
      check_bool "pipelining cheaper per op" true (per_op < single))

let test_polling_model_bounds () =
  (* §5.2: overhead never exceeds P + C once past the poll window. *)
  let overhead ~arrival =
    run_machine ~plat:Platform.amd_4x4 (fun m ->
        let ch = Urpc.create m ~sender:1 ~receiver:0 () in
        Engine.spawn_ (fun () ->
            Engine.wait arrival;
            Urpc.send ch ());
        let t0 = Engine.now_ () in
        Urpc.recv_blocking ch ~poll_cycles:6000 ~wakeup_cost:6000;
        Engine.now_ () - t0 - arrival)
  in
  let early = overhead ~arrival:0 in
  let late = overhead ~arrival:50_000 in
  check_bool "early cheap" true (early < 6000);
  check_bool "late pays the wakeup" true (late > 6000);
  check_bool "bounded by 2C + transfer" true (late < 14_000)

let suite =
  ( "protocols",
    [
      tc "fig6 orderings" test_fig6_orderings;
      tc "fig6 broadcast linear" test_fig6_broadcast_linear;
      tc "fig6 multicast flat" test_fig6_multicast_flat;
      tc "fig7 crossover" test_fig7_crossover;
      tc "fig8 pipelining" test_fig8_pipelining_amortizes;
      tc "polling model bounds" test_polling_model_bounds;
    ] )
