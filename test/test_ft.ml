(* Detection & recovery: at-most-once RPC retry/backoff under message
   faults, duplicate suppression, and the end-to-end kill-a-core drill —
   detection, death announcement, routing repair, service respawn with
   name-service re-registration, and client failover. *)

open Mk_sim
open Mk_hw
open Mk_fault
open Test_util

(* A plan that drops every URPC message in [0, until) after arming. *)
let drop_all ~until =
  {
    Plan.empty with
    Plan.msgs =
      [
        {
          Plan.mf_from = 0;
          mf_until = until;
          drop_1_in = 1;
          dup_1_in = 0;
          delay_1_in = 0;
          max_delay = 0;
        };
      ];
  }

let dup_all ~until =
  {
    Plan.empty with
    Plan.msgs =
      [
        {
          Plan.mf_from = 0;
          mf_until = until;
          drop_1_in = 0;
          dup_1_in = 1;
          delay_1_in = 0;
          max_delay = 0;
        };
      ];
  }

let test_reliable_gives_up_with_backoff () =
  (* Every message dropped for longer than the full retry schedule: the
     call must fail after exactly max_attempts sends whose timeouts double
     each attempt (1+2+4+8 base units of waiting). *)
  let inj = Injector.create ~plan:(drop_all ~until:200_000) ~seed:3 () in
  let m = Machine.create ~fault:inj Platform.amd_2x2 in
  let rel =
    Mk.Flounder.Reliable.connect m ~name:"rt" ~client:0 ~server:2
      ~base_timeout:1_000 ~max_attempts:4 ()
  in
  Mk.Flounder.Reliable.export rel (fun x -> x);
  let result = ref (Ok 0) in
  let elapsed = ref 0 in
  Engine.spawn m.Machine.eng ~name:"caller" (fun () ->
      Injector.arm inj m.Machine.eng;
      let t0 = Engine.now_ () in
      result := Mk.Flounder.Reliable.call rel 7;
      elapsed := Engine.now_ () - t0);
  Machine.run m;
  check_bool "timed out" true (!result = Error `Timeout);
  check_int "gave up once" 1 (Mk.Flounder.Reliable.stats_gave_up rel);
  check_int "retried between attempts" 3 (Mk.Flounder.Reliable.stats_retries rel);
  (* Exponential backoff: the timeouts alone sum to 1k+2k+4k+8k = 15k
     cycles; the handful of cycles on top is the four sends' wire cost. *)
  check_bool "backoff schedule" true (!elapsed >= 15_000 && !elapsed < 17_000)

let test_reliable_recovers_after_window () =
  (* Drops stop at 5k; the doubling retry schedule reaches past the window
     and the call completes, with the handler having run exactly once. *)
  let inj = Injector.create ~plan:(drop_all ~until:5_000) ~seed:5 () in
  let m = Machine.create ~fault:inj Platform.amd_2x2 in
  let rel =
    Mk.Flounder.Reliable.connect m ~name:"rw" ~client:0 ~server:2
      ~base_timeout:2_000 ~max_attempts:6 ()
  in
  let runs = ref 0 in
  Mk.Flounder.Reliable.export rel (fun x ->
      incr runs;
      x * 10);
  let result = ref (Error `Timeout) in
  Engine.spawn m.Machine.eng ~name:"caller" (fun () ->
      Injector.arm inj m.Machine.eng;
      result := Mk.Flounder.Reliable.call rel 4);
  Machine.run m;
  check_bool "eventually ok" true (!result = Ok 40);
  check_bool "needed at least one retry" true
    (Mk.Flounder.Reliable.stats_retries rel >= 1);
  check_int "no give-up" 0 (Mk.Flounder.Reliable.stats_gave_up rel);
  check_int "handler ran once" 1 !runs

let test_reliable_dedups_duplicates () =
  (* Every message duplicated: responses replay from the seen-cache, the
     handler still runs exactly once per logical call. *)
  let inj = Injector.create ~plan:(dup_all ~until:1_000_000) ~seed:11 () in
  let m = Machine.create ~fault:inj Platform.amd_2x2 in
  let rel =
    Mk.Flounder.Reliable.connect m ~name:"dd" ~client:1 ~server:3
      ~base_timeout:5_000 ~max_attempts:3 ()
  in
  let runs = ref 0 in
  Mk.Flounder.Reliable.export rel (fun x ->
      incr runs;
      x + 1);
  let oks = ref 0 in
  Engine.spawn m.Machine.eng ~name:"caller" (fun () ->
      Injector.arm inj m.Machine.eng;
      for i = 1 to 12 do
        match Mk.Flounder.Reliable.call rel i with
        | Ok r ->
          check_int "response value" (i + 1) r;
          incr oks
        | Error `Timeout -> ()
      done);
  Machine.run m;
  check_int "all calls completed" 12 !oks;
  check_int "handler once per call" 12 !runs;
  check_bool "duplicates were injected" true
    ((Injector.stats inj).Injector.urpc_duplicated > 0)

(* --- end-to-end: kill a core, watch the OS recover -------------------- *)

let test_end_to_end_recovery () =
  let stop_at = 100_000 in
  let plan =
    { Plan.empty with Plan.core_stops = [ { Plan.victim = 3; stop_at } ] }
  in
  let inj = Injector.create ~plan ~seed:1 () in
  let os = Mk.Os.boot ~fault:inj ~measure_latencies:Mk.Os.No_measure Platform.amd_2x2 in
  let m = Mk.Os.machine os in
  Mk.Os.run os (fun () ->
      let t0 = Engine.now_ () in
      let ft = Mk.Ft.attach ~until:(t0 + 900_000) os in
      let svc =
        Mk_apps.Ft_service.start os ft ~name:"kv" ~home:3 ~client_cores:[ 1 ]
          (fun x -> x * 3)
      in
      Injector.arm inj m.Machine.eng;
      let cl = Mk_apps.Ft_service.client svc ~core:1 in
      (* Call across the kill: early calls hit incarnation 1 on core 3;
         after the stop the client times out, polls the name service and
         fails over to incarnation 2. *)
      let oks = ref 0 and fails = ref 0 in
      for i = 1 to 40 do
        (match Mk_apps.Ft_service.call cl i with
        | Ok r ->
          check_int "value" (i * 3) r;
          incr oks
        | Error `Unavailable -> incr fails);
        Engine.wait 10_000
      done;
      let stop_abs =
        match Injector.stop_time inj ~core:3 with
        | Some s -> s
        | None -> Alcotest.fail "no stop time"
      in
      (* Detection within the configured bound. *)
      (match Mk.Ft.detected_at ft ~core:3 with
      | None -> Alcotest.fail "death not detected"
      | Some d ->
        check_bool "detected after the stop" true (d > stop_abs);
        check_bool "detected within bound" true
          (d - stop_abs <= Mk.Ft.detection_bound ft));
      (match Mk.Ft.recovered_at ft ~core:3 with
      | None -> Alcotest.fail "death not recovered"
      | Some r -> check_bool "recovered promptly" true (r - stop_abs <= 500_000));
      (* OS state: core marked dead, routing plans repaired around it. *)
      check_bool "core 3 dead" false (Mk.Os.alive os ~core:3);
      check_int "three live cores" 3 (List.length (Mk.Os.live_cores os));
      let p = Mk.Os.default_plan os ~root:0 ~members:[ 0; 1; 2; 3 ] in
      check_bool "plan avoids dead core" false
        (List.mem 3 (Mk.Routing.plan_cores p));
      (* The victim's monitor is halted; peers suspect it. *)
      check_bool "monitor halted" true
        (Mk.Monitor.is_halted (Mk.Os.monitor os ~core:3));
      check_bool "peer suspects corpse" true
        (Mk.Monitor.peer_suspected (Mk.Os.monitor os ~core:0) ~core:3);
      (* Service failover: new incarnation on a live core, re-registered. *)
      check_bool "respawned" true (Mk_apps.Ft_service.respawns svc >= 1);
      check_int "incarnation bumped" 2 (Mk_apps.Ft_service.incarnation svc);
      check_bool "new home is live" true
        (Mk.Os.alive os ~core:(Mk_apps.Ft_service.home svc));
      (match
         Mk.Name_service.lookup (Mk.Os.name_service os) ~from_core:1 ~name:"kv"
       with
      | None -> Alcotest.fail "service not re-registered"
      | Some r ->
        check_int "ns tag is current incarnation" 2 r.Mk.Name_service.srv_tag;
        check_int "ns home moved" (Mk_apps.Ft_service.home svc)
          r.Mk.Name_service.srv_core);
      (* The workload survived: calls before and after the kill landed. *)
      check_bool "client made progress" true (!oks >= 30);
      check_int "no unavailable windows beyond failover" 0 !fails;
      check_bool "client failed over" true (Mk_apps.Ft_service.failovers cl >= 1))

let suite =
  ( "ft",
    [
      tc "reliable backoff schedule" test_reliable_gives_up_with_backoff;
      tc "reliable recovers after window" test_reliable_recovers_after_window;
      tc "reliable dedups duplicates" test_reliable_dedups_duplicates;
      tc "end-to-end core death recovery" test_end_to_end_recovery;
    ] )
