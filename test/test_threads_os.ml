open Mk_sim
open Mk
open Test_util

(* ---- Threads ---- *)

let test_spawn_join () =
  run_os (fun os ->
      let m = Os.machine os in
      let dom = Os.spawn_domain os ~name:"tt" ~cores:[ 0; 1 ] in
      let hits = ref 0 in
      let ths =
        List.map
          (fun core ->
            Threads.spawn m ~disp:(Dom.dispatcher_on dom core) (fun () ->
                Engine.wait 100;
                incr hits))
          [ 0; 1 ]
      in
      List.iter Threads.join ths;
      check_int "both ran" 2 !hits)

let test_user_barrier () =
  run_os (fun os ->
      let m = Os.machine os in
      let dom = Os.spawn_domain os ~name:"bt" ~cores:[ 0; 1; 2; 3 ] in
      let bar = Threads.Barrier.create m ~parties:4 in
      let after = ref [] in
      let ths =
        List.map
          (fun core ->
            Threads.spawn m ~disp:(Dom.dispatcher_on dom core) (fun () ->
                Engine.wait (core * 1000) (* staggered arrivals *);
                Threads.Barrier.await bar ~core;
                after := Engine.now_ () :: !after))
          [ 0; 1; 2; 3 ]
      in
      List.iter Threads.join ths;
      check_int "all released" 4 (List.length !after);
      (* Nobody passes before the slowest arrival. *)
      List.iter (fun t -> check_bool "held back" true (t >= 3000)) !after)

let test_msg_barrier () =
  run_os (fun os ->
      let m = Os.machine os in
      let dom = Os.spawn_domain os ~name:"mb" ~cores:[ 0; 1; 2; 3 ] in
      let parties = List.mapi (fun i c -> (i, c)) [ 0; 1; 2; 3 ] in
      let bar = Threads.Msg_barrier.create m ~coordinator:0 ~parties in
      let released = ref 0 in
      let ths =
        List.map
          (fun (p, core) ->
            Threads.spawn m ~disp:(Dom.dispatcher_on dom core) (fun () ->
                Threads.Msg_barrier.await bar ~party:p;
                incr released))
          parties
      in
      List.iter Threads.join ths;
      check_int "all through" 4 !released)

let test_user_mutex () =
  run_os (fun os ->
      let m = Os.machine os in
      let mu = Threads.Mutex.create m in
      let inside = ref false in
      let violations = ref 0 in
      let done_ = Sync.Semaphore.create 0 in
      List.iter
        (fun core ->
          Engine.spawn_ (fun () ->
              Threads.Mutex.lock mu ~core;
              if !inside then incr violations;
              inside := true;
              Engine.wait 50;
              inside := false;
              Threads.Mutex.unlock mu ~core;
              Sync.Semaphore.release done_))
        [ 0; 1; 2; 3 ];
      for _ = 1 to 4 do
        Sync.Semaphore.acquire done_
      done;
      check_int "mutual exclusion" 0 !violations)

(* ---- OS-level ---- *)

let test_boot_services () =
  run_os ~measure_latencies:Mk.Os.Exhaustive (fun os ->
      check_int "cores" 4 (Os.n_cores os);
      (* Boot-time measurement populated the SKB for every pair. *)
      for s = 0 to 3 do
        for d = 0 to 3 do
          if s <> d then
            check_bool
              (Printf.sprintf "latency %d->%d measured" s d)
              true
              (Skb.urpc_latency (Os.skb os) ~src:s ~dst:d <> None)
        done
      done;
      check_bool "hardware facts present" true
        (Skb.holds (Os.skb os) (Skb.fact "num_cores" [ Skb.Int 4 ])))

let test_spawn_domain_dispatchers () =
  run_os (fun os ->
      let dom = Os.spawn_domain os ~name:"app" ~cores:[ 1; 3 ] in
      check_bool "spans" true (Dom.spans dom 1 && Dom.spans dom 3);
      check_bool "not on 0" false (Dom.spans dom 0);
      check_int "two dispatchers" 2 (List.length (Dom.dispatchers dom));
      (* Registered with the right CPU drivers. *)
      check_int "driver 1 has it" 1 (List.length (Cpu_driver.dispatchers (Os.driver os ~core:1)));
      check_int "driver 0 empty" 0 (List.length (Cpu_driver.dispatchers (Os.driver os ~core:0)));
      (* Spawn was announced to the spanned OS nodes. *)
      let key = Printf.sprintf "dom%d" (Dom.domid dom) in
      check_bool "announced" true (Monitor.get_replica (Os.monitor os ~core:3) key = Some 1))

let test_name_service () =
  run_os (fun os ->
      let ns = Os.name_service os in
      Name_service.register ns ~from_core:2 ~name:"pixie" ~tag:7;
      (match Name_service.lookup ns ~from_core:3 ~name:"pixie" with
       | Some r ->
         check_int "core" 2 r.Name_service.srv_core;
         check_int "tag" 7 r.Name_service.srv_tag
       | None -> Alcotest.fail "lookup failed");
      check_bool "missing name" true (Name_service.lookup ns ~from_core:1 ~name:"nope" = None);
      check_int "registered" 1 (Name_service.registered ns))

let test_flounder_rpc () =
  run_machine (fun m ->
      let b = Flounder.connect m ~name:"doubler" ~client:0 ~server:2 () in
      Flounder.export b (fun x -> x * 2);
      check_int "rpc" 14 (Flounder.rpc b 7);
      let wait = Flounder.rpc_async b 10 in
      check_int "split-phase" 20 (wait ());
      Flounder.oneway b 5;
      check_int "cores" 0 (Flounder.client_core b);
      check_int "server core" 2 (Flounder.server_core b))

let test_latency_function () =
  run_os ~measure_latencies:Mk.Os.Exhaustive (fun os ->
      check_int "self" 0 (Os.latency os ~src:1 ~dst:1);
      check_bool "measured positive" true (Os.latency os ~src:0 ~dst:3 > 0))

let test_comm_profile_placement () =
  run_os ~plat:Mk_hw.Platform.amd_4x4 (fun os ->
      (* Profiling starts after boot, so only our traffic is on the books.
         Each ping is one request send and one reply send. *)
      let recorder = Os.start_comm_profile os in
      let mon = Os.monitor os ~core:0 in
      ignore (Monitor.ping mon 5 : int);
      ignore (Monitor.ping mon 5 : int);
      ignore (Monitor.ping mon 2 : int);
      let edges = Os.stop_comm_profile os recorder in
      check_bool "0->5 twice" true (List.mem (0, 5, 2) edges);
      check_bool "5->0 twice" true (List.mem (5, 0, 2) edges);
      check_bool "0->2 once" true (List.mem (0, 2, 1) edges);
      (* Once stopped, later traffic is not recorded. *)
      ignore (Monitor.ping mon 2 : int);
      check_bool "stopped" true (Os.stop_comm_profile os recorder = edges);
      (* Close the loop: thread comm graph -> SKB facts -> placement. The
         chatty chain of four fits one package and must land on one. *)
      Os.assert_comm_edges os [ (0, 1, 80); (1, 2, 60); (2, 3, 40) ];
      let place = Os.comm_placement os ~threads:4 in
      let pkg c = Mk_hw.Platform.package_of (Os.platform os) c in
      check_int "distinct cores" 4
        (List.length (List.sort_uniq compare (Array.to_list place)));
      check_bool "chain co-packaged" true
        (pkg place.(0) = pkg place.(1)
        && pkg place.(1) = pkg place.(2)
        && pkg place.(2) = pkg place.(3)))

let suite =
  ( "threads-os",
    [
      tc "spawn/join" test_spawn_join;
      tc "user barrier" test_user_barrier;
      tc "msg barrier" test_msg_barrier;
      tc "user mutex" test_user_mutex;
      tc "boot services" test_boot_services;
      tc "spawn domain" test_spawn_domain_dispatchers;
      tc "name service" test_name_service;
      tc "flounder rpc" test_flounder_rpc;
      tc "latency function" test_latency_function;
      tc "comm profile placement" test_comm_profile_placement;
    ] )
