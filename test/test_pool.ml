(* The domain pool behind `main.exe -j` and the sharded sweeps: results in
   submission order, output replayed byte-identically, exceptions
   re-raised on the submitter, cross-domain counters absorbed. Each test
   creates and joins its own pool so the process never exits with live
   workers. *)

open Mk_sim
open Test_util

let with_pool ~jobs f =
  let p = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_ordered_results () =
  with_pool ~jobs:4 (fun p ->
      let r = Pool.run ~pool:p (List.init 20 (fun i () -> i * i)) in
      check_bool "squares in order" true (r = List.init 20 (fun i -> i * i)))

let test_inline_without_pool () =
  (* No explicit pool and no ambient pool: run degrades to inline
     execution on this domain, same results. *)
  let saved = Pool.ambient () in
  Pool.set_ambient None;
  Fun.protect
    ~finally:(fun () -> Pool.set_ambient saved)
    (fun () ->
      let r = Pool.run (List.init 5 (fun i () -> i + 1)) in
      check_bool "inline" true (r = [ 1; 2; 3; 4; 5 ]))

let test_output_replay_order () =
  (* Emitted output lands in per-job buffers and replays in submission
     order — including from nested Pool.run inside a job. *)
  let buf = Buffer.create 256 in
  with_pool ~jobs:3 (fun p ->
      Pool.redirect_to buf (fun () ->
          ignore
            (Pool.run ~pool:p
               (List.init 6 (fun i () ->
                    Pool.emit (Printf.sprintf "job%d start\n" i);
                    if i = 2 then
                      ignore
                        (Pool.run ~pool:p
                           [
                             (fun () -> Pool.emit "nested A\n");
                             (fun () -> Pool.emit "nested B\n");
                           ]
                          : unit list);
                    Pool.emit (Printf.sprintf "job%d end\n" i)))
              : unit list)));
  let expected =
    String.concat ""
      (List.init 6 (fun i ->
           Printf.sprintf "job%d start\n%sjob%d end\n" i
             (if i = 2 then "nested A\nnested B\n" else "")
             i))
  in
  check_string "deterministic transcript" expected (Buffer.contents buf)

let test_exception_replay () =
  (* A failing job re-raises on the submitter — but only after every
     job's output has been replayed, so partial results are visible. *)
  let buf = Buffer.create 64 in
  with_pool ~jobs:2 (fun p ->
      match
        Pool.redirect_to buf (fun () ->
            Pool.run ~pool:p
              [
                (fun () -> Pool.emit "one\n");
                (fun () -> failwith "boom");
                (fun () -> Pool.emit "three\n");
              ])
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m ->
        check_string "original exception" "boom" m;
        check_string "all output replayed" "one\nthree\n" (Buffer.contents buf))

let test_simulation_jobs_deterministic () =
  (* Independent engines on pool domains produce the same simulated times
     as inline execution. *)
  let sim seed () =
    run_sim (fun () ->
        Engine.wait (100 + seed);
        Engine.charge (10 * seed);
        Engine.flush_charge ();
        Engine.now_ ())
  in
  let jobs = List.init 8 sim in
  let inline_r = List.map (fun f -> f ()) jobs in
  with_pool ~jobs:4 (fun p ->
      check_bool "identical times" true (Pool.run ~pool:p jobs = inline_r))

let test_counter_absorption () =
  (* Events executed by jobs on worker domains count toward the
     submitter's totals: a sweep's event/allocation cost is attributed to
     the bench that sharded it, wherever the shards ran. *)
  let ev0 = Pool.total_executed () in
  with_pool ~jobs:4 (fun p ->
      ignore
        (Pool.run ~pool:p
           (List.init 6 (fun _ () ->
                run_sim (fun () ->
                    for _ = 1 to 50 do
                      Engine.wait 1
                    done)))
          : unit list));
  (* >= 300 scheduler events ran somewhere; all must be visible here. *)
  check_bool "events attributed to submitter" true (Pool.total_executed () - ev0 >= 300)

let test_size_reports_clamp () =
  with_pool ~jobs:64 (fun p ->
      let n = Pool.size p in
      check_bool "at least one domain" true (n >= 1);
      check_bool "clamped to host" true (n <= Domain.recommended_domain_count ()))

let suite =
  ( "pool",
    [
      tc "ordered results" test_ordered_results;
      tc "inline without pool" test_inline_without_pool;
      tc "output replay order" test_output_replay_order;
      tc "exception replay" test_exception_replay;
      tc "simulation jobs deterministic" test_simulation_jobs_deterministic;
      tc "counter absorption" test_counter_absorption;
      tc "size reports clamp" test_size_reports_clamp;
    ] )
