(* Coverage for the remaining public surface: error formatting, tracing,
   netif accounting, stack overhead knob, echo harness, flounder/name
   service edge cases. *)

open Mk_sim
open Mk_hw
open Test_util

let test_error_strings () =
  let open Mk.Types in
  List.iter
    (fun e -> check_bool "non-empty" true (String.length (error_to_string e) > 0))
    [ Err_no_memory; Err_cap_not_found; Err_cap_type "x"; Err_cap_rights;
      Err_retype_conflict; Err_revoke_in_progress; Err_already_mapped;
      Err_not_mapped; Err_channel_full; Err_not_registered; Err_invalid_args "y" ];
  (* The registered printer renders Mk_error. *)
  check_bool "printer" true
    (String.length (Printexc.to_string (Mk_error Err_no_memory)) > 0)

let test_vpage_math () =
  let open Mk.Types in
  check_int "page 0" 0 (vpage_of_vaddr 0);
  check_int "page 0 end" 0 (vpage_of_vaddr (page_size - 1));
  check_int "page 1" 1 (vpage_of_vaddr page_size);
  check_int "big" 0x123 (vpage_of_vaddr (0x123 * page_size))

let test_cap_pp () =
  let db = Mk.Cap.Db.create ~core:0 in
  let ram = Mk.Cap.Db.mint_ram db ~base:0x1000 ~bytes:4096 in
  let s = Format.asprintf "%a" Mk.Cap.pp ram in
  check_bool "mentions type" true
    (let rec find i =
       i + 3 <= String.length s && (String.sub s i 3 = "RAM" || find (i + 1))
     in
     find 0)

let test_trace_sources () =
  let src = Trace.make "testsrc" in
  (* Disabled by default: logging is a no-op but must not raise. *)
  Trace.debugf src "value %d" 42;
  Trace.infof src "hello %s" "world"

let test_trace_lazy () =
  let src = Trace.make "testsrc-lazy" in
  let evaluated = ref false in
  let probe ppf = evaluated := true; Format.pp_print_string ppf "probe" in
  (* Disabled source: the %t closure must never run — disabled tracing on
     hot paths has to cost a level check, not argument formatting. *)
  Trace.debugf src "expensive: %t" probe;
  Trace.infof src "expensive: %t" probe;
  check_bool "disabled trace does not format" false !evaluated;
  (* Enabled source: the same call site now renders its arguments. *)
  Trace.set_level src (Some Logs.Debug);
  Trace.debugf src "expensive: %t" probe;
  check_bool "enabled trace formats" true !evaluated;
  Trace.set_level src None

let test_netif_counters () =
  run_machine (fun m ->
      let delivered = ref 0 in
      let nif = Mk_net.Netif.create ~name:"ctr" ~mac:5 ~send:(fun _ -> ()) in
      Mk_net.Netif.set_rx nif (fun _ -> incr delivered);
      let p = Mk_net.Pbuf.of_string m "x" in
      Mk_net.Netif.transmit nif p;
      Mk_net.Netif.deliver nif p;
      Mk_net.Netif.deliver nif p;
      check_int "handler ran" 2 !delivered;
      check_int "no drops without loss" 0 (Mk_net.Netif.drops nif))

let test_kernel_overhead_slows_stack () =
  let run_with overhead =
    run_machine (fun m ->
        let nif_a, nif_b = Mk_net.Stack.connect_urpc m ~core_a:0 ~core_b:2 () in
        let sa = Mk_net.Stack.create m ~core:0 ~kernel_overhead:overhead nif_a in
        let sb = Mk_net.Stack.create m ~core:2 ~kernel_overhead:overhead nif_b in
        let sock_a = Mk_net.Stack.udp_bind sa ~port:1 in
        let sock_b = Mk_net.Stack.udp_bind sb ~port:2 in
        let t0 = Engine.now_ () in
        Mk_net.Stack.udp_sendto sock_a ~dst_ip:(Mk_net.Stack.ip sb) ~dst_port:2
          (Mk_net.Pbuf.of_string m "probe");
        ignore (Mk_net.Stack.udp_recvfrom sock_b);
        Engine.now_ () - t0)
  in
  let fast = run_with 0 and slow = run_with 10_000 in
  check_bool "overhead charged" true (slow > fast + 10_000)

let test_flounder_interleaved_clients () =
  run_machine (fun m ->
      let b = Mk.Flounder.connect m ~name:"inc" ~client:0 ~server:2 () in
      Mk.Flounder.export b (fun x -> x + 1);
      let results = ref [] in
      let done_ = Sync.Semaphore.create 0 in
      for i = 1 to 5 do
        Engine.spawn_ (fun () ->
            results := (i, Mk.Flounder.rpc b (10 * i)) :: !results;
            Sync.Semaphore.release done_)
      done;
      for _ = 1 to 5 do
        Sync.Semaphore.acquire done_
      done;
      (* Serialized on the binding, but every caller got its own answer. *)
      List.iter
        (fun (i, r) -> check_int "matched reply" ((10 * i) + 1) r)
        !results)

let test_name_service_shadowing () =
  run_os (fun os ->
      let ns = Mk.Os.name_service os in
      Mk.Name_service.register ns ~from_core:1 ~name:"svc" ~tag:1;
      Mk.Name_service.register ns ~from_core:2 ~name:"svc" ~tag:9;
      match Mk.Name_service.lookup ns ~from_core:3 ~name:"svc" with
      | Some r ->
        check_int "latest wins" 2 r.Mk.Name_service.srv_core;
        check_int "tag" 9 r.Mk.Name_service.srv_tag
      | None -> Alcotest.fail "lookup failed")

let test_urpc_stats_under_load () =
  run_machine (fun m ->
      let ch = Mk.Urpc.create m ~sender:0 ~receiver:2 ~slots:4 () in
      Engine.spawn_ (fun () ->
          for _ = 1 to 50 do
            ignore (Mk.Urpc.recv ch : int)
          done);
      for i = 1 to 50 do
        Mk.Urpc.send ch i
      done;
      Engine.wait 1_000_000;
      check_int "sent" 50 (Mk.Urpc.stats_sent ch);
      check_int "received" 50 (Mk.Urpc.stats_received ch);
      check_int "drained" 0 (Mk.Urpc.pending ch))

let test_echo_harness_under_light_load () =
  run_machine ~plat:Platform.intel_2x4 (fun m ->
      let nic = Mk_net.Nic.create m ~driver_core:2 () in
      let stack = Mk_net.Stack.create m ~core:2 ~checksum_offload:true (Mk_net.Nic.netif nic) in
      let r =
        Mk_apps.Echo.run m ~nic ~app_stack:stack ~port:7 ~payload_bytes:200
          ~offered_mbps:50.0 ~duration:1_000_000
      in
      check_bool "some echoes" true (r.Mk_apps.Echo.echoed > 0);
      check_int "no drops at light load" 0 r.Mk_apps.Echo.dropped;
      check_bool "achieved under offered" true
        (r.Mk_apps.Echo.achieved_mbps <= 55.0))

let test_stats_summary () =
  let s = Stats.create () in
  Stats.add_int s 10;
  Stats.add_int s 20;
  check_bool "summary text" true (String.length (Stats.summary s) > 10)

let suite =
  ( "misc",
    [
      tc "error strings" test_error_strings;
      tc "vpage math" test_vpage_math;
      tc "cap pp" test_cap_pp;
      tc "trace sources" test_trace_sources;
      tc "trace lazy formatting" test_trace_lazy;
      tc "netif counters" test_netif_counters;
      tc "kernel overhead" test_kernel_overhead_slows_stack;
      tc "flounder interleaved" test_flounder_interleaved_clients;
      tc "name service shadowing" test_name_service_shadowing;
      tc "urpc stats under load" test_urpc_stats_under_load;
      tc "echo light load" test_echo_harness_under_light_load;
      tc "stats summary" test_stats_summary;
    ] )
