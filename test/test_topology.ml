open Mk_hw
open Test_util

let ring n = Topology.create ~n ~links:(List.init n (fun i -> (i, (i + 1) mod n)))

let test_basics () =
  let t = ring 6 in
  check_int "nodes" 6 (Topology.n_nodes t);
  check_int "self distance" 0 (Topology.hops t 2 2);
  check_int "neighbor" 1 (Topology.hops t 0 1);
  check_int "across" 3 (Topology.hops t 0 3);
  check_int "diameter" 3 (Topology.diameter t)

let test_symmetry () =
  let t = ring 7 in
  for a = 0 to 6 do
    for b = 0 to 6 do
      check_int "symmetric" (Topology.hops t a b) (Topology.hops t b a)
    done
  done

let test_path_validity () =
  let t = Platform.amd_8x4.Platform.topo in
  for s = 0 to 7 do
    for d = 0 to 7 do
      let p = Topology.path_directed t s d in
      check_int "length = hops" (Topology.hops t s d) (List.length p);
      (* Consecutive hops chain from s to d. *)
      let rec walk cur = function
        | [] -> check_int "ends at destination" d cur
        | (u, v) :: rest ->
          check_int "chains" cur u;
          walk v rest
      in
      walk s p
    done
  done

let test_fully_connected () =
  let t = Topology.fully_connected ~n:5 in
  check_int "links" 10 (Array.length (Topology.links t));
  check_int "diameter 1" 1 (Topology.diameter t)

let test_rejects_bad_input () =
  let fails f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check_bool "self loop" true (fails (fun () -> Topology.create ~n:2 ~links:[ (0, 0) ]));
  check_bool "out of range" true (fails (fun () -> Topology.create ~n:2 ~links:[ (0, 5) ]));
  check_bool "disconnected" true (fails (fun () -> Topology.create ~n:4 ~links:[ (0, 1); (2, 3) ]));
  check_bool "zero nodes" true (fails (fun () -> Topology.create ~n:0 ~links:[]))

let test_duplicate_links_ignored () =
  let t = Topology.create ~n:2 ~links:[ (0, 1); (1, 0); (0, 1) ] in
  check_int "one link" 1 (Array.length (Topology.links t))

let test_contiguous_partition () =
  let t = ring 8 in
  let p = Topology.contiguous_partition t ~parts:4 in
  Alcotest.(check (array int)) "even split" [| 0; 0; 1; 1; 2; 2; 3; 3 |] p;
  let p = Topology.contiguous_partition t ~parts:3 in
  Alcotest.(check (array int)) "uneven split stays contiguous" [| 0; 0; 0; 1; 1; 1; 2; 2 |] p;
  let p = Topology.contiguous_partition t ~parts:1 in
  Alcotest.(check (array int)) "single class" (Array.make 8 0) p;
  let t1 = Topology.create ~n:1 ~links:[] in
  Alcotest.(check (array int)) "more parts than nodes" [| 0 |]
    (Topology.contiguous_partition t1 ~parts:4);
  check_bool "rejects zero parts" true
    (match Topology.contiguous_partition t ~parts:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_min_cross_latency () =
  let t = ring 8 in
  let part = Topology.contiguous_partition t ~parts:4 in
  let m = Topology.min_cross_latency t ~part in
  check_int "diagonal" 0 m.(1).(1);
  (* Adjacent quarters of the ring touch: nodes 1 and 2 are one hop. *)
  check_int "adjacent classes" 1 m.(0).(1);
  check_int "symmetric" m.(1).(0) m.(0).(1);
  (* Opposite quarters of the ring: the closest nodes are 3 hops apart. *)
  check_int "opposite classes" 3 m.(0).(2);
  (* The amd ladder split in half: packages {0..3} vs {4..7}. *)
  let amd = Platform.amd_8x4.Platform.topo in
  let part = Topology.contiguous_partition amd ~parts:2 in
  let m = Topology.min_cross_latency amd ~part in
  check_int "ladder halves touch" 1 m.(0).(1);
  check_bool "rejects size mismatch" true
    (match Topology.min_cross_latency t ~part:[| 0; 1 |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "rejects negative class" true
    (match Topology.min_cross_latency t ~part:(Array.make 8 (-1)) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let qcheck_min_cross_latency_is_min =
  qtest "min_cross_latency matches brute force" ~count:50
    QCheck2.Gen.(pair (int_range 2 8) (int_range 1 4))
    (fun (n, parts) ->
      let t = ring n in
      let parts = min parts n in
      let part = Topology.contiguous_partition t ~parts in
      let m = Topology.min_cross_latency t ~part in
      let ok = ref true in
      for a = 0 to parts - 1 do
        for b = 0 to parts - 1 do
          let brute = ref (if a = b then 0 else max_int) in
          if a <> b then
            for u = 0 to n - 1 do
              for v = 0 to n - 1 do
                if part.(u) = a && part.(v) = b && Topology.hops t u v < !brute then
                  brute := Topology.hops t u v
              done
            done;
          if m.(a).(b) <> !brute then ok := false
        done
      done;
      !ok)

let qcheck_triangle_inequality =
  qtest "hop counts obey the triangle inequality" ~count:50
    QCheck2.Gen.(int_range 3 8)
    (fun n ->
      let t = ring n in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          for c = 0 to n - 1 do
            if Topology.hops t a c > Topology.hops t a b + Topology.hops t b c then
              ok := false
          done
        done
      done;
      !ok)

(* Independent reference: dense all-pairs BFS with ascending-neighbor
   tie-breaking, the algorithm the pre-closed-form implementation ran for
   every source eagerly. The sub-quadratic paths (closed forms, lazy
   rows) must answer identically. *)
let ref_rows ~n ~links =
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    links;
  let adj = Array.map (List.sort_uniq compare) adj in
  Array.init n (fun s ->
      let dist = Array.make n max_int and next = Array.make n (-1) in
      dist.(s) <- 0;
      next.(s) <- s;
      let q = Queue.create () in
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun v ->
            if dist.(v) = max_int then begin
              dist.(v) <- dist.(u) + 1;
              next.(v) <- (if u = s then v else next.(u));
              Queue.add v q
            end)
          adj.(u)
      done;
      (dist, next))

let check_matches_reference name t ~links =
  let n = Topology.n_nodes t in
  let rows = ref_rows ~n ~links in
  for s = 0 to n - 1 do
    let dist, next = rows.(s) in
    for d = 0 to n - 1 do
      check_int (Printf.sprintf "%s hops %d->%d" name s d) dist.(d) (Topology.hops t s d);
      check_int
        (Printf.sprintf "%s next %d->%d" name s d)
        next.(d) (Topology.next_hop t s d)
    done
  done;
  (* Link enumeration must match the normalized sorted set. *)
  let want =
    List.map (fun (a, b) -> (min a b, max a b)) links
    |> List.sort_uniq compare |> Array.of_list
  in
  Alcotest.(check (array (pair int int))) (name ^ " links") want (Topology.links t);
  (* Diameter = the largest distance anywhere. *)
  let dm = ref 0 in
  Array.iter (fun (dist, _) -> Array.iter (fun d -> if d > !dm then dm := d) dist) rows;
  check_int (name ^ " diameter") !dm (Topology.diameter t)

let complete_links n =
  List.concat (List.init n (fun i -> List.init (n - 1 - i) (fun k -> (i, i + 1 + k))))

let tree_links n = List.init (n - 1) (fun k -> ((k + 1 - 1) / 2, k + 1))

let mesh_links n side =
  List.concat
    (List.init n (fun p ->
         let right = if (p mod side) + 1 < side && p + 1 < n then [ (p, p + 1) ] else [] in
         let down = if p + side < n then [ (p, p + side) ] else [] in
         right @ down))

(* Closed-form families at boundary sizes: n = 1, 2, and awkward
   non-powers-of-two (ragged mesh rows, lopsided trees). *)
let test_closed_forms_match_bfs () =
  List.iter
    (fun n ->
      check_matches_reference
        (Printf.sprintf "complete n=%d" n)
        (Topology.fully_connected ~n) ~links:(complete_links n);
      check_matches_reference
        (Printf.sprintf "tree n=%d" n)
        (Topology.tree ~n) ~links:(tree_links n))
    [ 1; 2; 3; 5; 6; 7; 12; 13; 31; 33 ];
  List.iter
    (fun (n, side) ->
      check_matches_reference
        (Printf.sprintf "mesh n=%d side=%d" n side)
        (Topology.mesh ~n ~side) ~links:(mesh_links n side))
    [ (1, 1); (2, 2); (2, 1); (6, 3); (7, 3); (9, 3); (11, 4); (16, 4) ]

(* The large platform constructors route through these shapes; pin that
   their topologies match a from-links build (Irregular lazy rows). *)
let test_synthetic_platforms_match () =
  List.iter
    (fun plat ->
      let topo = plat.Platform.topo in
      let links = Array.to_list (Topology.links topo) in
      check_matches_reference plat.Platform.name topo ~links)
    [
      Platform.synthetic_tree ~packages:17 ~cores_per_package:4;
      Platform.synthetic_mesh ~packages:13 ~cores_per_package:4;
      Platform.synthetic_bands ~bands:3 ~packages_per_band:4 ~cores_per_package:2;
    ]

let qcheck_routing_matches_dense_bfs =
  qtest "lazy/closed-form routing = dense all-pairs BFS" ~count:120
    QCheck2.Gen.(pair (int_range 1 12) (int_bound 0x3FFFFFFF))
    (fun (n, seed) ->
      (* Deterministic random connected graph: a random spanning tree plus
         a few random extra edges, from a local LCG. *)
      let state = ref seed in
      let rand m =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state mod m
      in
      let tree = List.init (n - 1) (fun k -> (rand (k + 1), k + 1)) in
      let extra =
        if n < 2 then []
        else
          List.filter_map
            (fun _ ->
              let a = rand n and b = rand n in
              if a = b then None else Some (min a b, max a b))
            (List.init (rand (n + 1)) Fun.id)
      in
      let links = tree @ extra in
      let t = Topology.create ~n ~links in
      let rows = ref_rows ~n ~links in
      let ok = ref true in
      for s = 0 to n - 1 do
        let dist, next = rows.(s) in
        for d = 0 to n - 1 do
          if Topology.hops t s d <> dist.(d) || Topology.next_hop t s d <> next.(d) then
            ok := false
        done
      done;
      !ok)

let suite =
  ( "topology",
    [
      tc "basics" test_basics;
      tc "symmetry" test_symmetry;
      tc "path validity" test_path_validity;
      tc "fully connected" test_fully_connected;
      tc "rejects bad input" test_rejects_bad_input;
      tc "duplicate links" test_duplicate_links_ignored;
      tc "contiguous partition" test_contiguous_partition;
      tc "min cross latency" test_min_cross_latency;
      tc "closed forms match dense BFS" test_closed_forms_match_bfs;
      tc "synthetic platforms match dense BFS" test_synthetic_platforms_match;
      qcheck_min_cross_latency_is_min;
      qcheck_triangle_inequality;
      qcheck_routing_matches_dense_bfs;
    ] )
