open Mk_hw
open Test_util

let ring n = Topology.create ~n ~links:(List.init n (fun i -> (i, (i + 1) mod n)))

let test_basics () =
  let t = ring 6 in
  check_int "nodes" 6 (Topology.n_nodes t);
  check_int "self distance" 0 (Topology.hops t 2 2);
  check_int "neighbor" 1 (Topology.hops t 0 1);
  check_int "across" 3 (Topology.hops t 0 3);
  check_int "diameter" 3 (Topology.diameter t)

let test_symmetry () =
  let t = ring 7 in
  for a = 0 to 6 do
    for b = 0 to 6 do
      check_int "symmetric" (Topology.hops t a b) (Topology.hops t b a)
    done
  done

let test_path_validity () =
  let t = Platform.amd_8x4.Platform.topo in
  for s = 0 to 7 do
    for d = 0 to 7 do
      let p = Topology.path_directed t s d in
      check_int "length = hops" (Topology.hops t s d) (List.length p);
      (* Consecutive hops chain from s to d. *)
      let rec walk cur = function
        | [] -> check_int "ends at destination" d cur
        | (u, v) :: rest ->
          check_int "chains" cur u;
          walk v rest
      in
      walk s p
    done
  done

let test_fully_connected () =
  let t = Topology.fully_connected ~n:5 in
  check_int "links" 10 (Array.length (Topology.links t));
  check_int "diameter 1" 1 (Topology.diameter t)

let test_rejects_bad_input () =
  let fails f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check_bool "self loop" true (fails (fun () -> Topology.create ~n:2 ~links:[ (0, 0) ]));
  check_bool "out of range" true (fails (fun () -> Topology.create ~n:2 ~links:[ (0, 5) ]));
  check_bool "disconnected" true (fails (fun () -> Topology.create ~n:4 ~links:[ (0, 1); (2, 3) ]));
  check_bool "zero nodes" true (fails (fun () -> Topology.create ~n:0 ~links:[]))

let test_duplicate_links_ignored () =
  let t = Topology.create ~n:2 ~links:[ (0, 1); (1, 0); (0, 1) ] in
  check_int "one link" 1 (Array.length (Topology.links t))

let test_contiguous_partition () =
  let t = ring 8 in
  let p = Topology.contiguous_partition t ~parts:4 in
  Alcotest.(check (array int)) "even split" [| 0; 0; 1; 1; 2; 2; 3; 3 |] p;
  let p = Topology.contiguous_partition t ~parts:3 in
  Alcotest.(check (array int)) "uneven split stays contiguous" [| 0; 0; 0; 1; 1; 1; 2; 2 |] p;
  let p = Topology.contiguous_partition t ~parts:1 in
  Alcotest.(check (array int)) "single class" (Array.make 8 0) p;
  let t1 = Topology.create ~n:1 ~links:[] in
  Alcotest.(check (array int)) "more parts than nodes" [| 0 |]
    (Topology.contiguous_partition t1 ~parts:4);
  check_bool "rejects zero parts" true
    (match Topology.contiguous_partition t ~parts:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_min_cross_latency () =
  let t = ring 8 in
  let part = Topology.contiguous_partition t ~parts:4 in
  let m = Topology.min_cross_latency t ~part in
  check_int "diagonal" 0 m.(1).(1);
  (* Adjacent quarters of the ring touch: nodes 1 and 2 are one hop. *)
  check_int "adjacent classes" 1 m.(0).(1);
  check_int "symmetric" m.(1).(0) m.(0).(1);
  (* Opposite quarters of the ring: the closest nodes are 3 hops apart. *)
  check_int "opposite classes" 3 m.(0).(2);
  (* The amd ladder split in half: packages {0..3} vs {4..7}. *)
  let amd = Platform.amd_8x4.Platform.topo in
  let part = Topology.contiguous_partition amd ~parts:2 in
  let m = Topology.min_cross_latency amd ~part in
  check_int "ladder halves touch" 1 m.(0).(1);
  check_bool "rejects size mismatch" true
    (match Topology.min_cross_latency t ~part:[| 0; 1 |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "rejects negative class" true
    (match Topology.min_cross_latency t ~part:(Array.make 8 (-1)) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let qcheck_min_cross_latency_is_min =
  qtest "min_cross_latency matches brute force" ~count:50
    QCheck2.Gen.(pair (int_range 2 8) (int_range 1 4))
    (fun (n, parts) ->
      let t = ring n in
      let parts = min parts n in
      let part = Topology.contiguous_partition t ~parts in
      let m = Topology.min_cross_latency t ~part in
      let ok = ref true in
      for a = 0 to parts - 1 do
        for b = 0 to parts - 1 do
          let brute = ref (if a = b then 0 else max_int) in
          if a <> b then
            for u = 0 to n - 1 do
              for v = 0 to n - 1 do
                if part.(u) = a && part.(v) = b && Topology.hops t u v < !brute then
                  brute := Topology.hops t u v
              done
            done;
          if m.(a).(b) <> !brute then ok := false
        done
      done;
      !ok)

let qcheck_triangle_inequality =
  qtest "hop counts obey the triangle inequality" ~count:50
    QCheck2.Gen.(int_range 3 8)
    (fun n ->
      let t = ring n in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          for c = 0 to n - 1 do
            if Topology.hops t a c > Topology.hops t a b + Topology.hops t b c then
              ok := false
          done
        done
      done;
      !ok)

let suite =
  ( "topology",
    [
      tc "basics" test_basics;
      tc "symmetry" test_symmetry;
      tc "path validity" test_path_validity;
      tc "fully connected" test_fully_connected;
      tc "rejects bad input" test_rejects_bad_input;
      tc "duplicate links" test_duplicate_links_ignored;
      tc "contiguous partition" test_contiguous_partition;
      tc "min cross latency" test_min_cross_latency;
      qcheck_min_cross_latency_is_min;
      qcheck_triangle_inequality;
    ] )
