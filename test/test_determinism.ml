(* Golden determinism regression: the simulator's *simulated-time* results
   must not drift when the host-side hot paths change. These literals were
   captured from the growth seed; fig6, table2 and the scaling extension
   exercise the heap, the FIFO fast path, the coherence model, URPC and
   the monitor mesh end to end, so any semantic slip in a performance
   change shows up here as a number diff. *)

open Test_util

(* Run a bench with its output redirected into a buffer, and return the
   non-empty lines (leading/trailing blank lines are layout, not data). *)
let capture f =
  let buf = Buffer.create 4096 in
  let () = Mk_benches.Common.redirect_to buf f in
  Buffer.contents buf
  |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")

let check_golden name expected actual =
  Alcotest.(check (list string)) name expected actual

let fig6_golden =
  [ {|==== Figure 6: TLB shootdown protocols (8x4-core AMD) ====|};
      {|cores    Broadcast      Unicast    Multicast   NUMA-Mcast|};
      {|    2         1102         1122         1122         1122|};
      {|    4         1498         1518         1518         1518|};
      {|    6         1990         1970         2956         2958|};
      {|    8         2520         2432         3352         3354|};
      {|   10         3376         2936         3578         3580|};
      {|   12         4232         3478         3578         3580|};
      {|   14         5114         4110         3808         3676|};
      {|   16         5982         4762         3808         3826|};
      {|   18         6850         5414         4038         4056|};
      {|   20         7718         6066         4038         4056|};
      {|   22         8586         6718         4268         4286|};
      {|   24         9454         7370         4268         4286|};
      {|   26        10348         8032         4503         4382|};
      {|   28        11228         8694         4503         4537|};
      {|   30        12108         9356         4738         4772|};
      {|   32        12988        10018         4738         4772|} ]

let table2_golden =
  [ {|==== Table 2: URPC performance ====|};
      {|System             Cache         Latency   (sd)       ns  msgs/kcycle|};
      {|2x4-core Intel     shared            219     94       82        10.48|};
      {|2x4-core Intel     non-shared        570     23      214         3.56|};
      {|2x2-core AMD       same die          442     16      158         4.57|};
      {|2x2-core AMD       one-hop           517      0      184         3.85|};
      {|4x4-core AMD       shared            433     30      173         4.74|};
      {|4x4-core AMD       one-hop           540      7      216         3.70|};
      {|4x4-core AMD       2-hop             551      5      220         3.62|};
      {|8x4-core AMD       shared            533      5      266         3.75|};
      {|8x4-core AMD       one-hop           606     11      302         3.26|};
      {|8x4-core AMD       2-hop             617     13      308         3.19|};
      {|8x4-core AMD       3-hop             628     16      314         3.13|} ]

let fig3_golden =
  [ {|==== Figure 3: shared memory vs message passing (4x4-core AMD) ====|};
      {|cores       SHM1      SHM2      SHM4      SHM8       MSG1      MSG8    Server|};
      {|    2        142       344       688      1376        856       877       358|};
      {|    4        172       344       688      1376        936       994       347|};
      {|    6        253       520      1030      2023       1666      1771       368|};
      {|    8        241      1438      2879      5759       2406      2553       377|};
      {|   10        899      1799      3599      7199       3144      3333       382|};
      {|   12       1079      2159      4319      8639       3882      4113       386|};
      {|   14       1258      2519      5039     10079       4632      4905       389|};
      {|   16       1438      2878      5758     11518       5382      5697       391|} ]

let polling_golden =
  [ {|==== Section 5.2: the cost of polling (P = C = 6000 cycles) ====|};
      {|   arrival t   model overhead simulated overhead|};
      {|           0                0               1732|};
      {|        1000             1000               1732|};
      {|        3000             3000               1732|};
      {|        5999             5999               7732|};
      {|        6001            12000               7732|};
      {|        9000            12000               7732|};
      {|       20000            12000               7732|};
      {|Model bounds: overhead <= 2C = 12000; latency <= C = 6000|} ]

let scaling_golden =
  [ {|==== Scaling extension: synthetic mesh machines up to 128 cores ====|};
      {| cores       mk unmap         mk 2PC    Linux-IPI unmap|};
      {|    16           9906           8850              18968|};
      {|    32          11408          12794              35783|};
      {|    64          14807          24084              69428|};
      {|    96          18675          31446             103043|};
      {|   128          22797          40166             136628|};
      {|-- PDES sharded multicast unmap (4 shards) --|};
      {| cores   rounds   unmap(cyc)     events     windows  lookahead|};
      {|    64       10        11038      45504         389        265|} ]

let test_fig6 () = check_golden "fig6" fig6_golden (capture Mk_benches.Fig6.run)

let test_table2 () =
  check_golden "table2" table2_golden (capture Mk_benches.Table2.run)

let test_scaling () =
  check_golden "scaling" scaling_golden (capture Mk_benches.Scaling.run)

let test_fig3 () = check_golden "fig3" fig3_golden (capture Mk_benches.Fig3.run)

let test_polling () =
  check_golden "polling" polling_golden (capture Mk_benches.Polling.run)

let suite =
  ( "determinism-golden",
    [
      tc "fig6 unchanged" test_fig6;
      tc "table2 unchanged" test_table2;
      tc "scaling unchanged" test_scaling;
      tc "fig3 unchanged" test_fig3;
      tc "polling unchanged" test_polling;
    ] )
