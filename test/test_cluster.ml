(* The cluster serving subsystem: load-balancer policy correctness
   (including consistent-hash stability when a backend dies), session
   shard affinity across machines and cores, the Ft-driven death path on
   a backend OS, and the determinism referee — one cell of the cluster
   sweep recomputed on 1/2/4-domain PDES teams must produce identical
   results (placement never leaks into simulated numbers). *)

open Mk_sim
open Mk_cluster
open Test_util

let with_domains d f =
  Pdes.set_domains_override (Some d);
  Fun.protect ~finally:(fun () -> Pdes.set_domains_override None) f

(* -- Lb policies (pure state machine, no simulation) ------------------ *)

let test_rr () =
  let lb = Lb.create Lb.Round_robin ~backends:3 in
  let picks = List.init 6 (fun s -> Lb.pick lb ~session:s) in
  check_bool "cycles" true
    (picks = [ Some 0; Some 1; Some 2; Some 0; Some 1; Some 2 ]);
  Lb.mark_dead lb 1;
  let picks = List.init 4 (fun s -> Lb.pick lb ~session:s) in
  check_bool "skips dead" true (picks = [ Some 0; Some 2; Some 0; Some 2 ]);
  Lb.mark_dead lb 0;
  Lb.mark_dead lb 2;
  check_bool "all dead" true (Lb.pick lb ~session:9 = None);
  Lb.mark_alive lb 1;
  check_bool "revived" true (Lb.pick lb ~session:9 = Some 1)

let test_lo () =
  let lb = Lb.create Lb.Least_outstanding ~backends:3 in
  check_bool "ties to lowest index" true (Lb.pick lb ~session:0 = Some 0);
  Lb.note_sent lb 0;
  Lb.note_sent lb 1;
  check_bool "least loaded" true (Lb.pick lb ~session:1 = Some 2);
  Lb.note_sent lb 2;
  Lb.note_sent lb 2;
  check_bool "min again" true (Lb.pick lb ~session:2 = Some 0);
  Lb.note_done lb 2;
  Lb.note_done lb 2;
  Lb.mark_dead lb 2;
  check_bool "dead excluded even at 0 outstanding" true
    (Lb.pick lb ~session:3 = Some 0)

(* The referee property for consistent hashing: killing one backend moves
   ONLY the sessions that backend owned; everyone else's mapping is
   untouched (the whole point of the ring vs. `mod n`). *)
let test_ch_stability () =
  let lb = Lb.create Lb.Consistent_hash ~backends:4 in
  let before = Array.init 500 (fun s -> Lb.pick lb ~session:s) in
  (* Sanity: the ring actually spreads sessions across all backends. *)
  let used = Array.make 4 0 in
  Array.iter
    (function Some b -> used.(b) <- used.(b) + 1 | None -> Alcotest.fail "pick")
    before;
  Array.iteri (fun b n -> check_bool (Printf.sprintf "backend %d used" b) true (n > 0)) used;
  Lb.mark_dead lb 2;
  Array.iteri
    (fun s old ->
      let now = Lb.pick lb ~session:s in
      match old with
      | Some 2 ->
        check_bool "dead backend's sessions moved somewhere live" true
          (match now with Some b -> b <> 2 | None -> false)
      | old -> check_bool (Printf.sprintf "session %d stable" s) true (now = old))
    before;
  (* Same-session picks are deterministic. *)
  check_bool "repeatable" true (Lb.pick lb ~session:123 = Lb.pick lb ~session:123)

(* -- session shard affinity across the cluster ------------------------ *)

(* Repeated probes for one session land on the same backend machine AND
   the same worker core, and its hit count climbs — per-core state is
   never shared or migrated. Distinct sessions spread over backends. *)
let test_affinity () =
  let cl = Cluster.create (Cluster.default_config ~machines:2 ()) in
  let open Mk_apps in
  let rp1, lat1 = Cluster.probe cl ~session:7 in
  let rp2, _ = Cluster.probe cl ~session:7 in
  let rp3, _ = Cluster.probe cl ~session:7 in
  check_int "status" 200 rp1.Serve.rp_status;
  check_bool "positive latency" true (lat1 > 0);
  check_int "same backend" rp1.Serve.rp_backend rp3.Serve.rp_backend;
  check_int "same core" rp1.Serve.rp_core rp3.Serve.rp_core;
  check_int "hits 1" 1 rp1.Serve.rp_hits;
  check_int "hits 2" 2 rp2.Serve.rp_hits;
  check_int "hits 3" 3 rp3.Serve.rp_hits;
  (* The LB's ring and the cluster's routing agree on placement. *)
  let ring = Lb.create Lb.Consistent_hash ~backends:2 in
  check_bool "placement matches the ring" true
    (Lb.pick ring ~session:7 = Some rp1.Serve.rp_backend);
  (* The owner core is a worker on the backend's session service, and the
     session is recorded on that worker's shard only. *)
  let s = Serve.session (Cluster.backend_serve cl rp1.Serve.rp_backend) in
  check_int "owner core" (Mk.Session.owner_core s ~session:7) rp1.Serve.rp_core;
  check_int "one entry on the owner shard" 1
    (Mk.Session.sessions_on s ~core:rp1.Serve.rp_core);
  check_int "one entry on the whole backend" 1 (Mk.Session.sessions s)

(* Under a closed-loop run with consistent hashing, every user that got
   served has exactly one session entry, on exactly one machine. *)
let test_load_affinity () =
  let cl = Cluster.create (Cluster.default_config ~machines:2 ()) in
  let r = Cluster.run_load cl ~users:300 ~think:4_000_000 ~warmup:1_000_000 ~window:8_000_000 in
  check_bool "users started" true (r.Cluster.r_users_started > 0);
  check_int "every request answered"
    (r.Cluster.r_completed_total + r.Cluster.r_shed_total)
    r.Cluster.r_issued_total;
  check_bool "entries never exceed started users" true
    (r.Cluster.r_session_entries <= r.Cluster.r_users_started);
  check_bool "only shed users can be missing" true
    (r.Cluster.r_users_started - r.Cluster.r_session_entries <= r.Cluster.r_shed_total);
  (* Both machines served, and the traffic split sees both levels. *)
  Array.iter (fun (served, _) -> check_bool "backend served" true (served > 0))
    r.Cluster.r_per_backend;
  check_bool "inter-machine frames" true (r.Cluster.r_inter_frames > 0);
  check_bool "intra-machine urpc" true (r.Cluster.r_intra_msgs > 0)

(* -- death of a backend: Ft detection + LB reroute -------------------- *)

(* Kill a core on backend 1's OS and let the *fault subsystem* notice:
   Ft's phi-accrual detectors on the surviving monitors must detect the
   death and mark the core dead OS-wide. The control plane then pulls the
   backend from rotation, and consistent hashing moves exactly the dead
   backend's sessions to the survivor while the rest stay put. *)
let test_backend_death () =
  let cl = Cluster.create (Cluster.default_config ~machines:2 ()) in
  let open Mk_apps in
  (* Pre-death placement for a batch of sessions, via probes. The ids are
     spread out: small consecutive ids can all hash to one side of the
     ring. *)
  let sessions = List.init 20 (fun i -> 1 + (i * 7919)) in
  let before =
    List.map (fun s -> (Cluster.probe cl ~session:s |> fst).Serve.rp_backend) sessions
  in
  check_bool "both backends in use" true
    (List.exists (fun b -> b = 0) before && List.exists (fun b -> b = 1) before);
  let os1 = Cluster.backend_os cl 1 in
  let eng1 = Pdes.engine (Cluster.pdes cl) 2 in
  (* Shard 2 = backend 1. *)
  let ft = ref None in
  Engine.spawn eng1 ~name:"test.ft" (fun () ->
      ft := Some (Mk.Ft.attach ~until:(Engine.now_ () + 1_000_000) os1));
  Engine.schedule_at eng1
    ~at:(Engine.now eng1 + 100_000)
    (fun () -> Mk.Monitor.kill (Mk.Os.monitor os1 ~core:0));
  Pdes.exec (Cluster.pdes cl);
  let ft = Option.get !ft in
  check_bool "death detected by Ft" true (Mk.Ft.detected_at ft ~core:0 <> None);
  check_bool "core marked dead OS-wide" true (not (Mk.Os.alive os1 ~core:0));
  (* Detection feeds the LB: backend 1 leaves rotation. *)
  Cluster.mark_backend_dead cl 1;
  check_bool "lb sees it dead" true (not (Lb.alive (Cluster.lb cl) 1));
  List.iter2
    (fun s b_before ->
      let rp, _ = Cluster.probe cl ~session:s in
      check_int "rerouted to the survivor" 0 rp.Serve.rp_backend;
      check_int "status still 200" 200 rp.Serve.rp_status;
      (* Sessions that already lived on backend 0 keep their state. *)
      if b_before = 0 then
        check_int (Printf.sprintf "session %d kept its hits" s) 2 rp.Serve.rp_hits
      else check_int (Printf.sprintf "session %d restarted" s) 1 rp.Serve.rp_hits)
    sessions before

(* -- determinism referee ---------------------------------------------- *)

(* One sweep cell recomputed on 1/2/4-domain PDES teams: every field of
   the result record (counts, quantiles, traffic, throughput floats) must
   be identical — MK_PDES picks window placement only. *)
let test_determinism () =
  let cell d =
    with_domains d (fun () ->
        let cl =
          Cluster.create
            (Cluster.default_config ~policy:Lb.Least_outstanding ~machines:2 ())
        in
        Cluster.run_load cl ~users:400 ~think:3_000_000 ~warmup:1_000_000
          ~window:6_000_000)
  in
  let serial = cell 1 in
  check_bool "sanity: the cell did real work" true (serial.Cluster.r_completed > 0);
  check_bool "2 domains identical" true (cell 2 = serial);
  check_bool "4 domains identical" true (cell 4 = serial)

let suite =
  ( "cluster",
    [
      tc "lb round robin" test_rr;
      tc "lb least outstanding" test_lo;
      tc "lb consistent hash stability" test_ch_stability;
      tc "session affinity (probes)" test_affinity;
      tc "session affinity (load)" test_load_affinity;
      tc "backend death: Ft detect + reroute" test_backend_death;
      tc "determinism across PDES domains" test_determinism;
    ] )
