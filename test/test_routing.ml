open Mk
open Mk_hw
open Test_util

let plat = Platform.amd_8x4
let members n = List.init n Fun.id

let covers_exactly plan ~root ~n =
  let reached = Routing.plan_cores plan in
  let expected = List.filter (fun c -> c <> root) (members n) in
  List.sort compare reached = expected

let test_unicast () =
  let plan = Routing.unicast ~root:0 ~members:(members 8) in
  check_bool "covers all" true (covers_exactly plan ~root:0 ~n:8);
  check_bool "no forwarding" true
    (List.for_all (fun b -> b.Routing.leaves = []) plan.Routing.branches);
  check_bool "not numa" false plan.Routing.numa_aware

let test_multicast_structure () =
  let plan = Routing.multicast plat ~root:0 ~members:(members 16) in
  check_bool "covers all" true (covers_exactly plan ~root:0 ~n:16);
  (* Root's own package (cores 1-3) are direct leaves; remote packages have
     one aggregator forwarding to its packagemates. *)
  List.iter
    (fun b ->
      let agg_pkg = Platform.package_of plat b.Routing.aggregator in
      if agg_pkg = 0 then check_bool "local leaf alone" true (b.Routing.leaves = [])
      else begin
        check_int "leaves with aggregator" 3 (List.length b.Routing.leaves);
        List.iter
          (fun l -> check_int "same package" agg_pkg (Platform.package_of plat l))
          b.Routing.leaves
      end)
    plan.Routing.branches

let test_root_not_reached () =
  let plan = Routing.multicast plat ~root:5 ~members:(members 32) in
  check_bool "root excluded" false (List.mem 5 (Routing.plan_cores plan));
  check_bool "covers the rest" true (covers_exactly plan ~root:5 ~n:32)

let test_numa_ordering () =
  (* With a latency function that makes higher packages slower, the plan
     must send to them first. *)
  let latency ~src:_ ~dst = dst in
  let plan = Routing.numa_multicast plat ~latency ~root:0 ~members:(members 32) in
  check_bool "numa flag" true plan.Routing.numa_aware;
  let remote_aggs =
    List.filter_map
      (fun b ->
        if Platform.package_of plat b.Routing.aggregator <> 0 then Some b.Routing.aggregator
        else None)
      plan.Routing.branches
  in
  let sorted_desc = List.sort (fun a b -> compare b a) remote_aggs in
  check_bool "farthest first" true (remote_aggs = sorted_desc)

let test_dedup_and_singleton () =
  let plan = Routing.unicast ~root:0 ~members:[ 0; 1; 1; 2; 0 ] in
  check_bool "deduped" true (Routing.plan_cores plan = [ 1; 2 ]);
  let solo = Routing.multicast plat ~root:0 ~members:[ 0 ] in
  check_int "empty plan" 0 (Routing.branch_count solo)

let qcheck_multicast_partition =
  qtest "multicast reaches every member exactly once" ~count:50
    QCheck2.Gen.(pair (int_bound 31) (int_range 2 32))
    (fun (root, n) ->
      let root = root mod n in
      let plan = Routing.multicast plat ~root ~members:(members n) in
      let reached = List.sort compare (Routing.plan_cores plan) in
      reached = List.filter (fun c -> c <> root) (members n))

let test_place_threads () =
  (* Two chatty teams of four and one stray cross-team edge: clustering
     must co-package each team, keep the heavier team on package 0, and
     never double-book a core. *)
  let edges =
    [ (0, 1, 100); (1, 2, 100); (2, 3, 100); (4, 5, 90); (5, 6, 90); (6, 7, 90); (0, 4, 1) ]
  in
  let place = Routing.place_threads plat ~threads:8 ~edges in
  let pkg c = Platform.package_of plat c in
  check_int "distinct cores" 8
    (List.length (List.sort_uniq compare (Array.to_list place)));
  check_bool "team one co-packaged" true
    (pkg place.(0) = pkg place.(1) && pkg place.(1) = pkg place.(2)
    && pkg place.(2) = pkg place.(3));
  check_bool "team two co-packaged" true
    (pkg place.(4) = pkg place.(5) && pkg place.(5) = pkg place.(6)
    && pkg place.(6) = pkg place.(7));
  check_bool "teams apart" true (pkg place.(0) <> pkg place.(4));
  check_int "heaviest team on package 0" 0 (pkg place.(0));
  (* No measured traffic: deterministic ascending fill. *)
  Alcotest.(check (array int))
    "no edges = ascending fill" [| 0; 1; 2; 3; 4 |]
    (Routing.place_threads plat ~threads:5 ~edges:[]);
  check_bool "rejects more threads than cores" true
    (match Routing.place_threads plat ~threads:33 ~edges:[] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let qcheck_place_threads_valid =
  qtest "place_threads is a partial one-to-one core map" ~count:100
    QCheck2.Gen.(pair (int_bound 32) (int_bound 0x3FFFFFF))
    (fun (threads, seed) ->
      let state = ref (seed + 1) in
      let rand m =
        state := ((!state * 48271) + 1) land 0xFFFFFFF;
        if m = 0 then 0 else !state mod m
      in
      (* Random weights; ids deliberately range past [threads] so the
         out-of-range filter is exercised too. *)
      let edges = List.init (rand 40) (fun _ -> (rand 34, rand 34, rand 100)) in
      let place = Routing.place_threads plat ~threads ~edges in
      Array.length place = threads
      && Array.for_all (fun c -> c >= 0 && c < 32) place
      && List.length (List.sort_uniq compare (Array.to_list place)) = threads)

let suite =
  ( "routing",
    [
      tc "unicast" test_unicast;
      tc "multicast structure" test_multicast_structure;
      tc "root not reached" test_root_not_reached;
      tc "numa ordering" test_numa_ordering;
      tc "dedup and singleton" test_dedup_and_singleton;
      tc "place threads" test_place_threads;
      qcheck_multicast_partition;
      qcheck_place_threads_valid;
    ] )
