(* Edge cases of the open-addressed line table: tombstone deletion, slot
   reuse, growth under load, and iteration determinism across
   delete/re-add churn. *)

open Mk_hw
open Test_util

let test_set_find_remove () =
  let t = Inttbl.create ~initial_bits:4 ~dummy:(-1) () in
  Inttbl.set t 7 70;
  Inttbl.set t 9 90;
  check_int "len" 2 (Inttbl.length t);
  check_int "find 7" 70 (Inttbl.find t 7);
  Inttbl.remove t 7;
  check_int "len after remove" 1 (Inttbl.length t);
  check_bool "7 gone" false (Inttbl.mem t 7);
  check_bool "9 kept" true (Inttbl.mem t 9);
  check_int "find_opt none" 0
    (match Inttbl.find_opt t 7 with None -> 0 | Some _ -> 1);
  (* Removing an absent key is a no-op. *)
  Inttbl.remove t 7;
  Inttbl.remove t 12345;
  check_int "len unchanged" 1 (Inttbl.length t)

let test_find_or () =
  let t = Inttbl.create ~dummy:0 () in
  Inttbl.set t 3 33;
  check_int "bound" 33 (Inttbl.find_or t 3 (-7));
  check_int "absent gives default" (-7) (Inttbl.find_or t 4 (-7));
  Inttbl.remove t 3;
  check_int "removed gives default" (-7) (Inttbl.find_or t 3 (-7))

let test_tombstone_probe_continuity () =
  (* Keys colliding into one probe run must stay reachable after a key
     in the middle of the run is deleted: a tombstone must not terminate
     the probe the way an empty slot does. A tiny table (8 slots) forces
     collisions for many key choices; insert enough keys to guarantee
     shared runs. *)
  let t = Inttbl.create ~initial_bits:3 ~dummy:(-1) () in
  let keys = [ 1; 2; 3; 4 ] in
  List.iter (fun k -> Inttbl.set t k (k * 10)) keys;
  Inttbl.remove t 2;
  List.iter
    (fun k -> if k <> 2 then check_int "reachable past tombstone" (k * 10) (Inttbl.find t k))
    keys

let test_tombstone_reuse () =
  (* Deleting then re-adding over and over must not grow the table: the
     insert probe reuses the first tombstone on its path, and occupancy
     (live + tombstones) stays bounded because re-insertion of the same
     key lands on its old tombstone. *)
  let t = Inttbl.create ~initial_bits:4 ~dummy:(-1) () in
  for i = 0 to 7 do
    Inttbl.set t i i
  done;
  for round = 1 to 1000 do
    let k = round mod 8 in
    Inttbl.remove t k;
    Inttbl.set t k (k + round)
  done;
  check_int "still 8 live keys" 8 (Inttbl.length t);
  for i = 0 to 7 do
    check_bool "key survives churn" true (Inttbl.mem t i)
  done

let test_growth_at_high_load () =
  (* Push far past the initial capacity (16 slots): every key must
     survive the rehashes, and lookups of absent keys must still
     terminate (the table keeps free slots). *)
  let t = Inttbl.create ~initial_bits:4 ~dummy:(-1) () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    Inttbl.set t i (i * 3)
  done;
  check_int "all live" n (Inttbl.length t);
  for i = 0 to n - 1 do
    check_int "value intact" (i * 3) (Inttbl.find t i)
  done;
  check_bool "absent still absent" false (Inttbl.mem t (n + 1));
  (* Overwrites don't change the count. *)
  Inttbl.set t 0 999;
  check_int "overwrite keeps len" n (Inttbl.length t);
  check_int "overwrite took" 999 (Inttbl.find t 0)

let test_delete_readd_iteration_deterministic () =
  (* Two tables driven through the identical operation history iterate in
     the identical slot order — the determinism contract that keeps any
     iteration-driven output stable. *)
  let drive () =
    let t = Inttbl.create ~initial_bits:4 ~dummy:(-1) () in
    for i = 0 to 40 do
      Inttbl.set t i i
    done;
    for i = 0 to 40 do
      if i mod 3 = 0 then Inttbl.remove t i
    done;
    for i = 0 to 40 do
      if i mod 6 = 0 then Inttbl.set t i (i * 2)
    done;
    let order = ref [] in
    Inttbl.iter (fun k v -> order := (k, v) :: !order) t;
    List.rev !order
  in
  let a = drive () and b = drive () in
  check_bool "identical iteration" true (a = b);
  (* And the contents are what the history says they are. *)
  let expect =
    List.init 41 Fun.id
    |> List.filter_map (fun i ->
           if i mod 6 = 0 then Some (i, i * 2)
           else if i mod 3 = 0 then None
           else Some (i, i))
  in
  check_bool "contents match history" true
    (List.sort compare a = List.sort compare expect)

let test_delete_heavy_rehash_compacts () =
  (* A delete-heavy workload triggers tombstone-dropping rehashes rather
     than runaway doubling: interleave insert/delete so live stays tiny
     while churn is huge, then verify correctness. *)
  let t = Inttbl.create ~initial_bits:3 ~dummy:(-1) () in
  for i = 0 to 5_000 do
    Inttbl.set t i i;
    if i >= 4 then Inttbl.remove t (i - 4)
  done;
  check_int "live window" 4 (Inttbl.length t);
  for i = 4997 to 5000 do
    check_int "window contents" i (Inttbl.find t i)
  done;
  check_bool "old keys gone" false (Inttbl.mem t 0)

let suite =
  ( "inttbl",
    [
      tc "set/find/remove" test_set_find_remove;
      tc "find_or" test_find_or;
      tc "tombstone probe continuity" test_tombstone_probe_continuity;
      tc "tombstone reuse" test_tombstone_reuse;
      tc "growth at high load" test_growth_at_high_load;
      tc "delete/readd iteration deterministic" test_delete_readd_iteration_deterministic;
      tc "delete-heavy rehash compacts" test_delete_heavy_rehash_compacts;
    ] )
