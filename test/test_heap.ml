open Mk_sim
open Test_util

let test_empty () =
  let h = Heap.create () in
  check_bool "empty" true (Heap.is_empty h);
  check_int "length" 0 (Heap.length h);
  check_bool "pop none" true (Heap.pop h = None);
  check_bool "peek none" true (Heap.peek h = None)

let test_order () =
  let h = Heap.create () in
  Heap.push h ~time:30 ~seq:1 "c";
  Heap.push h ~time:10 ~seq:2 "a";
  Heap.push h ~time:20 ~seq:3 "b";
  let pop () = (Option.get (Heap.pop h)).Heap.payload in
  check_string "first" "a" (pop ());
  check_string "second" "b" (pop ());
  check_string "third" "c" (pop ())

let test_seq_tiebreak () =
  let h = Heap.create () in
  Heap.push h ~time:5 ~seq:2 "second";
  Heap.push h ~time:5 ~seq:1 "first";
  Heap.push h ~time:5 ~seq:3 "third";
  let pop () = (Option.get (Heap.pop h)).Heap.payload in
  check_string "seq 1" "first" (pop ());
  check_string "seq 2" "second" (pop ());
  check_string "seq 3" "third" (pop ())

let test_growth () =
  let h = Heap.create () in
  for i = 999 downto 0 do
    Heap.push h ~time:i ~seq:i ()
  done;
  check_int "length" 1000 (Heap.length h);
  for i = 0 to 999 do
    let e = Option.get (Heap.pop h) in
    check_int (Printf.sprintf "pop %d" i) i e.Heap.time
  done

let test_peek_does_not_remove () =
  let h = Heap.create () in
  Heap.push h ~time:1 ~seq:1 ();
  ignore (Heap.peek h);
  check_int "still there" 1 (Heap.length h)

let qcheck_sorted =
  qtest "heap pops in (time, seq) order"
    QCheck2.Gen.(list (pair (int_bound 1000) (int_bound 1000)))
    (fun pairs ->
      let h = Heap.create () in
      List.iteri (fun i (t, _) -> Heap.push h ~time:t ~seq:i ()) pairs;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some e -> drain ((e.Heap.time, e.Heap.seq) :: acc)
      in
      let out = drain [] in
      out = List.sort compare out)

(* Stronger than sortedness: the pop sequence (payloads included) must be
   exactly the stable reference sort of the input by (time, seq), with
   duplicate timestamps common — this pins the struct-of-arrays heap to
   the semantics the engine's determinism depends on. *)
let qcheck_reference_sort =
  qtest "heap pop order equals reference sort"
    QCheck2.Gen.(list (int_bound 50))
    (fun times ->
      let h = Heap.create () in
      List.iteri (fun i t -> Heap.push h ~time:t ~seq:i i) times;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some e -> drain ((e.Heap.time, e.Heap.seq, e.Heap.payload) :: acc)
      in
      let reference =
        List.mapi (fun i t -> (t, i, i)) times |> List.sort compare
      in
      drain [] = reference)

let suite =
  ( "heap",
    [
      tc "empty" test_empty;
      tc "order" test_order;
      tc "seq tiebreak" test_seq_tiebreak;
      tc "growth" test_growth;
      tc "peek" test_peek_does_not_remove;
      qcheck_sorted;
      qcheck_reference_sort;
    ] )
