open Mk_hw
open Test_util

(* Word-boundary ids: 0 and 127 are the ends, 63/64 straddle a word edge
   on any plausible word size (the implementation packs 32 bits/word, so
   31/32 are covered by the qcheck below as well). *)
let edge_ids = [ 0; 63; 64; 127 ]

let test_edges () =
  let s = Bitset.create ~n:128 in
  check_bool "fresh empty" true (Bitset.is_empty s);
  List.iter (fun i -> Bitset.add s i) edge_ids;
  check_int "cardinal" 4 (Bitset.cardinal s);
  List.iter
    (fun i -> check_bool (Printf.sprintf "mem %d" i) true (Bitset.mem s i))
    edge_ids;
  check_bool "mem 1" false (Bitset.mem s 1);
  check_bool "mem 62" false (Bitset.mem s 62);
  check_bool "mem 65" false (Bitset.mem s 65);
  check_bool "mem 126" false (Bitset.mem s 126);
  check_bool "to_list ascending" true (Bitset.to_list s = edge_ids);
  Bitset.remove s 63;
  Bitset.remove s 64;
  check_int "cardinal after remove" 2 (Bitset.cardinal s);
  check_bool "63 gone" false (Bitset.mem s 63);
  check_bool "64 gone" false (Bitset.mem s 64);
  check_bool "0 kept" true (Bitset.mem s 0);
  check_bool "127 kept" true (Bitset.mem s 127)

let test_iter_order () =
  let s = Bitset.create ~n:128 in
  List.iter (fun i -> Bitset.add s i) [ 127; 0; 64; 63 ];
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) s;
  check_bool "iter ascending" true (List.rev !seen = edge_ids)

let test_choose () =
  let s = Bitset.create ~n:128 in
  Bitset.add s 127;
  check_int "choose lowest" 127 (Bitset.choose s);
  Bitset.add s 64;
  check_int "choose lower" 64 (Bitset.choose s)

let test_clear_copy_equal () =
  let s = Bitset.create ~n:128 in
  List.iter (fun i -> Bitset.add s i) edge_ids;
  let c = Bitset.copy s in
  check_bool "copy equal" true (Bitset.equal s c);
  Bitset.remove c 127;
  check_bool "copy independent" false (Bitset.equal s c);
  Bitset.clear s;
  check_bool "cleared" true (Bitset.is_empty s);
  check_int "cleared cardinal" 0 (Bitset.cardinal s)

let test_add_idempotent () =
  let s = Bitset.create ~n:128 in
  Bitset.add s 63;
  Bitset.add s 63;
  check_int "no double count" 1 (Bitset.cardinal s);
  Bitset.remove s 0;
  check_int "remove absent is noop" 1 (Bitset.cardinal s)

let test_bounds () =
  let s = Bitset.create ~n:128 in
  let raises f = match f () with () -> false | exception Invalid_argument _ -> true in
  check_bool "add 128 rejected" true (raises (fun () -> Bitset.add s 128));
  check_bool "add -1 rejected" true (raises (fun () -> Bitset.add s (-1)));
  check_bool "mem 128 rejected" true (raises (fun () -> ignore (Bitset.mem s 128)))

(* Model check vs a sorted-list reference: same membership, same order. *)
let qcheck_vs_reference =
  qtest "bitset matches sorted-set reference"
    QCheck2.Gen.(list (pair bool (int_bound 127)))
    (fun ops ->
      let s = Bitset.create ~n:128 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add s i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.remove s i;
            Hashtbl.remove model i
          end)
        ops;
      let expect =
        Hashtbl.fold (fun k () acc -> k :: acc) model [] |> List.sort compare
      in
      Bitset.to_list s = expect
      && Bitset.cardinal s = List.length expect
      && Bitset.is_empty s = (expect = []))

let suite =
  ( "bitset",
    [
      tc "word-boundary ids" test_edges;
      tc "iter ascending" test_iter_order;
      tc "choose" test_choose;
      tc "clear/copy/equal" test_clear_copy_equal;
      tc "idempotent ops" test_add_idempotent;
      tc "bounds checks" test_bounds;
      qcheck_vs_reference;
    ] )
