(* The timing wheel must realize exactly the (time, seq) total order the
   heap does — the engine relies on it when routing near-future events to
   the wheel and the rest to the heap. *)

open Mk_sim
open Test_util

let test_basic_order () =
  let w = Wheel.create ~dummy:"" in
  check_bool "empty" true (Wheel.is_empty w);
  check_bool "push c" true (Wheel.push w ~now:0 ~time:30 ~seq:1 "c");
  check_bool "push a" true (Wheel.push w ~now:0 ~time:10 ~seq:2 "a");
  check_bool "push b" true (Wheel.push w ~now:0 ~time:20 ~seq:3 "b");
  check_int "length" 3 (Wheel.length w);
  check_int "min time" 10 (Wheel.min_time w);
  check_int "min seq" 2 (Wheel.min_seq w);
  check_string "first" "a" (Wheel.pop_exn w);
  check_string "second" "b" (Wheel.pop_exn w);
  check_string "third" "c" (Wheel.pop_exn w);
  check_bool "drained" true (Wheel.is_empty w)

let test_same_tick_burst_is_seq_order () =
  let w = Wheel.create ~dummy:0 in
  for seq = 1 to 100 do
    check_bool "push" true (Wheel.push w ~now:0 ~time:7 ~seq seq)
  done;
  for seq = 1 to 100 do
    check_int "seq order" seq (Wheel.pop_exn w)
  done

let test_slot_clash_refused () =
  let w = Wheel.create ~dummy:"" in
  check_bool "first time" true (Wheel.push w ~now:0 ~time:5 ~seq:1 "x");
  (* Same slot, different time (one full window later): the wheel cannot
     represent both and must refuse rather than corrupt the order. *)
  check_bool "clash refused" false
    (Wheel.push w ~now:0 ~time:(5 + Wheel.window) ~seq:2 "y");
  check_string "original intact" "x" (Wheel.pop_exn w);
  check_int "only one entry" 0 (Wheel.length w)

let test_slot_reuse_after_drain () =
  let w = Wheel.create ~dummy:"" in
  check_bool "push" true (Wheel.push w ~now:0 ~time:5 ~seq:1 "x");
  check_string "pop" "x" (Wheel.pop_exn w);
  (* Slot 5 drained: one window later the same slot is reusable. *)
  let t' = 5 + Wheel.window in
  check_bool "reuse" true (Wheel.push w ~now:(t' - 10) ~time:t' ~seq:2 "y");
  check_int "time" t' (Wheel.min_time w);
  check_string "value" "y" (Wheel.pop_exn w)

(* Reference model: drive the wheel-with-heap-overflow combination the
   engine uses against a single pure heap, on random interleavings of
   pushes (random small/large delays, incl. same-tick bursts) and pops.
   Both must emit the identical (time, seq, payload) sequence. *)
let random_schedule_gen =
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (pair
         (* batch of delays pushed at one step; 0 = same tick, delays
            beyond the window overflow to the heap *)
         (list_size (int_range 1 8)
            (oneof
               [
                 int_range 0 8;
                 int_range 0 (Wheel.window - 1);
                 int_range (Wheel.window - 2) (2 * Wheel.window);
               ]))
         (* pops to attempt after the batch *)
         (int_range 0 6)))

let prop_wheel_matches_heap steps =
  let wheel = Wheel.create ~dummy:(-1) in
  let over = Heap.create () in
  let reference = Heap.create () in
  let now = ref 0 in
  let seq = ref 0 in
  let wh_log = ref [] in
  let ref_log = ref [] in
  let push d =
    incr seq;
    let time = !now + d in
    Heap.push reference ~time ~seq:!seq !seq;
    if d < Wheel.window && Wheel.push wheel ~now:!now ~time ~seq:!seq !seq then ()
    else Heap.push over ~time ~seq:!seq !seq
  in
  (* Pop the merged wheel/overflow minimum, advancing the clock like the
     run loop does; returns false when both are empty. *)
  let pop_merged () =
    let have_w = not (Wheel.is_empty wheel) in
    let have_h = not (Heap.is_empty over) in
    if not have_w && not have_h then false
    else begin
      let from_wheel =
        have_w
        && ((not have_h)
           || Wheel.min_time wheel < Heap.min_time over
           || (Wheel.min_time wheel = Heap.min_time over
              && Wheel.min_seq wheel < Heap.min_seq over))
      in
      let time = if from_wheel then Wheel.min_time wheel else Heap.min_time over in
      let v = if from_wheel then Wheel.pop_exn wheel else Heap.pop_exn over in
      now := time;
      wh_log := (time, v) :: !wh_log;
      (match Heap.pop reference with
       | Some e -> ref_log := (e.Heap.time, e.Heap.payload) :: !ref_log
       | None -> Alcotest.fail "reference drained before wheel");
      true
    end
  in
  List.iter
    (fun (delays, pops) ->
      List.iter push delays;
      for _ = 1 to pops do
        ignore (pop_merged () : bool)
      done)
    steps;
  while pop_merged () do
    ()
  done;
  !wh_log = !ref_log && Heap.is_empty reference

let suite =
  ( "wheel",
    [
      tc "basic order" test_basic_order;
      tc "same-tick burst" test_same_tick_burst_is_seq_order;
      tc "slot clash refused" test_slot_clash_refused;
      tc "slot reuse after drain" test_slot_reuse_after_drain;
      qtest ~count:300 "matches heap on random schedules" random_schedule_gen
        prop_wheel_matches_heap;
    ] )
